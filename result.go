package allarm

import (
	"allarm/internal/stats"
	"allarm/internal/system"
)

// Result carries the metrics of one simulation run, in the units the
// paper reports.
type Result struct {
	// Benchmark and PolicyUsed identify the run.
	Benchmark  string
	PolicyUsed Policy

	// RuntimeNs is the region-of-interest runtime (slowest thread).
	RuntimeNs float64
	// Accesses is the total demand accesses simulated.
	Accesses uint64
	// Events is the number of discrete events the simulation executed;
	// with wall-clock time it gives the simulator's events/sec throughput
	// (the benchmark suite's headline metric).
	Events uint64
	// Partial marks a result collected from a cancelled run (RunCtx with
	// an expiring context): the metrics cover only the events fired up to
	// the abort instant, with in-flight threads clamped to it. Partial
	// results are well-formed but are never cached or compared against
	// complete runs; re-running the same job from a clean start yields
	// the bit-identical complete result.
	Partial bool `json:",omitempty"`

	// PFEvictions is the machine-wide count of probe-filter entry
	// evictions (Figure 3b).
	PFEvictions uint64
	// PFAllocs counts probe-filter entry installs.
	PFAllocs uint64
	// NoCBytes is interconnect traffic in bytes (Figure 3c).
	NoCBytes uint64
	// NoCMessages is the interconnect message count.
	NoCMessages uint64
	// EvictionMsgs counts NoC messages caused by back-invalidations; with
	// PFEvictions it gives Figure 3d's messages-per-eviction.
	EvictionMsgs uint64
	// L2Misses counts private-hierarchy demand misses (Figure 3e).
	L2Misses uint64
	// LocalRequests / RemoteRequests classify directory requests by
	// affinity domain (Figure 2).
	LocalRequests, RemoteRequests uint64
	// LocalProbes / ProbesHidden drive Figure 3g: ALLARM local probes
	// issued and those resolved off the critical path.
	LocalProbes, ProbesHidden uint64
	// UntrackedGrants counts ALLARM's allocation-free local fills.
	UntrackedGrants uint64
	// UncachedGrants counts no-fill grants by deferred-allocation
	// policies (e.g. ALLARMHyst's first remote read per region).
	UncachedGrants uint64

	// NoCEnergyPJ and PFEnergyPJ are modelled dynamic energies
	// (Figure 3f); DRAMEnergyPJ is reported for completeness.
	NoCEnergyPJ, PFEnergyPJ, DRAMEnergyPJ float64

	raw *system.RunResult
}

// Raw exposes the underlying per-node statistics for detailed analysis.
func (r *Result) Raw() *system.RunResult { return r.raw }

// LocalFraction returns the share of directory requests from the local
// affinity domain (Figure 2's "Local" bar).
func (r *Result) LocalFraction() float64 {
	return stats.SafeDiv(float64(r.LocalRequests), float64(r.LocalRequests+r.RemoteRequests), 0)
}

// MessagesPerEviction returns the average NoC messages caused per
// probe-filter eviction (Figure 3d), 0 when there were no evictions.
func (r *Result) MessagesPerEviction() float64 {
	return stats.SafeDiv(float64(r.EvictionMsgs), float64(r.PFEvictions), 0)
}

// SnoopHiddenFraction returns the share of ALLARM local probes that were
// off the critical path (Figure 3g); 0 for baseline runs.
func (r *Result) SnoopHiddenFraction() float64 {
	return stats.SafeDiv(float64(r.ProbesHidden), float64(r.LocalProbes), 0)
}

func newResult(bench string, pol Policy, rr *system.RunResult) *Result {
	t := rr.Totals()
	return &Result{
		Benchmark:       bench,
		PolicyUsed:      pol,
		RuntimeNs:       rr.Time.Nanoseconds(),
		Accesses:        rr.Accesses,
		Events:          rr.Events,
		PFEvictions:     t.PFEvictions,
		PFAllocs:        t.PFAllocs,
		NoCBytes:        t.NoCBytes,
		NoCMessages:     t.NoCMessages,
		EvictionMsgs:    t.EvictionMsgs,
		L2Misses:        t.L2Misses,
		LocalRequests:   t.LocalRequests,
		RemoteRequests:  t.RemoteRequests,
		LocalProbes:     t.LocalProbes,
		ProbesHidden:    t.ProbesHidden,
		UntrackedGrants: t.UntrackedGrants,
		UncachedGrants:  t.UncachedGrants,
		NoCEnergyPJ:     rr.Energy.NoC,
		PFEnergyPJ:      rr.Energy.PF,
		DRAMEnergyPJ:    rr.Energy.DRAM,
		raw:             rr,
	}
}

// Comparison holds ALLARM-versus-baseline ratios in the paper's
// directions: Speedup > 1 and the other ratios < 1 mean ALLARM wins.
type Comparison struct {
	// Speedup is baseline runtime / ALLARM runtime (Figure 3a).
	Speedup float64
	// EvictionRatio is ALLARM PF evictions / baseline (Figure 3b).
	EvictionRatio float64
	// TrafficRatio is ALLARM NoC bytes / baseline (Figure 3c).
	TrafficRatio float64
	// L2MissRatio is ALLARM L2 misses / baseline (Figure 3e).
	L2MissRatio float64
	// NoCEnergyRatio and PFEnergyRatio are ALLARM / baseline dynamic
	// energies (Figure 3f).
	NoCEnergyRatio, PFEnergyRatio float64
}

// Compare derives the paper's normalised metrics from a baseline run and
// an ALLARM run of the same workload.
func Compare(base, opt *Result) Comparison {
	return Comparison{
		Speedup:        stats.SafeDiv(base.RuntimeNs, opt.RuntimeNs, 0),
		EvictionRatio:  stats.SafeDiv(float64(opt.PFEvictions), float64(base.PFEvictions), 0),
		TrafficRatio:   stats.SafeDiv(float64(opt.NoCBytes), float64(base.NoCBytes), 0),
		L2MissRatio:    stats.SafeDiv(float64(opt.L2Misses), float64(base.L2Misses), 0),
		NoCEnergyRatio: stats.SafeDiv(opt.NoCEnergyPJ, base.NoCEnergyPJ, 0),
		PFEnergyRatio:  stats.SafeDiv(opt.PFEnergyPJ, base.PFEnergyPJ, 0),
	}
}

// Geomean returns the geometric mean of xs (re-exported for harnesses).
func Geomean(xs []float64) float64 { return stats.Geomean(xs) }
