package allarm

import (
	"context"
	"fmt"

	"allarm/internal/mem"
	"allarm/internal/system"
	"allarm/internal/workload"
)

// Benchmarks returns the evaluated benchmark names in the paper's
// plotting order (Figures 2–4).
func Benchmarks() []string {
	out := make([]string, len(workload.BenchmarkNames))
	copy(out, workload.BenchmarkNames)
	return out
}

// MultiProcessBenchmarks returns the SPLASH2 subset of the multi-process
// experiment (Figure 4).
func MultiProcessBenchmarks() []string {
	out := make([]string, len(workload.MultiProcessNames))
	copy(out, workload.MultiProcessNames)
	return out
}

// BenchmarkInfo describes one synthetic benchmark preset — the discovery
// record behind DescribeBenchmarks and allarm-serve's GET /v1/benchmarks.
type BenchmarkInfo struct {
	// Name is the preset name Job.Benchmark and RunBenchmark accept.
	Name string `json:"name"`
	// PrivateBytes, SharedBytes and GlobalBytes are the preset's region
	// sizes at default scale (per thread, shared, and machine-wide
	// read-mostly respectively); they determine the workload's directory
	// pressure and locality mix.
	PrivateBytes int `json:"private_bytes"`
	SharedBytes  int `json:"shared_bytes"`
	GlobalBytes  int `json:"global_bytes"`
	// MultiProcess marks the SPLASH2 subset usable in Figure 4 mode
	// (Job.MultiProcess).
	MultiProcess bool `json:"multi_process"`
}

// DescribeBenchmarks returns every benchmark preset in the paper's
// plotting order.
func DescribeBenchmarks() []BenchmarkInfo {
	mp := make(map[string]bool, len(workload.MultiProcessNames))
	for _, n := range workload.MultiProcessNames {
		mp[n] = true
	}
	out := make([]BenchmarkInfo, 0, len(workload.BenchmarkNames))
	for _, n := range workload.BenchmarkNames {
		p, ok := workload.Preset(n)
		if !ok {
			continue
		}
		out = append(out, BenchmarkInfo{
			Name:         n,
			PrivateBytes: p.PrivateBytes,
			SharedBytes:  p.SharedBytes,
			GlobalBytes:  p.GlobalBytes,
			MultiProcess: mp[n],
		})
	}
	return out
}

// Run simulates one workload on the machine cfg describes and returns
// its metrics. The workload supplies its own thread count (at most
// cfg.Nodes — the modelled cores are in-order with one outstanding
// access) and access streams; cfg.Threads and cfg.AccessesPerThread only
// scale the benchmark presets and are ignored here. Thread i is pinned
// to node i mod cfg.Nodes and pages are pre-placed per the workload's
// ForEachPage declaration. Run is RunCtx with a background context.
func Run(cfg Config, wl Workload) (*Result, error) {
	return RunCtx(context.Background(), cfg, wl)
}

// RunCtx is Run with cancellation: the simulation polls ctx once per
// sim.CancelCheckBudget events (amortised to nothing — a background
// context costs literally zero) and aborts within one budget of ctx
// expiring. A cancelled run returns both a non-nil partial Result
// (Partial == true, metrics covering the events fired so far) and an
// error satisfying errors.Is(err, ctx.Err()), so callers can checkpoint
// sub-run progress while still treating the job as unfinished.
func RunCtx(ctx context.Context, cfg Config, wl Workload) (*Result, error) {
	if wl == nil {
		return nil, fmt.Errorf("allarm: Run needs a workload (see BenchmarkWorkload, LoadTrace, NewWorkload)")
	}
	if err := cfg.validateMachine(); err != nil {
		return nil, err
	}
	if n := wl.Threads(); n <= 0 || n > cfg.Nodes {
		return nil, fmt.Errorf("allarm: workload %q has %d threads; the machine supports [1,%d]",
			wl.Name(), n, cfg.Nodes)
	}
	return runWorkloadCtx(ctx, cfg, wl)
}

// RunBenchmark simulates one named benchmark preset under cfg (scaled by
// cfg.Threads and cfg.AccessesPerThread) and returns its metrics. It is
// the compatibility shim over Run: output is byte-identical to the
// pre-Workload-API Run(cfg, benchmark).
func RunBenchmark(cfg Config, benchmark string) (*Result, error) {
	return RunBenchmarkCtx(context.Background(), cfg, benchmark)
}

// RunBenchmarkCtx is RunBenchmark with cancellation (see RunCtx).
func RunBenchmarkCtx(ctx context.Context, cfg Config, benchmark string) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	wl, err := BenchmarkWorkload(benchmark, cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		return nil, err
	}
	return runWorkloadCtx(ctx, cfg, wl)
}

// buildWorkloadMachine constructs the machine and thread specs for a
// workload run: pages pre-placed per the workload's ForEachPage
// declaration, thread i pinned to node i mod Nodes. The construction is
// a deterministic function of (cfg, wl), which is what lets a resumed
// job rebuild byte-identical streams for checkpoint fast-forward.
func buildWorkloadMachine(cfg Config, wl Workload) (*system.Machine, []system.ThreadSpec, error) {
	sysCfg, err := cfg.systemConfig()
	if err != nil {
		return nil, nil, err
	}
	if sysCfg.SimThreads > 1 {
		// Sharded runs need the whole footprint declared up front (the
		// address space is sealed below). A workload that declares no
		// pages at all — a programmatic Workload without Pages — gets the
		// serial engine instead of a mid-run failure.
		declared := false
		wl.ForEachPage(func(uint64, int) { declared = true })
		if !declared {
			sysCfg.SimThreads = 1
		}
	}
	m, err := system.New(sysCfg)
	if err != nil {
		return nil, nil, err
	}
	space := m.NewAddressSpace(cfg.memPolicy())
	nodeOf := func(t int) mem.NodeID { return mem.NodeID(t % cfg.Nodes) }
	wl.ForEachPage(func(page uint64, thread int) {
		space.Translate(mem.VAddr(page), nodeOf(thread))
	})
	if m.Shards() > 1 {
		// Shard goroutines translate concurrently; with every page
		// pre-placed above, sealing makes translation read-only (and an
		// undeclared page a loud failure instead of a data race).
		space.Seal()
	}

	threads := make([]system.ThreadSpec, 0, wl.Threads())
	for t := 0; t < wl.Threads(); t++ {
		spec := system.ThreadSpec{
			Node:   nodeOf(t),
			Stream: intStream{s: wl.Stream(t, cfg.Seed)},
			Space:  space,
			Name:   fmt.Sprintf("%s/t%d", wl.Name(), t),
		}
		if ws := wl.WarmupStream(t, cfg.Seed); ws != nil {
			spec.Warmup = intStream{s: ws}
		}
		threads = append(threads, spec)
	}
	return m, threads, nil
}

// runWorkloadCtx builds a machine, places the workload's pages, pins
// thread i to node i mod Nodes, and runs to completion or cancellation.
func runWorkloadCtx(ctx context.Context, cfg Config, wl Workload) (*Result, error) {
	m, threads, err := buildWorkloadMachine(cfg, wl)
	if err != nil {
		return nil, err
	}
	rr, err := m.RunCtx(ctx, threads)
	if err != nil {
		err = fmt.Errorf("allarm: %s (%v): %w", wl.Name(), cfg.Policy, err)
		// A cancelled run still yields the partial statistics the machine
		// collected; other failures (validation, deadlock, a post-run
		// invariant) have no usable partial result.
		if rr != nil && IsCancellation(err) {
			res := newResult(wl.Name(), cfg.Policy, rr)
			res.Partial = true
			return res, err
		}
		return nil, err
	}
	return newResult(wl.Name(), cfg.Policy, rr), nil
}

// RunPair runs the same benchmark and seed under the baseline and ALLARM
// policies (concurrently), returning both results for normalised
// comparisons.
func RunPair(cfg Config, benchmark string) (base, opt *Result, err error) {
	s := NewSweep(Job{Benchmark: benchmark, Config: cfg}).
		CrossPolicies(Baseline, ALLARM)
	results, err := RunSweep(context.Background(), s)
	if err != nil {
		return nil, nil, err
	}
	if err := FirstError(results); err != nil {
		return nil, nil, err
	}
	return results[0].Result, results[1].Result, nil
}

// MultiProcessConfig adapts cfg for the paper's multi-process experiment
// (§III-B): ncopies single-threaded copies of a benchmark, spread evenly
// across the mesh, with each copy's footprint scaled so the 512 KiB probe
// filter is comfortable and smaller filters are not, and per-node DRAM
// scaled so a small fraction of pages falls back to remote nodes (the
// paper's "capacity limitations at a single memory controller").
type MultiProcessConfig struct {
	// Copies is the number of single-threaded processes (paper: 2).
	Copies int
	// FootprintBytes is each process's total data footprint; the private
	// and shared regions of the benchmark are rescaled to fit it.
	FootprintBytes int
	// LocalMemBytes is each node's DRAM capacity; set slightly below
	// FootprintBytes to force best-effort remote fallback allocation.
	LocalMemBytes int
}

// DefaultMultiProcess mirrors the paper's two-copy setup with a footprint
// modestly above the 512 KiB probe-filter coverage.
func DefaultMultiProcess() MultiProcessConfig {
	return MultiProcessConfig{
		Copies:         2,
		FootprintBytes: 640 << 10,
		LocalMemBytes:  576 << 10,
	}
}

// RunMultiProcess simulates mp.Copies single-threaded copies of the named
// benchmark (coordinated to start together, as in the paper) and returns
// combined metrics. Runtime is the completion time of the slower copy.
func RunMultiProcess(cfg Config, mp MultiProcessConfig, benchmark string) (*Result, error) {
	return RunMultiProcessCtx(context.Background(), cfg, mp, benchmark)
}

// RunMultiProcessCtx is RunMultiProcess with cancellation (see RunCtx).
func RunMultiProcessCtx(ctx context.Context, cfg Config, mp MultiProcessConfig, benchmark string) (*Result, error) {
	m, threads, err := buildMultiProcessMachine(cfg, mp, benchmark)
	if err != nil {
		return nil, err
	}
	rr, err := m.RunCtx(ctx, threads)
	if err != nil {
		err = fmt.Errorf("allarm: multi-process %s (%v): %w", benchmark, cfg.Policy, err)
		if rr != nil && IsCancellation(err) {
			res := newResult(benchmark, cfg.Policy, rr)
			res.Partial = true
			return res, err
		}
		return nil, err
	}
	return newResult(benchmark, cfg.Policy, rr), nil
}

// buildMultiProcessMachine validates and constructs the machine and
// thread specs of the Figure 4 multi-process experiment. Like
// buildWorkloadMachine, the construction is deterministic so resumed
// jobs can rebuild identical streams.
func buildMultiProcessMachine(cfg Config, mp MultiProcessConfig, benchmark string) (*system.Machine, []system.ThreadSpec, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if mp.Copies <= 0 || mp.Copies > cfg.Nodes {
		return nil, nil, fmt.Errorf("allarm: copies must be in [1,%d]", cfg.Nodes)
	}
	if mp.FootprintBytes < 8<<10 {
		return nil, nil, fmt.Errorf("allarm: multi-process footprint too small")
	}

	p, ok := workload.Preset(benchmark)
	if !ok {
		return nil, nil, fmt.Errorf("allarm: unknown benchmark %q", benchmark)
	}
	// Rescale the benchmark's regions to the requested footprint,
	// preserving its private/shared balance and page alignment.
	total := float64(p.PrivateBytes + p.SharedBytes)
	scale := float64(mp.FootprintBytes) / total
	pageRound := func(b float64) int {
		n := int(b) &^ (mem.PageBytes - 1)
		if n < mem.PageBytes {
			n = mem.PageBytes
		}
		return n
	}
	p.PrivateBytes = pageRound(float64(p.PrivateBytes) * scale)
	p.SharedBytes = pageRound(float64(p.SharedBytes) * scale)
	p.Threads = 1
	p.AccessesPerThread = cfg.AccessesPerThread

	sysCfg, err := cfg.systemConfig()
	if err != nil {
		return nil, nil, err
	}
	if mp.LocalMemBytes > 0 {
		bytes := (uint64(mp.LocalMemBytes) / mem.PageBytes) * mem.PageBytes
		if bytes < mem.PageBytes {
			bytes = mem.PageBytes
		}
		sysCfg.MemBytesPerNode = bytes
	}
	m, err := system.New(sysCfg)
	if err != nil {
		return nil, nil, err
	}

	spread := cfg.Nodes / mp.Copies
	threads := make([]system.ThreadSpec, 0, mp.Copies)
	for c := 0; c < mp.Copies; c++ {
		wl, err := workload.NewSynthetic(p)
		if err != nil {
			return nil, nil, err
		}
		node := mem.NodeID(c * spread)
		space := m.NewAddressSpace(cfg.memPolicy())
		system.Preplace(space, wl, func(int) mem.NodeID { return node })
		if m.Shards() > 1 {
			space.Seal() // see buildWorkloadMachine
		}
		threads = append(threads, system.ThreadSpec{
			Node:   node,
			Stream: wl.Stream(0, cfg.Seed+uint64(c)*7919),
			Warmup: wl.WarmupStream(0, cfg.Seed+uint64(c)*7919),
			Space:  space,
			Name:   fmt.Sprintf("%s/p%d", benchmark, c),
		})
	}
	return m, threads, nil
}
