package obs

import (
	"sort"
	"sync"
	"time"
)

// A TimelineEvent is one step in a sweep's life: accepted, expanded,
// assigned (router→shard), started / checkpointed / preempted /
// resumed / migrated / finished (per job), gathered, done. Job is the
// job index the event concerns, -1 for sweep-level events. Shard names
// the shard a merged event came from (router view only). RequestID
// ties the event back to the request logs on every daemon it crossed.
type TimelineEvent struct {
	Time      time.Time `json:"ts"`
	Event     string    `json:"event"`
	Job       int       `json:"job"`
	Shard     string    `json:"shard,omitempty"`
	Detail    string    `json:"detail,omitempty"`
	RequestID string    `json:"request_id,omitempty"`
}

// TimelineView is the JSON body of GET /v1/sweeps/{id}/timeline.
type TimelineView struct {
	ID     string          `json:"id"`
	Events []TimelineEvent `json:"events"`
}

// Timeline is an append-only, concurrency-safe event record for one
// sweep. Appends happen on submit/runner/checkpoint paths; snapshots
// on the timeline endpoint.
type Timeline struct {
	mu     sync.Mutex
	events []TimelineEvent
}

// Add appends an event, stamping Time with the current instant if the
// caller left it zero.
func (t *Timeline) Add(e TimelineEvent) {
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Snapshot returns a copy of the events recorded so far.
func (t *Timeline) Snapshot() []TimelineEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]TimelineEvent(nil), t.events...)
}

// SortEvents orders merged events by timestamp, stably, so events from
// different daemons interleave chronologically while same-instant
// events keep their per-daemon order.
func SortEvents(events []TimelineEvent) {
	sort.SliceStable(events, func(i, j int) bool { return events[i].Time.Before(events[j].Time) })
}
