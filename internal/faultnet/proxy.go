package faultnet

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"time"
)

// Proxy returns an HTTP reverse proxy to target that runs every request
// through the injector's plan: the cross-process delivery mechanism,
// for standing between real daemons (cmd/allarm-faultnet serves it).
// Drop rules sever the client's TCP connection without an HTTP answer;
// Status rules synthesize the response locally; latency and slow-body
// rules shape forwarded traffic. SSE streams flush through unbuffered.
func (in *Injector) Proxy(target *url.URL) http.Handler {
	rp := httputil.NewSingleHostReverseProxy(target)
	rp.FlushInterval = -1 // flush every write: /events streams depend on it
	rp.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
		// The backend died (or a test closed it): answer 502 instead of
		// the default log spam + 502 pair.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprintf(w, "{\"error\":\"faultnet proxy: %s\"}\n", err)
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		d := in.decide("http", r.Method, r.Host, r.URL.Path)
		if d.latency > 0 {
			if err := sleepCtx(r.Context(), d.latency); err != nil {
				return
			}
		}
		if d.drop {
			// Sever the connection with no HTTP answer — the closest an
			// L7 proxy gets to a mid-request reset. Hijack when the
			// server allows it; otherwise abort the handler, which also
			// tears the connection down.
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					abortiveClose(conn)
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		if d.status != 0 {
			w.Header().Set("Content-Type", "application/json")
			setRetryAfter(w.Header(), d.retryAfter)
			w.WriteHeader(d.status)
			fmt.Fprintf(w, "{\"error\":\"faultnet: injected %d by rule %s\"}\n", d.status, d.rule)
			return
		}
		if d.slowBody > 0 {
			w = &slowResponseWriter{ResponseWriter: w, delay: d.slowBody}
		}
		rp.ServeHTTP(w, r)
	})
}

// slowResponseWriter meters response writes: one injected delay per
// Write call. Flush passes through so streamed responses still stream —
// just slowly, which is the point.
type slowResponseWriter struct {
	http.ResponseWriter
	delay time.Duration
}

func (s *slowResponseWriter) Write(p []byte) (int, error) {
	time.Sleep(s.delay)
	return s.ResponseWriter.Write(p)
}

func (s *slowResponseWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TCPProxy forwards raw TCP to a target while the injector's
// conn-scoped rules refuse, delay and reset connections — faults below
// the HTTP layer, where request-level retries can't see them coming.
type TCPProxy struct {
	in     *Injector
	target string
	ln     net.Listener

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  chan struct{}
}

// ProxyTCP starts a TCP proxy on listenAddr (":0" picks a port)
// forwarding to target. Conn-scoped rules are consulted once per
// accepted connection: Drop closes it before any byte flows, LatencyMs
// stalls the dial, ResetAfterBytes cuts the stream mid-flight with an
// abortive close (RST, not FIN).
func (in *Injector) ProxyTCP(listenAddr, target string) (*TCPProxy, error) {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("faultnet: %w", err)
	}
	p := &TCPProxy{
		in:     in,
		target: target,
		ln:     ln,
		conns:  make(map[net.Conn]struct{}),
		done:   make(chan struct{}),
	}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address (host:port).
func (p *TCPProxy) Addr() string { return p.ln.Addr().String() }

// Close stops accepting and severs every open connection.
func (p *TCPProxy) Close() {
	close(p.done)
	p.ln.Close()
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
}

func (p *TCPProxy) track(c net.Conn) func() {
	p.mu.Lock()
	p.conns[c] = struct{}{}
	p.mu.Unlock()
	return func() {
		p.mu.Lock()
		delete(p.conns, c)
		p.mu.Unlock()
	}
}

func (p *TCPProxy) acceptLoop() {
	for {
		client, err := p.ln.Accept()
		if err != nil {
			select {
			case <-p.done:
				return
			default:
			}
			return
		}
		go p.serve(client)
	}
}

func (p *TCPProxy) serve(client net.Conn) {
	defer p.track(client)()
	d := p.in.decide("conn", "", p.target, "")
	if d.drop {
		abortiveClose(client)
		return
	}
	if d.latency > 0 {
		time.Sleep(d.latency)
	}
	backend, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		abortiveClose(client)
		return
	}
	defer p.track(backend)()
	defer client.Close()
	defer backend.Close()

	clientDone := make(chan struct{})
	go func() {
		io.Copy(backend, client) // client → backend: unshaped
		if tc, ok := backend.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		close(clientDone)
	}()

	// backend → client, optionally cut after resetAfter bytes.
	if d.resetAfter > 0 {
		io.CopyN(client, backend, int64(d.resetAfter))
		abortiveClose(client)
		abortiveClose(backend)
	} else {
		io.Copy(client, backend)
	}
	<-clientDone
}

// abortiveClose closes a connection with RST semantics where the
// platform allows (SO_LINGER 0), so the peer sees a reset rather than
// a clean EOF — the failure mode crashed processes actually produce.
func abortiveClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	c.Close()
}
