package server

import (
	"encoding/json"
	"sync"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
)

// Sweep lifecycle states.
const (
	// StatusQueued: accepted, no job picked up yet.
	StatusQueued = "queued"
	// StatusRunning: at least one job started.
	StatusRunning = "running"
	// StatusDone: every job finished; results are final.
	StatusDone = "done"
	// StatusCheckpointed: the daemon drained before the sweep finished;
	// the partial results are final (unreached jobs carry the
	// cancellation error) and, when a checkpoint directory is
	// configured, were written to disk.
	StatusCheckpointed = "checkpointed"
)

// Per-job states within a sweep. A drain-time cancellation produces two
// distinct terminal states: "aborted" for a job whose simulation was
// interrupted mid-run (its record carries the partial metrics, and the
// checkpoint NDJSON row carries "aborted":true — the two surfaces
// always agree), and "skipped" for a job whose simulation never ran —
// whether the cancellation reached it in the queue, blocked on the
// worker pool, or waiting on a coalesced flight. Both re-enqueue
// cleanly after a restart; "error" is reserved for simulations that
// actually failed.
const (
	JobPending = "pending"
	JobRunning = "running"
	JobDone    = "done"
	JobError   = "error"
	JobAborted = "aborted"
	JobSkipped = "skipped"
)

// JobView is the per-job progress record in sweep status responses.
type JobView struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	PFKiB     int    `json:"pf_kib"`
	Status    string `json:"status"`
	// Resumed marks a job whose simulation continued from a
	// machine-state checkpoint (after a restart, a preemption by a dead
	// predecessor, or a fleet migration) instead of starting at event
	// zero. The result is bit-identical either way.
	Resumed bool   `json:"resumed,omitempty"`
	Error   string `json:"error,omitempty"`
}

// SweepView is the GET /v1/sweeps/{id} payload.
type SweepView struct {
	ID      string    `json:"id"`
	Status  string    `json:"status"`
	Created time.Time `json:"created"`
	// Finished is when the sweep reached a terminal state (done or
	// checkpointed); the -retain TTL counts from it. Zero while running.
	Finished time.Time `json:"finished,omitzero"`
	// Recovered marks a sweep re-enqueued from the cache directory at
	// boot rather than submitted over the API in this daemon's lifetime.
	Recovered bool      `json:"recovered,omitempty"`
	Total     int       `json:"total"`
	Done      int       `json:"done"`
	Jobs      []JobView `json:"jobs"`
}

// event is one SSE frame of a sweep's progress stream: Type becomes the
// SSE event name, Data its JSON payload.
type event struct {
	Type string
	Data []byte
}

// jobEvent is the payload of per-job SSE events.
type jobEvent struct {
	Sweep     string `json:"sweep"`
	Index     int    `json:"index"`
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	PFKiB     int    `json:"pf_kib"`
	Status    string `json:"status"`
	Resumed   bool   `json:"resumed,omitempty"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Error     string `json:"error,omitempty"`
}

// sweepEvent is the payload of sweep-level SSE events.
type sweepEvent struct {
	Sweep  string `json:"sweep"`
	Status string `json:"status"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

// sweepState is one submitted sweep: its spec, live progress, event
// history and (once finished) its results.
type sweepState struct {
	id        string
	created   time.Time
	sweep     *allarm.Sweep
	total     int
	recovered bool   // re-enqueued from disk at boot
	reqID     string // correlation id of the accepting request (timeline stamp)
	tl        obs.Timeline

	mu         sync.Mutex
	status     string
	jobs       []JobView
	done       int
	results    []allarm.SweepResult
	finishedAt time.Time // when the sweep reached a terminal state
	history    []event
	subs       map[chan struct{}]struct{}
	finished   chan struct{} // closed when results are final
}

func newSweepState(id string, s *allarm.Sweep, now time.Time) *sweepState {
	st := &sweepState{
		id:       id,
		created:  now,
		sweep:    s,
		total:    s.Len(),
		status:   StatusQueued,
		jobs:     make([]JobView, s.Len()),
		subs:     make(map[chan struct{}]struct{}),
		finished: make(chan struct{}),
	}
	for i, j := range s.Jobs {
		st.jobs[i] = JobView{
			Benchmark: j.WorkloadName(),
			Policy:    j.Config.Policy.String(),
			PFKiB:     j.Config.PFBytes >> 10,
			Status:    JobPending,
		}
	}
	return st
}

// publish appends an event to the history and pokes every subscriber.
// Callers must hold st.mu.
func (st *sweepState) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return // payloads are our own structs; cannot fail
	}
	st.history = append(st.history, event{Type: typ, Data: data})
	for ch := range st.subs {
		select {
		case ch <- struct{}{}:
		default: // subscriber already has a wakeup pending
		}
	}
}

// timeline appends one lifecycle event, stamped with the sweep's
// correlation id. job is the job index, -1 for sweep-level events.
func (st *sweepState) timeline(event string, job int, detail string) {
	st.tl.Add(obs.TimelineEvent{Event: event, Job: job, Detail: detail, RequestID: st.reqID})
}

// jobStarted marks job i running (the Runner.Start hook).
func (st *sweepState) jobStarted(i int) {
	st.timeline("started", i, "")
	st.mu.Lock()
	defer st.mu.Unlock()
	st.jobs[i].Status = JobRunning
	if st.status == StatusQueued {
		st.status = StatusRunning
		st.publish("sweep", sweepEvent{Sweep: st.id, Status: st.status, Done: st.done, Total: st.total})
	}
	st.publish("job", st.jobEventLocked(i))
}

// jobFinished records job i's outcome (the Runner.JobDone hook),
// distinguishing mid-run aborts from never-started skips on
// cancellation. resumed marks an execution continued from a
// machine-state checkpoint.
func (st *sweepState) jobFinished(i int, r allarm.SweepResult, resumed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.done++
	st.jobs[i].Resumed = resumed
	switch {
	case r.Err == nil:
		st.jobs[i].Status = JobDone
	case allarm.IsCancellation(r.Err):
		// Aborted iff a partial result exists — the same predicate the
		// emitters use for the checkpoint's "aborted" flag, so the
		// status endpoint and the NDJSON never disagree. A started-but-
		// never-simulating job (blocked on the pool or a flight) is
		// skipped: no simulation was interrupted.
		if r.Aborted() {
			st.jobs[i].Status = JobAborted
		} else {
			st.jobs[i].Status = JobSkipped
		}
		st.jobs[i].Error = r.Err.Error()
	default:
		st.jobs[i].Status = JobError
		st.jobs[i].Error = r.Err.Error()
	}
	st.tl.Add(obs.TimelineEvent{Event: "finished", Job: i, Detail: st.jobs[i].Status, RequestID: st.reqID})
	st.publish("job", st.jobEventLocked(i))
}

func (st *sweepState) jobEventLocked(i int) jobEvent {
	jv := st.jobs[i]
	return jobEvent{
		Sweep: st.id, Index: i,
		Benchmark: jv.Benchmark, Policy: jv.Policy, PFKiB: jv.PFKiB,
		Status: jv.Status, Resumed: jv.Resumed,
		Done: st.done, Total: st.total, Error: jv.Error,
	}
}

// finish stores the final (possibly partial) results and closes the
// stream. checkpointed marks a drain-time cancellation.
func (st *sweepState) finish(results []allarm.SweepResult, checkpointed bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.results = results
	st.finishedAt = time.Now()
	if checkpointed {
		st.status = StatusCheckpointed
	} else {
		st.status = StatusDone
	}
	st.tl.Add(obs.TimelineEvent{Event: "done", Job: -1, Detail: st.status, RequestID: st.reqID})
	st.publish("sweep", sweepEvent{Sweep: st.id, Status: st.status, Done: st.done, Total: st.total})
	close(st.finished)
}

// view snapshots the sweep for the status endpoint.
func (st *sweepState) view() SweepView {
	st.mu.Lock()
	defer st.mu.Unlock()
	jobs := make([]JobView, len(st.jobs))
	copy(jobs, st.jobs)
	return SweepView{
		ID: st.id, Status: st.status, Created: st.created,
		Finished: st.finishedAt, Recovered: st.recovered,
		Total: st.total, Done: st.done, Jobs: jobs,
	}
}

// expired reports whether the sweep reached a terminal state before
// cutoff (the -retain eviction predicate). Running sweeps never expire.
func (st *sweepState) expired(cutoff time.Time) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return !st.finishedAt.IsZero() && st.finishedAt.Before(cutoff)
}

// terminal reports whether the sweep has reached a final state.
func (st *sweepState) terminal() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status == StatusDone || st.status == StatusCheckpointed
}

// snapshot returns the final results, or ok == false while the sweep is
// still running.
func (st *sweepState) snapshot() (results []allarm.SweepResult, status string, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.status != StatusDone && st.status != StatusCheckpointed {
		return nil, st.status, false
	}
	return st.results, st.status, true
}

// subscribe registers an SSE consumer: a wakeup channel poked on every
// publish. The consumer reads history incrementally via eventsSince.
func (st *sweepState) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	st.mu.Lock()
	st.subs[ch] = struct{}{}
	st.mu.Unlock()
	return ch
}

func (st *sweepState) unsubscribe(ch chan struct{}) {
	st.mu.Lock()
	delete(st.subs, ch)
	st.mu.Unlock()
}

// eventsSince returns the history from index from on, plus whether the
// sweep is final (no further events will be published).
func (st *sweepState) eventsSince(from int) ([]event, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	final := st.status == StatusDone || st.status == StatusCheckpointed
	if from >= len(st.history) {
		return nil, final
	}
	evs := make([]event, len(st.history)-from)
	copy(evs, st.history[from:])
	return evs, final
}
