package energy

import (
	"math"
	"testing"

	"allarm/internal/core"
	"allarm/internal/dram"
	"allarm/internal/noc"
)

func TestComputeLinearInCounts(t *testing.T) {
	c := Default32nm()
	n := noc.Stats{FlitHops: 10, RouterXings: 20}
	pf := []core.PFStats{{Reads: 5, Writes: 3}}
	dr := []dram.Stats{{Reads: 2, Writes: 1}}
	b := Compute(n, pf, dr, c)
	wantNoC := 10*c.FlitLink + 20*c.FlitRouter
	wantPF := 5*c.PFRead + 3*c.PFWrite
	wantDRAM := 3 * c.DRAMAccess
	if b.NoC != wantNoC || b.PF != wantPF || b.DRAM != wantDRAM {
		t.Fatalf("breakdown %+v", b)
	}
	if b.Total() != wantNoC+wantPF+wantDRAM {
		t.Fatal("Total inconsistent")
	}
}

func TestComputeSumsNodes(t *testing.T) {
	c := Default32nm()
	pf := []core.PFStats{{Reads: 1}, {Reads: 2}, {Reads: 3}}
	b := Compute(noc.Stats{}, pf, nil, c)
	if b.PF != 6*c.PFRead {
		t.Fatalf("PF energy %v", b.PF)
	}
}

func TestPFAreaMatchesPaperEndpoints(t *testing.T) {
	// The power law is fitted on the published endpoints; require the
	// model within 10% there and within 45% at every published point
	// (McPAT's re-banking makes the middle points non-monotone in ratio).
	within := func(size int, tol float64) {
		got := PFAreaMM2(size)
		want := PaperPFAreaMM2(size)
		if math.Abs(got-want)/want > tol {
			t.Errorf("area(%dkB) = %.2f, paper %.2f (tol %.0f%%)", size>>10, got, want, tol*100)
		}
	}
	within(512<<10, 0.10)
	within(32<<10, 0.10)
	for _, kb := range []int{256, 128, 64} {
		within(kb<<10, 0.45)
	}
}

func TestPFAreaMonotone(t *testing.T) {
	prev := 0.0
	for _, kb := range []int{32, 64, 128, 256, 512, 1024} {
		a := PFAreaMM2(kb << 10)
		if a <= prev {
			t.Fatalf("area not monotone at %dkB: %v <= %v", kb, a, prev)
		}
		prev = a
	}
}

func TestPaperAreaTable(t *testing.T) {
	if PaperPFAreaMM2(512<<10) != 70.89 || PaperPFAreaMM2(32<<10) != 5.93 {
		t.Fatal("published endpoints wrong")
	}
	if PaperPFAreaMM2(1<<20) != 0 {
		t.Fatal("unpublished size should report 0")
	}
}
