// pfsweep reproduces the spirit of Figure 3h: how far can the probe
// filter shrink before each policy starts losing performance? ALLARM's
// answer — much further, because thread-local data needs no entries — is
// the paper's area-saving argument (§III-B's table).
package main

import (
	"fmt"
	"log"

	allarm "allarm"
)

func main() {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 30_000
	bench := "barnes"

	ref, err := allarm.Run(cfg, bench) // full-size baseline reference
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s: runtime vs probe-filter size (normalised to %dkB baseline)\n",
		bench, cfg.PFBytes>>10)
	fmt.Println("PF size   baseline   ALLARM")
	for _, div := range []int{1, 2, 4} {
		row := fmt.Sprintf("%5dkB", cfg.PFBytes>>10/div)
		for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM} {
			c := cfg
			c.Policy = pol
			c.PFBytes = cfg.PFBytes / div
			res, err := allarm.Run(c, bench)
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("   %6.3f", ref.RuntimeNs/res.RuntimeNs)
		}
		fmt.Println(row)
	}
}
