// Package faultnet is a deterministic fault-injection harness for the
// fleet's network paths: a declarative Plan of faults (latency, dropped
// connections, resets, 5xx/429 bursts, slow bodies, health-check flaps)
// applied by a seeded Injector, so every robustness claim the router
// makes — retry, backoff, exclusion, re-admission, degradation, journal
// recovery — can be asserted under replayable chaos instead of
// hand-rolled one-off stubs.
//
// The same Injector drives two delivery mechanisms:
//
//   - RoundTripper wraps an http.RoundTripper, injecting faults into
//     in-process clients (the router's shard transport in tests).
//   - Proxy / ProxyTCP stand between real processes: an HTTP reverse
//     proxy that can synthesize statuses, delay, drop and slow
//     responses, and a raw TCP proxy that refuses, delays and resets
//     connections at the byte level (cmd/allarm-faultnet exposes both).
//
// # Determinism
//
// Faults fire from two sources, both replayable. Window rules (Skip /
// Count / Every) count matching requests per rule and fire on exact
// match ordinals — fully deterministic regardless of scheduling, which
// is what tests assert exact behaviour against. Probabilistic rules
// (P < 1) draw from one seeded RNG under a lock: a fixed seed replays
// the same decision sequence whenever requests arrive in the same
// order, which is what the chaos suites use for coverage. Plans are
// plain JSON so CI jobs and tests share them verbatim.
package faultnet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Plan is a declarative fault schedule: an ordered rule list evaluated
// per request (or per connection, for conn-scoped rules). Every rule
// that matches contributes its faults; the first terminal fault (drop,
// reset or synthesized status) wins and stops evaluation, while
// latency from earlier matching rules accumulates.
type Plan struct {
	Rules []Rule `json:"rules"`
}

// Rule matches a slice of traffic and names the fault to inject.
// Matching is by scope, method, host and path prefix; the window fields
// (Skip, Count, Every, P) select which of the matching requests
// actually fault.
type Rule struct {
	// Name labels the rule in logs, stats and injected errors.
	Name string `json:"name,omitempty"`

	// Scope selects the traffic class: "http" (default) matches HTTP
	// requests seen by RoundTripper and Proxy; "conn" matches raw TCP
	// connections seen by ProxyTCP.
	Scope string `json:"scope,omitempty"`
	// Method matches the HTTP method exactly ("" = any).
	Method string `json:"method,omitempty"`
	// Host matches the request host:port exactly ("" = any).
	Host string `json:"host,omitempty"`
	// Path matches the URL path by prefix ("" = any).
	Path string `json:"path,omitempty"`

	// Skip lets the first N matching requests through untouched before
	// the rule arms — "the 3rd submit fails" is Skip: 2.
	Skip int `json:"skip,omitempty"`
	// Count bounds how many times the rule fires (0 = unlimited) — a
	// burst of exactly N faults.
	Count int `json:"count,omitempty"`
	// Every fires on every Nth armed match (0 or 1 = every match) — a
	// deterministic health-check flap is Path:"/healthz", Every:2.
	Every int `json:"every,omitempty"`
	// P fires with this probability per armed match (0 or 1 = always),
	// drawn from the Injector's seeded RNG.
	P float64 `json:"p,omitempty"`

	// LatencyMs delays the request before it is forwarded; JitterMs adds
	// a uniform random extra on top (seeded RNG).
	LatencyMs int `json:"latency_ms,omitempty"`
	JitterMs  int `json:"jitter_ms,omitempty"`
	// Drop fails the request with a transport-level error (HTTP scope)
	// or closes the connection on accept (conn scope) — the client sees
	// a reset, not an HTTP answer.
	Drop bool `json:"drop,omitempty"`
	// Status synthesizes this HTTP response instead of forwarding (5xx
	// outage, 429 throttle, flapping /healthz...).
	Status int `json:"status,omitempty"`
	// RetryAfterMs sets a Retry-After header on synthesized responses
	// (rounded up to whole seconds, the header's granularity).
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
	// SlowBodyMs delays every body read/write chunk — a shard that
	// answers but dribbles.
	SlowBodyMs int `json:"slow_body_ms,omitempty"`
	// ResetAfterBytes (conn scope) forwards this many target→client
	// bytes, then resets both sides mid-stream.
	ResetAfterBytes int `json:"reset_after_bytes,omitempty"`
}

// LoadPlan reads a JSON Plan from path.
func LoadPlan(path string) (Plan, error) {
	var p Plan
	data, err := os.ReadFile(path)
	if err != nil {
		return p, fmt.Errorf("faultnet: %w", err)
	}
	if err := json.Unmarshal(data, &p); err != nil {
		return p, fmt.Errorf("faultnet: %s: %w", path, err)
	}
	return p, p.validate()
}

func (p Plan) validate() error {
	for i, r := range p.Rules {
		switch r.Scope {
		case "", "http", "conn":
		default:
			return fmt.Errorf("faultnet: rule %d (%s): unknown scope %q", i, r.Name, r.Scope)
		}
		if r.P < 0 || r.P > 1 {
			return fmt.Errorf("faultnet: rule %d (%s): p must be in [0,1]", i, r.Name)
		}
	}
	return nil
}

// RuleStats reports one rule's activity: how many requests matched its
// selectors and how many actually faulted.
type RuleStats struct {
	Name    string `json:"name"`
	Matched uint64 `json:"matched"`
	Fired   uint64 `json:"fired"`
}

// Injector applies a Plan deterministically. One Injector carries all
// per-rule counters and the seeded RNG; share it between a
// RoundTripper and proxies to keep one global fault sequence.
type Injector struct {
	rules []Rule

	mu      sync.Mutex
	rng     *rand.Rand
	matched []uint64
	fired   []uint64
}

// New returns an Injector for plan. The seed fixes every probabilistic
// decision: same plan, same seed, same request order — same faults.
func New(plan Plan, seed int64) (*Injector, error) {
	if err := plan.validate(); err != nil {
		return nil, err
	}
	return &Injector{
		rules:   plan.Rules,
		rng:     rand.New(rand.NewSource(seed)),
		matched: make([]uint64, len(plan.Rules)),
		fired:   make([]uint64, len(plan.Rules)),
	}, nil
}

// Stats snapshots per-rule match/fire counters (chaos jobs log them so
// a "passed" run can be audited for whether faults actually fired).
func (in *Injector) Stats() []RuleStats {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]RuleStats, len(in.rules))
	for i, r := range in.rules {
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("rule-%d", i)
		}
		out[i] = RuleStats{Name: name, Matched: in.matched[i], Fired: in.fired[i]}
	}
	return out
}

// decision is the merged outcome of all matching rules for one request.
type decision struct {
	latency    time.Duration
	drop       bool
	status     int
	retryAfter time.Duration
	slowBody   time.Duration
	resetAfter int
	rule       string // name of the terminal rule, for error messages
}

func (d decision) terminal() bool { return d.drop || d.status != 0 }

// decide evaluates the plan for one request/connection. Counters and
// RNG advance under the lock, so the decision sequence is a pure
// function of (plan, seed, arrival order).
func (in *Injector) decide(scope, method, host, path string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	var d decision
	for i, r := range in.rules {
		rScope := r.Scope
		if rScope == "" {
			rScope = "http"
		}
		if rScope != scope {
			continue
		}
		if r.Method != "" && r.Method != method {
			continue
		}
		if r.Host != "" && r.Host != host {
			continue
		}
		if r.Path != "" && !strings.HasPrefix(path, r.Path) {
			continue
		}
		in.matched[i]++
		if in.matched[i] <= uint64(r.Skip) {
			continue
		}
		armed := in.matched[i] - uint64(r.Skip)
		if r.Count > 0 && in.fired[i] >= uint64(r.Count) {
			continue
		}
		if r.Every > 1 && (armed-1)%uint64(r.Every) != 0 {
			continue
		}
		if r.P > 0 && r.P < 1 && in.rng.Float64() >= r.P {
			continue
		}
		in.fired[i]++

		if r.LatencyMs > 0 || r.JitterMs > 0 {
			lat := time.Duration(r.LatencyMs) * time.Millisecond
			if r.JitterMs > 0 {
				lat += time.Duration(in.rng.Int63n(int64(r.JitterMs)+1)) * time.Millisecond
			}
			d.latency += lat
		}
		if r.SlowBodyMs > 0 && d.slowBody == 0 {
			d.slowBody = time.Duration(r.SlowBodyMs) * time.Millisecond
		}
		if r.ResetAfterBytes > 0 && d.resetAfter == 0 {
			d.resetAfter = r.ResetAfterBytes
		}
		if r.Drop || r.Status != 0 {
			d.drop = r.Drop
			d.status = r.Status
			d.retryAfter = time.Duration(r.RetryAfterMs) * time.Millisecond
			d.rule = r.Name
			if d.rule == "" {
				d.rule = fmt.Sprintf("rule-%d", i)
			}
			break // first terminal fault wins
		}
	}
	return d
}

// DroppedError is the transport-level failure injected for Drop rules;
// callers treating transport errors as retryable see exactly that.
type DroppedError struct{ Rule string }

func (e *DroppedError) Error() string {
	return fmt.Sprintf("faultnet: connection reset by rule %s", e.Rule)
}

// RoundTripper wraps next with the injector's plan: the in-process
// delivery mechanism, for pointing a client's transport at chaos
// without any proxy between (nil next = http.DefaultTransport).
func (in *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &faultTransport{in: in, next: next}
}

type faultTransport struct {
	in   *Injector
	next http.RoundTripper
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.in.decide("http", req.Method, req.URL.Host, req.URL.Path)
	if d.latency > 0 {
		if err := sleepCtx(req.Context(), d.latency); err != nil {
			return nil, err
		}
	}
	if d.drop {
		return nil, &DroppedError{Rule: d.rule}
	}
	if d.status != 0 {
		return synthResponse(req, d), nil
	}
	resp, err := t.next.RoundTrip(req)
	if err == nil && d.slowBody > 0 {
		resp.Body = &slowBody{rc: resp.Body, delay: d.slowBody, ctx: req.Context()}
	}
	return resp, err
}

// synthResponse fabricates the faulted HTTP answer for a Status rule.
func synthResponse(req *http.Request, d decision) *http.Response {
	body := fmt.Sprintf("{\"error\":\"faultnet: injected %d by rule %s\"}\n", d.status, d.rule)
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	setRetryAfter(h, d.retryAfter)
	return &http.Response{
		StatusCode:    d.status,
		Status:        fmt.Sprintf("%d %s", d.status, http.StatusText(d.status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// setRetryAfter writes a Retry-After header, rounding up to the whole
// seconds the header speaks.
func setRetryAfter(h http.Header, d time.Duration) {
	if d <= 0 {
		return
	}
	secs := int64((d + time.Second - 1) / time.Second)
	h.Set("Retry-After", strconv.FormatInt(secs, 10))
}

// slowBody meters reads: one injected delay per Read call.
type slowBody struct {
	rc    io.ReadCloser
	delay time.Duration
	ctx   context.Context
}

func (s *slowBody) Read(p []byte) (int, error) {
	if err := sleepCtx(s.ctx, s.delay); err != nil {
		return 0, err
	}
	return s.rc.Read(p)
}

func (s *slowBody) Close() error { return s.rc.Close() }

// sleepCtx sleeps for d, aborting early if ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
