// Package system assembles the simulated machine of Figure 1/Table I:
// sixteen nodes, each with a core (an in-order request driver), a private
// L1/L2 hierarchy fronted by a cache controller, a directory controller
// with its probe filter, and a memory controller — all joined by a 4×4
// mesh. It runs workloads to completion and collects the statistics every
// experiment is built from.
package system

import (
	"context"
	"fmt"

	"allarm/internal/cache"
	"allarm/internal/coherence"
	"allarm/internal/core"
	"allarm/internal/dram"
	"allarm/internal/energy"
	"allarm/internal/mem"
	"allarm/internal/noc"
	"allarm/internal/sim"
	"allarm/internal/workload"
)

// Config describes a machine instance. Zero values are invalid; use the
// facade's DefaultConfig (Table I) and override fields.
type Config struct {
	Nodes      int // must equal MeshW×MeshH
	MeshW      int
	MeshH      int
	L1Bytes    int
	L1Ways     int
	L2Bytes    int
	L2Ways     int
	PFCoverage int // bytes of cached data tracked per directory
	PFWays     int

	// Alloc, when non-nil, builds each directory's allocation policy
	// (one instance per directory, so policies may keep per-directory
	// state). When nil, the legacy Policy/Ranges pair selects a built-in.
	Alloc  func(node mem.NodeID) core.AllocPolicy
	Policy core.Policy
	Ranges *core.RangeSet

	CacheLatency sim.Time
	DirLatency   sim.Time
	DRAMLatency  sim.Time
	DRAMInterval sim.Time

	NoC noc.Config

	MemBytesPerNode uint64

	// CheckInvariants enables the coherence validator (SWMR, data-value,
	// PF inclusivity). Meant for tests: it adds per-access map work.
	CheckInvariants bool

	// MaxEvents aborts a run that exceeds this event budget (deadlock
	// guard); 0 means no limit.
	MaxEvents uint64

	// SimThreads partitions the machine's tiles over that many event
	// shards, drained concurrently in conservative NoC-lookahead windows
	// with results bit-identical to a serial run (see pdes.go). Values
	// <= 1 select the serial engine. The machine silently falls back to
	// serial when a shard per thread cannot be formed or parallel
	// execution is unsupported (invariant checker on, zero lookahead);
	// Shards reports the effective count.
	SimThreads int
}

// Validate reports the first configuration inconsistency.
func (c Config) Validate() error {
	switch {
	case c.Nodes <= 0 || c.Nodes != c.MeshW*c.MeshH:
		return fmt.Errorf("system: nodes (%d) must equal mesh %dx%d", c.Nodes, c.MeshW, c.MeshH)
	case c.L1Bytes <= 0 || c.L2Bytes <= 0 || c.PFCoverage <= 0:
		return fmt.Errorf("system: cache and probe-filter sizes must be positive")
	case c.L1Ways <= 0 || c.L2Ways <= 0 || c.PFWays <= 0:
		return fmt.Errorf("system: associativities must be positive")
	case c.CacheLatency < 0 || c.DirLatency < 0 || c.DRAMLatency <= 0:
		return fmt.Errorf("system: latencies must be non-negative (DRAM positive)")
	case c.MemBytesPerNode == 0:
		return fmt.Errorf("system: per-node memory must be positive")
	}
	return c.NoC.Validate()
}

// ThreadSpec pins one software thread to a node with its access stream
// and address space (processes share an address space; the multi-process
// experiment uses one space per process).
type ThreadSpec struct {
	Node   mem.NodeID
	Stream workload.Stream
	Space  *mem.AddressSpace
	Name   string
	// Warmup, when non-nil, is replayed before the measured stream; all
	// statistics are reset at the warmup/measurement boundary, leaving
	// caches and probe filters in their steady state (the standard
	// warmup-then-measure simulation methodology).
	Warmup workload.Stream
}

// Machine is one simulated system instance.
type Machine struct {
	cfg   Config
	eng   *sim.Engine // serial engine; nil when the machine is sharded
	mesh  *noc.Mesh
	phys  *mem.PhysMem
	nodes []*node
	cpus  []*cpu
	check *checker

	// Parallel (PDES) state — see pdes.go. shards is nil for serial
	// machines; shardOf maps a node to its owning shard index.
	shards     []*shard
	shardOf    []int
	lookahead  sim.Time
	mergeBuf   []stagedMsg
	replayHeap []replayNode
	delivBuf   []replayNode

	// spaces records every address space created through
	// NewAddressSpace, in creation order, so a machine checkpoint can
	// capture (and a restore can re-fill) the full translation state.
	spaces []*mem.AddressSpace

	// deliveries recycles the NoC in-flight records, so message
	// delivery allocates nothing in steady state.
	deliveries sim.FreeList[delivery]

	roiStart sim.Time

	// run is the stepwise run in progress (Start/StepCtx); nil when no
	// run is active.
	run *runState
}

// runPhase tracks where a stepwise run is in its lifecycle.
type runPhase uint8

const (
	phaseWarmup runPhase = iota + 1
	phaseROI
	phaseDone
)

// runState is the bookkeeping of one Start/StepCtx run: the thread set,
// the current phase, the events fired within that phase (the MaxEvents
// budget applies per phase, exactly as the original single-shot run
// loop did), and the measured region's origin.
type runState struct {
	threads    []ThreadSpec
	phase      runPhase
	phaseFired uint64
	roiStart   sim.Time
	cancelled  bool
}

type node struct {
	id   mem.NodeID
	hier *cache.Hierarchy
	cc   *coherence.CacheCtrl
	dir  *core.DirCtrl
	dram *dram.Controller
}

// port implements coherence.Port on the mesh.
type port struct{ m *Machine }

// delivery is one NoC in-flight record: a message travelling the mesh,
// scheduled as a sim.Handler for its arrival time. Records cycle through
// the machine's free list (serial) or the destination shard's (sh set).
type delivery struct {
	m   *Machine
	sh  *shard // owning shard on parallel machines; nil on serial ones
	msg *coherence.Msg
}

// Handle hands the message to the destination controller. The record is
// recycled first, so handlers that send further messages can reuse it.
func (d *delivery) Handle(now sim.Time) {
	m, msg := d.m, d.msg
	d.msg = nil
	if d.sh != nil {
		d.sh.deliveries.Put(d)
	} else {
		m.deliveries.Put(d)
	}
	dst := m.nodes[msg.Dst]
	if msg.ToDir {
		dst.dir.HandleMsg(now, msg)
	} else {
		dst.cc.HandleMsg(now, msg)
	}
}

// Send computes the message's network latency (with link contention) and
// schedules delivery at the destination controller.
func (p *port) Send(msg *coherence.Msg) {
	m := p.m
	arrival := m.mesh.Send(m.eng.Now(), msg.Src, msg.Dst, msg.Op.Class())
	d := m.deliveries.Get()
	d.m, d.msg = m, msg
	m.eng.Schedule(arrival, d)
}

// New builds a machine. The physical memory map is shared by all address
// spaces the caller constructs via NewAddressSpace.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:  cfg,
		mesh: noc.New(cfg.NoC),
		phys: mem.NewPhysMem(cfg.Nodes, cfg.MemBytesPerNode),
	}
	if shards := m.effectiveShards(); shards > 1 {
		m.buildShards(shards)
	} else {
		m.eng = &sim.Engine{}
	}
	p := &port{m: m}
	home := func(a mem.PAddr) mem.NodeID { return m.phys.Home(a) }
	for i := 0; i < cfg.Nodes; i++ {
		id := mem.NodeID(i)
		eng := m.engFor(id)
		prt := coherence.Port(p)
		if m.shards != nil {
			prt = m.shards[m.shardOf[i]].port
		}
		hier := cache.NewHierarchy(cfg.L1Bytes, cfg.L1Ways, cfg.L2Bytes, cfg.L2Ways)
		dc := dram.New(cfg.DRAMLatency, cfg.DRAMInterval)
		var alloc core.AllocPolicy
		if cfg.Alloc != nil {
			alloc = cfg.Alloc(id)
		}
		n := &node{
			id:   id,
			hier: hier,
			cc:   coherence.NewCacheCtrl(id, hier, eng, prt, home, cfg.CacheLatency),
			dram: dc,
			dir: core.NewDirCtrl(core.Config{
				Node: id, Nodes: cfg.Nodes,
				Alloc: alloc, Policy: cfg.Policy, Ranges: cfg.Ranges,
				LookupLatency: cfg.DirLatency,
			}, core.NewProbeFilter(cfg.PFCoverage, cfg.PFWays), eng, prt, dc),
		}
		if m.shards != nil {
			// Messages allocated by this node's controllers are released
			// by receivers that may live on other shards.
			n.cc.SharePool()
			n.dir.SharePool()
		}
		m.nodes = append(m.nodes, n)
	}
	if cfg.CheckInvariants {
		m.check = newChecker(m)
	}
	return m, nil
}

// Engine exposes the event engine (tests; serial machines only — a
// sharded machine has one engine per shard and returns nil here).
func (m *Machine) Engine() *sim.Engine { return m.eng }

// Shards reports the machine's effective event-shard count: 1 for the
// serial engine, the (possibly clamped) SimThreads otherwise.
func (m *Machine) Shards() int {
	if m.shards == nil {
		return 1
	}
	return len(m.shards)
}

// engFor returns the engine that owns node n's events.
func (m *Machine) engFor(n mem.NodeID) *sim.Engine {
	if m.shards == nil {
		return m.eng
	}
	return m.shards[m.shardOf[n]].eng
}

// now returns the current simulated time: the serial engine's clock or
// the latest shard clock (all shard clocks agree at window barriers, so
// they only differ transiently inside a cancelled window).
func (m *Machine) now() sim.Time {
	if m.shards == nil {
		return m.eng.Now()
	}
	var t sim.Time
	for _, s := range m.shards {
		if s.eng.Now() > t {
			t = s.eng.Now()
		}
	}
	return t
}

// Fired returns the total number of simulation events executed so far,
// across all shards (and, after a restore, including the checkpointed
// segment's events).
func (m *Machine) Fired() uint64 {
	if m.shards == nil {
		return m.eng.Fired()
	}
	var f uint64
	for _, s := range m.shards {
		f += s.eng.Fired()
	}
	return f
}

// pendingTotal returns the number of queued events across all engines.
func (m *Machine) pendingTotal() int {
	if m.shards == nil {
		return m.eng.Pending()
	}
	n := 0
	for _, s := range m.shards {
		n += s.eng.Pending()
	}
	return n
}

// Phys returns the machine's physical memory map.
func (m *Machine) Phys() *mem.PhysMem { return m.phys }

// NewAddressSpace creates a process address space over the machine's
// physical memory. The machine remembers every space it hands out (in
// creation order) so checkpoints capture translation state.
func (m *Machine) NewAddressSpace(policy mem.Policy) *mem.AddressSpace {
	s := mem.NewAddressSpace(m.phys, policy)
	m.spaces = append(m.spaces, s)
	return s
}

// Node returns node i's directory controller (tests/diagnostics).
func (m *Machine) Node(i int) *core.DirCtrl { return m.nodes[i].dir }

// CacheCtrl returns node i's cache controller (tests/diagnostics).
func (m *Machine) CacheCtrl(i int) *coherence.CacheCtrl { return m.nodes[i].cc }

// Preplace pre-faults a workload's pages at their first-toucher's node
// within the given address space, modelling the initialisation phase that
// precedes the measured region of interest.
func Preplace(space *mem.AddressSpace, wl workload.Preplacer, nodeOf func(thread int) mem.NodeID) {
	wl.ForEachPage(func(page mem.VAddr, thread int) {
		space.Translate(page, nodeOf(thread))
	})
}

// cpu is the in-order core model: it replays its stream, blocking on each
// access until the memory system completes it. The issue loop is
// allocation-free and closure-free: stepH is a typed handler embedded in
// the cpu (so the completion event in the queue is a serializable record,
// not an anonymous function), and the cpu itself is the sim.Handler for
// accesses pended behind a think delay (at most one is outstanding).
type cpu struct {
	m        *Machine
	eng      *sim.Engine // the engine owning this cpu's node
	idx      int
	spec     ThreadSpec
	issued   uint64
	done     bool
	finished sim.Time

	stepH  cpuStep
	pendPA mem.PAddr
	pendWr bool
}

// cpuStep is the typed "issue the next access" event for one cpu. It is
// a distinct handler type (rather than the cpu itself) because the cpu
// already serves as the think-pend handler; the two roles must remain
// distinguishable both to the engine and to the checkpoint registry.
type cpuStep struct{ c *cpu }

// Handle implements sim.Handler: issue the cpu's next access.
func (s *cpuStep) Handle(now sim.Time) { s.c.step(now) }

func newCPU(m *Machine, idx int, spec ThreadSpec) *cpu {
	c := &cpu{m: m, eng: m.engFor(spec.Node), idx: idx, spec: spec}
	c.stepH.c = c
	return c
}

// Handle issues the access pended behind a think delay.
func (c *cpu) Handle(now sim.Time) {
	c.m.nodes[c.spec.Node].cc.CoreAccess(now, c.pendPA, c.pendWr, &c.stepH)
}

func (c *cpu) step(now sim.Time) {
	acc, ok := c.spec.Stream.Next()
	if !ok {
		c.done = true
		c.finished = now
		return
	}
	c.issued++
	pa := c.spec.Space.Translate(acc.VAddr, c.spec.Node)
	if acc.Think > 0 {
		c.pendPA, c.pendWr = pa, acc.Write
		c.eng.ScheduleAfter(acc.Think, c)
	} else {
		c.m.nodes[c.spec.Node].cc.CoreAccess(now, pa, acc.Write, &c.stepH)
	}
}

// RunResult carries one run's outputs.
type RunResult struct {
	// Time is the completion time of the slowest thread (the paper's
	// region-of-interest runtime).
	Time sim.Time
	// PerThreadTime holds each thread's completion time.
	PerThreadTime []sim.Time
	// Accesses is the total demand accesses issued.
	Accesses uint64
	// Events is the number of simulation events executed.
	Events uint64

	Dir  []core.DirStats
	PF   []core.PFStats
	Hier []cache.HierStats
	Ctrl []coherence.CtrlStats
	DRAM []dram.Stats
	NoC  noc.Stats

	Energy energy.Breakdown
}

// Run executes the given threads to completion and returns the collected
// statistics. It returns an error when the event budget is exceeded or a
// post-run invariant fails. It is RunCtx with a background context.
func (m *Machine) Run(threads []ThreadSpec) (*RunResult, error) {
	return m.RunCtx(context.Background(), threads)
}

// RunCtx executes the given threads to completion, checking ctx for
// cancellation every sim.CancelCheckBudget events (see sim.RunCtx; a
// non-cancellable context costs nothing). On cancellation it returns
// the statistics collected so far — a well-formed partial RunResult
// whose per-thread times are clamped to the abort instant — together
// with an error wrapping ctx's error, so callers can checkpoint
// sub-run progress. It also returns an error when the event budget is
// exceeded or a post-run invariant fails.
//
// RunCtx is a thin loop over the stepwise Start/StepCtx/Finish API,
// which external drivers use directly when they need safe event
// boundaries between windows (periodic checkpointing, preemption).
func (m *Machine) RunCtx(ctx context.Context, threads []ThreadSpec) (*RunResult, error) {
	if err := m.Start(threads); err != nil {
		return nil, err
	}
	for {
		done, err := m.StepCtx(ctx, 0)
		if err != nil {
			if m.run.cancelled {
				return m.collect(), err
			}
			return nil, err
		}
		if done {
			return m.Finish()
		}
	}
}

// Start validates the thread set and schedules the run's first phase
// (warmup when any thread has a warmup stream, otherwise the measured
// region directly). Drive the run with StepCtx; collect with Finish.
func (m *Machine) Start(threads []ThreadSpec) error {
	if m.run != nil && m.run.phase != phaseDone {
		return fmt.Errorf("system: Start while a run is active")
	}
	if len(threads) == 0 {
		return fmt.Errorf("system: no threads to run")
	}
	for _, t := range threads {
		if int(t.Node) < 0 || int(t.Node) >= m.cfg.Nodes {
			return fmt.Errorf("system: thread pinned to invalid node %d", t.Node)
		}
		if t.Stream == nil || t.Space == nil {
			return fmt.Errorf("system: thread needs a stream and an address space")
		}
	}
	m.run = &runState{threads: threads}
	// Warmup phase: replay initialisation streams, then reset statistics
	// (cache, directory and network state carries over).
	anyWarm := false
	for _, t := range threads {
		if t.Warmup != nil {
			anyWarm = true
			break
		}
	}
	if !anyWarm {
		m.beginROI()
		return nil
	}
	m.run.phase = phaseWarmup
	m.cpus = m.cpus[:0]
	base := m.now()
	for i, t := range threads {
		if t.Warmup == nil {
			continue
		}
		w := t
		w.Stream = t.Warmup
		c := newCPU(m, i, w)
		m.cpus = append(m.cpus, c)
		c.eng.Schedule(base+sim.Time(i)*100*sim.Picosecond, &c.stepH)
	}
	return nil
}

// beginROI opens the measured region: fresh cpus for every thread,
// starts staggered by 100 ps per thread to break lockstep symmetry.
// On a sharded machine this runs at a window barrier, where every
// shard's clock agrees.
func (m *Machine) beginROI() {
	r := m.run
	r.roiStart = m.now()
	r.phase = phaseROI
	r.phaseFired = 0
	m.cpus = m.cpus[:0]
	for i, t := range r.threads {
		c := newCPU(m, i, t)
		m.cpus = append(m.cpus, c)
		c.eng.Schedule(r.roiStart+sim.Time(i)*100*sim.Picosecond, &c.stepH)
	}
}

// StepCtx advances the run by at most window events (0 = no window
// bound; the per-phase MaxEvents budget still applies) and reports
// whether the run has completed. A window boundary is a safe event
// boundary: no event is mid-dispatch, so the machine may be
// checkpointed (Snapshot) before the next StepCtx. On cancellation the
// statistics collected so far remain retrievable via Collect.
func (m *Machine) StepCtx(ctx context.Context, window uint64) (bool, error) {
	r := m.run
	if r == nil || r.phase == 0 {
		return false, fmt.Errorf("system: Step without Start")
	}
	if r.phase == phaseDone {
		return true, nil
	}
	if m.shards != nil {
		// Sharded machines advance in whole conservative windows (a
		// snapshot is only safe at a window barrier), so the event
		// bound is rounded up to the window that crosses it.
		return m.stepParallel(ctx, window)
	}
	limit := window
	if m.cfg.MaxEvents > 0 {
		remaining := uint64(0)
		if r.phaseFired < m.cfg.MaxEvents {
			remaining = m.cfg.MaxEvents - r.phaseFired
		}
		if limit == 0 || limit > remaining {
			limit = remaining
		}
	}
	fired, cerr := m.eng.RunCtx(ctx, limit)
	r.phaseFired += fired
	if cerr != nil {
		r.cancelled = true
		if r.phase == phaseWarmup {
			// Cancelled during warmup: no measured region exists yet, so
			// the partial result is empty-but-well-formed (zero times,
			// the warmup's component counters).
			m.roiStart = m.eng.Now()
			return false, fmt.Errorf("system: cancelled during warmup at t=%v: %w", m.eng.Now(), cerr)
		}
		m.roiStart = r.roiStart
		return false, fmt.Errorf("system: cancelled at t=%v with %d threads in flight: %w",
			m.eng.Now(), len(m.cpus), cerr)
	}
	if m.eng.Pending() == 0 {
		return m.phaseEnd()
	}
	if m.cfg.MaxEvents > 0 && r.phaseFired >= m.cfg.MaxEvents {
		return false, m.budgetExhausted()
	}
	return false, nil
}

// phaseEnd handles an emptied event queue: the warmup→ROI transition
// (reset statistics, fresh cpus) or run completion. Shared by the
// serial step loop and the parallel window scheduler (which calls it
// at a barrier, where all shard clocks agree).
func (m *Machine) phaseEnd() (bool, error) {
	r := m.run
	if r.phase == phaseWarmup {
		for _, c := range m.cpus {
			if !c.done {
				return false, fmt.Errorf("system: warmup thread %d(%s) did not finish", c.idx, c.spec.Name)
			}
		}
		m.resetStats()
		m.beginROI()
		return false, nil
	}
	for _, c := range m.cpus {
		if !c.done {
			return false, fmt.Errorf("system: thread %d(%s) did not finish (deadlock?)", c.idx, c.spec.Name)
		}
	}
	m.roiStart = r.roiStart
	r.phase = phaseDone
	return true, nil
}

// budgetExhausted builds the per-phase MaxEvents error.
func (m *Machine) budgetExhausted() error {
	if m.run.phase == phaseWarmup {
		return fmt.Errorf("system: event budget exhausted during warmup at t=%v", m.now())
	}
	return fmt.Errorf("system: event budget %d exhausted at t=%v (possible deadlock)", m.cfg.MaxEvents, m.now())
}

// Finish collects the completed run's statistics and applies the final
// invariant check (when enabled).
func (m *Machine) Finish() (*RunResult, error) {
	res := m.collect()
	if m.check != nil {
		if err := m.check.finalCheck(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// Collect returns the statistics gathered so far. It is meaningful
// after the run completes or after a cancelled StepCtx (which fixes the
// measured-region origin for partial results); external drivers use it
// to report partial progress.
func (m *Machine) Collect() *RunResult { return m.collect() }

// resetStats zeroes every component's counters at the warmup/measurement
// boundary; protocol and cache state is preserved.
func (m *Machine) resetStats() {
	for _, n := range m.nodes {
		n.cc.ResetStats()
		n.dir.ResetStats()
		n.dram.ResetStats()
	}
	m.mesh.ResetStats()
	for _, s := range m.shards {
		s.localMsgs = 0
	}
}

func (m *Machine) collect() *RunResult {
	res := &RunResult{Events: m.Fired()}
	for _, c := range m.cpus {
		res.Accesses += c.issued
		// A thread still in flight (cancelled run) has no completion
		// timestamp; clamp it to the abort instant. A thread that
		// finished before the measured region began (cancellation during
		// warmup, where roiStart is the abort instant) clamps to zero.
		// Either way partial results stay well-formed: monotone,
		// non-negative times.
		end := c.finished
		if !c.done {
			end = m.now()
		}
		if end < m.roiStart {
			end = m.roiStart
		}
		res.PerThreadTime = append(res.PerThreadTime, end-m.roiStart)
		if end-m.roiStart > res.Time {
			res.Time = end - m.roiStart
		}
	}
	for _, n := range m.nodes {
		res.Dir = append(res.Dir, n.dir.Stats())
		res.PF = append(res.PF, n.dir.PF().Stats())
		res.Hier = append(res.Hier, n.hier.Stats())
		res.Ctrl = append(res.Ctrl, n.cc.Stats())
		res.DRAM = append(res.DRAM, n.dram.Stats())
	}
	res.NoC = m.mesh.Stats()
	// Sharded machines deliver same-node messages on the owning shard
	// without a mesh call; fold those counts in so NoC statistics match
	// a serial run's exactly. (Snapshot folds them into the mesh itself;
	// by then the shard counters are zero, so nothing double-counts.)
	for _, s := range m.shards {
		res.NoC.LocalMsgs += s.localMsgs
	}
	res.Energy = energy.Compute(res.NoC, res.PF, res.DRAM, energy.Default32nm())
	return res
}

// Totals aggregates commonly used sums across nodes.
type Totals struct {
	PFEvictions     uint64
	PFAllocs        uint64
	NoCBytes        uint64
	NoCMessages     uint64
	L2Misses        uint64
	LocalRequests   uint64
	RemoteRequests  uint64
	EvictionMsgs    uint64
	EvictionProbes  uint64
	EvictionHits    uint64
	Invalidations   uint64
	LocalProbes     uint64
	ProbesHidden    uint64
	UntrackedGrants uint64
	UncachedGrants  uint64
	DRAMReads       uint64
	DRAMWrites      uint64
}

// Totals computes cross-node aggregates of a result.
func (r *RunResult) Totals() Totals {
	var t Totals
	for i := range r.Dir {
		t.PFEvictions += r.PF[i].Evictions
		t.PFAllocs += r.PF[i].Allocs
		t.L2Misses += r.Hier[i].Misses
		t.LocalRequests += r.Dir[i].LocalRequests
		t.RemoteRequests += r.Dir[i].RemoteRequests
		t.EvictionMsgs += r.Dir[i].EvictionMsgs
		t.EvictionProbes += r.Dir[i].EvictionProbes
		t.EvictionHits += r.Dir[i].EvictionProbeHits
		t.Invalidations += r.Hier[i].ProbeHits
		t.LocalProbes += r.Dir[i].LocalProbes
		t.ProbesHidden += r.Dir[i].LocalProbesHidden
		t.UntrackedGrants += r.Dir[i].UntrackedGrants
		t.UncachedGrants += r.Dir[i].UncachedGrants
		t.DRAMReads += r.DRAM[i].Reads
		t.DRAMWrites += r.DRAM[i].Writes
	}
	t.NoCBytes = r.NoC.Bytes
	t.NoCMessages = r.NoC.Messages
	return t
}
