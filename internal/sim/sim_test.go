package sim

import (
	"testing"
)

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(100, func(Time) {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past event")
		}
	}()
	e.At(50, func(Time) {})
}

func TestNilEventPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil event")
		}
	}()
	e.At(1, nil)
}

func TestAfterIsRelative(t *testing.T) {
	var e Engine
	var at Time
	e.At(100, func(now Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run(0)
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestRunLimit(t *testing.T) {
	var e Engine
	for i := 0; i < 10; i++ {
		e.At(Time(i), func(Time) {})
	}
	if fired := e.Run(4); fired != 4 {
		t.Fatalf("fired %d, want 4", fired)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending %d, want 6", e.Pending())
	}
}

func TestStop(t *testing.T) {
	var e Engine
	ran := 0
	e.At(1, func(Time) { ran++; e.Stop() })
	e.At(2, func(Time) { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func(Time) { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want deadline", e.Now())
	}
	e.Run(0)
	if len(fired) != 3 {
		t.Fatalf("remaining event lost: %v", fired)
	}
}

func TestDrain(t *testing.T) {
	var e Engine
	e.At(1, func(Time) { t.Fatal("drained event fired") })
	e.Drain()
	if e.Run(0) != 0 {
		t.Fatal("events after drain")
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var e Engine
	depth := 0
	var recurse Event
	recurse = func(now Time) {
		if depth < 100 {
			depth++
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	e.Run(0)
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTicker(t *testing.T) {
	var e Engine
	ticks := 0
	var tk *Ticker
	tk = e.Tick(10, func(now Time) {
		ticks++
		if ticks == 5 {
			tk.Cancel()
		}
	})
	e.Run(0)
	if ticks != 5 {
		t.Fatalf("ticks = %d", ticks)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTickNonPositivePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Tick(0, func(Time) {})
}

func TestTimeString(t *testing.T) {
	if s := (1500 * Picosecond).String(); s != "1.5ns" {
		t.Fatalf("String = %q", s)
	}
}

func TestFiredCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run(0)
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}
