package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	allarm "allarm"
)

// newObjectServer serves the object protocol from a temp directory.
func newObjectServer(t *testing.T) (string, string) {
	t.Helper()
	dir := t.TempDir()
	h, err := ObjectHandler(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts.URL, dir
}

func doReq(t *testing.T, method, url string, body []byte) *http.Response {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestObjectProtocol drives the handler through the whole verb set.
func TestObjectProtocol(t *testing.T) {
	base, _ := newObjectServer(t)
	name := objectName("some-key")
	payload := []byte(`{"key":"some-key","result":{"Benchmark":"b"}}` + "\n")

	// Empty store lists zero objects.
	resp := doReq(t, "GET", base+"/", nil)
	var count struct {
		Objects int `json:"objects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&count); err != nil || count.Objects != 0 {
		t.Fatalf("empty listing: %v / %+v", err, count)
	}

	// First PUT creates (201), second overwrites (200).
	if resp := doReq(t, "PUT", base+"/"+name, payload); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create PUT: status %d", resp.StatusCode)
	}
	if resp := doReq(t, "PUT", base+"/"+name, payload); resp.StatusCode != http.StatusOK {
		t.Fatalf("overwrite PUT: status %d", resp.StatusCode)
	}

	// GET round-trips the bytes; HEAD reports size without a body.
	resp = doReq(t, "GET", base+"/"+name, nil)
	got := new(bytes.Buffer)
	got.ReadFrom(resp.Body)
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("GET returned %q, want %q", got, payload)
	}
	resp = doReq(t, "HEAD", base+"/"+name, nil)
	if resp.StatusCode != http.StatusOK || resp.ContentLength != int64(len(payload)) {
		t.Fatalf("HEAD: status %d, length %d", resp.StatusCode, resp.ContentLength)
	}

	// Misses are 404; the listing now counts one object.
	if resp := doReq(t, "GET", base+"/"+objectName("other"), nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing object: status %d", resp.StatusCode)
	}
	resp = doReq(t, "GET", base+"/", nil)
	if err := json.NewDecoder(resp.Body).Decode(&count); err != nil || count.Objects != 1 {
		t.Fatalf("listing after put: %v / %+v", err, count)
	}

	// DELETE is not part of the protocol (objects are immutable).
	if resp := doReq(t, "DELETE", base+"/"+name, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE: status %d", resp.StatusCode)
	}
}

// TestObjectNameValidation: traversal and foreign names never reach the
// filesystem.
func TestObjectNameValidation(t *testing.T) {
	base, _ := newObjectServer(t)
	for _, name := range []string{
		"noext", "UPPER.json", "a/b.json", "..%2fescape.json",
		"with space.json", strings.Repeat("a", 130) + ".json",
	} {
		resp := doReq(t, "PUT", base+"/"+name, []byte("{}"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("name %q: status %d, want 400", name, resp.StatusCode)
		}
	}
}

// TestObjectStoreOverHTTP: the HTTP-backed ResultStore round-trips
// results through the object protocol with the same key verification as
// the directory store.
func TestObjectStoreOverHTTP(t *testing.T) {
	base, dir := newObjectServer(t)
	store, err := NewObjectStore(base, "")
	if err != nil {
		t.Fatal(err)
	}
	key := "bench:x|false|{}|{Threads:2}"
	res := &allarm.Result{Benchmark: "x", RuntimeNs: 7.5, Events: 3}
	if _, ok := store.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := store.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get(key)
	if !ok || got.Benchmark != "x" || got.RuntimeNs != 7.5 {
		t.Fatalf("round trip: %+v %v", got, ok)
	}
	if store.Len() != 1 {
		t.Fatalf("Len = %d, want 1", store.Len())
	}

	// The HTTP store and a directory store over the same files are the
	// same store: byte-compatible entries, either direction.
	disk, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := disk.Get(key); !ok || got.Events != 3 {
		t.Fatalf("disk store misses the HTTP store's write: %+v %v", got, ok)
	}
	if err := disk.Put("second-key", &allarm.Result{Benchmark: "y"}); err != nil {
		t.Fatal(err)
	}
	if got, ok := store.Get("second-key"); !ok || got.Benchmark != "y" {
		t.Fatalf("HTTP store misses the disk store's write: %+v %v", got, ok)
	}

	// Key verification holds across the wire: a foreign entry stored
	// under this key's name reads as a miss, never a wrong result.
	bad, _ := json.Marshal(diskEntry{Key: "some-other-key", Result: res})
	resp := doReq(t, "PUT", base+"/"+objectName("victim-key"), bad)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("planting mismatched entry: status %d", resp.StatusCode)
	}
	if _, ok := store.Get("victim-key"); ok {
		t.Fatal("key-mismatched entry served as a hit")
	}
}

// TestObjectStoreSharedBetweenDaemons is the fleet-storage acceptance
// path: daemon A serves its results directory over the object protocol;
// daemon B mounts it as its persistent tier; a sweep B never saw is
// answered from A's results with zero simulations.
func TestObjectStoreSharedBetweenDaemons(t *testing.T) {
	objDir := t.TempDir()
	sharedStore, err := NewDiskStore(objDir)
	if err != nil {
		t.Fatal(err)
	}
	var runsA, runsB atomic.Int64
	_, baseA := newTestServer(t, Options{
		Workers:        2,
		Store:          sharedStore,
		ObjectServeDir: objDir,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			runsA.Add(1)
			return &allarm.Result{Benchmark: j.WorkloadName(), RuntimeNs: 1}, nil
		},
	})
	remote, err := NewObjectStore(baseA+"/v1/objects", "")
	if err != nil {
		t.Fatal(err)
	}
	_, baseB := newTestServer(t, Options{
		Workers: 2,
		Store:   remote,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			runsB.Add(1)
			return &allarm.Result{Benchmark: j.WorkloadName(), RuntimeNs: 1}, nil
		},
	})

	req := SweepRequest{
		Benchmarks: []string{"barnes", "x264"},
		Config:     &ConfigOverrides{Threads: 2, AccessesPerThread: 50},
	}
	waitDone(t, baseA, submit(t, baseA, req).ID)
	if runsA.Load() != 2 {
		t.Fatalf("daemon A ran %d jobs, want 2", runsA.Load())
	}
	waitDone(t, baseB, submit(t, baseB, req).ID)
	if runsB.Load() != 0 {
		t.Fatalf("daemon B re-ran %d jobs despite the shared object store", runsB.Load())
	}
	m := metricsOf(t, baseB)
	if m.CacheDiskHits != 2 {
		t.Errorf("daemon B disk-tier hits = %d, want 2", m.CacheDiskHits)
	}
}

// TestObjectStoreAuth: an object endpoint behind a Guard accepts the
// configured bearer and refuses anonymous writes.
func TestObjectStoreAuth(t *testing.T) {
	guard, err := NewGuard([]ClientConfig{{Token: "store-secret", Name: "peer"}})
	if err != nil {
		t.Fatal(err)
	}
	objDir := t.TempDir()
	_, base := newTestServer(t, Options{Workers: 1, Guard: guard, ObjectServeDir: objDir})

	// Anonymous access fails already at open (the store seeds its entry
	// count through the guarded endpoint); a wrong token likewise.
	if store, err := NewObjectStore(base+"/v1/objects", ""); err == nil {
		if err := store.Put("k", &allarm.Result{Benchmark: "b"}); err == nil {
			t.Fatal("anonymous PUT through the Guard succeeded")
		}
	}
	if _, err := NewObjectStore(base+"/v1/objects", "wrong"); err == nil {
		t.Fatal("wrong token opened the guarded store")
	}

	authed, err := NewObjectStore(base+"/v1/objects", "store-secret")
	if err != nil {
		t.Fatal(err)
	}
	if err := authed.Put("k", &allarm.Result{Benchmark: "b"}); err != nil {
		t.Fatal(err)
	}
	if got, ok := authed.Get("k"); !ok || got.Benchmark != "b" {
		t.Fatalf("authed round trip: %+v %v", got, ok)
	}
}

// TestNewObjectStoreLocalPath: a non-URL base degrades to the directory
// store — one flag (-result-store) covers both deployments.
func TestNewObjectStoreLocalPath(t *testing.T) {
	dir := t.TempDir()
	store, err := NewObjectStore(dir, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Put("k", &allarm.Result{Benchmark: "b"}); err != nil {
		t.Fatal(err)
	}
	disk, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := disk.Get("k"); !ok {
		t.Fatal("local object store did not use the disk layout")
	}
}
