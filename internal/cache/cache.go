// Package cache models set-associative caches with MOESI line states and
// the private, exclusive L1/L2 hierarchy of the evaluated system.
//
// The model is structural, not functional: lines carry coherence state and
// bookkeeping, not data bytes. (The system layer separately tracks a
// 64-bit version per line to verify the data-value invariant in tests.)
package cache

import (
	"fmt"

	"allarm/internal/mem"
)

// State is a MOESI cache-line coherence state.
type State uint8

// MOESI states. The Hammer protocol uses all five: O (owned) arises when a
// modified line is shared without a DRAM writeback.
const (
	Invalid State = iota
	Shared
	Exclusive
	Owned
	Modified
)

// String implements fmt.Stringer (single-letter MOESI names).
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Owned:
		return "O"
	case Modified:
		return "M"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether the state holds a readable copy.
func (s State) Valid() bool { return s != Invalid }

// Dirty reports whether the state obliges a writeback on eviction.
func (s State) Dirty() bool { return s == Modified || s == Owned }

// Writable reports whether a store can hit in this state without a
// coherence transaction.
func (s State) Writable() bool { return s == Modified || s == Exclusive }

// Line is one cache line's bookkeeping.
type Line struct {
	// Addr is the line-aligned physical address (the full tag).
	Addr mem.PAddr
	// State is the MOESI state.
	State State
	// Untracked marks an ALLARM line cached without a probe-filter entry.
	// Real hardware has no such bit — ALLARM is stateless — it exists here
	// only for statistics and invariant checking.
	Untracked bool
	// Version is the line's data version (a global store counter carried
	// by data messages), used to verify the data-value invariant. Not a
	// hardware field.
	Version uint64

	valid bool
	lru   uint64
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Fills     uint64
	Evictions uint64
	// EvictionsDirty counts evictions in M or O (writeback required).
	EvictionsDirty uint64
	// Invalidations counts lines killed by coherence probes (including
	// probe-filter back-invalidations, the paper's key overhead).
	Invalidations uint64
}

// Cache is a single set-associative cache level with true-LRU replacement.
type Cache struct {
	name  string
	sets  int
	ways  int
	lines []Line // sets × ways, row-major
	tick  uint64
	stats Stats
}

// New builds a cache of capacityBytes with the given associativity.
// capacityBytes must be a positive multiple of ways*LineBytes and the
// resulting set count must be a power of two (hardware indexing).
func New(name string, capacityBytes, ways int) *Cache {
	if ways <= 0 || capacityBytes <= 0 {
		panic("cache: capacity and ways must be positive")
	}
	linesTotal := capacityBytes / mem.LineBytes
	if linesTotal*mem.LineBytes != capacityBytes || linesTotal%ways != 0 {
		panic("cache: capacity must be a multiple of ways*LineBytes")
	}
	sets := linesTotal / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("cache %s: set count %d is not a power of two", name, sets))
	}
	return &Cache{
		name:  name,
		sets:  sets,
		ways:  ways,
		lines: make([]Line, sets*ways),
	}
}

// Name returns the cache's diagnostic name.
func (c *Cache) Name() string { return c.name }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// CapacityBytes returns the data capacity.
func (c *Cache) CapacityBytes() int { return c.sets * c.ways * mem.LineBytes }

// Stats returns a copy of the accumulated statistics.
func (c *Cache) Stats() Stats { return c.stats }

// SetIndex returns the set index for a line address.
func (c *Cache) SetIndex(lineAddr mem.PAddr) int {
	return int(uint64(lineAddr)/mem.LineBytes) & (c.sets - 1)
}

func (c *Cache) set(lineAddr mem.PAddr) []Line {
	i := c.SetIndex(lineAddr) * c.ways
	return c.lines[i : i+c.ways]
}

// Lookup returns the line holding lineAddr, updating LRU, or nil on miss.
// It does not count a hit/miss: hit accounting belongs to the hierarchy,
// which knows whether the access ultimately hit.
func (c *Cache) Lookup(lineAddr mem.PAddr) *Line {
	lineAddr = mem.LineOf(lineAddr)
	for i := range c.set(lineAddr) {
		l := &c.set(lineAddr)[i]
		if l.valid && l.Addr == lineAddr {
			c.tick++
			l.lru = c.tick
			return l
		}
	}
	return nil
}

// Peek returns the line holding lineAddr without touching LRU state, or
// nil. Probes use Peek so that coherence activity does not perturb
// replacement decisions.
func (c *Cache) Peek(lineAddr mem.PAddr) *Line {
	lineAddr = mem.LineOf(lineAddr)
	for i := range c.set(lineAddr) {
		l := &c.set(lineAddr)[i]
		if l.valid && l.Addr == lineAddr {
			return l
		}
	}
	return nil
}

// Insert places a line (which must not already be present) and returns the
// evicted victim, if any. The caller is responsible for the victim's
// writeback/notification flow.
func (c *Cache) Insert(line Line) (victim Line, evicted bool) {
	lineAddr := mem.LineOf(line.Addr)
	if c.Peek(lineAddr) != nil {
		panic(fmt.Sprintf("cache %s: Insert of already-present line %#x", c.name, uint64(lineAddr)))
	}
	if !line.State.Valid() {
		panic(fmt.Sprintf("cache %s: Insert of invalid-state line", c.name))
	}
	set := c.set(lineAddr)
	vi := -1
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		vi = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[vi].lru {
				vi = i
			}
		}
		victim = set[vi]
		evicted = true
		c.stats.Evictions++
		if victim.State.Dirty() {
			c.stats.EvictionsDirty++
		}
	}
	c.tick++
	line.Addr = lineAddr
	line.valid = true
	line.lru = c.tick
	set[vi] = line
	c.stats.Fills++
	return victim, evicted
}

// Remove invalidates lineAddr and returns the line it held.
// ok is false when the line was not present.
func (c *Cache) Remove(lineAddr mem.PAddr) (Line, bool) {
	lineAddr = mem.LineOf(lineAddr)
	set := c.set(lineAddr)
	for i := range set {
		if set[i].valid && set[i].Addr == lineAddr {
			l := set[i]
			set[i] = Line{}
			return l, true
		}
	}
	return Line{}, false
}

// CountValid returns the number of valid lines (O(capacity); test helper).
func (c *Cache) CountValid() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}

// ForEachValid calls fn for every valid line (test/invariant helper).
func (c *Cache) ForEachValid(fn func(Line)) {
	for i := range c.lines {
		if c.lines[i].valid {
			fn(c.lines[i])
		}
	}
}

func (c *Cache) noteInvalidation() { c.stats.Invalidations++ }

// ResetStats zeroes the counters without touching cache contents
// (measurement begins after warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }
