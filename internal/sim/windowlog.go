package sim

// Window logging: the record a parallel machine's barrier replays to
// reconstruct the exact serial event order of a conservative window.
//
// The serial engine's tie-break is a global FIFO counter: two events at
// the same timestamp fire in the order their scheduling calls executed.
// That order is a deterministic function of the heap's structure — pop
// the minimum (at, seq), run it, append its scheduling calls in call
// order — but no per-shard key can reproduce it locally, because the
// counter interleaves calls from every tile. So each shard engine logs
// the structure instead: one LogEntry per dispatched event, and one
// LogChild per scheduling call it made (cross-tile sends, which the
// system layer stages rather than schedules, are interleaved into the
// same stream via LogExternal). At the barrier the machine replays all
// shards' logs through a single virtual heap with a true global
// counter, which assigns every event — fired, still pending, or a
// staged send's delivery — the exact sequence number the serial engine
// would have, then rewrites the pending heaps' provisional keys to
// dense ranks in that order (RewriteSeqs).
//
// Logging is engine-local and allocation-free in steady state (the
// slices are reset, not freed, each window). Serial engines never turn
// it on.

// LogEntry records one dispatched event: the (at, seq) identity it was
// popped with and the offset of its first child in the LogChild
// stream. An entry's children end where the next entry's begin (the
// last entry's at the end of the stream); dispatch is not reentrant,
// so the stream nests trivially.
type LogEntry struct {
	At   Time
	Seq  uint64
	Kids int32
}

// LogChild records one scheduling call made by the entry it belongs
// to, in call order. Ext < 0 is an engine-local child carrying the
// (At, Seq) it was inserted with; Ext >= 0 is a staged cross-tile send
// (an index into the shard's staged batch) whose delivery time and
// sequence the barrier replay computes.
type LogChild struct {
	At  Time
	Seq uint64
	Ext int32
}

// BeginWindowLog starts recording dispatches and scheduling calls,
// discarding any previous window's log. The engine must be keyed.
func (e *Engine) BeginWindowLog() {
	if !e.keyed {
		panic("sim: BeginWindowLog on a non-keyed engine")
	}
	e.log = e.log[:0]
	e.logKids = e.logKids[:0]
	e.logOn = true
}

// EndWindowLog stops recording and returns the window's log. The
// returned slices are valid until the next BeginWindowLog. Entries are
// in dispatch order, which for a window is sorted (At, Seq) order —
// the replay looks entries up by binary search.
func (e *Engine) EndWindowLog() ([]LogEntry, []LogChild) {
	e.logOn = false
	return e.log, e.logKids
}

// LogExternal interleaves an externally staged scheduling action (a
// cross-tile send the system layer stages for the window barrier) into
// the current dispatch's child stream, preserving its position among
// the event's engine-local scheduling calls. idx names the action in
// the stager's own batch. A no-op when logging is off.
func (e *Engine) LogExternal(idx int) {
	if e.logOn {
		e.logKids = append(e.logKids, LogChild{Ext: int32(idx)})
	}
}

// RewriteSeqs replaces every pending item's tie-break seq with
// fn(at, seq). The mapping must preserve the relative (at, seq) order
// of the pending set — the heap is not re-sifted — which is exactly
// what the barrier's dense re-ranking does.
func (e *Engine) RewriteSeqs(fn func(at Time, seq uint64) uint64) {
	for i := range e.queue {
		e.queue[i].seq = fn(e.queue[i].at, e.queue[i].seq)
	}
}
