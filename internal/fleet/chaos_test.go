package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"allarm/internal/faultnet"
	"allarm/internal/server"
)

// TestFleetChaosByteIdentical runs the acceptance gauntlet: a seeded
// faultnet plan (5xx bursts on submit, a 429 throttle, dropped
// connections, jittered latency) sits between the router and both
// shards; the sweep must complete cleanly — retries absorb every fault
// — with each job simulated exactly once fleet-wide and the gathered
// output byte-identical to an unfaulted single node.
func TestFleetChaosByteIdentical(t *testing.T) {
	plan := faultnet.Plan{Rules: []faultnet.Rule{
		// A deterministic 503 burst on the first two sub-sweep submits.
		{Name: "submit-outage", Method: "POST", Path: "/v1/sweeps", Status: 503, Count: 2},
		// One throttle on a status poll; the router must absorb it.
		{Name: "throttle", Method: "GET", Path: "/v1/sweeps", Status: 429, RetryAfterMs: 50, Count: 1},
		// Two dropped connections later in the poll sequence.
		{Name: "drops", Method: "GET", Path: "/v1/sweeps", Drop: true, Skip: 4, Count: 2},
		// Background latency jitter over everything (seeded).
		{Name: "latency", P: 0.4, LatencyMs: 1, JitterMs: 2},
	}}
	inj, err := faultnet.New(plan, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, base, shards := newTestFleet(t, 2, server.Options{Workers: 4}, Options{
		Transport:  inj.RoundTripper(nil),
		Attempts:   4,
		JitterSeed: 99,
	})
	single := newTestShard(t, server.Options{Workers: 4})

	sr := submit(t, base, bigRequest())
	v := waitFleetDone(t, base, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("chaos sweep status %q, want done: %+v", v.Status, v.Jobs)
	}
	// Exactly once per job: retried submits coalesce on the shards'
	// in-flight index and caches, so chaos cannot duplicate simulations.
	if got := totalRuns(shards); got != 24 {
		t.Errorf("chaos run simulated %d jobs, want 24", got)
	}

	sid := submit(t, single.url, bigRequest())
	for {
		resp, _ := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format=ndjson")
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, format := range []string{"json", "ndjson", "csv", "table"} {
		_, gathered := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format="+format)
		_, local := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format="+format)
		if !bytes.Equal(gathered, local) {
			t.Errorf("format %s: chaos gather differs from single node:\nfleet:\n%s\nsingle:\n%s",
				format, gathered, local)
		}
	}

	// Audit that the faults actually fired — a chaos pass that injected
	// nothing proves nothing.
	for _, rs := range inj.Stats() {
		if rs.Name != "latency" && rs.Fired == 0 {
			t.Errorf("rule %s never fired (matched %d); the plan missed its traffic", rs.Name, rs.Matched)
		}
	}
}

// TestFleetRetryAfterHonored: a 429 from a shard carries Retry-After,
// and the router's next attempt waits it out instead of using its own
// (much shorter) backoff schedule.
func TestFleetRetryAfterHonored(t *testing.T) {
	plan := faultnet.Plan{Rules: []faultnet.Rule{
		// Throttle the first two status-path GETs (the SSE subscribe may
		// take one; the status poll takes at least one).
		{Name: "throttle", Method: "GET", Path: "/v1/sweeps/", Status: 429, RetryAfterMs: 900, Count: 2},
	}}
	inj, err := faultnet.New(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, base, shards := newTestFleet(t, 1, server.Options{Workers: 2}, Options{
		Transport: inj.RoundTripper(nil),
		Attempts:  3,
		// Without Retry-After the jittered backoff would wait < 10ms.
		RetryBackoff: 5 * time.Millisecond,
	})

	req := server.SweepRequest{
		Benchmarks: []string{"barnes", "x264", "dedup"},
		Config:     &server.ConfigOverrides{Threads: 2, AccessesPerThread: 50},
	}
	begin := time.Now()
	sr := submit(t, base, req)
	v := waitFleetDone(t, base, sr.ID)
	elapsed := time.Since(begin)
	if v.Status != StatusDone {
		t.Fatalf("throttled sweep status %q", v.Status)
	}
	// 900ms rounds up to a "Retry-After: 1" header; honoring it means
	// the gather cannot have finished in well under a second.
	if elapsed < 900*time.Millisecond {
		t.Errorf("gather finished in %v; Retry-After was not honored", elapsed)
	}
	if got := totalRuns(shards); got != 3 {
		t.Errorf("ran %d simulations, want 3", got)
	}
}

// TestFleetHealthFlapChurn: a shard oscillating across the exclusion
// threshold must not lose or double-count jobs — the sweep ends done
// with every row a real result and the job count exact — and the
// unhealthy-interval metrics must grow monotonically through the churn.
func TestFleetHealthFlapChurn(t *testing.T) {
	victim := newTestShard(t, server.Options{Workers: 4})
	victim.gate = make(chan struct{}) // victim never completes a job
	healthy := newTestShard(t, server.Options{Workers: 4})
	rt, err := New(Options{
		Shards:         []string{healthy.url, victim.url},
		Attempts:       2,
		RetryBackoff:   2 * time.Millisecond,
		HealthInterval: 10 * time.Millisecond,
		FailAfter:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	base := ts.URL
	defer close(victim.gate)

	sr := submit(t, base, bigRequest())

	// Oscillate the victim across the threshold. Each exclusion fails
	// its in-flight group (jobs → skipped) and each transition runs a
	// requeue pass; the metrics samples must never move backwards.
	sample := func() ShardMetrics {
		t.Helper()
		var m Metrics
		_, body := get(t, base+"/metrics")
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
		for _, row := range m.Shards {
			if row.Name == victim.url {
				return row
			}
		}
		t.Fatal("victim missing from /metrics")
		return ShardMetrics{}
	}
	var last ShardMetrics
	check := func() {
		t.Helper()
		cur := sample()
		if cur.UnhealthyIntervals < last.UnhealthyIntervals {
			t.Fatalf("unhealthy_intervals went backwards: %d -> %d", last.UnhealthyIntervals, cur.UnhealthyIntervals)
		}
		if cur.UnhealthySeconds < last.UnhealthySeconds {
			t.Fatalf("unhealthy_seconds went backwards: %g -> %g", last.UnhealthySeconds, cur.UnhealthySeconds)
		}
		last = cur
	}
	for flap := 0; flap < 3; flap++ {
		victim.dead.Store(true)
		waitShardHealth(t, base, victim.url, false)
		check()
		victim.dead.Store(false)
		waitShardHealth(t, base, victim.url, true)
		check()
	}
	victim.dead.Store(true)
	waitShardHealth(t, base, victim.url, false)
	check()

	// With the victim finally out, every job must end up done on the
	// survivor — none lost, none skipped, none run twice.
	v := waitFleetStatus(t, base, sr.ID, StatusDone)
	for i, j := range v.Jobs {
		if j.Shard != healthy.url || j.Status != server.JobDone {
			t.Errorf("job %d after churn: shard %s status %q", i, j.Shard, j.Status)
		}
	}
	if victim.runs.Load() != 0 {
		t.Errorf("gated victim ran %d jobs", victim.runs.Load())
	}
	if healthy.runs.Load() != 24 {
		t.Errorf("survivor ran %d jobs, want 24 (lost or double-run)", healthy.runs.Load())
	}

	// The churned gather still matches a single-node run byte for byte.
	single := newTestShard(t, server.Options{Workers: 4})
	sid := submit(t, single.url, bigRequest())
	for {
		resp, _ := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format=csv")
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, gathered := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	_, local := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format=csv")
	if !bytes.Equal(gathered, local) {
		t.Errorf("churned gather differs from single node:\nfleet:\n%s\nsingle:\n%s", gathered, local)
	}
	check()
}

// TestFleetChaosRecovery composes the journal with the fault plan: a
// router restarted into a faulty network still recovers its sweep —
// retries absorb the boot-time chaos exactly as they do at submit time.
func TestFleetChaosRecovery(t *testing.T) {
	dir := t.TempDir()
	sh := newTestShard(t, server.Options{Workers: 4})
	cleanOpts := Options{
		Shards:         []string{sh.url},
		Attempts:       4,
		RetryBackoff:   2 * time.Millisecond,
		HealthInterval: time.Hour,
		StateDir:       dir,
	}

	rt1, err := New(cleanOpts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(rt1.Handler())
	sh.gate = make(chan struct{})
	sr := submit(t, ts1.URL, bigRequest())
	time.Sleep(20 * time.Millisecond) // let the scatter journal and stall
	ts1.Close()
	rt1.Close()
	close(sh.gate)
	waitTotalRuns(t, []*testShard{sh}, 24)

	// Second boot: same journal, now with faults on the re-poll path.
	plan := faultnet.Plan{Rules: []faultnet.Rule{
		{Name: "boot-outage", Method: "GET", Path: "/v1/sweeps", Status: 500, Count: 2},
		{Name: "drop", Method: "POST", Path: "/v1/sweeps", Drop: true, Count: 1},
	}}
	inj, err := faultnet.New(plan, 3)
	if err != nil {
		t.Fatal(err)
	}
	chaosOpts := cleanOpts
	chaosOpts.Transport = inj.RoundTripper(nil)
	chaosOpts.JitterSeed = 11
	rt2, err := New(chaosOpts)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		rt2.Close()
	})

	v := waitFleetDone(t, ts2.URL, sr.ID)
	if v.Status != StatusDone || !v.Recovered {
		t.Fatalf("chaos recovery: status %q recovered %v: %+v", v.Status, v.Recovered, v.Jobs)
	}
	if got := sh.runs.Load(); got != 24 {
		t.Errorf("chaos recovery re-ran simulations: %d, want 24", got)
	}
}
