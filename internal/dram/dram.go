// Package dram models one node's memory controller and DRAM block: a
// fixed access latency (Table I: 60 ns) plus a service-rate queue that
// bounds bandwidth. Each node of the simulated machine owns one
// Controller fronting its 128 MiB DRAM slice.
//
// The controller is callback-free by design: Read and Write return the
// operation's completion time and the caller schedules its own
// continuation — the directory controller uses a pooled sim.Handler
// record per completion, keeping DRAM accesses off the allocator's hot
// path.
package dram

import "allarm/internal/sim"

// Stats counts DRAM operations.
type Stats struct {
	Reads  uint64
	Writes uint64
	// QueueDelay accumulates time requests spent waiting for the
	// controller (contention), for utilisation diagnostics.
	QueueDelay sim.Time
}

// Controller is one node's memory controller. The zero value is unusable;
// construct with New.
type Controller struct {
	latency  sim.Time
	interval sim.Time // minimum spacing between request starts (bandwidth)
	nextFree sim.Time
	stats    Stats
}

// New builds a controller with the given access latency and minimum
// inter-request interval. interval == 0 models unlimited bandwidth.
func New(latency, interval sim.Time) *Controller {
	if latency < 0 || interval < 0 {
		panic("dram: negative timing parameter")
	}
	return &Controller{latency: latency, interval: interval}
}

// Latency returns the configured access latency.
func (c *Controller) Latency() sim.Time { return c.latency }

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// ResetStats zeroes the counters; queue state is kept.
func (c *Controller) ResetStats() { c.stats = Stats{} }

func (c *Controller) start(now sim.Time) sim.Time {
	start := now
	if c.nextFree > start {
		start = c.nextFree
		c.stats.QueueDelay += start - now
	}
	c.nextFree = start + c.interval
	return start
}

// Read schedules a line read issued at now and returns its completion
// time.
func (c *Controller) Read(now sim.Time) sim.Time {
	c.stats.Reads++
	return c.start(now) + c.latency
}

// Write schedules a line write issued at now and returns its completion
// time. Writebacks are posted (the protocol does not wait on them), but
// they still consume controller bandwidth.
func (c *Controller) Write(now sim.Time) sim.Time {
	c.stats.Writes++
	return c.start(now) + c.latency
}
