package system

import (
	"bytes"
	"context"
	"fmt"
	"reflect"
	"testing"

	"allarm/internal/core"
	"allarm/internal/mem"
	"allarm/internal/workload"
)

// snapBuild constructs a fresh machine + thread specs for the snapshot
// tests, exactly reproducibly (the resume contract: the restorer
// rebuilds machine and streams from the job spec, then Restore
// fast-forwards). Invariant checking is off — checker shadow state is
// not serializable.
func snapBuild(t *testing.T, policy core.Policy, warmup bool) (*Machine, []ThreadSpec) {
	t.Helper()
	cfg := testConfig(policy)
	cfg.CheckInvariants = false
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wl := workload.MustSynthetic(stressParams(4, 2000))
	space := m.NewAddressSpace(mem.FirstTouch)
	Preplace(space, wl, func(th int) mem.NodeID { return mem.NodeID(th % cfg.Nodes) })
	var specs []ThreadSpec
	for th := 0; th < 4; th++ {
		s := ThreadSpec{
			Node: mem.NodeID(th), Stream: wl.Stream(th, 42), Space: space,
			Name: fmt.Sprintf("snap/%d", th),
		}
		if warmup {
			s.Warmup = wl.Stream(th, 7)
		}
		specs = append(specs, s)
	}
	return m, specs
}

// stepUntilFired drives a started run in small windows until the engine
// has fired at least target events (or the run completes, which the
// caller treats as "snapshot point never reached").
func stepUntilFired(t *testing.T, m *Machine, target uint64) bool {
	t.Helper()
	for m.Engine().Fired() < target {
		done, err := m.StepCtx(context.Background(), 2048)
		if err != nil {
			t.Fatalf("StepCtx: %v", err)
		}
		if done {
			return true
		}
	}
	return false
}

// finishRun drives a run to completion and collects.
func finishRun(t *testing.T, m *Machine) *RunResult {
	t.Helper()
	for {
		done, err := m.StepCtx(context.Background(), 0)
		if err != nil {
			t.Fatalf("StepCtx: %v", err)
		}
		if done {
			res, err := m.Finish()
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			return res
		}
	}
}

// assertIdentical compares two run results field by field.
func assertIdentical(t *testing.T, want, got *RunResult, label string) {
	t.Helper()
	if want.Time != got.Time || want.Accesses != got.Accesses || want.Events != got.Events {
		t.Fatalf("%s: headline metrics differ: time %v/%v accesses %d/%d events %d/%d",
			label, want.Time, got.Time, want.Accesses, got.Accesses, want.Events, got.Events)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("%s: results are not bit-identical:\nwant %+v\ngot  %+v", label, want, got)
	}
}

// TestSnapshotResumeBitIdentical is the subsystem's acceptance bar: a
// run snapshotted mid-flight and resumed in a fresh machine must finish
// with results bit-identical to an uninterrupted run — and taking the
// snapshot must not perturb the original machine either.
func TestSnapshotResumeBitIdentical(t *testing.T) {
	for _, policy := range []core.Policy{core.Baseline, core.ALLARM} {
		t.Run(policy.String(), func(t *testing.T) {
			// Reference: uninterrupted run.
			m1, specs1 := snapBuild(t, policy, false)
			ref, err := m1.Run(specs1)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Snapshot roughly mid-run.
			m2, specs2 := snapBuild(t, policy, false)
			if err := m2.Start(specs2); err != nil {
				t.Fatalf("Start: %v", err)
			}
			if stepUntilFired(t, m2, ref.Events/2) {
				t.Fatalf("run completed before the snapshot point")
			}
			if !m2.CanSnapshot() {
				t.Fatalf("CanSnapshot=false at a window boundary in the measured region")
			}
			var buf bytes.Buffer
			if err := m2.Snapshot(&buf, "meta:test"); err != nil {
				t.Fatalf("Snapshot: %v", err)
			}

			// The snapshotted machine continues unperturbed.
			cont := finishRun(t, m2)
			assertIdentical(t, ref, cont, "snapshot perturbed the running machine")

			// Restore into a fresh machine and finish.
			m3, specs3 := snapBuild(t, policy, false)
			meta, err := m3.Restore(bytes.NewReader(buf.Bytes()), specs3)
			if err != nil {
				t.Fatalf("Restore: %v", err)
			}
			if meta != "meta:test" {
				t.Fatalf("meta round-trip: %q", meta)
			}
			resumed := finishRun(t, m3)
			assertIdentical(t, ref, resumed, "resumed run")
		})
	}
}

// TestSnapshotResumeAfterWarmup snapshots inside the measured region of
// a run that had warmup streams: warmup state (caches, probe filters)
// is baked into the component state, statistics were reset at the
// boundary, and the resume must not replay warmup.
func TestSnapshotResumeAfterWarmup(t *testing.T) {
	m1, specs1 := snapBuild(t, core.ALLARM, true)
	ref, err := m1.Run(specs1)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	m2, specs2 := snapBuild(t, core.ALLARM, true)
	if err := m2.Start(specs2); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Step past warmup (phase change shows up as CanSnapshot flipping
	// true), then to roughly three quarters of the whole run.
	if stepUntilFired(t, m2, ref.Events*3/4) {
		t.Fatalf("run completed before the snapshot point")
	}
	if !m2.CanSnapshot() {
		t.Skipf("snapshot point landed outside the measured region")
	}
	var buf bytes.Buffer
	if err := m2.Snapshot(&buf, "warm"); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}

	m3, specs3 := snapBuild(t, core.ALLARM, true)
	if _, err := m3.Restore(bytes.NewReader(buf.Bytes()), specs3); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	resumed := finishRun(t, m3)
	assertIdentical(t, ref, resumed, "resumed warmed run")
}

// TestSnapshotGuards verifies the refusal paths: no run, warmup phase,
// invariant checker enabled, restore into a dirty machine.
func TestSnapshotGuards(t *testing.T) {
	m, specs := snapBuild(t, core.Baseline, false)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf, ""); err == nil {
		t.Fatalf("Snapshot before Start succeeded")
	}
	if m.CanSnapshot() {
		t.Fatalf("CanSnapshot true before Start")
	}

	// Checker on: both directions refused.
	cfg := testConfig(core.Baseline)
	mc, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if mc.CanSnapshot() {
		t.Fatalf("CanSnapshot true with the invariant checker on")
	}

	// A machine that has run already cannot be a restore target.
	if err := m.Start(specs); err != nil {
		t.Fatalf("Start: %v", err)
	}
	stepUntilFired(t, m, 1)
	if _, err := m.Restore(bytes.NewReader(nil), specs); err == nil {
		t.Fatalf("Restore into an active machine succeeded")
	}
}

// TestRestoreRejectsCorruption flips and truncates checkpoint bytes and
// expects clean errors (never a panic, never a silently wrong machine).
func TestRestoreRejectsCorruption(t *testing.T) {
	m, specs := snapBuild(t, core.ALLARM, false)
	if err := m.Start(specs); err != nil {
		t.Fatalf("Start: %v", err)
	}
	stepUntilFired(t, m, 20000)
	var buf bytes.Buffer
	if err := m.Snapshot(&buf, "corrupt-me"); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	blob := buf.Bytes()

	cases := map[string][]byte{
		"empty":     {},
		"magic":     append([]byte("NOPE"), blob[4:]...),
		"truncated": blob[:len(blob)/2],
		"short":     blob[:len(blob)-1],
	}
	// Bit flips across the blob (header, payload, trailer CRC).
	for _, off := range []int{7, len(blob) / 3, len(blob) / 2, len(blob) - 2} {
		flipped := append([]byte(nil), blob...)
		flipped[off] ^= 0x40
		cases[fmt.Sprintf("flip@%d", off)] = flipped
	}
	for name, data := range cases {
		t.Run(name, func(t *testing.T) {
			fresh, fspecs := snapBuild(t, core.ALLARM, false)
			if _, err := fresh.Restore(bytes.NewReader(data), fspecs); err == nil {
				t.Fatalf("corrupted checkpoint restored without error")
			}
		})
	}

	// Mismatched machine shape: wrong thread count.
	fresh, fspecs := snapBuild(t, core.ALLARM, false)
	if _, err := fresh.Restore(bytes.NewReader(blob), fspecs[:2]); err == nil {
		t.Fatalf("restore with wrong thread count succeeded")
	}

	// Wrong policy: the directory codec must notice.
	wrongPol, wpSpecs := snapBuild(t, core.Baseline, false)
	if _, err := wrongPol.Restore(bytes.NewReader(blob), wpSpecs); err == nil {
		t.Fatalf("restore under a different policy succeeded")
	}
}
