package allarm

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Job is one simulation to run: a workload under a configuration,
// optionally in the paper's multi-process mode. Jobs are plain values —
// build them directly or derive grids with the Sweep combinators. The
// workload is either a benchmark preset named by Benchmark or any
// first-class Workload (a trace replay, a programmatic generator, ...)
// carried in Workload; when both are set, Workload wins.
type Job struct {
	// Benchmark names a workload preset (see Benchmarks and
	// MultiProcessBenchmarks); ignored when Workload is non-nil.
	Benchmark string
	// Workload, when non-nil, is the first-class workload this job runs
	// through Run. Sweeps can mix preset and Workload jobs freely.
	Workload Workload
	// Config is the machine (and, for presets, workload scale) for this
	// job.
	Config Config
	// MultiProcess, when non-nil, runs the job through RunMultiProcess
	// (Figure 4 mode) instead; it applies to benchmark presets only.
	MultiProcess *MultiProcessConfig
}

// Run executes the job and returns its metrics. It is RunCtx with a
// background context.
func (j Job) Run() (*Result, error) { return j.RunCtx(context.Background()) }

// RunCtx executes the job under ctx: the simulation aborts within one
// sim.CancelCheckBudget of events after ctx expires, returning the
// partial Result (Partial == true) together with the cancellation
// error. See RunCtx for the underlying contract.
func (j Job) RunCtx(ctx context.Context) (*Result, error) {
	if j.Workload != nil {
		return RunCtx(ctx, j.Config, j.Workload)
	}
	if j.MultiProcess != nil {
		return RunMultiProcessCtx(ctx, j.Config, *j.MultiProcess, j.Benchmark)
	}
	return RunBenchmarkCtx(ctx, j.Config, j.Benchmark)
}

// IsCancellation reports whether err stems from a cancelled or expired
// context — the errors RunCtx, Job.RunCtx and Runner.Run attach to jobs
// that were aborted mid-simulation or skipped before starting. It is
// how consumers (allarm-serve's per-job status, emitters, harnesses)
// distinguish "the machine said no" from "the simulation failed".
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// WorkloadName returns the name identifying the job's workload: the
// Workload's Name when one is set, the Benchmark name otherwise.
func (j Job) WorkloadName() string {
	if j.Workload != nil {
		return j.Workload.Name()
	}
	return j.Benchmark
}

// workloadKey fingerprints the job's workload for Dedup: benchmark
// presets by name, Workloads by their Key (see Keyer) or, failing that,
// by name and thread count.
func (j Job) workloadKey() string {
	if j.Workload == nil {
		return "bench:" + j.Benchmark
	}
	if k, ok := j.Workload.(Keyer); ok {
		return "wl:" + k.Key()
	}
	return fmt.Sprintf("wl:%s#%d", j.Workload.Name(), j.Workload.Threads())
}

// Key returns a stable fingerprint identifying the simulation the job
// performs: two jobs with equal keys produce identical Results. It
// drives Sweep.Dedup, is the content address of the serving result
// cache (internal/server, cmd/allarm-serve), and is the sharding key
// allarm-router consistent-hashes to place jobs on fleet nodes — equal
// keys always land on the same shard, which is what keeps per-shard
// caches coherent without any cross-node invalidation. A job's key is
// therefore part of the package's compatibility surface — golden-tested
// by the TestJobKeyGolden* tests — and must only change when the
// simulation semantics actually change (for example, Config gaining a
// behaviour-affecting field). Silent drift would make the service cache
// conflate distinct simulations or miss identical ones.
func (j Job) Key() string {
	// MultiProcess is inert when a first-class Workload is set (Job.Run
	// checks Workload first), so it must not split the fingerprint.
	mp := MultiProcessConfig{}
	mpActive := j.Workload == nil && j.MultiProcess != nil
	if mpActive {
		mp = *j.MultiProcess
	}
	return fmt.Sprintf("%s|%t|%+v|%+v", j.workloadKey(), mpActive, mp, j.configKey())
}

// configKey mirrors Config's behaviour-affecting fields, in Config's
// order, for Key's %+v fingerprint. SimThreads is deliberately absent:
// it is an execution knob with bit-identical results for every value,
// so it must not split the result cache (a 4-thread run may serve a
// cached serial result and vice versa). A field added to Config that
// affects simulation output must be added here too — the
// TestJobKeyGolden* tests pin the rendered form.
type configKey struct {
	Threads           int
	AccessesPerThread int
	Seed              uint64

	Policy       Policy
	ALLARMRanges []AddrRange
	MemPolicy    MemPolicy

	Nodes        int
	MeshW, MeshH int

	L1Bytes, L1Ways int
	L2Bytes, L2Ways int

	PFBytes, PFWays int

	CacheNs, DirNs, DRAMNs, LinkNs float64
	DRAMIntervalNs                 float64

	LinkBytesPerNs             float64
	FlitBytes                  int
	CtrlMsgBytes, DataMsgBytes int

	MemMiBPerNode int

	CheckInvariants bool
	MaxEvents       uint64
}

func (j Job) configKey() configKey {
	c := j.Config
	return configKey{
		Threads:           c.Threads,
		AccessesPerThread: c.AccessesPerThread,
		Seed:              c.Seed,
		Policy:            c.Policy,
		ALLARMRanges:      c.ALLARMRanges,
		MemPolicy:         c.MemPolicy,
		Nodes:             c.Nodes,
		MeshW:             c.MeshW,
		MeshH:             c.MeshH,
		L1Bytes:           c.L1Bytes,
		L1Ways:            c.L1Ways,
		L2Bytes:           c.L2Bytes,
		L2Ways:            c.L2Ways,
		PFBytes:           c.PFBytes,
		PFWays:            c.PFWays,
		CacheNs:           c.CacheNs,
		DirNs:             c.DirNs,
		DRAMNs:            c.DRAMNs,
		LinkNs:            c.LinkNs,
		DRAMIntervalNs:    c.DRAMIntervalNs,
		LinkBytesPerNs:    c.LinkBytesPerNs,
		FlitBytes:         c.FlitBytes,
		CtrlMsgBytes:      c.CtrlMsgBytes,
		DataMsgBytes:      c.DataMsgBytes,
		MemMiBPerNode:     c.MemMiBPerNode,
		CheckInvariants:   c.CheckInvariants,
		MaxEvents:         c.MaxEvents,
	}
}

// Sweep is an ordered list of jobs — the declarative spec of an
// experiment grid. Start from one or more seed jobs and expand with the
// Cross* combinators; each combinator replaces every job with one copy
// per supplied value, preserving order (earlier jobs stay earlier, and
// supplied values expand in argument order):
//
//	s := allarm.NewSweep(allarm.Job{Config: cfg}).
//		CrossBenchmarks(allarm.Benchmarks()...).
//		CrossPolicies(allarm.Baseline, allarm.ALLARM)
//
// yields b0/baseline, b0/allarm, b1/baseline, ... Results come back from
// a Runner in exactly this spec order.
type Sweep struct {
	Jobs []Job
}

// NewSweep returns a sweep of the given seed jobs.
func NewSweep(jobs ...Job) *Sweep {
	return &Sweep{Jobs: jobs}
}

// Add appends jobs to the sweep and returns it for chaining.
func (s *Sweep) Add(jobs ...Job) *Sweep {
	s.Jobs = append(s.Jobs, jobs...)
	return s
}

// Len returns the number of jobs in the sweep.
func (s *Sweep) Len() int { return len(s.Jobs) }

// cross replaces every job with n variants produced by set(job, i).
func (s *Sweep) cross(n int, set func(*Job, int)) *Sweep {
	if n == 0 {
		s.Jobs = nil
		return s
	}
	out := make([]Job, 0, len(s.Jobs)*n)
	for _, j := range s.Jobs {
		for i := 0; i < n; i++ {
			v := j
			set(&v, i)
			out = append(out, v)
		}
	}
	s.Jobs = out
	return s
}

// CrossBenchmarks expands every job into one copy per benchmark name
// (clearing any first-class Workload, which would otherwise win).
func (s *Sweep) CrossBenchmarks(names ...string) *Sweep {
	return s.cross(len(names), func(j *Job, i int) { j.Benchmark, j.Workload = names[i], nil })
}

// CrossWorkloads expands every job into one copy per first-class
// workload. Combine with CrossPolicies (and friends) to sweep custom
// workloads — trace replays, programmatic generators — over the same
// grids the presets use.
func (s *Sweep) CrossWorkloads(wls ...Workload) *Sweep {
	return s.cross(len(wls), func(j *Job, i int) { j.Workload, j.Benchmark = wls[i], "" })
}

// CrossPolicies expands every job into one copy per directory policy.
func (s *Sweep) CrossPolicies(policies ...Policy) *Sweep {
	return s.cross(len(policies), func(j *Job, i int) { j.Config.Policy = policies[i] })
}

// CrossPFSizes expands every job into one copy per probe-filter coverage
// (in bytes).
func (s *Sweep) CrossPFSizes(bytes ...int) *Sweep {
	return s.cross(len(bytes), func(j *Job, i int) { j.Config.PFBytes = bytes[i] })
}

// Dedup removes jobs that would repeat an identical simulation (same
// benchmark, mode and configuration), keeping first occurrences in
// order. Useful when concatenating overlapping experiment specs.
func (s *Sweep) Dedup() *Sweep {
	seen := make(map[string]bool, len(s.Jobs))
	out := s.Jobs[:0]
	for _, j := range s.Jobs {
		k := j.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, j)
	}
	s.Jobs = out
	return s
}

// SweepResult pairs one job of a sweep with its outcome. A completed
// job has Result set and Err nil; a failed job has Err set and Result
// nil; a job skipped by cancellation before starting carries the
// context's error alone; and a job aborted mid-simulation carries both
// the cancellation error (IsCancellation(Err) == true) and the partial
// Result (Result.Partial == true) its machine had accumulated.
type SweepResult struct {
	Job    Job
	Result *Result
	Err    error
}

// Aborted reports whether the job was cancelled mid-simulation, leaving
// a well-formed partial Result behind (as opposed to being skipped
// before it started, or failing outright).
func (r SweepResult) Aborted() bool {
	return r.Err != nil && r.Result != nil && IsCancellation(r.Err)
}

// Runner executes sweeps over a worker pool. The zero value is ready to
// use: NumCPU workers, no progress reporting.
type Runner struct {
	// Parallelism is the worker count; <= 0 means runtime.NumCPU().
	// Simulations are deterministic and independent, so results are
	// identical for every parallelism level.
	Parallelism int
	// Progress, when non-nil, is called after each job finishes with the
	// number of jobs done so far, the sweep size, and the finished
	// result. Calls are serialised; done reaches total exactly once.
	Progress func(done, total int, r SweepResult)
	// Start, when non-nil, is called as a worker picks up the job at the
	// given spec index, before it runs. Unlike Progress, calls may arrive
	// concurrently from different workers. Jobs skipped by cancellation
	// never start: they finish (JobDone/Progress) without a Start.
	Start func(index, total int, job Job)
	// JobDone, when non-nil, is called when the job at the given spec
	// index finishes (successfully or not), immediately before Progress
	// and serialised with it. It is the per-job completion callback
	// consumers that need the spec index — like allarm-serve's per-job
	// status — subscribe to.
	JobDone func(index, total int, r SweepResult)
	// Exec, when non-nil, executes each job in place of Job.RunCtx — the
	// seam for layering a result cache, in-flight deduplication or
	// remote execution under a sweep (allarm-serve's content-addressed
	// cache plugs in here). Exec must be safe for concurrent calls and
	// must preserve Job.RunCtx's contract: what it returns for a job
	// must equal what Job.RunCtx would produce. The context is the one
	// Runner.Run was given; honouring it is what lets a drain abort a
	// simulation mid-run instead of waiting it out.
	Exec func(ctx context.Context, j Job) (*Result, error)
}

// Run executes every job of the sweep and returns the results in spec
// order, regardless of completion order. One job failing does not stop
// the others: per-job errors are recorded in the corresponding
// SweepResult (see FirstError). Cancelling ctx stops the sweep promptly:
// jobs not yet started report ctx's error alone, jobs already executing
// abort within one sim.CancelCheckBudget of events and report the error
// together with their partial Result (see SweepResult.Aborted), and
// Run's own error is ctx's error (nil on a completed sweep).
func (r *Runner) Run(ctx context.Context, s *Sweep) ([]SweepResult, error) {
	jobs := s.Jobs
	out := make([]SweepResult, len(jobs))
	workers := r.Parallelism
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	var (
		next int64 = -1 // atomically claimed job index
		done int        // progress counter, guarded by mu
		mu   sync.Mutex
		wg   sync.WaitGroup
	)
	finish := func(i int, sr SweepResult) {
		out[i] = sr
		if r.Progress == nil && r.JobDone == nil {
			return
		}
		mu.Lock()
		done++
		if r.JobDone != nil {
			r.JobDone(i, len(jobs), sr)
		}
		if r.Progress != nil {
			r.Progress(done, len(jobs), sr)
		}
		mu.Unlock()
	}
	exec := r.Exec
	if exec == nil {
		exec = func(ctx context.Context, j Job) (*Result, error) { return j.RunCtx(ctx) }
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1))
				if i >= len(jobs) {
					return
				}
				if err := ctx.Err(); err != nil {
					finish(i, SweepResult{Job: jobs[i], Err: err})
					continue
				}
				if r.Start != nil {
					r.Start(i, len(jobs), jobs[i])
				}
				res, err := exec(ctx, jobs[i])
				finish(i, SweepResult{Job: jobs[i], Result: res, Err: err})
			}
		}()
	}
	wg.Wait()
	return out, ctx.Err()
}

// RunSweep executes the sweep with a default Runner (NumCPU workers).
func RunSweep(ctx context.Context, s *Sweep) ([]SweepResult, error) {
	return (&Runner{}).Run(ctx, s)
}

// FirstError returns the first per-job error of the results in spec
// order, or nil if every job succeeded. It is the bridge to the
// fail-fast error contract of the pre-sweep API.
func FirstError(results []SweepResult) error {
	for _, r := range results {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}
