package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestInstrumentRequestID pins the correlation contract: an incoming
// X-Allarm-Request-Id is adopted (context + response echo), a missing
// one is minted, and the structured request log carries it along with
// method/route/status/duration.
func TestInstrumentRequestID(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := NewLogger(&logBuf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	var seenCtxID string
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seenCtxID = RequestID(r.Context())
		w.WriteHeader(http.StatusTeapot)
	}), MiddlewareOptions{
		Logger:   logger,
		Registry: reg,
		Prefix:   "t_",
		Route:    func(r *http.Request) string { return "GET /brew" },
	})

	// Caller-provided id is adopted.
	req := httptest.NewRequest("GET", "/brew", nil)
	req.Header.Set(RequestIDHeader, "caller-id-1")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if seenCtxID != "caller-id-1" {
		t.Fatalf("context id = %q, want caller-id-1", seenCtxID)
	}
	if got := rec.Header().Get(RequestIDHeader); got != "caller-id-1" {
		t.Fatalf("echoed id = %q, want caller-id-1", got)
	}

	// Missing id is minted and echoed.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/brew", nil))
	minted := rec.Header().Get(RequestIDHeader)
	if minted == "" || minted == "caller-id-1" {
		t.Fatalf("no fresh id minted: %q", minted)
	}
	if seenCtxID != minted {
		t.Fatalf("context id %q != echoed id %q", seenCtxID, minted)
	}

	// Request log lines carry the id and the route label.
	sc := bufio.NewScanner(&logBuf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("bad log line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	first := lines[0]
	if first["msg"] != "request" || first["method"] != "GET" ||
		first["route"] != "GET /brew" || first["status"] != float64(http.StatusTeapot) ||
		first["request_id"] != "caller-id-1" {
		t.Fatalf("log line missing fields: %v", first)
	}
	if _, ok := first["duration"]; !ok {
		t.Fatalf("log line has no duration: %v", first)
	}

	// Both requests landed in the per-route latency histogram.
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	fams := parsePrometheus(t, sb.String())
	f := fams["t_http_request_duration_seconds"]
	if f == nil {
		t.Fatal("no http latency family")
	}
	if got := f.samples[`t_http_request_duration_seconds_count{route="GET /brew"}`]; got != 2 {
		t.Fatalf("route histogram count = %v, want 2", got)
	}
}

// TestInstrumentHealthzLogsDebug keeps poller noise out of the default
// log stream.
func TestInstrumentHealthzLogsDebug(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := NewLogger(&logBuf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}),
		MiddlewareOptions{Logger: logger})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/healthz", nil))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/metrics", nil))
	if logBuf.Len() != 0 {
		t.Fatalf("healthz/metrics logged at info: %q", logBuf.String())
	}
}

// TestStatusWriterFlusher keeps SSE alive through the middleware: the
// wrapped writer must still expose Flush.
func TestStatusWriterFlusher(t *testing.T) {
	var flushed bool
	h := Instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("instrumented writer lost http.Flusher")
		}
		f.Flush()
		flushed = true
	}), MiddlewareOptions{})
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/events", nil))
	if !flushed {
		t.Fatal("handler never ran")
	}
}

func TestNewLoggerRejectsBadFlags(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Error("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Error("bad format accepted")
	}
}

func TestTimelineSortStable(t *testing.T) {
	var tl Timeline
	tl.Add(TimelineEvent{Event: "accepted", Job: -1})
	tl.Add(TimelineEvent{Event: "started", Job: 0})
	ev := tl.Snapshot()
	if len(ev) != 2 || ev[0].Event != "accepted" || ev[0].Time.IsZero() {
		t.Fatalf("snapshot = %+v", ev)
	}
	SortEvents(ev)
	if ev[0].Event != "accepted" || ev[1].Event != "started" {
		t.Fatalf("sort reordered same-order events: %+v", ev)
	}
}
