// Command allarm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	allarm-bench -exp fig3a              # one experiment
//	allarm-bench -exp all                # everything (minutes)
//	allarm-bench -exp fig2 -accesses 120000 -seed 7
//	allarm-bench -exp all -parallel 4    # bound the worker pool
//	allarm-bench -exp fig3a -json        # raw per-run records, not tables
//	allarm-bench -exp all -csv > runs.csv
//
// By default output is the series each figure plots (normalised to the
// baseline exactly as the paper normalises). With -json or -csv the
// requested experiments' sweeps are merged, deduplicated and run once,
// and the raw per-simulation records are emitted instead of the paper's
// tables ("table1" and "area" run no simulations and contribute
// nothing). Simulations fan out over -parallel workers; results are
// deterministic at any parallelism.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	allarm "allarm"
)

// mainContext is cancelled on Ctrl-C so an in-flight sweep stops
// promptly (finished runs are still emitted, with the rest marked
// cancelled).
func mainContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt)
	return ctx
}

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id or 'all' (one of: "+strings.Join(allarm.ExperimentIDs, ", ")+")")
		accesses  = flag.Int("accesses", 0, "accesses per thread (0 = default)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		fullScale = flag.Bool("fullscale", false, "use unscaled Table I SRAM sizes")
		parallel  = flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
		jsonOut   = flag.Bool("json", false, "emit raw per-run records as JSON")
		csvOut    = flag.Bool("csv", false, "emit raw per-run records as CSV")
		progress  = flag.Bool("progress", false, "report per-run progress on stderr")
	)
	flag.Parse()

	cfg := allarm.ExperimentConfig()
	if *fullScale {
		cfg = allarm.DefaultConfig()
	}
	cfg.Seed = *seed
	if *accesses > 0 {
		cfg.AccessesPerThread = *accesses
	}

	if *jsonOut && *csvOut {
		fmt.Fprintln(os.Stderr, "allarm-bench: -json and -csv are mutually exclusive")
		os.Exit(2)
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = allarm.ExperimentIDs
	}

	ctx := mainContext()
	runner := &allarm.Runner{Parallelism: *parallel}
	if *progress {
		runner.Progress = func(done, total int, r allarm.SweepResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s/%s pf=%dkB\n",
				done, total, r.Job.Benchmark, r.Job.Config.Policy, r.Job.Config.PFBytes>>10)
		}
	}

	if *jsonOut || *csvOut {
		emitRaw(ctx, cfg, ids, runner, *jsonOut)
		return
	}

	for _, id := range ids {
		start := time.Now()
		fmt.Printf("== %s ==\n", id)
		if err := allarm.RunExperimentWith(ctx, os.Stdout, cfg, id, runner); err != nil {
			fmt.Fprintln(os.Stderr, "allarm-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}

// emitRaw merges the experiments' sweeps (dropping duplicate
// simulations), runs the union once, and emits the per-run records.
func emitRaw(ctx context.Context, cfg allarm.Config, ids []string, runner *allarm.Runner, asJSON bool) {
	merged := allarm.NewSweep()
	for _, id := range ids {
		s, err := allarm.ExperimentSweep(cfg, id)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allarm-bench:", err)
			os.Exit(1)
		}
		merged.Add(s.Jobs...)
	}
	merged.Dedup()

	results, runErr := runner.Run(ctx, merged)
	var e allarm.Emitter = allarm.CSVEmitter{}
	if asJSON {
		e = allarm.JSONEmitter{Indent: true}
	}
	if err := e.Emit(os.Stdout, results); err != nil {
		fmt.Fprintln(os.Stderr, "allarm-bench:", err)
		os.Exit(1)
	}
	// Per-job failures and cancellation are recorded in the emitted rows;
	// reflect them in the exit status too.
	if runErr != nil || allarm.FirstError(results) != nil {
		os.Exit(1)
	}
}
