package trace

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"allarm/internal/mem"
	"allarm/internal/sim"
	"allarm/internal/workload"
)

func testWorkload(t *testing.T) *workload.Synthetic {
	t.Helper()
	return workload.MustSynthetic(workload.Params{
		Name: "trace-test", Threads: 3, AccessesPerThread: 100,
		PrivateBytes: 16 << 10, PrivateFrac: 0.6,
		PrivateWriteFrac: 0.4, PrivateHot: 0.5, SeqRunFrac: 0.5,
		SharedBytes: 32 << 10, SharedWriteFrac: 0.3,
		Pattern: workload.Uniform, Init: workload.InterleavedInit,
		Think: 3 * sim.Nanosecond, ThinkJitter: 2 * sim.Nanosecond,
	})
}

// sameStream asserts two streams are element-wise identical, including
// picosecond-exact think times.
func sameStream(t *testing.T, label string, a, b workload.Stream) {
	t.Helper()
	for i := 0; ; i++ {
		aa, aok := a.Next()
		ba, bok := b.Next()
		if aok != bok {
			t.Fatalf("%s: length mismatch at %d", label, i)
		}
		if !aok {
			return
		}
		if aa != ba {
			t.Fatalf("%s record %d: %+v vs %+v", label, i, aa, ba)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	wl := testWorkload(t)
	var buf bytes.Buffer
	w, err := Capture(&buf, wl, 42)
	if err != nil {
		t.Fatal(err)
	}
	if w.Records() < 300 {
		t.Fatalf("captured %d records, want >= 300 (warmup + 3x100 measured)", w.Records())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != Version {
		t.Fatalf("version = %d", r.Version())
	}
	if r.Threads() != 3 {
		t.Fatalf("threads = %d", r.Threads())
	}
	rp, err := LoadReplay(r)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Records() != 300 {
		t.Fatalf("replay holds %d measured records", rp.Records())
	}
	if rp.WarmupRecords() == 0 {
		t.Fatal("warmup pass not captured")
	}

	// Replayed streams must equal the original generator's streams —
	// exactly, including sub-nanosecond think components.
	for th := 0; th < 3; th++ {
		sameStream(t, "measured", wl.Stream(th, 42), rp.Stream(th, 0))
		sameStream(t, "warmup", wl.WarmupStream(th, 42), rp.WarmupStream(th, 0))
	}

	// Placements must equal the workload's ForEachPage declaration, in
	// order.
	var want []Placement
	wl.ForEachPage(func(page mem.VAddr, thread int) {
		want = append(want, Placement{Page: page, Thread: thread})
	})
	var got []Placement
	rp.ForEachPage(func(page mem.VAddr, thread int) {
		got = append(got, Placement{Page: page, Thread: thread})
	})
	if len(got) != len(want) {
		t.Fatalf("%d placements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestReadV1 crafts a legacy 12-byte-record trace by hand and checks it
// still decodes (nanosecond think, no warmup, no placements).
func TestReadV1(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:], Version1)
	binary.LittleEndian.PutUint32(hdr[4:], 2)
	buf.Write(hdr[:])
	var rec [recordBytesV1]byte
	rec[0] = flagWrite
	rec[1] = 1
	binary.LittleEndian.PutUint16(rec[2:], 7) // 7 ns think
	binary.LittleEndian.PutUint64(rec[4:], 0xdeadbeef40)
	buf.Write(rec[:])

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Version() != Version1 || r.Threads() != 2 || len(r.Placements()) != 0 {
		t.Fatalf("v1 header misparsed: %+v", r)
	}
	got, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	want := Record{Thread: 1, Access: workload.Access{
		VAddr: 0xdeadbeef40, Write: true, Think: 7 * sim.Nanosecond,
	}}
	if got != want {
		t.Fatalf("v1 record = %+v, want %+v", got, want)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(Magic[:])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestUnsupportedVersion(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(Magic[:])
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:], 99)
	binary.LittleEndian.PutUint32(hdr[4:], 1)
	buf.Write(hdr[:])
	if _, err := NewReader(&buf); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, nil)
	w.Write(Record{Thread: 0})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestTruncatedPlacements(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, []Placement{{Page: 0x1000, Thread: 0}})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-4]
	if _, err := NewReader(bytes.NewReader(data)); err == nil {
		t.Fatal("truncated placement section accepted")
	}
}

func TestWriterRejectsBadThread(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2, nil)
	if err := w.Write(Record{Thread: 5}); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
	if _, err := NewWriter(io.Discard, 0, nil); err == nil {
		t.Fatal("zero-thread writer accepted")
	}
	if _, err := NewWriter(io.Discard, 300, nil); err == nil {
		t.Fatal("too-many-thread writer accepted")
	}
	if _, err := NewWriter(io.Discard, 2, []Placement{{Thread: 9}}); err == nil {
		t.Fatal("out-of-range placement thread accepted")
	}
}

func TestRecordThreadValidationOnRead(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 3, nil)
	w.Write(Record{Thread: 2})
	w.Flush()
	// Corrupt the record's thread byte (offset: 20-byte header + 1).
	data := buf.Bytes()
	data[20+1] = 200
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("corrupt thread id accepted")
	}
}

func TestEmptyTraceEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1, nil)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
