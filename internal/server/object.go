package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// This file is the S3-style object-store ResultStore: a flat namespace
// of immutable objects behind GET/PUT/HEAD, so a fleet of allarm-serve
// shards shares one result store without a shared filesystem. The
// protocol is deliberately a subset of what any object service speaks:
//
//	GET  <base>/<name>   200 + body | 404
//	PUT  <base>/<name>   201 created | 200 overwritten
//	HEAD <base>/<name>   200 | 404
//	GET  <base>/         200 {"objects": N}
//
// ObjectHandler serves it from a local directory (the "minio in a
// box" for tests, CI and single-host fleets); NewObjectStore consumes
// it — or any real object endpoint honouring the same verbs — as a
// ResultStore. Entries are the same key-verified diskEntry JSON the
// directory store writes, so a store can be served over HTTP today and
// mounted as a directory tomorrow without migration.

// maxObjectBytes bounds one stored result object (PUT body); results
// are small (a few KiB of metrics JSON), so this is generous.
const maxObjectBytes = 4 << 20

// NewObjectStore opens an S3-style ResultStore at base: an
// http(s):// URL of an object API (ObjectHandler or compatible), or a
// local directory path, which gives the same on-disk layout as
// NewDiskStore. token, when non-empty, is sent as a bearer credential
// on every request (object endpoints behind a Guard).
func NewObjectStore(base, token string) (ResultStore, error) {
	if strings.HasPrefix(base, "http://") || strings.HasPrefix(base, "https://") {
		u, err := url.Parse(base)
		if err != nil {
			return nil, fmt.Errorf("object store: %w", err)
		}
		h := &httpObjects{
			base:  strings.TrimRight(u.String(), "/"),
			token: token,
			client: &http.Client{
				Timeout: 30 * time.Second,
			},
		}
		return newKeyedStore(h)
	}
	return NewDiskStore(base)
}

// httpObjects is the HTTP objectBackend (the client half of the object
// protocol).
type httpObjects struct {
	base   string
	token  string
	client *http.Client
}

func (h *httpObjects) do(method, name string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequest(method, h.base+"/"+name, body)
	if err != nil {
		return nil, err
	}
	if h.token != "" {
		req.Header.Set("Authorization", "Bearer "+h.token)
	}
	return h.client.Do(req)
}

func (h *httpObjects) get(name string) ([]byte, bool, error) {
	resp, err := h.do(http.MethodGet, name, nil)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxObjectBytes))
		if err != nil {
			return nil, false, err
		}
		return data, true, nil
	case http.StatusNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("object store: GET %s: %s", name, resp.Status)
	}
}

func (h *httpObjects) put(name string, data []byte) (bool, error) {
	resp, err := h.do(http.MethodPut, name, bytes.NewReader(data))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusCreated:
		return true, nil
	case http.StatusOK, http.StatusNoContent:
		return false, nil
	default:
		return false, fmt.Errorf("object store: PUT %s: %s", name, resp.Status)
	}
}

func (h *httpObjects) count() (int, error) {
	resp, err := h.do(http.MethodGet, "", nil)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("object store: list: %s", resp.Status)
	}
	var v struct {
		Objects int `json:"objects"`
	}
	if err := readJSON(resp.Body, &v); err != nil {
		return 0, err
	}
	return v.Objects, nil
}

// ObjectHandler serves the object protocol from a local directory —
// the server half NewObjectStore's http client speaks. Mount it behind
// any mux (allarm-serve exposes it at /v1/objects/ when -object-serve
// is set) to turn one node's disk into the fleet's shared result
// store. Writes are atomic (temp file + rename) and objects immutable
// in practice (content-addressed names), so concurrent PUTs of the
// same name are benign — last writer wins with identical bytes.
func ObjectHandler(dir string) (http.Handler, error) {
	fs, err := newFSObjects(dir)
	if err != nil {
		return nil, err
	}
	return &objectHandler{fs: fs}, nil
}

type objectHandler struct {
	fs fsObjects
}

// validObjectName rejects anything that could escape the directory or
// hide from the *.json count: names are content hashes plus extension,
// nothing else.
func validObjectName(name string) bool {
	if name == "" || len(name) > 128 || !strings.HasSuffix(name, ".json") {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '.', r == '-':
		default:
			return false
		}
	}
	return !strings.Contains(name, "..")
}

func (h *objectHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/")
	if name == "" {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			w.WriteHeader(http.StatusMethodNotAllowed)
			return
		}
		n, err := h.fs.count()
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		writeJSON(w, map[string]int{"objects": n})
		return
	}
	if !validObjectName(name) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("invalid object name %q", name))
		return
	}
	switch r.Method {
	case http.MethodGet, http.MethodHead:
		data, ok, err := h.fs.get(name)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("no object %q", name))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Content-Length", fmt.Sprint(len(data)))
		if r.Method == http.MethodGet {
			w.Write(data)
		}
	case http.MethodPut:
		data, err := io.ReadAll(io.LimitReader(r.Body, maxObjectBytes+1))
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if len(data) > maxObjectBytes {
			writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("object exceeds %d bytes", maxObjectBytes))
			return
		}
		created, err := h.fs.put(name, data)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		if created {
			w.WriteHeader(http.StatusCreated)
		} else {
			w.WriteHeader(http.StatusOK)
		}
	default:
		w.WriteHeader(http.StatusMethodNotAllowed)
	}
}

// readJSON decodes one JSON value from r (small helper shared by the
// object client and the object handler tests).
func readJSON(r io.Reader, v any) error {
	data, err := io.ReadAll(io.LimitReader(r, maxObjectBytes))
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("empty response body")
	}
	return json.Unmarshal(data, v)
}
