package fleet

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like real placement keys: workload|mp|mpcfg|config.
		out[i] = fmt.Sprintf("bench:b%d|false|{}|{Threads:%d}", i, i%64)
	}
	return out
}

// TestRingPlacementIsByNameNotOrder: two rings over the same shard set
// in different orders place every key on the same shard name —
// placement is a pure function of the configured set, so every router
// instance agrees.
func TestRingPlacementIsByNameNotOrder(t *testing.T) {
	a := []string{"http://s1", "http://s2", "http://s3"}
	b := []string{"http://s3", "http://s1", "http://s2"}
	ra, rb := newRing(a, 0), newRing(b, 0)
	for _, k := range keys(500) {
		na := a[ra.lookup(k, nil)]
		nb := b[rb.lookup(k, nil)]
		if na != nb {
			t.Fatalf("key %q: order changed placement: %s vs %s", k, na, nb)
		}
	}
}

// TestRingRemovalMovesOnlyVictimKeys is the consistent-hashing
// property: routing around one dead shard moves exactly the keys it
// owned; every other key keeps its shard (and its warm cache).
func TestRingRemovalMovesOnlyVictimKeys(t *testing.T) {
	names := []string{"http://s1", "http://s2", "http://s3", "http://s4"}
	r := newRing(names, 0)
	const dead = 2
	alive := func(i int) bool { return i != dead }
	moved := 0
	for _, k := range keys(1000) {
		before := r.lookup(k, nil)
		after := r.lookup(k, alive)
		if after == dead {
			t.Fatalf("key %q placed on the dead shard", k)
		}
		if before != dead && after != before {
			t.Fatalf("key %q moved from healthy shard %d to %d", k, before, after)
		}
		if before == dead {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the removed shard (degenerate test)")
	}
}

// TestRingBalance: virtual nodes keep the split rough but sane — no
// shard starves or hoards.
func TestRingBalance(t *testing.T) {
	names := []string{"http://s1", "http://s2", "http://s3"}
	r := newRing(names, 0)
	counts := make([]int, len(names))
	ks := keys(3000)
	for _, k := range ks {
		counts[r.lookup(k, nil)]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(len(ks))
		if frac < 0.10 || frac > 0.60 {
			t.Errorf("shard %d owns %.1f%% of keys (counts %v)", i, 100*frac, counts)
		}
	}
}

// TestRingNoShardAlive: -1, never a panic or a dead placement.
func TestRingNoShardAlive(t *testing.T) {
	r := newRing([]string{"http://s1"}, 4)
	if got := r.lookup("k", func(int) bool { return false }); got != -1 {
		t.Fatalf("lookup with no live shards = %d, want -1", got)
	}
	empty := newRing(nil, 0)
	if got := empty.lookup("k", nil); got != -1 {
		t.Fatalf("empty ring lookup = %d, want -1", got)
	}
}

// TestRingDeterministicAcrossBuilds: rebuilding the identical ring gives
// identical lookups (sort ties broken totally).
func TestRingDeterministicAcrossBuilds(t *testing.T) {
	names := []string{"http://a", "http://b"}
	r1, r2 := newRing(names, 16), newRing(names, 16)
	for _, k := range keys(200) {
		if r1.lookup(k, nil) != r2.lookup(k, nil) {
			t.Fatalf("key %q: placement differs between identical rings", k)
		}
	}
}
