package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	allarm "allarm"
)

// ckptSweepRequest is a single-job sweep sized so the simulation runs
// long enough to checkpoint but stays test-fast.
func ckptSweepRequest(accesses int) SweepRequest {
	return SweepRequest{
		Benchmarks: []string{"ocean-cont"},
		Policies:   []string{"allarm"},
		Config:     &ConfigOverrides{Threads: 2, AccessesPerThread: accesses},
	}
}

// expandOne expands a request and returns its single job.
func expandOne(t *testing.T, req SweepRequest) allarm.Job {
	t.Helper()
	sweep, err := ExpandSweep(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sweep.Len() != 1 {
		t.Fatalf("expected one job, got %d", sweep.Len())
	}
	return sweep.Jobs[0]
}

// validCheckpointBlob runs the job to mid-flight and snapshots it — a
// genuine checkpoint to corrupt in the fallback tests.
func validCheckpointBlob(t *testing.T, job allarm.Job) []byte {
	t.Helper()
	ref, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	h, err := allarm.StartJob(job)
	if err != nil {
		t.Fatal(err)
	}
	for h.Events() < ref.Events/2 || !h.CanSnapshot() {
		done, err := h.Step(context.Background(), 2048)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatal("job finished before the snapshot point")
		}
	}
	var buf bytes.Buffer
	if err := h.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postBytes(t *testing.T, url string, data []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestCheckpointNameValidation pins the checkpoint-name guard: only
// sha256-hex + ".ckpt" names may reach the filesystem.
func TestCheckpointNameValidation(t *testing.T) {
	good := CheckpointName("any job key")
	if !validCheckpointName(good) {
		t.Fatalf("CheckpointName output rejected: %s", good)
	}
	for _, bad := range []string{
		"", "x.ckpt", good[:10], strings.Repeat("z", 64) + ".ckpt",
		strings.Repeat("a", 64) + ".json", "../" + good, good + "x",
	} {
		if validCheckpointName(bad) {
			t.Errorf("accepted malformed checkpoint name %q", bad)
		}
	}
}

// TestCheckpointEndpoints round-trips a blob through the push/pull API
// the router's migration uses.
func TestCheckpointEndpoints(t *testing.T) {
	dir := t.TempDir()
	_, base := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 1 << 20,
	})
	name := CheckpointName("some job key")
	blob := []byte("opaque checkpoint bytes")

	if resp, _ := get(t, base+"/v1/checkpoints/"+name); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET of absent checkpoint: %d", resp.StatusCode)
	}
	if resp := postBytes(t, base+"/v1/checkpoints/"+name, blob); resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %d", resp.StatusCode)
	}
	resp, body := get(t, base+"/v1/checkpoints/"+name)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, blob) {
		t.Fatalf("GET after POST: %d, %q", resp.StatusCode, body)
	}
	if resp := postBytes(t, base+"/v1/checkpoints/evil.ckpt", blob); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed name accepted: %d", resp.StatusCode)
	}
}

// TestKillResumeFromCheckpoint is the server-side acceptance check: a
// daemon killed mid-job leaves a machine-state checkpoint behind; its
// successor recovers the sweep, resumes the job from the checkpoint
// (not event zero), marks it "resumed", and the final results are
// byte-identical to an uninterrupted daemon's.
func TestKillResumeFromCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := t.TempDir()
	req := ckptSweepRequest(30_000)

	// Reference: the same sweep on a clean daemon, uninterrupted.
	_, refBase := newTestServer(t, Options{Workers: 1, CacheDir: t.TempDir()})
	refID := submit(t, refBase, req)
	waitDone(t, refBase, refID.ID)
	_, refCSV := get(t, refBase+"/v1/sweeps/"+refID.ID+"/results?format=csv")

	// Daemon 1: checkpointing on; kill it as soon as a checkpoint lands.
	s1, base1 := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 4096,
	})
	sr := submit(t, base1, req)
	ckptDir := filepath.Join(dir, "jobckpts")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if names, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt")); len(names) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint was written")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close() // hard kill: no drain, the job dies mid-window

	// Daemon 2, same directory: boot recovery re-enqueues the sweep and
	// the checkpoint-aware runner resumes from the persisted snapshot.
	s2, base2 := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 4096,
	})
	v := waitDone(t, base2, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("recovered sweep: %+v", v)
	}
	if !v.Jobs[0].Resumed {
		t.Errorf("job not marked resumed: %+v", v.Jobs[0])
	}
	if got := s2.met.jobsResumed.Load(); got == 0 {
		t.Errorf("jobs_resumed = %d, want >= 1", got)
	}
	_, csv := get(t, base2+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	if !bytes.Equal(csv, refCSV) {
		t.Errorf("resumed results differ from uninterrupted run:\n%s\nvs\n%s", csv, refCSV)
	}
	// The completed job's checkpoint is gone — nothing to resume next time.
	if names, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt")); len(names) != 0 {
		t.Errorf("stale checkpoint files after completion: %v", names)
	}
}

// uploadTrace posts a captured trace and returns its workload name
// ("trace:<content hash>" — identical across daemons for one capture).
func uploadTrace(t *testing.T, base string, trace []byte) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr.Workload
}

// TestKillResumeTraceWorkload is the same acceptance check for the
// second workload class: a job replaying an uploaded trace resumes from
// its checkpoint after a kill, byte-identically.
func TestKillResumeTraceWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
		Name: "ckpt-trace", Threads: 2, Key: "ckpt-trace-v1",
		Stream: func(thread int, seed uint64) allarm.Stream {
			n := 0
			return allarm.StreamFunc(func() (allarm.Access, bool) {
				if n >= 30_000 {
					return allarm.Access{}, false
				}
				n++
				return allarm.Access{VAddr: uint64(0x10000*thread + 64*(n%4096)), Write: n%3 == 0}, true
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := allarm.CaptureTrace(&trace, wl, 1); err != nil {
		t.Fatal(err)
	}

	// Reference: uninterrupted run of the same trace on a clean daemon.
	_, refBase := newTestServer(t, Options{Workers: 1, CacheDir: t.TempDir()})
	refReq := SweepRequest{Workloads: []string{uploadTrace(t, refBase, trace.Bytes())}, Policies: []string{"allarm"}}
	refID := submit(t, refBase, refReq)
	waitDone(t, refBase, refID.ID)
	_, refCSV := get(t, refBase+"/v1/sweeps/"+refID.ID+"/results?format=csv")

	dir := t.TempDir()
	s1, base1 := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 4096,
	})
	req := SweepRequest{Workloads: []string{uploadTrace(t, base1, trace.Bytes())}, Policies: []string{"allarm"}}
	sr := submit(t, base1, req)
	ckptDir := filepath.Join(dir, "jobckpts")
	deadline := time.Now().Add(30 * time.Second)
	for {
		if names, _ := filepath.Glob(filepath.Join(ckptDir, "*.ckpt")); len(names) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint was written")
		}
		time.Sleep(time.Millisecond)
	}
	s1.Close()

	// The restarted daemon re-resolves the persisted trace upload and
	// resumes the replay from the checkpoint.
	s2, base2 := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 4096,
	})
	v := waitDone(t, base2, sr.ID)
	if v.Status != StatusDone || !v.Jobs[0].Resumed {
		t.Fatalf("recovered trace sweep did not resume: %+v", v)
	}
	if s2.met.jobsResumed.Load() == 0 {
		t.Errorf("jobs_resumed = 0 after trace resume")
	}
	_, csv := get(t, base2+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	if !bytes.Equal(csv, refCSV) {
		t.Errorf("resumed trace results differ from uninterrupted run:\n%s\nvs\n%s", csv, refCSV)
	}
}

// TestCorruptCheckpointFallsBack mirrors the disk store's corruption
// suite for machine-state checkpoints: a corrupted, truncated,
// version-skewed or short-written checkpoint file must be rejected and
// the job re-simulated from scratch — correct results, no resume flag,
// bad file removed.
func TestCorruptCheckpointFallsBack(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	req := ckptSweepRequest(2_000)
	job := expandOne(t, req)
	blob := validCheckpointBlob(t, job)

	corruptions := map[string]func([]byte) []byte{
		"empty":     func(b []byte) []byte { return nil },
		"garbage":   func(b []byte) []byte { return []byte("not a checkpoint at all") },
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"short-write": func(b []byte) []byte {
			// A crash mid-write without the rename discipline: all but the
			// final CRC bytes made it out.
			return b[:len(b)-3]
		},
		"bit-flip": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/3] ^= 0x40
			return c
		},
		"version-skew": func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[4]++ // format version field
			return c
		},
	}
	for name, corrupt := range corruptions {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			s, base := newTestServer(t, Options{
				Workers: 1, CacheDir: dir, CheckpointInterval: 1 << 20,
			})
			path := s.checkpointPath(job.Key())
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, corrupt(blob), 0o644); err != nil {
				t.Fatal(err)
			}
			sr := submit(t, base, req)
			v := waitDone(t, base, sr.ID)
			if v.Status != StatusDone || v.Jobs[0].Status != JobDone {
				t.Fatalf("sweep with corrupt checkpoint: %+v", v)
			}
			if v.Jobs[0].Resumed {
				t.Errorf("corrupt checkpoint produced resumed=true")
			}
			if s.met.jobsResumed.Load() != 0 {
				t.Errorf("jobs_resumed bumped for a rejected checkpoint")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Errorf("rejected checkpoint not removed")
			}
		})
	}

	// Control: the untouched blob actually resumes, so the corruption
	// cases above prove rejection rather than the file being ignored.
	t.Run("valid-control", func(t *testing.T) {
		dir := t.TempDir()
		s, base := newTestServer(t, Options{
			Workers: 1, CacheDir: dir, CheckpointInterval: 1 << 20,
		})
		path := s.checkpointPath(job.Key())
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		sr := submit(t, base, req)
		v := waitDone(t, base, sr.ID)
		if v.Status != StatusDone || !v.Jobs[0].Resumed {
			t.Fatalf("valid checkpoint did not resume: %+v", v)
		}
		if s.met.jobsResumed.Load() != 1 {
			t.Errorf("jobs_resumed = %d, want 1", s.met.jobsResumed.Load())
		}
	})
}

// TestPreemptionYieldsSlot pins checkpoint-based preemption: with one
// worker, a long checkpointing job yields its slot to a freshly
// submitted short job at a checkpoint boundary, then resumes and both
// finish correctly.
func TestPreemptionYieldsSlot(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := t.TempDir()
	s, base := newTestServer(t, Options{
		Workers: 1, CacheDir: dir, CheckpointInterval: 2048,
	})
	long := submit(t, base, ckptSweepRequest(40_000))
	waitJob(t, base, long.ID, 0, JobRunning)
	short := submit(t, base, SweepRequest{
		Benchmarks: []string{"barnes"},
		Policies:   []string{"baseline"},
		Config:     &ConfigOverrides{Threads: 2, AccessesPerThread: 200},
	})
	sv := waitDone(t, base, short.ID)
	lv := waitDone(t, base, long.ID)
	if sv.Status != StatusDone || lv.Status != StatusDone {
		t.Fatalf("sweeps did not finish: short %+v long %+v", sv, lv)
	}
	if got := s.met.jobsPreempted.Load(); got == 0 {
		t.Errorf("jobs_preempted = 0; the long job never yielded")
	}
	if got := s.met.checkpointsWritten.Load(); got == 0 {
		t.Errorf("checkpoints_written = 0 with checkpointing on")
	}
	var m Metrics
	_, body := get(t, base+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.JobsPreempted != s.met.jobsPreempted.Load() || m.CheckpointsWritten == 0 || m.CheckpointBytes == 0 {
		t.Errorf("metrics endpoint does not expose checkpoint counters: %+v", m)
	}
}
