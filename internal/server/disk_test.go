package server

import (
	"os"
	"path/filepath"
	"testing"

	allarm "allarm"
)

func TestDiskStoreRoundTrip(t *testing.T) {
	d, err := NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := `bench:ocean-cont|false|{...}|{Threads:4}`
	res := &allarm.Result{Benchmark: "ocean-cont", RuntimeNs: 123.5, Accesses: 42, Events: 99}
	if _, ok := d.Get(key); ok {
		t.Fatal("hit on empty store")
	}
	if err := d.Put(key, res); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if got.Benchmark != res.Benchmark || got.RuntimeNs != res.RuntimeNs ||
		got.Accesses != res.Accesses || got.Events != res.Events {
		t.Fatalf("round trip changed the result: %+v", got)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

// TestDiskStoreRejectsCorruptEntries: truncated files, foreign JSON and
// key mismatches read as misses, never as wrong results.
func TestDiskStoreRejectsCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	d, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := "some-job-key"
	if err := d.Put(key, &allarm.Result{Benchmark: "b"}); err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, objectName(key))
	for name, data := range map[string][]byte{
		"truncated":    []byte(`{"key":"some-job-`),
		"foreign":      []byte(`{"hello":"world"}`),
		"key-mismatch": []byte(`{"key":"other-key","result":{"Benchmark":"x"}}`),
		"null-result":  []byte(`{"key":"some-job-key","result":null}`),
	} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if res, ok := d.Get(key); ok {
			t.Errorf("%s entry served as a hit: %+v", name, res)
		}
	}
}

// TestDiskStoreSharedBetweenStores: two stores over one directory see
// each other's writes — the sharing model for restarted daemons.
func TestDiskStoreSharedBetweenStores(t *testing.T) {
	dir := t.TempDir()
	a, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put("k", &allarm.Result{Benchmark: "b", Events: 5}); err != nil {
		t.Fatal(err)
	}
	got, ok := b.Get("k")
	if !ok || got.Events != 5 {
		t.Fatalf("second store missed the first store's write: %v %v", got, ok)
	}
	// No temp files leak from atomic writes.
	leftovers, err := filepath.Glob(filepath.Join(dir, ".tmp-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(leftovers) != 0 {
		t.Errorf("temp files left behind: %v", leftovers)
	}
}
