package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// TestHistogramConcurrentRecording hammers one histogram from many
// goroutines while exposition runs concurrently — under -race this
// pins the lock-free record path, and the final counts must balance.
func TestHistogramConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_lat_seconds", "test latency", 1e-9, ExpBuckets(1000, 1_000_000))

	const goroutines, perG = 8, 10_000
	var recorders sync.WaitGroup
	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() { // concurrent scraper exercises read-during-write
		defer close(scraperDone)
		for {
			select {
			case <-stop:
				return
			default:
				var sb strings.Builder
				reg.WritePrometheus(&sb)
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		recorders.Add(1)
		go func(g int) {
			defer recorders.Done()
			for i := 0; i < perG; i++ {
				h.Observe(uint64(g*perG + i))
			}
		}(g)
	}
	recorders.Wait()
	close(stop)
	<-scraperDone

	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("count = %d, want %d", got, goroutines*perG)
	}
	// Bucket counts must sum to the total (cumulative +Inf invariant).
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	fams := parsePrometheus(t, sb.String())
	f := fams["t_lat_seconds"]
	if f == nil {
		t.Fatal("histogram family missing from exposition")
	}
	inf := f.samples["t_lat_seconds_bucket{le=\"+Inf\"}"]
	cnt := f.samples["t_lat_seconds_count"]
	if inf != float64(goroutines*perG) || cnt != inf {
		t.Fatalf("+Inf bucket %v, _count %v, want both %d", inf, cnt, goroutines*perG)
	}
}

// family is one parsed metric family: TYPE, HELP and its samples.
type family struct {
	typ     string
	help    string
	samples map[string]float64 // "name{labels}" -> value
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// parsePrometheus is a strict v0.0.4 text-format parser: every line
// must be a well-formed # HELP, # TYPE or sample line; samples must
// belong to a family declared by a preceding # TYPE; names and label
// keys must match the Prometheus grammar. Any drift in the exposition
// writer fails here.
func parsePrometheus(t *testing.T, text string) map[string]*family {
	t.Helper()
	fams := make(map[string]*family)
	var lastFamily string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		lineNo := ln + 1
		switch {
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, ok := strings.Cut(rest, " ")
			if !ok || !nameRe.MatchString(name) {
				t.Fatalf("line %d: malformed HELP: %q", lineNo, line)
			}
			f := fams[name]
			if f == nil {
				f = &family{samples: make(map[string]float64)}
				fams[name] = f
			}
			f.help = help
		case strings.HasPrefix(line, "# TYPE "):
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 || !nameRe.MatchString(parts[0]) {
				t.Fatalf("line %d: malformed TYPE: %q", lineNo, line)
			}
			switch parts[1] {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				t.Fatalf("line %d: unknown metric type %q", lineNo, parts[1])
			}
			f := fams[parts[0]]
			if f == nil {
				f = &family{samples: make(map[string]float64)}
				fams[parts[0]] = f
			}
			f.typ = parts[1]
			lastFamily = parts[0]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment: %q", lineNo, line)
		default:
			name, labels, value := parseSample(t, lineNo, line)
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count", "_total"} {
				if trimmed, ok := strings.CutSuffix(name, suf); ok && fams[trimmed] != nil {
					base = trimmed
					break
				}
			}
			f := fams[base]
			if f == nil {
				t.Fatalf("line %d: sample %q without TYPE declaration", lineNo, name)
			}
			if base != lastFamily && fams[lastFamily] != f {
				// Samples must stay grouped under their family header.
				t.Fatalf("line %d: sample %q outside its family block (last TYPE %q)", lineNo, name, lastFamily)
			}
			key := name
			if labels != "" {
				key += "{" + labels + "}"
			}
			f.samples[key] = value
		}
	}
	return fams
}

// parseSample validates one sample line and returns (name, canonical
// label string, value).
func parseSample(t *testing.T, lineNo int, line string) (string, string, float64) {
	t.Helper()
	// Label values may contain spaces (route="GET /x"), so the value is
	// whatever follows the closing brace — or the first space when there
	// are no labels.
	var metricPart, valuePart string
	if i := strings.LastIndexByte(line, '}'); i >= 0 {
		metricPart = line[:i+1]
		valuePart = strings.TrimPrefix(line[i+1:], " ")
	} else {
		var ok bool
		metricPart, valuePart, ok = strings.Cut(line, " ")
		if !ok {
			t.Fatalf("line %d: no value: %q", lineNo, line)
		}
	}
	value, err := strconv.ParseFloat(valuePart, 64)
	if err != nil {
		t.Fatalf("line %d: bad value %q: %v", lineNo, valuePart, err)
	}
	name := metricPart
	labels := ""
	if i := strings.IndexByte(metricPart, '{'); i >= 0 {
		if !strings.HasSuffix(metricPart, "}") {
			t.Fatalf("line %d: unterminated labels: %q", lineNo, line)
		}
		name = metricPart[:i]
		body := metricPart[i+1 : len(metricPart)-1]
		var parts []string
		for _, pair := range splitLabelPairs(t, lineNo, body) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || !labelRe.MatchString(k) {
				t.Fatalf("line %d: malformed label pair %q", lineNo, pair)
			}
			if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				t.Fatalf("line %d: label value not quoted: %q", lineNo, pair)
			}
			parts = append(parts, k+"="+v)
		}
		if !sort.StringsAreSorted(parts) {
			t.Fatalf("line %d: labels not sorted: %q", lineNo, body)
		}
		labels = strings.Join(parts, ",")
	}
	if !nameRe.MatchString(name) {
		t.Fatalf("line %d: bad metric name %q", lineNo, name)
	}
	return name, labels, value
}

// splitLabelPairs splits a{...} body on commas outside quotes.
func splitLabelPairs(t *testing.T, lineNo int, body string) []string {
	var out []string
	var cur strings.Builder
	inQuote, escaped := false, false
	for _, c := range body {
		switch {
		case escaped:
			escaped = false
			cur.WriteRune(c)
		case c == '\\' && inQuote:
			escaped = true
			cur.WriteRune(c)
		case c == '"':
			inQuote = !inQuote
			cur.WriteRune(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteRune(c)
		}
	}
	if inQuote {
		t.Fatalf("line %d: unbalanced quotes in labels %q", lineNo, body)
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

// TestPrometheusExpositionGolden registers one of each metric kind,
// records known values and pins the exact rendered text, then runs the
// strict parser over it so neither the bytes nor the grammar can
// drift.
func TestPrometheusExpositionGolden(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_jobs_run_total", "Jobs run.")
	reg.Gauge("t_active", "Active sweeps.", func() float64 { return 2.5 })
	reg.CounterFunc("t_busy_seconds_total", "Busy time.", func() float64 { return 1.5 })
	h := reg.Histogram("t_dur_seconds", "Job duration.", 1e-9,
		[]uint64{1_000_000, 2_000_000, 4_000_000}, Label{"kind", "job"})

	c.Add(3)
	h.Observe(500_000)   // le 0.001
	h.Observe(1_500_000) // le 0.002
	h.Observe(9_000_000) // +Inf

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	got := sb.String()

	want := strings.Join([]string{
		"# HELP t_jobs_run_total Jobs run.",
		"# TYPE t_jobs_run_total counter",
		"t_jobs_run_total 3",
		"# HELP t_active Active sweeps.",
		"# TYPE t_active gauge",
		"t_active 2.5",
		"# HELP t_busy_seconds_total Busy time.",
		"# TYPE t_busy_seconds_total counter",
		"t_busy_seconds_total 1.5",
		"# HELP t_dur_seconds Job duration.",
		"# TYPE t_dur_seconds histogram",
		`t_dur_seconds_bucket{kind="job",le="0.001"} 1`,
		`t_dur_seconds_bucket{kind="job",le="0.002"} 2`,
		`t_dur_seconds_bucket{kind="job",le="0.004"} 2`,
		`t_dur_seconds_bucket{kind="job",le="+Inf"} 3`,
		`t_dur_seconds_sum{kind="job"} 0.011000000000000001`,
		`t_dur_seconds_count{kind="job"} 3`,
		"",
	}, "\n")
	if got != want {
		t.Fatalf("exposition drifted:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	fams := parsePrometheus(t, got)
	if f := fams["t_jobs_run_total"]; f.typ != "counter" || f.help != "Jobs run." || f.samples["t_jobs_run_total"] != 3 {
		t.Fatalf("counter family parsed wrong: %+v", f)
	}
	if f := fams["t_dur_seconds"]; f.typ != "histogram" {
		t.Fatalf("histogram family parsed wrong: %+v", f)
	}
	// Cumulative bucket invariant: counts non-decreasing in le order.
	f := fams["t_dur_seconds"]
	prev := -1.0
	for _, le := range []string{"0.001", "0.002", "0.004", "+Inf"} {
		v := f.samples[fmt.Sprintf("t_dur_seconds_bucket{kind=%q,le=%q}", "job", le)]
		if v < prev {
			t.Fatalf("bucket le=%s count %v < previous %v", le, v, prev)
		}
		prev = v
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1000, 8000)
	want := []uint64{1000, 2000, 4000, 8000}
	if len(got) != len(want) {
		t.Fatalf("ExpBuckets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_x", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind conflict")
		}
	}()
	reg.Gauge("t_x", "x", func() float64 { return 0 })
}
