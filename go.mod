module allarm

go 1.24
