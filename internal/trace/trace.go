// Package trace provides a compact binary format for memory-access
// traces: capture a workload's streams once and replay them later (or
// feed externally collected traces into the simulator).
//
// Format version 2 (little-endian):
//
//	header:     magic "ALTR" | u16 version | u16 reserved | u32 threads
//	            u32 placements | u32 reserved
//	placement:  u32 thread | u64 page                      (12 bytes)
//	record:     u8 flags (bit0 = write, bit1 = warmup) | u8 thread
//	            u16 reserved | u32 thinkPs | u64 vaddr     (16 bytes)
//
// The placement section records the workload's page-placement regions
// (first toucher per page), and warmup-flagged records carry the
// initialisation pass that precedes the measured region of interest.
// Together they make a replayed run bit-identical to the live run that
// was captured: placement, warmup, access order and picosecond-exact
// think times all survive the round trip.
//
// Version 1 traces (12-byte records, nanosecond think, no placements or
// warmup) are still readable.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"allarm/internal/mem"
	"allarm/internal/sim"
	"allarm/internal/workload"
)

// Magic identifies a trace stream.
var Magic = [4]byte{'A', 'L', 'T', 'R'}

// Format versions. Writers produce Version; readers accept both.
const (
	Version1 = 1
	Version  = 2
)

// Wire sizes of one record, by version.
const (
	recordBytesV1    = 12
	recordBytesV2    = 16
	placementBytesV2 = 12
)

// Record flag bits (v2).
const (
	flagWrite  = 1 << 0
	flagWarmup = 1 << 1
)

// Placement declares a page's first toucher, mirroring
// workload.Preplacer: the simulator pre-faults the page at the declared
// thread's node before the run.
type Placement struct {
	Page   mem.VAddr
	Thread int
}

// Record is one traced access. Warmup records belong to the workload's
// initialisation pass and are replayed before the measured region of
// interest.
type Record struct {
	Thread int
	Warmup bool
	Access workload.Access
}

// Writer encodes trace records in the current format version.
type Writer struct {
	w       *bufio.Writer
	threads int
	wrote   uint64
}

// NewWriter writes a version-2 header (thread count and page-placement
// section) and returns a writer for the access records.
func NewWriter(w io.Writer, threads int, placements []Placement) (*Writer, error) {
	if threads <= 0 || threads > 255 {
		return nil, fmt.Errorf("trace: thread count %d out of range [1,255]", threads)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint16(hdr[0:], Version)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(threads))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(placements)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	for _, p := range placements {
		if p.Thread < 0 || p.Thread >= threads {
			return nil, fmt.Errorf("trace: placement thread %d out of range [0,%d)", p.Thread, threads)
		}
		var buf [placementBytesV2]byte
		binary.LittleEndian.PutUint32(buf[0:], uint32(p.Thread))
		binary.LittleEndian.PutUint64(buf[4:], uint64(p.Page))
		if _, err := bw.Write(buf[:]); err != nil {
			return nil, err
		}
	}
	return &Writer{w: bw, threads: threads}, nil
}

// Write appends one record. Think times are stored in picoseconds,
// saturating at ~4.29 ms (far beyond any modelled compute gap).
func (w *Writer) Write(r Record) error {
	if r.Thread < 0 || r.Thread >= w.threads {
		return fmt.Errorf("trace: thread %d out of range [0,%d)", r.Thread, w.threads)
	}
	var buf [recordBytesV2]byte
	if r.Access.Write {
		buf[0] |= flagWrite
	}
	if r.Warmup {
		buf[0] |= flagWarmup
	}
	buf[1] = byte(r.Thread)
	thinkPs := int64(r.Access.Think)
	if thinkPs < 0 {
		thinkPs = 0
	}
	if thinkPs > math.MaxUint32 {
		thinkPs = math.MaxUint32
	}
	binary.LittleEndian.PutUint32(buf[4:], uint32(thinkPs))
	binary.LittleEndian.PutUint64(buf[8:], uint64(r.Access.VAddr))
	_, err := w.w.Write(buf[:])
	w.wrote++
	return err
}

// Records returns the number of records written.
func (w *Writer) Records() uint64 { return w.wrote }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes trace records of either format version.
type Reader struct {
	r          *bufio.Reader
	version    int
	threads    int
	placements []Placement
}

// NewReader validates the header, loads the placement section (v2) and
// returns a reader positioned at the first access record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	version := int(binary.LittleEndian.Uint16(hdr[0:]))
	if version != Version1 && version != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", version)
	}
	threads := int(binary.LittleEndian.Uint32(hdr[4:]))
	if threads <= 0 || threads > 255 {
		return nil, fmt.Errorf("trace: corrupt thread count %d", threads)
	}
	rd := &Reader{r: br, version: version, threads: threads}
	if version >= Version {
		var ext [8]byte
		if _, err := io.ReadFull(br, ext[:]); err != nil {
			return nil, fmt.Errorf("trace: reading placement header: %w", err)
		}
		count := binary.LittleEndian.Uint32(ext[0:])
		for i := uint32(0); i < count; i++ {
			var buf [placementBytesV2]byte
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("trace: reading placement %d: %w", i, err)
			}
			thread := int(binary.LittleEndian.Uint32(buf[0:]))
			if thread >= threads {
				return nil, fmt.Errorf("trace: placement thread %d out of range", thread)
			}
			rd.placements = append(rd.placements, Placement{
				Page:   mem.VAddr(binary.LittleEndian.Uint64(buf[4:])),
				Thread: thread,
			})
		}
	}
	return rd, nil
}

// Version returns the trace's format version.
func (r *Reader) Version() int { return r.version }

// Threads returns the trace's thread count.
func (r *Reader) Threads() int { return r.threads }

// Placements returns the page-placement section (empty for v1 traces).
func (r *Reader) Placements() []Placement { return r.placements }

// Read returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Read() (Record, error) {
	if r.version == Version1 {
		return r.readV1()
	}
	var buf [recordBytesV2]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	thread := int(buf[1])
	if thread >= r.threads {
		return Record{}, fmt.Errorf("trace: record thread %d out of range", thread)
	}
	return Record{
		Thread: thread,
		Warmup: buf[0]&flagWarmup != 0,
		Access: workload.Access{
			VAddr: mem.VAddr(binary.LittleEndian.Uint64(buf[8:])),
			Write: buf[0]&flagWrite != 0,
			Think: sim.Time(binary.LittleEndian.Uint32(buf[4:])) * sim.Picosecond,
		},
	}, nil
}

// readV1 decodes one legacy 12-byte record (nanosecond-quantised think,
// no warmup flag).
func (r *Reader) readV1() (Record, error) {
	var buf [recordBytesV1]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	thread := int(buf[1])
	if thread >= r.threads {
		return Record{}, fmt.Errorf("trace: record thread %d out of range", thread)
	}
	return Record{
		Thread: thread,
		Access: workload.Access{
			VAddr: mem.VAddr(binary.LittleEndian.Uint64(buf[4:])),
			Write: buf[0]&flagWrite != 0,
			Think: sim.Time(binary.LittleEndian.Uint16(buf[2:])) * sim.Nanosecond,
		},
	}, nil
}

// Capture writes a complete replayable trace of wl: its page placements
// (when it implements workload.Preplacer), its warmup pass (when it
// implements workload.WarmupStreamer) and its measured streams, threads
// interleaved round-robin (the interleaving does not matter for replay:
// records carry their thread). It returns the writer, already flushed,
// for its record count.
func Capture(w io.Writer, wl workload.Workload, seed uint64) (*Writer, error) {
	var placements []Placement
	if pp, ok := wl.(workload.Preplacer); ok {
		pp.ForEachPage(func(page mem.VAddr, thread int) {
			placements = append(placements, Placement{Page: page, Thread: thread})
		})
	}
	tw, err := NewWriter(w, wl.Threads(), placements)
	if err != nil {
		return nil, err
	}
	if ws, ok := wl.(workload.WarmupStreamer); ok {
		warm := make([]workload.Stream, wl.Threads())
		for t := range warm {
			warm[t] = ws.WarmupStream(t, seed)
		}
		if err := drain(tw, warm, true); err != nil {
			return nil, err
		}
	}
	streams := make([]workload.Stream, wl.Threads())
	for t := range streams {
		streams[t] = wl.Stream(t, seed)
	}
	if err := drain(tw, streams, false); err != nil {
		return nil, err
	}
	return tw, tw.Flush()
}

// drain interleaves the streams round-robin into the writer.
func drain(w *Writer, streams []workload.Stream, warmup bool) error {
	live := 0
	for _, s := range streams {
		if s != nil {
			live++
		}
	}
	for live > 0 {
		live = 0
		for t, s := range streams {
			if s == nil {
				continue
			}
			acc, ok := s.Next()
			if !ok {
				streams[t] = nil
				continue
			}
			live++
			if err := w.Write(Record{Thread: t, Warmup: warmup, Access: acc}); err != nil {
				return err
			}
		}
	}
	return nil
}

// Replay loads an entire trace and exposes per-thread streams (and the
// captured warmup and page placements) for feeding back into the
// simulator. It implements workload.Workload, workload.WarmupStreamer
// and workload.Preplacer; the seed arguments are ignored, since a replay
// is exact.
type Replay struct {
	name       string
	threads    int
	perThr     [][]workload.Access
	warm       [][]workload.Access
	placements []Placement
}

// LoadReplay reads all records from r.
func LoadReplay(r *Reader) (*Replay, error) {
	rp := &Replay{
		name:       "trace",
		threads:    r.Threads(),
		perThr:     make([][]workload.Access, r.Threads()),
		warm:       make([][]workload.Access, r.Threads()),
		placements: r.Placements(),
	}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return rp, nil
		}
		if err != nil {
			return nil, err
		}
		if rec.Warmup {
			rp.warm[rec.Thread] = append(rp.warm[rec.Thread], rec.Access)
		} else {
			rp.perThr[rec.Thread] = append(rp.perThr[rec.Thread], rec.Access)
		}
	}
}

// SetName overrides the replay's workload name (e.g. the trace's file
// name).
func (rp *Replay) SetName(name string) { rp.name = name }

// Name implements workload.Workload.
func (rp *Replay) Name() string { return rp.name }

// Threads returns the replay's thread count.
func (rp *Replay) Threads() int { return rp.threads }

// Records returns the measured (non-warmup) record count.
func (rp *Replay) Records() int {
	n := 0
	for _, accs := range rp.perThr {
		n += len(accs)
	}
	return n
}

// WarmupRecords returns the warmup record count.
func (rp *Replay) WarmupRecords() int {
	n := 0
	for _, accs := range rp.warm {
		n += len(accs)
	}
	return n
}

// Stream returns thread t's replay stream. The seed is ignored.
func (rp *Replay) Stream(t int, _ uint64) workload.Stream {
	return &replayStream{accs: rp.perThr[t]}
}

// WarmupStream implements workload.WarmupStreamer; it returns nil when
// the trace carries no warmup pass for thread t.
func (rp *Replay) WarmupStream(t int, _ uint64) workload.Stream {
	if len(rp.warm[t]) == 0 {
		return nil
	}
	return &replayStream{accs: rp.warm[t]}
}

// ForEachPage implements workload.Preplacer from the captured placement
// section.
func (rp *Replay) ForEachPage(fn func(page mem.VAddr, thread int)) {
	for _, p := range rp.placements {
		fn(p.Page, p.Thread)
	}
}

type replayStream struct {
	accs []workload.Access
	i    int
}

// Next implements workload.Stream.
func (s *replayStream) Next() (workload.Access, bool) {
	if s.i >= len(s.accs) {
		return workload.Access{}, false
	}
	a := s.accs[s.i]
	s.i++
	return a, true
}
