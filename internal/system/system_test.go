package system

import (
	"fmt"
	"testing"

	"allarm/internal/coherence"
	"allarm/internal/core"
	"allarm/internal/mem"
	"allarm/internal/noc"
	"allarm/internal/sim"
	"allarm/internal/workload"
)

// testConfig returns a small 2x2 machine with invariant checking on.
func testConfig(policy core.Policy) Config {
	return Config{
		Nodes: 4, MeshW: 2, MeshH: 2,
		L1Bytes: 4 << 10, L1Ways: 2,
		L2Bytes: 16 << 10, L2Ways: 4,
		PFCoverage: 32 << 10, PFWays: 4,
		Policy:       policy,
		CacheLatency: 1 * sim.Nanosecond,
		DirLatency:   1 * sim.Nanosecond,
		DRAMLatency:  60 * sim.Nanosecond,
		DRAMInterval: 4 * sim.Nanosecond,
		NoC: noc.Config{
			Width: 2, Height: 2,
			LinkLatency:   10 * sim.Nanosecond,
			LinkBandwidth: 8,
			FlitBytes:     4,
			ControlBytes:  8,
			DataBytes:     72,
			LocalLatency:  1 * sim.Nanosecond,
		},
		MemBytesPerNode: 8 << 20,
		CheckInvariants: true,
		MaxEvents:       200_000_000,
	}
}

// table1Config returns the full 16-node Table I machine.
func table1Config(policy core.Policy) Config {
	c := testConfig(policy)
	c.Nodes, c.MeshW, c.MeshH = 16, 4, 4
	c.NoC.Width, c.NoC.Height = 4, 4
	c.L1Bytes, c.L1Ways = 32<<10, 4
	c.L2Bytes, c.L2Ways = 256<<10, 4
	c.PFCoverage, c.PFWays = 512<<10, 4
	return c
}

func stressParams(threads, accesses int) workload.Params {
	return workload.Params{
		Name: "stress", Threads: threads, AccessesPerThread: accesses,
		PrivateBytes: 32 << 10, PrivateFrac: 0.5,
		PrivateWriteFrac: 0.4, PrivateHot: 0.5, SeqRunFrac: 0.4,
		SharedBytes: 64 << 10, SharedWriteFrac: 0.45,
		Pattern: workload.Uniform, Init: workload.InterleavedInit,
		Think: 1 * sim.Nanosecond, ThinkJitter: 1 * sim.Nanosecond,
	}
}

func runStress(t *testing.T, policy core.Policy, seed uint64) *RunResult {
	t.Helper()
	cfg := testConfig(policy)
	m, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	wl := workload.MustSynthetic(stressParams(4, 3000))
	space := m.NewAddressSpace(mem.FirstTouch)
	Preplace(space, wl, func(th int) mem.NodeID { return mem.NodeID(th % cfg.Nodes) })
	var specs []ThreadSpec
	for th := 0; th < 4; th++ {
		specs = append(specs, ThreadSpec{
			Node: mem.NodeID(th), Stream: wl.Stream(th, seed), Space: space,
			Name: fmt.Sprintf("stress/%d", th),
		})
	}
	res, err := m.Run(specs)
	if err != nil {
		t.Fatalf("Run(%v, seed %d): %v", policy, seed, err)
	}
	return res
}

// TestStressInvariantsBaseline runs a write-heavy, tightly shared workload
// under the baseline policy with the full invariant checker enabled.
func TestStressInvariantsBaseline(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		res := runStress(t, core.Baseline, seed)
		if res.Accesses == 0 || res.Time <= 0 {
			t.Fatalf("degenerate run: %+v", res.Totals())
		}
	}
}

// TestStressInvariantsALLARM does the same under ALLARM, which exercises
// the untracked-line and local-probe paths.
func TestStressInvariantsALLARM(t *testing.T) {
	for seed := uint64(1); seed <= 3; seed++ {
		res := runStress(t, core.ALLARM, seed)
		tot := res.Totals()
		if tot.UntrackedGrants == 0 {
			t.Errorf("seed %d: ALLARM run produced no untracked grants", seed)
		}
	}
}

// TestDeterminism verifies bit-identical metrics for identical seeds.
func TestDeterminism(t *testing.T) {
	a := runStress(t, core.ALLARM, 42)
	b := runStress(t, core.ALLARM, 42)
	if a.Time != b.Time || a.Accesses != b.Accesses {
		t.Fatalf("runtime differs: %v/%d vs %v/%d", a.Time, a.Accesses, b.Time, b.Accesses)
	}
	if a.NoC != b.NoC {
		t.Fatalf("NoC stats differ: %+v vs %+v", a.NoC, b.NoC)
	}
	ta, tb := a.Totals(), b.Totals()
	if ta != tb {
		t.Fatalf("totals differ:\n%+v\n%+v", ta, tb)
	}
}

// TestALLARMPrivateOnlyWorkload checks the paper's headline property: a
// workload touching only thread-private data allocates no probe-filter
// entries and sends no coherence traffic under ALLARM.
func TestALLARMPrivateOnlyWorkload(t *testing.T) {
	cfg := testConfig(core.ALLARM)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.MustSynthetic(workload.Params{
		Name: "private-only", Threads: 4, AccessesPerThread: 4000,
		PrivateBytes: 64 << 10, PrivateFrac: 1.0,
		PrivateWriteFrac: 0.5, PrivateHot: 0.3, SeqRunFrac: 0.5,
		SharedBytes: mem.PageBytes, // minimal, never accessed
		Pattern:     workload.Uniform, Init: workload.InterleavedInit,
		Think: 1 * sim.Nanosecond,
	})
	space := m.NewAddressSpace(mem.FirstTouch)
	Preplace(space, wl, func(th int) mem.NodeID { return mem.NodeID(th) })
	var specs []ThreadSpec
	for th := 0; th < 4; th++ {
		specs = append(specs, ThreadSpec{
			Node: mem.NodeID(th), Stream: wl.Stream(th, 7), Space: space, Name: "p",
		})
	}
	res, err := m.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.PFAllocs != 0 {
		t.Errorf("private-only ALLARM run allocated %d PF entries, want 0", tot.PFAllocs)
	}
	if tot.PFEvictions != 0 {
		t.Errorf("private-only ALLARM run evicted %d PF entries, want 0", tot.PFEvictions)
	}
	if res.NoC.Bytes != 0 {
		t.Errorf("private-only ALLARM run sent %d NoC bytes, want 0", res.NoC.Bytes)
	}
	if tot.RemoteRequests != 0 {
		t.Errorf("private-only run saw %d remote requests, want 0", tot.RemoteRequests)
	}
}

// TestBaselinePrivateOnlyWorkload contrasts the baseline: the same
// workload allocates entries for every tracked line.
func TestBaselinePrivateOnlyWorkload(t *testing.T) {
	cfg := testConfig(core.Baseline)
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wl := workload.MustSynthetic(workload.Params{
		Name: "private-only", Threads: 4, AccessesPerThread: 4000,
		PrivateBytes: 64 << 10, PrivateFrac: 1.0,
		PrivateWriteFrac: 0.5, PrivateHot: 0.3, SeqRunFrac: 0.5,
		SharedBytes: mem.PageBytes,
		Pattern:     workload.Uniform, Init: workload.InterleavedInit,
		Think: 1 * sim.Nanosecond,
	})
	space := m.NewAddressSpace(mem.FirstTouch)
	Preplace(space, wl, func(th int) mem.NodeID { return mem.NodeID(th) })
	var specs []ThreadSpec
	for th := 0; th < 4; th++ {
		specs = append(specs, ThreadSpec{
			Node: mem.NodeID(th), Stream: wl.Stream(th, 7), Space: space, Name: "p",
		})
	}
	res, err := m.Run(specs)
	if err != nil {
		t.Fatal(err)
	}
	tot := res.Totals()
	if tot.PFAllocs == 0 {
		t.Errorf("baseline run allocated no PF entries")
	}
	// 64 KiB private per thread vs 16 KiB L2: capacity evictions force
	// PF churn in the baseline.
	if tot.PFEvictions == 0 {
		t.Log("note: baseline private-only run had no PF evictions (PF large enough)")
	}
}

// TestFull16NodeBothPolicies exercises the full Table I geometry with a
// sharing-heavy workload under both policies.
func TestFull16NodeBothPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("full-machine stress skipped in -short")
	}
	for _, pol := range []core.Policy{core.Baseline, core.ALLARM} {
		cfg := table1Config(pol)
		m, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wl := workload.MustSynthetic(workload.Params{
			Name: "full16", Threads: 16, AccessesPerThread: 4000,
			PrivateBytes: 128 << 10, PrivateFrac: 0.5,
			PrivateWriteFrac: 0.35, PrivateHot: 0.4, SeqRunFrac: 0.5,
			SharedBytes: 1 << 20, SharedWriteFrac: 0.35,
			Pattern: workload.Stencil, Init: workload.PartitionedInit,
			NeighborFrac: 0.2,
			Think:        2 * sim.Nanosecond, ThinkJitter: 1 * sim.Nanosecond,
		})
		space := m.NewAddressSpace(mem.FirstTouch)
		Preplace(space, wl, func(th int) mem.NodeID { return mem.NodeID(th) })
		var specs []ThreadSpec
		for th := 0; th < 16; th++ {
			specs = append(specs, ThreadSpec{
				Node: mem.NodeID(th), Stream: wl.Stream(th, 99), Space: space, Name: "f",
			})
		}
		if _, err := m.Run(specs); err != nil {
			t.Fatalf("policy %v: %v", pol, err)
		}
	}
}

// TestMsgPoolRecycleSteadyState checks the message free lists' recycle
// discipline end to end: after a run quiesces, every pooled message the
// controllers allocated has been released back (no leaks), and the
// steady state runs on a small recycled working set rather than fresh
// allocations. The CI race job runs this under -race.
func TestMsgPoolRecycleSteadyState(t *testing.T) {
	for _, policy := range []core.Policy{core.Baseline, core.ALLARM} {
		cfg := testConfig(policy)
		m, err := New(cfg)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		wl := workload.MustSynthetic(stressParams(4, 3000))
		space := m.NewAddressSpace(mem.FirstTouch)
		Preplace(space, wl, func(th int) mem.NodeID { return mem.NodeID(th % cfg.Nodes) })
		var specs []ThreadSpec
		for th := 0; th < 4; th++ {
			specs = append(specs, ThreadSpec{
				Node: mem.NodeID(th), Stream: wl.Stream(th, 1), Space: space,
				Name: fmt.Sprintf("recycle/%d", th),
			})
		}
		if _, err := m.Run(specs); err != nil {
			t.Fatalf("Run(%v): %v", policy, err)
		}

		var gets, puts, news uint64
		for i := 0; i < cfg.Nodes; i++ {
			for _, s := range []coherence.MsgPoolStats{
				m.CacheCtrl(i).PoolStats(), m.Node(i).PoolStats(),
			} {
				gets += s.Gets
				puts += s.Puts
				news += s.News
			}
		}
		if gets == 0 {
			t.Fatalf("%v: controllers allocated no pooled messages", policy)
		}
		if puts != gets {
			t.Errorf("%v: %d messages handed out but %d released (leak or double hold)",
				policy, gets, puts)
		}
		if news*10 > gets {
			t.Errorf("%v: %d of %d messages were fresh allocations; free lists are not recycling",
				policy, news, gets)
		}
	}
}
