package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	allarm "allarm"
)

// maxCheckpointBody bounds a POST /v1/checkpoints body; it matches the
// checkpoint package's own decode bound, so anything the endpoint
// accepts is at least parseable.
const maxCheckpointBody = 1 << 30

// CheckpointName maps a job key to its machine-state checkpoint file
// name: the same sha256 content addressing as the result store
// (objectName), with a distinct extension so the two namespaces can
// never collide. Exported for allarm-router, which must compute the
// identical name to migrate a checkpoint between shards.
func CheckpointName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".ckpt"
}

// validCheckpointName guards the /v1/checkpoints path parameter: only
// names CheckpointName can produce are accepted, so a request can never
// escape the checkpoint directory or touch a foreign file.
func validCheckpointName(name string) bool {
	const hexLen = sha256.Size * 2
	if len(name) != hexLen+len(".ckpt") || !strings.HasSuffix(name, ".ckpt") {
		return false
	}
	_, err := hex.DecodeString(name[:hexLen])
	return err == nil
}

// checkpointPath returns the on-disk path of a job's checkpoint.
func (s *Server) checkpointPath(key string) string {
	return filepath.Join(s.jobCkptDir, CheckpointName(key))
}

// runCheckpointed is the default job runner when machine-state
// checkpointing is configured: it drives the simulation in
// CheckpointInterval-event windows, writing a whole-machine snapshot at
// every window boundary inside the measured region. A fresh run first
// looks for a persisted checkpoint of the same job — left by a killed
// predecessor, a preempted run, or a fleet migration push — and resumes
// from it instead of simulating from event zero; resumed results are
// bit-identical to uninterrupted ones (the resume contract is
// golden-tested in the root package). Invalid checkpoints — corrupt,
// truncated, version-skewed, or belonging to a different job — are
// discarded with a log line and the job re-simulates from scratch: a
// checkpoint is an optimization, never a correctness dependency.
//
// Between windows the runner also cooperates with the worker pool: when
// another job is blocked waiting for a slot (s.waiting), the freshly
// checkpointed run yields its slot and re-acquires one afterwards —
// checkpoint-based preemption, so a long simulation cannot starve short
// ones behind it. The preempted run loses no work: it continues from
// its in-memory state, and the just-written checkpoint covers a crash
// while it waits.
func (s *Server) runCheckpointed(ctx context.Context, job allarm.Job) (*allarm.Result, error) {
	path := s.checkpointPath(job.Key())
	h, resumed, err := s.openOrResume(job, path)
	if err != nil {
		return nil, err
	}
	if resumed {
		s.met.jobsResumed.Add(1)
		s.markResumed(job.Key())
		s.jobEvent(job.Key(), "resumed", fmt.Sprintf("from checkpoint at %d events", h.Events()))
		s.logf("job %s: resumed from checkpoint at %d events", CheckpointName(job.Key()), h.Events())
	}
	for {
		done, err := h.Step(ctx, s.ckptInterval)
		if err != nil {
			// Partial is non-nil exactly for cancellations, matching
			// Job.RunCtx's aborted-job contract; the checkpoint stays on
			// disk so the next daemon resumes instead of re-simulating.
			return h.Partial(), err
		}
		if done {
			res, err := h.Result()
			if err != nil {
				return nil, err
			}
			os.Remove(path) // complete results live in the result store
			return res, nil
		}
		if !h.CanSnapshot() {
			continue // warmup: not a checkpointable boundary
		}
		if s.writeJobCheckpoint(h, path) {
			s.jobEvent(job.Key(), "checkpointed", fmt.Sprintf("at %d events", h.Events()))
		}
		if s.waiting.Load() > 0 {
			// Yield the pool slot to a waiting job. Blocked senders queue
			// FIFO, so the waiter that triggered the yield gets the slot
			// before we re-acquire one. The invariant that runJob holds a
			// slot from entry to return (lead acquires and releases it) is
			// preserved: we always block until we hold one again.
			s.met.jobsPreempted.Add(1)
			s.jobEvent(job.Key(), "preempted", "yielded pool slot at checkpoint boundary")
			<-s.sem
			s.sem <- struct{}{}
		}
	}
}

// openOrResume opens a run handle for the job: resumed from its
// persisted checkpoint when one exists and is valid, from scratch
// otherwise. A rejected checkpoint (corruption, truncation, version
// skew, wrong job) is deleted so it is not re-tried on every run.
func (s *Server) openOrResume(job allarm.Job, path string) (*allarm.RunHandle, bool, error) {
	if data, err := os.ReadFile(path); err == nil {
		h, rerr := allarm.ResumeJob(job, bytes.NewReader(data))
		if rerr == nil {
			return h, true, nil
		}
		s.logf("job checkpoint %s: %v; re-simulating from scratch", filepath.Base(path), rerr)
		os.Remove(path)
	}
	h, err := allarm.StartJob(job)
	return h, false, err
}

// writeJobCheckpoint snapshots the paused run to its checkpoint file,
// reporting whether a checkpoint was persisted. Failures are logged,
// never fatal: durability degrades, the simulation does not.
func (s *Server) writeJobCheckpoint(h *allarm.RunHandle, path string) bool {
	start := time.Now()
	var buf bytes.Buffer
	if err := h.Snapshot(&buf); err != nil {
		s.logf("job checkpoint %s: snapshot: %v", filepath.Base(path), err)
		return false
	}
	if err := AtomicWrite(path, buf.Bytes()); err != nil {
		s.logf("job checkpoint %s: write: %v", filepath.Base(path), err)
		return false
	}
	s.met.checkpointsWritten.Add(1)
	s.met.checkpointBytes.Add(uint64(buf.Len()))
	s.met.ckptWrite.ObserveSince(start)
	s.met.ckptSize.Observe(uint64(buf.Len()))
	return true
}

// markResumed records that the job with this key was resumed from a
// checkpoint, for the sweep's per-job view ("resumed":true).
func (s *Server) markResumed(key string) {
	s.mu.Lock()
	if s.resumed == nil {
		s.resumed = make(map[string]bool)
	}
	s.resumed[key] = true
	s.mu.Unlock()
}

// takeResumed consumes the resumed mark for a key (read-once keeps the
// map bounded by in-flight jobs; coalesced followers of the same
// execution intentionally do not re-claim it).
func (s *Server) takeResumed(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.resumed[key] {
		return false
	}
	delete(s.resumed, key)
	return true
}

// handleCheckpointGet serves a job's machine-state checkpoint — the
// pull half of fleet shard migration: when a shard is retired, the
// router fetches the in-flight jobs' checkpoints from it and pushes
// them to the keys' new owners.
func (s *Server) handleCheckpointGet(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validCheckpointName(name) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed checkpoint name %q", name))
		return
	}
	data, err := os.ReadFile(filepath.Join(s.jobCkptDir, name))
	if err != nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no checkpoint %s", name))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data)
}

// handleCheckpointPut accepts a pushed checkpoint (the other half of
// migration): the next run of the matching job on this shard resumes
// from it. The body is persisted verbatim with the same atomic
// discipline as every other store file; validation happens at resume
// time, where a bad blob falls back to a full re-simulation.
func (s *Server) handleCheckpointPut(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if !validCheckpointName(name) {
		writeError(w, http.StatusBadRequest, fmt.Errorf("malformed checkpoint name %q", name))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxCheckpointBody))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading checkpoint: %w", err))
		return
	}
	if err := AtomicWrite(filepath.Join(s.jobCkptDir, name), data); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	s.logf("checkpoint %s: accepted (%d bytes)", name, len(data))
	w.WriteHeader(http.StatusCreated)
}
