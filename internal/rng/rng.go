// Package rng provides small, fast, deterministic pseudo-random number
// generators for simulation.
//
// The simulator must produce bit-identical results for a given seed across
// platforms and Go releases, so it does not use math/rand. The generators
// here are xoshiro256** (state scrambled by splitmix64), which is the
// combination recommended by Blackman & Vigna for seeding.
package rng

import "math"

// Source is a deterministic 64-bit PRNG (xoshiro256**).
//
// The zero value is not usable; construct with New. A Source is not safe
// for concurrent use; the simulator gives each simulated thread its own
// Source.
type Source struct {
	s [4]uint64
}

// splitmix64 advances x and returns the next splitmix64 output. It is used
// only to expand seeds into full xoshiro state.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds give statistically
// independent streams; seed 0 is valid.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator to the state produced by seed, as if freshly
// constructed by New(seed).
func (r *Source) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// xoshiro256** requires a non-zero state; splitmix64 of any seed cannot
	// produce all-zero words, but guard anyway so Reseed is total.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n). It panics if n == 0.
// It uses Lemire's multiply-shift rejection method to avoid modulo bias.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n called with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top bits.
	threshold := -n % n
	for {
		v := r.Uint64()
		hi, lo := mul64(v, n)
		if lo >= threshold {
			return hi
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p (clamped to [0,1]).
func (r *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed float64 with the given mean.
// It panics if mean < 0. Exp(0) returns 0.
func (r *Source) Exp(mean float64) float64 {
	if mean < 0 {
		panic("rng: Exp called with negative mean")
	}
	if mean == 0 {
		return 0
	}
	u := r.Float64()
	// Float64 is in [0,1); 1-u is in (0,1], so Log is finite.
	return -mean * math.Log(1-u)
}

// Zipf draws from a bounded Zipf-like distribution over [0, n) with
// exponent s using inverse-CDF on a precomputed table. For hot/cold access
// patterns use NewZipf once and sample repeatedly.
type Zipf struct {
	cdf []float64
	src *Source
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s >= 0 drawing
// randomness from src. s == 0 degenerates to uniform. Panics if n <= 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf called with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, src: src}
}

// Next returns the next sample in [0, n).
func (z *Zipf) Next() int {
	u := z.src.Float64()
	// Binary search for the first CDF entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Perm fills p with a uniform random permutation of [0, len(p)).
func (r *Source) Perm(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
