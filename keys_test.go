package allarm_test

import (
	"bytes"
	"testing"

	allarm "allarm"
)

// Job.Key is the content address of allarm-serve's result cache (and
// Sweep.Dedup's fingerprint), so its exact value is a compatibility
// surface: silent drift would make the service cache conflate distinct
// simulations or re-run identical ones. These goldens pin the key for
// every workload kind. If one fails, the key format changed — make sure
// that was a deliberate, simulation-semantics-affecting change (for
// example Config gaining a behaviour-affecting field, which must change
// keys), then update the golden.
//
// goldenConfigKey is the fingerprint of goldenKeyConfig below; it is
// shared by every job golden because the config suffix is common.
const goldenConfigKey = "{Threads:4 AccessesPerThread:1000 Seed:7 Policy:allarm ALLARMRanges:[] " +
	"MemPolicy:0 Nodes:0 MeshW:0 MeshH:0 L1Bytes:0 L1Ways:0 L2Bytes:0 L2Ways:0 " +
	"PFBytes:131072 PFWays:0 CacheNs:0 DirNs:0 DRAMNs:0 LinkNs:0 DRAMIntervalNs:0 " +
	"LinkBytesPerNs:0 FlitBytes:0 CtrlMsgBytes:0 DataMsgBytes:0 MemMiBPerNode:0 " +
	"CheckInvariants:false MaxEvents:0}"

// noMPKey is the fingerprint of an inactive multi-process section.
const noMPKey = "{Copies:0 FootprintBytes:0 LocalMemBytes:0}"

func goldenKeyConfig() allarm.Config {
	return allarm.Config{Threads: 4, AccessesPerThread: 1000, Seed: 7, Policy: allarm.ALLARM, PFBytes: 128 << 10}
}

// goldenProgWorkload is a tiny deterministic programmatic workload (2
// threads × 3 accesses) used by the trace and programmatic goldens.
func goldenProgWorkload(t *testing.T) allarm.Workload {
	t.Helper()
	wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
		Name: "pingpong", Threads: 2, Key: "pingpong-v1",
		Stream: func(thread int, seed uint64) allarm.Stream {
			n := 0
			return allarm.StreamFunc(func() (allarm.Access, bool) {
				if n >= 3 {
					return allarm.Access{}, false
				}
				n++
				return allarm.Access{VAddr: uint64(0x1000 * (n + thread)), Write: n%2 == 0, Think: allarm.Nanosecond}, true
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return wl
}

func TestJobKeyGoldenBenchmark(t *testing.T) {
	job := allarm.Job{Benchmark: "barnes", Config: goldenKeyConfig()}
	want := "bench:barnes|false|" + noMPKey + "|" + goldenConfigKey
	if got := job.Key(); got != want {
		t.Errorf("benchmark job key drifted:\n got %q\nwant %q", got, want)
	}
}

func TestJobKeyGoldenBenchmarkWorkload(t *testing.T) {
	wl, err := allarm.BenchmarkWorkload("barnes", 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	job := allarm.Job{Workload: wl, Config: goldenKeyConfig()}
	want := "wl:bench:barnes/t4/a1000|false|" + noMPKey + "|" + goldenConfigKey
	if got := job.Key(); got != want {
		t.Errorf("benchmark-workload job key drifted:\n got %q\nwant %q", got, want)
	}
}

func TestJobKeyGoldenProgrammatic(t *testing.T) {
	job := allarm.Job{Workload: goldenProgWorkload(t), Config: goldenKeyConfig()}
	want := "wl:func:pingpong-v1|false|" + noMPKey + "|" + goldenConfigKey
	if got := job.Key(); got != want {
		t.Errorf("programmatic job key drifted:\n got %q\nwant %q", got, want)
	}
}

func TestJobKeyGoldenTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := allarm.CaptureTrace(&buf, goldenProgWorkload(t), 7); err != nil {
		t.Fatal(err)
	}
	wl, err := allarm.ReadTraceNamed(&buf, "golden")
	if err != nil {
		t.Fatal(err)
	}
	job := allarm.Job{Workload: wl, Config: goldenKeyConfig()}
	// 2 threads × 3 measured records, no warmup.
	want := "wl:trace:golden#2/6+0|false|" + noMPKey + "|" + goldenConfigKey
	if got := job.Key(); got != want {
		t.Errorf("trace job key drifted:\n got %q\nwant %q", got, want)
	}
}

func TestJobKeyGoldenMultiProcess(t *testing.T) {
	mp := allarm.DefaultMultiProcess()
	job := allarm.Job{Benchmark: "barnes", Config: goldenKeyConfig(), MultiProcess: &mp}
	want := "bench:barnes|true|{Copies:2 FootprintBytes:655360 LocalMemBytes:589824}|" + goldenConfigKey
	if got := job.Key(); got != want {
		t.Errorf("multi-process job key drifted:\n got %q\nwant %q", got, want)
	}
}

// TestJobKeyDiscriminates spot-checks that the key separates what must
// be separate and unifies what must be unified.
func TestJobKeyDiscriminates(t *testing.T) {
	cfg := goldenKeyConfig()
	base := allarm.Job{Benchmark: "barnes", Config: cfg}

	same := allarm.Job{Benchmark: "barnes", Config: cfg}
	if base.Key() != same.Key() {
		t.Error("identical jobs got different keys")
	}

	seed := base
	seed.Config.Seed = 8
	pol := base
	pol.Config.Policy = allarm.Baseline
	pf := base
	pf.Config.PFBytes = 256 << 10
	other := allarm.Job{Benchmark: "x264", Config: cfg}
	for name, j := range map[string]allarm.Job{"seed": seed, "policy": pol, "pf": pf, "benchmark": other} {
		if j.Key() == base.Key() {
			t.Errorf("job differing in %s shares the base key", name)
		}
	}

	// A first-class Workload makes MultiProcess inert (Job.Run ignores
	// it), so it must not split the key.
	wl, err := allarm.BenchmarkWorkload("barnes", 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	mp := allarm.DefaultMultiProcess()
	a := allarm.Job{Workload: wl, Config: cfg}
	b := allarm.Job{Workload: wl, Config: cfg, MultiProcess: &mp}
	if a.Key() != b.Key() {
		t.Error("inert MultiProcess split the key of a Workload job")
	}
}
