// Command allarm-router fronts a fleet of allarm-serve shards with the
// same sweep API a single daemon speaks. It is stateless by design:
// jobs are consistent-hashed onto shards by the same content key the
// shards cache under, so identical jobs always land where their result
// is already warm, and a router restart (or a second router beside the
// first) loses nothing.
//
// Usage:
//
//	allarm-router -shards http://s1:8347,http://s2:8347
//	allarm-router -addr :8350 -shards ... -shard-token fleet-secret
//	allarm-router -auth tokens.json       # client-facing bearer auth
//	allarm-router -health-interval 5s -fail-after 3
//	allarm-router -attempts 4 -retry-backoff 250ms
//
// A sweep submitted here is expanded exactly as a single daemon would
// expand it, scattered to the owning shards as explicit job lists,
// and gathered back in submission order — every emitter (json, ndjson,
// csv, table) renders byte-identically to a single-node run. Shards
// are health-checked and routed around; a shard lost mid-sweep
// degrades that sweep's jobs to "skipped" rather than failing the
// gather. GET /metrics reports per-shard request, retry and unhealthy
// interval counters.
//
// See the "Fleet serving" section of README.md for a two-shard
// quickstart.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	allarm "allarm"
	"allarm/internal/fleet"
	"allarm/internal/server"
)

// main only translates run's status into an exit code so run's defers
// execute on every path, including signal-driven shutdown.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8350", "listen address (host:port; port 0 picks one)")
		shards     = flag.String("shards", "", "comma-separated allarm-serve base URLs (required)")
		shardToken = flag.String("shard-token", "", "bearer token the router presents to shards")
		authFile   = flag.String("auth", "", "JSON file of client tokens (bearer auth, rate limits, job quotas)")
		replicas   = flag.Int("replicas", 0, "virtual nodes per shard on the hash ring (0 = default)")
		healthIvl  = flag.Duration("health-interval", 0, "shard health probe interval (0 = default 2s)")
		failAfter  = flag.Int("fail-after", 0, "consecutive probe failures before a shard is excluded (0 = default 2)")
		attempts   = flag.Int("attempts", 0, "attempts per shard request before giving up (0 = default 3)")
		backoff    = flag.Duration("retry-backoff", 0, "base backoff between retries, doubled per attempt (0 = default 100ms)")
		reqTimeout = flag.Duration("request-timeout", 0, "per-request timeout against shards (0 = default 30s)")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("allarm-router", allarm.Version)
		return 0
	}
	if *shards == "" {
		fmt.Fprintln(os.Stderr, "allarm-router: -shards is required (comma-separated allarm-serve URLs)")
		return 2
	}
	var shardList []string
	for _, s := range strings.Split(*shards, ",") {
		if s = strings.TrimSpace(s); s != "" {
			shardList = append(shardList, s)
		}
	}

	opts := fleet.Options{
		Shards:         shardList,
		ShardToken:     *shardToken,
		Replicas:       *replicas,
		HealthInterval: *healthIvl,
		FailAfter:      *failAfter,
		Attempts:       *attempts,
		RetryBackoff:   *backoff,
		RequestTimeout: *reqTimeout,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "allarm-router: "+format+"\n", args...)
		},
	}
	if *authFile != "" {
		guard, err := server.LoadGuard(*authFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allarm-router:", err)
			return 1
		}
		opts.Guard = guard
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rt, err := fleet.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	}
	defer rt.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	}
	// The resolved address goes to stdout so scripts starting the router
	// on an ephemeral port (-addr :0) can discover where it listens.
	fmt.Printf("allarm-router: listening on http://%s, %d shard(s)\n", ln.Addr(), len(shardList))

	// ReadHeaderTimeout bounds slow-loris header dribble; IdleTimeout
	// reaps abandoned keep-alive connections. No overall write timeout:
	// /events streams for as long as a sweep runs.
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of waiting out shutdown

	sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "allarm-router:", err)
		return 1
	}
	fmt.Fprintln(os.Stderr, "allarm-router: bye")
	return 0
}
