// Package core implements the paper's contribution: the sparse directory
// (probe filter) and its allocation policies — the conventional
// allocate-on-any-miss baseline and ALLARM's allocate-on-remote-miss —
// together with the home directory controller that drives the
// Hammer-style coherence flows.
//
// Terminology follows the paper: "probe filter" (PF) is AMD's name for a
// sparse directory that is inclusive of all cached lines it tracks; a PF
// eviction therefore back-invalidates the line from every cache.
package core

import (
	"fmt"

	"allarm/internal/mem"
)

// EntryState is the tracking state of one probe-filter entry.
//
// The Hammer protocol does not record sharer sets, so the directory only
// distinguishes "one owner, no sharers" (EM), "one owner plus unknown
// sharers" (O), and "unknown sharers, no owner" (S). Invalidations for O
// and S entries must broadcast.
type EntryState uint8

const (
	// EntryEM: the owner holds the line in E or M; no other copies exist.
	EntryEM EntryState = iota
	// EntryO: the owner holds the line in O (dirty); other nodes may hold
	// S copies (untracked).
	EntryO
	// EntryS: one or more nodes may hold S copies; DRAM is current.
	EntryS
)

// String implements fmt.Stringer.
func (s EntryState) String() string {
	switch s {
	case EntryEM:
		return "EM"
	case EntryO:
		return "O"
	case EntryS:
		return "S"
	default:
		return fmt.Sprintf("EntryState(%d)", uint8(s))
	}
}

// Entry is one probe-filter entry.
type Entry struct {
	Addr  mem.PAddr
	State EntryState
	// Owner is the owning node for EM and O entries (undefined for S).
	Owner mem.NodeID

	valid bool
	lru   uint64
}

// PFStats counts probe-filter array events; the energy model multiplies
// them by per-event energies.
type PFStats struct {
	Reads     uint64 // tag lookups (every request consults the PF)
	Writes    uint64 // entry installs, state updates, deallocations
	Hits      uint64
	Misses    uint64
	Allocs    uint64
	Deallocs  uint64 // explicit frees by PutM/PutE
	Evictions uint64 // capacity-induced replacements (the paper's Fig 3b metric)
}

// ProbeFilter is the set-associative sparse-directory tag store of one
// home node.
type ProbeFilter struct {
	sets    int
	ways    int
	entries []Entry
	tick    uint64
	stats   PFStats
}

// NewProbeFilter builds a probe filter that tracks coverageBytes of cached
// data (Table I: 512 KiB, i.e. 2× one L2) with the given associativity.
// The entry count is coverageBytes / LineBytes and the set count must come
// out a power of two.
func NewProbeFilter(coverageBytes, ways int) *ProbeFilter {
	if coverageBytes <= 0 || ways <= 0 {
		panic("core: probe filter capacity and ways must be positive")
	}
	n := coverageBytes / mem.LineBytes
	if n*mem.LineBytes != coverageBytes || n%ways != 0 {
		panic("core: probe filter coverage must be a multiple of ways*LineBytes")
	}
	sets := n / ways
	if sets&(sets-1) != 0 {
		panic(fmt.Sprintf("core: probe filter set count %d is not a power of two", sets))
	}
	return &ProbeFilter{sets: sets, ways: ways, entries: make([]Entry, n)}
}

// Entries returns the total entry capacity.
func (pf *ProbeFilter) Entries() int { return pf.sets * pf.ways }

// CoverageBytes returns the bytes of cached data the filter can track.
func (pf *ProbeFilter) CoverageBytes() int { return pf.Entries() * mem.LineBytes }

// Ways returns the associativity.
func (pf *ProbeFilter) Ways() int { return pf.ways }

// Stats returns a copy of the accumulated statistics.
func (pf *ProbeFilter) Stats() PFStats { return pf.stats }

func (pf *ProbeFilter) setIndex(addr mem.PAddr) int {
	return int(uint64(addr)/mem.LineBytes) & (pf.sets - 1)
}

func (pf *ProbeFilter) set(addr mem.PAddr) []Entry {
	i := pf.setIndex(addr) * pf.ways
	return pf.entries[i : i+pf.ways]
}

// Lookup consults the filter for addr (counting a tag read, since the PF
// is consulted on every incoming request regardless of policy) and
// returns the entry or nil. Hits refresh LRU.
func (pf *ProbeFilter) Lookup(addr mem.PAddr) *Entry {
	addr = mem.LineOf(addr)
	pf.stats.Reads++
	set := pf.set(addr)
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			pf.tick++
			set[i].lru = pf.tick
			pf.stats.Hits++
			return &set[i]
		}
	}
	pf.stats.Misses++
	return nil
}

// Peek returns the entry for addr without statistics or LRU effects.
func (pf *ProbeFilter) Peek(addr mem.PAddr) *Entry {
	addr = mem.LineOf(addr)
	set := pf.set(addr)
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			return &set[i]
		}
	}
	return nil
}

// Update rewrites the state/owner of an existing entry, counting an array
// write. It panics if the entry is absent (callers look up first).
func (pf *ProbeFilter) Update(addr mem.PAddr, st EntryState, owner mem.NodeID) {
	e := pf.Peek(addr)
	if e == nil {
		panic(fmt.Sprintf("core: Update of absent entry %#x", uint64(addr)))
	}
	e.State = st
	e.Owner = owner
	pf.stats.Writes++
}

// Alloc installs an entry for addr. If the set is full it evicts the
// least-recently-used entry whose line is not busy (per busy); the victim
// must be back-invalidated by the caller. ok is false when every way in
// the set holds a busy line, in which case nothing changes and the caller
// retries later.
func (pf *ProbeFilter) Alloc(addr mem.PAddr, st EntryState, owner mem.NodeID, busy func(mem.PAddr) bool) (victim Entry, evicted, ok bool) {
	addr = mem.LineOf(addr)
	if pf.Peek(addr) != nil {
		panic(fmt.Sprintf("core: Alloc of already-present entry %#x", uint64(addr)))
	}
	set := pf.set(addr)
	vi := -1
	for i := range set {
		if !set[i].valid {
			vi = i
			break
		}
	}
	if vi < 0 {
		for i := range set {
			if busy != nil && busy(set[i].Addr) {
				continue
			}
			if vi < 0 || set[i].lru < set[vi].lru {
				vi = i
			}
		}
		if vi < 0 {
			return Entry{}, false, false
		}
		victim = set[vi]
		evicted = true
		pf.stats.Evictions++
		// A replacement reads out the victim's tag and state before the
		// new entry is written (the paper's dynamic-energy argument for
		// reducing evictions, §II-B).
		pf.stats.Reads++
	}
	pf.tick++
	set[vi] = Entry{Addr: addr, State: st, Owner: owner, valid: true, lru: pf.tick}
	pf.stats.Writes++
	pf.stats.Allocs++
	return victim, evicted, true
}

// Remove deallocates the entry for addr (PutM/PutE flows), counting an
// array write. It reports whether an entry was present.
func (pf *ProbeFilter) Remove(addr mem.PAddr) bool {
	addr = mem.LineOf(addr)
	set := pf.set(addr)
	for i := range set {
		if set[i].valid && set[i].Addr == addr {
			set[i] = Entry{}
			pf.stats.Writes++
			pf.stats.Deallocs++
			return true
		}
	}
	return false
}

// Occupancy returns the number of valid entries (O(capacity); used by
// tests and occupancy diagnostics, not by protocol flows).
func (pf *ProbeFilter) Occupancy() int {
	n := 0
	for i := range pf.entries {
		if pf.entries[i].valid {
			n++
		}
	}
	return n
}

// ResetStats zeroes the counters without touching entries (measurement
// begins after warmup).
func (pf *ProbeFilter) ResetStats() { pf.stats = PFStats{} }

// ForEachValid visits every valid entry (invariant checks).
func (pf *ProbeFilter) ForEachValid(fn func(Entry)) {
	for i := range pf.entries {
		if pf.entries[i].valid {
			fn(pf.entries[i])
		}
	}
}
