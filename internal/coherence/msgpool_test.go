package coherence

import (
	"testing"

	"allarm/internal/cache"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

func TestMsgPoolRecyclesAndZeroes(t *testing.T) {
	var p MsgPool
	m := p.Get()
	m.Op, m.Addr, m.Hit, m.Version = DataMsg, mem.PAddr(0x1000), true, 42
	m.Release()
	m2 := p.Get()
	if m2 != m {
		t.Fatalf("pool did not recycle the released message")
	}
	if m2.Op != GetS || m2.Addr != 0 || m2.Hit || m2.Version != 0 {
		t.Fatalf("recycled message not zeroed: %+v", m2)
	}
	s := p.Stats()
	if s.News != 1 || s.Gets != 2 || s.Puts != 1 {
		t.Fatalf("stats = %+v, want News=1 Gets=2 Puts=1", s)
	}
}

func TestMsgPoolDoubleReleasePanics(t *testing.T) {
	var p MsgPool
	m := p.Get()
	m.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double release")
		}
	}()
	m.Release()
}

func TestMsgReleaseWithoutPoolIsNoop(t *testing.T) {
	m := &Msg{Op: Ack}
	m.Release() // must not panic: test/tool messages have no pool
	m.Release()
}

// TestCacheCtrlRecyclesMessages drives a miss + fill + probe through a
// controller and checks the messages it allocated come back for reuse
// once the (loopback) receiver is done with them.
func TestCacheCtrlRecyclesMessages(t *testing.T) {
	eng := &sim.Engine{}
	hier := cache.NewHierarchy(1<<10, 2, 4<<10, 2)
	cc := NewCacheCtrl(0, hier, eng, &loopbackPort{}, func(mem.PAddr) mem.NodeID { return 0 }, sim.Nanosecond)

	addr := mem.PAddr(0x40)
	done := false
	cc.CoreAccess(eng.Now(), addr, false, sim.HandlerFunc(func(sim.Time) { done = true }))
	// The GetS went to the loopback port; answer it with a fill.
	fill := cc.pool.Get()
	fill.Op, fill.Addr, fill.Grant = DataMsg, addr, cache.Exclusive
	cc.HandleMsg(eng.Now(), fill)
	eng.Run(0)
	if !done {
		t.Fatal("access did not complete")
	}

	s := cc.PoolStats()
	if s.Puts == 0 {
		t.Fatalf("no messages recycled: %+v", s)
	}
	// A second identical flow must reuse freed messages, not allocate.
	news := cc.PoolStats().News
	cc.HandleMsg(eng.Now(), &Msg{Op: PrbInv, Addr: addr, Src: 1, ForwardTo: NoNode})
	eng.Run(0)
	if got := cc.PoolStats().News; got != news {
		t.Fatalf("probe flow allocated %d fresh messages, want 0", got-news)
	}
}

// loopbackPort releases everything sent through it, standing in for a
// remote controller that consumes the message.
type loopbackPort struct{}

func (p *loopbackPort) Send(m *Msg) { m.Release() }

func TestMsgPoolSharedCrossGoroutineRelease(t *testing.T) {
	// A sharded machine releases messages on goroutines other than the
	// owner's: Release must park them in the side buffer (no data race
	// with the owner's Get — run with -race) and Get must recycle them
	// on its next refill.
	var p MsgPool
	p.SetShared()

	const n = 64
	msgs := make([]*Msg, n)
	for i := range msgs {
		msgs[i] = p.Get()
	}
	done := make(chan struct{})
	go func() {
		for _, m := range msgs {
			m.Release()
		}
		close(done)
	}()
	<-done // a window barrier: releases happen-before the next Get

	for i := 0; i < n; i++ {
		if m := p.Get(); m.pool != &p {
			t.Fatal("recycled message lost its pool")
		}
	}
	s := p.Stats()
	if s.News != n {
		t.Fatalf("News = %d after recycling %d messages, want %d", s.News, n, n)
	}
	if s.Gets != 2*n || s.Puts != n {
		t.Fatalf("Gets = %d, Puts = %d, want %d and %d", s.Gets, s.Puts, 2*n, n)
	}
}
