package workload

import (
	"fmt"
	"sort"

	"allarm/internal/sim"
)

// BenchmarkNames lists the evaluated benchmarks in the paper's plotting
// order (Figures 2–4).
var BenchmarkNames = []string{
	"barnes",
	"blackscholes",
	"cholesky",
	"dedup",
	"fluidanimate",
	"ocean-cont",
	"ocean-non-cont",
	"x264",
}

// MultiProcessNames lists the SPLASH2 subset used in the multi-process
// experiment (Figure 4).
var MultiProcessNames = []string{
	"barnes", "cholesky", "ocean-cont", "ocean-non-cont",
}

// Benchmark builds the named benchmark's generator for the given thread
// count and per-thread access budget. The parameterisations are
// calibrated so that the simulated local/remote directory-request mix
// approximates Figure 2 of the paper (`allarm-bench -exp fig2` prints
// the measured mix next to each benchmark).
func Benchmark(name string, threads, accesses int) (*Synthetic, error) {
	p, ok := presets[name]
	if !ok {
		names := make([]string, 0, len(presets))
		for n := range presets {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("workload: unknown benchmark %q (have %v)", name, names)
	}
	p.Threads = threads
	p.AccessesPerThread = accesses
	return NewSynthetic(p)
}

// MustBenchmark is Benchmark for known-good names; it panics on error.
func MustBenchmark(name string, threads, accesses int) *Synthetic {
	w, err := Benchmark(name, threads, accesses)
	if err != nil {
		panic(err)
	}
	return w
}

const (
	kib = 1024
	mib = 1024 * kib
)

// presets encode each benchmark's memory personality. The quantities that
// matter (per the paper's analysis):
//
//   - PrivateBytes vs the 256 KiB L2 controls the local capacity-miss
//     rate and hence the local share of directory requests;
//   - Init placement controls which directory is home to shared misses;
//   - Pattern/fractions control coherence (sharing) misses.
var presets = map[string]Params{
	// Octree N-body: a cache-resident set of bodies per thread (updated
	// every timestep but hitting in cache, so its probe-filter entries go
	// LRU-stale — the baseline's preferred back-invalidation victims), a
	// streaming private remainder, and a shared tree homed at two nodes.
	"barnes": {
		Name: "barnes", PrivateBytes: 112 * kib, PrivateFrac: 0.40,
		PrivateWriteFrac: 0.30, PrivateHot: 0.72, SeqRunFrac: 0.55,
		SharedBytes: 768 * kib, SharedWriteFrac: 0.06,
		GlobalBytes: 224 * kib, GlobalFrac: 0.22, GlobalHot: 0.90, GlobalHomeNodes: 2,
		Pattern: Uniform, Init: PartitionedInit,
		Think: 2 * sim.Nanosecond, ThinkJitter: 2 * sim.Nanosecond,
	},
	// Option pricing: option data initialised by thread 0 (homed at node
	// 0) and streamed by everyone — node 0's directory takes the whole
	// machine's tracking load, the pattern behind the benchmark's
	// probe-filter-size sensitivity (Figure 3h).
	"blackscholes": {
		Name: "blackscholes", PrivateBytes: 32 * kib, PrivateFrac: 0.40,
		PrivateWriteFrac: 0.25, PrivateHot: 0.85, SeqRunFrac: 0.70,
		SharedBytes: 768 * kib, SharedWriteFrac: 0.02, SharedHot: 0.45,
		GlobalBytes: 192 * kib, GlobalFrac: 0.14, GlobalHot: 0.90, GlobalHomeNodes: 1,
		Pattern: HotOwner, Init: OwnerInit,
		Think: 3 * sim.Nanosecond, ThinkJitter: 2 * sim.Nanosecond,
	},
	// Sparse Cholesky factorisation: panels migrate between threads (the
	// coherence-miss driver) over a resident frontal working set.
	"cholesky": {
		Name: "cholesky", PrivateBytes: 96 * kib, PrivateFrac: 0.42,
		PrivateWriteFrac: 0.30, PrivateHot: 0.70, SeqRunFrac: 0.60,
		SharedBytes: 512 * kib, SharedWriteFrac: 0.35,
		GlobalBytes: 224 * kib, GlobalFrac: 0.18, GlobalHot: 0.90, GlobalHomeNodes: 2,
		Pattern: Migratory, Init: PartitionedInit,
		BlockLines: 64, BlockRun: 96,
		Think: 2 * sim.Nanosecond, ThinkJitter: 2 * sim.Nanosecond,
	},
	// Deduplication pipeline: bounded queues between stages, hash tables
	// larger than one L2 streaming locally.
	"dedup": {
		Name: "dedup", PrivateBytes: 112 * kib, PrivateFrac: 0.38,
		PrivateWriteFrac: 0.35, PrivateHot: 0.60, SeqRunFrac: 0.55,
		SharedBytes: 768 * kib, SharedWriteFrac: 0.40, UpstreamFrac: 0.45,
		GlobalBytes: 224 * kib, GlobalFrac: 0.14, GlobalHot: 0.90, GlobalHomeNodes: 2,
		Pattern: Pipeline, Init: InterleavedInit,
		Think: 2 * sim.Nanosecond, ThinkJitter: 2 * sim.Nanosecond,
	},
	// Particle fluid simulation: working set far beyond the caches, so
	// capacity misses dominate and ALLARM's local-probe overhead is all
	// it feels — the paper's slowdown case. Structures spread over eight
	// homes keep directory pressure (and thus ALLARM's gains) minimal.
	"fluidanimate": {
		Name: "fluidanimate", PrivateBytes: 320 * kib, PrivateFrac: 0.52,
		PrivateWriteFrac: 0.35, PrivateHot: 0.10, SeqRunFrac: 0.85,
		SharedBytes: 1 * mib, SharedWriteFrac: 0.25, NeighborFrac: 0.40,
		GlobalBytes: 128 * kib, GlobalFrac: 0.06, GlobalHot: 0.85, GlobalHomeNodes: 8,
		Pattern: Stencil, Init: PartitionedInit,
		Think: 1 * sim.Nanosecond, ThinkJitter: 1 * sim.Nanosecond,
	},
	// Red-black ocean solver, contiguous partitions: each thread's grid
	// partition fits its caches and is re-swept every iteration — it hits
	// in cache, generates no directory refreshes, and is therefore
	// exactly what baseline back-invalidations destroy. ALLARM leaves it
	// untracked: the paper's best case.
	"ocean-cont": {
		Name: "ocean-cont", PrivateBytes: 72 * kib, PrivateFrac: 0.30,
		PrivateWriteFrac: 0.30, PrivateHot: 0.35, SeqRunFrac: 0.85,
		SharedBytes: 768 * kib, SharedWriteFrac: 0.33, NeighborFrac: 0.22,
		GlobalBytes: 224 * kib, GlobalFrac: 0.22, GlobalHot: 0.90, GlobalHomeNodes: 2,
		Pattern: Stencil, Init: PartitionedInit,
		Think: 2 * sim.Nanosecond, ThinkJitter: 1 * sim.Nanosecond,
	},
	// Non-contiguous ocean: strided rows — worse spatial locality, more
	// boundary traffic, same NUMA homing.
	"ocean-non-cont": {
		Name: "ocean-non-cont", PrivateBytes: 72 * kib, PrivateFrac: 0.30,
		PrivateWriteFrac: 0.30, PrivateHot: 0.35, SeqRunFrac: 0.50,
		SharedBytes: 768 * kib, SharedWriteFrac: 0.33, NeighborFrac: 0.30,
		GlobalBytes: 224 * kib, GlobalFrac: 0.22, GlobalHot: 0.88, GlobalHomeNodes: 2,
		Pattern: Stencil, Init: PartitionedInit,
		Think: 2 * sim.Nanosecond, ThinkJitter: 1 * sim.Nanosecond,
	},
	// H.264 encoder: macroblock-row threads reading reference frames
	// (homed at the producers' two nodes) through bounded queues.
	"x264": {
		Name: "x264", PrivateBytes: 64 * kib, PrivateFrac: 0.36,
		PrivateWriteFrac: 0.30, PrivateHot: 0.75, SeqRunFrac: 0.70,
		SharedBytes: 768 * kib, SharedWriteFrac: 0.20, UpstreamFrac: 0.55,
		GlobalBytes: 256 * kib, GlobalFrac: 0.17, GlobalHot: 0.88, GlobalHomeNodes: 2,
		Pattern: Pipeline, Init: InterleavedInit,
		Think: 2 * sim.Nanosecond, ThinkJitter: 2 * sim.Nanosecond,
	},
}

// Preset returns a copy of a benchmark's raw parameters (tests and
// documentation).
func Preset(name string) (Params, bool) {
	p, ok := presets[name]
	return p, ok
}
