// Package stats provides counters, summary statistics and text tables used
// by the simulator and the experiment harness.
//
// Everything in this package is plain accounting — no simulation logic —
// so it can be unit-tested in isolation and reused by any component.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event counter.
// The zero value is ready to use.
type Counter struct {
	n uint64
}

// Add increments the counter by delta. It panics on negative deltas: a
// Counter is monotonic by contract (use Gauge-like plain ints elsewhere).
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Count returns the current value.
func (c *Counter) Count() uint64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Ratio returns a/b, or 0 when b is zero. It is the canonical "normalised
// metric" helper: Ratio(allarm, baseline).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// SafeDiv returns num/den or def when den == 0.
func SafeDiv(num, den, def float64) float64 {
	if den == 0 {
		return def
	}
	return num / den
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean of xs, or 0 for an empty slice.
// All inputs must be positive; non-positive entries make the result 0,
// mirroring how published geomeans become meaningless with zeros.
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// GeomeanNonZero returns the geometric mean of the positive entries of
// xs, ignoring zeros and negatives (0 when none are positive). Published
// figures use this when a series legitimately contains zeros — e.g. a
// benchmark whose optimised run eliminates an event class entirely plots
// as 0 and cannot enter a geomean.
func GeomeanNonZero(xs []float64) float64 {
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	return Geomean(pos)
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Histogram is a fixed-bucket histogram over float64 samples; it also keeps
// exact min/max/sum/count so means are not quantised.
type Histogram struct {
	bounds []float64 // ascending upper bounds; last bucket is +Inf
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds. An implicit overflow bucket captures samples above the last
// bound. Panics if bounds is empty or not strictly ascending.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: NewHistogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds: b,
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i]++
	h.n++
	h.sum += x
	if x < h.min {
		h.min = x
	}
	if x > h.max {
		h.max = x
	}
}

// Count returns the number of observed samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean returns the exact mean of observed samples (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest observed sample (+Inf when empty).
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observed sample (-Inf when empty).
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 <= q <= 1) using
// the bucket boundaries. The overflow bucket reports the exact max.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(math.Ceil(q * float64(h.n)))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Table renders aligned text tables for experiment output. Columns are
// sized to the widest cell; numeric alignment is the caller's concern
// (format values with consistent precision).
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row. Rows shorter than the header are padded with empty
// cells; longer rows extend the table width.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// AddRowf appends a row of formatted cells: each argument is rendered with
// the corresponding verb in verbs (reused cyclically if shorter).
func (t *Table) AddRowf(verbs []string, args ...interface{}) {
	cells := make([]string, len(args))
	for i, a := range args {
		v := "%v"
		if len(verbs) > 0 {
			v = verbs[i%len(verbs)]
		}
		cells[i] = fmt.Sprintf(v, a)
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with single-space-padded, pipe-separated
// columns and a dashed rule under the header.
func (t *Table) String() string {
	ncol := len(t.header)
	for _, r := range t.rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString(" | ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+3*(ncol-1)))
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
