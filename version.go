package allarm

// Version identifies the library and every cmd/ binary built from this
// tree — the five tools print it for -version and the daemons serve it
// at GET /v1/version. A fleet is expected to run one version end to end:
// allarm-router compares its own Version against each shard's so
// operators can catch router/shard build skew before it turns into
// subtly different simulations behind one cache key.
//
// Bump it with every release-worthy change; Job.Key intentionally does
// NOT include it (identical simulation semantics across versions must
// keep their cache entries — the golden key tests are the guard).
const Version = "0.6.0"
