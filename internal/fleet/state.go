package fleet

import (
	"encoding/json"
	"sync"
	"time"

	allarm "allarm"
	"allarm/internal/server"
)

// Fleet sweep lifecycle states. Queued/running/done mirror a single
// shard's; Degraded is fleet-specific: the gather completed but one or
// more shards could not deliver their jobs, which are reported as
// skipped rows rather than failing the whole sweep.
const (
	StatusQueued   = server.StatusQueued
	StatusRunning  = server.StatusRunning
	StatusDone     = server.StatusDone
	StatusDegraded = "degraded"
)

// JobView is one job in a fleet sweep's status: the shard column is the
// only addition over a single daemon's view.
type JobView struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	PFKiB     int    `json:"pf_kib"`
	Shard     string `json:"shard"`
	Status    string `json:"status"`
	Error     string `json:"error,omitempty"`
}

// SweepView is the router's GET /v1/sweeps/{id} payload.
type SweepView struct {
	ID       string    `json:"id"`
	Status   string    `json:"status"`
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitzero"`
	Total    int       `json:"total"`
	Done     int       `json:"done"`
	Jobs     []JobView `json:"jobs"`
}

// event is one SSE frame of the router's progress stream.
type event struct {
	Type string
	Data []byte
}

// jobEvent is the router's per-job SSE payload — a shard's job event
// re-indexed into the global spec order, plus the shard that ran it.
type jobEvent struct {
	Sweep     string `json:"sweep"`
	Index     int    `json:"index"`
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	PFKiB     int    `json:"pf_kib"`
	Shard     string `json:"shard"`
	Status    string `json:"status"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Error     string `json:"error,omitempty"`
}

// sweepEvent is the router's sweep-level SSE payload.
type sweepEvent struct {
	Sweep  string `json:"sweep"`
	Status string `json:"status"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

// fleetSweep is one scattered sweep: the global job views, the gathered
// records (indexed by global spec position) and the SSE event history.
// Shard progress arrives concurrently from per-shard goroutines; all
// mutation goes through the mutex, and done counts terminal jobs (not
// transitions) so replayed shard events stay idempotent.
type fleetSweep struct {
	id      string
	created time.Time
	total   int

	mu         sync.Mutex
	status     string
	jobs       []JobView
	terminal   []bool // job i reached a final state
	done       int
	records    []allarm.Record
	have       []bool
	finishedAt time.Time
	history    []event
	subs       map[chan struct{}]struct{}
	finished   chan struct{}
}

func newFleetSweep(id string, jobs []JobView, now time.Time) *fleetSweep {
	return &fleetSweep{
		id:       id,
		created:  now,
		total:    len(jobs),
		status:   StatusQueued,
		jobs:     jobs,
		terminal: make([]bool, len(jobs)),
		records:  make([]allarm.Record, len(jobs)),
		have:     make([]bool, len(jobs)),
		subs:     make(map[chan struct{}]struct{}),
		finished: make(chan struct{}),
	}
}

// publish appends an event and pokes subscribers. Callers hold st.mu.
func (st *fleetSweep) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return // payloads are our own structs; cannot fail
	}
	st.history = append(st.history, event{Type: typ, Data: data})
	for ch := range st.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// jobTerminal reports whether a job status string is final.
func jobTerminal(status string) bool {
	switch status {
	case server.JobDone, server.JobError, server.JobAborted, server.JobSkipped:
		return true
	}
	return false
}

// jobUpdate applies one job's status change (from a shard's SSE stream,
// remapped to the global index, or synthesised for a failed shard).
// A job that already reached a terminal state never regresses: SSE
// replay after a reconnect re-delivers old "running" frames, and the
// fetch-time reconciliation must not double-count.
func (st *fleetSweep) jobUpdate(i int, status, errMsg string) {
	if !jobTerminal(status) && status != server.JobRunning {
		return
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.terminal[i] {
		return
	}
	st.jobs[i].Status = status
	st.jobs[i].Error = errMsg
	if st.status == StatusQueued {
		st.status = StatusRunning
		st.publish("sweep", sweepEvent{Sweep: st.id, Status: st.status, Done: st.done, Total: st.total})
	}
	if jobTerminal(status) {
		st.terminal[i] = true
		st.done++
	}
	jv := st.jobs[i]
	st.publish("job", jobEvent{
		Sweep: st.id, Index: i,
		Benchmark: jv.Benchmark, Policy: jv.Policy, PFKiB: jv.PFKiB,
		Shard: jv.Shard, Status: jv.Status,
		Done: st.done, Total: st.total, Error: jv.Error,
	})
}

// setRecord stores job i's gathered (or synthesised) row.
func (st *fleetSweep) setRecord(i int, rec allarm.Record) {
	st.mu.Lock()
	st.records[i] = rec
	st.have[i] = true
	st.mu.Unlock()
}

// statusOfRecord reconciles a job's final status from its gathered row,
// for jobs whose SSE events were lost (stream broke mid-sweep but the
// fetch succeeded).
func statusOfRecord(rec allarm.Record) string {
	switch {
	case rec.Error == "":
		return server.JobDone
	case rec.Aborted:
		return server.JobAborted
	default:
		return server.JobError
	}
}

// finish marks the gather complete. degraded reports whether any shard
// failed to deliver (its jobs were synthesised as skipped rows).
func (st *fleetSweep) finish(degraded bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.finishedAt = time.Now()
	if degraded {
		st.status = StatusDegraded
	} else {
		st.status = StatusDone
	}
	st.publish("sweep", sweepEvent{Sweep: st.id, Status: st.status, Done: st.done, Total: st.total})
	close(st.finished)
}

// view snapshots the sweep for the status endpoint.
func (st *fleetSweep) view() SweepView {
	st.mu.Lock()
	defer st.mu.Unlock()
	jobs := make([]JobView, len(st.jobs))
	copy(jobs, st.jobs)
	return SweepView{
		ID: st.id, Status: st.status, Created: st.created,
		Finished: st.finishedAt,
		Total:    st.total, Done: st.done, Jobs: jobs,
	}
}

// terminalState reports whether the gather has finished.
func (st *fleetSweep) terminalState() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status == StatusDone || st.status == StatusDegraded
}

// snapshot returns the gathered records in global spec order, or
// ok == false while shards are still delivering.
func (st *fleetSweep) snapshot() (recs []allarm.Record, status string, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.status != StatusDone && st.status != StatusDegraded {
		return nil, st.status, false
	}
	recs = make([]allarm.Record, len(st.records))
	copy(recs, st.records)
	return recs, st.status, true
}

// subscribe registers an SSE consumer (same incremental-history model
// as a single daemon's stream).
func (st *fleetSweep) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	st.mu.Lock()
	st.subs[ch] = struct{}{}
	st.mu.Unlock()
	return ch
}

func (st *fleetSweep) unsubscribe(ch chan struct{}) {
	st.mu.Lock()
	delete(st.subs, ch)
	st.mu.Unlock()
}

// eventsSince returns the history from index from on, plus whether the
// sweep is final.
func (st *fleetSweep) eventsSince(from int) ([]event, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	final := st.status == StatusDone || st.status == StatusDegraded
	if from >= len(st.history) {
		return nil, final
	}
	evs := make([]event, len(st.history)-from)
	copy(evs, st.history[from:])
	return evs, final
}
