// Package server is the simulation-as-a-service daemon behind
// cmd/allarm-serve: a REST front end over the allarm Sweep API with a
// job store, a bounded simulation worker pool, and a content-addressed
// result cache.
//
// The cache is keyed on Job.Key — the same fingerprint Sweep.Dedup uses
// — so every distinct simulation runs at most once for the daemon's
// lifetime (LRU-bounded): identical jobs in later sweeps are served
// from cache, and identical jobs in-flight at the same time are
// coalesced onto one execution (singleflight). Results are exactly what
// the library produces; the emitters rendering them are the ones the
// CLI tools use, so served output is byte-identical to a local run.
//
// # Durability
//
// With a cache directory (Options.CacheDir, allarm-serve -cache-dir)
// the daemon becomes restart-safe. The in-memory LRU gains a disk tier
// (results/, content-addressed by the same Job.Key) that every complete
// result is written through to; submitted sweep specs are persisted
// (sweeps/<id>.json) until the sweep is deleted or expires; uploaded
// traces are kept (traces/<id>); and drain checkpoints default into
// checkpoints/. At boot the daemon re-enqueues every persisted sweep
// under its original id — jobs whose keys are already in the disk store
// are served from it without re-simulating, so only the missing jobs
// actually run. A SIGKILL therefore costs at most the simulations that
// were mid-flight; everything completed is recovered byte-identically.
//
// # Machine-state checkpoints
//
// With Options.CheckpointInterval set (allarm-serve
// -checkpoint-interval) even the mid-flight jobs survive: the runner
// snapshots the full machine state of every running simulation — event
// heap, caches, directories, MSHRs, workload cursors, rng streams —
// every N events into jobckpts/ (sha256(Job.Key)-named files, written
// with the same fsync'd temp+rename discipline as the result store).
// After a kill, boot recovery re-enqueues the sweep as above and the
// runner resumes each interrupted job from its checkpoint instead of
// event zero; a resumed run is bit-identical to an uninterrupted one
// (internal/checkpoint's golden-tested guarantee), so cached results
// and rendered output are unaffected. Checkpoints are an optimization,
// never a correctness dependency: a corrupt, truncated or
// version-skewed file is discarded (CRC + version checks) and the job
// re-simulates from scratch. Checkpoint boundaries also give the pool
// preemption points — a long job yields its worker slot to waiting
// work and resumes when a slot frees — and the /v1/checkpoints
// endpoints let allarm-router migrate in-flight jobs between shards.
//
// # Cancellation
//
// Drain cancellation is threaded through Runner.Exec into the event
// loop itself (sim.RunCtx), so an executing simulation aborts within
// one sim.CancelCheckBudget of events instead of running to
// completion: drain time is bounded by the grace period plus one event
// budget, not one full simulation. Interrupted jobs report status
// "aborted" (with their partial metrics in the checkpoint NDJSON);
// jobs cancellation reached first report "skipped".
package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
)

// Default sizing knobs.
const (
	// DefaultCacheEntries bounds the result cache when Options doesn't.
	DefaultCacheEntries = 1024
	// maxSubmitBytes bounds a POST /v1/sweeps body.
	maxSubmitBytes = 1 << 20
	// maxTraceBytes bounds a POST /v1/traces body.
	maxTraceBytes = 64 << 20
	// maxTraces bounds the uploaded-trace store (each entry pins a
	// parsed replay in memory); the least recently uploaded is evicted.
	// Sweeps capture their Workload at submit time, so evicting a trace
	// never breaks an in-flight sweep — only future "trace:ID" specs.
	maxTraces = 64
)

// Options configures a Server.
type Options struct {
	// Workers bounds concurrently running simulations across all sweeps
	// (<= 0: NumCPU, divided by SimThreads when that is set so the
	// total goroutine demand stays near the core count). Request
	// handling is not bounded by it: cache hits and status reads never
	// wait for a worker.
	Workers int
	// SimThreads, when > 1, runs every executed simulation on that many
	// parallel event shards (Config.SimThreads). It is applied at
	// execution time and is NOT part of a job's cache identity: the
	// parallel engine is bit-identical to the serial one, so a result
	// computed at any thread count serves every client. Machines that
	// cannot shard fall back to serial execution on their own.
	SimThreads int
	// CacheEntries bounds the in-memory result cache (<= 0:
	// DefaultCacheEntries). The disk tier, when enabled, is unbounded.
	CacheEntries int
	// CacheDir, when non-empty, makes the daemon restart-safe: results
	// are written through to a disk store under it, sweep specs and
	// uploaded traces are persisted, and boot re-enqueues unfinished
	// sweeps (see the package's Durability section for the layout).
	CacheDir string
	// Store, when non-nil, is the persistent result tier, replacing the
	// <CacheDir>/results disk store — typically NewObjectStore, so fleet
	// shards share results without shared disks. CacheDir (when also
	// set) still persists sweep specs, traces and checkpoints locally.
	Store ResultStore
	// Guard, when non-nil, authenticates and rate-limits every request
	// (see Guard) and enforces per-client job quotas at submit time.
	Guard *Guard
	// ObjectServeDir, when non-empty, additionally serves the S3-style
	// object protocol (ObjectHandler) from that directory under
	// /v1/objects/ — one shard's disk becoming the fleet's shared
	// result store.
	ObjectServeDir string
	// CheckpointDir, when non-empty, receives one <sweep-id>.ndjson per
	// sweep still in flight when Drain cancels it. Empty with a CacheDir
	// defaults to <CacheDir>/checkpoints.
	CheckpointDir string
	// CheckpointInterval, when positive, enables machine-state
	// checkpointing of running simulations (allarm-serve
	// -checkpoint-interval): every that-many events, the executing job's
	// whole simulation state is snapshotted to the job checkpoint
	// directory, a killed daemon resumes interrupted jobs from their
	// latest checkpoint at boot instead of re-simulating from event
	// zero, and long jobs are preempted at checkpoint boundaries when
	// shorter work is waiting for a pool slot. Resumed results are
	// bit-identical to uninterrupted ones. Ignored when Options.RunJob
	// is set (the injected runner owns execution).
	CheckpointInterval uint64
	// JobCheckpointDir is where machine-state checkpoints live (one
	// <sha256(Job.Key)>.ckpt per in-flight job). Empty with a CacheDir
	// defaults to <CacheDir>/jobckpts; CheckpointInterval without any
	// directory is a configuration error. The directory also backs the
	// /v1/checkpoints endpoints allarm-router uses to migrate in-flight
	// jobs between shards.
	JobCheckpointDir string
	// Retain, when positive, evicts finished sweeps (and their persisted
	// specs and checkpoints) that reached a terminal state longer than
	// this ago, instead of keeping them for the daemon's lifetime. The
	// content-addressed result store is not affected: identical
	// re-submissions stay cache hits after the sweep itself is gone.
	Retain time.Duration
	// RunJob executes one simulation; nil means Job.RunCtx. Tests inject
	// gates and counters here. Implementations must honour ctx the way
	// Job.RunCtx does: drain latency is bounded by how promptly they
	// abort.
	RunJob func(ctx context.Context, j allarm.Job) (*allarm.Result, error)
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Logger, when non-nil, is the structured logger: lifecycle events
	// go to it (at info) when Logf is nil, and the Handler emits one
	// request log line per request with method/route/status/duration and
	// the X-Allarm-Request-Id correlation id.
	Logger *slog.Logger
}

// Server is the daemon state: sweeps, uploaded traces, the result cache
// and the worker pool. Create with New, serve Handler, stop with Drain.
type Server struct {
	opts          Options
	workers       int
	mux           *http.ServeMux
	handler       http.Handler // mux behind the Guard (when configured)
	ctx           context.Context
	cancel        context.CancelFunc
	sem           chan struct{}
	cache         *tieredStore
	flights       flightGroup
	met           *metrics
	start         time.Time
	runJob        func(ctx context.Context, j allarm.Job) (*allarm.Result, error)
	sweepDir      string       // persisted sweep specs (restart recovery); "" = none
	traceDir      string       // persisted trace uploads; "" = none
	checkpointDir string       // drain checkpoints; "" = none
	jobCkptDir    string       // machine-state job checkpoints; "" = off
	ckptInterval  uint64       // events between job checkpoints
	waiting       atomic.Int64 // jobs blocked on the worker pool (preemption signal)

	mu       sync.Mutex
	draining bool
	sweeps   map[string]*sweepState
	order    []string
	traces   map[string]allarm.Workload
	traceIDs []string // upload order, oldest first (eviction)
	nextID   uint64
	resumed  map[string]bool // job keys resumed from a checkpoint (view flag)
	active   sync.WaitGroup
	actives  int // running sweep goroutines (metrics)
	// jobRefs maps an in-flight job key to every (sweep, index) running
	// it, so checkpoint/preempt/resume events — which happen deep in the
	// runner where only the Job is known — land on the right timelines,
	// including every sweep coalesced onto one flight.
	jobRefs map[string][]jobRef
}

// jobRef locates one job within one sweep's timeline.
type jobRef struct {
	st  *sweepState
	idx int
}

// New returns a ready Server. With Options.CacheDir set it also opens
// the disk result store and re-enqueues every persisted sweep (see
// Recover); the returned server is already running those.
func New(opts Options) (*Server, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
		if opts.SimThreads > 1 {
			// Each running job occupies SimThreads cores; keep the
			// default pool from oversubscribing the machine.
			if workers = workers / opts.SimThreads; workers < 1 {
				workers = 1
			}
		}
	}
	entries := opts.CacheEntries
	if entries <= 0 {
		entries = DefaultCacheEntries
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:          opts,
		workers:       workers,
		ctx:           ctx,
		cancel:        cancel,
		sem:           make(chan struct{}, workers),
		cache:         &tieredStore{lru: newResultCache(entries)},
		start:         time.Now(),
		runJob:        opts.RunJob,
		checkpointDir: opts.CheckpointDir,
		jobCkptDir:    opts.JobCheckpointDir,
		ckptInterval:  opts.CheckpointInterval,
		met:           newMetrics(),
		sweeps:        make(map[string]*sweepState),
		traces:        make(map[string]allarm.Workload),
		jobRefs:       make(map[string][]jobRef),
	}
	// Gauges read live server state at exposition time.
	s.met.reg.Gauge("allarm_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	s.met.reg.Gauge("allarm_sweeps_active", "Sweeps currently running.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.actives) })
	s.met.reg.Gauge("allarm_draining", "1 while the daemon is draining.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.draining {
				return 1
			}
			return 0
		})
	s.met.reg.Gauge("allarm_cache_entries", "Results in the in-memory cache.",
		func() float64 { return float64(s.cache.lru.Len()) })
	s.met.reg.Gauge("allarm_cache_capacity", "In-memory cache capacity.",
		func() float64 { return float64(s.cache.lru.cap) })
	s.met.reg.Gauge("allarm_sim_events_per_second", "Simulation events over accumulated busy time.",
		func() float64 {
			wallNs, events := s.met.simWallNs.Load(), s.met.simEvents.Load()
			if wallNs == 0 {
				return 0
			}
			return float64(events) / (float64(wallNs) / 1e9)
		})
	if s.ckptInterval > 0 && s.jobCkptDir == "" && opts.CacheDir != "" {
		s.jobCkptDir = filepath.Join(opts.CacheDir, "jobckpts")
	}
	if s.ckptInterval > 0 && s.jobCkptDir == "" {
		cancel()
		return nil, fmt.Errorf("CheckpointInterval needs JobCheckpointDir or CacheDir (nowhere to persist checkpoints)")
	}
	if s.jobCkptDir != "" {
		if err := os.MkdirAll(s.jobCkptDir, 0o755); err != nil {
			cancel()
			return nil, fmt.Errorf("job checkpoint dir: %w", err)
		}
	}
	switch {
	case s.runJob != nil:
		// Injected runner (tests) owns execution.
	case s.ckptInterval > 0:
		s.runJob = s.runCheckpointed
	default:
		s.runJob = func(ctx context.Context, j allarm.Job) (*allarm.Result, error) { return j.RunCtx(ctx) }
	}
	if opts.Store != nil {
		s.cache.disk = opts.Store
	}
	if opts.CacheDir != "" {
		if s.cache.disk == nil {
			disk, err := NewDiskStore(filepath.Join(opts.CacheDir, "results"))
			if err != nil {
				cancel()
				return nil, err
			}
			s.cache.disk = disk
		}
		s.sweepDir = filepath.Join(opts.CacheDir, "sweeps")
		s.traceDir = filepath.Join(opts.CacheDir, "traces")
		if s.checkpointDir == "" {
			s.checkpointDir = filepath.Join(opts.CacheDir, "checkpoints")
		}
		for _, dir := range []string{s.sweepDir, s.traceDir, s.checkpointDir} {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				cancel()
				return nil, fmt.Errorf("cache dir: %w", err)
			}
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleDelete)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/events", s.handleEvents)
	s.mux.HandleFunc("GET /v1/sweeps/{id}/timeline", s.handleTimeline)
	s.mux.HandleFunc("POST /v1/traces", s.handleTraceUpload)
	s.mux.HandleFunc("GET /v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/benchmarks", s.handleBenchmarks)
	s.mux.HandleFunc("GET /v1/version", handleVersion)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.jobCkptDir != "" {
		s.mux.HandleFunc("GET /v1/checkpoints/{name}", s.handleCheckpointGet)
		s.mux.HandleFunc("POST /v1/checkpoints/{name}", s.handleCheckpointPut)
	}
	if opts.ObjectServeDir != "" {
		oh, err := ObjectHandler(opts.ObjectServeDir)
		if err != nil {
			cancel()
			return nil, err
		}
		s.mux.Handle("/v1/objects/", http.StripPrefix("/v1/objects", oh))
	}
	// pprof is admin-gated like the timeline: with a Guard the request
	// already carries a valid bearer token (Wrap 401s otherwise) and
	// adminOnly 403s non-admin clients; without -auth it is open,
	// matching /metrics conventions.
	s.mux.HandleFunc("/debug/pprof/", adminOnly(pprof.Index))
	s.mux.HandleFunc("/debug/pprof/cmdline", adminOnly(pprof.Cmdline))
	s.mux.HandleFunc("/debug/pprof/profile", adminOnly(pprof.Profile))
	s.mux.HandleFunc("/debug/pprof/symbol", adminOnly(pprof.Symbol))
	s.mux.HandleFunc("/debug/pprof/trace", adminOnly(pprof.Trace))
	// Request-id minting, request logging and per-route latency wrap
	// outside the Guard so rejected requests are observable too.
	s.handler = obs.Instrument(opts.Guard.Wrap(s.mux), obs.MiddlewareOptions{
		Logger:   opts.Logger,
		Registry: s.met.reg,
		Prefix:   "allarm_",
		Route: func(r *http.Request) string {
			_, pattern := s.mux.Handler(r)
			return pattern
		},
	})
	if err := s.recover(); err != nil {
		cancel()
		return nil, err
	}
	if opts.Retain > 0 {
		go s.janitor()
	}
	return s, nil
}

// Handler returns the daemon's HTTP handler (behind the Guard when one
// is configured).
func (s *Server) Handler() http.Handler { return s.handler }

// handleVersion reports the build's allarm.Version — how fleet
// operators (and allarm-router itself) verify shard/router build skew.
func handleVersion(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]string{"version": allarm.Version})
}

// Close cancels everything immediately (tests; production uses Drain).
func (s *Server) Close() { s.cancel() }

func (s *Server) logf(format string, args ...any) {
	switch {
	case s.opts.Logf != nil:
		s.opts.Logf(format, args...)
	case s.opts.Logger != nil:
		s.opts.Logger.Info(fmt.Sprintf(format, args...))
	}
}

// adminOnly wraps an operational handler (pprof) behind the admin
// scope: 403 for authenticated non-admin clients, open when no Guard
// is configured.
func adminOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := CheckAdmin(r); err != nil {
			writeError(w, http.StatusForbidden, err)
			return
		}
		h(w, r)
	}
}

// Drain shuts the daemon down gracefully: new sweep submissions are
// refused (503) immediately, then in-flight sweeps get until ctx
// expires to complete; after that, still-running sweeps are cancelled
// and checkpointed — their partial results stay fetchable (skipped
// jobs carry the cancellation error, aborted ones additionally their
// partial metrics) and, with a checkpoint directory, are written as
// <sweep-id>.ndjson. Cancellation reaches into the event loop itself
// (sim.RunCtx): an executing simulation aborts within one
// sim.CancelCheckBudget of events, so total drain time is bounded by
// the grace period plus one event budget — not by a full simulation.
// With a CacheDir, the cancelled sweeps' specs stay persisted, so the
// next daemon re-enqueues exactly the jobs that did not finish.
func (s *Server) Drain(ctx context.Context) {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.active.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.logf("drain grace expired; checkpointing in-flight sweeps")
		s.cancel()
		<-done
	}
	s.cancel()
}

// persistedSweep is the sweeps/<id>.json record a CacheDir daemon
// writes at submit time: everything needed to rebuild the sweep under
// its original id after a restart. It deliberately stores the request,
// not the expanded job list — buildSweep is deterministic, and
// re-expanding keeps the file format decoupled from Job's fields.
type persistedSweep struct {
	ID      string       `json:"id"`
	Created time.Time    `json:"created"`
	Request SweepRequest `json:"request"`
}

// persistSweep writes the sweep's spec for restart recovery (no-op
// without a CacheDir). Errors are logged, not fatal: durability
// degrades, serving does not.
func (s *Server) persistSweep(id string, created time.Time, req *SweepRequest) {
	if s.sweepDir == "" {
		return
	}
	data, err := json.Marshal(persistedSweep{ID: id, Created: created, Request: *req})
	if err == nil {
		err = AtomicWrite(filepath.Join(s.sweepDir, id+".json"), append(data, '\n'))
	}
	if err != nil {
		s.logf("sweep %s: persist: %v", id, err)
	}
}

// removeSweepFiles deletes a sweep's persisted spec and checkpoint
// (DELETE endpoint and -retain eviction).
func (s *Server) removeSweepFiles(id string) {
	if s.sweepDir != "" {
		os.Remove(filepath.Join(s.sweepDir, id+".json"))
	}
	if s.checkpointDir != "" {
		os.Remove(filepath.Join(s.checkpointDir, id+".ndjson"))
	}
}

// recover re-enqueues every persisted sweep at boot, in id order, under
// its original id. Jobs whose keys are already in the disk result
// store resolve as disk hits without re-simulating; only the missing
// jobs run. Corrupt or no-longer-buildable specs are logged and
// skipped, never fatal — the daemon must come up.
func (s *Server) recover() error {
	if s.sweepDir == "" {
		return nil
	}
	paths, err := filepath.Glob(filepath.Join(s.sweepDir, "*.json"))
	if err != nil {
		return err
	}
	sort.Strings(paths) // sw-%06d ids sort chronologically
	var states []*sweepState
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			s.logf("recover %s: %v", path, err)
			continue
		}
		var ps persistedSweep
		if err := json.Unmarshal(data, &ps); err != nil || ps.ID == "" {
			s.logf("recover %s: corrupt spec, skipping", path)
			continue
		}
		sweep, err := s.buildSweep(&ps.Request)
		if err != nil {
			s.logf("recover %s: %v", ps.ID, err)
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(ps.ID, "sw-%d", &n); err == nil && n > s.nextID {
			s.nextID = n
		}
		st := newSweepState(ps.ID, sweep, ps.Created)
		st.recovered = true
		s.sweeps[ps.ID] = st
		s.order = append(s.order, ps.ID)
		s.active.Add(1)
		s.actives++
		states = append(states, st)
	}
	for _, st := range states {
		s.met.sweepsRecovered.Add(1)
		// Recovery has no inbound request; mint a fresh correlation id so
		// the recovered run's timeline and logs still stitch together.
		st.reqID = obs.NewRequestID()
		st.timeline("accepted", -1, "recovered from persisted spec")
		st.timeline("expanded", -1, fmt.Sprintf("%d job(s)", st.total))
		s.logf("sweep %s: recovered from %s (%d jobs)", st.id, s.sweepDir, st.total)
		go s.runSweep(st)
	}
	return nil
}

// janitor periodically evicts finished sweeps older than Retain.
func (s *Server) janitor() {
	interval := s.opts.Retain / 4
	if interval < time.Second {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-t.C:
			s.evictExpired()
		}
	}
}

// evictExpired removes finished sweeps that outlived the retention TTL
// (their persisted specs and checkpoints with them). It runs from the
// janitor and opportunistically from the listing handler so tests and
// bursty deployments see timely eviction without waiting a tick.
func (s *Server) evictExpired() {
	if s.opts.Retain <= 0 {
		return
	}
	cutoff := time.Now().Add(-s.opts.Retain)
	var evicted []string
	s.mu.Lock()
	kept := s.order[:0]
	for _, id := range s.order {
		if st := s.sweeps[id]; st != nil && st.expired(cutoff) {
			delete(s.sweeps, id)
			evicted = append(evicted, id)
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
	s.mu.Unlock()
	for _, id := range evicted {
		s.removeSweepFiles(id)
		s.met.sweepsExpired.Add(1)
		s.logf("sweep %s: expired after %s retention", id, s.opts.Retain)
	}
}

// SweepRequest is the POST /v1/sweeps body: seed workloads crossed with
// policies and probe-filter sizes, exactly like the Sweep combinators,
// plus optional explicit per-job specs (Jobs).
type SweepRequest struct {
	// Benchmarks are preset names; Workloads are "bench:NAME" or
	// "trace:ID" specs (IDs from POST /v1/traces). Together they seed
	// the crossed grid; at least one job (grid or explicit) is required.
	Benchmarks []string `json:"benchmarks,omitempty"`
	Workloads  []string `json:"workloads,omitempty"`
	// Policies are registered policy names (default: baseline only).
	Policies []string `json:"policies,omitempty"`
	// PFKiB are probe-filter coverages to cross (default: the config's).
	PFKiB []int `json:"pf_kib,omitempty"`
	// Jobs are explicit per-job specs appended after the crossed grid,
	// in order, NOT expanded by Policies/PFKiB — each carries its own.
	// They express arbitrary job subsets the cross-product cannot, which
	// is how allarm-router scatters a sweep: every shard receives
	// exactly its hash-assigned jobs as an explicit list, in the global
	// spec order, so the gathered results merge deterministically.
	Jobs []JobSpec `json:"jobs,omitempty"`
	// Config overrides the default experiment-scale configuration.
	Config *ConfigOverrides `json:"config,omitempty"`
}

// JobSpec pins down one job exactly: a workload under one policy and
// probe-filter size. Zero Policy/PFKiB keep the request config's
// defaults, so a spec expands to the same Job — and therefore the same
// golden-tested Job.Key — the crossed grid would have produced.
type JobSpec struct {
	// Workload is "bench:NAME" or "trace:ID".
	Workload string `json:"workload"`
	// Policy is a registered policy name ("" = the config's default).
	Policy string `json:"policy,omitempty"`
	// PFKiB is the probe-filter coverage (0 = the config's default).
	PFKiB int `json:"pf_kib,omitempty"`
}

// ConfigOverrides are the Config fields the API exposes; zero values
// keep the server default (ExperimentConfig, the CLI tools' default).
type ConfigOverrides struct {
	Threads           int     `json:"threads,omitempty"`
	AccessesPerThread int     `json:"accesses_per_thread,omitempty"`
	Seed              *uint64 `json:"seed,omitempty"`
	// FullScale selects the unscaled Table I SRAM sizes (DefaultConfig).
	FullScale       bool `json:"full_scale,omitempty"`
	CheckInvariants bool `json:"check_invariants,omitempty"`
}

// SubmitResponse is the POST /v1/sweeps reply.
type SubmitResponse struct {
	ID      string `json:"id"`
	Jobs    int    `json:"jobs"`
	Status  string `json:"status_url"`
	Results string `json:"results_url"`
	Events  string `json:"events_url"`
}

// buildSweep validates the request and expands it into a Sweep,
// resolving trace:ID workloads against the upload store (memory first,
// then the persisted copy).
func (s *Server) buildSweep(req *SweepRequest) (*allarm.Sweep, error) {
	return ExpandSweep(req, s.lookupTrace)
}

// lookupTrace resolves an uploaded trace id, falling back to the
// persisted upload when it is not in memory (restart, or evicted
// beyond maxTraces).
func (s *Server) lookupTrace(id string) allarm.Workload {
	s.mu.Lock()
	wl := s.traces[id]
	s.mu.Unlock()
	if wl == nil {
		wl = s.loadTraceFromDisk(id)
	}
	return wl
}

// RequestConfig resolves a request's configuration: the experiment-
// scale default with the request's overrides applied. It is split from
// ExpandSweep because allarm-router needs the same resolution to
// compute shard-local Job.Keys.
func RequestConfig(o *ConfigOverrides) allarm.Config {
	cfg := allarm.ExperimentConfig()
	if o != nil {
		if o.FullScale {
			cfg = allarm.DefaultConfig()
		}
		if o.Threads > 0 {
			cfg.Threads = o.Threads
		}
		if o.AccessesPerThread > 0 {
			cfg.AccessesPerThread = o.AccessesPerThread
		}
		if o.Seed != nil {
			cfg.Seed = *o.Seed
		}
		cfg.CheckInvariants = o.CheckInvariants
	}
	return cfg
}

// ExpandSweep validates req and expands it into a Sweep: the crossed
// grid (Benchmarks/Workloads × Policies × PFKiB) followed by the
// explicit Jobs, in order. traces resolves "trace:ID" workload specs
// (nil means traces are not supported). The expansion is deterministic
// — the same request always yields the same jobs in the same order —
// which both restart recovery and the router's scatter/gather merge
// depend on. It is exported for allarm-router, which must expand a
// request exactly like the shards it scatters to.
func ExpandSweep(req *SweepRequest, traces func(id string) allarm.Workload) (*allarm.Sweep, error) {
	cfg := RequestConfig(req.Config)

	known := make(map[string]bool)
	for _, b := range allarm.Benchmarks() {
		known[b] = true
	}
	resolve := func(spec string) (allarm.Job, error) {
		job := allarm.Job{Config: cfg}
		switch {
		case strings.HasPrefix(spec, "bench:"):
			name := strings.TrimPrefix(spec, "bench:")
			if !known[name] {
				return job, fmt.Errorf("unknown benchmark %q (see GET /v1/benchmarks)", name)
			}
			job.Benchmark = name
		case strings.HasPrefix(spec, "trace:"):
			id := strings.TrimPrefix(spec, "trace:")
			var wl allarm.Workload
			if traces != nil {
				wl = traces(id)
			}
			if wl == nil {
				return job, fmt.Errorf("unknown trace %q (upload with POST /v1/traces)", id)
			}
			job.Workload = wl
		default:
			return job, fmt.Errorf("workload %q: want bench:NAME or trace:ID", spec)
		}
		return job, nil
	}

	var jobs []allarm.Job
	for _, b := range req.Benchmarks {
		if !known[b] {
			return nil, fmt.Errorf("unknown benchmark %q (see GET /v1/benchmarks)", b)
		}
		jobs = append(jobs, allarm.Job{Benchmark: b, Config: cfg})
	}
	for _, spec := range req.Workloads {
		job, err := resolve(spec)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job)
	}

	sweep := allarm.NewSweep(jobs...)
	if len(req.Policies) > 0 {
		pols := make([]allarm.Policy, len(req.Policies))
		for i, name := range req.Policies {
			p, err := allarm.ParsePolicy(name)
			if err != nil {
				return nil, err
			}
			pols[i] = p
		}
		sweep.CrossPolicies(pols...)
	}
	if len(req.PFKiB) > 0 {
		sizes := make([]int, len(req.PFKiB))
		for i, kib := range req.PFKiB {
			if kib <= 0 {
				return nil, fmt.Errorf("pf_kib must be positive, got %d", kib)
			}
			sizes[i] = kib << 10
		}
		sweep.CrossPFSizes(sizes...)
	}

	// Explicit jobs ride after the grid, uncrossed: each spec carries
	// its own policy and probe-filter size.
	for _, js := range req.Jobs {
		job, err := resolve(js.Workload)
		if err != nil {
			return nil, err
		}
		if js.Policy != "" {
			p, err := allarm.ParsePolicy(js.Policy)
			if err != nil {
				return nil, err
			}
			job.Config.Policy = p
		}
		if js.PFKiB < 0 {
			return nil, fmt.Errorf("pf_kib must be positive, got %d", js.PFKiB)
		}
		if js.PFKiB > 0 {
			job.Config.PFBytes = js.PFKiB << 10
		}
		sweep.Add(job)
	}

	if sweep.Len() == 0 {
		return nil, fmt.Errorf("empty sweep: give at least one benchmark, workload or job")
	}
	return sweep, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	body := http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sweep, err := s.buildSweep(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := CheckJobQuota(r, sweep.Len()); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("draining: not accepting new sweeps"))
		return
	}
	s.nextID++
	id := fmt.Sprintf("sw-%06d", s.nextID)
	created := time.Now()
	st := newSweepState(id, sweep, created)
	s.sweeps[id] = st
	s.order = append(s.order, id)
	s.active.Add(1)
	s.actives++
	s.mu.Unlock()

	// Persist the spec before acknowledging: once the client holds the
	// id, a crash must not forget the sweep.
	s.persistSweep(id, created, &req)
	s.met.sweepsSubmitted.Add(1)
	st.reqID = obs.RequestID(r.Context())
	st.timeline("accepted", -1, "")
	st.timeline("expanded", -1, fmt.Sprintf("%d job(s)", sweep.Len()))
	s.logf("sweep %s: %d jobs submitted", id, sweep.Len())
	go s.runSweep(st)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, SubmitResponse{
		ID: id, Jobs: sweep.Len(),
		Status:  "/v1/sweeps/" + id,
		Results: "/v1/sweeps/" + id + "/results",
		Events:  "/v1/sweeps/" + id + "/events",
	})
}

// runSweep drives one sweep through a Runner whose Exec is the cached,
// coalesced, pool-bounded executor.
func (s *Server) runSweep(st *sweepState) {
	defer func() {
		s.mu.Lock()
		s.actives--
		s.mu.Unlock()
		s.active.Done()
	}()
	runner := &allarm.Runner{
		// Per-sweep fan-out matches the pool width; the pool itself is
		// enforced globally in exec, so concurrent sweeps share — not
		// multiply — the simulation workers. Cache hits and coalesced
		// jobs resolve without occupying a pool slot.
		Parallelism: s.workers,
		Start: func(i, _ int, j allarm.Job) {
			s.registerJobRef(j.Key(), st, i)
			st.jobStarted(i)
		},
		JobDone: func(i, _ int, r allarm.SweepResult) {
			s.unregisterJobRef(r.Job.Key(), st, i)
			st.jobFinished(i, r, s.takeResumed(r.Job.Key()))
		},
		Exec: s.exec,
	}
	results, runErr := runner.Run(s.ctx, st.sweep)
	checkpointed := runErr != nil
	st.finish(results, checkpointed)
	if checkpointed {
		s.met.sweepsCheckpointed.Add(1)
		s.checkpoint(st, results)
		s.logf("sweep %s: checkpointed with %d/%d jobs done", st.id, st.view().Done, st.total)
		return
	}
	s.met.sweepsCompleted.Add(1)
	s.logf("sweep %s: done (%d jobs)", st.id, st.total)
}

// checkpoint writes a cancelled sweep's partial results as NDJSON
// (aborted jobs carry their partial metrics and "aborted":true). Like
// every other cache-dir file it is written atomically, so a kill
// during shutdown never leaves a torn checkpoint.
func (s *Server) checkpoint(st *sweepState, results []allarm.SweepResult) {
	if s.checkpointDir == "" {
		return
	}
	path := filepath.Join(s.checkpointDir, st.id+".ndjson")
	var buf bytes.Buffer
	if err := (allarm.NDJSONEmitter{}).Emit(&buf, results); err != nil {
		s.logf("sweep %s: checkpoint: %v", st.id, err)
		return
	}
	if err := AtomicWrite(path, buf.Bytes()); err != nil {
		s.logf("sweep %s: checkpoint: %v", st.id, err)
		return
	}
	s.logf("sweep %s: partial results checkpointed to %s", st.id, path)
}

// exec runs one job through the two-tier cache, the singleflight group
// and the bounded pool, in that order. It is the Runner.Exec of every
// sweep, so its outcome for a job must equal Job.RunCtx's — it only
// ever returns a result the simulator produced for exactly this key.
func (s *Server) exec(ctx context.Context, job allarm.Job) (*allarm.Result, error) {
	key := job.Key()
	if res, src := s.cache.Get(key); src != tierNone {
		s.countHit(src)
		return res, nil
	}
	fl, leader := s.flights.join(key)
	if !leader {
		s.met.coalesced.Add(1)
		select {
		case <-fl.done:
			return fl.res, fl.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	res, err := s.lead(ctx, key, job)
	s.flights.finish(key, fl, res, err)
	return res, err
}

func (s *Server) countHit(src tier) {
	s.met.cacheHits.Add(1)
	if src == tierDisk {
		s.met.cacheDiskHits.Add(1)
	}
}

// lead executes a flight's simulation as its leader.
func (s *Server) lead(ctx context.Context, key string, job allarm.Job) (*allarm.Result, error) {
	// Re-check the cache: the flight we would have followed may have
	// finished between our cache probe and taking leadership.
	if res, src := s.cache.Get(key); src != tierNone {
		s.countHit(src)
		return res, nil
	}
	// The waiting counter is the preemption signal: while it is
	// non-zero, a checkpointing long job inside the pool yields its slot
	// at the next checkpoint boundary (see runCheckpointed).
	s.waiting.Add(1)
	enqueued := time.Now()
	select {
	case s.sem <- struct{}{}:
		s.waiting.Add(-1)
	case <-ctx.Done():
		s.waiting.Add(-1)
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()
	s.met.queueWait.ObserveSince(enqueued)

	s.met.cacheMisses.Add(1)
	if s.opts.SimThreads > 0 {
		// Execution-time knob only: the key the result is cached under
		// was computed before this (SimThreads is excluded from Job.Key
		// because results are thread-count-invariant).
		job.Config.SimThreads = s.opts.SimThreads
	}
	start := time.Now()
	res, err := s.runJob(ctx, job)
	s.met.jobsRun.Add(1)
	s.met.jobDuration.ObserveSince(start)
	if err != nil {
		switch {
		case !allarm.IsCancellation(err):
			s.met.jobErrors.Add(1)
		case res != nil:
			// Counted here, at the one simulation the flight actually
			// interrupted — coalesced followers sharing the partial
			// result must not inflate the metric.
			s.met.jobsAborted.Add(1)
		}
		// An aborted job's partial result travels with its error so the
		// sweep can checkpoint it — but it is never cached: only
		// complete results are content-addressed.
		return res, err
	}
	s.met.simEvents.Add(res.Events)
	s.met.simWallNs.Add(uint64(time.Since(start).Nanoseconds()))
	if err := s.cache.Add(key, res); err != nil {
		s.logf("result store: %s: %v", key, err)
	}
	return res, nil
}

func (s *Server) lookup(id string) *sweepState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

// registerJobRef records that sweep st's job idx is in flight under
// key, so runner-level events (checkpoint, preempt, resume) reach its
// timeline.
func (s *Server) registerJobRef(key string, st *sweepState, idx int) {
	s.mu.Lock()
	s.jobRefs[key] = append(s.jobRefs[key], jobRef{st, idx})
	s.mu.Unlock()
}

func (s *Server) unregisterJobRef(key string, st *sweepState, idx int) {
	s.mu.Lock()
	refs := s.jobRefs[key]
	for i, ref := range refs {
		if ref.st == st && ref.idx == idx {
			refs = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(refs) == 0 {
		delete(s.jobRefs, key)
	} else {
		s.jobRefs[key] = refs
	}
	s.mu.Unlock()
}

// jobEvent fans a runner-level event out to the timeline of every
// sweep currently running the job — with coalescing, one execution can
// serve several sweeps, and each should see the event.
func (s *Server) jobEvent(key, event, detail string) {
	s.mu.Lock()
	refs := append([]jobRef(nil), s.jobRefs[key]...)
	s.mu.Unlock()
	for _, ref := range refs {
		ref.st.timeline(event, ref.idx, detail)
	}
}

// handleTimeline serves a sweep's lifecycle timeline. Operational
// detail (which shard, when preempted) is admin-scoped under -auth,
// like pprof and membership mutation; open otherwise.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if err := CheckAdmin(r); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	events := st.tl.Snapshot()
	obs.SortEvents(events)
	writeJSON(w, obs.TimelineView{ID: st.id, Events: events})
}

// handleDelete evicts a finished sweep from the job store — its state,
// persisted spec and checkpoint. Running sweeps are not deletable
// (409): cancel-by-delete would complicate drain semantics for little
// gain. The content-addressed result cache is untouched, so deleting a
// sweep never costs a future submission its cache hits.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	st := s.sweeps[id]
	if st == nil {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	if !st.terminal() {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is still running; only finished sweeps can be deleted", id))
		return
	}
	delete(s.sweeps, id)
	for i, oid := range s.order {
		if oid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.removeSweepFiles(id)
	s.met.sweepsDeleted.Add(1)
	s.logf("sweep %s: deleted", id)
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.evictExpired()
	s.mu.Lock()
	states := make([]*sweepState, 0, len(s.order))
	for _, id := range s.order {
		states = append(states, s.sweeps[id])
	}
	s.mu.Unlock()
	views := make([]SweepView, len(states))
	for i, st := range states {
		views[i] = st.view()
	}
	writeJSON(w, views)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, st.view())
}

// handleResults renders a finished sweep through the library emitters,
// negotiated via ?format= (json, ndjson, csv, table) or the Accept
// header. The bytes are identical to what the same emitter produces
// over a local RunSweep of the same jobs.
func (s *Server) handleResults(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	results, status, ok := st.snapshot()
	if !ok {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s; results are available once it is done", st.id, status))
		return
	}
	format, err := NegotiateFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	emitter, ctype := FormatEmitter(format)
	w.Header().Set("Content-Type", ctype)
	if err := emitter.Emit(w, results); err != nil {
		s.logf("sweep %s: emit: %v", st.id, err)
	}
}

// FormatEmitter maps a negotiated format name to its emitter and
// content type. Exported for allarm-router, which renders gathered
// Records through exactly these emitters — the single code path is
// what makes fleet output byte-identical to a single daemon's.
func FormatEmitter(format string) (allarm.RecordEmitter, string) {
	switch format {
	case "csv":
		return allarm.CSVEmitter{}, "text/csv; charset=utf-8"
	case "ndjson":
		return allarm.NDJSONEmitter{}, "application/x-ndjson"
	case "table":
		return &allarm.TableEmitter{}, "text/plain; charset=utf-8"
	default:
		return allarm.JSONEmitter{Indent: true}, "application/json"
	}
}

// NegotiateFormat picks the results rendering: an explicit ?format=
// wins (unknown values are an error, like every other request field),
// then the Accept header, then JSON. Exported for allarm-router, whose
// results endpoint must negotiate exactly like the shards'.
func NegotiateFormat(r *http.Request) (string, error) {
	switch f := r.URL.Query().Get("format"); f {
	case "csv", "ndjson", "table", "json":
		return f, nil
	case "":
	default:
		return "", fmt.Errorf("unknown format %q (want json, ndjson, csv or table)", f)
	}
	accept := r.Header.Get("Accept")
	for _, want := range []struct{ mime, format string }{
		{"text/csv", "csv"},
		{"application/x-ndjson", "ndjson"},
		{"text/plain", "table"},
	} {
		if strings.Contains(accept, want.mime) {
			return want.format, nil
		}
	}
	return "json", nil
}

// handleEvents streams a sweep's progress as Server-Sent Events: one
// "job" event per job start/finish and one "sweep" event per lifecycle
// transition. New subscribers first replay the full history, so a late
// subscriber still sees every transition; the stream ends when the
// sweep is final.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	st := s.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	poke := st.subscribe()
	defer st.unsubscribe(poke)
	sent := 0
	for {
		evs, final := st.eventsSince(sent)
		for _, e := range evs {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, e.Data)
		}
		if len(evs) > 0 {
			sent += len(evs)
			flusher.Flush()
		}
		if final {
			// Drain any events published between eventsSince and here.
			if evs, _ := st.eventsSince(sent); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-poke:
		case <-r.Context().Done():
			return
		case <-st.finished:
		}
	}
}

// TraceResponse is the POST /v1/traces reply. Uploads are
// content-addressed: the id is a hash of the trace bytes, re-uploading
// identical bytes returns the same id, and jobs reference the trace as
// "trace:<id>" in SweepRequest.Workloads.
type TraceResponse struct {
	ID       string `json:"id"`
	Workload string `json:"workload"`
	Threads  int    `json:"threads"`
}

func (s *Server) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading trace: %w", err))
		return
	}
	// The full digest is the id: the address is correctness-bearing (a
	// collision would serve the wrong workload and poison its cache
	// lineage), so it is not truncated.
	sum := sha256.Sum256(data)
	id := "tr-" + hex.EncodeToString(sum[:])

	s.mu.Lock()
	wl, exists := s.traces[id]
	s.mu.Unlock()
	if !exists {
		// The workload is named by the content hash so Job.Key — and
		// therefore the result cache — distinguishes distinct traces
		// and unifies identical ones, whatever they were called locally.
		wl, err = allarm.ReadTraceNamed(bytes.NewReader(data), id)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing trace: %w", err))
			return
		}
		s.mu.Lock()
		if cur, ok := s.traces[id]; ok {
			wl = cur // lost a racing identical upload; keep one instance
		} else {
			s.traces[id] = wl
			s.traceIDs = append(s.traceIDs, id)
			// Bound the store: each entry pins a parsed replay, so the
			// oldest upload is dropped beyond maxTraces (in-flight
			// sweeps hold their own reference and are unaffected).
			for len(s.traceIDs) > maxTraces {
				delete(s.traces, s.traceIDs[0])
				s.traceIDs = s.traceIDs[1:]
			}
		}
		s.mu.Unlock()
		s.met.tracesUploaded.Add(1)
		s.logf("trace %s: %d bytes, %d threads", id, len(data), wl.Threads())
		if s.traceDir != "" {
			// Persist the raw bytes so "trace:ID" specs survive restarts
			// (the id is the content hash, so the file is immutable).
			if err := AtomicWrite(filepath.Join(s.traceDir, id), data); err != nil {
				s.logf("trace %s: persist: %v", id, err)
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, TraceResponse{ID: id, Workload: "trace:" + id, Threads: wl.Threads()})
}

// loadTraceFromDisk re-parses a persisted trace upload and re-installs
// it in the in-memory store. Returns nil when the trace is unknown (or
// no trace directory is configured).
func (s *Server) loadTraceFromDisk(id string) allarm.Workload {
	if s.traceDir == "" {
		return nil
	}
	data, err := os.ReadFile(filepath.Join(s.traceDir, id))
	if err != nil {
		return nil
	}
	wl, err := allarm.ReadTraceNamed(bytes.NewReader(data), id)
	if err != nil {
		s.logf("trace %s: reload: %v", id, err)
		return nil
	}
	s.mu.Lock()
	if cur, ok := s.traces[id]; ok {
		wl = cur
	} else {
		s.traces[id] = wl
		s.traceIDs = append(s.traceIDs, id)
		for len(s.traceIDs) > maxTraces {
			delete(s.traces, s.traceIDs[0])
			s.traceIDs = s.traceIDs[1:]
		}
	}
	s.mu.Unlock()
	return wl
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, allarm.DescribePolicies())
}

func (s *Server) handleBenchmarks(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, allarm.DescribeBenchmarks())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := "ok"
	if draining {
		status = "draining"
	}
	writeJSON(w, map[string]string{"status": status})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// ?format=prometheus (or a text/plain Accept, what scrapers send)
	// selects text exposition; the default stays the flat JSON object,
	// whose existing field names are a compatibility contract.
	if obs.WantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		s.met.reg.WritePrometheus(w)
		return
	}
	s.mu.Lock()
	draining, actives := s.draining, s.actives
	s.mu.Unlock()
	wallNs := s.met.simWallNs.Load()
	events := s.met.simEvents.Load()
	// The headline rate is events over accumulated busy time, so it
	// reflects simulator throughput and holds steady while the daemon
	// idles; the uptime-based rate is exposed alongside for comparison.
	perSec := 0.0
	if wallNs > 0 {
		perSec = float64(events) / (float64(wallNs) / 1e9)
	}
	uptime := time.Since(s.start).Seconds()
	perUptimeSec := 0.0
	if uptime > 0 {
		perUptimeSec = float64(events) / uptime
	}
	m := Metrics{
		UptimeSeconds:         uptime,
		Draining:              draining,
		SweepsSubmitted:       s.met.sweepsSubmitted.Load(),
		SweepsActive:          uint64(actives),
		SweepsCompleted:       s.met.sweepsCompleted.Load(),
		SweepsCheckpointed:    s.met.sweepsCheckpointed.Load(),
		SweepsRecovered:       s.met.sweepsRecovered.Load(),
		SweepsDeleted:         s.met.sweepsDeleted.Load(),
		SweepsExpired:         s.met.sweepsExpired.Load(),
		JobsRun:               s.met.jobsRun.Load(),
		JobsAborted:           s.met.jobsAborted.Load(),
		JobErrors:             s.met.jobErrors.Load(),
		CacheHits:             s.met.cacheHits.Load(),
		CacheDiskHits:         s.met.cacheDiskHits.Load(),
		CacheMisses:           s.met.cacheMisses.Load(),
		InflightCoalesced:     s.met.coalesced.Load(),
		CacheEntries:          s.cache.lru.Len(),
		CacheCapacity:         s.cache.lru.cap,
		TracesUploaded:        s.met.tracesUploaded.Load(),
		SimEventsTotal:        events,
		SimEventsPerSec:       perSec,
		SimBusySeconds:        float64(wallNs) / 1e9,
		SimEventsPerUptimeSec: perUptimeSec,
		CheckpointsWritten:    s.met.checkpointsWritten.Load(),
		CheckpointBytes:       s.met.checkpointBytes.Load(),
		JobsResumed:           s.met.jobsResumed.Load(),
		JobsPreempted:         s.met.jobsPreempted.Load(),
	}
	if s.cache.disk != nil {
		m.DiskEntries = s.cache.disk.Len()
	}
	writeJSON(w, m)
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
