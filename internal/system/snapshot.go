package system

import (
	"fmt"
	"io"
	"sort"

	"allarm/internal/checkpoint"
	"allarm/internal/coherence"
	"allarm/internal/core"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// Machine checkpointing (gem5-style): Snapshot serializes the complete
// architectural and microarchitectural state of a running simulation —
// the event heap, every controller, every cache line, the page tables
// and the workload cursors — such that Restore into a freshly built
// identical machine continues the run bit-identically to one that was
// never interrupted.
//
// Event handlers cannot be serialized as code, so the heap is encoded
// as (time, seq, tag, payload) records where the tag names one of the
// five handler shapes a running machine schedules:
//
//	hCPUStep  — a cpu's "issue next access" record (payload: cpu index)
//	hCPUPend  — a cpu's think-delay pend (payload: cpu index; the pended
//	            address/write bit live in the cpu state)
//	hDelivery — a NoC in-flight message (payload: the message)
//	hSend     — a cache controller's deferred send (payload: node + msg)
//	hDir      — a directory event (payload: node + kind + binding)
//
// Workload cursors are restored by skip-replay: the caller rebuilds each
// thread's stream exactly as the original run did (streams are
// deterministic functions of the job spec), and Restore discards as many
// accesses as the checkpointed cpu had issued. Address-space state is
// restored wholesale afterwards, so replayed translations have no
// side effects to worry about.
//
// Snapshots are only taken at StepCtx window boundaries during the
// measured region (phaseROI): no event is mid-dispatch, warmup
// bookkeeping is gone, and statistics since the reset are part of the
// captured state.

// Handler tags in the encoded heap.
const (
	hCPUStep uint8 = iota + 1
	hCPUPend
	hDelivery
	hSend
	hDir
)

// CanSnapshot reports whether the machine is at a snapshottable point:
// a stepwise run is in its measured region, the invariant checker is
// off (its shadow state is not serializable), and every pending event
// is a registered handler record (no ad-hoc closures).
func (m *Machine) CanSnapshot() bool {
	if m.run == nil || m.run.phase != phaseROI || m.check != nil {
		return false
	}
	ok := true
	m.eachEngine(func(e *sim.Engine) {
		e.ForEachPending(func(at sim.Time, seq uint64, h sim.Handler) {
			if !m.knownHandler(h) {
				ok = false
			}
		})
	})
	return ok
}

func (m *Machine) knownHandler(h sim.Handler) bool {
	switch h.(type) {
	case *cpuStep, *cpu, *delivery:
		return true
	}
	if _, ok := coherence.SendEventOwner(h); ok {
		return true
	}
	if _, ok := core.DirEventOwner(h); ok {
		return true
	}
	return false
}

// Snapshot writes a checkpoint of the running machine to w. The meta
// string travels in the checkpoint header (callers put a job
// fingerprint there and verify it before restoring). The machine is
// not modified; the run continues with another StepCtx.
func (m *Machine) Snapshot(w io.Writer, meta string) error {
	r := m.run
	if r == nil || r.phase != phaseROI {
		return fmt.Errorf("system: snapshot outside the measured region")
	}
	if m.check != nil {
		return fmt.Errorf("system: snapshot with the invariant checker enabled")
	}

	e := checkpoint.NewEncoder(meta)
	e.Section("machine")
	e.Len(m.cfg.Nodes)

	// A sharded machine is checkpointed as if it were serial: at a
	// window barrier every shard clock agrees, so the shard heaps are
	// merged into one canonical heap — ordered by (time, tie-break key,
	// owning tile) — and re-ranked 1..n. The encoded records are then
	// indistinguishable from a serial engine whose sequence counter is
	// n, keeping the checkpoint format identical for every SimThreads
	// and letting a checkpoint written under one thread count resume
	// under any other.
	var merged []mergedEvent
	e.Section("engine")
	if m.shards == nil {
		e.I64(int64(m.eng.Now()))
		e.U64(m.eng.Seq())
		e.U64(m.eng.Fired())
	} else {
		merged = m.mergedHeap()
		e.I64(int64(m.now()))
		e.U64(uint64(len(merged)))
		e.U64(m.Fired())
	}

	e.Section("run")
	e.U64(r.phaseFired)
	e.I64(int64(r.roiStart))

	e.Section("cpus")
	e.Len(len(m.cpus))
	for _, c := range m.cpus {
		e.U64(c.issued)
		e.Bool(c.done)
		e.I64(int64(c.finished))
		e.U64(uint64(c.pendPA))
		e.Bool(c.pendWr)
	}

	m.phys.EncodeState(e)
	e.Len(len(m.spaces))
	for _, s := range m.spaces {
		s.EncodeState(e)
	}
	if m.shards != nil {
		// Same-node messages bypass the mesh on a sharded machine and
		// are counted per shard; fold them into the mesh's statistics
		// so the encoded NoC section matches a serial run's.
		for _, s := range m.shards {
			m.mesh.AbsorbLocalMsgs(s.localMsgs)
			s.localMsgs = 0
		}
	}
	m.mesh.EncodeState(e)

	for _, n := range m.nodes {
		if err := n.cc.EncodeState(e, m.encodeHandler); err != nil {
			return err
		}
		if err := n.dir.EncodeState(e); err != nil {
			return err
		}
		n.dram.EncodeState(e)
	}

	e.Section("heap")
	if m.shards != nil {
		e.Len(len(merged))
		for i := range merged {
			e.I64(int64(merged[i].at))
			e.U64(uint64(i + 1))
			if err := m.encodeHandler(e, merged[i].h); err != nil {
				return err
			}
		}
		return e.Close(w)
	}
	e.Len(m.eng.Pending())
	var heapErr error
	m.eng.ForEachPending(func(at sim.Time, seq uint64, h sim.Handler) {
		if heapErr != nil {
			return
		}
		e.I64(int64(at))
		e.U64(seq)
		heapErr = m.encodeHandler(e, h)
	})
	if heapErr != nil {
		return heapErr
	}
	return e.Close(w)
}

// mergedEvent is one pending event of a sharded machine during heap
// merge: its fire time, tie-break key, and owning tile.
type mergedEvent struct {
	at   sim.Time
	key  uint64
	node mem.NodeID
	h    sim.Handler
}

// mergedHeap flattens every shard heap into canonical serial order.
// Snapshots are only taken at window barriers, where the barrier
// replay has already rewritten every pending key to its dense global
// serial rank — so (at, key) is a total order identical to the serial
// engine's pop order. The owning tile is a defensive residual
// tie-break; it cannot fire on a well-formed heap.
func (m *Machine) mergedHeap() []mergedEvent {
	var items []mergedEvent
	for _, s := range m.shards {
		s.eng.ForEachPending(func(at sim.Time, key uint64, h sim.Handler) {
			n, _ := m.ownerNode(h) // unknown handlers fail in encodeHandler
			items = append(items, mergedEvent{at: at, key: key, node: n, h: h})
		})
	}
	sort.Slice(items, func(i, j int) bool {
		a, b := &items[i], &items[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.key != b.key {
			return a.key < b.key
		}
		return a.node < b.node
	})
	return items
}

// encodeHandler writes one handler record's tag and payload.
func (m *Machine) encodeHandler(e *checkpoint.Encoder, h sim.Handler) error {
	switch v := h.(type) {
	case *cpuStep:
		e.U8(hCPUStep)
		e.U32(uint32(v.c.idx))
		return nil
	case *cpu:
		e.U8(hCPUPend)
		e.U32(uint32(v.idx))
		return nil
	case *delivery:
		e.U8(hDelivery)
		coherence.EncodeMsg(e, v.msg)
		return nil
	}
	if node, ok := coherence.SendEventOwner(h); ok {
		e.U8(hSend)
		e.I64(int64(node))
		m.nodes[node].cc.EncodeSendEvent(e, h)
		return nil
	}
	if node, ok := core.DirEventOwner(h); ok {
		e.U8(hDir)
		e.I64(int64(node))
		m.nodes[node].dir.EncodeEvent(e, h)
		return nil
	}
	if h == nil {
		return fmt.Errorf("system: cannot snapshot a closure event (use typed handlers)")
	}
	return fmt.Errorf("system: cannot snapshot handler type %T", h)
}

// decodeHandler reads one handler record and resolves it against the
// restored machine. Must run after cpus and per-node state are in
// place (directory events bind to the restored transaction tables).
func (m *Machine) decodeHandler(d *checkpoint.Decoder) (sim.Handler, error) {
	tag := d.U8()
	if err := d.Err(); err != nil {
		return nil, err
	}
	switch tag {
	case hCPUStep, hCPUPend:
		idx := int(d.U32())
		if err := d.Err(); err != nil {
			return nil, err
		}
		if idx < 0 || idx >= len(m.cpus) {
			return nil, fmt.Errorf("system: checkpoint references cpu %d of %d", idx, len(m.cpus))
		}
		if tag == hCPUStep {
			return &m.cpus[idx].stepH, nil
		}
		return m.cpus[idx], nil
	case hDelivery:
		msg := coherence.DecodeMsg(d)
		if err := d.Err(); err != nil {
			return nil, err
		}
		if msg == nil {
			return nil, fmt.Errorf("system: in-flight delivery without a message")
		}
		if int(msg.Dst) < 0 || int(msg.Dst) >= len(m.nodes) {
			return nil, fmt.Errorf("system: in-flight message to invalid node %d", msg.Dst)
		}
		if m.shards != nil {
			sh := m.shards[m.shardOf[msg.Dst]]
			dl := sh.deliveries.Get()
			dl.m, dl.sh, dl.msg = m, sh, msg
			return dl, nil
		}
		dl := m.deliveries.Get()
		dl.m, dl.msg = m, msg
		return dl, nil
	case hSend, hDir:
		node := int(d.I64())
		if err := d.Err(); err != nil {
			return nil, err
		}
		if node < 0 || node >= len(m.nodes) {
			return nil, fmt.Errorf("system: checkpoint references node %d of %d", node, len(m.nodes))
		}
		if tag == hSend {
			return m.nodes[node].cc.DecodeSendEvent(d)
		}
		return m.nodes[node].dir.DecodeEvent(d)
	default:
		return nil, fmt.Errorf("system: unknown handler tag %d", tag)
	}
}

// Restore loads a checkpoint into a freshly built machine and resumes
// the run it captured. The machine must have been constructed with the
// same Config the checkpoint was taken under (invariant checker off),
// with the same address spaces created in the same order, and threads
// must carry freshly rebuilt streams identical to the original run's
// (Restore fast-forwards each stream past the accesses its cpu had
// already issued). It returns the checkpoint's meta string; callers
// verify it against the expected job fingerprint and discard the
// machine on mismatch. After a successful Restore, drive the run with
// StepCtx/Finish exactly as if Start had been called.
func (m *Machine) Restore(r io.Reader, threads []ThreadSpec) (string, error) {
	if m.run != nil {
		return "", fmt.Errorf("system: restore into a machine with an active run")
	}
	if m.check != nil {
		return "", fmt.Errorf("system: restore with the invariant checker enabled")
	}
	used := false
	m.eachEngine(func(e *sim.Engine) {
		if e.Pending() != 0 || e.Fired() != 0 {
			used = true
		}
	})
	if used {
		return "", fmt.Errorf("system: restore into a used machine")
	}

	d, err := checkpoint.NewDecoder(r)
	if err != nil {
		return "", err
	}
	meta := d.Meta()

	d.Expect("machine")
	nodes := d.Len(m.cfg.Nodes)
	if err := d.Err(); err != nil {
		return meta, err
	}
	if nodes != m.cfg.Nodes {
		return meta, fmt.Errorf("system: checkpoint has %d nodes, machine has %d", nodes, m.cfg.Nodes)
	}

	d.Expect("engine")
	now := sim.Time(d.I64())
	seq := d.U64()
	fired := d.U64()

	d.Expect("run")
	phaseFired := d.U64()
	roiStart := sim.Time(d.I64())

	d.Expect("cpus")
	ncpus := d.Len(len(threads))
	if err := d.Err(); err != nil {
		return meta, err
	}
	if ncpus != len(threads) {
		return meta, fmt.Errorf("system: checkpoint has %d threads, caller supplied %d", ncpus, len(threads))
	}
	for _, t := range threads {
		if int(t.Node) < 0 || int(t.Node) >= m.cfg.Nodes {
			return meta, fmt.Errorf("system: thread pinned to invalid node %d", t.Node)
		}
		if t.Stream == nil || t.Space == nil {
			return meta, fmt.Errorf("system: thread needs a stream and an address space")
		}
	}
	m.cpus = m.cpus[:0]
	for i, t := range threads {
		c := newCPU(m, i, t)
		c.issued = d.U64()
		c.done = d.Bool()
		c.finished = sim.Time(d.I64())
		c.pendPA = mem.PAddr(d.U64())
		c.pendWr = d.Bool()
		if err := d.Err(); err != nil {
			return meta, err
		}
		// Skip-replay: advance the fresh stream past everything this
		// cpu had already issued. Streams are deterministic, so the
		// cursor lands exactly where the snapshot left it.
		for j := uint64(0); j < c.issued; j++ {
			if _, ok := c.spec.Stream.Next(); !ok {
				return meta, fmt.Errorf("system: thread %d stream exhausted at %d of %d checkpointed accesses (stream mismatch?)", i, j, c.issued)
			}
		}
		m.cpus = append(m.cpus, c)
	}

	if err := m.phys.DecodeState(d); err != nil {
		return meta, err
	}
	nspaces := d.Len(len(m.spaces))
	if err := d.Err(); err != nil {
		return meta, err
	}
	if nspaces != len(m.spaces) {
		return meta, fmt.Errorf("system: checkpoint has %d address spaces, machine has %d", nspaces, len(m.spaces))
	}
	for _, s := range m.spaces {
		if err := s.DecodeState(d); err != nil {
			return meta, err
		}
	}
	if err := m.mesh.DecodeState(d); err != nil {
		return meta, err
	}

	for _, n := range m.nodes {
		if err := n.cc.DecodeState(d, m.decodeHandler); err != nil {
			return meta, err
		}
		if err := n.dir.DecodeState(d); err != nil {
			return meta, err
		}
		if err := n.dram.DecodeState(d); err != nil {
			return meta, err
		}
	}

	// The clock must be set before the heap is refilled (RestorePending
	// rejects events in the past), and the heap after every controller
	// (directory events bind to restored transactions). On a sharded
	// machine every shard clock is set to the checkpointed barrier time;
	// the fired count — global, it feeds the event budget — lives on
	// shard 0, which m.Fired sums with the rest.
	var restoreErr error
	m.eachEngine(func(e *sim.Engine) {
		f := fired
		if m.shards != nil && e != m.shards[0].eng {
			f = 0
		}
		if err := e.RestoreClock(now, seq, f); err != nil && restoreErr == nil {
			restoreErr = err
		}
	})
	if restoreErr != nil {
		return meta, restoreErr
	}
	d.Expect("heap")
	pending := d.Len(maxHeapEvents)
	if err := d.Err(); err != nil {
		return meta, err
	}
	var queued []mergedEvent // sharded machines buffer, sort, then insert
	for i := 0; i < pending; i++ {
		at := sim.Time(d.I64())
		sq := d.U64()
		if err := d.Err(); err != nil {
			return meta, err
		}
		h, err := m.decodeHandler(d)
		if err != nil {
			return meta, err
		}
		if m.shards != nil {
			queued = append(queued, mergedEvent{at: at, key: sq, h: h})
			continue
		}
		if err := m.eng.RestorePending(at, sq, h); err != nil {
			return meta, err
		}
	}
	if m.shards != nil {
		// Re-establish canonical order — checkpoints store the heap in
		// backing-array order — then re-rank 1..n and distribute each
		// event to the shard owning its tile. The ranks sort below every
		// runtime tie-break key, so restored events fire before anything
		// scheduled after the resume at the same instant, exactly as
		// their original sequence numbers would have made them.
		sort.Slice(queued, func(i, j int) bool {
			if queued[i].at != queued[j].at {
				return queued[i].at < queued[j].at
			}
			return queued[i].key < queued[j].key
		})
		for i := range queued {
			n, ok := m.ownerNode(queued[i].h)
			if !ok {
				return meta, fmt.Errorf("system: restored handler %T has no owning tile", queued[i].h)
			}
			eng := m.shards[m.shardOf[n]].eng
			if err := eng.RestorePending(queued[i].at, uint64(i+1), queued[i].h); err != nil {
				return meta, err
			}
		}
	}
	if err := d.Err(); err != nil {
		return meta, err
	}
	if rem := d.Remaining(); rem != 0 {
		return meta, fmt.Errorf("system: %d bytes of unread checkpoint payload", rem)
	}

	m.run = &runState{
		threads:    threads,
		phase:      phaseROI,
		phaseFired: phaseFired,
		roiStart:   roiStart,
	}
	return meta, nil
}

// maxHeapEvents bounds the decoded event count against corrupt
// checkpoints; a live machine's heap holds at most a few events per
// node.
const maxHeapEvents = 1 << 24
