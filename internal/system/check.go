package system

import (
	"fmt"

	"allarm/internal/cache"
	"allarm/internal/mem"
)

// checker validates the protocol invariants the paper's correctness rests
// on. It observes every committed store and completed load through the
// cache-controller hooks and audits global state after the run quiesces:
//
//   - data-value: every load observes the version of the latest committed
//     store to its line (no stale reads);
//   - single-writer/multiple-reader: at most one M/E copy of a line, and
//     never alongside other valid copies (O may coexist with S only);
//   - probe-filter inclusivity: every cached line is tracked by its home,
//     except ALLARM's untracked lines, which must be held by their home
//     node's own core (the thread-local case);
//   - version coherence: the newest version of a line lives either in a
//     dirty cached copy or in DRAM.
type checker struct {
	m       *Machine
	golden  map[mem.PAddr]uint64
	errs    []string
	maxErrs int
}

func newChecker(m *Machine) *checker {
	c := &checker{m: m, golden: make(map[mem.PAddr]uint64), maxErrs: 20}
	for _, n := range m.nodes {
		n := n
		n.cc.OnStore = func(addr mem.PAddr, version uint64) {
			prev := c.golden[addr]
			if version != prev+1 {
				c.fail("node %d store to %#x committed version %d, want %d (lost or duplicated store)",
					n.id, uint64(addr), version, prev+1)
			}
			if version > prev {
				c.golden[addr] = version
			}
		}
		n.cc.OnLoad = func(addr mem.PAddr, version uint64) {
			if want := c.golden[addr]; version != want {
				c.fail("node %d load of %#x observed version %d, want %d (stale read)",
					n.id, uint64(addr), version, want)
			}
		}
	}
	return c
}

func (c *checker) fail(format string, args ...interface{}) {
	if len(c.errs) < c.maxErrs {
		c.errs = append(c.errs, fmt.Sprintf(format, args...))
	}
}

// finalCheck audits the quiesced machine.
func (c *checker) finalCheck() error {
	type copyInfo struct {
		node      mem.NodeID
		state     cache.State
		version   uint64
		untracked bool
	}
	copies := make(map[mem.PAddr][]copyInfo)
	for _, n := range c.m.nodes {
		n := n
		n.hier.ForEachValid(func(l cache.Line) {
			copies[l.Addr] = append(copies[l.Addr], copyInfo{
				node: n.id, state: l.State, version: l.Version, untracked: l.Untracked,
			})
		})
		if !n.dir.Quiesced() {
			c.fail("directory %d still has in-flight transactions after quiesce", n.id)
		}
	}

	for addr, cs := range copies {
		home := c.m.phys.Home(addr)
		dirVer := c.m.nodes[home].dir.DRAMVersion(addr)

		var writable, owners, valid int
		var maxVer uint64
		var dirtyMax uint64
		for _, ci := range cs {
			valid++
			if ci.state.Writable() {
				writable++
			}
			if ci.state.Dirty() || ci.state.Writable() {
				owners++
			}
			if ci.version > maxVer {
				maxVer = ci.version
			}
			if ci.state.Dirty() && ci.version > dirtyMax {
				dirtyMax = ci.version
			}
			if ci.untracked && ci.node != home {
				c.fail("line %#x cached untracked at node %d but homed at %d",
					uint64(addr), ci.node, home)
			}
		}
		if writable > 1 {
			c.fail("line %#x has %d writable copies (SWMR violation)", uint64(addr), writable)
		}
		if writable == 1 && valid > 1 {
			c.fail("line %#x has a writable copy alongside %d other copies", uint64(addr), valid-1)
		}
		if owners > 1 {
			c.fail("line %#x has %d owner-state copies", uint64(addr), owners)
		}

		// The newest committed version must be recoverable: in a dirty
		// copy, or already in DRAM.
		want := c.golden[addr]
		newest := dirVer
		if dirtyMax > newest {
			newest = dirtyMax
		}
		if want != 0 && newest != want {
			c.fail("line %#x newest recoverable version %d, want %d (lost update)",
				uint64(addr), newest, want)
		}
		// Every valid copy must hold the newest version (stale sharers
		// are impossible: invalidations precede new writes).
		for _, ci := range cs {
			if want != 0 && ci.version != want {
				c.fail("line %#x node %d holds stale version %d, want %d",
					uint64(addr), ci.node, ci.version, want)
			}
		}

		// Probe-filter inclusivity.
		entry := c.m.nodes[home].dir.PF().Peek(addr)
		for _, ci := range cs {
			tracked := entry != nil
			if !tracked && !(ci.untracked && ci.node == home) {
				c.fail("line %#x cached at node %d in %v with no probe-filter entry at home %d",
					uint64(addr), ci.node, ci.state, home)
			}
		}
	}

	// Lines written but no longer cached anywhere: DRAM must have the
	// final version.
	for addr, want := range c.golden {
		if _, cached := copies[addr]; cached {
			continue
		}
		home := c.m.phys.Home(addr)
		if got := c.m.nodes[home].dir.DRAMVersion(addr); got != want {
			c.fail("line %#x uncached with DRAM version %d, want %d (lost writeback)",
				uint64(addr), got, want)
		}
	}

	for _, n := range c.m.nodes {
		if s := n.dir.Stats(); s.StaleVersionWrites > 0 {
			c.fail("directory %d saw %d stale-version DRAM writes", n.id, s.StaleVersionWrites)
		}
	}

	if len(c.errs) == 0 {
		return nil
	}
	msg := fmt.Sprintf("system: %d invariant violations; first: %s", len(c.errs), c.errs[0])
	for i := 1; i < len(c.errs) && i < 5; i++ {
		msg += "\n  " + c.errs[i]
	}
	return fmt.Errorf("%s", msg)
}
