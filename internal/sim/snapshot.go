package sim

import "fmt"

// Snapshot accessors.
//
// A machine checkpoint must capture the engine exactly: the clock, the
// FIFO tie-break sequence, the fired-event count (event budgets span a
// resume) and every pending item. The engine itself knows nothing about
// serialization formats — the system layer walks the queue with
// ForEachPending, encodes each handler through its own registry, and
// rebuilds the queue on restore with RestoreClock + RestorePending.
// Items are visited and re-inserted in raw backing-array order: that
// order is deterministic for a deterministic run, and because restored
// items keep their original (at, seq) keys, pop order — the only order
// that affects simulation results — is bit-identical even though the
// heap's internal layout may differ.

// ForEachPending visits every queued item in backing-array order.
// Closure events (fire != nil) are reported with a nil Handler; a
// snapshotting caller treats those as unserializable and refuses.
func (e *Engine) ForEachPending(fn func(at Time, seq uint64, h Handler)) {
	for i := range e.queue {
		it := &e.queue[i]
		if it.fire != nil {
			fn(it.at, it.seq, nil)
		} else {
			fn(it.at, it.seq, it.h)
		}
	}
}

// Seq returns the last assigned tie-break sequence number.
func (e *Engine) Seq() uint64 { return e.seq }

// RestoreClock resets the engine to a checkpointed clock: current time,
// tie-break sequence and fired count. The queue must be empty — restore
// rebuilds it from scratch with RestorePending.
func (e *Engine) RestoreClock(now Time, seq, fired uint64) error {
	if len(e.queue) != 0 {
		return fmt.Errorf("sim: RestoreClock with %d events pending", len(e.queue))
	}
	e.now = now
	e.seq = seq
	e.fired = fired
	e.stopped = false
	e.keyInstant = -1 // keyed engines restart their per-instant rank
	e.keyCount = 0
	return nil
}

// RestorePending re-inserts a checkpointed item with its original
// timestamp and tie-break sequence. The engine's own sequence counter
// is not advanced — call RestoreClock first with the checkpointed
// counter, which is >= every restored item's seq.
func (e *Engine) RestorePending(at Time, seq uint64, h Handler) error {
	if at < e.now {
		return fmt.Errorf("sim: restored event at %v before now %v", at, e.now)
	}
	if seq > e.seq {
		return fmt.Errorf("sim: restored event seq %d beyond clock seq %d", seq, e.seq)
	}
	if h == nil {
		return fmt.Errorf("sim: restored event with nil handler")
	}
	e.push(item{at: at, seq: seq, h: h})
	return nil
}
