package sim

import (
	"context"
	"errors"
	"testing"
)

// selfScheduler keeps one event in the queue forever, modelling a
// simulation that never runs dry on its own.
type selfScheduler struct {
	e     *Engine
	fired int
}

func (s *selfScheduler) Handle(now Time) {
	s.fired++
	s.e.Schedule(now+1, s)
}

// TestRunCtxBackgroundMatchesRun: a non-cancellable context takes the
// plain Run path — same events, same Now, nil error.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	var a, b Engine
	for i := 0; i < 100; i++ {
		at := Time(i)
		a.At(at, func(Time) {})
		b.At(at, func(Time) {})
	}
	na := a.Run(0)
	nb, err := b.RunCtx(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if na != nb || a.Now() != b.Now() {
		t.Fatalf("RunCtx(Background) fired %d events to t=%v, Run fired %d to t=%v", nb, b.Now(), na, a.Now())
	}
}

// TestRunCtxCancelWithinBudget: cancelling mid-run stops the loop after
// at most CancelCheckBudget further events, with the error reporting
// the cause and the queue keeping its unfired events.
func TestRunCtxCancelWithinBudget(t *testing.T) {
	var e Engine
	s := &selfScheduler{e: &e}
	e.Schedule(1, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // cancelled before the first budget boundary
	fired, err := e.RunCtx(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fired > CancelCheckBudget {
		t.Fatalf("fired %d events after cancellation, budget is %d", fired, CancelCheckBudget)
	}
	if e.Pending() == 0 {
		t.Fatal("cancellation drained the queue; unfired events must stay queued")
	}
}

// TestRunCtxCancelFromEvent: a cancellation raised by a running event
// (the realistic drain case: another goroutine cancels) is observed at
// the next budget boundary.
func TestRunCtxCancelFromEvent(t *testing.T) {
	var e Engine
	s := &selfScheduler{e: &e}
	e.Schedule(1, s)
	ctx, cancel := context.WithCancel(context.Background())
	stop := CancelCheckBudget / 2
	e.At(Time(stop), func(Time) { cancel() })
	fired, err := e.RunCtx(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if bound := uint64(stop) + CancelCheckBudget + 1; fired > bound {
		t.Fatalf("fired %d events, want <= %d (cancel point + one budget)", fired, bound)
	}
	if s.fired == 0 {
		t.Fatal("no events fired before cancellation")
	}
}

// TestRunCtxResumeAfterCancel: the engine stays consistent after a
// cancelled run — re-running with a fresh context finishes the queue.
func TestRunCtxResumeAfterCancel(t *testing.T) {
	var e Engine
	const total = 10 * CancelCheckBudget
	var fired int
	for i := 1; i <= total; i++ {
		e.At(Time(i), func(Time) { fired++ })
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.RunCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if _, err := e.RunCtx(context.Background(), 0); err != nil {
		t.Fatal(err)
	}
	if fired != total || e.Pending() != 0 {
		t.Fatalf("fired %d of %d events, %d pending", fired, total, e.Pending())
	}
	if e.Now() != total {
		t.Fatalf("Now = %v, want %d", e.Now(), total)
	}
}

// TestRunUntilCtxCancel: RunUntilCtx honours cancellation and does not
// jump Now to the deadline on an aborted run.
func TestRunUntilCtxCancel(t *testing.T) {
	var e Engine
	s := &selfScheduler{e: &e}
	e.Schedule(1, s)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	const deadline = Time(1 << 40)
	fired, err := e.RunUntilCtx(ctx, deadline)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if fired > CancelCheckBudget {
		t.Fatalf("fired %d events after cancellation, budget is %d", fired, CancelCheckBudget)
	}
	if e.Now() >= deadline {
		t.Fatalf("Now = %v jumped to the deadline on a cancelled run", e.Now())
	}
	// And with a background context it behaves exactly like RunUntil.
	var f Engine
	f.At(5, func(Time) {})
	if _, err := f.RunUntilCtx(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	if f.Now() != 100 {
		t.Fatalf("Now = %v, want deadline 100", f.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	var e Engine
	var order []int
	e.At(30, func(Time) { order = append(order, 3) })
	e.At(10, func(Time) { order = append(order, 1) })
	e.At(20, func(Time) { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	var e Engine
	e.At(100, func(Time) {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past event")
		}
	}()
	e.At(50, func(Time) {})
}

func TestNilEventPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil event")
		}
	}()
	e.At(1, nil)
}

func TestAfterIsRelative(t *testing.T) {
	var e Engine
	var at Time
	e.At(100, func(now Time) {
		e.After(50, func(now Time) { at = now })
	})
	e.Run(0)
	if at != 150 {
		t.Fatalf("After fired at %v, want 150", at)
	}
}

func TestRunLimit(t *testing.T) {
	var e Engine
	for i := 0; i < 10; i++ {
		e.At(Time(i), func(Time) {})
	}
	if fired := e.Run(4); fired != 4 {
		t.Fatalf("fired %d, want 4", fired)
	}
	if e.Pending() != 6 {
		t.Fatalf("pending %d, want 6", e.Pending())
	}
}

func TestStop(t *testing.T) {
	var e Engine
	ran := 0
	e.At(1, func(Time) { ran++; e.Stop() })
	e.At(2, func(Time) { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Fatalf("ran %d events, want 1", ran)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending %d", e.Pending())
	}
}

func TestRunUntil(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{5, 15, 25} {
		at := at
		e.At(at, func(Time) { fired = append(fired, at) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want deadline", e.Now())
	}
	e.Run(0)
	if len(fired) != 3 {
		t.Fatalf("remaining event lost: %v", fired)
	}
}

func TestDrain(t *testing.T) {
	var e Engine
	e.At(1, func(Time) { t.Fatal("drained event fired") })
	e.Drain()
	if e.Run(0) != 0 {
		t.Fatal("events after drain")
	}
}

func TestEventsScheduleEvents(t *testing.T) {
	var e Engine
	depth := 0
	var recurse Event
	recurse = func(now Time) {
		if depth < 100 {
			depth++
			e.After(1, recurse)
		}
	}
	e.At(0, recurse)
	e.Run(0)
	if depth != 100 {
		t.Fatalf("depth = %d", depth)
	}
	if e.Now() != 100 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTicker(t *testing.T) {
	var e Engine
	ticks := 0
	var tk *Ticker
	tk = e.Tick(10, func(now Time) {
		ticks++
		if ticks == 5 {
			tk.Cancel()
		}
	})
	e.Run(0)
	if ticks != 5 {
		t.Fatalf("ticks = %d", ticks)
	}
	if e.Now() != 50 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTickNonPositivePanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Tick(0, func(Time) {})
}

func TestTimeString(t *testing.T) {
	if s := (1500 * Picosecond).String(); s != "1.5ns" {
		t.Fatalf("String = %q", s)
	}
}

func TestFiredCounter(t *testing.T) {
	var e Engine
	for i := 0; i < 7; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run(0)
	if e.Fired() != 7 {
		t.Fatalf("Fired = %d", e.Fired())
	}
}

func TestHandlerScheduling(t *testing.T) {
	var e Engine
	var got []Time
	h := handlerFunc(func(now Time) { got = append(got, now) })
	e.Schedule(10, h)
	e.Schedule(30, h)
	e.At(20, func(now Time) { got = append(got, now) })
	e.Run(0)
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("fire times = %v", got)
	}
}

// handlerFunc adapts a func to Handler for tests.
type handlerFunc func(now Time)

func (f handlerFunc) Handle(now Time) { f(now) }

func TestHandlerFIFOTieBreakWithEvents(t *testing.T) {
	// Handlers and closures share one sequence counter, so same-time
	// events fire in scheduling order regardless of form.
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if i%2 == 0 {
			e.Schedule(100, handlerFunc(func(Time) { order = append(order, i) }))
		} else {
			e.At(100, func(Time) { order = append(order, i) })
		}
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestNilHandlerPanics(t *testing.T) {
	var e Engine
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for nil handler")
		}
	}()
	e.Schedule(1, nil)
}

func TestScheduleHandlerInPastPanics(t *testing.T) {
	var e Engine
	e.At(100, func(Time) {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for past handler")
		}
	}()
	e.Schedule(50, handlerFunc(func(Time) {}))
}

func TestDrainThenReuse(t *testing.T) {
	var e Engine
	e.At(10, func(Time) { t.Fatal("drained event fired") })
	e.At(20, func(Time) { t.Fatal("drained event fired") })
	e.Drain()
	if e.Pending() != 0 {
		t.Fatalf("pending after drain = %d", e.Pending())
	}
	// The engine must be fully usable after Drain: same clock, fresh
	// events fire normally.
	var fired []Time
	e.At(15, func(now Time) { fired = append(fired, now) })
	e.At(5, func(now Time) { fired = append(fired, now) })
	if n := e.Run(0); n != 2 {
		t.Fatalf("fired %d events after reuse, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 15 {
		t.Fatalf("fire order after reuse: %v", fired)
	}
	if e.Now() != 15 {
		t.Fatalf("Now = %v", e.Now())
	}
}

func TestTickerCancelInsideOwnTick(t *testing.T) {
	var e Engine
	ticks := 0
	var tk *Ticker
	tk = e.Tick(10, func(now Time) {
		ticks++
		tk.Cancel()
		tk.Cancel() // double-cancel inside the tick is allowed
	})
	e.Run(0)
	if ticks != 1 {
		t.Fatalf("ticks = %d, want 1", ticks)
	}
	if e.Now() != 10 {
		t.Fatalf("Now = %v, want 10 (no further tick scheduled)", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("cancelled ticker left %d pending events", e.Pending())
	}
}

func TestRunUntilEventExactlyAtDeadline(t *testing.T) {
	var e Engine
	var fired []Time
	for _, at := range []Time{10, 20, 21} {
		at := at
		e.At(at, func(Time) { fired = append(fired, at) })
	}
	if n := e.RunUntil(20); n != 2 {
		t.Fatalf("fired %d events, want 2 (deadline is inclusive)", n)
	}
	if len(fired) != 2 || fired[1] != 20 {
		t.Fatalf("fired %v, want the t=20 event included", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("Now = %v, want 20", e.Now())
	}
}

func TestRunLimitResume(t *testing.T) {
	var e Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(Time(10*(i+1)), func(Time) { order = append(order, i) })
	}
	if fired := e.Run(3); fired != 3 {
		t.Fatalf("first Run fired %d, want 3", fired)
	}
	if e.Now() != 30 {
		t.Fatalf("Now after limited run = %v, want 30", e.Now())
	}
	if fired := e.Run(0); fired != 7 {
		t.Fatalf("resumed Run fired %d, want 7", fired)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("resume reordered events: %v", order)
		}
	}
	if e.Fired() != 10 {
		t.Fatalf("Fired = %d, want 10 across both calls", e.Fired())
	}
}

// TestQueueReleasesReferencesAfterRun is the regression test for the old
// eventHeap.Pop, which left each popped item's closure reachable in the
// backing array: after a run drains, no slot of the queue's capacity may
// still reference a callback.
func TestQueueReleasesReferencesAfterRun(t *testing.T) {
	var e Engine
	for i := 0; i < 100; i++ {
		payload := make([]byte, 1<<10)
		e.At(Time(i), func(Time) { _ = payload })
		if i%3 == 0 {
			e.Schedule(Time(i), handlerFunc(func(Time) {}))
		}
	}
	e.Run(0)
	full := e.queue[:cap(e.queue)]
	for i := range full {
		if full[i].fire != nil || full[i].h != nil {
			t.Fatalf("queue slot %d still references a callback after drain", i)
		}
	}
}

// TestRunLimitReleasesPoppedSlots checks the same property mid-run:
// events popped by a limited Run must not linger beyond the live queue.
func TestRunLimitReleasesPoppedSlots(t *testing.T) {
	var e Engine
	for i := 0; i < 50; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Run(20)
	live := len(e.queue)
	full := e.queue[:cap(e.queue)]
	for i := live; i < len(full); i++ {
		if full[i].fire != nil || full[i].h != nil {
			t.Fatalf("vacated slot %d still references a callback (live=%d)", i, live)
		}
	}
}

func TestDrainReleasesReferences(t *testing.T) {
	var e Engine
	for i := 0; i < 50; i++ {
		e.At(Time(i), func(Time) {})
	}
	e.Drain()
	full := e.queue[:cap(e.queue)]
	for i := range full {
		if full[i].fire != nil || full[i].h != nil {
			t.Fatalf("queue slot %d still references a callback after Drain", i)
		}
	}
}

// churnHandler reschedules itself until its budget runs out, modelling a
// steady-state component (CPU issue loop, controller pipeline).
type churnHandler struct {
	e         *Engine
	remaining int
}

func (c *churnHandler) Handle(now Time) {
	if c.remaining > 0 {
		c.remaining--
		c.e.Schedule(now+1, c)
	}
}

// BenchmarkEngineChurn measures the scheduler's steady-state cost:
// preallocated handlers churning through a populated queue. With the
// monomorphic heap this runs allocation-free once the queue's backing
// array has grown.
func BenchmarkEngineChurn(b *testing.B) {
	const width = 1024
	var e Engine
	handlers := make([]churnHandler, width)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range handlers {
			handlers[j] = churnHandler{e: &e, remaining: 64}
			e.Schedule(e.Now()+Time(j), &handlers[j])
		}
		e.Run(0)
	}
}

// BenchmarkEngineChurnCancellable is BenchmarkEngineChurn through
// RunCtx with a genuinely cancellable context: the budgeted
// cancellation poll must add no per-event allocations (and no
// measurable per-event time) over the plain Run loop.
func BenchmarkEngineChurnCancellable(b *testing.B) {
	const width = 1024
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var e Engine
	handlers := make([]churnHandler, width)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range handlers {
			handlers[j] = churnHandler{e: &e, remaining: 64}
			e.Schedule(e.Now()+Time(j), &handlers[j])
		}
		if _, err := e.RunCtx(ctx, 0); err != nil {
			b.Fatal(err)
		}
	}
}
