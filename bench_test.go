package allarm_test

// One benchmark per table and figure of the paper. Each bench runs the
// corresponding experiment at a reduced access budget (so `go test
// -bench=.` completes in minutes) and reports the headline series through
// b.ReportMetric; cmd/allarm-bench regenerates the full-size tables.
//
// Benchmarks deliberately measure simulated-system metrics, not Go
// wall-clock alone: the unit of work is "one full experiment".

import (
	"io"
	"testing"

	allarm "allarm"
)

// benchConfig returns the experiment configuration at bench scale.
func benchConfig() allarm.Config {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 20_000
	return cfg
}

func BenchmarkTable1SystemConfig(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if err := allarm.RunExperiment(io.Discard, cfg, "table1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2LocalRemoteRatio(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		var locals []float64
		for _, name := range allarm.Benchmarks() {
			res, err := allarm.RunBenchmark(cfg, name)
			if err != nil {
				b.Fatal(err)
			}
			locals = append(locals, res.LocalFraction())
		}
		b.ReportMetric(mean(locals), "localFrac")
	}
}

// pairMetric runs every benchmark pair and reports one Comparison field.
func pairMetric(b *testing.B, metric string) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		pairs, err := allarm.RunAllPairs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var vals []float64
		for _, p := range pairs {
			c := allarm.Compare(p.Base, p.Opt)
			switch metric {
			case "speedup":
				vals = append(vals, c.Speedup)
			case "evictions":
				if c.EvictionRatio > 0 {
					vals = append(vals, c.EvictionRatio)
				}
			case "traffic":
				vals = append(vals, c.TrafficRatio)
			case "l2miss":
				vals = append(vals, c.L2MissRatio)
			case "nocEnergy":
				vals = append(vals, c.NoCEnergyRatio)
			case "pfEnergy":
				vals = append(vals, c.PFEnergyRatio)
			}
		}
		b.ReportMetric(allarm.Geomean(vals), metric+"Geomean")
	}
}

func BenchmarkFig3aSpeedup(b *testing.B)   { pairMetric(b, "speedup") }
func BenchmarkFig3bEvictions(b *testing.B) { pairMetric(b, "evictions") }
func BenchmarkFig3cTraffic(b *testing.B)   { pairMetric(b, "traffic") }

func BenchmarkFig3dMessagesPerEviction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		pairs, err := allarm.RunAllPairs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var msgs []float64
		for _, p := range pairs {
			if m := p.Base.MessagesPerEviction(); m > 0 {
				msgs = append(msgs, m)
			}
		}
		b.ReportMetric(mean(msgs), "msgsPerEviction")
	}
}

func BenchmarkFig3eL2Misses(b *testing.B) { pairMetric(b, "l2miss") }

func BenchmarkFig3fDynamicEnergy(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		pairs, err := allarm.RunAllPairs(cfg)
		if err != nil {
			b.Fatal(err)
		}
		var noc, pf []float64
		for _, p := range pairs {
			c := allarm.Compare(p.Base, p.Opt)
			noc = append(noc, c.NoCEnergyRatio)
			pf = append(pf, c.PFEnergyRatio)
		}
		b.ReportMetric(allarm.Geomean(noc), "nocEnergyGeomean")
		b.ReportMetric(allarm.Geomean(pf), "pfEnergyGeomean")
	}
}

func BenchmarkFig3gSnoopHiding(b *testing.B) {
	cfg := benchConfig()
	cfg.Policy = allarm.ALLARM
	for i := 0; i < b.N; i++ {
		var fracs []float64
		for _, name := range allarm.Benchmarks() {
			res, err := allarm.RunBenchmark(cfg, name)
			if err != nil {
				b.Fatal(err)
			}
			fracs = append(fracs, res.SnoopHiddenFraction())
		}
		b.ReportMetric(mean(fracs), "hiddenFrac")
	}
}

func BenchmarkFig3hPFSizeSweep(b *testing.B) {
	cfg := benchConfig()
	// Sweep the suite's most PF-sensitive benchmark (blackscholes, per
	// the paper) across the three Figure 3h sizes.
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Policy = allarm.Baseline
		ref, err := allarm.RunBenchmark(c, "blackscholes")
		if err != nil {
			b.Fatal(err)
		}
		for _, div := range []int{1, 2, 4} {
			c := cfg
			c.Policy = allarm.ALLARM
			c.PFBytes = cfg.PFBytes / div
			res, err := allarm.RunBenchmark(c, "blackscholes")
			if err != nil {
				b.Fatal(err)
			}
			if div == 4 {
				b.ReportMetric(ref.RuntimeNs/res.RuntimeNs, "speedupAtQuarterPF")
			}
		}
	}
}

// fig4Bench sweeps PF sizes for the multi-process experiment and reports
// the chosen metric at the smallest size.
func fig4Bench(b *testing.B, policy allarm.Policy, metric string) {
	cfg := benchConfig()
	mp := allarm.DefaultMultiProcess()
	for i := 0; i < b.N; i++ {
		c := cfg
		c.Policy = allarm.Baseline
		ref, err := allarm.RunMultiProcess(c, mp, "ocean-cont")
		if err != nil {
			b.Fatal(err)
		}
		var last float64
		for _, div := range []int{1, 4, 16} {
			c := cfg
			c.Policy = policy
			c.PFBytes = cfg.PFBytes / div
			res, err := allarm.RunMultiProcess(c, mp, "ocean-cont")
			if err != nil {
				b.Fatal(err)
			}
			switch metric {
			case "speedup":
				last = ref.RuntimeNs / res.RuntimeNs
			case "evictions":
				last = ratio(res.PFEvictions, ref.PFEvictions)
			case "traffic":
				last = ratio(res.NoCBytes, ref.NoCBytes)
			}
		}
		b.ReportMetric(last, metric+"AtSmallestPF")
	}
}

func BenchmarkFig4aMultiProcessBaselineSpeedup(b *testing.B) {
	fig4Bench(b, allarm.Baseline, "speedup")
}
func BenchmarkFig4bMultiProcessBaselineEvictions(b *testing.B) {
	fig4Bench(b, allarm.Baseline, "evictions")
}
func BenchmarkFig4cMultiProcessBaselineTraffic(b *testing.B) {
	fig4Bench(b, allarm.Baseline, "traffic")
}
func BenchmarkFig4dMultiProcessALLARMSpeedup(b *testing.B) {
	fig4Bench(b, allarm.ALLARM, "speedup")
}
func BenchmarkFig4eMultiProcessALLARMEvictions(b *testing.B) {
	fig4Bench(b, allarm.ALLARM, "evictions")
}
func BenchmarkFig4fMultiProcessALLARMTraffic(b *testing.B) {
	fig4Bench(b, allarm.ALLARM, "traffic")
}

func BenchmarkAreaTablePFArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := allarm.RunExperiment(io.Discard, benchConfig(), "area"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationSerialLocalProbe quantifies §II-D's design choice by
// comparing ALLARM as built (parallel local probe) against the snoop-
// hiding fraction: a serial probe would add the probe's full latency to
// every hidden case.
func BenchmarkAblationSerialLocalProbe(b *testing.B) {
	cfg := benchConfig()
	cfg.Policy = allarm.ALLARM
	for i := 0; i < b.N; i++ {
		res, err := allarm.RunBenchmark(cfg, "ocean-cont")
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.SnoopHiddenFraction(), "latencyHiddenByParallelProbe")
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func ratio(a, b uint64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
