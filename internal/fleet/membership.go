package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"allarm/internal/server"
)

// membership is one immutable snapshot of the fleet: the shard objects
// and the hash ring built over their names. The router swaps whole
// snapshots atomically (Router.mem), so a placement computed against
// one snapshot is internally consistent — the ring's indices always
// point into the same shards slice — while mutations build the next
// snapshot on the side. Shard objects are reused across snapshots by
// name, so health state, version and counters survive membership
// changes (and a re-added shard keeps its history).
type membership struct {
	shards []*shard
	ring   *ring
}

// alive is the ring's placement predicate for this snapshot.
func (m *membership) alive(i int) bool { return m.shards[i].isHealthy() }

// byName returns the shard with the given (normalized) name, or nil.
func (m *membership) byName(name string) *shard {
	for _, sh := range m.shards {
		if sh.name == name {
			return sh
		}
	}
	return nil
}

// names lists the snapshot's shard names in order.
func (m *membership) names() []string {
	out := make([]string, len(m.shards))
	for i, sh := range m.shards {
		out[i] = sh.name
	}
	return out
}

// buildMembership validates a shard URL set and builds a snapshot,
// reusing matching shard objects from the previous snapshot.
func (rt *Router) buildMembership(urls []string, old *membership) (*membership, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("fleet: at least one shard is required")
	}
	seen := make(map[string]bool, len(urls))
	shards := make([]*shard, 0, len(urls))
	names := make([]string, 0, len(urls))
	for _, raw := range urls {
		name := strings.TrimRight(strings.TrimSpace(raw), "/")
		if name == "" {
			return nil, fmt.Errorf("fleet: empty shard URL")
		}
		if seen[name] {
			return nil, fmt.Errorf("fleet: duplicate shard %s", name)
		}
		seen[name] = true
		var sh *shard
		if old != nil {
			sh = old.byName(name)
		}
		if sh == nil {
			sh = newShard(name, rt.opts.ShardToken, rt.transport)
		}
		shards = append(shards, sh)
		names = append(names, name)
	}
	return &membership{shards: shards, ring: newRing(names, rt.opts.Replicas)}, nil
}

// SetShards replaces the fleet's shard set at runtime (SIGHUP reload,
// or the /v1/shards API underneath). The new ring takes effect for all
// subsequent placements; in-flight gathers keep their shard objects and
// finish (or fail and requeue) against them. Skipped jobs whose ring
// owner changed are re-dispatched onto their new owners.
func (rt *Router) SetShards(urls []string) error {
	return rt.mutateMembership(func(cur *membership) ([]string, error) {
		return urls, nil
	})
}

// AddShard admits one shard into the ring.
func (rt *Router) AddShard(url string) error {
	return rt.mutateMembership(func(cur *membership) ([]string, error) {
		name := strings.TrimRight(strings.TrimSpace(url), "/")
		if name == "" {
			return nil, fmt.Errorf("fleet: empty shard URL")
		}
		if cur.byName(name) != nil {
			return nil, fmt.Errorf("fleet: shard %s is already a member", name)
		}
		return append(cur.names(), name), nil
	})
}

// RemoveShard retires one shard from the ring. Its in-flight work is
// not interrupted — gathers against it finish or fail on their own —
// but no new placement will choose it, and skipped jobs it owned move
// to their new ring owners.
func (rt *Router) RemoveShard(url string) error {
	return rt.mutateMembership(func(cur *membership) ([]string, error) {
		name := strings.TrimRight(strings.TrimSpace(url), "/")
		if cur.byName(name) == nil {
			return nil, fmt.Errorf("fleet: shard %s is not a member", name)
		}
		var next []string
		for _, n := range cur.names() {
			if n != name {
				next = append(next, n)
			}
		}
		if len(next) == 0 {
			return nil, fmt.Errorf("fleet: cannot remove the last shard")
		}
		return next, nil
	})
}

// mutateMembership serializes membership changes: compute the next URL
// set from the current snapshot, build + validate it, swap it in,
// journal it, then requeue any skipped jobs the new ring re-homes.
func (rt *Router) mutateMembership(next func(cur *membership) ([]string, error)) error {
	rt.memMu.Lock()
	cur := rt.mem.Load()
	urls, err := next(cur)
	if err != nil {
		rt.memMu.Unlock()
		return err
	}
	mem, err := rt.buildMembership(urls, cur)
	if err != nil {
		rt.memMu.Unlock()
		return err
	}
	rt.mem.Store(mem)
	rt.journal.writeMembership(mem.names())
	rt.met.membershipChanges.Add(1)
	rt.memMu.Unlock()
	rt.logf("membership: %d shard(s): %s", len(mem.shards), strings.Join(mem.names(), ", "))
	// In-flight jobs on departed shards migrate (with their machine-state
	// checkpoints) before the skipped-job requeue runs: migration keeps
	// their progress, requeue only re-places work that already failed.
	rt.migrateInFlight(cur, mem)
	rt.requeueSkipped("membership change")
	return nil
}

// ShardInfo is one row of GET /v1/shards.
type ShardInfo struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

func (rt *Router) handleShardsList(w http.ResponseWriter, r *http.Request) {
	mem := rt.mem.Load()
	out := make([]ShardInfo, len(mem.shards))
	for i, sh := range mem.shards {
		out[i] = ShardInfo{URL: sh.name, Healthy: sh.isHealthy()}
	}
	writeJSON(w, out)
}

// shardMutation decodes the POST/DELETE /v1/shards payload: a JSON body
// {"url": ...}, or a ?url= query parameter (curl-friendly DELETE).
func shardMutation(r *http.Request) (string, error) {
	if u := r.URL.Query().Get("url"); u != "" {
		return u, nil
	}
	var body struct {
		URL string `json:"url"`
	}
	err := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<16)).Decode(&body)
	if err != nil || body.URL == "" {
		return "", fmt.Errorf("expected {\"url\": \"http://shard:port\"} or ?url=")
	}
	return body.URL, nil
}

func (rt *Router) handleShardAdd(w http.ResponseWriter, r *http.Request) {
	if err := server.CheckAdmin(r); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	url, err := shardMutation(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := rt.AddShard(url); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]any{"shards": rt.mem.Load().names()})
}

func (rt *Router) handleShardRemove(w http.ResponseWriter, r *http.Request) {
	if err := server.CheckAdmin(r); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	url, err := shardMutation(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := rt.RemoveShard(url); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, map[string]any{"shards": rt.mem.Load().names()})
}

// requeueSkipped sweeps every known sweep for skipped jobs whose
// current ring owner is a healthy shard other than the one that failed
// them, and re-dispatches exactly those. Called after membership
// changes and after health transitions — the two moments the ring's
// answer for a key can change.
func (rt *Router) requeueSkipped(reason string) {
	if rt.ctx.Err() != nil {
		return
	}
	rt.mu.Lock()
	sts := make([]*fleetSweep, 0, len(rt.sweeps))
	for _, st := range rt.sweeps {
		sts = append(sts, st)
	}
	rt.mu.Unlock()
	for _, st := range sts {
		rt.requeueSweep(st, reason)
	}
}

// requeueSweep re-places one sweep's skipped jobs on the current ring.
func (rt *Router) requeueSweep(st *fleetSweep, reason string) {
	mem := rt.mem.Load()
	moved := st.claimSkipped(func(i int) (string, bool) {
		si := mem.ring.lookup(st.expanded[i].Key(), mem.alive)
		if si < 0 {
			return "", false
		}
		return mem.shards[si].name, true
	})
	if len(moved) == 0 {
		return
	}
	groups := make(map[*shard][]int, len(moved))
	n := 0
	for name, idxs := range moved {
		groups[mem.byName(name)] = idxs
		n += len(idxs)
	}
	rt.met.jobsRequeued.Add(uint64(n))
	st.timeline("requeued", -1, "", fmt.Sprintf("%d skipped job(s) after %s", n, reason))
	rt.journalSweep(st)
	rt.logf("sweep %s: requeued %d skipped job(s) after %s", st.id, n, reason)
	rt.active.Add(1)
	go rt.dispatch(st, groups)
}
