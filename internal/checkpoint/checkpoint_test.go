package checkpoint

import (
	"bytes"
	"encoding/hex"
	"strings"
	"testing"
)

// TestRoundTrip exercises every primitive through a full encode/decode
// cycle.
func TestRoundTrip(t *testing.T) {
	e := NewEncoder("job:abc123")
	e.Section("alpha")
	e.U8(0xAB)
	e.Bool(true)
	e.Bool(false)
	e.U32(0xDEADBEEF)
	e.U64(1<<63 + 12345)
	e.I64(-987654321)
	e.F64(3.14159)
	e.Bytes([]byte{1, 2, 3})
	e.String("hello")
	e.Len(42)
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.Meta() != "job:abc123" {
		t.Fatalf("meta = %q", d.Meta())
	}
	d.Expect("alpha")
	if got := d.U8(); got != 0xAB {
		t.Fatalf("U8 = %#x", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatalf("Bool round-trip failed")
	}
	if got := d.U32(); got != 0xDEADBEEF {
		t.Fatalf("U32 = %#x", got)
	}
	if got := d.U64(); got != 1<<63+12345 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -987654321 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.F64(); got != 3.14159 {
		t.Fatalf("F64 = %v", got)
	}
	if got := d.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if got := d.String(); got != "hello" {
		t.Fatalf("String = %q", got)
	}
	if got := d.Len(100); got != 42 {
		t.Fatalf("Len = %d", got)
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if d.Remaining() != 0 {
		t.Fatalf("Remaining = %d", d.Remaining())
	}
}

// TestGoldenFormat pins the exact byte layout of format version 1: a
// checkpoint written by any future version of the code must still decode
// blobs with this layout, and any unintentional layout change fails
// here first.
func TestGoldenFormat(t *testing.T) {
	e := NewEncoder("m")
	e.Section("s")
	e.U8(0x7F)
	e.U64(0x0102030405060708)
	e.Bool(true)
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}

	const golden = "" +
		"414c434b" + // magic "ALCK"
		"0100" + // format version 1, little-endian u16
		"0100000000000000" + "6d" + // meta length 1 (u64 LE), "m"
		"1300000000000000" + // payload length 19
		"0100000000000000" + "73" + // Section: string len 1 (u64 LE), "s"
		"7f" + // U8
		"0807060504030201" + // U64 little-endian
		"01" // Bool true
	want, err := hex.DecodeString(golden)
	if err != nil {
		t.Fatalf("bad golden literal: %v", err)
	}
	got := buf.Bytes()
	if len(got) != len(want)+4 {
		t.Fatalf("blob length %d, want %d + 4 CRC bytes", len(got), len(want))
	}
	if !bytes.Equal(got[:len(want)], want) {
		t.Fatalf("layout drift:\ngot  %x\nwant %x", got[:len(want)], want)
	}

	// And the golden blob (with its CRC) decodes.
	d, err := NewDecoder(bytes.NewReader(got))
	if err != nil {
		t.Fatalf("NewDecoder(golden): %v", err)
	}
	d.Expect("s")
	if d.U8() != 0x7F || d.U64() != 0x0102030405060708 || !d.Bool() {
		t.Fatalf("golden payload decode mismatch")
	}
	if err := d.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
}

// TestCorruptionDetected verifies a flip of any single byte in the blob
// is caught — by the magic check, the version check, a length bound or
// the CRC — before any value is handed to the caller.
func TestCorruptionDetected(t *testing.T) {
	e := NewEncoder("meta")
	e.Section("body")
	for i := 0; i < 64; i++ {
		e.U64(uint64(i) * 0x9E3779B97F4A7C15)
	}
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}
	blob := buf.Bytes()

	for off := 0; off < len(blob); off++ {
		bad := append([]byte(nil), blob...)
		bad[off] ^= 0x01
		if d, err := NewDecoder(bytes.NewReader(bad)); err == nil {
			t.Fatalf("flip at offset %d accepted (meta %q)", off, d.Meta())
		}
	}
}

// TestTruncationDetected verifies every possible truncation point fails
// cleanly.
func TestTruncationDetected(t *testing.T) {
	e := NewEncoder("meta")
	e.U64(42)
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}
	blob := buf.Bytes()
	for n := 0; n < len(blob); n++ {
		if _, err := NewDecoder(bytes.NewReader(blob[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(blob))
		}
	}
}

// TestVersionSkewRejected bumps the version field and expects a
// descriptive refusal.
func TestVersionSkewRejected(t *testing.T) {
	e := NewEncoder("")
	e.U64(1)
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}
	blob := buf.Bytes()
	blob[4] = byte(Format + 1)
	_, err := NewDecoder(bytes.NewReader(blob))
	if err == nil {
		t.Fatalf("future format version accepted")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Fatalf("version skew error not descriptive: %v", err)
	}
}

// TestDecoderStickyError verifies reads past the payload set a sticky
// error and return zero values instead of panicking.
func TestDecoderStickyError(t *testing.T) {
	e := NewEncoder("")
	e.U8(9)
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if d.U8() != 9 {
		t.Fatalf("first read wrong")
	}
	if got := d.U64(); got != 0 {
		t.Fatalf("read past end returned %d, want 0", got)
	}
	if d.Err() == nil {
		t.Fatalf("no sticky error after overrun")
	}
	if got := d.String(); got != "" {
		t.Fatalf("read after error returned %q", got)
	}
}

// TestExpectMismatch verifies section-name drift is reported with both
// names.
func TestExpectMismatch(t *testing.T) {
	e := NewEncoder("")
	e.Section("old-name")
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	d.Expect("new-name")
	err = d.Err()
	if err == nil {
		t.Fatalf("section mismatch accepted")
	}
	if !strings.Contains(err.Error(), "old-name") || !strings.Contains(err.Error(), "new-name") {
		t.Fatalf("mismatch error missing names: %v", err)
	}
}

// TestLenBound verifies hostile counts are clamped by the caller-given
// limit.
func TestLenBound(t *testing.T) {
	e := NewEncoder("")
	e.Len(1 << 40)
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	if got := d.Len(1000); got != 0 {
		t.Fatalf("oversized count returned %d, want 0", got)
	}
	if d.Err() == nil {
		t.Fatalf("oversized count not rejected")
	}
}

type golden struct {
	A uint64
	B bool
	C int64
	F float64
}

// TestStructCodec round-trips a flat stats struct through the reflect
// codec.
func TestStructCodec(t *testing.T) {
	in := golden{A: 77, B: true, C: -9, F: 0.5}
	e := NewEncoder("")
	EncodeStruct(e, &in)
	var buf bytes.Buffer
	if err := e.Close(&buf); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d, err := NewDecoder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("NewDecoder: %v", err)
	}
	var out golden
	DecodeStruct(d, &out)
	if err := d.Err(); err != nil {
		t.Fatalf("Err: %v", err)
	}
	if in != out {
		t.Fatalf("struct round-trip: %+v vs %+v", in, out)
	}
}
