package coherence

import (
	"fmt"

	"allarm/internal/cache"
	"allarm/internal/checkpoint"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// Checkpoint support. Every in-flight coherence message is owned by
// exactly one holder (a NoC delivery, a parked directory transaction, a
// waiter queue, a deferred send, a deferred ack), so messages are
// serialized inline with their owner. Restored messages are built
// without a pool — Release then no-ops and the garbage collector takes
// them once their flow completes — which is safe because pool membership
// never affects protocol behaviour, only allocation counts, and pool
// statistics do not feed results. Free lists themselves restart empty.

// EncodeMsg writes one message (or its absence, when m is nil).
func EncodeMsg(e *checkpoint.Encoder, m *Msg) {
	if m == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	e.U8(uint8(m.Op))
	e.U64(uint64(m.Addr))
	e.I64(int64(m.Src))
	e.I64(int64(m.Dst))
	e.Bool(m.ToDir)
	e.U8(uint8(m.Mode))
	e.I64(int64(m.ForwardTo))
	e.U8(uint8(m.Grant))
	e.Bool(m.Untracked)
	e.Bool(m.NoFill)
	e.Bool(m.Hit)
	e.U8(uint8(m.PrevState))
	e.Bool(m.Dirty)
	e.U64(m.Version)
	e.U64(m.TxnID)
}

// DecodeMsg reads one message written by EncodeMsg; nil when the writer
// recorded an absent message. Restored messages have no pool.
func DecodeMsg(d *checkpoint.Decoder) *Msg {
	if !d.Bool() {
		return nil
	}
	m := &Msg{}
	m.Op = Op(d.U8())
	m.Addr = mem.PAddr(d.U64())
	m.Src = mem.NodeID(d.I64())
	m.Dst = mem.NodeID(d.I64())
	m.ToDir = d.Bool()
	m.Mode = Op(d.U8())
	m.ForwardTo = mem.NodeID(d.I64())
	m.Grant = cache.State(d.U8())
	m.Untracked = d.Bool()
	m.NoFill = d.Bool()
	m.Hit = d.Bool()
	m.PrevState = cache.State(d.U8())
	m.Dirty = d.Bool()
	m.Version = d.U64()
	m.TxnID = d.U64()
	return m
}

// SendEventOwner reports whether h is a deferred-send record and, if so,
// which node's cache controller owns it (the system layer dispatches
// encoding to that controller).
func SendEventOwner(h sim.Handler) (mem.NodeID, bool) {
	if s, ok := h.(*sendEvent); ok {
		return s.c.node, true
	}
	return 0, false
}

// EncodeSendEvent writes the payload of a deferred send owned by this
// controller (the message; the controller identity is written by the
// caller).
func (c *CacheCtrl) EncodeSendEvent(e *checkpoint.Encoder, h sim.Handler) {
	EncodeMsg(e, h.(*sendEvent).m)
}

// DecodeSendEvent rebuilds a deferred-send handler for this controller.
func (c *CacheCtrl) DecodeSendEvent(d *checkpoint.Decoder) (sim.Handler, error) {
	m := DecodeMsg(d)
	if err := d.Err(); err != nil {
		return nil, err
	}
	if m == nil {
		return nil, fmt.Errorf("coherence: deferred send without a message")
	}
	s := c.sends.Get()
	s.c, s.m = c, m
	return s, nil
}

// EncodeState writes the controller's mutable state: array occupancy,
// counters, the private hierarchy, and the outstanding miss (whose
// completion handler the system-layer codec resolves).
func (c *CacheCtrl) EncodeState(e *checkpoint.Encoder, encodeHandler func(*checkpoint.Encoder, sim.Handler) error) error {
	e.Section("cachectrl")
	e.I64(int64(c.nextFree))
	checkpoint.EncodeStruct(e, &c.stats)
	c.hier.EncodeState(e)
	e.Bool(c.hasPending)
	if c.hasPending {
		e.U64(uint64(c.pending.addr))
		e.Bool(c.pending.write)
		e.I64(int64(c.pending.issued))
		if err := encodeHandler(e, c.pending.done); err != nil {
			return err
		}
	}
	return nil
}

// DecodeState overwrites the controller's mutable state.
func (c *CacheCtrl) DecodeState(d *checkpoint.Decoder, decodeHandler func(*checkpoint.Decoder) (sim.Handler, error)) error {
	d.Expect("cachectrl")
	c.nextFree = sim.Time(d.I64())
	checkpoint.DecodeStruct(d, &c.stats)
	if err := c.hier.DecodeState(d); err != nil {
		return err
	}
	c.hasPending = d.Bool()
	c.pending = mshr{}
	if c.hasPending {
		c.pending.addr = mem.PAddr(d.U64())
		c.pending.write = d.Bool()
		c.pending.issued = sim.Time(d.I64())
		h, err := decodeHandler(d)
		if err != nil {
			return err
		}
		c.pending.done = h
	}
	return d.Err()
}
