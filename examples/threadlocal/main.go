// threadlocal demonstrates ALLARM's headline property on a purpose-built
// workload: data that is thread-private for its whole lifetime consumes
// zero directory entries and generates zero coherence traffic — and shows
// the per-range opt-in (the paper's boot-time range registers) by
// enabling ALLARM for only half of physical memory.
//
// The three machine variants are three hand-built Jobs in one Sweep —
// the shape to use when a grid combinator doesn't fit.
package main

import (
	"context"
	"fmt"
	"log"

	allarm "allarm"
)

func main() {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 20_000

	// fluidanimate has the largest thread-private footprint of the suite.
	bench := "fluidanimate"

	modes := []string{"baseline", "allarm (all memory)", "allarm (range disabled)"}
	sweep := allarm.NewSweep()
	for _, mode := range modes {
		c := cfg
		switch mode {
		case "baseline":
			c.Policy = allarm.Baseline
		case "allarm (all memory)":
			c.Policy = allarm.ALLARM
		case "allarm (range disabled)":
			c.Policy = allarm.ALLARM
			// Range registers: enable ALLARM only for the top half of
			// every node's DRAM block. First-touch allocation fills each
			// node's block from the bottom, so the workload's pages fall
			// outside the enabled ranges and the machine behaves exactly
			// like the baseline — the boot-time opt-out of §II-C.
			nodeBytes := uint64(c.MemMiBPerNode) << 20
			for n := uint64(0); n < uint64(c.Nodes); n++ {
				base := n * nodeBytes
				c.ALLARMRanges = append(c.ALLARMRanges, allarm.AddrRange{
					Start: base + nodeBytes/2, End: base + nodeBytes,
				})
			}
		}
		sweep.Add(allarm.Job{Benchmark: bench, Config: c})
	}

	results, err := allarm.RunSweep(context.Background(), sweep)
	if err == nil {
		err = allarm.FirstError(results)
	}
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		res := r.Result
		fmt.Printf("%-24s PF allocs %8d   untracked fills %8d   NoC MB %6.1f\n",
			modes[i], res.PFAllocs, res.UntrackedGrants, float64(res.NoCBytes)/1e6)
	}
}
