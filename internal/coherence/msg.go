// Package coherence defines the protocol vocabulary (message opcodes and
// payloads) and the cache-side coherence controller of the modelled
// Hammer-with-probe-filter protocol, including the single ALLARM addition:
// the PrbLocal message that lets a home directory query its own node's
// cache for the state of an untracked line (§II-C of the paper).
package coherence

import (
	"fmt"
	"sync"

	"allarm/internal/cache"
	"allarm/internal/mem"
	"allarm/internal/noc"
)

// Op is a coherence message opcode.
type Op uint8

const (
	// GetS requests a readable copy (load miss).
	GetS Op = iota
	// GetM requests an exclusive/writable copy (store miss or upgrade).
	GetM
	// PutM writes back a dirty (M or O) line being evicted.
	PutM
	// PutE notifies the home that a clean-exclusive line was evicted, so
	// the probe-filter entry can be freed. The paper's baseline includes
	// this optimisation ("an already optimized implementation").
	PutE
	// DataMsg carries a cache line to the requester with a granted state.
	DataMsg
	// PrbInv asks a cache to invalidate its copy (and forward data if it
	// is the owner and ForwardTo is set).
	PrbInv
	// PrbDown asks a cache to downgrade M→O / E→S and forward data.
	PrbDown
	// PrbLocal is ALLARM's new message: the home directory asks its own
	// node's cache for the current state of a line with no probe-filter
	// entry. Mode (GetS/GetM) selects downgrade vs invalidate semantics.
	PrbLocal
	// Ack acknowledges a probe without data (miss, or non-owner hit).
	Ack
	// AckData acknowledges a probe and carries dirty data back to the
	// home for DRAM writeback (used by back-invalidations).
	AckData
	// CmpAck is the requester's completion acknowledgement to the home
	// after its fill, closing the transaction (AMD Hammer's SrcDone).
	CmpAck
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case GetS:
		return "GetS"
	case GetM:
		return "GetM"
	case PutM:
		return "PutM"
	case PutE:
		return "PutE"
	case DataMsg:
		return "Data"
	case PrbInv:
		return "PrbInv"
	case PrbDown:
		return "PrbDown"
	case PrbLocal:
		return "PrbLocal"
	case Ack:
		return "Ack"
	case AckData:
		return "AckData"
	case CmpAck:
		return "CmpAck"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Class returns the wire class (control vs data) of the opcode.
func (o Op) Class() noc.Class {
	switch o {
	case PutM, DataMsg, AckData:
		return noc.Data
	default:
		return noc.Control
	}
}

// NoNode marks an unset ForwardTo destination.
const NoNode mem.NodeID = -1

// Msg is one coherence message. Fields beyond Op/Addr/Src/Dst are
// opcode-specific payload; unused fields are zero.
type Msg struct {
	Op   Op
	Addr mem.PAddr // line-aligned physical address
	Src  mem.NodeID
	Dst  mem.NodeID
	// ToDir is true when the destination is the node's directory
	// controller rather than its cache controller.
	ToDir bool

	// Mode carries the triggering request type on probes (GetS or GetM),
	// selecting downgrade vs invalidate semantics for PrbLocal.
	Mode Op
	// ForwardTo asks the probed owner to send data directly to this
	// requester (NoNode when data should return to the home instead).
	ForwardTo mem.NodeID
	// Grant is the cache state granted by a DataMsg (or the state the
	// probed owner should grant when forwarding).
	Grant cache.State
	// Untracked marks a DataMsg granted by an ALLARM home without a
	// probe-filter entry (bookkeeping only; see cache.Line.Untracked).
	Untracked bool
	// NoFill marks a DataMsg (or the PrbLocal that may forward one) whose
	// data must be consumed without installing the line: the home serves
	// the access but neither a probe-filter entry nor a cached copy comes
	// into existence. Allocation policies use it to defer tracking (e.g.
	// hysteresis) without creating undiscoverable remote copies; it is
	// only legal for read misses.
	NoFill bool
	// Hit reports whether a probed cache held the line (Ack/AckData).
	Hit bool
	// PrevState is the probed cache's state before the probe took effect.
	PrevState cache.State
	// Dirty reports whether AckData carries modified data.
	Dirty bool
	// Version is the line's data version, used to verify the data-value
	// invariant in tests (not a hardware field).
	Version uint64
	// TxnID matches probe acknowledgements to directory transactions.
	TxnID uint64

	// pool, when non-nil, is the free list that owns this message; freed
	// guards the recycle discipline against double release.
	pool  *MsgPool
	freed bool
}

// String renders a compact description for debugging and test failures.
func (m *Msg) String() string {
	dest := "cache"
	if m.ToDir {
		dest = "dir"
	}
	return fmt.Sprintf("%s[%#x] %d→%d/%s", m.Op, uint64(m.Addr), m.Src, m.Dst, dest)
}

// Port delivers coherence messages between controllers. The system layer
// implements it on top of the NoC, computing latencies and scheduling the
// destination controller's handler.
type Port interface {
	// Send enqueues m for delivery. Ownership of m transfers to the port
	// and then to the receiving controller, which calls Release once it
	// is done with the message (directly after processing, or — for
	// requests the directory parks in a transaction or waiter queue — at
	// transaction completion).
	Send(m *Msg)
}

// MsgPool is a LIFO free list of coherence messages. Controllers allocate
// every message they send from their own pool and the receiving
// controller releases it when its flow no longer needs it, so steady-state
// simulation recycles a small working set instead of allocating per
// message.
//
// A pool is by default NOT safe for concurrent use: all controllers of
// one serial machine share that machine's single event goroutine, and
// messages never cross machines. A parallel (sharded) machine is
// different — a message allocated by one shard's controller is released
// by the receiving controller on another shard's goroutine — so such
// machines call SetShared, which routes Release through a small
// mutex-protected side buffer the owner drains on its next empty Get.
// Get itself stays lock-free on the owner's goroutine except for that
// refill, so the serial hot path is untouched and the shared path locks
// only at release/refill, never per message-field access.
type MsgPool struct {
	free  []*Msg
	stats MsgPoolStats

	shared   bool
	mu       sync.Mutex
	returned []*Msg // released under mu when shared; drained by Get
	puts     uint64 // Puts under mu when shared
}

// MsgPoolStats counts pool activity; News≪Gets means recycling works.
type MsgPoolStats struct {
	News uint64 // messages freshly allocated from the Go heap
	Gets uint64 // messages handed out (fresh + recycled)
	Puts uint64 // messages returned for reuse
}

// Stats returns a copy of the pool counters.
func (p *MsgPool) Stats() MsgPoolStats {
	s := p.stats
	if p.shared {
		p.mu.Lock()
		s.Puts += p.puts
		p.mu.Unlock()
	}
	return s
}

// SetShared enables cross-goroutine release (parallel machines). Call
// before the machine runs; Get must still only be called by the owning
// controller's shard.
func (p *MsgPool) SetShared() { p.shared = true }

// Get returns a zeroed message owned by p. Pass it to Port.Send as usual;
// the receiver returns it with Release.
func (p *MsgPool) Get() *Msg {
	p.stats.Gets++
	if len(p.free) == 0 && p.shared {
		// Refill from the cross-shard return buffer. Any message in it
		// was released at or before the last window barrier, which
		// happens-before this Get.
		p.mu.Lock()
		p.free, p.returned = p.returned, p.free
		p.mu.Unlock()
	}
	if n := len(p.free); n > 0 {
		m := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		*m = Msg{pool: p}
		return m
	}
	p.stats.News++
	return &Msg{pool: p}
}

// Release returns m to the pool that created it. Messages built directly
// with &Msg{} (tests, tools) have no pool and are left to the garbage
// collector. Releasing a pooled message twice panics: it means two flows
// believe they own the message, which would corrupt protocol state once
// the slot is recycled.
func (m *Msg) Release() {
	p := m.pool
	if p == nil {
		return
	}
	if m.freed {
		panic(fmt.Sprintf("coherence: message %v released twice", m))
	}
	m.freed = true
	if p.shared {
		// Releasing shard may differ from the owning shard: park the
		// message in the return buffer instead of touching p.free.
		p.mu.Lock()
		p.returned = append(p.returned, m)
		p.puts++
		p.mu.Unlock()
		return
	}
	p.stats.Puts++
	p.free = append(p.free, m)
}
