package fleet

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"allarm/internal/obs"
	"allarm/internal/server"
)

// fleetTimeline fetches the router's merged timeline for a sweep.
func fleetTimeline(t *testing.T, base, id string, header ...string) obs.TimelineView {
	t.Helper()
	resp, body := get(t, base+"/v1/sweeps/"+id+"/timeline", header...)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline: %d: %s", resp.StatusCode, body)
	}
	var tv obs.TimelineView
	if err := json.Unmarshal(body, &tv); err != nil {
		t.Fatal(err)
	}
	return tv
}

// hasEvent reports whether the view contains an event with this name.
func hasEvent(events []obs.TimelineEvent, name string) bool {
	for _, e := range events {
		if e.Event == name {
			return true
		}
	}
	return false
}

// TestFleetMergedTimeline is the cross-daemon correlation acceptance
// check: a sweep submitted through the router with an explicit request
// id yields one merged timeline in which the router's own lifecycle
// events AND the shard-side per-job events all carry that id, shard
// events are tagged with their shard and their job indices are remapped
// to global spec positions.
func TestFleetMergedTimeline(t *testing.T) {
	_, base, shards := newTestFleet(t, 2, server.Options{Workers: 4}, Options{})
	const reqID = "fleet-correlation-test-1"
	req := bigRequest()
	sr := submit(t, base, req, obs.RequestIDHeader, reqID)
	v := waitFleetDone(t, base, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("sweep: %+v", v)
	}

	tv := fleetTimeline(t, base, sr.ID)
	if tv.ID != sr.ID {
		t.Fatalf("timeline id = %q, want %q", tv.ID, sr.ID)
	}
	for _, name := range []string{"accepted", "expanded", "assigned", "gathered", "done"} {
		if !hasEvent(tv.Events, name) {
			t.Errorf("merged timeline missing router event %q", name)
		}
	}
	// Shard-side events made it into the merge, tagged and remapped.
	var shardEvents, started, finished int
	for _, e := range tv.Events {
		if e.Shard == "" {
			continue
		}
		shardEvents++
		switch e.Event {
		case "started":
			started++
		case "finished":
			finished++
		}
		if e.Job >= v.Total {
			t.Errorf("shard event %q job index %d not remapped (total %d)", e.Event, e.Job, v.Total)
		}
		if e.Shard != shards[0].url && e.Shard != shards[1].url {
			t.Errorf("shard event tagged with unknown shard %q", e.Shard)
		}
	}
	if shardEvents == 0 {
		t.Fatal("merged timeline carries no shard-side events")
	}
	if started < v.Total || finished < v.Total {
		t.Errorf("merged timeline has %d started / %d finished events for %d jobs", started, finished, v.Total)
	}
	// Every event — router-side and shard-side — carries the caller's id:
	// the router adopted it, forwarded it on each shard call, and the
	// shards stamped their own timelines with it.
	for _, e := range tv.Events {
		if e.RequestID != reqID {
			t.Errorf("event %q (shard %q) request id = %q, want %q", e.Event, e.Shard, e.RequestID, reqID)
		}
	}
}

// TestRouterPrometheusMetrics pins the router's format negotiation and
// its histogram families.
func TestRouterPrometheusMetrics(t *testing.T) {
	_, base, _ := newTestFleet(t, 2, server.Options{Workers: 2}, Options{})
	sr := submit(t, base, bigRequest())
	waitFleetDone(t, base, sr.ID)

	resp, body := get(t, base+"/metrics?format=prometheus")
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("Content-Type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE allarm_router_sweeps_completed_total counter",
		"# TYPE allarm_router_gather_duration_seconds histogram",
		"allarm_router_sweeps_completed_total 1",
		"allarm_router_gather_duration_seconds_count 1",
		"# TYPE allarm_router_shards_healthy gauge",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("router exposition missing %q", want)
		}
	}
	// The JSON default is unchanged.
	var m Metrics
	_, body = get(t, base+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.SweepsCompleted != 1 || m.Gathers == 0 {
		t.Errorf("JSON router metrics: %+v", m)
	}
}
