package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Count() != 0 {
		t.Fatal("zero value not zero")
	}
	c.Inc()
	c.Add(4)
	if c.Count() != 5 {
		t.Fatalf("got %d, want 5", c.Count())
	}
	c.Reset()
	if c.Count() != 0 {
		t.Fatal("Reset did not zero")
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(1, 2); r != 0.5 {
		t.Fatalf("Ratio(1,2) = %v", r)
	}
	if r := Ratio(1, 0); r != 0 {
		t.Fatalf("Ratio by zero = %v, want 0", r)
	}
}

func TestSafeDiv(t *testing.T) {
	if v := SafeDiv(10, 4, -1); v != 2.5 {
		t.Fatalf("SafeDiv = %v", v)
	}
	if v := SafeDiv(10, 0, -1); v != -1 {
		t.Fatalf("SafeDiv default = %v", v)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("Geomean(2,8) = %v", g)
	}
	if g := Geomean([]float64{1, 0, 4}); g != 0 {
		t.Fatalf("Geomean with zero = %v, want 0", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Fatalf("Geomean(nil) = %v", g)
	}
}

func TestGeomeanNonZero(t *testing.T) {
	if g := GeomeanNonZero([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeomeanNonZero(2,8) = %v", g)
	}
	// Zeros are dropped, not poisonous (unlike Geomean).
	if g := GeomeanNonZero([]float64{2, 0, 8, 0}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeomeanNonZero with zeros = %v, want 4", g)
	}
	// Negatives are dropped too.
	if g := GeomeanNonZero([]float64{-3, 2, 8}); math.Abs(g-4) > 1e-12 {
		t.Fatalf("GeomeanNonZero with negative = %v, want 4", g)
	}
	if g := GeomeanNonZero([]float64{0, 0}); g != 0 {
		t.Fatalf("GeomeanNonZero(all zero) = %v, want 0", g)
	}
	if g := GeomeanNonZero(nil); g != 0 {
		t.Fatalf("GeomeanNonZero(nil) = %v, want 0", g)
	}
}

func TestGeomeanBetweenMinAndMax(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			x = math.Abs(x)
			if x > 1e-9 && x < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		g := Geomean(xs)
		min, max := xs[0], xs[0]
		for _, x := range xs {
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		return g >= min*(1-1e-9) && g <= max*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Min() != 0.5 || h.Max() != 500 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-138.875) > 1e-9 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // falls in bucket with bound 2
	}
	if q := h.Quantile(0.5); q != 2 {
		t.Fatalf("median bound = %v, want 2", q)
	}
	if q := h.Quantile(0); q != 2 {
		t.Fatalf("q0 = %v", q)
	}
	h.Observe(100)
	if q := h.Quantile(1); q != 100 {
		t.Fatalf("q1 = %v, want exact max", q)
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram(1)
	if q := h.Quantile(0.9); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for descending bounds")
		}
	}()
	NewHistogram(2, 1)
}

func TestHistogramQuantileMonotone(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8, 16)
	f := func(vals []float64) bool {
		for _, v := range vals {
			h.Observe(math.Abs(v))
		}
		return h.Quantile(0.25) <= h.Quantile(0.75)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("b", "22")
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name") || !strings.Contains(lines[0], "value") {
		t.Fatalf("header wrong: %q", lines[0])
	}
	if !strings.Contains(lines[2], "alpha") {
		t.Fatalf("row wrong: %q", lines[2])
	}
	// Columns aligned: the separator position must match across rows.
	if strings.Index(lines[2], "|") != strings.Index(lines[3], "|") {
		t.Fatalf("misaligned columns:\n%s", out)
	}
}

func TestTableAddRowf(t *testing.T) {
	tab := NewTable("a", "b")
	tab.AddRowf([]string{"%s", "%.2f"}, "x", 1.234)
	if !strings.Contains(tab.String(), "1.23") {
		t.Fatalf("AddRowf formatting lost:\n%s", tab.String())
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := NewTable("a", "b", "c")
	tab.AddRow("only")
	if out := tab.String(); !strings.Contains(out, "only") {
		t.Fatalf("short row lost:\n%s", out)
	}
}
