package allarm_test

import (
	"strings"
	"testing"

	allarm "allarm"
)

// fastConfig returns a configuration small enough for unit tests, with
// the coherence invariant checker enabled.
func fastConfig() allarm.Config {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 2_000
	cfg.CheckInvariants = true
	return cfg
}

func TestDefaultConfigIsTableI(t *testing.T) {
	c := allarm.DefaultConfig()
	if c.Nodes != 16 || c.MeshW != 4 || c.MeshH != 4 {
		t.Fatal("topology not Table I")
	}
	if c.L1Bytes != 32<<10 || c.L2Bytes != 256<<10 || c.PFBytes != 512<<10 {
		t.Fatal("SRAM sizes not Table I")
	}
	if c.DRAMNs != 60 || c.LinkNs != 10 || c.CacheNs != 1 || c.DirNs != 1 {
		t.Fatal("latencies not Table I")
	}
	if c.CtrlMsgBytes != 8 || c.DataMsgBytes != 72 || c.FlitBytes != 4 || c.LinkBytesPerNs != 8 {
		t.Fatal("NoC parameters not Table I")
	}
	if c.MemMiBPerNode != 128 {
		t.Fatal("memory not Table I")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExperimentConfigPreservesRatios(t *testing.T) {
	d, e := allarm.DefaultConfig(), allarm.ExperimentConfig()
	if e.PFBytes*allarm.ExperimentScale != d.PFBytes {
		t.Fatal("PF not scaled")
	}
	if e.PFBytes != 2*e.L2Bytes {
		t.Fatal("PF coverage no longer 2x L2")
	}
	if e.L2Bytes/e.L1Bytes != d.L2Bytes/d.L1Bytes {
		t.Fatal("L1:L2 ratio changed")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []func(*allarm.Config){
		func(c *allarm.Config) { c.Threads = 0 },
		func(c *allarm.Config) { c.AccessesPerThread = 0 },
		func(c *allarm.Config) { c.Nodes = 15 },
		func(c *allarm.Config) { c.L1Bytes = 0 },
		func(c *allarm.Config) { c.MemMiBPerNode = 0 },
		func(c *allarm.Config) { c.LinkBytesPerNs = 0 },
		func(c *allarm.Config) {
			c.ALLARMRanges = []allarm.AddrRange{{Start: 5, End: 5}}
		},
	}
	for i, mutate := range bad {
		c := allarm.DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Fatalf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunProducesMetrics(t *testing.T) {
	res, err := allarm.RunBenchmark(fastConfig(), "barnes")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 16*2000 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	if res.RuntimeNs <= 0 || res.L2Misses == 0 || res.NoCBytes == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if lf := res.LocalFraction(); lf <= 0 || lf >= 1 {
		t.Fatalf("local fraction %v", lf)
	}
}

func TestRunUnknownBenchmark(t *testing.T) {
	if _, err := allarm.RunBenchmark(fastConfig(), "nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRunPairSameSeedComparable(t *testing.T) {
	base, opt, err := allarm.RunPair(fastConfig(), "ocean-cont")
	if err != nil {
		t.Fatal(err)
	}
	if base.PolicyUsed != allarm.Baseline || opt.PolicyUsed != allarm.ALLARM {
		t.Fatal("policies mislabelled")
	}
	if base.Accesses != opt.Accesses {
		t.Fatal("pair ran different workloads")
	}
	if opt.UntrackedGrants == 0 {
		t.Fatal("ALLARM run produced no untracked grants")
	}
	if base.UntrackedGrants != 0 {
		t.Fatal("baseline produced untracked grants")
	}
	c := allarm.Compare(base, opt)
	if c.Speedup <= 0 {
		t.Fatalf("speedup %v", c.Speedup)
	}
	// The paper's core claim at any scale: ALLARM never allocates more
	// probe-filter entries than the baseline.
	if opt.PFAllocs > base.PFAllocs {
		t.Fatalf("ALLARM allocated more entries: %d > %d", opt.PFAllocs, base.PFAllocs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := fastConfig()
	a, err := allarm.RunBenchmark(cfg, "cholesky")
	if err != nil {
		t.Fatal(err)
	}
	b, err := allarm.RunBenchmark(cfg, "cholesky")
	if err != nil {
		t.Fatal(err)
	}
	if a.RuntimeNs != b.RuntimeNs || a.NoCBytes != b.NoCBytes || a.PFEvictions != b.PFEvictions {
		t.Fatal("identical configs produced different results")
	}
	cfg.Seed = 999
	c, err := allarm.RunBenchmark(cfg, "cholesky")
	if err != nil {
		t.Fatal(err)
	}
	if c.RuntimeNs == a.RuntimeNs && c.NoCBytes == a.NoCBytes {
		t.Fatal("different seeds produced identical results")
	}
}

func TestALLARMRangesDisableEverything(t *testing.T) {
	cfg := fastConfig()
	cfg.Policy = allarm.ALLARM
	// Enable ALLARM only in the top half of each node's DRAM; the bump
	// allocator never reaches it, so the run must behave like baseline.
	nodeBytes := uint64(cfg.MemMiBPerNode) << 20
	for n := uint64(0); n < uint64(cfg.Nodes); n++ {
		base := n * nodeBytes
		cfg.ALLARMRanges = append(cfg.ALLARMRanges,
			allarm.AddrRange{Start: base + nodeBytes/2, End: base + nodeBytes})
	}
	res, err := allarm.RunBenchmark(cfg, "barnes")
	if err != nil {
		t.Fatal(err)
	}
	if res.UntrackedGrants != 0 {
		t.Fatalf("range-disabled ALLARM made %d untracked grants", res.UntrackedGrants)
	}
}

func TestMultiProcessRun(t *testing.T) {
	cfg := fastConfig()
	mp := allarm.DefaultMultiProcess()
	res, err := allarm.RunMultiProcess(cfg, mp, "barnes")
	if err != nil {
		t.Fatal(err)
	}
	if res.Accesses != 2*2000 {
		t.Fatalf("accesses = %d", res.Accesses)
	}
	// Two separate address spaces: every page is process-local, so under
	// ALLARM nearly all requests are local and PF allocations tiny.
	cfg.Policy = allarm.ALLARM
	opt, err := allarm.RunMultiProcess(cfg, mp, "barnes")
	if err != nil {
		t.Fatal(err)
	}
	if opt.PFAllocs >= res.PFAllocs {
		t.Fatalf("multi-process ALLARM allocs %d >= baseline %d", opt.PFAllocs, res.PFAllocs)
	}
}

func TestMultiProcessValidation(t *testing.T) {
	cfg := fastConfig()
	mp := allarm.DefaultMultiProcess()
	mp.Copies = 99
	if _, err := allarm.RunMultiProcess(cfg, mp, "barnes"); err == nil {
		t.Fatal("too many copies accepted")
	}
	mp = allarm.DefaultMultiProcess()
	if _, err := allarm.RunMultiProcess(cfg, mp, "nope"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestBenchmarksList(t *testing.T) {
	names := allarm.Benchmarks()
	if len(names) != 8 || names[0] != "barnes" || names[7] != "x264" {
		t.Fatalf("benchmarks = %v", names)
	}
	mp := allarm.MultiProcessBenchmarks()
	if len(mp) != 4 {
		t.Fatalf("multi-process benchmarks = %v", mp)
	}
	// Mutating the returned slice must not corrupt the library's copy.
	names[0] = "corrupted"
	if allarm.Benchmarks()[0] != "barnes" {
		t.Fatal("Benchmarks returns a shared slice")
	}
}

func TestRunExperimentTable1(t *testing.T) {
	var sb strings.Builder
	if err := allarm.RunExperiment(&sb, fastConfig(), "table1"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"4x4 mesh", "512kB", "60ns", "8/72 bytes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentArea(t *testing.T) {
	var sb strings.Builder
	if err := allarm.RunExperiment(&sb, fastConfig(), "area"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "70.89") {
		t.Fatalf("area table missing paper value:\n%s", sb.String())
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	var sb strings.Builder
	if err := allarm.RunExperiment(&sb, fastConfig(), "fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunExperimentFig2(t *testing.T) {
	var sb strings.Builder
	cfg := fastConfig()
	cfg.CheckInvariants = false // speed: eight runs
	if err := allarm.RunExperiment(&sb, cfg, "fig2"); err != nil {
		t.Fatal(err)
	}
	for _, b := range allarm.Benchmarks() {
		if !strings.Contains(sb.String(), b) {
			t.Fatalf("fig2 missing %s:\n%s", b, sb.String())
		}
	}
}

func TestSnoopHidingOnlyUnderALLARM(t *testing.T) {
	base, opt, err := allarm.RunPair(fastConfig(), "fluidanimate")
	if err != nil {
		t.Fatal(err)
	}
	if base.LocalProbes != 0 {
		t.Fatal("baseline issued local probes")
	}
	if opt.LocalProbes == 0 {
		t.Fatal("ALLARM issued no local probes")
	}
	if f := opt.SnoopHiddenFraction(); f < 0 || f > 1 {
		t.Fatalf("hidden fraction %v", f)
	}
}
