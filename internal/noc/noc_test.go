package noc

import (
	"testing"
	"testing/quick"

	"allarm/internal/mem"
	"allarm/internal/sim"
)

func testCfg() Config {
	return Config{
		Width: 4, Height: 4,
		LinkLatency:   10 * sim.Nanosecond,
		LinkBandwidth: 8,
		FlitBytes:     4,
		ControlBytes:  8,
		DataBytes:     72,
		LocalLatency:  1 * sim.Nanosecond,
	}
}

func TestConfigValidate(t *testing.T) {
	if err := testCfg().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := testCfg()
	bad.Width = 0
	if bad.Validate() == nil {
		t.Fatal("zero width accepted")
	}
	bad = testCfg()
	bad.LinkBandwidth = 0
	if bad.Validate() == nil {
		t.Fatal("zero bandwidth accepted")
	}
	bad = testCfg()
	bad.DataBytes = 4
	bad.ControlBytes = 8
	if bad.Validate() == nil {
		t.Fatal("data < control accepted")
	}
}

func TestHopsIsManhattan(t *testing.T) {
	m := New(testCfg())
	cases := []struct {
		src, dst mem.NodeID
		want     int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 3}, {0, 4, 1}, {0, 15, 6}, {5, 10, 2},
	}
	for _, c := range cases {
		if got := m.Hops(c.src, c.dst); got != c.want {
			t.Fatalf("Hops(%d,%d) = %d, want %d", c.src, c.dst, got, c.want)
		}
	}
}

func TestHopsSymmetric(t *testing.T) {
	m := New(testCfg())
	f := func(a, b uint8) bool {
		s, d := mem.NodeID(a%16), mem.NodeID(b%16)
		return m.Hops(s, d) == m.Hops(d, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalDelivery(t *testing.T) {
	m := New(testCfg())
	at := m.Send(100, 3, 3, Control)
	if at != 100+1*sim.Nanosecond {
		t.Fatalf("local delivery at %v", at)
	}
	if s := m.Stats(); s.Bytes != 0 || s.LocalMsgs != 1 || s.Messages != 0 {
		t.Fatalf("local message counted as traffic: %+v", s)
	}
}

func TestUncontendedLatency(t *testing.T) {
	m := New(testCfg())
	// 0→1: one hop. Control 8B at 8 B/ns = 1ns serialization.
	at := m.Send(0, 0, 1, Control)
	want := 10*sim.Nanosecond + 1*sim.Nanosecond
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
	// 0→15: six hops, data 72B → 9ns serialization, paid once. The first
	// message above occupied node 0's east link, so use a fresh mesh.
	m = New(testCfg())
	at = m.Send(0, 0, 15, Data)
	want = 6*10*sim.Nanosecond + 9*sim.Nanosecond
	if at != want {
		t.Fatalf("arrival %v, want %v", at, want)
	}
}

func TestContentionSerializesSameRoute(t *testing.T) {
	m := New(testCfg())
	a := m.Send(0, 0, 1, Data)
	b := m.Send(0, 0, 1, Data)
	if b <= a {
		t.Fatalf("contending messages not serialized: %v then %v", a, b)
	}
	// FIFO per route: a third message arrives after the second.
	c := m.Send(0, 0, 1, Control)
	if c <= b {
		t.Fatalf("FIFO violated: %v after %v", c, b)
	}
}

func TestDisjointRoutesDoNotContend(t *testing.T) {
	m := New(testCfg())
	a := m.Send(0, 0, 1, Data)
	b := m.Send(0, 14, 15, Data) // far corner, disjoint links
	if a != b {
		t.Fatalf("disjoint routes contended: %v vs %v", a, b)
	}
}

func TestTrafficAccounting(t *testing.T) {
	m := New(testCfg())
	m.Send(0, 0, 1, Control) // 8B, 2 flits, 1 hop
	m.Send(0, 0, 2, Data)    // 72B, 18 flits, 2 hops
	s := m.Stats()
	if s.Messages != 2 || s.CtrlMsgs != 1 || s.DataMsgs != 1 {
		t.Fatalf("message counts %+v", s)
	}
	if s.Bytes != 80 {
		t.Fatalf("bytes = %d", s.Bytes)
	}
	if s.Flits != 20 {
		t.Fatalf("flits = %d", s.Flits)
	}
	if s.FlitHops != 2*1+18*2 {
		t.Fatalf("flit-hops = %d", s.FlitHops)
	}
	if s.RouterXings != 2*2+18*3 {
		t.Fatalf("router crossings = %d", s.RouterXings)
	}
}

func TestResetStats(t *testing.T) {
	m := New(testCfg())
	m.Send(0, 0, 5, Data)
	m.ResetStats()
	if s := m.Stats(); s.Messages != 0 || s.Bytes != 0 {
		t.Fatalf("stats after reset: %+v", s)
	}
}

func TestArrivalNeverBeforeMinimumLatency(t *testing.T) {
	m := New(testCfg())
	f := func(a, b uint8, now uint16) bool {
		src, dst := mem.NodeID(a%16), mem.NodeID(b%16)
		if src == dst {
			return true
		}
		t0 := sim.Time(now) * sim.Nanosecond
		at := m.Send(t0, src, dst, Control)
		min := t0 + sim.Time(m.Hops(src, dst))*m.cfg.LinkLatency
		return at > min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFlitsFor(t *testing.T) {
	m := New(testCfg())
	if m.FlitsFor(Control) != 2 || m.FlitsFor(Data) != 18 {
		t.Fatalf("flits: ctrl=%d data=%d", m.FlitsFor(Control), m.FlitsFor(Data))
	}
	if m.BytesFor(Control) != 8 || m.BytesFor(Data) != 72 {
		t.Fatal("bytes wrong")
	}
}

func TestMinCrossLatency(t *testing.T) {
	// LinkLatency 10ns + 8 control bytes at 8 B/ns = 11ns: the PDES
	// lookahead. Changing the formula silently changes every parallel
	// machine's window width, so the value is pinned.
	m := New(testCfg())
	if got := m.MinCrossLatency(); got != 11*sim.Nanosecond {
		t.Fatalf("MinCrossLatency = %v, want 11ns", got)
	}
}

func TestMinCrossLatencyIsALowerBound(t *testing.T) {
	// The conservative window is only sound if NO cross-node message —
	// any class, any route, any congestion — arrives earlier than
	// now + MinCrossLatency.
	m := New(testCfg())
	min := m.MinCrossLatency()
	f := func(a, b uint8, now uint16, data bool) bool {
		src, dst := mem.NodeID(a%16), mem.NodeID(b%16)
		if src == dst {
			return true
		}
		class := Control
		if data {
			class = Data
		}
		t0 := sim.Time(now) * sim.Nanosecond
		return m.Send(t0, src, dst, class) >= t0+min
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestAbsorbLocalMsgs(t *testing.T) {
	m := New(testCfg())
	m.Send(0, 3, 3, Control)
	m.AbsorbLocalMsgs(7)
	if got := m.Stats().LocalMsgs; got != 8 {
		t.Fatalf("LocalMsgs = %d after absorb, want 8", got)
	}
}
