// Command allarm-trace closes the capture → inspect → replay loop for
// memory-access traces: it captures benchmark traces to disk, prints a
// trace's summary, and replays a captured trace through the simulator
// under the baseline and an optimised policy, printing the paper's
// normalised comparison.
//
// Usage:
//
//	allarm-trace -gen -bench barnes -o barnes.trace -accesses 10000
//	allarm-trace -info barnes.trace
//	allarm-trace -replay barnes.trace
//	allarm-trace -replay barnes.trace -policy allarm-hyst
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	allarm "allarm"
	"allarm/internal/obs"
	"allarm/internal/trace"
	"allarm/internal/workload"
)

// logger backs fatal(); set once in main after flags are parsed.
var logger *slog.Logger

func main() {
	var (
		gen       = flag.Bool("gen", false, "capture a benchmark trace")
		info      = flag.String("info", "", "print a trace file's summary")
		replay    = flag.String("replay", "", "replay a trace file under baseline and -policy, printing the comparison")
		bench     = flag.String("bench", "barnes", "benchmark to capture")
		out       = flag.String("o", "out.trace", "output path for -gen")
		threads   = flag.Int("threads", 16, "thread count")
		accesses  = flag.Int("accesses", 10000, "accesses per thread")
		seed      = flag.Uint64("seed", 1, "stream seed (capture) / simulation seed (replay)")
		policy    = flag.String("policy", "allarm", "optimised policy for -replay (see allarm-sim -policy)")
		check     = flag.Bool("check", false, "enable the coherence invariant checker for -replay")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("allarm-trace", allarm.Version)
		return
	}
	var lerr error
	if logger, lerr = obs.NewLogger(os.Stderr, *logLevel, *logFormat); lerr != nil {
		fmt.Fprintln(os.Stderr, "allarm-trace:", lerr)
		os.Exit(1)
	}

	switch {
	case *gen:
		wl, err := workload.Benchmark(*bench, *threads, *accesses)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err := trace.Capture(f, wl, *seed)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d records (%d threads, placements and warmup included)\n",
			*out, w.Records(), *threads)

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var records, warmup, writes uint64
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			records++
			if rec.Warmup {
				warmup++
			}
			if rec.Access.Write {
				writes++
			}
		}
		fmt.Printf("%s: v%d, %d threads, %d records (%d warmup), %d placements, %.1f%% writes\n",
			*info, r.Version(), r.Threads(), records, warmup, len(r.Placements()),
			100*float64(writes)/float64(records))

	case *replay != "":
		opt, err := allarm.ParsePolicy(*policy)
		if err != nil {
			fatal(err)
		}
		wl, err := allarm.LoadTrace(*replay)
		if err != nil {
			fatal(err)
		}
		cfg := allarm.ExperimentConfig()
		cfg.Seed = *seed
		cfg.CheckInvariants = *check
		sweep := allarm.NewSweep(allarm.Job{Workload: wl, Config: cfg}).
			CrossPolicies(allarm.Baseline, opt)
		results, err := allarm.RunSweep(context.Background(), sweep)
		if err == nil {
			err = allarm.FirstError(results)
		}
		if err != nil {
			fatal(err)
		}
		base, o := results[0].Result, results[1].Result
		c := allarm.Compare(base, o)
		fmt.Printf("%s: %d threads, %d accesses, %s vs %s\n",
			wl.Name(), wl.Threads(), base.Accesses, allarm.Baseline, opt)
		fmt.Printf("speedup            %8.3fx\n", c.Speedup)
		fmt.Printf("evictions ratio    %8.3f\n", c.EvictionRatio)
		fmt.Printf("traffic ratio      %8.3f\n", c.TrafficRatio)
		fmt.Printf("L2 miss ratio      %8.3f\n", c.L2MissRatio)
		fmt.Printf("NoC energy ratio   %8.3f\n", c.NoCEnergyRatio)
		fmt.Printf("PF energy ratio    %8.3f\n", c.PFEnergyRatio)

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	logger.Error(err.Error())
	os.Exit(1)
}
