// customscheme demonstrates the two extension axes of the public API on
// one grid:
//
//   - a custom directory allocation policy, registered by name
//     ("allarm-reads": ALLARM's untracked fast path for local *read*
//     misses only — local writes are tracked like the baseline), and
//   - a custom programmatic workload (a read-mostly, strictly
//     thread-local sweep) built with NewWorkload.
//
// Once registered, the custom policy is a first-class citizen: it works
// in Config.Policy, CrossPolicies, the CLI -policy flags and the
// experiment harness, next to "baseline", "allarm" and "allarm-hyst".
package main

import (
	"context"
	"fmt"
	"log"

	allarm "allarm"
)

// readsOnlyALLARM leaves local read misses untracked (ALLARM's fast
// path) but allocates entries for local writes. Remote misses always
// allocate and — because untracked local copies can exist — must always
// probe the home's own core.
type readsOnlyALLARM struct {
	inRange func(addr uint64) bool
}

func (p readsOnlyALLARM) OnMiss(m allarm.Miss) allarm.MissAction {
	if m.Local && !m.Write && p.inRange(m.Addr) {
		return allarm.GrantUntracked
	}
	return allarm.Track
}

func (p readsOnlyALLARM) ProbeLocalOnRemoteMiss(addr uint64) bool {
	return p.inRange(addr)
}

func init() {
	allarm.MustRegisterPolicy("allarm-reads", func(ctx allarm.PolicyContext) allarm.DirectoryPolicy {
		return readsOnlyALLARM{inRange: ctx.InRange}
	})
}

// localSweep is a programmatic workload: each thread repeatedly sweeps
// its own arena, 7 reads per write — data that never leaves its node.
func localSweep(threads, accesses int) allarm.Workload {
	const arenaBytes = 96 << 10
	base := func(thread int) uint64 { return 0x4000_0000 + uint64(thread)<<24 }
	wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
		Name:    "local-sweep",
		Threads: threads,
		Stream: func(thread int, seed uint64) allarm.Stream {
			i := 0
			return allarm.StreamFunc(func() (allarm.Access, bool) {
				if i >= accesses {
					return allarm.Access{}, false
				}
				a := allarm.Access{
					VAddr: base(thread) + uint64(i*8%arenaBytes),
					Write: i%8 == 7,
					Think: 2 * allarm.Nanosecond,
				}
				i++
				return a, true
			})
		},
		Pages: func(fn func(page uint64, thread int)) {
			for th := 0; th < threads; th++ {
				for off := uint64(0); off < arenaBytes; off += 4096 {
					fn(base(th)+off, th)
				}
			}
		},
		Key: fmt.Sprintf("local-sweep/t%d/a%d", threads, accesses),
	})
	if err != nil {
		panic(err)
	}
	return wl
}

func main() {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 20_000

	wl := localSweep(cfg.Threads, cfg.AccessesPerThread)
	policies := []allarm.Policy{allarm.Baseline, allarm.ALLARM, "allarm-reads", allarm.ALLARMHyst}

	// One declarative grid: (preset benchmark + custom workload) × all
	// four policies, fanned out over all cores.
	sweep := allarm.NewSweep(
		allarm.Job{Benchmark: "ocean-cont", Config: cfg},
		allarm.Job{Workload: wl, Config: cfg},
	).CrossPolicies(policies...)

	results, err := allarm.RunSweep(context.Background(), sweep)
	if err == nil {
		err = allarm.FirstError(results)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("workload      policy         runtime(us)  PF allocs  untracked  uncached")
	for _, r := range results {
		res := r.Result
		fmt.Printf("%-12s  %-12s  %10.1f  %9d  %9d  %8d\n",
			r.Job.WorkloadName(), r.Job.Config.Policy,
			res.RuntimeNs/1e3, res.PFAllocs, res.UntrackedGrants, res.UncachedGrants)
	}
}
