package allarm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"

	"allarm/internal/system"
)

// JobFingerprint returns the stable identity a checkpoint is bound to:
// a hex digest over the job's Key and the library Version. A checkpoint
// only resumes a job with the same fingerprint — Key equality means the
// same simulation (see Job.Key), and the Version binding refuses
// cross-version resumes, where bit-identical replay is not guaranteed
// even when the checkpoint format still parses.
func JobFingerprint(j Job) string {
	sum := sha256.Sum256([]byte(Version + "\x00" + j.Key()))
	return "allarm-job:" + hex.EncodeToString(sum[:])
}

// RunHandle is a stepwise simulation run — the checkpointable form of
// Job.RunCtx. StartJob opens one from scratch, ResumeJob from a
// checkpoint; Step advances it in bounded windows between which the
// run may be snapshotted (Snapshot), abandoned, or preempted and later
// resumed in a different process or on a different host. A resumed run
// is bit-identical to an uninterrupted one.
type RunHandle struct {
	job     Job
	m       *system.Machine
	threads []system.ThreadSpec
	name    string // workload name, for error wrapping
	mp      bool   // multi-process job (error wrapping prefix)

	done      bool
	cancelled bool
	err       error
}

// buildRunHandle mirrors Job.RunCtx's dispatch and validation exactly,
// stopping after machine construction.
func buildRunHandle(job Job) (*RunHandle, error) {
	h := &RunHandle{job: job}
	switch {
	case job.Workload != nil:
		wl := job.Workload
		if err := job.Config.validateMachine(); err != nil {
			return nil, err
		}
		if n := wl.Threads(); n <= 0 || n > job.Config.Nodes {
			return nil, fmt.Errorf("allarm: workload %q has %d threads; the machine supports [1,%d]",
				wl.Name(), n, job.Config.Nodes)
		}
		m, threads, err := buildWorkloadMachine(job.Config, wl)
		if err != nil {
			return nil, err
		}
		h.m, h.threads, h.name = m, threads, wl.Name()
	case job.MultiProcess != nil:
		m, threads, err := buildMultiProcessMachine(job.Config, *job.MultiProcess, job.Benchmark)
		if err != nil {
			return nil, err
		}
		h.m, h.threads, h.name, h.mp = m, threads, job.Benchmark, true
	default:
		if err := job.Config.Validate(); err != nil {
			return nil, err
		}
		wl, err := BenchmarkWorkload(job.Benchmark, job.Config.Threads, job.Config.AccessesPerThread)
		if err != nil {
			return nil, err
		}
		m, threads, err := buildWorkloadMachine(job.Config, wl)
		if err != nil {
			return nil, err
		}
		h.m, h.threads, h.name = m, threads, wl.Name()
	}
	return h, nil
}

// StartJob validates and builds the job's machine and begins the run.
// Drive it with Step; a completed run yields its metrics from Result.
func StartJob(job Job) (*RunHandle, error) {
	h, err := buildRunHandle(job)
	if err != nil {
		return nil, err
	}
	if err := h.m.Start(h.threads); err != nil {
		return nil, h.wrap(err)
	}
	return h, nil
}

// ResumeJob rebuilds the job's machine and loads a checkpoint written
// by Snapshot, verifying the checkpoint belongs to this exact job (and
// library version) before resuming. The simulation continues from the
// snapshotted instant: events already simulated are not re-simulated,
// and the final Result is bit-identical to an uninterrupted run.
func ResumeJob(job Job, r io.Reader) (*RunHandle, error) {
	h, err := buildRunHandle(job)
	if err != nil {
		return nil, err
	}
	meta, err := h.m.Restore(r, h.threads)
	if err != nil {
		return nil, fmt.Errorf("allarm: resume %s: %w", h.name, err)
	}
	if want := JobFingerprint(job); meta != want {
		return nil, fmt.Errorf("allarm: checkpoint belongs to a different job or version (fingerprint %s, want %s)", meta, want)
	}
	return h, nil
}

// wrap attaches the run's identity to an error, exactly as Job.RunCtx
// does ("allarm: <name> (<policy>): ..." / "allarm: multi-process ...").
func (h *RunHandle) wrap(err error) error {
	if h.mp {
		return fmt.Errorf("allarm: multi-process %s (%v): %w", h.name, h.job.Config.Policy, err)
	}
	return fmt.Errorf("allarm: %s (%v): %w", h.name, h.job.Config.Policy, err)
}

// Step advances the run by at most window simulation events (0 = run
// until completion or the machine's event budget) and reports whether
// it completed. A window boundary is a safe snapshot point. On
// cancellation Step returns the same wrapped error Job.RunCtx would,
// and Partial returns the statistics collected so far.
func (h *RunHandle) Step(ctx context.Context, window uint64) (bool, error) {
	if h.err != nil {
		return false, h.err
	}
	if h.done {
		return true, nil
	}
	done, err := h.m.StepCtx(ctx, window)
	if err != nil {
		h.err = h.wrap(err)
		h.cancelled = IsCancellation(err)
		return false, h.err
	}
	h.done = done
	return done, nil
}

// Events returns the total simulation events fired so far (across a
// resume, this includes the events of the pre-checkpoint segment — they
// were restored, not re-simulated).
func (h *RunHandle) Events() uint64 { return h.m.Fired() }

// CanSnapshot reports whether the run is at a snapshottable point: at a
// Step boundary inside the measured region, with the invariant checker
// off. During warmup it returns false; step further and retry.
func (h *RunHandle) CanSnapshot() bool {
	return !h.done && h.err == nil && h.m.CanSnapshot()
}

// Snapshot writes a checkpoint of the paused run to w, tagged with the
// job's fingerprint. The run is not perturbed; Step continues it.
func (h *RunHandle) Snapshot(w io.Writer) error {
	if h.done || h.err != nil {
		return fmt.Errorf("allarm: snapshot of a finished run")
	}
	if err := h.m.Snapshot(w, JobFingerprint(h.job)); err != nil {
		return h.wrap(err)
	}
	return nil
}

// Result finalizes a completed run (Step returned done) and returns its
// metrics, byte-identical to what Job.RunCtx returns.
func (h *RunHandle) Result() (*Result, error) {
	if !h.done {
		return nil, fmt.Errorf("allarm: Result before the run completed")
	}
	rr, err := h.m.Finish()
	if err != nil {
		return nil, h.wrap(err)
	}
	return newResult(h.name, h.job.Config.Policy, rr), nil
}

// Partial returns the statistics collected up to the abort instant of a
// cancelled run (Partial == true), matching Job.RunCtx's contract for
// cancelled jobs. It returns nil when the run was not cancelled.
func (h *RunHandle) Partial() *Result {
	if !h.cancelled {
		return nil
	}
	res := newResult(h.name, h.job.Config.Policy, h.m.Collect())
	res.Partial = true
	return res
}
