package allarm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"allarm/internal/core"
	"allarm/internal/mem"
)

// Policy names a directory allocation policy — the axis the paper
// explores. The value is a key into the package's policy registry:
// "baseline" and "allarm" reproduce the paper's two machines,
// "allarm-hyst" is the bundled deferred-allocation variant, and
// RegisterPolicy adds user schemes. The zero value means Baseline.
type Policy string

// Registered built-in policies.
const (
	// Baseline is the conventional sparse directory: allocate on any
	// miss (with clean-exclusive eviction notification, the paper's
	// "already optimized" baseline).
	Baseline Policy = "baseline"
	// ALLARM allocates only on remote misses (the paper's contribution).
	ALLARM Policy = "allarm"
	// ALLARMHyst is ALLARM with allocation hysteresis: a directory entry
	// is spent on a region's lines only from the second remote read miss
	// to that region onward; the first remote read per region (and every
	// remote write) behaves as documented on the policy. It demonstrates
	// the pluggable-policy API.
	ALLARMHyst Policy = "allarm-hyst"
)

// String implements fmt.Stringer; the zero value prints as "baseline".
func (p Policy) String() string {
	if p == "" {
		return string(Baseline)
	}
	return string(p)
}

// ParsePolicy resolves a policy name against the registry — the one
// parser all CLI flag handling shares. The empty string parses as
// Baseline; unknown names error with the registered alternatives.
func ParsePolicy(s string) (Policy, error) {
	p := Policy(s)
	if s == "" {
		p = Baseline
	}
	policyMu.RLock()
	_, ok := policyRegistry[string(p)]
	policyMu.RUnlock()
	if !ok {
		return "", fmt.Errorf("allarm: unknown policy %q (have %v)", s, RegisteredPolicies())
	}
	return p, nil
}

// RegisteredPolicies returns the registered policy names, sorted.
func RegisteredPolicies() []string {
	policyMu.RLock()
	defer policyMu.RUnlock()
	names := make([]string, 0, len(policyRegistry))
	for n := range policyRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// PolicyInfo describes one registered directory policy — the discovery
// record behind DescribePolicies, allarm-serve's GET /v1/policies and
// the CLI -list flags.
type PolicyInfo struct {
	// Name is the registry key Config.Policy selects the scheme by.
	Name string `json:"name"`
	// Builtin marks the schemes the package ships.
	Builtin bool `json:"builtin"`
	// Description is a one-line human summary; empty for user schemes
	// (RegisterPolicy records no prose).
	Description string `json:"description,omitempty"`
}

// DescribePolicies returns every registered policy sorted by name.
func DescribePolicies() []PolicyInfo {
	policyMu.RLock()
	defer policyMu.RUnlock()
	out := make([]PolicyInfo, 0, len(policyRegistry))
	for n, e := range policyRegistry {
		out = append(out, PolicyInfo{Name: n, Builtin: e.builtin, Description: e.desc})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Miss describes one demand request that missed the probe filter, for a
// DirectoryPolicy's decision.
type Miss struct {
	// Addr is the line-aligned physical address.
	Addr uint64
	// Requester and Home are the requesting and home node ids.
	Requester, Home int
	// Local reports whether the requester is in the home's affinity
	// domain (Requester == Home).
	Local bool
	// Write reports whether the request wants ownership (a store miss).
	Write bool
}

// MissAction is a DirectoryPolicy's decision for one miss.
type MissAction uint8

const (
	// Track installs a probe-filter entry for the line — the
	// conventional behaviour, always legal.
	Track MissAction = iota
	// GrantUntracked serves the miss from DRAM with no entry; the
	// requester caches the line untracked. Only legal for local misses:
	// untracked copies are discoverable solely by the home directory's
	// probe of its own core, so granting one to a remote node would
	// break coherence (the simulator panics).
	GrantUntracked
	// GrantUncached serves the miss with no entry and no fill: the
	// requester consumes the data without caching the line, so no state
	// survives anywhere and the next access to the line misses again.
	// Only legal for read misses (the simulator panics on writes).
	// Deferred-allocation schemes use it to make a line prove its
	// sharing before spending an entry on it.
	GrantUncached
)

// PolicyContext describes the directory controller a policy instance
// will serve. One instance is built per directory, so policies may keep
// per-directory state without synchronisation.
type PolicyContext struct {
	// Node is the directory's node id; Nodes the machine's node count.
	Node, Nodes int
	// InRange reports whether the configuration's ALLARMRanges enable an
	// address (always true when no ranges are configured). Policies that
	// honour the paper's boot-time range registers gate their non-Track
	// decisions on it.
	InRange func(addr uint64) bool
}

// DirectoryPolicy decides how one directory handles probe-filter misses.
// Implementations must be deterministic functions of their own state and
// the miss sequence (no wall-clock, no global mutable state): the
// simulator's reproducibility contract extends to policies. OnMiss is
// consulted exactly once per missing transaction, so stateful schemes
// are not skewed by internal retries.
type DirectoryPolicy interface {
	// OnMiss picks the action for a miss (see MissAction for legality
	// rules).
	OnMiss(m Miss) MissAction
	// ProbeLocalOnRemoteMiss reports whether a remote miss to addr must
	// query the home's own core for an untracked copy, in parallel with
	// the DRAM access. Any policy that may ever return GrantUntracked
	// for addr must return true here, or those copies become
	// undiscoverable.
	ProbeLocalOnRemoteMiss(addr uint64) bool
}

// StatefulDirectoryPolicy is optionally implemented by DirectoryPolicy
// schemes that keep mutable decision state. Implementing it makes the
// state part of machine checkpoints (see Checkpoints in README.md): a
// job snapshotted mid-run and resumed elsewhere replays the policy's
// decisions bit-identically. The serialization must be deterministic —
// same state, same bytes — because checkpoint equality is compared
// bytewise. Stateful policies that do NOT implement it cannot be
// checkpointed; resume would silently diverge, so the snapshot layer
// has no way to carry them and jobs under such policies re-simulate
// from scratch after a restart.
type StatefulDirectoryPolicy interface {
	DirectoryPolicy
	// SavePolicyState returns an opaque deterministic serialization of
	// the policy's mutable state.
	SavePolicyState() ([]byte, error)
	// LoadPolicyState overwrites the policy's mutable state with a
	// serialization produced by SavePolicyState.
	LoadPolicyState(data []byte) error
}

// PolicyFactory builds one directory's policy instance.
type PolicyFactory func(ctx PolicyContext) DirectoryPolicy

// policyEntry is one registry slot. Built-ins install native (internal)
// implementations so the compatibility contract — registry-dispatched
// "baseline" and "allarm" are bit-identical to the pre-registry enum —
// holds by construction; user registrations go through the public
// DirectoryPolicy interface.
type policyEntry struct {
	public  PolicyFactory
	native  func(node mem.NodeID, ranges *core.RangeSet) core.AllocPolicy
	desc    string
	builtin bool
}

var (
	policyMu       sync.RWMutex
	policyRegistry = map[string]policyEntry{}
)

func init() {
	policyRegistry[string(Baseline)] = policyEntry{
		native:  func(mem.NodeID, *core.RangeSet) core.AllocPolicy { return core.BaselineAlloc{} },
		desc:    "conventional sparse directory: allocate an entry on any miss",
		builtin: true,
	}
	policyRegistry[string(ALLARM)] = policyEntry{
		native:  func(_ mem.NodeID, r *core.RangeSet) core.AllocPolicy { return &core.ALLARMAlloc{Ranges: r} },
		desc:    "allocate only on remote misses; local data stays untracked (the paper)",
		builtin: true,
	}
	// The bundled extensibility proof goes through the public interface,
	// exactly like a user scheme would.
	policyRegistry[string(ALLARMHyst)] = policyEntry{
		public:  newHystPolicy,
		desc:    "ALLARM with hysteresis: a region's first remote read is served uncached",
		builtin: true,
	}
}

// RegisterPolicy adds a named allocation policy to the registry, making
// it usable everywhere a Policy goes: Config.Policy, CrossPolicies,
// ParsePolicy and the CLI tools' -policy flags. Registration is typically
// done from an init function; re-registering a name (including the
// built-ins) errors.
func RegisterPolicy(name string, factory PolicyFactory) error {
	if name == "" {
		return fmt.Errorf("allarm: policy name must be non-empty")
	}
	if factory == nil {
		return fmt.Errorf("allarm: policy %q needs a factory", name)
	}
	policyMu.Lock()
	defer policyMu.Unlock()
	if _, exists := policyRegistry[name]; exists {
		return fmt.Errorf("allarm: policy %q already registered", name)
	}
	policyRegistry[name] = policyEntry{public: factory}
	return nil
}

// MustRegisterPolicy is RegisterPolicy for init-time registration; it
// panics on error.
func MustRegisterPolicy(name string, factory PolicyFactory) {
	if err := RegisterPolicy(name, factory); err != nil {
		panic(err)
	}
}

// allocFactory resolves the policy name and lowers it to the internal
// per-directory factory the machine builder consumes.
func (c Config) allocFactory(ranges *core.RangeSet) (func(node mem.NodeID) core.AllocPolicy, error) {
	name := c.Policy.String()
	policyMu.RLock()
	e, ok := policyRegistry[name]
	policyMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("allarm: unknown policy %q (have %v)", name, RegisteredPolicies())
	}
	if e.native != nil {
		return func(node mem.NodeID) core.AllocPolicy { return e.native(node, ranges) }, nil
	}
	inRange := func(addr uint64) bool { return ranges.Enabled(mem.PAddr(addr)) }
	nodes := c.Nodes
	return func(node mem.NodeID) core.AllocPolicy {
		p := e.public(PolicyContext{Node: int(node), Nodes: nodes, InRange: inRange})
		base := allocAdapter{name: name, p: p}
		if sp, ok := p.(StatefulDirectoryPolicy); ok {
			// Only stateful schemes advertise the checkpoint codec: the
			// snapshot layer keys on the interface, and a stateless
			// adapter claiming it would bloat every checkpoint with
			// empty markers.
			return statefulAllocAdapter{allocAdapter: base, sp: sp}
		}
		return base
	}, nil
}

// allocAdapter lowers a public DirectoryPolicy to the internal
// core.AllocPolicy interface. Conversions are exact.
type allocAdapter struct {
	name string
	p    DirectoryPolicy
}

// Name implements core.AllocPolicy.
func (a allocAdapter) Name() string { return a.name }

// OnMiss implements core.AllocPolicy.
func (a allocAdapter) OnMiss(m core.MissInfo) core.MissAction {
	switch a.p.OnMiss(Miss{
		Addr:      uint64(m.Addr),
		Requester: int(m.Requester),
		Home:      int(m.Home),
		Local:     m.Local,
		Write:     m.Write,
	}) {
	case GrantUntracked:
		return core.GrantUntracked
	case GrantUncached:
		return core.GrantUncached
	default:
		return core.Track
	}
}

// ProbeLocalOnRemoteMiss implements core.AllocPolicy.
func (a allocAdapter) ProbeLocalOnRemoteMiss(addr mem.PAddr) bool {
	return a.p.ProbeLocalOnRemoteMiss(uint64(addr))
}

// statefulAllocAdapter additionally bridges a StatefulDirectoryPolicy
// to the internal checkpoint codec (core.PolicyStateCodec), so the
// policy's decision state rides along in machine snapshots.
type statefulAllocAdapter struct {
	allocAdapter
	sp StatefulDirectoryPolicy
}

// SavePolicyState implements core.PolicyStateCodec.
func (a statefulAllocAdapter) SavePolicyState() ([]byte, error) { return a.sp.SavePolicyState() }

// LoadPolicyState implements core.PolicyStateCodec.
func (a statefulAllocAdapter) LoadPolicyState(data []byte) error { return a.sp.LoadPolicyState(data) }

// RegionBytes is the granularity at which ALLARMHyst observes sharing:
// one OS page, the same granule first-touch placement works at.
const RegionBytes = mem.PageBytes

// hystPolicy implements the allarm-hyst scheme via the public API (it is
// deliberately not special-cased internally — it exercises exactly the
// surface user policies get). Local misses are served untracked like
// ALLARM. A remote read miss to a region no remote reader has touched
// before is served uncached — no entry, no copy — and only from the
// region's second remote read miss onward (or any remote write) are
// entries allocated. Regions outside the configured ranges behave like
// the baseline.
type hystPolicy struct {
	inRange func(addr uint64) bool
	seen    map[uint64]bool // regions that have seen a remote read miss
}

func newHystPolicy(ctx PolicyContext) DirectoryPolicy {
	return &hystPolicy{inRange: ctx.InRange, seen: make(map[uint64]bool)}
}

// OnMiss implements DirectoryPolicy.
func (p *hystPolicy) OnMiss(m Miss) MissAction {
	if p.inRange != nil && !p.inRange(m.Addr) {
		return Track
	}
	if m.Local {
		return GrantUntracked
	}
	if m.Write {
		return Track
	}
	region := m.Addr &^ uint64(RegionBytes-1)
	if p.seen[region] {
		return Track
	}
	p.seen[region] = true
	return GrantUncached
}

// ProbeLocalOnRemoteMiss implements DirectoryPolicy.
func (p *hystPolicy) ProbeLocalOnRemoteMiss(addr uint64) bool {
	return p.inRange == nil || p.inRange(addr)
}

// SavePolicyState implements StatefulDirectoryPolicy: the seen-region
// set, sorted so the serialization is deterministic.
func (p *hystPolicy) SavePolicyState() ([]byte, error) {
	regions := make([]uint64, 0, len(p.seen))
	for r := range p.seen {
		regions = append(regions, r)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	out := make([]byte, 0, 8+8*len(regions))
	out = binary.LittleEndian.AppendUint64(out, uint64(len(regions)))
	for _, r := range regions {
		out = binary.LittleEndian.AppendUint64(out, r)
	}
	return out, nil
}

// LoadPolicyState implements StatefulDirectoryPolicy.
func (p *hystPolicy) LoadPolicyState(data []byte) error {
	if len(data) < 8 {
		return fmt.Errorf("allarm: hysteresis state truncated (%d bytes)", len(data))
	}
	n := binary.LittleEndian.Uint64(data)
	if uint64(len(data)) != 8+8*n {
		return fmt.Errorf("allarm: hysteresis state length %d does not match %d regions", len(data), n)
	}
	p.seen = make(map[uint64]bool, n)
	for i := uint64(0); i < n; i++ {
		p.seen[binary.LittleEndian.Uint64(data[8+8*i:])] = true
	}
	return nil
}
