// Command allarm-serve runs the simulation-as-a-service daemon: a REST
// API over the sweep engine with a job queue, a bounded worker pool and
// a content-addressed result cache, so identical simulations are run
// once and served to every client.
//
// Usage:
//
//	allarm-serve                          # listen on :8347
//	allarm-serve -addr 127.0.0.1:0        # ephemeral port (printed)
//	allarm-serve -parallel 4 -cache 4096
//	allarm-serve -cache-dir /var/lib/allarm -retain 24h
//	allarm-serve -checkpoint /var/lib/allarm -grace 60s
//	allarm-serve -cache-dir /var/lib/allarm -checkpoint-interval 500000
//	                                          # machine-state checkpoints:
//	                                          # kill-resume + preemption
//	allarm-serve -auth tokens.json            # bearer-token multi-tenancy
//	allarm-serve -result-store http://store:8360/v1/objects
//	allarm-serve -object-serve                # serve this node's results
//	                                          # as the fleet object store
//
// Endpoints:
//
//	POST   /v1/sweeps               submit a sweep (benchmarks/workloads
//	                                × policies × pf_kib); returns its id
//	GET    /v1/sweeps               list sweeps
//	GET    /v1/sweeps/{id}          status and per-job progress
//	DELETE /v1/sweeps/{id}          evict a finished sweep (409 while it
//	                                is still running)
//	GET    /v1/sweeps/{id}/results  results; ?format= or Accept
//	                                negotiates json, ndjson, csv, table
//	GET    /v1/sweeps/{id}/events   live progress (Server-Sent Events)
//	GET    /v1/sweeps/{id}/timeline lifecycle timeline: accepted,
//	                                started, checkpointed, preempted,
//	                                resumed, finished (admin under -auth)
//	POST   /v1/traces               upload a captured trace; jobs
//	                                reference it as "trace:<id>"
//	GET    /v1/policies             registered directory policies
//	GET    /v1/benchmarks           benchmark presets
//	GET    /v1/version              build version (fleet skew checks)
//	GET    /v1/objects/             S3-style shared result store
//	                                (with -object-serve)
//	GET    /v1/checkpoints/{name}   pull a job's machine-state checkpoint
//	POST   /v1/checkpoints/{name}   push one (fleet migration; with
//	                                -checkpoint-interval/-checkpoint-dir)
//	GET    /healthz                 liveness (reports draining)
//	GET    /metrics                 counters: jobs run, cache hits
//	                                (memory/disk), recoveries, aborts;
//	                                ?format=prometheus for text
//	                                exposition with latency histograms
//	GET    /debug/pprof/            live CPU/heap/goroutine profiling
//	                                (admin under -auth)
//
// Every response carries an X-Allarm-Request-Id header (minted when the
// request did not send one); request logs include it, and -log-level /
// -log-format select slog verbosity and text or JSON encoding.
//
// With -cache-dir the daemon is restart-safe: every complete result is
// written through to a content-addressed disk store (keyed by the same
// Job.Key as the in-memory cache), sweep specs and trace uploads are
// persisted, and on boot unfinished sweeps re-enqueue under their
// original ids with already-computed jobs served from disk instead of
// re-simulating. -retain bounds how long finished sweeps (not their
// cached results) are kept.
//
// With -checkpoint-interval N the daemon additionally checkpoints the
// full machine state of every running simulation every N events (under
// -checkpoint-dir, default <cache-dir>/jobckpts). A killed daemon then
// resumes interrupted jobs from their latest checkpoint at boot —
// bit-identically, losing at most one interval of simulation — long
// jobs yield their worker slot to waiting work at checkpoint
// boundaries (preemption), and the /v1/checkpoints endpoints let
// allarm-router migrate in-flight jobs between shards on membership
// changes. Corrupt, truncated or version-skewed checkpoint files are
// discarded and the job re-simulates from scratch. Note the distinct
// roles: -checkpoint holds drain-time partial-result NDJSON,
// -checkpoint-dir holds resumable machine state.
//
// On SIGINT/SIGTERM the daemon drains: submissions are refused,
// in-flight sweeps get -grace to finish, and whatever is still running
// is cancelled — the cancellation reaches into the simulation event
// loop, so even a long job aborts within one event budget — with
// partial results checkpointed (fetchable until exit and written as
// <sweep-id>.ndjson under -checkpoint or <cache-dir>/checkpoints).
//
// See the "Durability & cancellation" section of README.md for the
// cache-dir layout, checkpoint format and drain semantics, and the
// "Fleet serving" section for running shards behind allarm-router.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
	"allarm/internal/server"
)

// main only translates run's status into an exit code so run's defers
// execute on every path, including signal-driven shutdown.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		addr       = flag.String("addr", ":8347", "listen address (host:port; port 0 picks one)")
		parallel   = flag.Int("parallel", 0, "simulation worker count (0 = all cores / -sim-threads)")
		simThreads = flag.Int("sim-threads", 0, "parallel event shards per simulation (0/1 = serial engine; results are bit-identical at any setting)")
		cacheSize  = flag.Int("cache", server.DefaultCacheEntries, "in-memory result cache capacity in entries")
		cacheDir   = flag.String("cache-dir", "", "directory for the persistent result store and restart recovery")
		retain     = flag.Duration("retain", 0, "evict finished sweeps this long after completion (0 = keep forever)")
		checkpoint = flag.String("checkpoint", "", "directory for drain-time partial-result checkpoints (default <cache-dir>/checkpoints)")
		ckptEvery  = flag.Uint64("checkpoint-interval", 0, "events between machine-state job checkpoints (0 = off); enables resume-after-kill and preemption")
		ckptDir    = flag.String("checkpoint-dir", "", "directory for machine-state job checkpoints (default <cache-dir>/jobckpts)")
		grace      = flag.Duration("grace", 30*time.Second, "drain grace period before in-flight sweeps are cancelled")
		authFile   = flag.String("auth", "", "JSON file of client tokens (bearer auth, rate limits, job quotas)")
		storeBase  = flag.String("result-store", "", "result store: an http(s) object endpoint or a directory (overrides <cache-dir>/results)")
		storeToken = flag.String("result-store-token", "", "bearer token for an http(s) -result-store")
		objServe   = flag.Bool("object-serve", false, "serve this node's result store to the fleet at /v1/objects/ (requires -cache-dir or a directory -result-store)")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("allarm-serve", allarm.Version)
		return 0
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-serve:", err)
		return 1
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	opts := server.Options{
		Workers:            *parallel,
		SimThreads:         *simThreads,
		CacheEntries:       *cacheSize,
		CacheDir:           *cacheDir,
		Retain:             *retain,
		CheckpointDir:      *checkpoint,
		CheckpointInterval: *ckptEvery,
		JobCheckpointDir:   *ckptDir,
		Logger:             logger,
	}
	if *authFile != "" {
		guard, err := server.LoadGuard(*authFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allarm-serve:", err)
			return 1
		}
		opts.Guard = guard
	}
	if *storeBase != "" {
		store, err := server.NewObjectStore(*storeBase, *storeToken)
		if err != nil {
			fmt.Fprintln(os.Stderr, "allarm-serve:", err)
			return 1
		}
		opts.Store = store
	}
	if *objServe {
		// Serve whatever directory backs this node's persistent tier. An
		// HTTP -result-store has no local directory to export.
		switch {
		case *storeBase != "" && !strings.HasPrefix(*storeBase, "http://") && !strings.HasPrefix(*storeBase, "https://"):
			opts.ObjectServeDir = *storeBase
		case *cacheDir != "":
			opts.ObjectServeDir = filepath.Join(*cacheDir, "results")
		default:
			fmt.Fprintln(os.Stderr, "allarm-serve: -object-serve needs -cache-dir or a directory -result-store")
			return 1
		}
	}

	srv, err := server.New(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-serve:", err)
		return 1
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-serve:", err)
		return 1
	}
	// The resolved address goes to stdout so scripts starting the daemon
	// on an ephemeral port (-addr :0) can discover where it listens.
	fmt.Printf("allarm-serve: listening on http://%s\n", ln.Addr())

	// ReadHeaderTimeout bounds slow-loris header dribble; IdleTimeout
	// reaps abandoned keep-alive connections. No overall write timeout:
	// /events streams for as long as a sweep runs.
	hs := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "allarm-serve:", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal kills immediately instead of re-draining

	logger.Info("signal received; draining", "grace", *grace)
	dctx, cancel := context.WithTimeout(context.Background(), *grace)
	defer cancel()
	srv.Drain(dctx)

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		fmt.Fprintln(os.Stderr, "allarm-serve:", err)
		return 1
	}
	logger.Info("drained; bye")
	return 0
}
