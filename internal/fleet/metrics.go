package fleet

import (
	"net/http"
	"sync/atomic"
	"time"
)

// routerMetrics are the router's internal counters.
type routerMetrics struct {
	sweepsSubmitted   atomic.Uint64
	sweepsCompleted   atomic.Uint64
	sweepsDegraded    atomic.Uint64
	sweepsRecovered   atomic.Uint64
	jobsScattered     atomic.Uint64
	jobsRequeued      atomic.Uint64
	jobsMigrated      atomic.Uint64
	shardFailures     atomic.Uint64
	membershipChanges atomic.Uint64
	tracesUploaded    atomic.Uint64
	gathers           atomic.Uint64
	gatherNs          atomic.Uint64
}

// ShardMetrics is one shard's row in the router's GET /metrics answer.
type ShardMetrics struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// Requests counts every HTTP call the router made to this shard
	// (submits, polls, streams, probes, uploads).
	Requests uint64 `json:"requests"`
	// Retries counts backoff re-attempts against this shard.
	Retries uint64 `json:"retries"`
	// JobsAssigned counts jobs placement hashed onto this shard.
	JobsAssigned uint64 `json:"jobs_assigned"`
	// UnhealthyIntervals counts completed excluded periods;
	// UnhealthySeconds totals them, including an ongoing one.
	UnhealthyIntervals uint64  `json:"unhealthy_intervals"`
	UnhealthySeconds   float64 `json:"unhealthy_seconds"`
	// Version is the shard's reported build ("" until first probed).
	Version string `json:"version,omitempty"`
}

// Metrics is the router's GET /metrics answer.
type Metrics struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	ShardsHealthy   int     `json:"shards_healthy"`
	ShardsTotal     int     `json:"shards_total"`
	SweepsSubmitted uint64  `json:"sweeps_submitted"`
	SweepsCompleted uint64  `json:"sweeps_completed"`
	// SweepsDegraded finished with at least one shard's jobs skipped.
	SweepsDegraded uint64 `json:"sweeps_degraded"`
	// SweepsRecovered were restored from the journal at boot.
	SweepsRecovered uint64 `json:"sweeps_recovered"`
	JobsScattered   uint64 `json:"jobs_scattered"`
	// JobsRequeued counts skipped jobs re-dispatched onto a new ring
	// owner after a membership change or health transition.
	JobsRequeued uint64 `json:"jobs_requeued"`
	// JobsMigrated counts in-flight jobs whose machine-state checkpoint
	// was moved to a new owner on a membership change — the new shard
	// resumed them instead of re-simulating from event zero.
	JobsMigrated uint64 `json:"jobs_migrated"`
	// ShardFailures counts shard sub-sweeps lost past the retry budget.
	ShardFailures uint64 `json:"shard_failures"`
	// MembershipChanges counts runtime shard-set mutations.
	MembershipChanges uint64 `json:"membership_changes"`
	TracesUploaded    uint64 `json:"traces_uploaded"`
	// Gathers counts completed dispatch waves (initial scatters, recovery
	// resumes and requeues); GatherSecondsTotal sums their wall time.
	Gathers            uint64         `json:"gathers"`
	GatherSecondsTotal float64        `json:"gather_seconds_total"`
	Shards             []ShardMetrics `json:"shards"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	mem := rt.mem.Load()
	m := Metrics{
		UptimeSeconds:      time.Since(rt.start).Seconds(),
		ShardsTotal:        len(mem.shards),
		SweepsSubmitted:    rt.met.sweepsSubmitted.Load(),
		SweepsCompleted:    rt.met.sweepsCompleted.Load(),
		SweepsDegraded:     rt.met.sweepsDegraded.Load(),
		SweepsRecovered:    rt.met.sweepsRecovered.Load(),
		JobsScattered:      rt.met.jobsScattered.Load(),
		JobsRequeued:       rt.met.jobsRequeued.Load(),
		JobsMigrated:       rt.met.jobsMigrated.Load(),
		ShardFailures:      rt.met.shardFailures.Load(),
		MembershipChanges:  rt.met.membershipChanges.Load(),
		TracesUploaded:     rt.met.tracesUploaded.Load(),
		Gathers:            rt.met.gathers.Load(),
		GatherSecondsTotal: float64(rt.met.gatherNs.Load()) / 1e9,
		Shards:             make([]ShardMetrics, len(mem.shards)),
	}
	for i, sh := range mem.shards {
		spans, dur := sh.unhealthyTotal(now)
		healthy := sh.isHealthy()
		if healthy {
			m.ShardsHealthy++
		}
		sh.versionMu.Lock()
		version := sh.version
		sh.versionMu.Unlock()
		m.Shards[i] = ShardMetrics{
			Name:               sh.name,
			Healthy:            healthy,
			Requests:           sh.requests.Load(),
			Retries:            sh.retries.Load(),
			JobsAssigned:       sh.jobsAssigned.Load(),
			UnhealthyIntervals: spans,
			UnhealthySeconds:   dur.Seconds(),
			Version:            version,
		}
	}
	writeJSON(w, m)
}
