package mem

import (
	"fmt"
	"sort"

	"allarm/internal/checkpoint"
)

// EncodeState writes the physical memory map's allocation state: the
// per-node bump pointers, free-frame lists (in stack order — frame
// recycling order affects future placements) and live-frame counts.
func (m *PhysMem) EncodeState(e *checkpoint.Encoder) {
	e.Section("phys")
	e.Len(m.nodes)
	e.U64(m.bytesPerNode)
	for n := 0; n < m.nodes; n++ {
		e.U64(m.next[n])
		e.U64(m.allocated[n])
		e.Len(len(m.free[n]))
		for _, pa := range m.free[n] {
			e.U64(uint64(pa))
		}
	}
}

// DecodeState overwrites the allocation state. The map must have the
// geometry the checkpoint was taken with.
func (m *PhysMem) DecodeState(d *checkpoint.Decoder) error {
	d.Expect("phys")
	nodes := d.Len(m.nodes)
	bpn := d.U64()
	if err := d.Err(); err != nil {
		return err
	}
	if nodes != m.nodes || bpn != m.bytesPerNode {
		return fmt.Errorf("mem: checkpoint geometry %d nodes × %d B, map has %d × %d",
			nodes, bpn, m.nodes, m.bytesPerNode)
	}
	for n := 0; n < m.nodes; n++ {
		m.next[n] = d.U64()
		m.allocated[n] = d.U64()
		cnt := d.Len(int(m.framesPer))
		if err := d.Err(); err != nil {
			return err
		}
		m.free[n] = m.free[n][:0]
		for i := 0; i < cnt; i++ {
			m.free[n] = append(m.free[n], PAddr(d.U64()))
		}
	}
	return d.Err()
}

// EncodeState writes one address space's translation state: the page
// table (sorted by virtual page, for a deterministic byte stream) and
// allocation statistics. The placement policy is recorded and verified
// on decode; the physical map is encoded separately by its owner.
func (as *AddressSpace) EncodeState(e *checkpoint.Encoder) {
	e.Section("space")
	e.I64(int64(as.policy))
	checkpoint.EncodeStruct(e, &as.stats)
	vps := make([]VAddr, 0, len(as.pages))
	for vp := range as.pages {
		vps = append(vps, vp)
	}
	sort.Slice(vps, func(i, j int) bool { return vps[i] < vps[j] })
	e.Len(len(vps))
	for _, vp := range vps {
		pte := as.pages[vp]
		e.U64(uint64(vp))
		e.U64(uint64(pte.frame))
		e.I64(int64(pte.home))
		e.Bool(pte.nextTouch)
	}
}

// DecodeState rebuilds the page table from a checkpoint, replacing any
// existing mappings (a restore may run after the usual pre-placement
// pass; the checkpointed state wins wholesale).
func (as *AddressSpace) DecodeState(d *checkpoint.Decoder) error {
	d.Expect("space")
	pol := Policy(d.I64())
	checkpoint.DecodeStruct(d, &as.stats)
	if err := d.Err(); err != nil {
		return err
	}
	if pol != as.policy {
		return fmt.Errorf("mem: checkpoint policy %v, space has %v", pol, as.policy)
	}
	n := d.Len(1 << 40 / PageBytes)
	if err := d.Err(); err != nil {
		return err
	}
	as.pages = make(map[VAddr]*pte, n)
	for i := 0; i < n; i++ {
		vp := VAddr(d.U64())
		p := &pte{
			frame:     PAddr(d.U64()),
			home:      NodeID(d.I64()),
			nextTouch: d.Bool(),
		}
		as.pages[vp] = p
	}
	return d.Err()
}
