package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverge at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 coincide on %d/100 draws", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := r.Uint64()
	r.Uint64()
	r.Reseed(7)
	if got := r.Uint64(); got != first {
		t.Fatalf("Reseed did not restart stream: %x vs %x", got, first)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if a, b := r.Uint64(), r.Uint64(); a == 0 && b == 0 {
		t.Fatal("seed 0 produced degenerate zero stream")
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 10, 1000, 1 << 20} {
		for i := 0; i < 200; i++ {
			if v := r.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if v := r.Float64(); v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v, want ~0.5", mean)
	}
}

func TestBoolExtremes(t *testing.T) {
	r := New(17)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	r := New(19)
	const n = 100000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if f := float64(hits) / n; math.Abs(f-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency %v", f)
	}
}

func TestExpMean(t *testing.T) {
	r := New(23)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.3 {
		t.Fatalf("Exp(10) mean %v", mean)
	}
}

func TestExpZeroMean(t *testing.T) {
	if v := New(1).Exp(0); v != 0 {
		t.Fatalf("Exp(0) = %v", v)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: counts[0]=%d counts[50]=%d", counts[0], counts[50])
	}
}

func TestZipfZeroExponentIsUniformish(t *testing.T) {
	r := New(31)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("uniform Zipf bucket %d count %d", i, c)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	p := make([]int, 50)
	r.Perm(p)
	seen := make(map[int]bool)
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

// Property: Uint64n(n) < n for arbitrary positive n.
func TestUint64nBoundProperty(t *testing.T) {
	r := New(41)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: reseeding with the same value always reproduces the stream.
func TestReseedProperty(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
