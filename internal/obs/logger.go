package obs

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds the slog.Logger every allarm binary shares, from
// the -log-level (debug|info|warn|error) and -log-format (text|json)
// flags. text is the human default; json feeds log shippers.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lvl = slog.LevelDebug
	case "", "info":
		lvl = slog.LevelInfo
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
	}
}
