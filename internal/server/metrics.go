package server

import "sync/atomic"

// metrics are the daemon's monotonic counters, exported as the flat
// expvar-style JSON object GET /metrics returns. Everything is atomic:
// counters are bumped from worker goroutines and read from handlers.
type metrics struct {
	sweepsSubmitted    atomic.Uint64
	sweepsCompleted    atomic.Uint64
	sweepsCheckpointed atomic.Uint64
	sweepsRecovered    atomic.Uint64
	sweepsDeleted      atomic.Uint64
	sweepsExpired      atomic.Uint64
	jobsRun            atomic.Uint64
	jobsAborted        atomic.Uint64
	jobErrors          atomic.Uint64
	cacheHits          atomic.Uint64
	cacheDiskHits      atomic.Uint64
	cacheMisses        atomic.Uint64
	coalesced          atomic.Uint64
	tracesUploaded     atomic.Uint64
	simEvents          atomic.Uint64
	simWallNs          atomic.Uint64
	checkpointsWritten atomic.Uint64
	checkpointBytes    atomic.Uint64
	jobsResumed        atomic.Uint64
	jobsPreempted      atomic.Uint64
}

// Metrics is the GET /metrics payload. Hit/miss/coalesced make cache
// effectiveness — including the "identical concurrent submissions run
// once" guarantee — observable from the outside; the disk-tier and
// recovery counters do the same for restart durability, and
// JobsAborted exposes how often drain actually interrupted a
// simulation mid-run.
type Metrics struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Draining           bool    `json:"draining"`
	SweepsSubmitted    uint64  `json:"sweeps_submitted"`
	SweepsActive       uint64  `json:"sweeps_active"`
	SweepsCompleted    uint64  `json:"sweeps_completed"`
	SweepsCheckpointed uint64  `json:"sweeps_checkpointed"`
	SweepsRecovered    uint64  `json:"sweeps_recovered"`
	SweepsDeleted      uint64  `json:"sweeps_deleted"`
	SweepsExpired      uint64  `json:"sweeps_expired"`
	JobsRun            uint64  `json:"jobs_run"`
	JobsAborted        uint64  `json:"jobs_aborted"`
	JobErrors          uint64  `json:"job_errors"`
	CacheHits          uint64  `json:"cache_hits"`
	CacheDiskHits      uint64  `json:"cache_disk_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	InflightCoalesced  uint64  `json:"inflight_coalesced"`
	CacheEntries       int     `json:"cache_entries"`
	CacheCapacity      int     `json:"cache_capacity"`
	DiskEntries        int     `json:"disk_entries,omitempty"`
	TracesUploaded     uint64  `json:"traces_uploaded"`
	SimEventsTotal     uint64  `json:"sim_events_total"`
	SimEventsPerSec    float64 `json:"sim_events_per_sec"`
	// Machine-state checkpointing (Options.CheckpointInterval):
	// CheckpointsWritten/CheckpointBytes count periodic job snapshots,
	// JobsResumed counts executions continued from a checkpoint instead
	// of event zero, and JobsPreempted counts long jobs that yielded
	// their pool slot to waiting work at a checkpoint boundary.
	CheckpointsWritten uint64 `json:"checkpoints_written"`
	CheckpointBytes    uint64 `json:"checkpoint_bytes"`
	JobsResumed        uint64 `json:"jobs_resumed"`
	JobsPreempted      uint64 `json:"jobs_preempted"`
}
