package allarm_test

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	allarm "allarm"
)

// cancelTestConfig is a small-but-not-trivial configuration: long
// enough that a mid-run cancellation reliably lands while the
// simulation is executing, short enough to keep the suite fast.
func cancelTestConfig() allarm.Config {
	cfg := allarm.ExperimentConfig()
	cfg.Threads = 8
	cfg.AccessesPerThread = 20_000
	return cfg
}

// marshalResult flattens a Result's exported fields for bit-identity
// comparisons (the raw per-node stats are excluded by design: they are
// not part of the serialisable surface).
func marshalResult(t *testing.T, r *allarm.Result) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunCtxCancelMidSimulation is the cancel-mid-run contract: a
// cancelled RunCtx returns promptly with a well-formed partial Result
// and a cancellation error, and re-running the same job from a clean
// start still produces the bit-identical complete result.
func TestRunCtxCancelMidSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulations")
	}
	cfg := cancelTestConfig()
	job := allarm.Job{Benchmark: "ocean-cont", Config: cfg}

	// Reference: the complete run.
	ref, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}

	// Cancel mid-flight: the abort must land while events are firing.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var (
		partial *allarm.Result
		runErr  error
	)
	start := time.Now()
	go func() {
		defer close(done)
		partial, runErr = job.RunCtx(ctx)
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("RunCtx did not return after cancellation")
	}
	elapsed := time.Since(start)

	if runErr == nil {
		t.Skip("simulation finished before the cancellation landed; nothing to assert")
	}
	if !allarm.IsCancellation(runErr) {
		t.Fatalf("err = %v, want a cancellation", runErr)
	}
	if partial == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if !partial.Partial {
		t.Fatal("partial result not marked Partial")
	}
	// Well-formed: identified, bounded by the complete run, no negative
	// or absurd values.
	if partial.Benchmark != ref.Benchmark || partial.PolicyUsed != ref.PolicyUsed {
		t.Errorf("partial identity %s/%s, want %s/%s", partial.Benchmark, partial.PolicyUsed, ref.Benchmark, ref.PolicyUsed)
	}
	if partial.RuntimeNs < 0 {
		t.Errorf("partial runtime %v < 0", partial.RuntimeNs)
	}
	if partial.Events >= ref.Events {
		t.Errorf("partial fired %d events, complete run fired %d — not partial", partial.Events, ref.Events)
	}
	if partial.Accesses > ref.Accesses {
		t.Errorf("partial issued %d accesses, complete run issued %d", partial.Accesses, ref.Accesses)
	}
	if raw := partial.Raw(); raw == nil || len(raw.PerThreadTime) != cfg.Threads {
		t.Errorf("partial raw stats malformed: %+v", raw)
	} else {
		for i, pt := range raw.PerThreadTime {
			if pt < 0 {
				t.Errorf("thread %d: negative partial time %v", i, pt)
			}
		}
	}
	// Prompt: the abort may not take anywhere near a full simulation
	// (the complete reference run took much longer than this bound).
	if elapsed > 10*time.Second {
		t.Errorf("cancelled run took %v to return", elapsed)
	}

	// Deterministic re-run from a clean start: bit-identical to the
	// reference, unperturbed by the aborted attempt.
	rerun, err := job.Run()
	if err != nil {
		t.Fatal(err)
	}
	if a, b := marshalResult(t, ref), marshalResult(t, rerun); string(a) != string(b) {
		t.Errorf("re-run after cancellation differs from reference:\n%s\n%s", a, b)
	}
}

// TestRunCtxPreCancelled: a context cancelled before the run starts
// aborts immediately with a cancellation error.
func TestRunCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := cancelTestConfig()
	wl, err := allarm.BenchmarkWorkload("ocean-cont", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatal(err)
	}
	res, err := allarm.RunCtx(ctx, cfg, wl)
	if !allarm.IsCancellation(err) {
		t.Fatalf("err = %v, want a cancellation", err)
	}
	if res != nil && !res.Partial {
		t.Fatalf("pre-cancelled run returned a non-partial result: %+v", res)
	}
}

// TestRunnerCancelDistinguishesAbortedFromSkipped: cancelling a sweep
// aborts the executing job (partial result attached) and skips the
// queued one (error only), and SweepResult.Aborted tells them apart.
func TestRunnerCancelDistinguishesAbortedFromSkipped(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second simulations")
	}
	cfg := cancelTestConfig()
	sweep := allarm.NewSweep(allarm.Job{Benchmark: "ocean-cont", Config: cfg}).
		CrossPolicies(allarm.Baseline, allarm.ALLARM)

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{})
	runner := &allarm.Runner{
		Parallelism: 1, // job 1 queues behind job 0
		Start: func(index, total int, job allarm.Job) {
			if index == 0 {
				close(started)
			}
		},
	}
	go func() {
		<-started
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	results, runErr := runner.Run(ctx, sweep)
	if !allarm.IsCancellation(runErr) {
		t.Fatalf("Run error = %v, want a cancellation", runErr)
	}
	if len(results) != 2 {
		t.Fatalf("%d results, want 2", len(results))
	}
	r0, r1 := results[0], results[1]
	if r0.Err == nil {
		t.Skip("job 0 finished before the cancellation landed; nothing to assert")
	}
	if !r0.Aborted() {
		t.Errorf("executing job not reported aborted: result=%v err=%v", r0.Result != nil, r0.Err)
	}
	if r0.Result == nil || !r0.Result.Partial {
		t.Errorf("aborted job carries no partial result")
	}
	if r1.Err == nil || r1.Result != nil || r1.Aborted() {
		t.Errorf("queued job should be skipped with error only: result=%v err=%v", r1.Result, r1.Err)
	}
}
