package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	allarm "allarm"
)

// waitJob polls until job i of the sweep reaches the given status.
func waitJob(t *testing.T, base, id string, i int, status string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := get(t, base+"/v1/sweeps/"+id)
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if i < len(v.Jobs) && v.Jobs[i].Status == status {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %q", i, status)
}

// TestRestartRecoveryByteIdentical is the acceptance criterion for
// durable serving: a daemon restarted against the same cache directory
// re-enqueues the persisted sweep under its original id, serves the
// previously computed jobs from the disk store without re-simulating,
// and the final CSV is byte-identical to a local run.
func TestRestartRecoveryByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := t.TempDir()

	// First daemon: run the sweep to completion (results land on disk).
	_, base := newTestServer(t, Options{Workers: 2, CacheDir: dir})
	sr := submit(t, base, tinySweepRequest())
	waitDone(t, base, sr.ID)
	_, csv1 := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format=csv")

	// Second daemon, same directory, with a run counter: the recovered
	// sweep must finish without a single simulation.
	var runs atomic.Int64
	_, base2 := newTestServer(t, Options{
		Workers:  2,
		CacheDir: dir,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			runs.Add(1)
			return j.RunCtx(ctx)
		},
	})
	v := waitDone(t, base2, sr.ID)
	if !v.Recovered {
		t.Errorf("recovered sweep not marked recovered: %+v", v)
	}
	if v.Status != StatusDone || v.Done != v.Total {
		t.Fatalf("recovered sweep state: %+v", v)
	}
	if got := runs.Load(); got != 0 {
		t.Errorf("%d simulations ran on recovery; all jobs were on disk", got)
	}
	_, csv2 := get(t, base2+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("recovered results differ:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
	// And they match a local run of the same sweep rendered the same way.
	direct, err := allarm.RunSweep(context.Background(), tinySweepDirect())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := (allarm.CSVEmitter{}).Emit(&want, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(csv2, want.Bytes()) {
		t.Errorf("recovered results differ from local run:\nserved:\n%s\nlocal:\n%s", csv2, want.Bytes())
	}

	m := metricsOf(t, base2)
	if m.SweepsRecovered != 1 || m.CacheDiskHits != 2 || m.JobsRun != 0 {
		t.Errorf("recovery metrics: %+v", m)
	}
}

// TestRestartReenqueuesOnlyMissingJobs kills a daemon mid-sweep (one
// job done and persisted, one interrupted) and asserts the restarted
// daemon serves the finished job from disk and re-runs only the
// missing one.
func TestRestartReenqueuesOnlyMissingJobs(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	fake := func(name string) *allarm.Result {
		return &allarm.Result{Benchmark: name, RuntimeNs: 7, Events: 3}
	}
	// Job 0 (baseline) completes; job 1 (allarm) blocks until the
	// daemon dies — exactly a SIGKILL mid-sweep.
	s1, base := newTestServer(t, Options{
		Workers:  1,
		CacheDir: dir,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			if j.Config.Policy == allarm.ALLARM {
				select {
				case <-gate:
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			return fake(j.WorkloadName()), nil
		},
	})
	sr := submit(t, base, tinySweepRequest())
	waitJob(t, base, sr.ID, 0, JobDone)
	waitJob(t, base, sr.ID, 1, JobRunning)
	s1.Close() // abrupt: no drain, like a kill -9
	close(gate)

	var runs atomic.Int64
	_, base2 := newTestServer(t, Options{
		Workers:  1,
		CacheDir: dir,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			// Only the recovered sweep's jobs are under test; the extra
			// submission at the end runs freely.
			if j.WorkloadName() == "ocean-cont" {
				runs.Add(1)
				if j.Config.Policy != allarm.ALLARM {
					t.Errorf("re-simulated job %q/%v, which was already on disk", j.WorkloadName(), j.Config.Policy)
				}
			}
			return fake(j.WorkloadName()), nil
		},
	})
	v := waitDone(t, base2, sr.ID)
	if v.Status != StatusDone || !v.Recovered {
		t.Fatalf("recovered sweep: %+v", v)
	}
	if got := runs.Load(); got != 1 {
		t.Errorf("%d jobs re-simulated after restart, want exactly the missing 1", got)
	}
	m := metricsOf(t, base2)
	if m.CacheDiskHits != 1 || m.JobsRun != 1 || m.SweepsRecovered != 1 {
		t.Errorf("metrics after partial recovery: %+v", m)
	}
	// The daemon id counter resumed past the recovered sweep: a new
	// submission must not collide with it.
	sr2 := submit(t, base2, SweepRequest{Benchmarks: []string{"barnes"}})
	if sr2.ID == sr.ID {
		t.Errorf("new sweep reused recovered id %s", sr.ID)
	}
}

// TestDrainAbortsExecutingJob: with cancellation threaded through
// Exec, a drain interrupts the running simulation (status "aborted",
// partial metrics in the checkpoint) and skips the queued one (status
// "skipped") — and the checkpoint NDJSON distinguishes the two.
func TestDrainAbortsExecutingJob(t *testing.T) {
	dir := t.TempDir()
	s, base := newTestServer(t, Options{
		Workers:  1,
		CacheDir: dir,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			<-ctx.Done() // an honest interruptible simulation: block until cancelled
			return &allarm.Result{Benchmark: j.WorkloadName(), PolicyUsed: j.Config.Policy, Events: 11, Partial: true}, ctx.Err()
		},
	})
	sr := submit(t, base, tinySweepRequest())
	waitJob(t, base, sr.ID, 0, JobRunning)

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // expired grace: cancel immediately
	start := time.Now()
	s.Drain(ctx)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("drain took %v with an interruptible job", elapsed)
	}

	v := waitDone(t, base, sr.ID)
	if v.Status != StatusCheckpointed {
		t.Fatalf("status %q, want %q", v.Status, StatusCheckpointed)
	}
	if v.Jobs[0].Status != JobAborted {
		t.Errorf("executing job status %q, want %q", v.Jobs[0].Status, JobAborted)
	}
	if v.Jobs[1].Status != JobSkipped {
		t.Errorf("queued job status %q, want %q", v.Jobs[1].Status, JobSkipped)
	}

	data, err := os.ReadFile(filepath.Join(dir, "checkpoints", sr.ID+".ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d checkpoint lines, want 2:\n%s", len(lines), data)
	}
	var aborted, skipped struct {
		Aborted  bool    `json:"aborted"`
		Error    string  `json:"error"`
		Accesses *uint64 `json:"accesses"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &aborted); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &skipped); err != nil {
		t.Fatal(err)
	}
	if !aborted.Aborted || aborted.Error == "" || aborted.Accesses == nil {
		t.Errorf("aborted checkpoint line missing aborted flag, error or partial metrics: %s", lines[0])
	}
	if skipped.Aborted || skipped.Error == "" || skipped.Accesses != nil {
		t.Errorf("skipped checkpoint line should carry the error only: %s", lines[1])
	}

	m := metricsOf(t, base)
	if m.JobsAborted != 1 {
		t.Errorf("jobs_aborted = %d, want 1", m.JobsAborted)
	}
	if m.JobErrors != 0 {
		t.Errorf("cancellations counted as job errors: %+v", m)
	}
}

// TestDeleteSweep: DELETE evicts finished sweeps (and their persisted
// files), refuses running ones, and 404s on unknowns.
func TestDeleteSweep(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	_, base := newTestServer(t, Options{
		Workers:  1,
		CacheDir: dir,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			select {
			case <-gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &allarm.Result{Benchmark: j.WorkloadName()}, nil
		},
	})
	del := func(id string) int {
		req, err := http.NewRequest(http.MethodDelete, base+"/v1/sweeps/"+id, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	sr := submit(t, base, SweepRequest{Benchmarks: []string{"barnes"}})
	waitJob(t, base, sr.ID, 0, JobRunning)
	if code := del(sr.ID); code != http.StatusConflict {
		t.Errorf("deleting a running sweep: %d, want 409", code)
	}
	close(gate)
	waitDone(t, base, sr.ID)

	spec := filepath.Join(dir, "sweeps", sr.ID+".json")
	if _, err := os.Stat(spec); err != nil {
		t.Fatalf("spec file missing before delete: %v", err)
	}
	if code := del(sr.ID); code != http.StatusNoContent {
		t.Errorf("deleting a finished sweep: %d, want 204", code)
	}
	if resp, _ := get(t, base+"/v1/sweeps/"+sr.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted sweep still served: %d", resp.StatusCode)
	}
	if _, err := os.Stat(spec); !os.IsNotExist(err) {
		t.Errorf("spec file survives delete: %v", err)
	}
	if code := del("sw-999999"); code != http.StatusNotFound {
		t.Errorf("deleting unknown sweep: %d, want 404", code)
	}
	m := metricsOf(t, base)
	if m.SweepsDeleted != 1 {
		t.Errorf("sweeps_deleted = %d, want 1", m.SweepsDeleted)
	}
}

// TestRetainEvictsFinishedSweeps: with -retain, finished sweeps (and
// their persisted specs) are evicted after the TTL while the
// content-addressed result cache keeps serving identical
// re-submissions.
func TestRetainEvictsFinishedSweeps(t *testing.T) {
	dir := t.TempDir()
	var runs atomic.Int64
	_, base := newTestServer(t, Options{
		Workers:  1,
		CacheDir: dir,
		Retain:   30 * time.Millisecond,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			runs.Add(1)
			return &allarm.Result{Benchmark: j.WorkloadName()}, nil
		},
	})
	sr := submit(t, base, SweepRequest{Benchmarks: []string{"barnes"}})
	waitDone(t, base, sr.ID)

	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, _ := get(t, base+"/v1/sweeps") // listing triggers eviction
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list: %d", resp.StatusCode)
		}
		if resp, _ := get(t, base+"/v1/sweeps/"+sr.ID); resp.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("finished sweep never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := os.Stat(filepath.Join(dir, "sweeps", sr.ID+".json")); !os.IsNotExist(err) {
		t.Errorf("expired sweep's spec file survives: %v", err)
	}
	m := metricsOf(t, base)
	if m.SweepsExpired < 1 {
		t.Errorf("sweeps_expired = %d, want >= 1", m.SweepsExpired)
	}

	// The result cache is untouched: an identical re-submission is a
	// pure cache hit.
	sr2 := submit(t, base, SweepRequest{Benchmarks: []string{"barnes"}})
	waitDone(t, base, sr2.ID)
	if got := runs.Load(); got != 1 {
		t.Errorf("re-submission after expiry re-ran the job (%d runs)", got)
	}
}

// TestTraceSweepSurvivesRestart: a sweep whose workload is an uploaded
// trace recovers after a restart because the upload itself is
// persisted under the cache directory.
func TestTraceSweepSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := t.TempDir()
	wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
		Name: "restart-trace", Threads: 2, Key: "restart-trace-v1",
		Stream: func(thread int, seed uint64) allarm.Stream {
			n := 0
			return allarm.StreamFunc(func() (allarm.Access, bool) {
				if n >= 64 {
					return allarm.Access{}, false
				}
				n++
				return allarm.Access{VAddr: uint64(0x1000*thread + 64*n), Write: n%3 == 0}, true
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := allarm.CaptureTrace(&trace, wl, 1); err != nil {
		t.Fatal(err)
	}

	s1, base := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var tr TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	sr := submit(t, base, SweepRequest{Workloads: []string{tr.Workload}})
	waitDone(t, base, sr.ID)
	_, csv1 := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	s1.Close()

	// Fresh daemon, same directory: the trace workload resolves from
	// the persisted upload and the result from the disk store.
	_, base2 := newTestServer(t, Options{Workers: 1, CacheDir: dir})
	v := waitDone(t, base2, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("recovered trace sweep: %+v", v)
	}
	_, csv2 := get(t, base2+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	if !bytes.Equal(csv1, csv2) {
		t.Errorf("trace sweep results changed across restart:\nfirst:\n%s\nsecond:\n%s", csv1, csv2)
	}
}
