package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"allarm/internal/server"
)

// newRealShard starts a backend that really simulates (no RunJob stub)
// — migration needs the genuine checkpoint-aware runner on both ends.
func newRealShard(t *testing.T, opts server.Options) *testShard {
	t.Helper()
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	sh := &testShard{srv: srv}
	inner := srv.Handler()
	sh.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sh.dead.Load() {
			http.Error(w, "shard down", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	sh.url = sh.ts.URL
	t.Cleanup(func() {
		sh.ts.Close()
		srv.Close()
	})
	return sh
}

// shardMetrics reads one backend's /metrics.
func shardMetrics(t *testing.T, sh *testShard) server.Metrics {
	t.Helper()
	_, body := get(t, sh.url+"/metrics")
	var m server.Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFleetMigratesInFlightJob is the fleet acceptance criterion for
// checkpoint migration: retiring the shard that owns a running job
// moves the job's machine-state checkpoint to the new ring owner, which
// resumes it mid-simulation instead of starting from event zero — and
// the gathered results stay byte-identical to a single-node run.
func TestFleetMigratesInFlightJob(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	req := server.SweepRequest{
		Benchmarks: []string{"ocean-cont"},
		Policies:   []string{"allarm"},
		Config:     &server.ConfigOverrides{Threads: 2, AccessesPerThread: 30_000},
	}

	// Reference: the same sweep on one standalone real daemon.
	ref := newRealShard(t, server.Options{Workers: 1})
	refID := submit(t, ref.url, req)
	waitJobStatus(t, ref.url, refID.ID)
	_, refCSV := get(t, ref.url+"/v1/sweeps/"+refID.ID+"/results?format=csv")

	// Fleet: two checkpointing shards behind a router.
	a := newRealShard(t, server.Options{Workers: 1, CacheDir: t.TempDir(), CheckpointInterval: 4096})
	b := newRealShard(t, server.Options{Workers: 1, CacheDir: t.TempDir(), CheckpointInterval: 4096})
	rt, err := New(Options{
		Shards:         []string{a.url, b.url},
		Attempts:       2,
		RetryBackoff:   5 * time.Millisecond,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		rts.Close()
		rt.Close()
	})

	sr := submit(t, rts.URL, req)

	// The single job's placement is decided at dispatch; find its owner.
	var owner, other *testShard
	deadline := time.Now().Add(10 * time.Second)
	for owner == nil {
		if time.Now().After(deadline) {
			t.Fatal("job was never placed on a shard")
		}
		_, body := get(t, rts.URL+"/v1/sweeps/"+sr.ID)
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		switch v.Jobs[0].Shard {
		case a.url:
			owner, other = a, b
		case b.url:
			owner, other = b, a
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// Wait for the owner to persist at least one machine-state checkpoint,
	// then retire it mid-job.
	for shardMetrics(t, owner).CheckpointsWritten == 0 {
		if time.Now().After(deadline) {
			t.Fatal("owner never checkpointed the running job")
		}
		time.Sleep(time.Millisecond)
	}
	if err := rt.RemoveShard(owner.url); err != nil {
		t.Fatal(err)
	}

	v := waitFleetDone(t, rts.URL, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("sweep after migration: %+v", v)
	}
	if v.Jobs[0].Shard != other.url {
		t.Errorf("job finished on %s, want new owner %s", v.Jobs[0].Shard, other.url)
	}

	// The router migrated the checkpoint and the new owner resumed from
	// it — no re-simulation from event zero.
	_, body := get(t, rts.URL+"/metrics")
	var rm Metrics
	if err := json.Unmarshal(body, &rm); err != nil {
		t.Fatal(err)
	}
	if rm.JobsMigrated == 0 {
		t.Errorf("router jobs_migrated = 0, want >= 1")
	}
	if m := shardMetrics(t, other); m.JobsResumed == 0 {
		t.Errorf("new owner jobs_resumed = 0: it re-simulated from scratch")
	}

	// The merged timeline records the migration and the new owner's
	// resume (the departed shard's own events are unreachable — it left
	// the fleet — so the router-side record is what survives).
	tv := fleetTimeline(t, rts.URL, sr.ID)
	if !hasEvent(tv.Events, "migrated") {
		t.Errorf("merged timeline has no migrated event: %+v", tv.Events)
	}
	if !hasEvent(tv.Events, "resumed") {
		t.Errorf("merged timeline has no resumed event from the new owner: %+v", tv.Events)
	}

	// Byte-identity across migration: the fleet's gathered CSV matches
	// the uninterrupted single-node run.
	_, csv := get(t, rts.URL+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	if !bytes.Equal(csv, refCSV) {
		t.Errorf("migrated fleet results differ from single node:\n%s\nvs\n%s", csv, refCSV)
	}
}

// waitJobStatus polls a backend daemon (not the router) until its sweep
// is done.
func waitJobStatus(t *testing.T, base, id string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		_, body := get(t, base+"/v1/sweeps/"+id)
		var v server.SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == server.StatusDone {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("single-node sweep did not finish")
}
