package allarm_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	allarm "allarm"
)

// fabricatedResults builds a two-row sweep outcome by hand (one success,
// one failed job) so emitter goldens don't depend on the simulator.
func fabricatedResults() []allarm.SweepResult {
	cfg := allarm.Config{Threads: 16, PFBytes: 128 << 10, Seed: 1, Policy: allarm.ALLARM}
	ok := allarm.SweepResult{
		Job: allarm.Job{Benchmark: "barnes", Config: cfg},
		Result: &allarm.Result{
			Benchmark:  "barnes",
			PolicyUsed: allarm.ALLARM,
			RuntimeNs:  1234.5,
			Accesses:   32000,
			PFAllocs:   100,
			// Zero on purpose: ALLARM eliminating every eviction is the
			// paper's headline case and must survive serialisation.
			PFEvictions:     0,
			EvictionMsgs:    40,
			L2Misses:        500,
			NoCBytes:        65536,
			NoCMessages:     900,
			LocalRequests:   700,
			RemoteRequests:  300,
			LocalProbes:     50,
			ProbesHidden:    45,
			UntrackedGrants: 600,
			NoCEnergyPJ:     1000.4,
			PFEnergyPJ:      200.8,
		},
	}
	badCfg := cfg
	badCfg.Policy = allarm.Baseline
	bad := allarm.SweepResult{
		Job: allarm.Job{Benchmark: "no-such", Config: badCfg},
		Err: errors.New("allarm: unknown benchmark \"no-such\""),
	}
	return []allarm.SweepResult{ok, bad}
}

func TestCSVEmitterGolden(t *testing.T) {
	var sb strings.Builder
	if err := (allarm.CSVEmitter{}).Emit(&sb, fabricatedResults()); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"benchmark,policy,threads,copies,pf_kib,seed,error,runtime_ns,accesses,pf_allocs,pf_evictions,eviction_msgs,l2_misses,noc_bytes,noc_msgs,local_reqs,remote_reqs,local_probes,probes_hidden,untracked_grants,uncached_grants,noc_energy_pj,pf_energy_pj",
		"barnes,allarm,16,0,128,1,,1234.5,32000,100,0,40,500,65536,900,700,300,50,45,600,0,1000.4,200.8",
		"no-such,baseline,16,0,128,1,\"allarm: unknown benchmark \"\"no-such\"\"\",0.0,0,0,0,0,0,0,0,0,0,0,0,0,0,0.0,0.0",
		"",
	}, "\n")
	if sb.String() != want {
		t.Fatalf("CSV output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestJSONEmitterGolden(t *testing.T) {
	var sb strings.Builder
	if err := (allarm.JSONEmitter{}).Emit(&sb, fabricatedResults()); err != nil {
		t.Fatal(err)
	}
	var recs []map[string]interface{}
	if err := json.Unmarshal([]byte(sb.String()), &recs); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if len(recs) != 2 {
		t.Fatalf("%d records, want 2", len(recs))
	}
	r := recs[0]
	if r["benchmark"] != "barnes" || r["policy"] != "allarm" {
		t.Fatalf("record 0 ids wrong: %v", r)
	}
	if r["runtime_ns"] != 1234.5 || r["pf_kib"] != float64(128) || r["untracked_grants"] != float64(600) {
		t.Fatalf("record 0 metrics wrong: %v", r)
	}
	// A legitimately zero metric must be present (0), not omitted.
	if v, present := r["pf_evictions"]; !present || v != float64(0) {
		t.Fatalf("zero metric dropped from JSON: %v", r)
	}
	if _, present := r["error"]; present {
		t.Fatal("successful record carries an error field")
	}
	if recs[1]["error"] != "allarm: unknown benchmark \"no-such\"" {
		t.Fatalf("record 1 error wrong: %v", recs[1])
	}
	if _, present := recs[1]["runtime_ns"]; present {
		t.Fatal("failed record carries metrics")
	}
}

func TestNDJSONEmitterGolden(t *testing.T) {
	var sb strings.Builder
	if err := (allarm.NDJSONEmitter{}).Emit(&sb, fabricatedResults()); err != nil {
		t.Fatal(err)
	}
	// One self-contained JSON object per line, keys exactly as
	// JSONEmitter writes them (failed jobs omit the metric keys; the
	// legitimately zero pf_evictions survives).
	want := strings.Join([]string{
		`{"benchmark":"barnes","policy":"allarm","threads":16,"pf_kib":128,"seed":1,"runtime_ns":1234.5,"accesses":32000,"pf_allocs":100,"pf_evictions":0,"eviction_msgs":40,"l2_misses":500,"noc_bytes":65536,"noc_msgs":900,"local_reqs":700,"remote_reqs":300,"local_probes":50,"probes_hidden":45,"untracked_grants":600,"uncached_grants":0,"noc_energy_pj":1000.4,"pf_energy_pj":200.8}`,
		`{"benchmark":"no-such","policy":"baseline","threads":16,"pf_kib":128,"seed":1,"error":"allarm: unknown benchmark \"no-such\""}`,
		"",
	}, "\n")
	if sb.String() != want {
		t.Fatalf("NDJSON output:\n%s\nwant:\n%s", sb.String(), want)
	}
	// Every line must be independently parseable (the streaming
	// property the format exists for).
	for i, line := range strings.Split(strings.TrimRight(sb.String(), "\n"), "\n") {
		var rec map[string]interface{}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d is not standalone JSON: %v\n%s", i, err, line)
		}
	}
}

// TestEmitAbortedRecord: a job cancelled mid-simulation (partial
// Result + cancellation error) is emitted with "aborted":true and its
// partial metrics alongside the error — the checkpoint NDJSON contract
// — while plain failures and successes are unchanged.
func TestEmitAbortedRecord(t *testing.T) {
	cfg := allarm.Config{Threads: 16, PFBytes: 128 << 10, Seed: 1, Policy: allarm.Baseline}
	aborted := allarm.SweepResult{
		Job: allarm.Job{Benchmark: "barnes", Config: cfg},
		Result: &allarm.Result{
			Benchmark:  "barnes",
			PolicyUsed: allarm.Baseline,
			RuntimeNs:  99.5,
			Accesses:   1200,
			Partial:    true,
		},
		Err: fmt.Errorf("allarm: barnes (baseline): %w", context.Canceled),
	}
	if !aborted.Aborted() {
		t.Fatal("fixture not recognised as aborted")
	}
	skipped := allarm.SweepResult{
		Job: allarm.Job{Benchmark: "x264", Config: cfg},
		Err: context.Canceled,
	}

	var sb strings.Builder
	if err := (allarm.NDJSONEmitter{}).Emit(&sb, []allarm.SweepResult{aborted, skipped}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2:\n%s", len(lines), sb.String())
	}
	var a, s map[string]interface{}
	if err := json.Unmarshal([]byte(lines[0]), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &s); err != nil {
		t.Fatal(err)
	}
	if a["aborted"] != true {
		t.Errorf("aborted record missing aborted flag: %v", a)
	}
	if a["error"] == "" || a["error"] == nil {
		t.Errorf("aborted record missing error: %v", a)
	}
	if a["runtime_ns"] != 99.5 || a["accesses"] != float64(1200) {
		t.Errorf("aborted record lost its partial metrics: %v", a)
	}
	if _, present := s["aborted"]; present {
		t.Errorf("skipped record carries an aborted flag: %v", s)
	}
	if _, present := s["runtime_ns"]; present {
		t.Errorf("skipped record carries metrics: %v", s)
	}

	// The CSV column set is unchanged: aborted rows render their partial
	// metrics with the error column, no extra column.
	sb.Reset()
	if err := (allarm.CSVEmitter{}).Emit(&sb, []allarm.SweepResult{aborted}); err != nil {
		t.Fatal(err)
	}
	csvLines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	if !strings.Contains(csvLines[1], "99.5") || !strings.Contains(csvLines[1], "context canceled") {
		t.Errorf("aborted CSV row: %s", csvLines[1])
	}
	if got, want := strings.Count(csvLines[1], ","), strings.Count(csvLines[0], ","); got != want {
		t.Errorf("aborted CSV row has %d separators, header has %d", got, want)
	}
}

func TestJSONEmitterIndent(t *testing.T) {
	var sb strings.Builder
	if err := (allarm.JSONEmitter{Indent: true}).Emit(&sb, fabricatedResults()); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(sb.String(), "[\n  {\n") {
		t.Fatalf("indented output not pretty-printed:\n%s", sb.String())
	}
}

func TestTableEmitterGolden(t *testing.T) {
	var sb strings.Builder
	if err := (&allarm.TableEmitter{}).Emit(&sb, fabricatedResults()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "benchmark | policy") {
		t.Fatalf("table header wrong:\n%s", out)
	}
	for _, want := range []string{"barnes", "allarm", "1234.5", "no-such", "unknown benchmark"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestTableEmitterReferenceSpeedup(t *testing.T) {
	results := fabricatedResults()[:1]
	ref := &allarm.Result{RuntimeNs: 2469.0} // exactly 2x the row's runtime
	e := &allarm.TableEmitter{
		Reference: func(allarm.SweepResult) *allarm.Result { return ref },
	}
	var sb strings.Builder
	if err := e.Emit(&sb, results); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "speedup") || !strings.Contains(out, "2.000") {
		t.Fatalf("speedup column missing:\n%s", out)
	}
	if !strings.Contains(out, "geomean") {
		t.Fatalf("geomean row missing:\n%s", out)
	}
}
