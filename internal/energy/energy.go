// Package energy provides the McPAT-substitute dynamic-energy and area
// models for the probe filter and the on-chip network (32 nm, matching
// the paper's §III-A3 methodology).
//
// The paper reports *normalised* dynamic energy, which depends only on
// event counts × per-event energies; the per-event coefficients here are
// representative 32 nm magnitudes, and since both policies share them,
// every normalised result is coefficient-independent up to the NoC/PF
// split.
package energy

import (
	"math"

	"allarm/internal/core"
	"allarm/internal/dram"
	"allarm/internal/noc"
)

// Coefficients are per-event dynamic energies in picojoules.
type Coefficients struct {
	// PFRead and PFWrite are per probe-filter tag-array access; an
	// eviction costs one extra read (victim read-out) plus the
	// replacement write, already counted by the probe-filter statistics.
	PFRead, PFWrite float64
	// FlitLink is per flit per link traversal; FlitRouter per flit per
	// router crossing.
	FlitLink, FlitRouter float64
	// DRAMAccess is per line read/write at a memory controller (reported
	// for completeness; not part of the paper's figures).
	DRAMAccess float64
}

// Default32nm returns representative 32 nm coefficients (magnitudes from
// McPAT/Orion-class models: SRAM array access tens of pJ, link/router
// traversal a few pJ per flit).
func Default32nm() Coefficients {
	return Coefficients{
		PFRead:     18.0,
		PFWrite:    22.0,
		FlitLink:   2.6,
		FlitRouter: 1.9,
		DRAMAccess: 2100.0,
	}
}

// Breakdown is the dynamic energy of one simulation, in picojoules.
type Breakdown struct {
	NoC  float64
	PF   float64
	DRAM float64
}

// Total returns the summed dynamic energy.
func (b Breakdown) Total() float64 { return b.NoC + b.PF + b.DRAM }

// Compute evaluates the model over one run's statistics.
func Compute(n noc.Stats, pf []core.PFStats, dr []dram.Stats, c Coefficients) Breakdown {
	var b Breakdown
	b.NoC = float64(n.FlitHops)*c.FlitLink + float64(n.RouterXings)*c.FlitRouter
	for _, s := range pf {
		b.PF += float64(s.Reads)*c.PFRead + float64(s.Writes)*c.PFWrite
	}
	for _, s := range dr {
		b.DRAM += float64(s.Reads+s.Writes) * c.DRAMAccess
	}
	return b
}

// PFAreaMM2 models the probe filter's die area (mm²) as a function of its
// coverage in bytes, calibrated against the paper's McPAT table:
//
//	PF size   512 KiB  256 KiB  128 KiB  64 KiB  32 KiB
//	paper     70.89    26.95    19.90    8.20    5.93
//
// A power law area = a·entries^b fitted on the published endpoints
// (b ≈ 0.896) reproduces the table within the paper's own scatter; the
// published numbers are not monotone in ratio because McPAT re-banks the
// array at each size, which a closed-form model deliberately smooths.
func PFAreaMM2(coverageBytes int) float64 {
	entries := float64(coverageBytes) / 64.0
	const (
		a = 0.02205
		b = 0.896
	)
	return a * math.Pow(entries, b)
}

// PaperPFAreaMM2 returns the paper's published McPAT area for the five
// evaluated probe-filter sizes (0 for other sizes), for side-by-side
// reporting in the area experiment.
func PaperPFAreaMM2(coverageBytes int) float64 {
	switch coverageBytes {
	case 512 * 1024:
		return 70.89
	case 256 * 1024:
		return 26.95
	case 128 * 1024:
		return 19.90
	case 64 * 1024:
		return 8.20
	case 32 * 1024:
		return 5.93
	default:
		return 0
	}
}
