package core

import (
	"testing"
	"testing/quick"

	"allarm/internal/mem"
)

func line(i int) mem.PAddr { return mem.PAddr(i * mem.LineBytes) }

func TestProbeFilterLookupAllocRemove(t *testing.T) {
	pf := NewProbeFilter(32<<10, 4) // 512 entries
	if pf.Lookup(line(1)) != nil {
		t.Fatal("lookup hit in empty filter")
	}
	if _, evicted, ok := pf.Alloc(line(1), EntryEM, 3, nil); !ok || evicted {
		t.Fatal("alloc failed")
	}
	e := pf.Lookup(line(1))
	if e == nil || e.State != EntryEM || e.Owner != 3 {
		t.Fatalf("entry %+v", e)
	}
	if !pf.Remove(line(1)) {
		t.Fatal("remove failed")
	}
	if pf.Remove(line(1)) {
		t.Fatal("double remove succeeded")
	}
	s := pf.Stats()
	if s.Allocs != 1 || s.Deallocs != 1 || s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
}

func TestProbeFilterEvictsLRU(t *testing.T) {
	pf := NewProbeFilter(2*mem.LineBytes, 2) // 1 set, 2 ways
	pf.Alloc(line(0), EntryEM, 0, nil)
	pf.Alloc(line(1), EntryEM, 0, nil)
	pf.Lookup(line(0)) // refresh
	v, evicted, ok := pf.Alloc(line(2), EntryS, 0, nil)
	if !ok || !evicted || v.Addr != line(1) {
		t.Fatalf("victim %+v (evicted %v)", v, evicted)
	}
	if pf.Stats().Evictions != 1 {
		t.Fatal("eviction not counted")
	}
}

func TestProbeFilterSkipsBusyVictims(t *testing.T) {
	pf := NewProbeFilter(2*mem.LineBytes, 2)
	pf.Alloc(line(0), EntryEM, 0, nil)
	pf.Alloc(line(1), EntryEM, 0, nil)
	busy := func(a mem.PAddr) bool { return a == line(1) } // LRU one is busy
	v, evicted, ok := pf.Alloc(line(2), EntryS, 0, busy)
	if !ok || !evicted || v.Addr != line(0) {
		t.Fatalf("victim %+v, want the non-busy line 0", v)
	}
}

func TestProbeFilterAllWaysBusy(t *testing.T) {
	pf := NewProbeFilter(2*mem.LineBytes, 2)
	pf.Alloc(line(0), EntryEM, 0, nil)
	pf.Alloc(line(1), EntryEM, 0, nil)
	busy := func(mem.PAddr) bool { return true }
	if _, _, ok := pf.Alloc(line(2), EntryS, 0, busy); ok {
		t.Fatal("alloc succeeded with every way busy")
	}
	// Nothing changed.
	if pf.Occupancy() != 2 || pf.Peek(line(2)) != nil {
		t.Fatal("failed alloc mutated the filter")
	}
}

func TestProbeFilterUpdate(t *testing.T) {
	pf := NewProbeFilter(32<<10, 4)
	pf.Alloc(line(5), EntryEM, 1, nil)
	pf.Update(line(5), EntryO, 2)
	e := pf.Peek(line(5))
	if e.State != EntryO || e.Owner != 2 {
		t.Fatalf("entry %+v", e)
	}
}

func TestProbeFilterOccupancyInvariant(t *testing.T) {
	pf := NewProbeFilter(4<<10, 4) // 64 entries
	f := func(ops []uint16) bool {
		for _, op := range ops {
			a := line(int(op % 256))
			if pf.Peek(a) == nil {
				pf.Alloc(a, EntryS, 0, nil)
			} else if op%3 == 0 {
				pf.Remove(a)
			} else {
				pf.Lookup(a)
			}
		}
		// Occupancy bounded; no duplicate tags.
		seen := map[mem.PAddr]bool{}
		dup := false
		pf.ForEachValid(func(e Entry) {
			if seen[e.Addr] {
				dup = true
			}
			seen[e.Addr] = true
		})
		return !dup && pf.Occupancy() <= 64
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEntryStateString(t *testing.T) {
	if EntryEM.String() != "EM" || EntryO.String() != "O" || EntryS.String() != "S" {
		t.Fatal("EntryState.String wrong")
	}
}

func TestPolicyString(t *testing.T) {
	if Baseline.String() != "baseline" || ALLARM.String() != "allarm" {
		t.Fatal("Policy.String wrong")
	}
}

func TestRangeSetNilEnablesAll(t *testing.T) {
	var s *RangeSet
	if !s.Enabled(0x1234) {
		t.Fatal("nil set should enable everything")
	}
	empty, err := NewRangeSet()
	if err != nil {
		t.Fatal(err)
	}
	if !empty.Enabled(0x999) {
		t.Fatal("empty set should enable everything")
	}
}

func TestRangeSetBounds(t *testing.T) {
	s, err := NewRangeSet(AddrRange{Start: 0x1000, End: 0x2000})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		a    mem.PAddr
		want bool
	}{
		{0x0fff, false}, {0x1000, true}, {0x1fff, true}, {0x2000, false},
	}
	for _, c := range cases {
		if got := s.Enabled(c.a); got != c.want {
			t.Fatalf("Enabled(%#x) = %v", uint64(c.a), got)
		}
	}
}

func TestRangeSetMergesOverlaps(t *testing.T) {
	s, err := NewRangeSet(
		AddrRange{Start: 0x3000, End: 0x4000},
		AddrRange{Start: 0x1000, End: 0x2000},
		AddrRange{Start: 0x1800, End: 0x3000},
	)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("merged to %d ranges, want 1", s.Len())
	}
	if !s.Enabled(0x2800) || s.Enabled(0x4000) {
		t.Fatal("merged range bounds wrong")
	}
}

func TestRangeSetRejectsInverted(t *testing.T) {
	if _, err := NewRangeSet(AddrRange{Start: 5, End: 5}); err == nil {
		t.Fatal("empty range accepted")
	}
	if _, err := NewRangeSet(AddrRange{Start: 9, End: 2}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestRangeSetProperty(t *testing.T) {
	s, err := NewRangeSet(
		AddrRange{Start: 0x1000, End: 0x2000},
		AddrRange{Start: 0x8000, End: 0x9000},
	)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		a := mem.PAddr(raw)
		want := (a >= 0x1000 && a < 0x2000) || (a >= 0x8000 && a < 0x9000)
		return s.Enabled(a) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProbeFilterGeometry(t *testing.T) {
	pf := NewProbeFilter(512<<10, 4)
	if pf.Entries() != 8192 || pf.CoverageBytes() != 512<<10 || pf.Ways() != 4 {
		t.Fatalf("geometry: %d entries, %d bytes", pf.Entries(), pf.CoverageBytes())
	}
}

func TestProbeFilterBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewProbeFilter(3*mem.LineBytes, 2) // set count not a power of two
}

func TestBuiltinAllocPolicies(t *testing.T) {
	local := MissInfo{Addr: line(1), Requester: 2, Home: 2, Local: true}
	remote := MissInfo{Addr: line(1), Requester: 3, Home: 2, Local: false}

	base := NewAllocPolicy(Baseline, nil)
	if base.Name() != "baseline" {
		t.Fatalf("name %q", base.Name())
	}
	if base.OnMiss(local) != Track || base.OnMiss(remote) != Track {
		t.Fatal("baseline must always track")
	}
	if base.ProbeLocalOnRemoteMiss(line(1)) {
		t.Fatal("baseline never probes the local core")
	}

	al := NewAllocPolicy(ALLARM, nil)
	if al.Name() != "allarm" {
		t.Fatalf("name %q", al.Name())
	}
	if al.OnMiss(local) != GrantUntracked || al.OnMiss(remote) != Track {
		t.Fatal("allarm decisions wrong")
	}
	if !al.ProbeLocalOnRemoteMiss(line(1)) {
		t.Fatal("allarm must probe on remote misses")
	}

	// Range registers gate both the untracked grant and the probe.
	rs, err := NewRangeSet(AddrRange{Start: line(100), End: line(200)})
	if err != nil {
		t.Fatal(err)
	}
	ranged := NewAllocPolicy(ALLARM, rs)
	if ranged.OnMiss(local) != Track || ranged.ProbeLocalOnRemoteMiss(line(1)) {
		t.Fatal("out-of-range address not treated as baseline")
	}
	in := local
	in.Addr = line(150)
	if ranged.OnMiss(in) != GrantUntracked || !ranged.ProbeLocalOnRemoteMiss(line(150)) {
		t.Fatal("in-range address lost ALLARM behaviour")
	}
}

func TestMissActionString(t *testing.T) {
	for want, a := range map[string]MissAction{
		"track": Track, "grant-untracked": GrantUntracked, "grant-uncached": GrantUncached,
	} {
		if a.String() != want {
			t.Fatalf("%v prints %q", a, a.String())
		}
	}
}
