// Package trace provides a compact binary format for memory-access
// traces: capture a workload's stream once and replay it later (or feed
// externally collected traces into the simulator).
//
// Format (little-endian):
//
//	header:  magic "ALTR" | u16 version | u16 reserved | u32 threads
//	record:  u8 flags (bit0 = write) | u8 thread | u16 thinkNs | u64 vaddr
//
// The format is deliberately simple — fixed 12-byte records — so traces
// can be mmap-scanned by external tools.
package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"allarm/internal/mem"
	"allarm/internal/sim"
	"allarm/internal/workload"
)

// Magic identifies a trace stream.
var Magic = [4]byte{'A', 'L', 'T', 'R'}

// Version is the current format version.
const Version = 1

// recordBytes is the fixed wire size of one record.
const recordBytes = 12

// Record is one traced access.
type Record struct {
	Thread int
	Access workload.Access
}

// Writer encodes trace records.
type Writer struct {
	w       *bufio.Writer
	threads int
	wrote   uint64
}

// NewWriter writes a trace header for the given thread count.
func NewWriter(w io.Writer, threads int) (*Writer, error) {
	if threads <= 0 || threads > 255 {
		return nil, fmt.Errorf("trace: thread count %d out of range [1,255]", threads)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint16(hdr[0:], Version)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(threads))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	return &Writer{w: bw, threads: threads}, nil
}

// Write appends one record.
func (w *Writer) Write(r Record) error {
	if r.Thread < 0 || r.Thread >= w.threads {
		return fmt.Errorf("trace: thread %d out of range [0,%d)", r.Thread, w.threads)
	}
	var buf [recordBytes]byte
	if r.Access.Write {
		buf[0] = 1
	}
	buf[1] = byte(r.Thread)
	thinkNs := r.Access.Think / sim.Nanosecond
	if thinkNs > 0xffff {
		thinkNs = 0xffff
	}
	binary.LittleEndian.PutUint16(buf[2:], uint16(thinkNs))
	binary.LittleEndian.PutUint64(buf[4:], uint64(r.Access.VAddr))
	_, err := w.w.Write(buf[:])
	w.wrote++
	return err
}

// Records returns the number of records written.
func (w *Writer) Records() uint64 { return w.wrote }

// Flush flushes buffered records to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// Reader decodes trace records.
type Reader struct {
	r       *bufio.Reader
	threads int
}

// NewReader validates the header and returns a reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("trace: bad magic %q", magic[:])
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if v := binary.LittleEndian.Uint16(hdr[0:]); v != Version {
		return nil, fmt.Errorf("trace: unsupported version %d", v)
	}
	threads := int(binary.LittleEndian.Uint32(hdr[4:]))
	if threads <= 0 || threads > 255 {
		return nil, fmt.Errorf("trace: corrupt thread count %d", threads)
	}
	return &Reader{r: br, threads: threads}, nil
}

// Threads returns the trace's thread count.
func (r *Reader) Threads() int { return r.threads }

// Read returns the next record, or io.EOF at the end of the trace.
func (r *Reader) Read() (Record, error) {
	var buf [recordBytes]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return Record{}, fmt.Errorf("trace: truncated record: %w", err)
		}
		return Record{}, err
	}
	thread := int(buf[1])
	if thread >= r.threads {
		return Record{}, fmt.Errorf("trace: record thread %d out of range", thread)
	}
	return Record{
		Thread: thread,
		Access: workload.Access{
			VAddr: mem.VAddr(binary.LittleEndian.Uint64(buf[4:])),
			Write: buf[0]&1 != 0,
			Think: sim.Time(binary.LittleEndian.Uint16(buf[2:])) * sim.Nanosecond,
		},
	}, nil
}

// Capture drains a workload's streams into the writer, interleaving
// threads round-robin (the interleaving does not matter for replay:
// records carry their thread).
func Capture(w *Writer, wl workload.Workload, seed uint64) error {
	streams := make([]workload.Stream, wl.Threads())
	for t := range streams {
		streams[t] = wl.Stream(t, seed)
	}
	live := len(streams)
	for live > 0 {
		live = 0
		for t, s := range streams {
			if s == nil {
				continue
			}
			acc, ok := s.Next()
			if !ok {
				streams[t] = nil
				continue
			}
			live++
			if err := w.Write(Record{Thread: t, Access: acc}); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// Replay loads an entire trace and exposes per-thread streams that
// implement workload.Stream, for feeding a captured trace back into the
// simulator.
type Replay struct {
	threads int
	perThr  [][]workload.Access
}

// LoadReplay reads all records from r.
func LoadReplay(r *Reader) (*Replay, error) {
	rp := &Replay{threads: r.Threads(), perThr: make([][]workload.Access, r.Threads())}
	for {
		rec, err := r.Read()
		if err == io.EOF {
			return rp, nil
		}
		if err != nil {
			return nil, err
		}
		rp.perThr[rec.Thread] = append(rp.perThr[rec.Thread], rec.Access)
	}
}

// Threads returns the replay's thread count.
func (rp *Replay) Threads() int { return rp.threads }

// Records returns the total record count.
func (rp *Replay) Records() int {
	n := 0
	for _, accs := range rp.perThr {
		n += len(accs)
	}
	return n
}

// Stream returns thread t's replay stream.
func (rp *Replay) Stream(t int) workload.Stream {
	return &replayStream{accs: rp.perThr[t]}
}

type replayStream struct {
	accs []workload.Access
	i    int
}

// Next implements workload.Stream.
func (s *replayStream) Next() (workload.Access, bool) {
	if s.i >= len(s.accs) {
		return workload.Access{}, false
	}
	a := s.accs[s.i]
	s.i++
	return a, true
}
