package allarm

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"allarm/internal/stats"
)

// Emitter renders the results of a sweep. The built-in emitters —
// TableEmitter, CSVEmitter, JSONEmitter and NDJSONEmitter — share one
// flat Record per job (spec fields plus the Result metrics), so the
// same sweep can feed a terminal, a spreadsheet or a downstream tool
// without re-running. Every built-in emitter also implements
// RecordEmitter: rendering pre-flattened Records (for example rows
// gathered from several allarm-serve shards by allarm-router) goes
// through exactly the same code path as rendering live results, so the
// two are byte-identical by construction.
type Emitter interface {
	Emit(w io.Writer, results []SweepResult) error
}

// RecordEmitter renders pre-flattened Records — the merge seam for
// consumers that hold rows rather than live SweepResults (allarm-router
// gathers per-shard NDJSON into Records and re-renders them in global
// spec order). All built-in emitters implement it, and their Emit is
// defined as EmitRecords over RecordsOf, which is what guarantees
// gathered output matches single-node output byte for byte.
type RecordEmitter interface {
	Emitter
	EmitRecords(w io.Writer, recs []Record) error
}

// sweepColumns are the emitted fields, in order. Table and CSV output
// use exactly these headers; JSON uses their snake_case tags below.
var sweepColumns = []string{
	"benchmark", "policy", "threads", "copies", "pf_kib", "seed", "error",
	"runtime_ns", "accesses", "pf_allocs", "pf_evictions", "eviction_msgs",
	"l2_misses", "noc_bytes", "noc_msgs", "local_reqs", "remote_reqs",
	"local_probes", "probes_hidden", "untracked_grants", "uncached_grants",
	"noc_energy_pj", "pf_energy_pj",
}

// Record is the flat serialisable view of one SweepResult — the row
// every emitter renders and the unit allarm-router ships between fleet
// nodes. The metrics are an embedded pointer so JSON keeps legitimate
// zeros on successful runs (ALLARM eliminating every eviction must read
// as "pf_evictions": 0) while failed jobs omit the metric keys entirely;
// ReadRecords round-trips both cases losslessly.
type Record struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	Threads   int    `json:"threads"`
	Copies    int    `json:"copies,omitempty"`
	PFKiB     int    `json:"pf_kib"`
	Seed      uint64 `json:"seed"`
	Error     string `json:"error,omitempty"`
	// Aborted marks a job cancelled mid-simulation (drain, Ctrl-C): the
	// error explains the cancellation and the metrics, when present, are
	// the partial counts up to the abort instant. Only JSON-based
	// emitters carry the flag (checkpoint NDJSON in particular); the
	// CSV/table column set is unchanged.
	Aborted bool `json:"aborted,omitempty"`

	*RecordMetrics
}

// RecordMetrics are the per-run measurements, present only when the job
// produced a Result.
type RecordMetrics struct {
	RuntimeNs       float64 `json:"runtime_ns"`
	Accesses        uint64  `json:"accesses"`
	PFAllocs        uint64  `json:"pf_allocs"`
	PFEvictions     uint64  `json:"pf_evictions"`
	EvictionMsgs    uint64  `json:"eviction_msgs"`
	L2Misses        uint64  `json:"l2_misses"`
	NoCBytes        uint64  `json:"noc_bytes"`
	NoCMessages     uint64  `json:"noc_msgs"`
	LocalRequests   uint64  `json:"local_reqs"`
	RemoteRequests  uint64  `json:"remote_reqs"`
	LocalProbes     uint64  `json:"local_probes"`
	ProbesHidden    uint64  `json:"probes_hidden"`
	UntrackedGrants uint64  `json:"untracked_grants"`
	UncachedGrants  uint64  `json:"uncached_grants"`
	NoCEnergyPJ     float64 `json:"noc_energy_pj"`
	PFEnergyPJ      float64 `json:"pf_energy_pj"`
}

// RecordOf flattens one SweepResult into its emitted Record.
func RecordOf(r SweepResult) Record {
	rec := Record{
		Benchmark: r.Job.WorkloadName(),
		Policy:    r.Job.Config.Policy.String(),
		Threads:   r.Job.Config.Threads,
		PFKiB:     r.Job.Config.PFBytes >> 10,
		Seed:      r.Job.Config.Seed,
	}
	if r.Job.Workload != nil {
		// A first-class Workload wins over MultiProcess in Job.Run, so
		// the record must not describe a multi-process run.
		rec.Threads = r.Job.Workload.Threads()
	} else if r.Job.MultiProcess != nil {
		rec.Copies = r.Job.MultiProcess.Copies
		rec.Threads = 1
	}
	if r.Err != nil {
		rec.Error = r.Err.Error()
		rec.Aborted = r.Aborted()
		if !rec.Aborted {
			// Failed or skipped outright: no metrics to report. Aborted
			// jobs fall through so their partial counts are emitted
			// alongside the error (checkpoint NDJSON relies on this).
			return rec
		}
	}
	if res := r.Result; res != nil {
		rec.RecordMetrics = &RecordMetrics{
			RuntimeNs:       res.RuntimeNs,
			Accesses:        res.Accesses,
			PFAllocs:        res.PFAllocs,
			PFEvictions:     res.PFEvictions,
			EvictionMsgs:    res.EvictionMsgs,
			L2Misses:        res.L2Misses,
			NoCBytes:        res.NoCBytes,
			NoCMessages:     res.NoCMessages,
			LocalRequests:   res.LocalRequests,
			RemoteRequests:  res.RemoteRequests,
			LocalProbes:     res.LocalProbes,
			ProbesHidden:    res.ProbesHidden,
			UntrackedGrants: res.UntrackedGrants,
			UncachedGrants:  res.UncachedGrants,
			NoCEnergyPJ:     res.NoCEnergyPJ,
			PFEnergyPJ:      res.PFEnergyPJ,
		}
	}
	return rec
}

// RecordsOf flattens a whole sweep's results in order.
func RecordsOf(results []SweepResult) []Record {
	recs := make([]Record, len(results))
	for i, r := range results {
		recs[i] = RecordOf(r)
	}
	return recs
}

// ReadRecords decodes an NDJSON stream of Records (one object per line,
// as NDJSONEmitter writes them). It is the gather side of the fleet
// merge seam: Records survive the NDJSON round trip losslessly —
// re-emitting what ReadRecords returns produces the original bytes —
// because Go's JSON encoder prints floats in their shortest exact form.
func ReadRecords(r io.Reader) ([]Record, error) {
	var recs []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("allarm: record %d: %w", len(recs), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return recs, nil
}

// cells renders the record's fields as strings in sweepColumns order.
// Failed jobs print zero metrics (the error column explains why).
func (rec Record) cells() []string {
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
	m := rec.RecordMetrics
	if m == nil {
		m = &RecordMetrics{}
	}
	return []string{
		rec.Benchmark, rec.Policy,
		strconv.Itoa(rec.Threads), strconv.Itoa(rec.Copies),
		strconv.Itoa(rec.PFKiB), u(rec.Seed), rec.Error,
		f(m.RuntimeNs), u(m.Accesses), u(m.PFAllocs),
		u(m.PFEvictions), u(m.EvictionMsgs), u(m.L2Misses),
		u(m.NoCBytes), u(m.NoCMessages), u(m.LocalRequests),
		u(m.RemoteRequests), u(m.LocalProbes), u(m.ProbesHidden),
		u(m.UntrackedGrants), u(m.UncachedGrants),
		f(m.NoCEnergyPJ), f(m.PFEnergyPJ),
	}
}

// TableEmitter renders sweep results as an aligned text table, one row
// per job, with a final geomean row over the successful runtimes'
// speedups when a Reference is set.
type TableEmitter struct {
	// Reference, when non-nil, selects the run each row's speedup is
	// normalised to (typically the full-size baseline); a "speedup"
	// column is appended and a geomean row (over non-zero speedups, as
	// the paper's figures do) closes the table. The speedup needs the
	// live Results, so it applies to Emit only — EmitRecords renders the
	// plain column set.
	Reference func(r SweepResult) *Result
}

// Emit implements Emitter.
func (e *TableEmitter) Emit(w io.Writer, results []SweepResult) error {
	if e.Reference == nil {
		return e.EmitRecords(w, RecordsOf(results))
	}
	header := append(append([]string{}, sweepColumns...), "speedup")
	t := stats.NewTable(header...)
	var speedups []float64
	for _, r := range results {
		cells := RecordOf(r).cells()
		v := 0.0
		if ref := e.Reference(r); ref != nil && r.Result != nil {
			v = stats.SafeDiv(ref.RuntimeNs, r.Result.RuntimeNs, 0)
		}
		speedups = append(speedups, v)
		cells = append(cells, fmt.Sprintf("%.3f", v))
		t.AddRow(cells...)
	}
	geo := make([]string, len(sweepColumns)+1)
	geo[0] = "geomean"
	geo[len(geo)-1] = fmt.Sprintf("%.3f", stats.GeomeanNonZero(speedups))
	t.AddRow(geo...)
	_, err := fmt.Fprint(w, t.String())
	return err
}

// EmitRecords implements RecordEmitter (no speedup column: Reference
// needs live Results).
func (e *TableEmitter) EmitRecords(w io.Writer, recs []Record) error {
	t := stats.NewTable(sweepColumns...)
	for _, rec := range recs {
		t.AddRow(rec.cells()...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// CSVEmitter renders sweep results as CSV with a header row.
type CSVEmitter struct{}

// Emit implements Emitter.
func (e CSVEmitter) Emit(w io.Writer, results []SweepResult) error {
	return e.EmitRecords(w, RecordsOf(results))
}

// EmitRecords implements RecordEmitter.
func (CSVEmitter) EmitRecords(w io.Writer, recs []Record) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(sweepColumns); err != nil {
		return err
	}
	for _, rec := range recs {
		if err := cw.Write(rec.cells()); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JSONEmitter renders sweep results as a JSON array of records.
type JSONEmitter struct {
	// Indent pretty-prints with two-space indentation.
	Indent bool
}

// Emit implements Emitter.
func (e JSONEmitter) Emit(w io.Writer, results []SweepResult) error {
	return e.EmitRecords(w, RecordsOf(results))
}

// EmitRecords implements RecordEmitter.
func (e JSONEmitter) EmitRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	if e.Indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(recs)
}

// NDJSONEmitter renders sweep results as newline-delimited JSON: one
// Record object per line, with exactly the keys JSONEmitter uses.
// Because every line is independently parseable, the format streams —
// allarm-serve emits it for results endpoints where consumers want rows
// as they read, and `jq` or a log pipeline can process output without
// buffering the whole array. It is also the fleet wire format:
// allarm-router gathers shard results as NDJSON, decodes them with
// ReadRecords and re-renders the merged rows byte-identically.
type NDJSONEmitter struct{}

// Emit implements Emitter.
func (e NDJSONEmitter) Emit(w io.Writer, results []SweepResult) error {
	return e.EmitRecords(w, RecordsOf(results))
}

// EmitRecords implements RecordEmitter.
func (NDJSONEmitter) EmitRecords(w io.Writer, recs []Record) error {
	enc := json.NewEncoder(w)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
