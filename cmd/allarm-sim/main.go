// Command allarm-sim runs a single simulation of one workload under one
// policy and prints its metrics.
//
// Usage:
//
//	allarm-sim -bench ocean-cont -policy allarm -accesses 60000
//	allarm-sim -bench barnes -pair              # baseline vs -policy
//	allarm-sim -bench barnes -pair -json        # raw records instead
//	allarm-sim -workload trace:barnes.trace     # replay a captured trace
//	allarm-sim -bench dedup -policy allarm-hyst # any registered policy
//	allarm-sim -list                            # benchmarks and policies
//
// The workload is either a benchmark preset (-bench, or -workload
// bench:NAME) or a captured trace (-workload trace:FILE; see
// allarm-trace -gen). -policy accepts any registered directory policy.
// Every invocation is a (possibly one-job) sweep: -pair fans baseline
// and -policy out over -parallel workers, and -json/-csv swap the human
// summary for the raw per-run records. Ctrl-C cancels the sweep
// promptly; finished runs are still emitted, with the rest marked
// cancelled.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	allarm "allarm"
	"allarm/internal/obs"
)

// mainContext is cancelled on Ctrl-C so an in-flight sweep stops
// promptly (finished runs are still emitted, with the rest marked
// cancelled).
func mainContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt)
	return ctx
}

// main only translates run's status into an exit code: os.Exit skips
// deferred functions, and funnelling every exit path through run keeps
// them (and any future profiling hooks) working under errors and
// interrupts, matching allarm-bench.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		bench     = flag.String("bench", "ocean-cont", "benchmark name")
		wlFlag    = flag.String("workload", "", "workload spec: bench:NAME or trace:FILE (overrides -bench)")
		policy    = flag.String("policy", "baseline", "directory policy name (see -list)")
		pair      = flag.Bool("pair", false, "run baseline and -policy and compare")
		accesses  = flag.Int("accesses", 0, "accesses per thread (0 = default)")
		threads   = flag.Int("threads", 0, "thread count (0 = default 16)")
		pfKiB     = flag.Int("pf", 0, "probe filter coverage in KiB (0 = default 512)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		check     = flag.Bool("check", false, "enable the coherence invariant checker")
		list      = flag.Bool("list", false, "list benchmarks and exit")
		multi     = flag.Int("multi", 0, "run N single-threaded copies instead (Figure 4 mode)")
		fullScale = flag.Bool("fullscale", false, "use unscaled Table I SRAM sizes")
		parallel  = flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
		simThr    = flag.Int("sim-threads", 0, "parallel event shards per simulation (0/1 = serial engine; results are bit-identical at any setting)")
		jsonOut   = flag.Bool("json", false, "emit raw per-run records as JSON")
		csvOut    = flag.Bool("csv", false, "emit raw per-run records as CSV")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat = flag.String("log-format", "text", "log encoding: text or json")
		version   = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("allarm-sim", allarm.Version)
		return 0
	}
	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "allarm-sim:", err)
		return 1
	}

	if *list {
		fmt.Println("benchmarks:")
		fmt.Println("  " + strings.Join(allarm.Benchmarks(), "\n  "))
		fmt.Println("policies:")
		fmt.Println("  " + strings.Join(allarm.RegisteredPolicies(), "\n  "))
		return 0
	}
	if *jsonOut && *csvOut {
		logger.Error("-json and -csv are mutually exclusive")
		return 2
	}

	cfg := allarm.ExperimentConfig()
	if *fullScale {
		cfg = allarm.DefaultConfig()
	}
	cfg.Seed = *seed
	cfg.CheckInvariants = *check
	if *accesses > 0 {
		cfg.AccessesPerThread = *accesses
	}
	if *threads > 0 {
		cfg.Threads = *threads
	}
	if *pfKiB > 0 {
		cfg.PFBytes = *pfKiB << 10
	}
	if *simThr > 0 {
		cfg.SimThreads = *simThr
	}

	pol, perr := allarm.ParsePolicy(*policy)
	if perr != nil {
		logger.Error("invalid -policy", "error", perr)
		return 2
	}

	job := allarm.Job{Benchmark: *bench, Config: cfg}
	switch {
	case strings.HasPrefix(*wlFlag, "trace:"):
		wl, err := allarm.LoadTrace(strings.TrimPrefix(*wlFlag, "trace:"))
		if err != nil {
			logger.Error("loading trace", "error", err)
			return 1
		}
		job.Workload = wl
	case strings.HasPrefix(*wlFlag, "bench:"):
		job.Benchmark = strings.TrimPrefix(*wlFlag, "bench:")
	case *wlFlag != "":
		logger.Error("-workload wants bench:NAME or trace:FILE", "got", *wlFlag)
		return 2
	}
	if *multi > 0 {
		if job.Workload != nil {
			logger.Error("-multi applies to benchmark presets only")
			return 2
		}
		mp := allarm.DefaultMultiProcess()
		mp.Copies = *multi
		job.MultiProcess = &mp
	}

	sweep := allarm.NewSweep(job)
	if *pair {
		opt := pol
		if opt == allarm.Baseline {
			// -pair with the default -policy keeps the paper's comparison.
			opt = allarm.ALLARM
		}
		sweep.CrossPolicies(allarm.Baseline, opt)
	} else {
		sweep.CrossPolicies(pol)
	}

	runner := &allarm.Runner{Parallelism: *parallel}
	results, runErr := runner.Run(mainContext(), sweep)
	if runErr == nil {
		runErr = allarm.FirstError(results)
	}

	// Emit before acting on runErr: on interrupt (or one job failing)
	// the finished runs are still rendered — raw rows carry per-job
	// errors, the human summary prints what completed — and the exit
	// status reports the failure.
	err = nil
	switch {
	case *jsonOut:
		err = allarm.JSONEmitter{Indent: true}.Emit(os.Stdout, results)
	case *csvOut:
		err = allarm.CSVEmitter{}.Emit(os.Stdout, results)
	default:
		for _, r := range results {
			// Aborted jobs carry a partial Result alongside their error;
			// the human summary prints completed runs only (the raw
			// -json/-csv rows expose partials, with the error and — in
			// JSON — the aborted flag).
			if r.Result != nil && r.Err == nil {
				print1(r.Result)
			}
		}
		if *pair && runErr == nil {
			c := allarm.Compare(results[0].Result, results[1].Result)
			fmt.Printf("speedup            %8.3fx\n", c.Speedup)
			fmt.Printf("evictions ratio    %8.3f\n", c.EvictionRatio)
			fmt.Printf("traffic ratio      %8.3f\n", c.TrafficRatio)
			fmt.Printf("L2 miss ratio      %8.3f\n", c.L2MissRatio)
			fmt.Printf("NoC energy ratio   %8.3f\n", c.NoCEnergyRatio)
			fmt.Printf("PF energy ratio    %8.3f\n", c.PFEnergyRatio)
		}
	}
	if err == nil {
		err = runErr
	}
	if err != nil {
		logger.Error("sweep failed", "error", err)
		return 1
	}
	return 0
}

func print1(r *allarm.Result) {
	fmt.Printf("%s [%s]\n", r.Benchmark, r.PolicyUsed)
	fmt.Printf("  runtime          %12.1f us\n", r.RuntimeNs/1e3)
	fmt.Printf("  accesses         %12d\n", r.Accesses)
	fmt.Printf("  dir requests     %12d (local %.2f)\n",
		r.LocalRequests+r.RemoteRequests, r.LocalFraction())
	fmt.Printf("  PF allocs        %12d\n", r.PFAllocs)
	fmt.Printf("  PF evictions     %12d (%.1f msgs/evict)\n",
		r.PFEvictions, r.MessagesPerEviction())
	tot := r.Raw().Totals()
	fmt.Printf("  evict live hits  %12d of %d probes; probe hits at caches %d\n",
		tot.EvictionHits, tot.EvictionProbes, tot.Invalidations)
	fmt.Printf("  L2 misses        %12d\n", r.L2Misses)
	fmt.Printf("  NoC traffic      %12d bytes (%d msgs)\n", r.NoCBytes, r.NoCMessages)
	fmt.Printf("  energy NoC/PF    %12.1f / %.1f nJ\n", r.NoCEnergyPJ/1e3, r.PFEnergyPJ/1e3)
	if r.UntrackedGrants > 0 || r.LocalProbes > 0 {
		fmt.Printf("  untracked fills  %12d\n", r.UntrackedGrants)
		fmt.Printf("  local probes     %12d (%.2f hidden)\n",
			r.LocalProbes, r.SnoopHiddenFraction())
	}
	if r.UncachedGrants > 0 {
		fmt.Printf("  uncached grants  %12d\n", r.UncachedGrants)
	}
}
