// multiprocess reproduces the spirit of Figure 4: two single-threaded
// copies of a SPLASH2 benchmark (no sharing between them — the data-
// center/MPI pattern), swept over shrinking probe filters. The baseline
// degrades sharply; ALLARM barely notices, because single-process data is
// entirely thread-local.
//
// The whole grid — both policies × five probe-filter sizes — is one
// declarative Sweep run in parallel; the first job (full-size baseline)
// doubles as the normalisation reference.
package main

import (
	"context"
	"fmt"
	"log"

	allarm "allarm"
)

func main() {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 40_000
	mp := allarm.DefaultMultiProcess()
	bench := "ocean-cont"

	sizes := make([]int, 0, 5)
	for _, div := range []int{1, 2, 4, 8, 16} {
		sizes = append(sizes, cfg.PFBytes/div)
	}
	// Policy-major, size-minor: the grid's first job is the full-size
	// baseline, which is exactly the reference run.
	sweep := allarm.NewSweep(allarm.Job{Benchmark: bench, Config: cfg, MultiProcess: &mp}).
		CrossPolicies(allarm.Baseline, allarm.ALLARM).
		CrossPFSizes(sizes...)
	results, err := allarm.RunSweep(context.Background(), sweep)
	if err == nil {
		err = allarm.FirstError(results)
	}
	if err != nil {
		log.Fatal(err)
	}
	ref := results[0].Result

	fmt.Printf("two 1-thread copies of %s (footprint %dkB/process)\n",
		bench, mp.FootprintBytes>>10)
	fmt.Println("PF size   policy    speedup   evictions")
	for _, r := range results {
		fmt.Printf("%5dkB   %-8s  %6.3f   %9d\n",
			r.Job.Config.PFBytes>>10, r.Job.Config.Policy,
			ref.RuntimeNs/r.Result.RuntimeNs, r.Result.PFEvictions)
	}
}
