package core

import (
	"fmt"
	"sort"

	"allarm/internal/mem"
)

// Policy selects the probe-filter allocation policy of a directory.
type Policy uint8

const (
	// Baseline allocates a probe-filter entry on any miss, local or
	// remote — the conventional sparse directory, including the
	// notify-on-clean-exclusive-eviction optimisation (PutE).
	Baseline Policy = iota
	// ALLARM allocates only on a miss from a *remote* affinity domain
	// (ALLocAte on Remote Miss). Local misses are served from DRAM with
	// no tracking state; remote misses additionally probe the home's
	// local core, in parallel with DRAM, to discover untracked copies.
	ALLARM
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Baseline:
		return "baseline"
	case ALLARM:
		return "allarm"
	default:
		return fmt.Sprintf("Policy(%d)", uint8(p))
	}
}

// AddrRange is a half-open physical address range [Start, End).
type AddrRange struct {
	Start, End mem.PAddr
}

// Contains reports whether a lies in the range.
func (r AddrRange) Contains(a mem.PAddr) bool { return a >= r.Start && a < r.End }

// RangeSet models the paper's boot-time range registers (§II-C): MTRR-like
// registers on each directory controller that restrict ALLARM to selected
// physical ranges. An empty RangeSet enables ALLARM everywhere (the
// default configuration used in the evaluation).
//
// Ranges are normalised (sorted, merged) at construction so Enabled is a
// binary search.
type RangeSet struct {
	ranges []AddrRange
}

// NewRangeSet builds a normalised range set. Ranges with Start >= End are
// rejected with a descriptive error.
func NewRangeSet(ranges ...AddrRange) (*RangeSet, error) {
	rs := make([]AddrRange, 0, len(ranges))
	for _, r := range ranges {
		if r.Start >= r.End {
			return nil, fmt.Errorf("core: empty or inverted range [%#x,%#x)", uint64(r.Start), uint64(r.End))
		}
		rs = append(rs, r)
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Start < rs[j].Start })
	merged := rs[:0]
	for _, r := range rs {
		if n := len(merged); n > 0 && r.Start <= merged[n-1].End {
			if r.End > merged[n-1].End {
				merged[n-1].End = r.End
			}
			continue
		}
		merged = append(merged, r)
	}
	return &RangeSet{ranges: merged}, nil
}

// Enabled reports whether ALLARM applies to a. A nil or empty set enables
// every address.
func (s *RangeSet) Enabled(a mem.PAddr) bool {
	if s == nil || len(s.ranges) == 0 {
		return true
	}
	i := sort.Search(len(s.ranges), func(i int) bool { return s.ranges[i].End > a })
	return i < len(s.ranges) && s.ranges[i].Contains(a)
}

// Len returns the number of normalised ranges.
func (s *RangeSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.ranges)
}
