package allarm

import (
	"fmt"

	"allarm/internal/mem"
	"allarm/internal/sim"
	"allarm/internal/workload"
)

// Duration is simulated time in integer picoseconds — the simulator's
// tick, exposed exactly so that workload round trips (capture, replay,
// programmatic generation) never quantise.
type Duration int64

// Duration units.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000
	Microsecond Duration = 1000 * Nanosecond
)

// Access is one memory reference of a workload thread.
type Access struct {
	// VAddr is the virtual address referenced (any byte of the line;
	// lines are 64 bytes, pages 4 KiB).
	VAddr uint64
	// Write distinguishes stores from loads.
	Write bool
	// Think is the core compute time preceding the access (non-memory
	// instructions).
	Think Duration
}

// Stream produces one thread's access sequence. Next returns ok == false
// when the thread's region of interest ends.
type Stream interface {
	Next() (Access, bool)
}

// StreamFunc adapts a closure to Stream, for compact programmatic
// generators.
type StreamFunc func() (Access, bool)

// Next implements Stream.
func (f StreamFunc) Next() (Access, bool) { return f() }

// Workload is a multi-threaded memory workload the simulator can run:
// the first-class input of Run and sweep jobs. Three kinds ship with the
// package — the synthetic benchmark presets (BenchmarkWorkload), trace
// replays (LoadTrace) and user-programmatic generators (NewWorkload) —
// and any user implementation is accepted.
//
// Thread i is pinned to node i mod Config.Nodes, so a workload's thread
// count must not exceed the machine's node count (the modelled cores are
// in-order with one outstanding access).
type Workload interface {
	// Name identifies the workload in results, tables and errors.
	Name() string
	// Threads is the workload's thread count.
	Threads() int
	// Stream returns thread's deterministic measured access stream;
	// distinct seeds give independent executions (replays may ignore the
	// seed).
	Stream(thread int, seed uint64) Stream
	// WarmupStream returns thread's initialisation pass, replayed before
	// the measured region of interest (statistics are reset at the
	// boundary), or nil for none.
	WarmupStream(thread int, seed uint64) Stream
	// ForEachPage declares the workload's page-placement regions: fn is
	// called once per page of the footprint with the thread that first
	// touches it during initialisation, and the simulator pre-faults the
	// page at that thread's node (the paper's first-touch methodology).
	// Implementations without an initialisation phase may do nothing:
	// pages then fault at their first toucher during the run.
	ForEachPage(fn func(page uint64, thread int))
}

// Keyer is optionally implemented by workloads to fingerprint the exact
// simulation they produce. Sweep.Dedup treats two jobs with equal keys
// (and equal configurations) as the same simulation; without a Key, a
// workload is fingerprinted by name and thread count only.
type Keyer interface {
	Key() string
}

// BenchmarkWorkload returns the named synthetic benchmark preset (see
// Benchmarks and MultiProcessBenchmarks) scaled to the given thread
// count and per-thread access budget.
func BenchmarkWorkload(name string, threads, accessesPerThread int) (Workload, error) {
	w, err := workload.Benchmark(name, threads, accessesPerThread)
	if err != nil {
		return nil, err
	}
	return synthWorkload{w: w}, nil
}

// synthWorkload adapts the internal synthetic generator to the public
// Workload interface. All conversions are exact (addresses are uint64,
// think times integer picoseconds on both sides), so a run through this
// wrapper is bit-identical to one driven by the internal generator.
type synthWorkload struct {
	w *workload.Synthetic
}

// Name implements Workload.
func (s synthWorkload) Name() string { return s.w.Name() }

// Threads implements Workload.
func (s synthWorkload) Threads() int { return s.w.Threads() }

// Stream implements Workload.
func (s synthWorkload) Stream(thread int, seed uint64) Stream {
	return pubStream{s: s.w.Stream(thread, seed)}
}

// WarmupStream implements Workload.
func (s synthWorkload) WarmupStream(thread int, seed uint64) Stream {
	ws := s.w.WarmupStream(thread, seed)
	if ws == nil {
		return nil
	}
	return pubStream{s: ws}
}

// ForEachPage implements Workload.
func (s synthWorkload) ForEachPage(fn func(page uint64, thread int)) {
	s.w.ForEachPage(func(page mem.VAddr, thread int) { fn(uint64(page), thread) })
}

// Key implements Keyer: presets are fully identified by name, threads
// and access budget.
func (s synthWorkload) Key() string {
	p := s.w.Params()
	return fmt.Sprintf("bench:%s/t%d/a%d", p.Name, p.Threads, p.AccessesPerThread)
}

// WorkloadSpec builds a programmatic Workload from plain functions — the
// escape hatch for access patterns the presets don't model.
type WorkloadSpec struct {
	// Name identifies the workload (required).
	Name string
	// Threads is the thread count (required, 1..255).
	Threads int
	// Stream returns thread's measured access stream (required).
	Stream func(thread int, seed uint64) Stream
	// Warmup returns thread's initialisation pass (optional; nil field
	// or nil returned stream mean no warmup).
	Warmup func(thread int, seed uint64) Stream
	// Pages declares page placement (optional; see
	// Workload.ForEachPage).
	Pages func(fn func(page uint64, thread int))
	// Key fingerprints the simulation for Sweep.Dedup (optional).
	Key string
}

// NewWorkload validates the spec and returns the workload.
func NewWorkload(spec WorkloadSpec) (Workload, error) {
	switch {
	case spec.Name == "":
		return nil, fmt.Errorf("allarm: workload needs a name")
	case spec.Threads <= 0 || spec.Threads > 255:
		return nil, fmt.Errorf("allarm: workload %q thread count %d out of range [1,255]", spec.Name, spec.Threads)
	case spec.Stream == nil:
		return nil, fmt.Errorf("allarm: workload %q needs a Stream function", spec.Name)
	}
	return &funcWorkload{spec: spec}, nil
}

// funcWorkload is the Workload behind NewWorkload.
type funcWorkload struct {
	spec WorkloadSpec
}

// Name implements Workload.
func (w *funcWorkload) Name() string { return w.spec.Name }

// Threads implements Workload.
func (w *funcWorkload) Threads() int { return w.spec.Threads }

// Stream implements Workload.
func (w *funcWorkload) Stream(thread int, seed uint64) Stream {
	return w.spec.Stream(thread, seed)
}

// WarmupStream implements Workload.
func (w *funcWorkload) WarmupStream(thread int, seed uint64) Stream {
	if w.spec.Warmup == nil {
		return nil
	}
	return w.spec.Warmup(thread, seed)
}

// ForEachPage implements Workload.
func (w *funcWorkload) ForEachPage(fn func(page uint64, thread int)) {
	if w.spec.Pages != nil {
		w.spec.Pages(fn)
	}
}

// Key implements Keyer when the spec carries one.
func (w *funcWorkload) Key() string {
	if w.spec.Key != "" {
		return "func:" + w.spec.Key
	}
	return fmt.Sprintf("func:%s#%d", w.spec.Name, w.spec.Threads)
}

// pubStream adapts an internal stream to the public interface (exact).
type pubStream struct {
	s workload.Stream
}

// Next implements Stream.
func (p pubStream) Next() (Access, bool) {
	a, ok := p.s.Next()
	return Access{VAddr: uint64(a.VAddr), Write: a.Write, Think: Duration(a.Think)}, ok
}

// intStream adapts a public stream to the internal interface (exact).
type intStream struct {
	s Stream
}

// Next implements workload.Stream.
func (i intStream) Next() (workload.Access, bool) {
	a, ok := i.s.Next()
	return workload.Access{VAddr: mem.VAddr(a.VAddr), Write: a.Write, Think: sim.Time(a.Think)}, ok
}
