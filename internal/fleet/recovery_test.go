package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"allarm/internal/server"
)

// waitFleetStatus polls the router until the sweep reaches exactly the
// wanted status (waitFleetDone accepts any terminal state; requeue
// tests need to see a degraded sweep re-open and land on done).
func waitFleetStatus(t *testing.T, base, id, want string) SweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, base+"/v1/sweeps/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d: %s", resp.StatusCode, body)
		}
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == want {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("sweep %s never reached status %q", id, want)
	return SweepView{}
}

// waitTotalRuns polls the shard-side simulation counters until they
// reach want (work the shards finish on their own, router or no
// router).
func waitTotalRuns(t *testing.T, shards []*testShard, want int64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if totalRuns(shards) == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shards ran %d simulations, want %d", totalRuns(shards), want)
}

// TestFleetJournalRecoveryMidSweep is the tentpole acceptance
// criterion: a router abandoned mid-gather (Close is journal-equivalent
// to SIGKILL — no terminal state is written) recovers the sweep under
// its original id at the next boot, re-polls the shards, and serves a
// gather byte-identical to a single-node run — with fleet-wide
// simulation counts unchanged, because the shards' content-addressed
// caches answer the re-ask.
func TestFleetJournalRecoveryMidSweep(t *testing.T) {
	dir := t.TempDir()
	victim := newTestShard(t, server.Options{Workers: 4})
	victim.gate = make(chan struct{}) // victim's jobs stall mid-sweep
	healthy := newTestShard(t, server.Options{Workers: 4})
	shards := []*testShard{healthy, victim}
	opts := Options{
		Shards:         []string{healthy.url, victim.url},
		Attempts:       2,
		RetryBackoff:   5 * time.Millisecond,
		HealthInterval: time.Hour,
		StateDir:       dir,
	}

	rt1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(rt1.Handler())
	sr := submit(t, ts1.URL, bigRequest())

	// Let the healthy shard's share finish (and be checkpointed) while
	// the victim's share is still in flight.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, ts1.URL+"/v1/sweeps/"+sr.ID)
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		healthyDone, victimJobs := 0, 0
		for _, j := range v.Jobs {
			switch {
			case j.Shard == healthy.url && j.Status == server.JobDone:
				healthyDone++
			case j.Shard == victim.url:
				victimJobs++
			}
		}
		if victimJobs > 0 && healthyDone == v.Total-victimJobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy shard never finished its share: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Crash the router mid-sweep. The shards keep their work.
	ts1.Close()
	rt1.Close()

	// With the router gone, the victim shard finishes its sub-sweep on
	// its own: every result is now in some shard's cache.
	close(victim.gate)
	waitTotalRuns(t, shards, 24)

	// Reboot against the same state dir: the sweep must come back under
	// its original id and finish without a single new simulation.
	rt2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		rt2.Close()
	})

	v := waitFleetDone(t, ts2.URL, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("recovered sweep status %q, want done: %+v", v.Status, v.Jobs)
	}
	if !v.Recovered {
		t.Error("recovered sweep not flagged as recovered")
	}
	if got := totalRuns(shards); got != 24 {
		t.Errorf("recovery re-ran simulations: %d total, want 24", got)
	}

	// Byte-identity against an untouched single node, every format.
	single := newTestShard(t, server.Options{Workers: 4})
	sid := submit(t, single.url, bigRequest())
	for {
		resp, _ := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format=ndjson")
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, format := range []string{"json", "ndjson", "csv", "table"} {
		_, gathered := get(t, ts2.URL+"/v1/sweeps/"+sr.ID+"/results?format="+format)
		_, local := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format="+format)
		if !bytes.Equal(gathered, local) {
			t.Errorf("format %s: recovered gather differs from single node:\nfleet:\n%s\nsingle:\n%s",
				format, gathered, local)
		}
	}

	var m Metrics
	_, body := get(t, ts2.URL+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.SweepsRecovered != 1 {
		t.Errorf("sweeps_recovered = %d, want 1", m.SweepsRecovered)
	}
}

// TestFleetJournalRecoveryTerminal: a router restarted after a sweep
// finished still serves it — same id, same bytes — and seeds its id
// counter past journaled sweeps so new submissions never collide.
// DELETE forgets the journal entry too.
func TestFleetJournalRecoveryTerminal(t *testing.T) {
	dir := t.TempDir()
	sh := newTestShard(t, server.Options{Workers: 4})
	opts := Options{
		Shards:         []string{sh.url},
		Attempts:       2,
		RetryBackoff:   5 * time.Millisecond,
		HealthInterval: time.Hour,
		StateDir:       dir,
	}
	req := server.SweepRequest{
		Benchmarks: []string{"barnes", "x264", "dedup"},
		Config:     &server.ConfigOverrides{Threads: 2, AccessesPerThread: 50},
	}

	rt1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(rt1.Handler())
	sr := submit(t, ts1.URL, req)
	waitFleetDone(t, ts1.URL, sr.ID)
	_, before := get(t, ts1.URL+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	ts1.Close()
	rt1.Close()

	rt2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(rt2.Handler())
	t.Cleanup(func() {
		ts2.Close()
		rt2.Close()
	})

	v := waitFleetDone(t, ts2.URL, sr.ID)
	if v.Status != StatusDone || !v.Recovered {
		t.Fatalf("recovered terminal sweep: status %q recovered %v", v.Status, v.Recovered)
	}
	_, after := get(t, ts2.URL+"/v1/sweeps/"+sr.ID+"/results?format=csv")
	if !bytes.Equal(before, after) {
		t.Errorf("terminal sweep changed across restart:\nbefore:\n%s\nafter:\n%s", before, after)
	}
	if ran := sh.runs.Load(); ran != 3 {
		t.Errorf("restart re-ran simulations: %d, want 3", ran)
	}

	// The id counter resumes past journaled ids.
	sr2 := submit(t, ts2.URL, req)
	if sr2.ID == sr.ID {
		t.Fatalf("new sweep reused recovered id %s", sr.ID)
	}
	waitFleetDone(t, ts2.URL, sr2.ID)

	// DELETE forgets memory and journal alike: a third boot sees neither.
	for _, id := range []string{sr.ID, sr2.ID} {
		dreq, _ := http.NewRequest(http.MethodDelete, ts2.URL+"/v1/sweeps/"+id, nil)
		resp, err := http.DefaultClient.Do(dreq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("delete %s: status %d", id, resp.StatusCode)
		}
	}
	ts2.Close()
	rt2.Close()
	rt3, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer rt3.Close()
	rt3mux := httptest.NewServer(rt3.Handler())
	defer rt3mux.Close()
	resp, _ := get(t, rt3mux.URL+"/v1/sweeps/"+sr.ID)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("deleted sweep survived restart: status %d", resp.StatusCode)
	}
}

// TestRetryDelaySchedule pins the retry pacing contract: a throttled
// shard's Retry-After wins verbatim; everything else draws full jitter
// in (0, backoff << (attempt-1)]; and a fixed JitterSeed replays the
// same draw sequence.
func TestRetryDelaySchedule(t *testing.T) {
	mk := func(seed int64) *Router {
		rt, err := New(Options{
			Shards:         []string{"http://127.0.0.1:1"},
			RetryBackoff:   100 * time.Millisecond,
			HealthInterval: time.Hour,
			JitterSeed:     seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(rt.Close)
		return rt
	}
	rt := mk(42)

	he := &httpError{status: http.StatusTooManyRequests, retryAfter: 7 * time.Second}
	if d := rt.retryDelay(he, 1); d != 7*time.Second {
		t.Errorf("429 Retry-After not honored: %v", d)
	}
	// A 429 without a hint falls back to the jittered schedule.
	if d := rt.retryDelay(&httpError{status: 429}, 1); d <= 0 || d > 100*time.Millisecond {
		t.Errorf("hintless 429 delay %v outside (0, 100ms]", d)
	}
	for attempt := 1; attempt <= 4; attempt++ {
		ceil := 100 * time.Millisecond << (attempt - 1)
		for i := 0; i < 32; i++ {
			if d := rt.retryDelay(nil, attempt); d <= 0 || d > ceil {
				t.Fatalf("attempt %d: delay %v outside (0, %v]", attempt, d, ceil)
			}
		}
	}

	// Same seed, same sequence — chaos runs are replayable.
	a, b := mk(7), mk(7)
	for i := 0; i < 16; i++ {
		if da, db := a.retryDelay(nil, 2), b.retryDelay(nil, 2); da != db {
			t.Fatalf("draw %d diverged under one seed: %v vs %v", i, da, db)
		}
	}
}
