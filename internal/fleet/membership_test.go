package fleet

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"allarm/internal/server"
)

// del issues a DELETE with optional headers.
func del(t *testing.T, rawurl string, header ...string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, rawurl, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func listShards(t *testing.T, base string, header ...string) []ShardInfo {
	t.Helper()
	resp, body := get(t, base+"/v1/shards", header...)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list shards: status %d: %s", resp.StatusCode, body)
	}
	var out []ShardInfo
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetMembershipAPI: /v1/shards reads are open to any client, but
// mutations need the admin scope; adds and removes mutate the ring at
// runtime, with conflicts and a last-shard removal refused.
func TestFleetMembershipAPI(t *testing.T) {
	guard, err := server.NewGuard([]server.ClientConfig{
		{Token: "tok-admin", Name: "operator", Admin: true},
		{Token: "tok-user", Name: "user"},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, base, shards := newTestFleet(t, 2, server.Options{Workers: 2}, Options{Guard: guard})
	admin := []string{"Authorization", "Bearer tok-admin"}
	user := []string{"Authorization", "Bearer tok-user"}

	if got := listShards(t, base, user...); len(got) != 2 {
		t.Fatalf("listed %d shards, want 2", len(got))
	}

	// A plain client may look but not touch.
	third := newTestShard(t, server.Options{Workers: 2})
	resp, body := postJSON(t, base+"/v1/shards", map[string]string{"url": third.url}, user...)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("non-admin add: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = del(t, base+"/v1/shards?url="+url.QueryEscape(shards[0].url), user...)
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("non-admin remove: status %d", resp.StatusCode)
	}

	// Admin add: the ring grows and new placements can reach the shard.
	resp, body = postJSON(t, base+"/v1/shards", map[string]string{"url": third.url}, admin...)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("admin add: status %d: %s", resp.StatusCode, body)
	}
	if got := listShards(t, base, user...); len(got) != 3 {
		t.Fatalf("after add: %d shards, want 3", len(got))
	}
	resp, _ = postJSON(t, base+"/v1/shards", map[string]string{"url": third.url}, admin...)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate add: status %d, want 409", resp.StatusCode)
	}
	resp, _ = postJSON(t, base+"/v1/shards", map[string]string{}, admin...)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty add: status %d, want 400", resp.StatusCode)
	}

	// A sweep through the grown fleet still completes and runs every job
	// exactly once, fleet-wide.
	sr := submit(t, base, bigRequest(), admin...)
	v := waitFleetDone(t, base, sr.ID, admin...)
	if v.Status != StatusDone {
		t.Fatalf("post-add sweep status %q", v.Status)
	}
	if got := totalRuns(append(shards, third)); got != 24 {
		t.Fatalf("fleet ran %d simulations, want 24", got)
	}

	// Removals: unknown URL conflicts, members leave one at a time, the
	// last shard is irremovable.
	resp, _ = del(t, base+"/v1/shards?url=http://nope:1", admin...)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("remove unknown: status %d, want 409", resp.StatusCode)
	}
	for _, sh := range shards {
		resp, body = del(t, base+"/v1/shards?url="+url.QueryEscape(sh.url), admin...)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("remove %s: status %d: %s", sh.url, resp.StatusCode, body)
		}
	}
	if got := listShards(t, base, user...); len(got) != 1 || got[0].URL != third.url {
		t.Fatalf("after removals: %+v", got)
	}
	resp, _ = del(t, base+"/v1/shards?url="+url.QueryEscape(third.url), admin...)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("remove last shard: status %d, want 409", resp.StatusCode)
	}

	var m Metrics
	_, body = get(t, base+"/metrics", user...)
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.MembershipChanges != 3 { // one add, two removes
		t.Errorf("membership_changes = %d, want 3", m.MembershipChanges)
	}
}

// TestFleetRequeueAfterShardRemoval: jobs degraded to "skipped" by a
// dead shard are re-queued onto the new ring owner when the dead shard
// is removed from the membership — the sweep re-opens, re-dispatches
// only the moved jobs, and lands on done with every row a real result,
// byte-identical to a single-node run.
func TestFleetRequeueAfterShardRemoval(t *testing.T) {
	victim := newTestShard(t, server.Options{Workers: 4})
	victim.gate = make(chan struct{})
	healthy := newTestShard(t, server.Options{Workers: 4})
	rt, err := New(Options{
		Shards:         []string{healthy.url, victim.url},
		Attempts:       2,
		RetryBackoff:   5 * time.Millisecond,
		HealthInterval: time.Hour, // no probes: membership change is the only mover
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	base := ts.URL
	defer close(victim.gate) // unblock the victim's workers for shutdown

	sr := submit(t, base, bigRequest())

	// Wait until the healthy share is done, then crash the victim. Its
	// jobs stay gated, so the victim never simulates anything.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, base+"/v1/sweeps/"+sr.ID)
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		healthyDone, victimJobs := 0, 0
		for _, j := range v.Jobs {
			switch {
			case j.Shard == healthy.url && j.Status == server.JobDone:
				healthyDone++
			case j.Shard == victim.url:
				victimJobs++
			}
		}
		if victimJobs > 0 && healthyDone == v.Total-victimJobs {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy shard never finished its share: %+v", v)
		}
		time.Sleep(5 * time.Millisecond)
	}
	victim.kill()

	v := waitFleetDone(t, base, sr.ID)
	if v.Status != StatusDegraded {
		t.Fatalf("sweep status %q, want degraded", v.Status)
	}

	// Retire the dead shard: its skipped jobs move to the survivor, the
	// sweep re-opens and completes for real.
	resp, body := del(t, base+"/v1/shards?url="+url.QueryEscape(victim.url))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove victim: status %d: %s", resp.StatusCode, body)
	}
	final := waitFleetStatus(t, base, sr.ID, StatusDone)
	if final.Requeued < 1 {
		t.Errorf("requeued = %d, want >= 1", final.Requeued)
	}
	for i, j := range final.Jobs {
		if j.Shard != healthy.url || j.Status != server.JobDone {
			t.Errorf("job %d after requeue: shard %s status %q", i, j.Shard, j.Status)
		}
	}
	if victim.runs.Load() != 0 {
		t.Errorf("victim ran %d jobs through its gate", victim.runs.Load())
	}

	// The repaired gather is indistinguishable from a single-node run.
	single := newTestShard(t, server.Options{Workers: 4})
	sid := submit(t, single.url, bigRequest())
	for {
		resp, _ := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format=ndjson")
		if resp.StatusCode == http.StatusOK {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, format := range []string{"ndjson", "csv"} {
		_, gathered := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format="+format)
		_, local := get(t, single.url+"/v1/sweeps/"+sid.ID+"/results?format="+format)
		if !bytes.Equal(gathered, local) {
			t.Errorf("format %s: repaired gather differs from single node:\nfleet:\n%s\nsingle:\n%s",
				format, gathered, local)
		}
	}

	var m Metrics
	_, body = get(t, base+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.JobsRequeued == 0 {
		t.Error("jobs_requeued = 0 after a requeue wave")
	}
	if m.SweepsDegraded == 0 {
		t.Error("sweeps_degraded = 0; the degraded finish went uncounted")
	}
}

// TestFleetMembershipJournaled: runtime membership changes survive a
// restart — the journaled shard set overrides the boot flags, so
// recovery re-polls the ring its sweeps were actually placed on.
func TestFleetMembershipJournaled(t *testing.T) {
	dir := t.TempDir()
	a := newTestShard(t, server.Options{Workers: 2})
	b := newTestShard(t, server.Options{Workers: 2})
	opts := Options{
		Shards:         []string{a.url},
		Attempts:       2,
		RetryBackoff:   5 * time.Millisecond,
		HealthInterval: time.Hour,
		StateDir:       dir,
	}
	rt1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt1.AddShard(b.url); err != nil {
		t.Fatal(err)
	}
	rt1.Close()

	// Boot with the stale single-shard flag: the journal wins.
	rt2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt2.Close)
	ts := httptest.NewServer(rt2.Handler())
	t.Cleanup(ts.Close)
	got := listShards(t, ts.URL)
	if len(got) != 2 {
		t.Fatalf("journaled membership not restored: %+v", got)
	}
	urls := map[string]bool{got[0].URL: true, got[1].URL: true}
	if !urls[a.url] || !urls[b.url] {
		t.Fatalf("restored membership %v, want {%s, %s}", urls, a.url, b.url)
	}
}

// TestFleetSetShardsReload models the SIGHUP path: SetShards swaps the
// whole set, rejecting invalid sets without touching the ring.
func TestFleetSetShardsReload(t *testing.T) {
	rt, base, shards := newTestFleet(t, 2, server.Options{Workers: 2}, Options{})
	third := newTestShard(t, server.Options{Workers: 2})

	if err := rt.SetShards([]string{}); err == nil {
		t.Error("empty set accepted")
	}
	if err := rt.SetShards([]string{shards[0].url, shards[0].url}); err == nil {
		t.Error("duplicate set accepted")
	}
	if got := listShards(t, base); len(got) != 2 {
		t.Fatalf("failed reloads mutated the ring: %+v", got)
	}
	if err := rt.SetShards([]string{shards[0].url, third.url}); err != nil {
		t.Fatal(err)
	}
	got := listShards(t, base)
	if len(got) != 2 || (got[0].URL != shards[0].url && got[1].URL != shards[0].url) {
		t.Fatalf("reload result: %+v", got)
	}
	for _, si := range got {
		if si.URL == shards[1].url {
			t.Fatalf("replaced shard still a member: %+v", got)
		}
	}

	// The reloaded fleet serves: jobs land only on current members.
	sr := submit(t, base, bigRequest())
	v := waitFleetDone(t, base, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("post-reload sweep status %q", v.Status)
	}
	for i, j := range v.Jobs {
		if j.Shard == shards[1].url {
			t.Errorf("job %d placed on removed shard", i)
		}
	}
}
