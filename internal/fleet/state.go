package fleet

import (
	"encoding/json"
	"sync"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
	"allarm/internal/server"
)

// Fleet sweep lifecycle states. Queued/running/done mirror a single
// shard's; Degraded is fleet-specific: the gather completed but one or
// more shards could not deliver their jobs, which are reported as
// skipped rows rather than failing the whole sweep. A degraded sweep is
// not necessarily the end of the story: a membership change that gives
// its skipped jobs a new owner re-opens it (status back to running)
// and re-dispatches only those jobs.
const (
	StatusQueued   = server.StatusQueued
	StatusRunning  = server.StatusRunning
	StatusDone     = server.StatusDone
	StatusDegraded = "degraded"
)

// maxRequeueWaves bounds how many times one sweep's skipped jobs may be
// re-dispatched onto new owners. Each wave only fires when a job's ring
// owner actually changed, but a fleet where shards keep dying could
// otherwise ping-pong jobs forever.
const maxRequeueWaves = 8

// JobView is one job in a fleet sweep's status: the shard column is the
// only addition over a single daemon's view.
type JobView struct {
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	PFKiB     int    `json:"pf_kib"`
	Shard     string `json:"shard"`
	Status    string `json:"status"`
	Error     string `json:"error,omitempty"`
}

// SweepView is the router's GET /v1/sweeps/{id} payload.
type SweepView struct {
	ID       string    `json:"id"`
	Status   string    `json:"status"`
	Created  time.Time `json:"created"`
	Finished time.Time `json:"finished,omitzero"`
	Total    int       `json:"total"`
	Done     int       `json:"done"`
	// Recovered marks a sweep restored from the journal after a router
	// restart (its in-flight work was re-polled, not re-run).
	Recovered bool `json:"recovered,omitempty"`
	// Requeued counts re-dispatch waves: times this sweep's skipped jobs
	// were moved to a new ring owner after a shard failure.
	Requeued int       `json:"requeued,omitempty"`
	Jobs     []JobView `json:"jobs"`
}

// event is one SSE frame of the router's progress stream.
type event struct {
	Type string
	Data []byte
}

// jobEvent is the router's per-job SSE payload — a shard's job event
// re-indexed into the global spec order, plus the shard that ran it.
type jobEvent struct {
	Sweep     string `json:"sweep"`
	Index     int    `json:"index"`
	Benchmark string `json:"benchmark"`
	Policy    string `json:"policy"`
	PFKiB     int    `json:"pf_kib"`
	Shard     string `json:"shard"`
	Status    string `json:"status"`
	Done      int    `json:"done"`
	Total     int    `json:"total"`
	Error     string `json:"error,omitempty"`
}

// sweepEvent is the router's sweep-level SSE payload.
type sweepEvent struct {
	Sweep  string `json:"sweep"`
	Status string `json:"status"`
	Done   int    `json:"done"`
	Total  int    `json:"total"`
}

// fleetSweep is one scattered sweep: the global job views, the gathered
// records (indexed by global spec position) and the SSE event history.
// Shard progress arrives concurrently from per-shard goroutines; all
// mutation goes through the mutex, and done counts terminal jobs (not
// transitions) so replayed shard events stay idempotent.
//
// The sweep finishes itself: whenever every job is terminal AND every
// record is stored, the state flips to done/degraded — there is no
// external "finish" call, so no ordering between SSE updates and record
// fetches can close the sweep with rows missing. A requeue wave re-opens
// a finished sweep (degraded → running) by un-terminating the claimed
// jobs.
type fleetSweep struct {
	id      string
	created time.Time
	total   int

	// Immutable after creation (set before the sweep is published):
	// everything needed to re-dispatch jobs later — on requeue, or after
	// a router restart re-expands the journaled request.
	req       *server.SweepRequest
	expanded  []allarm.Job     // global spec order; placement keys
	specs     []server.JobSpec // per-job sub-sweep spec (PFKiB pre-zeroed)
	recovered bool             // restored from the journal at boot
	reqID     string           // correlation id of the accepting request

	// tl is the router-side lifecycle timeline; shardRuns records every
	// shard sub-sweep dispatched for this sweep, so the timeline handler
	// can fetch the shard-local timelines and merge them (remapping
	// local job indices back to global spec positions).
	tl        obs.Timeline
	runsMu    sync.Mutex
	shardRuns []shardRun

	mu         sync.Mutex
	status     string
	jobs       []JobView
	terminal   []bool // job i reached a final state
	done       int
	records    []allarm.Record
	have       []bool
	requeues   int
	finishedAt time.Time
	history    []event
	subs       map[chan struct{}]struct{}
	finished   chan struct{}
	// notice marks an unconsumed finish transition: the dispatch wave
	// that observes it (takeFinishNotice) owns the one-time side effects
	// (journal terminal write, metrics, log line). A requeue that
	// re-opens the sweep before anyone consumed the notice retracts it.
	notice bool
}

func newFleetSweep(id string, jobs []JobView, now time.Time) *fleetSweep {
	return &fleetSweep{
		id:       id,
		created:  now,
		total:    len(jobs),
		status:   StatusQueued,
		jobs:     jobs,
		terminal: make([]bool, len(jobs)),
		records:  make([]allarm.Record, len(jobs)),
		have:     make([]bool, len(jobs)),
		subs:     make(map[chan struct{}]struct{}),
		finished: make(chan struct{}),
	}
}

// shardRun is one dispatched shard sub-sweep: which shard, the
// shard-local sweep id, and the global spec index of each local job.
type shardRun struct {
	shard   string
	id      string
	globals []int
}

// addShardRun records a dispatched sub-sweep for timeline merging.
func (st *fleetSweep) addShardRun(shard, id string, globals []int) {
	st.runsMu.Lock()
	st.shardRuns = append(st.shardRuns, shardRun{shard: shard, id: id, globals: append([]int(nil), globals...)})
	st.runsMu.Unlock()
}

func (st *fleetSweep) shardRunsSnapshot() []shardRun {
	st.runsMu.Lock()
	defer st.runsMu.Unlock()
	return append([]shardRun(nil), st.shardRuns...)
}

// timeline appends one router-side lifecycle event, stamped with the
// sweep's correlation id. job is the global spec index, -1 for
// sweep-level events.
func (st *fleetSweep) timeline(event string, job int, shard, detail string) {
	st.tl.Add(obs.TimelineEvent{Event: event, Job: job, Shard: shard, Detail: detail, RequestID: st.reqID})
}

// publish appends an event and pokes subscribers. Callers hold st.mu.
func (st *fleetSweep) publish(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return // payloads are our own structs; cannot fail
	}
	st.history = append(st.history, event{Type: typ, Data: data})
	for ch := range st.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// jobTerminal reports whether a job status string is final.
func jobTerminal(status string) bool {
	switch status {
	case server.JobDone, server.JobError, server.JobAborted, server.JobSkipped:
		return true
	}
	return false
}

// jobUpdate applies one job's status change (from a shard's SSE stream,
// remapped to the global index, or synthesised for a failed shard).
// A job that already reached a terminal state never regresses: SSE
// replay after a reconnect re-delivers old "running" frames, and the
// fetch-time reconciliation must not double-count.
func (st *fleetSweep) jobUpdate(i int, status, errMsg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.jobUpdateLocked(i, status, errMsg)
}

func (st *fleetSweep) jobUpdateLocked(i int, status, errMsg string) {
	if !jobTerminal(status) && status != server.JobRunning {
		return
	}
	if st.terminal[i] {
		return
	}
	st.jobs[i].Status = status
	st.jobs[i].Error = errMsg
	if st.status == StatusQueued {
		st.status = StatusRunning
		st.publish("sweep", sweepEvent{Sweep: st.id, Status: st.status, Done: st.done, Total: st.total})
	}
	if jobTerminal(status) {
		st.terminal[i] = true
		st.done++
	}
	jv := st.jobs[i]
	st.publish("job", jobEvent{
		Sweep: st.id, Index: i,
		Benchmark: jv.Benchmark, Policy: jv.Policy, PFKiB: jv.PFKiB,
		Shard: jv.Shard, Status: jv.Status,
		Done: st.done, Total: st.total, Error: jv.Error,
	})
	st.maybeFinishLocked()
}

// setRecord stores job i's gathered (or synthesised) row.
func (st *fleetSweep) setRecord(i int, rec allarm.Record) {
	st.mu.Lock()
	st.records[i] = rec
	st.have[i] = true
	st.maybeFinishLocked()
	st.mu.Unlock()
}

// setRecordFrom stores job i's row only if shard still owns the job,
// reporting whether it was applied. A migration can re-home a job while
// its old owner's gather is mid-flight; the old shard's late rows (and
// its failure-synthesised skip rows) must not clobber the new owner's.
func (st *fleetSweep) setRecordFrom(shard string, i int, rec allarm.Record) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.jobs[i].Shard != shard {
		return false
	}
	st.records[i] = rec
	st.have[i] = true
	st.maybeFinishLocked()
	return true
}

// jobUpdateFrom applies a job status change only if shard still owns
// the job (the ownership-checked jobUpdate; see setRecordFrom).
func (st *fleetSweep) jobUpdateFrom(shard string, i int, status, errMsg string) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.jobs[i].Shard != shard {
		return
	}
	st.jobUpdateLocked(i, status, errMsg)
}

// statusOfRecord reconciles a job's final status from its gathered row,
// for jobs whose SSE events were lost (stream broke mid-sweep but the
// fetch succeeded).
func statusOfRecord(rec allarm.Record) string {
	switch {
	case rec.Error == "":
		return server.JobDone
	case rec.Aborted:
		return server.JobAborted
	default:
		return server.JobError
	}
}

// maybeFinishLocked closes the sweep once every job is terminal and
// every record is present — the only way a fleet sweep finishes.
// Degraded means at least one job ended skipped (a shard failed to
// deliver it and no new owner has picked it up). Callers hold st.mu.
func (st *fleetSweep) maybeFinishLocked() {
	if st.status == StatusDone || st.status == StatusDegraded {
		return
	}
	if st.done != st.total {
		return
	}
	for _, h := range st.have {
		if !h {
			return
		}
	}
	st.finishedAt = time.Now()
	st.status = StatusDone
	for _, j := range st.jobs {
		if j.Status == server.JobSkipped {
			st.status = StatusDegraded
			break
		}
	}
	st.notice = true
	st.publish("sweep", sweepEvent{Sweep: st.id, Status: st.status, Done: st.done, Total: st.total})
	close(st.finished)
}

// takeFinishNotice consumes a finish transition exactly once, returning
// the terminal status. The dispatch wave that gets ok == true performs
// the one-time side effects (journal write, metrics).
func (st *fleetSweep) takeFinishNotice() (status string, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if !st.notice {
		return "", false
	}
	st.notice = false
	return st.status, true
}

// finishedCh returns the channel closed when the sweep (currently)
// finishes. A requeue wave replaces it, so waiters must re-fetch after
// each wake-up rather than cache it.
func (st *fleetSweep) finishedCh() <-chan struct{} {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.finished
}

// claimSkipped atomically claims skipped jobs for re-dispatch onto new
// owners. place maps a global index to its new shard name; returning
// ok == false (owner unchanged, or no healthy owner) leaves the job
// skipped. Claimed jobs are un-terminated (status back to pending, the
// synthesised record dropped) and the sweep — if it had already finished
// degraded — re-opens with a fresh finished channel. Returns the claimed
// indices grouped by new shard name; empty when nothing moved or the
// requeue budget is spent.
func (st *fleetSweep) claimSkipped(place func(i int) (string, bool)) map[string][]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.requeues >= maxRequeueWaves {
		return nil
	}
	var moved map[string][]int
	for i := range st.jobs {
		if !st.terminal[i] || st.jobs[i].Status != server.JobSkipped {
			continue
		}
		name, ok := place(i)
		if !ok || name == st.jobs[i].Shard {
			continue
		}
		if moved == nil {
			moved = make(map[string][]int)
		}
		moved[name] = append(moved[name], i)
		st.terminal[i] = false
		st.have[i] = false
		st.records[i] = allarm.Record{}
		st.done--
		st.jobs[i].Status = server.JobPending
		st.jobs[i].Error = ""
		st.jobs[i].Shard = name
	}
	if moved == nil {
		return nil
	}
	st.requeues++
	if st.status == StatusDone || st.status == StatusDegraded {
		st.status = StatusRunning
		st.finishedAt = time.Time{}
		st.finished = make(chan struct{})
		st.notice = false
	}
	st.publish("sweep", sweepEvent{Sweep: st.id, Status: st.status, Done: st.done, Total: st.total})
	for _, idxs := range moved {
		for _, i := range idxs {
			jv := st.jobs[i]
			st.publish("job", jobEvent{
				Sweep: st.id, Index: i,
				Benchmark: jv.Benchmark, Policy: jv.Policy, PFKiB: jv.PFKiB,
				Shard: jv.Shard, Status: jv.Status,
				Done: st.done, Total: st.total,
			})
		}
	}
	return moved
}

// migration is one in-flight job re-homed by a membership change: the
// router moves its machine-state checkpoint from the departed owner to
// the new one, then re-dispatches it there.
type migration struct {
	index    int
	from, to string
}

// claimMoved atomically reassigns still-in-flight (non-terminal) jobs
// whose current owner left the fleet, placing each on its key's new
// ring owner. Unlike claimSkipped this touches jobs that never failed —
// they are simply orphaned by an administrative membership change — so
// nothing is un-terminated and the sweep never re-opens; the jobs go
// back to pending under their new shard, and the ownership checks in
// setRecordFrom/jobUpdateFrom silently drop whatever the old owner's
// gather still delivers for them.
func (st *fleetSweep) claimMoved(departed func(name string) bool, place func(i int) (string, bool)) []migration {
	st.mu.Lock()
	defer st.mu.Unlock()
	var moved []migration
	for i := range st.jobs {
		if st.terminal[i] || !departed(st.jobs[i].Shard) {
			continue
		}
		name, ok := place(i)
		if !ok || name == st.jobs[i].Shard {
			continue
		}
		moved = append(moved, migration{index: i, from: st.jobs[i].Shard, to: name})
		st.jobs[i].Shard = name
		st.jobs[i].Status = server.JobPending
		st.jobs[i].Error = ""
		st.have[i] = false
		jv := st.jobs[i]
		st.publish("job", jobEvent{
			Sweep: st.id, Index: i,
			Benchmark: jv.Benchmark, Policy: jv.Policy, PFKiB: jv.PFKiB,
			Shard: jv.Shard, Status: jv.Status,
			Done: st.done, Total: st.total,
		})
	}
	return moved
}

// checkpointLine is one journaled record: the job's global index, its
// final status (Record alone cannot distinguish "skipped by a dead
// shard" — requeue-eligible — from a genuine job error) and the row
// itself. Records survive the JSON round trip losslessly, which is what
// keeps recovered gathers byte-identical.
type checkpointLine struct {
	Index  int           `json:"index"`
	Status string        `json:"status"`
	Record allarm.Record `json:"record"`
}

// checkpointLines snapshots every gathered record for the journal.
func (st *fleetSweep) checkpointLines() []checkpointLine {
	st.mu.Lock()
	defer st.mu.Unlock()
	lines := make([]checkpointLine, 0, st.done)
	for i, h := range st.have {
		if !h {
			continue
		}
		lines = append(lines, checkpointLine{Index: i, Status: st.jobs[i].Status, Record: st.records[i]})
	}
	return lines
}

// restore applies journaled checkpoint lines to a freshly rebuilt sweep
// (boot-time recovery, before the sweep is visible to any handler) and
// returns the indices still owed. A fully checkpointed sweep finishes
// here; its notice is swallowed so recovery does not recount metrics.
func (st *fleetSweep) restore(lines []checkpointLine) (missing []int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, l := range lines {
		if l.Index < 0 || l.Index >= st.total || st.terminal[l.Index] || !jobTerminal(l.Status) {
			continue
		}
		st.records[l.Index] = l.Record
		st.have[l.Index] = true
		st.terminal[l.Index] = true
		st.done++
		st.jobs[l.Index].Status = l.Status
		st.jobs[l.Index].Error = l.Record.Error
	}
	if st.done > 0 {
		st.status = StatusRunning
	}
	st.maybeFinishLocked()
	st.notice = false
	for i, term := range st.terminal {
		if !term {
			missing = append(missing, i)
		}
	}
	return missing
}

// assignment maps shard name → owned global indices, for the journal.
func (st *fleetSweep) assignment() map[string][]int {
	st.mu.Lock()
	defer st.mu.Unlock()
	a := make(map[string][]int)
	for i, j := range st.jobs {
		a[j.Shard] = append(a[j.Shard], i)
	}
	return a
}

// view snapshots the sweep for the status endpoint.
func (st *fleetSweep) view() SweepView {
	st.mu.Lock()
	defer st.mu.Unlock()
	jobs := make([]JobView, len(st.jobs))
	copy(jobs, st.jobs)
	return SweepView{
		ID: st.id, Status: st.status, Created: st.created,
		Finished: st.finishedAt,
		Total:    st.total, Done: st.done,
		Recovered: st.recovered,
		Requeued:  st.requeues,
		Jobs:      jobs,
	}
}

// terminalState reports whether the gather has finished.
func (st *fleetSweep) terminalState() bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.status == StatusDone || st.status == StatusDegraded
}

// snapshot returns the gathered records in global spec order, or
// ok == false while shards are still delivering.
func (st *fleetSweep) snapshot() (recs []allarm.Record, status string, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.status != StatusDone && st.status != StatusDegraded {
		return nil, st.status, false
	}
	recs = make([]allarm.Record, len(st.records))
	copy(recs, st.records)
	return recs, st.status, true
}

// subscribe registers an SSE consumer (same incremental-history model
// as a single daemon's stream).
func (st *fleetSweep) subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	st.mu.Lock()
	st.subs[ch] = struct{}{}
	st.mu.Unlock()
	return ch
}

func (st *fleetSweep) unsubscribe(ch chan struct{}) {
	st.mu.Lock()
	delete(st.subs, ch)
	st.mu.Unlock()
}

// eventsSince returns the history from index from on, plus whether the
// sweep is final.
func (st *fleetSweep) eventsSince(from int) ([]event, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	final := st.status == StatusDone || st.status == StatusDegraded
	if from >= len(st.history) {
		return nil, final
	}
	evs := make([]event, len(st.history)-from)
	copy(evs, st.history[from:])
	return evs, final
}
