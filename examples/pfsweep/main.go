// pfsweep reproduces the spirit of Figure 3h: how far can the probe
// filter shrink before each policy starts losing performance? ALLARM's
// answer — much further, because thread-local data needs no entries — is
// the paper's area-saving argument (§III-B's table).
//
// The grid is a declarative Sweep (PF sizes × policies) fanned out over
// all cores, with a progress callback on stderr.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	allarm "allarm"
)

func main() {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 30_000
	bench := "barnes"

	sizes := []int{cfg.PFBytes, cfg.PFBytes / 2, cfg.PFBytes / 4}
	// PF-size-major, policy-minor, so results line up with the printed
	// rows — and the grid's first job (full size, baseline) doubles as
	// the normalisation reference.
	spec := allarm.NewSweep(allarm.Job{Benchmark: bench, Config: cfg}).
		CrossPFSizes(sizes...).
		CrossPolicies(allarm.Baseline, allarm.ALLARM)

	runner := &allarm.Runner{
		Progress: func(done, total int, r allarm.SweepResult) {
			fmt.Fprintf(os.Stderr, "[%d/%d] %s pf=%dkB done\n",
				done, total, r.Job.Config.Policy, r.Job.Config.PFBytes>>10)
		},
	}
	results, err := runner.Run(context.Background(), spec)
	if err == nil {
		err = allarm.FirstError(results)
	}
	if err != nil {
		log.Fatal(err)
	}
	ref := results[0].Result

	fmt.Printf("%s: runtime vs probe-filter size (normalised to %dkB baseline)\n",
		bench, cfg.PFBytes>>10)
	fmt.Println("PF size   baseline   ALLARM")
	for i, size := range sizes {
		row := fmt.Sprintf("%5dkB", size>>10)
		for p := 0; p < 2; p++ {
			res := results[2*i+p].Result
			row += fmt.Sprintf("   %6.3f", ref.RuntimeNs/res.RuntimeNs)
		}
		fmt.Println(row)
	}
}
