package sim

import (
	"strings"
	"testing"
)

// Keyed tie-break mode is the engine half of the parallel (PDES)
// machine: provisional per-engine keys keep same-tile events in serial
// relative order inside a window, and the window log carries enough
// structure for the barrier to reconstruct the exact serial order
// afterwards. These tests pin the key layout, the log format, and the
// rewrite hook the system layer's replay merge depends on.

func pendingKeys(e *Engine) (ats []Time, seqs []uint64) {
	e.ForEachPending(func(at Time, seq uint64, h Handler) {
		ats = append(ats, at)
		seqs = append(seqs, seq)
	})
	return
}

func TestKeyedSameInstantKeepsSchedulingOrder(t *testing.T) {
	var e Engine
	e.SetKeyed()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of scheduling order: %v", order)
		}
	}
}

func TestKeyedOrdersByInstantAcrossEngines(t *testing.T) {
	// Two shard engines schedule an event for the same timestamp at
	// different instants. Their keys must compare the way one serial
	// engine's FIFO counter would: earlier scheduling instant first,
	// regardless of which engine assigned the key. (Cross-engine
	// same-instant collisions are the replay merge's job, but the
	// instant ordering lets barriers and seed capture sort coarsely.)
	var a, b Engine
	a.SetKeyed()
	b.SetKeyed()
	a.At(0, func(Time) { a.At(100, func(Time) {}) })
	b.At(0, func(Time) {})
	a.RunUntil(20)
	b.RunUntil(20)
	b.At(100, func(Time) {}) // scheduled at instant 20, not 0

	_, aSeqs := pendingKeys(&a)
	_, bSeqs := pendingKeys(&b)
	if len(aSeqs) != 1 || len(bSeqs) != 1 {
		t.Fatalf("expected one pending event per engine, got %d and %d", len(aSeqs), len(bSeqs))
	}
	if aSeqs[0] >= bSeqs[0] {
		t.Fatalf("instant-0 key %#x does not precede instant-20 key %#x", aSeqs[0], bSeqs[0])
	}
}

func TestWindowLogRecordsDispatchesAndChildren(t *testing.T) {
	// One window: a seed event at t=10 schedules a local child at t=40
	// and stages an external send (index 3) between two local calls.
	// The log must hold one entry per dispatch with the children in
	// call order, external actions interleaved at their positions.
	var e Engine
	e.SetKeyed()
	e.At(10, func(Time) {
		e.At(40, func(Time) {})
		e.LogExternal(3)
		e.At(50, func(Time) {})
	})
	e.BeginWindowLog()
	e.RunUntil(20)
	entries, kids := e.EndWindowLog()

	if len(entries) != 1 {
		t.Fatalf("logged %d dispatches, want 1", len(entries))
	}
	if entries[0].At != 10 || entries[0].Kids != 0 {
		t.Fatalf("entry = %+v, want At=10 Kids=0", entries[0])
	}
	if len(kids) != 3 {
		t.Fatalf("logged %d scheduling calls, want 3", len(kids))
	}
	if kids[0].Ext >= 0 || kids[0].At != 40 {
		t.Fatalf("first child = %+v, want local at t=40", kids[0])
	}
	if kids[1].Ext != 3 {
		t.Fatalf("second child = %+v, want external index 3", kids[1])
	}
	if kids[2].Ext >= 0 || kids[2].At != 50 {
		t.Fatalf("third child = %+v, want local at t=50", kids[2])
	}
	// The logged (At, Seq) identities must match the pending items.
	ats, seqs := pendingKeys(&e)
	for i, k := range []LogChild{kids[0], kids[2]} {
		found := false
		for j := range ats {
			if ats[j] == k.At && seqs[j] == k.Seq {
				found = true
			}
		}
		if !found {
			t.Fatalf("logged child %d (%v, %#x) not found among pending items (%v, %#x)",
				i, k.At, k.Seq, ats, seqs)
		}
	}
}

func TestWindowLogEntriesAreSorted(t *testing.T) {
	// Replay looks dispatch records up by binary search, so entries
	// must come out in sorted (At, Seq) order — which dispatch order
	// inside a window is, since keys grow with the instant and rank.
	var e Engine
	e.SetKeyed()
	for i := 0; i < 4; i++ {
		e.At(Time(10+i%2), func(now Time) {
			if now < 15 {
				e.At(now+5, func(Time) {})
			}
		})
	}
	e.BeginWindowLog()
	e.RunUntil(100)
	entries, _ := e.EndWindowLog()
	if len(entries) < 8 {
		t.Fatalf("logged %d dispatches, want at least 8", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		a, b := &entries[i-1], &entries[i]
		if a.At > b.At || (a.At == b.At && a.Seq >= b.Seq) {
			t.Fatalf("entries %d..%d out of (At, Seq) order: %+v then %+v", i-1, i, *a, *b)
		}
	}
}

func TestBeginWindowLogOnSerialEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BeginWindowLog on a non-keyed engine did not panic")
		}
	}()
	var e Engine
	e.BeginWindowLog()
}

func TestRewriteSeqsReplacesPendingKeys(t *testing.T) {
	// RewriteSeqs maps every pending (at, seq) through the barrier's
	// rank function; an order-preserving mapping must keep pop order.
	var e Engine
	e.SetKeyed()
	var order []int
	for i := 0; i < 3; i++ {
		i := i
		e.At(100, func(Time) { order = append(order, i) })
	}
	_, before := pendingKeys(&e)
	e.RewriteSeqs(func(at Time, seq uint64) uint64 {
		for i, s := range before {
			if s == seq && at == 100 {
				return uint64(i + 1) // dense ranks, same relative order
			}
		}
		t.Fatalf("RewriteSeqs visited unknown key (%v, %#x)", at, seq)
		return 0
	})
	_, after := pendingKeys(&e)
	for i, s := range after {
		if s != uint64(i+1) {
			t.Fatalf("pending keys after rewrite = %v, want dense ranks", after)
		}
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("events fired out of order after rewrite: %v", order)
		}
	}
}

func TestKeyedInsertSortsByExplicitKey(t *testing.T) {
	var e Engine
	e.SetKeyed()
	var order []int
	h1 := HandlerFunc(func(Time) { order = append(order, 1) })
	h2 := HandlerFunc(func(Time) { order = append(order, 2) })
	e.KeyedInsert(100, 2, h2)
	e.KeyedInsert(100, 1, h1)
	e.Run(0)
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("KeyedInsert order = %v, want [1 2]", order)
	}
}

func TestKeyedInsertRanksSortBelowRuntimeKeys(t *testing.T) {
	// Dense barrier/restore ranks must fire before anything scheduled
	// at runtime for the same timestamp — keyedBase adds one to the
	// instant precisely so instant-0 keys stay above the rank range.
	var e Engine
	e.SetKeyed()
	var order []int
	e.At(100, HandlerFunc(func(Time) { order = append(order, 2) }).Handle)
	e.KeyedInsert(100, 1, HandlerFunc(func(Time) { order = append(order, 1) }))
	e.Run(0)
	if len(order) != 2 || order[0] != 1 {
		t.Fatalf("rank-keyed event did not fire before the runtime-keyed one: %v", order)
	}
}

func TestKeyedInsertOnSerialEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("KeyedInsert on a non-keyed engine did not panic")
		}
	}()
	var e Engine
	e.KeyedInsert(0, 1, HandlerFunc(func(Time) {}))
}

func TestSetKeyedWithPendingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetKeyed with pending events did not panic")
		}
	}()
	var e Engine
	e.At(0, func(Time) {})
	e.SetKeyed()
}

func TestKeyedTimeRangeOverflowPanics(t *testing.T) {
	// The 40-bit instant field caps keyed runs near 1.1 simulated
	// seconds; scheduling past it must fail loudly with advice to run
	// serially, not wrap around into wrong event order.
	var e Engine
	e.SetKeyed()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("keyed scheduling beyond the 40-bit range did not panic")
		}
		if !strings.Contains(p.(string), "SimThreads=1") {
			t.Fatalf("overflow panic does not mention the serial fallback: %v", p)
		}
	}()
	e.At(maxKeyedTime+5, func(now Time) { e.At(now+1, func(Time) {}) })
	e.Run(0)
}

func TestNextAt(t *testing.T) {
	var e Engine
	if _, ok := e.NextAt(); ok {
		t.Fatal("NextAt on an empty queue reported an event")
	}
	e.At(30, func(Time) {})
	e.At(10, func(Time) {})
	if at, ok := e.NextAt(); !ok || at != 10 {
		t.Fatalf("NextAt = (%v, %v), want (10, true)", at, ok)
	}
}
