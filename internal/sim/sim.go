// Package sim implements the discrete-event simulation engine underlying
// the ALLARM machine model.
//
// Time is measured in integer picoseconds (type Time) so that sub-
// nanosecond quantities (a 2 GHz core cycle is 500 ps) never lose
// precision. Events are ordered by time with a stable FIFO tie-break:
// two events scheduled for the same instant fire in the order they were
// scheduled, which makes whole-machine simulations bit-reproducible.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulated timestamp in picoseconds since the start of the run.
type Time int64

// Convenient duration units, all expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String renders the time in nanoseconds for logs and test failures.
func (t Time) String() string { return fmt.Sprintf("%gns", t.Nanoseconds()) }

// Event is a scheduled callback. Fire runs at the event's timestamp.
type Event func(now Time)

type item struct {
	at   Time
	seq  uint64
	fire Event
}

type eventHeap []item

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventHeap
	stopped bool
	fired   uint64
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute time at. Scheduling in the past
// (before Now) panics: it always indicates a model bug, and silently
// reordering time would corrupt results.
func (e *Engine) At(at Time, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: nil event")
	}
	e.seq++
	heap.Push(&e.queue, item{at: at, seq: e.seq, fire: fn})
}

// After schedules fn to run delay picoseconds from now. Negative delays
// panic (see At).
func (e *Engine) After(delay Time, fn Event) { e.At(e.now+delay, fn) }

// Stop makes Run return after the currently firing event completes.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, Stop is
// called, or limit events have fired (limit <= 0 means no limit). It
// returns the number of events fired by this call.
func (e *Engine) Run(limit uint64) uint64 {
	e.stopped = false
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		if limit > 0 && fired >= limit {
			break
		}
		it := heap.Pop(&e.queue).(item)
		e.now = it.at
		it.fire(it.at)
		fired++
		e.fired++
	}
	return fired
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline stay queued; Now advances to at most deadline.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			break
		}
		it := heap.Pop(&e.queue).(item)
		e.now = it.at
		it.fire(it.at)
		fired++
		e.fired++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return fired
}

// Drain discards all pending events without firing them. Now is unchanged.
func (e *Engine) Drain() {
	e.queue = e.queue[:0]
}

// Ticker invokes fn every period until cancel is called. It exists for
// periodic model activities such as thread-migration experiments.
type Ticker struct {
	cancelled bool
}

// Cancel stops future ticks. Safe to call multiple times.
func (t *Ticker) Cancel() { t.cancelled = true }

// Tick schedules fn every period starting at now+period. fn receives the
// tick time. period must be positive.
func (e *Engine) Tick(period Time, fn Event) *Ticker {
	if period <= 0 {
		panic("sim: Tick with non-positive period")
	}
	t := &Ticker{}
	var loop Event
	loop = func(now Time) {
		if t.cancelled {
			return
		}
		fn(now)
		if !t.cancelled {
			e.At(now+period, loop)
		}
	}
	e.At(e.now+period, loop)
	return t
}
