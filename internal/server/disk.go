package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"syscall"
	"time"

	allarm "allarm"
)

// ResultStore is the persistent tier of the result cache: a
// content-addressed map from Job.Key (the same golden-tested
// fingerprint the in-memory LRU and Sweep.Dedup use) to the complete
// simulation result, shared safely between daemons because entries are
// immutable once written (simulations are deterministic).
//
// Two implementations ship with the package, both layered over the same
// key-verified entry format by keyedStore: NewDiskStore (a local
// directory — the PR 5 layout, for one node or nodes sharing a
// filesystem) and NewObjectStore (an S3-style object API — a local
// directory today or any HTTP endpoint speaking ObjectHandler's
// GET/PUT protocol, so a fleet of allarm-serve shards can share results
// without shared disks).
//
// Implementations must treat Get misses and corruption identically
// (return false, never an error — the simulator can always regenerate),
// must make Put atomic (concurrent readers and crash recovery only ever
// see complete entries), and should make Len O(1) (it is scraped by
// /metrics on an unbounded store).
type ResultStore interface {
	// Get returns the stored result for key, or false when the entry is
	// absent, unreadable or fails key verification.
	Get(key string) (*allarm.Result, bool)
	// Put persists res under key, atomically.
	Put(key string, res *allarm.Result) error
	// Len reports the number of stored entries (approximate when another
	// process writes concurrently).
	Len() int
}

// objectBackend is the byte-level storage under a keyedStore: a flat
// namespace of immutable, atomically-written objects. fsObjects backs
// it with a directory, httpObjects with an S3-style HTTP API
// (object.go). Splitting bytes from entry semantics is what makes the
// disk and object stores byte-compatible: both write identical
// diskEntry JSON under identical names.
type objectBackend interface {
	// get returns the object's bytes, or ok == false when absent.
	get(name string) (data []byte, ok bool, err error)
	// put writes the object atomically; created reports whether the name
	// was new (Len bookkeeping).
	put(name string, data []byte) (created bool, err error)
	// count returns the number of stored objects (store open).
	count() (int, error)
}

// keyedStore implements ResultStore over any objectBackend: it owns the
// entry format (diskEntry JSON), the content addressing
// (sha256(key).json names) and the key verification on read. It is the
// one place results are encoded, so every backend serves byte-identical
// results.
type keyedStore struct {
	objects objectBackend
	// entries tracks the object count (seeded at open, bumped on new
	// puts) so /metrics scrapes don't pay a listing on an unbounded
	// store.
	entries atomic.Int64
}

// diskEntry is the stored representation of one cached result. The
// Result keeps only its exported metrics — the raw per-node statistics
// (Result.Raw) do not survive the round-trip — which is exactly what
// the emitters consume, so served bytes stay identical to a fresh run.
type diskEntry struct {
	Key     string         `json:"key"`
	SavedAt time.Time      `json:"saved_at"`
	Result  *allarm.Result `json:"result"`
}

// newKeyedStore wraps an opened backend, seeding the entry counter.
func newKeyedStore(objects objectBackend) (*keyedStore, error) {
	n, err := objects.count()
	if err != nil {
		return nil, fmt.Errorf("result store: %w", err)
	}
	s := &keyedStore{objects: objects}
	s.entries.Store(int64(n))
	return s, nil
}

// NewDiskStore opens (creating if needed) a directory-backed
// ResultStore rooted at dir: one <sha256(key)>.json file per result,
// written via temp file + rename so a crash (SIGKILL) midway leaves
// either the old content or none — never a torn entry. Each file is a
// single diskEntry JSON object on one line — the same
// one-object-per-line convention as the drain checkpoints' NDJSON, so
// `jq` and log pipelines can process a whole store with `cat
// dir/*.json`. Immutable entries make the directory safe to share
// read-write between a draining old daemon and its restarted successor
// (or a whole fleet on one filesystem).
func NewDiskStore(dir string) (ResultStore, error) {
	fs, err := newFSObjects(dir)
	if err != nil {
		return nil, err
	}
	return newKeyedStore(fs)
}

// objectName maps a job key to its object name. Keys are arbitrary
// strings (they embed %+v-rendered configs), so the name is the key's
// SHA-256; the key itself is stored inside the entry and checked on Get
// — a hash collision or a foreign object can never serve the wrong
// simulation.
func objectName(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:]) + ".json"
}

// Get implements ResultStore (corrupt or mismatched entries are misses,
// never errors: the simulator can always regenerate them).
func (s *keyedStore) Get(key string) (*allarm.Result, bool) {
	data, ok, err := s.objects.get(objectName(key))
	if err != nil || !ok {
		return nil, false
	}
	var e diskEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Key != key || e.Result == nil {
		return nil, false
	}
	return e.Result, true
}

// Put implements ResultStore.
func (s *keyedStore) Put(key string, res *allarm.Result) error {
	data, err := json.Marshal(diskEntry{Key: key, SavedAt: time.Now().UTC(), Result: res})
	if err != nil {
		return err
	}
	data = append(data, '\n')
	created, err := s.objects.put(objectName(key), data)
	if err != nil {
		return err
	}
	if created {
		s.entries.Add(1)
	}
	return nil
}

// Len implements ResultStore (the store itself is unbounded — retention
// is the operator's via the content-addressed names).
func (s *keyedStore) Len() int {
	return int(s.entries.Load())
}

// fsObjects is the directory objectBackend: one file per object,
// written atomically.
type fsObjects struct {
	dir string
}

func newFSObjects(dir string) (fsObjects, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fsObjects{}, fmt.Errorf("result store: %w", err)
	}
	return fsObjects{dir: dir}, nil
}

func (f fsObjects) get(name string) ([]byte, bool, error) {
	data, err := os.ReadFile(filepath.Join(f.dir, name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	return data, true, nil
}

func (f fsObjects) put(name string, data []byte) (bool, error) {
	path := filepath.Join(f.dir, name)
	_, statErr := os.Stat(path)
	if err := AtomicWrite(path, data); err != nil {
		return false, err
	}
	return os.IsNotExist(statErr), nil
}

func (f fsObjects) count() (int, error) {
	names, err := filepath.Glob(filepath.Join(f.dir, "*.json"))
	if err != nil {
		return 0, err
	}
	return len(names), nil
}

// AtomicWrite writes data to path via a same-directory temp file,
// fsync and rename: a crash (SIGKILL included) leaves either the old
// content or none, never a torn file. The file is synced before the
// rename and the parent directory after it, so the guarantee holds
// through power loss too — without the fsyncs, a rename can be durable
// while the data it points at is not, which is exactly a torn entry
// after the next boot. It is the write discipline every persistent
// artifact in the system uses — the result store's entries, the
// daemon's sweep specs and job checkpoints, and allarm-router's sweep
// journal.
func AtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
// Platforms whose directory handles refuse fsync (some network
// filesystems) degrade to the pre-fsync behavior rather than failing
// the write.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
