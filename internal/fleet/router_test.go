package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	allarm "allarm"
	"allarm/internal/server"
)

// stubResult is the deterministic fake simulation every fleet test
// injects: a pure function of the job key, so any two nodes (or runs)
// given the same job produce the same result — exactly the determinism
// contract the real simulator provides, at zero cost.
func stubResult(j allarm.Job) *allarm.Result {
	h := hash64(j.Key())
	return &allarm.Result{
		Benchmark:   j.WorkloadName(),
		PolicyUsed:  j.Config.Policy,
		RuntimeNs:   float64(h%100000) + 0.5,
		Accesses:    h % 977,
		Events:      h % 31,
		PFAllocs:    h % 13,
		NoCEnergyPJ: float64(h%101) / 8.0,
	}
}

// testShard is one allarm-serve backend under test: its daemon, its
// HTTP listener, a kill switch and a per-shard simulation counter.
type testShard struct {
	srv  *server.Server
	ts   *httptest.Server
	url  string
	runs atomic.Int64
	dead atomic.Bool   // when set, every request answers 500
	gate chan struct{} // nil = run immediately; else RunJob blocks on it
}

// newTestShard starts one backend. opts.RunJob is overridden with the
// counting stub.
func newTestShard(t *testing.T, opts server.Options) *testShard {
	t.Helper()
	sh := &testShard{}
	opts.RunJob = func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
		if sh.gate != nil {
			select {
			case <-sh.gate:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		sh.runs.Add(1)
		return stubResult(j), nil
	}
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	inner := srv.Handler()
	sh.srv = srv
	sh.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if sh.dead.Load() {
			http.Error(w, "shard down", http.StatusInternalServerError)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	sh.url = sh.ts.URL
	t.Cleanup(func() {
		sh.ts.Close()
		srv.Close()
	})
	return sh
}

// kill makes the shard answer 500 to everything and severs open
// connections (in-flight SSE streams included) — the closest an
// httptest server gets to a process crash.
func (sh *testShard) kill() {
	sh.dead.Store(true)
	sh.ts.CloseClientConnections()
}

// newTestFleet starts n shards and a router over them.
func newTestFleet(t *testing.T, n int, shardOpts server.Options, ropts Options) (*Router, string, []*testShard) {
	t.Helper()
	shards := make([]*testShard, n)
	urls := make([]string, n)
	for i := range shards {
		shards[i] = newTestShard(t, shardOpts)
		urls[i] = shards[i].url
	}
	ropts.Shards = urls
	if ropts.Attempts == 0 {
		ropts.Attempts = 2
	}
	if ropts.RetryBackoff == 0 {
		ropts.RetryBackoff = 5 * time.Millisecond
	}
	if ropts.HealthInterval == 0 {
		// Tests control health transitions explicitly; a long default
		// interval keeps the loop from flipping state mid-assertion.
		ropts.HealthInterval = time.Hour
	}
	rt, err := New(ropts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts.URL, shards
}

func postJSON(t *testing.T, url string, body any, header ...string) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string, header ...string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func submit(t *testing.T, base string, req server.SweepRequest, header ...string) server.SubmitResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/sweeps", req, header...)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sr server.SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitFleetDone polls the router until the sweep is final.
func waitFleetDone(t *testing.T, base, id string, header ...string) SweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, base+"/v1/sweeps/"+id, header...)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d: %s", resp.StatusCode, body)
		}
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusDone || v.Status == StatusDegraded {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("fleet sweep did not finish in time")
	return SweepView{}
}

func totalRuns(shards []*testShard) int64 {
	var n int64
	for _, sh := range shards {
		n += sh.runs.Load()
	}
	return n
}

// bigRequest expands to 24 jobs — enough that both shards of a pair get
// work with near-certainty under any ring layout.
func bigRequest() server.SweepRequest {
	return server.SweepRequest{
		Benchmarks: allarm.Benchmarks(), // 8
		Policies:   []string{"baseline", "allarm", "allarm-hyst"},
		Config:     &server.ConfigOverrides{Threads: 4, AccessesPerThread: 100},
	}
}

// TestFleetByteIdenticalToSingleNode is the tentpole acceptance
// criterion: the same request through a two-shard fleet and through one
// standalone daemon renders byte-identical results in every format.
func TestFleetByteIdenticalToSingleNode(t *testing.T) {
	_, fleetBase, shards := newTestFleet(t, 2, server.Options{Workers: 4}, Options{})
	single := newTestShard(t, server.Options{Workers: 4})

	req := bigRequest()
	fleetID := submit(t, fleetBase, req)
	singleID := submit(t, single.url, req)
	fv := waitFleetDone(t, fleetBase, fleetID.ID)
	if fv.Status != StatusDone {
		t.Fatalf("fleet sweep status %q, want done", fv.Status)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, _ := get(t, single.url+"/v1/sweeps/"+singleID.ID+"/results?format=ndjson")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("single-node sweep did not finish")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Both shards must actually have served part of the sweep — a
	// gather that degenerates to one node proves nothing.
	for i, sh := range shards {
		if sh.runs.Load() == 0 {
			t.Fatalf("shard %d ran no jobs; placement degenerated (runs: %d/%d)",
				i, shards[0].runs.Load(), shards[1].runs.Load())
		}
	}
	if got := totalRuns(shards); got != 24 {
		t.Fatalf("fleet ran %d simulations, want 24", got)
	}

	for _, format := range []string{"json", "ndjson", "csv", "table"} {
		_, gathered := get(t, fleetBase+"/v1/sweeps/"+fleetID.ID+"/results?format="+format)
		_, local := get(t, single.url+"/v1/sweeps/"+singleID.ID+"/results?format="+format)
		if !bytes.Equal(gathered, local) {
			t.Errorf("format %s: gathered output differs from single node:\nfleet:\n%s\nsingle:\n%s",
				format, gathered, local)
		}
	}

	// The finished stream replays the full history to a late subscriber:
	// job events for every job (with global indices and shard names) and
	// a final sweep event.
	resp, events := get(t, fleetBase+"/v1/sweeps/"+fleetID.ID+"/events")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(events), `"status": "done"`) && !strings.Contains(string(events), `"status":"done"`) {
		t.Errorf("event replay missing final sweep event:\n%s", events)
	}
	seen := make(map[int]bool)
	for _, line := range strings.Split(string(events), "\n") {
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var je jobEvent
			if json.Unmarshal([]byte(data), &je) == nil && je.Shard != "" {
				seen[je.Index] = true
			}
		}
	}
	if len(seen) != 24 {
		t.Errorf("event replay covered %d/24 job indices", len(seen))
	}
}

// TestFleetResubmitZeroResimulations: a re-submitted sweep is answered
// entirely from the shards' content-addressed caches. Placement by
// Job.Key guarantees every job revisits the shard that cached it.
func TestFleetResubmitZeroResimulations(t *testing.T) {
	_, base, shards := newTestFleet(t, 3, server.Options{Workers: 4}, Options{})
	req := bigRequest()

	first := submit(t, base, req)
	waitFleetDone(t, base, first.ID)
	ran := totalRuns(shards)
	if ran != 24 {
		t.Fatalf("first submission ran %d simulations, want 24", ran)
	}

	second := submit(t, base, req)
	v := waitFleetDone(t, base, second.ID)
	if v.Status != StatusDone {
		t.Fatalf("resubmit status %q, want done", v.Status)
	}
	if got := totalRuns(shards); got != ran {
		t.Fatalf("resubmit re-ran simulations: %d -> %d", ran, got)
	}

	// Overlapping sweep: only genuinely new jobs simulate.
	req.PFKiB = []int{64} // same grid at an explicit non-default coverage
	third := submit(t, base, req)
	waitFleetDone(t, base, third.ID)
	if got := totalRuns(shards); got != ran+24 {
		t.Fatalf("overlapping sweep ran %d new simulations, want 24", got-ran)
	}
}

// TestFleetShardDeathDegradesGracefully is the partial-failure
// acceptance criterion: a shard crashing mid-sweep yields a well-formed
// gather with that shard's jobs reported as skipped rows — never a
// router error.
func TestFleetShardDeathDegradesGracefully(t *testing.T) {
	victim := newTestShard(t, server.Options{Workers: 4})
	victim.gate = make(chan struct{}) // victim's jobs block until released
	healthy := newTestShard(t, server.Options{Workers: 4})
	rt, err := New(Options{
		Shards:         []string{healthy.url, victim.url},
		Attempts:       2,
		RetryBackoff:   5 * time.Millisecond,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	base := ts.URL

	sr := submit(t, base, bigRequest())

	// Find the placement and wait until every job on the healthy shard
	// is done (the victim's are blocked on its gate).
	var view SweepView
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, body := get(t, base+"/v1/sweeps/"+sr.ID)
		if err := json.Unmarshal(body, &view); err != nil {
			t.Fatal(err)
		}
		healthyDone, healthyTotal := 0, 0
		for _, j := range view.Jobs {
			if j.Shard == healthy.url {
				healthyTotal++
				if j.Status == server.JobDone {
					healthyDone++
				}
			}
		}
		if healthyTotal > 0 && healthyDone == healthyTotal {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy shard never finished its jobs: %+v", view)
		}
		time.Sleep(5 * time.Millisecond)
	}
	victimJobs := 0
	for _, j := range view.Jobs {
		if j.Shard == victim.url {
			victimJobs++
		}
	}
	if victimJobs == 0 {
		t.Fatal("victim shard was assigned no jobs; placement degenerated")
	}

	victim.kill()
	close(victim.gate) // release its workers so cleanup can proceed

	final := waitFleetDone(t, base, sr.ID)
	if final.Status != StatusDegraded {
		t.Fatalf("sweep status %q, want degraded", final.Status)
	}
	for i, j := range final.Jobs {
		switch j.Shard {
		case victim.url:
			if j.Status != server.JobSkipped {
				t.Errorf("job %d on dead shard: status %q, want skipped", i, j.Status)
			}
			if !strings.Contains(j.Error, "shard") {
				t.Errorf("job %d: error does not name the shard: %q", i, j.Error)
			}
		case healthy.url:
			if j.Status != server.JobDone {
				t.Errorf("job %d on healthy shard: status %q, want done", i, j.Status)
			}
		}
	}

	// The gather is well-formed: one row per job in spec order, skipped
	// rows carrying the error, healthy rows carrying metrics.
	resp, body := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format=ndjson")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d: %s", resp.StatusCode, body)
	}
	recs, err := allarm.ReadRecords(bytes.NewReader(body))
	if err != nil {
		t.Fatalf("gathered NDJSON is malformed: %v", err)
	}
	if len(recs) != len(final.Jobs) {
		t.Fatalf("gathered %d rows for %d jobs", len(recs), len(final.Jobs))
	}
	for i, rec := range recs {
		onVictim := final.Jobs[i].Shard == victim.url
		if onVictim && rec.Error == "" {
			t.Errorf("row %d: skipped job has no error", i)
		}
		if !onVictim && (rec.Error != "" || rec.RecordMetrics == nil) {
			t.Errorf("row %d: healthy job malformed: %+v", i, rec)
		}
	}

	// Every emitter renders the partial gather without error.
	for _, format := range []string{"json", "csv", "table"} {
		resp, _ := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format="+format)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("format %s on degraded sweep: status %d", format, resp.StatusCode)
		}
	}
}

// TestFleetHealthExclusionAndReadmission: a shard failing its probes is
// excluded from new placements and re-admitted when it recovers, with
// the outage visible in /metrics.
func TestFleetHealthExclusionAndReadmission(t *testing.T) {
	_, base, shards := newTestFleet(t, 2, server.Options{Workers: 2}, Options{
		HealthInterval: 10 * time.Millisecond,
		FailAfter:      2,
	})
	sick := shards[1]
	sick.dead.Store(true)

	waitShardHealth(t, base, sick.url, false)

	// With the sick shard excluded, everything lands on the survivor.
	sr := submit(t, base, bigRequest())
	v := waitFleetDone(t, base, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("sweep status %q, want done", v.Status)
	}
	for i, j := range v.Jobs {
		if j.Shard != shards[0].url {
			t.Fatalf("job %d placed on excluded shard %s", i, j.Shard)
		}
	}
	if sick.runs.Load() != 0 {
		t.Fatalf("excluded shard ran %d jobs", sick.runs.Load())
	}

	// Recovery: one good probe re-admits it.
	sick.dead.Store(false)
	waitShardHealth(t, base, sick.url, true)

	var m Metrics
	_, body := get(t, base+"/metrics")
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	var row *ShardMetrics
	for i := range m.Shards {
		if m.Shards[i].Name == sick.url {
			row = &m.Shards[i]
		}
	}
	if row == nil {
		t.Fatal("sick shard missing from /metrics")
	}
	if row.UnhealthyIntervals < 1 || row.UnhealthySeconds <= 0 {
		t.Errorf("outage not accounted: %+v", *row)
	}
	if m.ShardsHealthy != 2 || m.ShardsTotal != 2 {
		t.Errorf("fleet health after recovery: %d/%d", m.ShardsHealthy, m.ShardsTotal)
	}
}

// waitShardHealth polls the router's /healthz until the named shard
// reaches the wanted state.
func waitShardHealth(t *testing.T, base, name string, healthy bool) {
	t.Helper()
	want := "unhealthy"
	if healthy {
		want = "healthy"
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		_, body := get(t, base+"/healthz")
		var h struct {
			Shards map[string]string `json:"shards"`
		}
		if err := json.Unmarshal(body, &h); err == nil && h.Shards[name] == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shard %s never became %s", name, want)
}

// TestFleetGuardRails: bearer auth, per-sweep job quotas and rate
// limits on the router, with the router itself authenticating to
// guarded shards via its own credential.
func TestFleetGuardRails(t *testing.T) {
	shardGuard, err := server.NewGuard([]server.ClientConfig{
		{Token: "fleet-secret", Name: "router"},
	})
	if err != nil {
		t.Fatal(err)
	}
	routerGuard, err := server.NewGuard([]server.ClientConfig{
		{Token: "tok-full", Name: "full"},
		{Token: "tok-quota", Name: "quota", MaxJobs: 2},
		{Token: "tok-burst", Name: "burst", Burst: 2}, // fixed 2-request budget
	})
	if err != nil {
		t.Fatal(err)
	}
	_, base, shards := newTestFleet(t, 2,
		server.Options{Workers: 2, Guard: shardGuard},
		Options{Guard: routerGuard, ShardToken: "fleet-secret"})

	small := server.SweepRequest{
		Benchmarks: []string{"barnes", "x264", "dedup"},
		Config:     &server.ConfigOverrides{Threads: 2, AccessesPerThread: 50},
	}

	// No/unknown token: 401. Open paths stay open.
	resp, _ := postJSON(t, base+"/v1/sweeps", small)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated submit: status %d, want 401", resp.StatusCode)
	}
	resp, _ = postJSON(t, base+"/v1/sweeps", small, "Authorization", "Bearer nope")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad token: status %d, want 401", resp.StatusCode)
	}
	resp, _ = get(t, base+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz behind auth: status %d", resp.StatusCode)
	}

	// Quota: the sweep expands to 3 jobs, over tok-quota's cap of 2.
	resp, body := postJSON(t, base+"/v1/sweeps", small, "Authorization", "Bearer tok-quota")
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("over-quota submit: status %d: %s", resp.StatusCode, body)
	}

	// Rate limit: the fixed budget allows exactly two requests.
	for i := 0; i < 2; i++ {
		resp, _ = get(t, base+"/v1/sweeps", "Authorization", "Bearer tok-burst")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("budgeted request %d: status %d", i, resp.StatusCode)
		}
	}
	resp, _ = get(t, base+"/v1/sweeps", "Authorization", "Bearer tok-burst")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// The full client's sweep flows end-to-end: the router authenticates
	// to the guarded shards with its own token.
	auth := []string{"Authorization", "Bearer tok-full"}
	sr := submit(t, base, small, auth...)
	v := waitFleetDone(t, base, sr.ID, auth...)
	if v.Status != StatusDone {
		t.Fatalf("guarded sweep status %q, want done", v.Status)
	}
	if got := totalRuns(shards); got != 3 {
		t.Fatalf("guarded sweep ran %d jobs, want 3", got)
	}
}

// TestFleetTraceReupload: a trace uploaded while one shard is down is
// healed at submit time — the router re-uploads from its own copy when
// the shard answers "unknown trace" — so the sweep still completes
// cleanly across the whole fleet.
func TestFleetTraceReupload(t *testing.T) {
	_, base, shards := newTestFleet(t, 2, server.Options{Workers: 2}, Options{})
	amnesiac := shards[1]

	wl, err := allarm.BenchmarkWorkload("barnes", 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := allarm.CaptureTrace(&trace, wl, 1); err != nil {
		t.Fatal(err)
	}

	// The broadcast to the down shard fails; the router keeps its copy.
	amnesiac.dead.Store(true)
	resp, body := func() (*http.Response, []byte) {
		resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(trace.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		out, _ := io.ReadAll(resp.Body)
		return resp, out
	}()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("trace upload: status %d: %s", resp.StatusCode, body)
	}
	var tr server.TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	amnesiac.dead.Store(false)

	// Enough jobs that the amnesiac shard gets some with near-certainty.
	req := server.SweepRequest{
		Workloads: []string{tr.Workload},
		Policies:  []string{"baseline", "allarm", "allarm-hyst"},
		PFKiB:     []int{32, 64, 128, 256},
		Config:    &server.ConfigOverrides{Threads: 2, AccessesPerThread: 32},
	}
	sr := submit(t, base, req)
	v := waitFleetDone(t, base, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("trace sweep status %q, want done: %+v", v.Status, v.Jobs)
	}
	if amnesiac.runs.Load() == 0 {
		t.Skip("placement sent no jobs to the amnesiac shard; re-upload path not exercised this run")
	}
	if got := totalRuns(shards); got != int64(v.Total) {
		t.Fatalf("ran %d simulations for %d jobs", got, v.Total)
	}
}

// TestFleetExplicitJobSpecsKeyIdentity: the sub-sweep JobSpec encoding
// round-trips Job.Key exactly — a shard expanding its explicit list
// computes the same keys the router hashed for placement. This is the
// invariant the whole cache-coherence story rests on.
func TestFleetExplicitJobSpecsKeyIdentity(t *testing.T) {
	req := server.SweepRequest{
		Benchmarks: []string{"barnes", "x264"},
		Policies:   []string{"baseline", "allarm"},
		PFKiB:      []int{64, 256},
		Config:     &server.ConfigOverrides{Threads: 8, AccessesPerThread: 10},
	}
	sweep, err := server.ExpandSweep(&req, nil)
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := server.RequestConfig(req.Config)

	// Re-encode every job the way handleSubmit does, re-expand the
	// explicit list shard-side, and compare keys position by position.
	specs := make([]server.JobSpec, sweep.Len())
	for i, job := range sweep.Jobs {
		specs[i] = server.JobSpec{Workload: specOf(job), Policy: job.Config.Policy.String()}
		if job.Config.PFBytes != baseCfg.PFBytes {
			specs[i].PFKiB = job.Config.PFBytes >> 10
		}
	}
	shardSweep, err := server.ExpandSweep(&server.SweepRequest{Jobs: specs, Config: req.Config}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if shardSweep.Len() != sweep.Len() {
		t.Fatalf("shard expansion has %d jobs, want %d", shardSweep.Len(), sweep.Len())
	}
	for i := range sweep.Jobs {
		if got, want := shardSweep.Jobs[i].Key(), sweep.Jobs[i].Key(); got != want {
			t.Errorf("job %d: key drifted through JobSpec round trip:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestRouterRejectsBadConfigs: constructor validation.
func TestRouterRejectsBadConfigs(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Error("no shards accepted")
	}
	if _, err := New(Options{Shards: []string{"http://a", "http://a/"}}); err == nil {
		t.Error("duplicate shards accepted")
	}
	if _, err := New(Options{Shards: []string{""}}); err == nil {
		t.Error("empty shard URL accepted")
	}
}

// TestFleetVersionEndpoint: the router reports the library version,
// unauthenticated.
func TestFleetVersionEndpoint(t *testing.T) {
	_, base, _ := newTestFleet(t, 1, server.Options{Workers: 1}, Options{})
	resp, body := get(t, base+"/v1/version")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("version: status %d", resp.StatusCode)
	}
	var v struct {
		Version string `json:"version"`
	}
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.Version != allarm.Version {
		t.Fatalf("version %q, want %q", v.Version, allarm.Version)
	}
}
