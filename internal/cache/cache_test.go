package cache

import (
	"testing"
	"testing/quick"

	"allarm/internal/mem"
)

func line(i int) mem.PAddr { return mem.PAddr(i * mem.LineBytes) }

func TestStatePredicates(t *testing.T) {
	cases := []struct {
		s                      State
		valid, dirty, writable bool
	}{
		{Invalid, false, false, false},
		{Shared, true, false, false},
		{Exclusive, true, false, true},
		{Owned, true, true, false},
		{Modified, true, true, true},
	}
	for _, c := range cases {
		if c.s.Valid() != c.valid || c.s.Dirty() != c.dirty || c.s.Writable() != c.writable {
			t.Fatalf("state %v predicates wrong", c.s)
		}
	}
}

func TestInsertLookupRemove(t *testing.T) {
	c := New("t", 4096, 4) // 64 lines, 16 sets
	c.Insert(Line{Addr: line(1), State: Exclusive})
	if l := c.Lookup(line(1)); l == nil || l.State != Exclusive {
		t.Fatal("lookup after insert failed")
	}
	if l := c.Peek(line(2)); l != nil {
		t.Fatal("peek of absent line succeeded")
	}
	if _, ok := c.Remove(line(1)); !ok {
		t.Fatal("remove failed")
	}
	if c.Peek(line(1)) != nil {
		t.Fatal("line survived removal")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New("t", 2*mem.LineBytes, 2) // 1 set, 2 ways
	c.Insert(Line{Addr: line(0), State: Exclusive})
	c.Insert(Line{Addr: line(1), State: Exclusive})
	c.Lookup(line(0)) // refresh 0 → 1 is LRU
	v, evicted := c.Insert(Line{Addr: line(2), State: Exclusive})
	if !evicted || v.Addr != line(1) {
		t.Fatalf("evicted %#x, want line 1", uint64(v.Addr))
	}
}

func TestPeekDoesNotTouchLRU(t *testing.T) {
	c := New("t", 2*mem.LineBytes, 2)
	c.Insert(Line{Addr: line(0), State: Exclusive})
	c.Insert(Line{Addr: line(1), State: Exclusive})
	c.Peek(line(0)) // must NOT refresh
	v, _ := c.Insert(Line{Addr: line(2), State: Exclusive})
	if v.Addr != line(0) {
		t.Fatal("Peek refreshed LRU")
	}
}

func TestInsertDuplicatePanics(t *testing.T) {
	c := New("t", 4096, 4)
	c.Insert(Line{Addr: line(3), State: Shared})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on duplicate insert")
		}
	}()
	c.Insert(Line{Addr: line(3), State: Shared})
}

func TestSetIndexDistribution(t *testing.T) {
	c := New("t", 4096, 4)
	if c.SetIndex(line(0)) == c.SetIndex(line(1)) {
		t.Fatal("adjacent lines map to the same set")
	}
	if c.SetIndex(line(0)) != c.SetIndex(line(c.Sets())) {
		t.Fatal("lines one stride apart map to different sets")
	}
}

func TestCacheInvariantNoDuplicates(t *testing.T) {
	c := New("t", 1024, 2)
	f := func(ops []uint8) bool {
		for _, op := range ops {
			a := line(int(op % 32))
			if c.Peek(a) == nil {
				c.Insert(Line{Addr: a, State: Exclusive})
			} else if op%3 == 0 {
				c.Remove(a)
			} else {
				c.Lookup(a)
			}
		}
		// No duplicate tags; occupancy within capacity.
		seen := map[mem.PAddr]bool{}
		dup := false
		c.ForEachValid(func(l Line) {
			if seen[l.Addr] {
				dup = true
			}
			seen[l.Addr] = true
		})
		return !dup && c.CountValid() <= 16
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCounting(t *testing.T) {
	c := New("t", 2*mem.LineBytes, 2)
	c.Insert(Line{Addr: line(0), State: Modified})
	c.Insert(Line{Addr: line(1), State: Exclusive})
	c.Insert(Line{Addr: line(2), State: Shared}) // evicts M line (dirty)
	s := c.Stats()
	if s.Fills != 3 || s.Evictions != 1 || s.EvictionsDirty != 1 {
		t.Fatalf("stats = %+v", s)
	}
	c.ResetStats()
	if c.Stats().Fills != 0 {
		t.Fatal("ResetStats failed")
	}
	if c.CountValid() != 2 {
		t.Fatal("ResetStats touched contents")
	}
}

// --- Hierarchy tests ---

func newHier() *Hierarchy {
	return NewHierarchy(512, 2, 2048, 4) // 8-line L1, 32-line L2
}

func TestHierarchyMissThenHit(t *testing.T) {
	h := newHier()
	if r := h.Access(line(1), false); r.Outcome != Miss {
		t.Fatalf("cold access = %v", r.Outcome)
	}
	h.Fill(line(1), Exclusive, false, 7)
	if r := h.Access(line(1), false); r.Outcome != Hit || r.Level != 1 {
		t.Fatalf("after fill: %+v", r)
	}
	if l := h.PeekLine(line(1)); l.Version != 7 {
		t.Fatalf("version = %d", l.Version)
	}
}

func TestHierarchySilentEUpgrade(t *testing.T) {
	h := newHier()
	h.Fill(line(1), Exclusive, false, 0)
	if r := h.Access(line(1), true); r.Outcome != Hit {
		t.Fatalf("store to E = %v", r.Outcome)
	}
	if st := h.ProbeState(line(1)); st != Modified {
		t.Fatalf("state after silent upgrade = %v", st)
	}
}

func TestHierarchyUpgradeMissOnShared(t *testing.T) {
	h := newHier()
	h.Fill(line(1), Shared, false, 0)
	if r := h.Access(line(1), true); r.Outcome != UpgradeMiss {
		t.Fatalf("store to S = %v", r.Outcome)
	}
	// The line must be retained pending the upgrade.
	if h.ProbeState(line(1)) != Shared {
		t.Fatal("upgrade miss dropped the line")
	}
}

func TestExclusiveHierarchySwap(t *testing.T) {
	h := newHier()
	// Fill L1 beyond capacity so line 0 demotes to L2.
	for i := 0; i < 9; i++ {
		h.Fill(line(i*h.L1().Sets()), Exclusive, false, 0) // same L1 set
	}
	// One of the early lines must now be in L2, not L1.
	demoted := line(0)
	if h.L1().Peek(demoted) != nil {
		t.Skip("line 0 still in L1 under this geometry")
	}
	if h.L2().Peek(demoted) == nil {
		t.Fatal("demoted line not in L2")
	}
	if r := h.Access(demoted, false); r.Outcome != Hit || r.Level != 2 {
		t.Fatalf("L2 hit = %+v", r)
	}
	// Exclusive property: after the swap the line is in L1 only.
	if h.L2().Peek(demoted) != nil {
		t.Fatal("line duplicated across levels after swap")
	}
}

func TestHierarchyInvalidate(t *testing.T) {
	h := newHier()
	h.Fill(line(1), Modified, false, 3)
	st, dirty := h.Invalidate(line(1))
	if st != Modified || !dirty {
		t.Fatalf("Invalidate = %v,%v", st, dirty)
	}
	if h.ProbeState(line(1)) != Invalid {
		t.Fatal("line survived invalidation")
	}
	if st, dirty := h.Invalidate(line(9)); st != Invalid || dirty {
		t.Fatal("invalidate of absent line reported a hit")
	}
}

func TestHierarchyDowngrade(t *testing.T) {
	h := newHier()
	h.Fill(line(1), Modified, false, 0)
	if prev := h.Downgrade(line(1)); prev != Modified {
		t.Fatalf("prev = %v", prev)
	}
	if st := h.ProbeState(line(1)); st != Owned {
		t.Fatalf("M downgraded to %v, want O", st)
	}
	h.Fill(line(2), Exclusive, false, 0)
	h.Downgrade(line(2))
	if st := h.ProbeState(line(2)); st != Shared {
		t.Fatalf("E downgraded to %v, want S", st)
	}
}

func TestVictimClassification(t *testing.T) {
	h := NewHierarchy(128, 2, 128, 2) // 2-line L1, 2-line L2, 1 set each
	h.Fill(line(0), Shared, false, 0)
	h.Fill(line(1), Modified, false, 5)
	h.Fill(line(2), Exclusive, false, 0)
	h.Fill(line(3), Exclusive, false, 0)
	// Next fill overflows: L2 victim emerges. Shared victims are silent,
	// M/E victims must be reported.
	var victims []Victim
	victims = append(victims, h.Fill(line(4), Exclusive, false, 0)...)
	victims = append(victims, h.Fill(line(5), Exclusive, false, 0)...)
	for _, v := range victims {
		if v.State == Shared {
			t.Fatalf("shared victim reported: %+v", v)
		}
		if v.State == Modified && v.Version != 5 {
			t.Fatalf("dirty victim lost its version: %+v", v)
		}
	}
}

func TestSetTracked(t *testing.T) {
	h := newHier()
	h.Fill(line(1), Exclusive, true, 0)
	if !h.PeekLine(line(1)).Untracked {
		t.Fatal("untracked mark lost")
	}
	h.SetTracked(line(1))
	if h.PeekLine(line(1)).Untracked {
		t.Fatal("SetTracked did not clear the mark")
	}
}

func TestUpgradeFillInL2(t *testing.T) {
	h := newHier()
	// Place a Shared line, demote it to L2, then grant M.
	h.Fill(line(0), Shared, false, 2)
	for i := 1; i <= 8; i++ {
		h.Fill(line(i*h.L1().Sets()), Exclusive, false, 0)
	}
	if h.L2().Peek(line(0)) == nil {
		t.Skip("line 0 not demoted under this geometry")
	}
	h.Fill(line(0), Modified, false, 3)
	if st := h.ProbeState(line(0)); st != Modified {
		t.Fatalf("upgrade-in-L2 state = %v", st)
	}
	if h.L1().Peek(line(0)) == nil {
		t.Fatal("upgrade grant did not promote to L1")
	}
}
