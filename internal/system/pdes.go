package system

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"allarm/internal/coherence"
	"allarm/internal/core"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// Conservative parallel discrete-event simulation (PDES).
//
// A sharded machine partitions its tiles (cpu + cache controller +
// directory slice + memory controller) into contiguous blocks, one
// event engine per block, and drains the engines concurrently inside
// conservative time windows of width equal to the NoC's minimum
// cross-node latency (noc.MinCrossLatency — one hop plus control
// serialization). Within a window tiles cannot observe each other: the
// only cross-tile coupling is coherence messages, and none sent inside
// the window can arrive before it closes. Every cross-tile send is
// therefore staged — including sends between tiles of the same shard,
// because link occupancy is global state — and applied at the window
// barrier by the coordinator alone. Same-node messages never touch the
// mesh and are delivered by the owning shard immediately.
//
// Windows are adaptive: the next window starts at the earliest pending
// event across all shards, so idle stretches cost one barrier, not one
// barrier per lookahead. The run advances in whole windows; barriers
// are the only safe snapshot/step boundaries, and at each barrier all
// shard clocks agree.
//
// Determinism: results are bit-identical to the serial engine because
// every barrier reconstructs the exact serial event order. The serial
// tie-break is a global FIFO counter — same-timestamp events fire in
// the order their scheduling calls executed — and that order is a pure
// function of the heap's structure, so it can be recomputed after the
// fact: each engine logs the window's dispatches and their scheduling
// calls (sim window log), and the barrier replays all logs through one
// virtual heap with a true global counter (replayMerge). The replay
// applies staged sends to the mesh at their exact serial positions
// (link contention resolves identically to a serial run), schedules
// their deliveries with the serial counter values the serial engine
// would have given them, and rewrites every still-pending event's
// provisional per-shard key to its dense serial rank. Within a window
// the provisional keys only need to keep same-tile events in serial
// relative order — which per-engine instant/rank keys do — because
// tiles cannot interact except through the staged sends the replay
// orders exactly.

// shard is one event partition: an engine owning nodes [lo, hi), its
// staged cross-tile sends, and its private delivery free list.
type shard struct {
	m      *Machine
	id     int
	lo, hi int
	eng    *sim.Engine
	port   *shardPort

	staged     []stagedMsg
	deliveries sim.FreeList[delivery]
	localMsgs  uint64

	// Barrier scratch, valid between a window's end and the next
	// window's start: the engine's window log and the pending-key
	// rewrites the replay computed for this shard.
	logE     []sim.LogEntry
	logC     []sim.LogChild
	rewrites []seqRewrite

	// Worker plumbing, valid for the duration of one stepParallel call.
	work chan sim.Time
	res  chan windowResult
}

// stagedMsg is one cross-tile send awaiting the window barrier: the
// send time and the message. Its position in the issuing event's
// scheduling calls is interleaved into the engine's window log
// (LogExternal), which is how the replay recovers the exact serial
// order of mesh sends.
type stagedMsg struct {
	at  sim.Time
	msg *coherence.Msg
}

// seqRewrite maps one pending event's provisional key to its dense
// serial rank, keyed by the (at, seq) identity it currently holds.
type seqRewrite struct {
	at       sim.Time
	from, to uint64
}

type windowResult struct {
	fired uint64
	err   error
}

// shardPort implements coherence.Port for one shard's controllers.
// Same-node messages are delivered locally (no mesh state involved);
// everything else is staged for the barrier, with its call position
// recorded in the window log.
type shardPort struct{ s *shard }

func (p *shardPort) Send(msg *coherence.Msg) {
	s := p.s
	if msg.Src == msg.Dst {
		s.localMsgs++
		d := s.deliveries.Get()
		d.m, d.sh, d.msg = s.m, s, msg
		s.eng.ScheduleAfter(s.m.cfg.NoC.LocalLatency, d)
		return
	}
	s.eng.LogExternal(len(s.staged))
	s.staged = append(s.staged, stagedMsg{at: s.eng.Now(), msg: msg})
}

// effectiveShards clamps the configured SimThreads to what the machine
// supports; 1 selects the serial engine.
func (m *Machine) effectiveShards() int {
	t := m.cfg.SimThreads
	if t > m.cfg.Nodes {
		t = m.cfg.Nodes
	}
	switch {
	case t <= 1:
		return 1
	case m.cfg.CheckInvariants:
		// The invariant checker keeps machine-global shadow state.
		return 1
	case m.mesh.MinCrossLatency() <= 0:
		return 1
	}
	return t
}

// buildShards creates n keyed engines over contiguous tile blocks.
func (m *Machine) buildShards(n int) {
	m.lookahead = m.mesh.MinCrossLatency()
	m.shardOf = make([]int, m.cfg.Nodes)
	base, rem := m.cfg.Nodes/n, m.cfg.Nodes%n
	lo := 0
	for i := 0; i < n; i++ {
		size := base
		if i < rem {
			size++
		}
		s := &shard{m: m, id: i, lo: lo, hi: lo + size, eng: &sim.Engine{}}
		s.eng.SetKeyed()
		s.port = &shardPort{s: s}
		for j := lo; j < lo+size; j++ {
			m.shardOf[j] = i
		}
		m.shards = append(m.shards, s)
		lo += size
	}
}

// runUntil drains one shard up to deadline, converting panics (sealed
// page faults, keyed-range overflow, model bugs) into errors so one
// failing shard cannot take the process down from a worker goroutine.
func (s *shard) runUntil(ctx context.Context, deadline sim.Time) (wr windowResult) {
	defer func() {
		if p := recover(); p != nil {
			wr.err = fmt.Errorf("system: shard %d: %v", s.id, p)
		}
	}()
	fired, err := s.eng.RunUntilCtx(ctx, deadline)
	return windowResult{fired: fired, err: err}
}

// startWorkers launches one goroutine per shard except shard 0, which
// the coordinator drains inline. Channel barriers (not spin loops) keep
// the scheme live at GOMAXPROCS=1.
func (m *Machine) startWorkers(ctx context.Context) {
	for _, s := range m.shards[1:] {
		s.work = make(chan sim.Time)
		s.res = make(chan windowResult)
		go func(s *shard) {
			for dl := range s.work {
				s.res <- s.runUntil(ctx, dl)
			}
		}(s)
	}
}

// stopWorkers releases the worker goroutines. Every dispatched window
// has been joined by the time this runs, so closing is safe.
func (m *Machine) stopWorkers() {
	for _, s := range m.shards[1:] {
		close(s.work)
		s.work, s.res = nil, nil
	}
}

// runWindow drains every shard up to deadline and joins at the barrier.
// Cancellation is polled per shard inside RunUntilCtx, so a parallel
// run aborts within one window. A non-cancellation error (a shard
// panic) takes precedence over concurrent cancellations.
func (m *Machine) runWindow(ctx context.Context, deadline sim.Time) (uint64, error) {
	for _, s := range m.shards[1:] {
		s.work <- deadline
	}
	wr := m.shards[0].runUntil(ctx, deadline)
	total, err := wr.fired, wr.err
	for _, s := range m.shards[1:] {
		wr := <-s.res
		total += wr.fired
		if wr.err != nil && (err == nil || (isCancel(err) && !isCancel(wr.err))) {
			err = wr.err
		}
	}
	return total, err
}

func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// minPending returns the earliest pending event time across shards.
func (m *Machine) minPending() (sim.Time, bool) {
	var best sim.Time
	found := false
	for _, s := range m.shards {
		if at, ok := s.eng.NextAt(); ok && (!found || at < best) {
			best, found = at, true
		}
	}
	return best, found
}

// replayNode is one node of the barrier's virtual serial heap: a
// pending or window-executed engine event identified by its current
// (at, seq) key, or — msg non-nil — a cross-tile delivery the replay
// has sent through the mesh and not yet inserted. ord is the true
// serial sequence the replay assigned.
type replayNode struct {
	at  sim.Time
	ord uint64
	eng int32
	seq uint64
	msg *coherence.Msg
}

func replayBefore(a, b *replayNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// replayPush inserts n into the barrier heap (binary min-heap over
// (at, ord) in m.replayHeap).
func (m *Machine) replayPush(n replayNode) {
	q := append(m.replayHeap, n)
	m.replayHeap = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 1
		if replayBefore(&q[p], &q[i]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// replayPop removes and returns the heap minimum.
func (m *Machine) replayPop() replayNode {
	q := m.replayHeap
	top := q[0]
	n := len(q) - 1
	it := q[n]
	q[n] = replayNode{}
	q = q[:n]
	m.replayHeap = q
	i := 0
	for {
		c := i<<1 + 1
		if c >= n {
			break
		}
		if c+1 < n && replayBefore(&q[c+1], &q[c]) {
			c++
		}
		if replayBefore(&it, &q[c]) {
			break
		}
		q[i] = q[c]
		i = c
	}
	if n > 0 {
		q[i] = it
	}
	return top
}

// captureSeeds snapshots every shard's pending set as the initial
// contents of the next window's virtual heap, ordered exactly as the
// serial engine's FIFO counter would order them. Pending events carry
// either a dense serial rank (assigned by the previous barrier or a
// checkpoint restore) or a provisional instant/rank key (scheduled
// between windows — thread starts, which are staggered onto distinct
// instants); (at, key, shard) reproduces the serial order in both
// cases because ranks sort below every same-instant provisional key
// and shards cover the tiles in ascending order, matching the order
// construction-time scheduling visits them.
func (m *Machine) captureSeeds() {
	buf := m.replayHeap[:0]
	for i, s := range m.shards {
		eng := int32(i)
		s.eng.ForEachPending(func(at sim.Time, seq uint64, h sim.Handler) {
			buf = append(buf, replayNode{at: at, seq: seq, eng: eng})
		})
	}
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].at != buf[j].at {
			return buf[i].at < buf[j].at
		}
		if buf[i].seq != buf[j].seq {
			return buf[i].seq < buf[j].seq
		}
		return buf[i].eng < buf[j].eng
	})
	for i := range buf {
		buf[i].ord = uint64(i)
	}
	m.replayHeap = buf
}

// findLog locates the dispatch record of the event identified by
// (at, seq) in a shard's window log. Entries are in dispatch order,
// which is sorted (at, seq) order.
func findLog(entries []sim.LogEntry, at sim.Time, seq uint64) int {
	i := sort.Search(len(entries), func(i int) bool {
		e := &entries[i]
		if e.At != at {
			return e.At > at
		}
		return e.Seq >= seq
	})
	if i < len(entries) && entries[i].At == at && entries[i].Seq == seq {
		return i
	}
	return -1
}

// barrier reconstructs the exact serial order of the window that just
// ran and re-keys all cross-window state accordingly; see replayMerge.
// Replay invariant violations (a dispatch without a log record, a
// message arriving inside its own window) surface as errors rather
// than crashing the caller.
func (m *Machine) barrier(deadline sim.Time) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("system: window barrier: %v", p)
		}
	}()
	m.replayMerge(deadline)
	return nil
}

// replayMerge is the window barrier: it replays the window's scheduling
// structure — the per-shard logs of who dispatched and what each
// dispatch scheduled, cross-tile sends interleaved at their call
// positions — through one virtual heap with a true global FIFO
// counter, popping (at, ord) minima exactly as the serial engine pops
// (at, seq) minima. Along the way it applies staged sends to the mesh
// in their exact serial order (resolving link contention identically
// to a serial run) and computes each delivery's arrival. When the
// replay passes the deadline, the heap holds precisely the events that
// remain pending, in exact serial order; they are re-ranked densely,
// the shard heaps' keys rewritten in place, and the deliveries
// inserted under their ranks.
func (m *Machine) replayMerge(deadline sim.Time) {
	for _, s := range m.shards {
		s.logE, s.logC = s.eng.EndWindowLog()
		s.rewrites = s.rewrites[:0]
	}
	ctr := uint64(len(m.replayHeap))
	for len(m.replayHeap) > 0 && m.replayHeap[0].at <= deadline {
		n := m.replayPop()
		if n.msg != nil {
			panic("system: replay: delivery inside its own window (lookahead violated)")
		}
		s := m.shards[n.eng]
		ei := findLog(s.logE, n.at, n.seq)
		if ei < 0 {
			panic(fmt.Sprintf("system: replay: shard %d has no dispatch record for the event at %v", n.eng, n.at))
		}
		lo := s.logE[ei].Kids
		hi := int32(len(s.logC))
		if ei+1 < len(s.logE) {
			hi = s.logE[ei+1].Kids
		}
		for _, c := range s.logC[lo:hi] {
			if c.Ext >= 0 {
				st := s.staged[c.Ext]
				arrival := m.mesh.Send(st.at, st.msg.Src, st.msg.Dst, st.msg.Op.Class())
				if arrival <= deadline {
					panic(fmt.Sprintf("system: replay: message sent at %v arrived at %v inside its window", st.at, arrival))
				}
				m.replayPush(replayNode{at: arrival, ord: ctr, eng: int32(m.shardOf[st.msg.Dst]), msg: st.msg})
			} else {
				m.replayPush(replayNode{at: c.At, ord: ctr, eng: n.eng, seq: c.Seq})
			}
			ctr++
		}
	}

	// Everything left is pending: drain in (at, ord) order — the exact
	// serial heap order — assigning dense ranks. Ranks stay below the
	// lowest provisional key (keyedBase of instant 0), so events the
	// next window schedules at the same timestamps sort after them,
	// exactly as their later FIFO seqs would have.
	expect := 0
	for _, s := range m.shards {
		expect += s.eng.Pending()
	}
	deliv := m.delivBuf[:0]
	rank := uint64(0)
	engineItems := 0
	for len(m.replayHeap) > 0 {
		n := m.replayPop()
		rank++
		if n.msg != nil {
			n.ord = rank
			deliv = append(deliv, n)
			continue
		}
		s := m.shards[n.eng]
		s.rewrites = append(s.rewrites, seqRewrite{at: n.at, from: n.seq, to: rank})
		engineItems++
	}
	if engineItems != expect {
		panic(fmt.Sprintf("system: replay covered %d pending events, shards hold %d", engineItems, expect))
	}
	if rank > maxBarrierRank {
		panic(fmt.Sprintf("system: %d pending events exceed the barrier rank range; run with SimThreads=1", rank))
	}
	for _, s := range m.shards {
		rw := s.rewrites
		if len(rw) > 0 {
			sort.Slice(rw, func(i, j int) bool {
				if rw[i].at != rw[j].at {
					return rw[i].at < rw[j].at
				}
				return rw[i].from < rw[j].from
			})
			s.eng.RewriteSeqs(func(at sim.Time, seq uint64) uint64 {
				i := sort.Search(len(rw), func(i int) bool {
					if rw[i].at != at {
						return rw[i].at > at
					}
					return rw[i].from >= seq
				})
				if i >= len(rw) || rw[i].at != at || rw[i].from != seq {
					panic(fmt.Sprintf("system: replay has no rank for the pending event at %v", at))
				}
				return rw[i].to
			})
		}
		for i := range s.staged {
			s.staged[i].msg = nil
		}
		s.staged = s.staged[:0]
	}
	for i := range deliv {
		n := &deliv[i]
		dst := m.shards[n.eng]
		d := dst.deliveries.Get()
		d.m, d.sh, d.msg = m, dst, n.msg
		dst.eng.KeyedInsert(n.at, n.ord, d)
		n.msg = nil
	}
	m.delivBuf = deliv[:0]
}

// maxBarrierRank bounds the dense ranks a barrier may assign: they
// must sort below keyedBase(0) so the next window's provisional keys
// stay above every rank. A machine holds a few pending events per
// tile; millions pending means a model bug, not a big window.
const maxBarrierRank = 1<<24 - 1

// mergeAbandoned delivers staged sends of a window that did not
// complete (cancellation or a shard failure): shards stopped at
// different points, so the log cannot be replayed, and exact order no
// longer matters — the run is over and only well-formedness of the
// partial state does. Sends are applied in (time, source) order and
// deliveries inserted with keys above every pending key.
func (m *Machine) mergeAbandoned() {
	for _, s := range m.shards {
		s.eng.EndWindowLog()
	}
	buf := m.mergeBuf[:0]
	for _, s := range m.shards {
		buf = append(buf, s.staged...)
		for i := range s.staged {
			s.staged[i].msg = nil
		}
		s.staged = s.staged[:0]
	}
	sort.SliceStable(buf, func(i, j int) bool {
		if buf[i].at != buf[j].at {
			return buf[i].at < buf[j].at
		}
		return buf[i].msg.Src < buf[j].msg.Src
	})
	for i, st := range buf {
		arrival := m.mesh.Send(st.at, st.msg.Src, st.msg.Dst, st.msg.Op.Class())
		dst := m.shards[m.shardOf[st.msg.Dst]]
		d := dst.deliveries.Get()
		d.m, d.sh, d.msg = m, dst, st.msg
		dst.eng.KeyedInsert(arrival, 1<<63|uint64(i), d)
		buf[i].msg = nil
	}
	m.mergeBuf = buf[:0]
}

// eachEngine visits the machine's engines: the serial engine, or every
// shard engine in shard order.
func (m *Machine) eachEngine(fn func(*sim.Engine)) {
	if m.shards == nil {
		fn(m.eng)
		return
	}
	for _, s := range m.shards {
		fn(s.eng)
	}
}

// ownerNode resolves the tile an event handler belongs to, which
// decides the shard a restored event is inserted into. Every handler
// shape the checkpoint format knows (cpu step/pend, delivery, deferred
// send, directory event) is owned by exactly one tile.
func (m *Machine) ownerNode(h sim.Handler) (mem.NodeID, bool) {
	switch v := h.(type) {
	case *cpuStep:
		return v.c.spec.Node, true
	case *cpu:
		return v.spec.Node, true
	case *delivery:
		return v.msg.Dst, true
	}
	if n, ok := coherence.SendEventOwner(h); ok {
		return n, true
	}
	if n, ok := core.DirEventOwner(h); ok {
		return n, true
	}
	return 0, false
}

// stepParallel is the sharded counterpart of the serial StepCtx body:
// it advances the run window by window until the phase ends, the event
// bound is crossed (rounded up to a whole window), the budget trips,
// or a shard reports cancellation or failure. It returns only at
// window barriers, so every return point is a safe snapshot boundary.
func (m *Machine) stepParallel(ctx context.Context, window uint64) (bool, error) {
	r := m.run
	m.startWorkers(ctx)
	defer m.stopWorkers()
	var stepFired uint64
	for {
		t0, ok := m.minPending()
		if !ok {
			return m.phaseEnd()
		}
		if m.cfg.MaxEvents > 0 && r.phaseFired >= m.cfg.MaxEvents {
			return false, m.budgetExhausted()
		}
		if window > 0 && stepFired >= window {
			return false, nil
		}
		deadline := t0 + m.lookahead - 1
		m.captureSeeds()
		for _, s := range m.shards {
			s.eng.BeginWindowLog()
		}
		fired, werr := m.runWindow(ctx, deadline)
		r.phaseFired += fired
		stepFired += fired
		if werr != nil {
			// The window did not complete, so the exact-order replay is
			// impossible; deliver staged messages best-effort (arrivals
			// land past every shard's clock regardless of where each
			// shard stopped) so the partial state is well-formed.
			m.mergeAbandoned()
			if !isCancel(werr) {
				return false, werr
			}
			r.cancelled = true
			if r.phase == phaseWarmup {
				m.roiStart = m.now()
				return false, fmt.Errorf("system: cancelled during warmup at t=%v: %w", m.now(), werr)
			}
			m.roiStart = r.roiStart
			return false, fmt.Errorf("system: cancelled at t=%v with %d threads in flight: %w",
				m.now(), len(m.cpus), werr)
		}
		if err := m.barrier(deadline); err != nil {
			return false, err
		}
	}
}
