package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// ring is a consistent-hash ring mapping Job.Key strings to shard
// indices. Each shard contributes `replicas` points derived from its
// name (its base URL), so the mapping depends only on the configured
// shard set — not on ordering, process lifetime or request history:
// every router instance with the same -shards flag computes the same
// placement, and re-submitting a sweep lands every job on the shard
// that already holds its cached result.
//
// Removing one shard (or routing around it while it is unhealthy) moves
// only the keys that pointed at it — the consistent-hashing property
// that keeps the fleet's per-shard caches warm across membership
// changes. ALLARM itself distributes directory entries across
// address-interleaved slices for the same reason: placement by stable
// hash needs no coordination.
type ring struct {
	points []ringPoint // sorted by hash, clockwise
}

type ringPoint struct {
	hash  uint64
	shard int // index into the router's shard slice
}

// hash64 is the ring's hash: the first 8 bytes of SHA-256, matching the
// collision discipline of the result store's content addressing (keys
// embed %+v-rendered configs; a weak hash would cluster them).
func hash64(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// newRing builds the ring for the named shards with the given number of
// points per shard (virtual nodes; more points = smoother balance).
func newRing(names []string, replicas int) *ring {
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &ring{points: make([]ringPoint, 0, len(names)*replicas)}
	for i, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(name + "#" + strconv.Itoa(v)),
				shard: i,
			})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		p, q := r.points[a], r.points[b]
		if p.hash != q.hash {
			return p.hash < q.hash
		}
		// Ties broken by shard index so the order — and therefore every
		// router's placement — is total and deterministic.
		return p.shard < q.shard
	})
	return r
}

// lookup returns the shard owning key: the first point at or after the
// key's hash (wrapping), skipping shards alive reports false for. It
// returns -1 when no shard is alive.
func (r *ring) lookup(key string, alive func(shard int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if alive == nil || alive(p.shard) {
			return p.shard
		}
	}
	return -1
}
