// Package workload models the memory behaviour of the paper's SPLASH2 and
// Parsec benchmarks as parameterised synthetic access-stream generators.
//
// Real benchmark binaries cannot run on this substrate, so each benchmark
// is replaced by a generator calibrated to reproduce the three drivers of
// the paper's results:
//
//  1. the local/remote request mix observed at directories (Figure 2),
//  2. working-set size relative to the private caches (capacity misses),
//  3. the sharing topology (owner-init, stencil, pipeline, migratory).
//
// Streams are deterministic functions of (benchmark, thread, seed), so
// whole-machine simulations are bit-reproducible.
package workload

import (
	"fmt"

	"allarm/internal/mem"
	"allarm/internal/sim"
)

// Access is one memory reference of a thread's instruction stream.
type Access struct {
	// VAddr is the virtual address referenced (any byte of the line).
	VAddr mem.VAddr
	// Write distinguishes stores from loads.
	Write bool
	// Think is the core compute time preceding the access (non-memory
	// instructions).
	Think sim.Time
}

// Stream produces one thread's access sequence. Next returns ok == false
// when the thread's region of interest ends.
type Stream interface {
	Next() (Access, bool)
}

// Workload describes a multi-threaded benchmark.
type Workload interface {
	// Name is the benchmark's identifier (e.g. "ocean-cont").
	Name() string
	// Threads is the thread count the workload was built for.
	Threads() int
	// Stream returns thread t's deterministic access stream; distinct
	// seeds give independent executions.
	Stream(t int, seed uint64) Stream
}

// WarmupStreamer is implemented by workloads with an initialisation pass
// that runs before the measured region of interest (statistics are reset
// at the boundary). A nil returned stream means thread t has no warmup.
type WarmupStreamer interface {
	WarmupStream(t int, seed uint64) Stream
}

// Preplacer is implemented by workloads whose initialisation phase places
// pages before the measured region of interest (e.g. blackscholes' data
// is first-touched by thread 0 during init). The simulator pre-faults
// these pages at the declared toucher's node, mirroring a run where only
// the region of interest is measured (the paper's methodology).
type Preplacer interface {
	// ForEachPage calls fn once per page of the workload's footprint with
	// the thread that first touches it.
	ForEachPage(fn func(page mem.VAddr, thread int))
}

// Layout constants for the synthetic virtual address space. Private
// arenas are spaced far apart so threads never share a page; the shared
// arena sits above all private arenas.
const (
	privateBase   mem.VAddr = 0x1000_0000
	privateStride mem.VAddr = 0x0400_0000 // 64 MiB per thread arena
	globalBase    mem.VAddr = 0x6000_0000
	sharedBase    mem.VAddr = 0x8000_0000
)

// PrivateBase returns thread t's private arena base address.
func PrivateBase(t int) mem.VAddr {
	return privateBase + mem.VAddr(t)*privateStride
}

// GlobalBase returns the read-shared (global) arena base address.
func GlobalBase() mem.VAddr { return globalBase }

// SharedBase returns the shared arena base address.
func SharedBase() mem.VAddr { return sharedBase }

// validate panics on nonsensical generator parameters; workloads are
// constructed from trusted presets and explicit test inputs.
func validateParams(p Params) error {
	switch {
	case p.Name == "":
		return fmt.Errorf("workload: missing name")
	case p.Threads <= 0:
		return fmt.Errorf("workload %s: threads must be positive", p.Name)
	case p.AccessesPerThread <= 0:
		return fmt.Errorf("workload %s: accesses must be positive", p.Name)
	case p.PrivateBytes < mem.PageBytes:
		return fmt.Errorf("workload %s: private region smaller than a page", p.Name)
	case p.SharedBytes < mem.PageBytes:
		return fmt.Errorf("workload %s: shared region smaller than a page", p.Name)
	case p.PrivateFrac < 0 || p.PrivateFrac > 1:
		return fmt.Errorf("workload %s: private fraction out of range", p.Name)
	case p.PrivateWriteFrac < 0 || p.PrivateWriteFrac > 1,
		p.SharedWriteFrac < 0 || p.SharedWriteFrac > 1:
		return fmt.Errorf("workload %s: write fraction out of range", p.Name)
	case p.SeqRunFrac < 0 || p.SeqRunFrac > 1:
		return fmt.Errorf("workload %s: sequential-run fraction out of range", p.Name)
	case uint64(p.SharedBytes)%mem.PageBytes != 0:
		return fmt.Errorf("workload %s: shared bytes must be page-aligned", p.Name)
	case uint64(p.PrivateBytes)%mem.PageBytes != 0:
		return fmt.Errorf("workload %s: private bytes must be page-aligned", p.Name)
	case p.GlobalBytes < 0 || (p.GlobalBytes > 0 && uint64(p.GlobalBytes)%mem.PageBytes != 0):
		return fmt.Errorf("workload %s: global bytes must be page-aligned", p.Name)
	case p.GlobalFrac < 0 || p.GlobalFrac+p.PrivateFrac > 1:
		return fmt.Errorf("workload %s: global+private fractions exceed 1", p.Name)
	case p.GlobalFrac > 0 && p.GlobalBytes == 0:
		return fmt.Errorf("workload %s: global fraction without a global region", p.Name)
	case p.Threads > 20:
		return fmt.Errorf("workload %s: private arenas overrun the global arena above 20 threads", p.Name)
	}
	return nil
}
