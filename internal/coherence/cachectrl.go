package coherence

import (
	"fmt"

	"allarm/internal/cache"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// CtrlStats counts cache-controller events.
type CtrlStats struct {
	Requests     uint64 // GetS/GetM sent
	Fills        uint64
	ProbesServed uint64
	PutMs        uint64
	PutEs        uint64
	// UntrackedFills counts ALLARM fills granted without a probe-filter
	// entry (thread-local service path).
	UntrackedFills uint64
	// UncachedFills counts no-fill grants: the data was consumed without
	// installing the line (deferred-allocation policies).
	UncachedFills uint64
}

// CacheCtrl is one node's cache-side coherence controller, fronting the
// private L1/L2 hierarchy. It services core accesses (one outstanding
// demand miss, matching the in-order cores of the evaluated system) and
// answers coherence probes.
type CacheCtrl struct {
	node mem.NodeID
	hier *cache.Hierarchy
	eng  *sim.Engine
	port Port
	home func(mem.PAddr) mem.NodeID

	// serviceTime is the tag/data array occupancy per operation (Table I:
	// 1 ns cache access latency); probes and demand accesses contend for
	// it through nextFree.
	serviceTime sim.Time
	nextFree    sim.Time

	// pending is the single outstanding demand miss, held inline so a
	// miss costs no allocation.
	pending    mshr
	hasPending bool

	// pool recycles the messages this controller sends; sends recycles
	// the deferred-send records for messages injected at array release.
	pool  MsgPool
	sends sim.FreeList[sendEvent]

	// OnStore and OnLoad, when non-nil, observe every committed store
	// (with the line's new version) and completed load (with the version
	// read). The system's invariant checker uses them; they are nil in
	// performance runs.
	OnStore func(addr mem.PAddr, version uint64)
	OnLoad  func(addr mem.PAddr, version uint64)

	stats CtrlStats
}

// mshr is the single outstanding demand miss. done is a Handler — not
// a closure — so an in-flight miss can be checkpointed: the system
// layer resolves the handler's identity through its snapshot registry.
type mshr struct {
	addr   mem.PAddr
	write  bool
	issued sim.Time
	done   sim.Handler
}

// sendEvent injects a message when the cache arrays release it. Records
// are recycled through the controller's free list, so deferred sends
// allocate nothing in steady state.
type sendEvent struct {
	c *CacheCtrl
	m *Msg
}

// Handle implements sim.Handler: return the record first, then send (the
// send may itself schedule more deferred sends and reuse the record).
func (s *sendEvent) Handle(now sim.Time) {
	c, m := s.c, s.m
	s.m = nil
	c.sends.Put(s)
	c.port.Send(m)
}

// NewCacheCtrl builds a controller for node over hier, sending messages
// through port and resolving line homes with home.
func NewCacheCtrl(node mem.NodeID, hier *cache.Hierarchy, eng *sim.Engine, port Port, home func(mem.PAddr) mem.NodeID, serviceTime sim.Time) *CacheCtrl {
	return &CacheCtrl{
		node:        node,
		hier:        hier,
		eng:         eng,
		port:        port,
		home:        home,
		serviceTime: serviceTime,
	}
}

// Node returns the controller's node ID.
func (c *CacheCtrl) Node() mem.NodeID { return c.node }

// Hierarchy exposes the private caches (stats, invariant checks).
func (c *CacheCtrl) Hierarchy() *cache.Hierarchy { return c.hier }

// Stats returns a copy of the controller statistics.
func (c *CacheCtrl) Stats() CtrlStats { return c.stats }

// HasPending reports whether a demand miss is outstanding (test helper).
func (c *CacheCtrl) HasPending() bool { return c.hasPending }

// PoolStats returns the controller's message-pool counters (tests,
// recycle diagnostics).
func (c *CacheCtrl) PoolStats() MsgPoolStats { return c.pool.Stats() }

// SharePool switches the controller's message pool to cross-goroutine
// release (see MsgPool.SetShared). Parallel machines call it at
// construction, before any event runs.
func (c *CacheCtrl) SharePool() { c.pool.SetShared() }

// ResetStats zeroes the controller and hierarchy counters, keeping cache
// contents (measurement begins after warmup).
func (c *CacheCtrl) ResetStats() {
	c.stats = CtrlStats{}
	c.hier.ResetStats()
}

// occupy reserves the tag/data arrays for one operation starting no
// earlier than now and returns the operation's completion time.
func (c *CacheCtrl) occupy(now sim.Time) sim.Time {
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	c.nextFree = start + c.serviceTime
	return c.nextFree
}

// CoreAccess performs a demand load (write=false) or store (write=true)
// to addr. done.Handle runs when the access completes (hit latency for
// hits; the full coherence transaction for misses). At most one access
// may be outstanding. done is a typed Handler rather than a closure so
// that a miss parked in the MSHR — or the completion event already in
// the queue — remains serializable for machine-state checkpoints.
func (c *CacheCtrl) CoreAccess(now sim.Time, addr mem.PAddr, write bool, done sim.Handler) {
	if c.hasPending {
		panic(fmt.Sprintf("coherence: node %d issued a second outstanding access", c.node))
	}
	addr = mem.LineOf(addr)
	t := c.occupy(now)
	res := c.hier.Access(addr, write)
	if res.Level == 2 {
		t = c.occupy(t) // second array access for the L2 swap
	}
	c.sendPuts(res.Victims)

	if res.Outcome == cache.Hit {
		l := c.hier.PeekLine(addr)
		if l == nil {
			panic("coherence: hit without a line")
		}
		if write {
			if !l.State.Writable() {
				panic("coherence: store hit without writable line")
			}
			l.Version++
			if c.OnStore != nil {
				c.OnStore(addr, l.Version)
			}
		} else if c.OnLoad != nil {
			c.OnLoad(addr, l.Version)
		}
		c.eng.Schedule(t, done)
		return
	}

	op := GetS
	if write {
		op = GetM
	}
	c.pending = mshr{addr: addr, write: write, issued: now, done: done}
	c.hasPending = true
	c.stats.Requests++
	m := c.pool.Get()
	m.Op, m.Addr, m.Src, m.Dst, m.ToDir = op, addr, c.node, c.home(addr), true
	c.port.Send(m)
}

// HandleMsg processes a message delivered to this node's cache controller.
// The controller is the message's final owner: it releases m (back to the
// sender's pool) once the handling flow has consumed it.
func (c *CacheCtrl) HandleMsg(now sim.Time, m *Msg) {
	switch m.Op {
	case DataMsg:
		c.handleFill(now, m)
	case PrbInv, PrbDown, PrbLocal:
		c.handleProbe(now, m)
	default:
		panic(fmt.Sprintf("coherence: cache controller received %v", m))
	}
	m.Release()
}

func (c *CacheCtrl) handleFill(now sim.Time, m *Msg) {
	if !c.hasPending || c.pending.addr != m.Addr {
		panic(fmt.Sprintf("coherence: node %d fill %v without matching MSHR", c.node, m))
	}
	p := c.pending
	c.pending = mshr{}
	c.hasPending = false
	t := c.occupy(now)

	if m.NoFill {
		// Uncached service: the access completes with the delivered data
		// but the line is not installed, so no copy (and no tracking
		// state) survives the transaction. Only read misses may be served
		// this way — an uncached store would have nowhere to commit.
		if p.write {
			panic(fmt.Sprintf("coherence: node %d received a no-fill grant for a store miss", c.node))
		}
		c.stats.UncachedFills++
		if c.OnLoad != nil {
			c.OnLoad(m.Addr, m.Version)
		}
		cmp := c.pool.Get()
		cmp.Op, cmp.Addr, cmp.Src, cmp.Dst, cmp.ToDir = CmpAck, m.Addr, c.node, c.home(m.Addr), true
		cmp.TxnID = m.TxnID
		c.port.Send(cmp)
		c.eng.Schedule(t, p.done)
		return
	}

	c.stats.Fills++
	if m.Untracked {
		c.stats.UntrackedFills++
	}

	version := m.Version
	// An upgrade grant can race a stale-but-older DRAM copy: if we still
	// hold the line with newer data (we were the O-state owner asking for
	// ownership), our version wins.
	if l := c.hier.PeekLine(m.Addr); l != nil && l.Version > version {
		version = l.Version
	}
	grant := m.Grant
	if p.write {
		if !grant.Writable() {
			panic(fmt.Sprintf("coherence: store fill granted non-writable state %v", grant))
		}
		grant = cache.Modified
		version++ // the store commits into the filled line
	}
	victims := c.hier.Fill(m.Addr, grant, m.Untracked, version)
	c.sendPuts(victims)
	if p.write {
		if c.OnStore != nil {
			c.OnStore(m.Addr, version)
		}
	} else if c.OnLoad != nil {
		c.OnLoad(m.Addr, version)
	}

	// Close the transaction at the home (AMD Hammer's SrcDone): the home
	// keeps the line busy until this arrives, which guarantees any probe
	// we receive for a line with a pending MSHR belongs to an older
	// transaction and can be answered from current state.
	cmp := c.pool.Get()
	cmp.Op, cmp.Addr, cmp.Src, cmp.Dst, cmp.ToDir = CmpAck, m.Addr, c.node, c.home(m.Addr), true
	cmp.TxnID = m.TxnID
	c.port.Send(cmp)
	c.eng.Schedule(t, p.done)
}

// handleProbe answers PrbInv / PrbDown / PrbLocal after queueing for the
// arrays. Owner states (M, O, E) forward data directly to m.ForwardTo
// when set; dirty data with no forward destination returns to the home
// for DRAM writeback (back-invalidation).
func (c *CacheCtrl) handleProbe(now sim.Time, m *Msg) {
	t := c.occupy(now)
	if m.Op == PrbLocal {
		// ALLARM's state query walks both private levels (L1 and L2 tag
		// arrays), stealing a second cycle of array bandwidth from the
		// local core — the "modest overhead" of §III-A1.
		t = c.occupy(t)
	}
	c.stats.ProbesServed++

	invalidate := m.Op == PrbInv || (m.Op == PrbLocal && m.Mode == GetM)

	var prev cache.State
	var version uint64
	if l := c.hier.PeekLine(m.Addr); l != nil {
		prev = l.State
		version = l.Version
	}

	owner := prev == cache.Modified || prev == cache.Owned || prev == cache.Exclusive
	dirty := prev.Dirty()

	if invalidate {
		c.hier.Invalidate(m.Addr)
	} else {
		c.hier.Downgrade(m.Addr)
	}

	ack := c.pool.Get()
	ack.Op, ack.Addr, ack.Src, ack.Dst, ack.ToDir = Ack, m.Addr, c.node, m.Src, true
	ack.Hit, ack.PrevState, ack.Version, ack.TxnID = prev.Valid(), prev, version, m.TxnID
	if owner && m.ForwardTo != NoNode {
		// Cache-to-cache transfer straight to the requester.
		data := c.pool.Get()
		data.Op, data.Addr, data.Src, data.Dst = DataMsg, m.Addr, c.node, m.ForwardTo
		data.Grant, data.Version, data.TxnID = m.Grant, version, m.TxnID
		data.NoFill = m.NoFill // uncached service rides the probe
		c.sendAt(t, data)
	} else if owner && dirty {
		// Back-invalidation (or downgrade) with no requester: dirty data
		// returns to the home for DRAM writeback.
		ack.Op = AckData
		ack.Dirty = true
	}
	c.sendAt(t, ack)
}

// sendAt injects m when the arrays release it (the controller's port is
// modelled as available at service completion).
func (c *CacheCtrl) sendAt(t sim.Time, m *Msg) {
	if t <= c.eng.Now() {
		c.port.Send(m)
		return
	}
	s := c.sends.Get()
	s.c, s.m = c, m
	c.eng.Schedule(t, s)
}

// sendPuts issues eviction notifications for hierarchy victims: PutM for
// dirty lines (M/O), PutE for clean-exclusive lines. Victims of untracked
// ALLARM lines are homed at this node, so these messages never cross the
// NoC for thread-local data.
func (c *CacheCtrl) sendPuts(victims []cache.Victim) {
	for _, v := range victims {
		switch v.State {
		case cache.Modified, cache.Owned:
			c.stats.PutMs++
			m := c.pool.Get()
			m.Op, m.Addr, m.Src, m.Dst, m.ToDir = PutM, v.Addr, c.node, c.home(v.Addr), true
			m.Dirty, m.Version, m.PrevState = true, v.Version, v.State
			c.port.Send(m)
		case cache.Exclusive:
			c.stats.PutEs++
			m := c.pool.Get()
			m.Op, m.Addr, m.Src, m.Dst, m.ToDir = PutE, v.Addr, c.node, c.home(v.Addr), true
			m.PrevState = v.State
			c.port.Send(m)
		default:
			panic(fmt.Sprintf("coherence: victim in unexpected state %v", v.State))
		}
	}
}
