package core

import (
	"fmt"

	"allarm/internal/cache"
	"allarm/internal/coherence"
	"allarm/internal/dram"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// DirStats counts directory-controller events. Together with PFStats and
// the NoC/DRAM statistics it drives every figure in the paper.
type DirStats struct {
	// LocalRequests and RemoteRequests classify demand requests by the
	// requester's affinity domain (Figure 2).
	LocalRequests  uint64
	RemoteRequests uint64

	// EvictionMsgs counts NoC messages (probes, acks, data) caused by
	// probe-filter back-invalidations (Figure 3d's numerator).
	EvictionMsgs uint64
	// EvictionWritebacks counts back-invalidations that returned dirty
	// data for a DRAM write.
	EvictionWritebacks uint64
	// EvictionProbeHits counts back-invalidation probes that found a live
	// cached copy (the paper's "needed line removed from underlying
	// cores"); EvictionProbes is the denominator.
	EvictionProbeHits uint64
	EvictionProbes    uint64

	// LocalProbes counts ALLARM PrbLocal queries (one per remote request
	// that missed the probe filter).
	LocalProbes uint64
	// LocalProbeHits counts PrbLocal queries that found the line cached
	// untracked at the home's core.
	LocalProbeHits uint64
	// LocalProbesHidden counts PrbLocal misses whose response arrived no
	// later than the DRAM data — the probe was off the critical path
	// (Figure 3g's numerator; LocalProbes is the denominator).
	LocalProbesHidden uint64

	// UntrackedGrants counts local requests served with no probe-filter
	// allocation (ALLARM's thread-local fast path).
	UntrackedGrants uint64
	// UncachedGrants counts requests served with no allocation and no
	// fill (deferred-allocation policies' GrantUncached action).
	UncachedGrants uint64

	// Broadcasts counts invalidation broadcasts (O/S entries: Hammer does
	// not know the sharers); DirectedProbes counts single-owner probes.
	Broadcasts     uint64
	DirectedProbes uint64

	// ParkedTxns counts transactions that waited for an in-flight
	// writeback (probe raced a PutM/PutE); Restarts counts re-dispatches.
	ParkedTxns uint64
	Restarts   uint64

	// StaleOwnerRequests counts defensive recoveries from a request by a
	// node the entry already names as owner (should not occur with FIFO
	// routes; tracked to prove it).
	StaleOwnerRequests uint64
	// StaleVersionWrites counts DRAM writebacks carrying an older version
	// than DRAM already has (a protocol-correctness alarm; must be zero).
	StaleVersionWrites uint64
	// AllocRetries counts allocation attempts deferred because every way
	// of a set held a busy line.
	AllocRetries uint64
}

type txnKind uint8

const (
	txnRequest txnKind = iota
	txnEviction
)

// txn is one in-flight directory transaction. The directory serializes
// transactions per line: while a txn is busy on a line, later requests for
// that line queue in the waiters list.
type txn struct {
	id   uint64
	kind txnKind
	addr mem.PAddr
	req  *coherence.Msg // request transactions only

	counted bool // local/remote classification done (restart-safe)

	pendingAcks   int
	expectOwner   mem.NodeID
	haveExpect    bool
	directed      bool // single-owner probe flow (can park on a raced put)
	needData      bool // the home must send DataMsg itself
	grant         cache.State
	dramDone      bool
	dramDoneAt    sim.Time
	dataSent      bool
	dataForwarded bool // probed owner forwarded data to the requester
	cmpReceived   bool

	parked       bool // waiting for an in-flight PutM/PutE
	entryTouched bool // a Put arrived while this txn was active
	putSrc       mem.NodeID

	localProbe     bool // ALLARM PrbLocal outstanding or resolved
	localProbeDone bool
	localProbeHit  bool
	localProbeAt   sim.Time
	untracked      bool // grant without probe-filter allocation
	noFill         bool // grant without installing the line (GrantUncached)

	decided bool       // the alloc policy has been consulted for this txn
	action  MissAction // its decision (valid when decided)

	finalValid bool // entry state to install at completion
	finalState EntryState
	finalOwner mem.NodeID
}

// Config carries the directory controller's construction parameters.
type Config struct {
	Node mem.NodeID
	// Nodes is the machine's node count (broadcast fan-out).
	Nodes int
	// Alloc is the directory's allocation policy. When nil, the legacy
	// Policy/Ranges fields select a built-in (NewAllocPolicy).
	Alloc AllocPolicy
	// Policy selects Baseline or ALLARM allocation (fallback when Alloc
	// is nil).
	Policy Policy
	// Ranges optionally restricts ALLARM to physical ranges (nil = all).
	Ranges *RangeSet
	// LookupLatency is the probe-filter access latency (Table I: 1 ns).
	LookupLatency sim.Time
	// RetryDelay spaces re-attempts when an allocation finds every way of
	// a set busy (rare; bounded by transaction completion).
	RetryDelay sim.Time
}

// DirCtrl is one node's home directory controller: it owns the node's
// probe filter and memory controller and runs the coherence flows for
// every line homed at the node.
type DirCtrl struct {
	cfg   Config
	alloc AllocPolicy
	pf    *ProbeFilter
	eng   *sim.Engine
	port  coherence.Port
	dram  *dram.Controller

	busy    map[mem.PAddr]*txn
	waiters map[mem.PAddr][]*coherence.Msg
	dramVer map[mem.PAddr]uint64
	txnSeq  uint64

	// pool recycles the messages this directory sends; events and txns
	// recycle scheduled-event records and transaction objects, so the
	// steady-state request flow allocates nothing.
	pool   coherence.MsgPool
	events sim.FreeList[dirEvent]
	txns   sim.FreeList[txn]

	// nextFree models the controller's occupancy: every message the
	// directory processes (requests, probes' acks, puts) holds the
	// pipeline for one LookupLatency, so back-invalidation storms congest
	// hot home nodes — a first-order effect of probe-filter thrash.
	nextFree sim.Time

	stats DirStats
}

// NewDirCtrl builds a directory controller.
func NewDirCtrl(cfg Config, pf *ProbeFilter, eng *sim.Engine, port coherence.Port, dc *dram.Controller) *DirCtrl {
	if cfg.Nodes <= 0 {
		panic("core: directory needs a positive node count")
	}
	if cfg.RetryDelay <= 0 {
		cfg.RetryDelay = 5 * sim.Nanosecond
	}
	if cfg.Alloc == nil {
		cfg.Alloc = NewAllocPolicy(cfg.Policy, cfg.Ranges)
	}
	return &DirCtrl{
		cfg:     cfg,
		alloc:   cfg.Alloc,
		pf:      pf,
		eng:     eng,
		port:    port,
		dram:    dc,
		busy:    make(map[mem.PAddr]*txn),
		waiters: make(map[mem.PAddr][]*coherence.Msg),
		dramVer: make(map[mem.PAddr]uint64),
	}
}

// Node returns the directory's node ID.
func (d *DirCtrl) Node() mem.NodeID { return d.cfg.Node }

// Alloc returns the allocation policy in force.
func (d *DirCtrl) Alloc() AllocPolicy { return d.alloc }

// PF exposes the probe filter (stats, invariant checks).
func (d *DirCtrl) PF() *ProbeFilter { return d.pf }

// DRAM exposes the node's memory controller.
func (d *DirCtrl) DRAM() *dram.Controller { return d.dram }

// Stats returns a copy of the directory statistics.
func (d *DirCtrl) Stats() DirStats { return d.stats }

// PoolStats returns the directory's message-pool counters (tests,
// recycle diagnostics).
func (d *DirCtrl) PoolStats() coherence.MsgPoolStats { return d.pool.Stats() }

// SharePool switches the directory's message pool to cross-goroutine
// release (see coherence.MsgPool.SetShared). Parallel machines call it
// at construction, before any event runs.
func (d *DirCtrl) SharePool() { d.pool.SetShared() }

// ResetStats zeroes the directory counters (including the probe
// filter's), keeping all protocol state; measurement begins after warmup.
func (d *DirCtrl) ResetStats() {
	d.stats = DirStats{}
	d.pf.ResetStats()
}

// Quiesced reports whether no transactions are in flight (test helper).
func (d *DirCtrl) Quiesced() bool { return len(d.busy) == 0 }

// DRAMVersion returns the current DRAM data version of a line (invariant
// checks).
func (d *DirCtrl) DRAMVersion(addr mem.PAddr) uint64 { return d.dramVer[mem.LineOf(addr)] }

// occupy reserves the directory pipeline for one message slot starting
// no earlier than now, returning the slot's completion time.
func (d *DirCtrl) occupy(now sim.Time) sim.Time {
	start := now
	if d.nextFree > start {
		start = d.nextFree
	}
	d.nextFree = start + d.cfg.LookupLatency
	return d.nextFree
}

// dirEvent is one scheduled directory occurrence: a transaction dispatch,
// a DRAM completion, a deferred ack, or an allocation retry. Records are
// recycled through the controller's free list. Transaction-bound kinds
// carry the transaction id observed at scheduling time; a mismatch at
// fire time means the transaction restarted (or finished and was
// recycled) and the event is stale.
type dirEvent struct {
	d    *DirCtrl
	kind uint8
	t    *txn
	id   uint64
	m    *Msg
}

const (
	evDispatch uint8 = iota
	evDRAM
	evAck
	evRetry
)

// Handle implements sim.Handler: the record is returned to the free list
// before the flow runs, so re-entrant scheduling can reuse it.
func (ev *dirEvent) Handle(now sim.Time) {
	d, kind, t, id, m := ev.d, ev.kind, ev.t, ev.id, ev.m
	ev.t, ev.m = nil, nil
	d.events.Put(ev)
	switch kind {
	case evDispatch:
		if cur, ok := d.busy[t.addr]; !ok || cur != t || t.id != id {
			return // superseded (defensive; should not happen)
		}
		d.dispatch(now, t)
	case evDRAM:
		if cur := d.busy[t.addr]; cur != t || t.id != id {
			return // transaction restarted; the stale read is discarded
		}
		t.dramDone = true
		t.dramDoneAt = now
		d.maybeSendData(t)
		d.tryComplete(now, t)
	case evAck:
		d.handleAck(now, m)
		m.Release()
	case evRetry:
		if cur := d.busy[t.addr]; cur == t && t.id == id {
			d.dispatch(now, t)
		}
	}
}

// schedule queues a directory event of the given kind at time at, using a
// recycled record when one is free.
func (d *DirCtrl) schedule(at sim.Time, kind uint8, t *txn, m *Msg) {
	ev := d.events.Get()
	ev.d, ev.kind, ev.t, ev.m = d, kind, t, m
	if t != nil {
		ev.id = t.id
	}
	d.eng.Schedule(at, ev)
}

// HandleMsg processes a message addressed to this directory. The
// directory is the message's final owner. Most opcodes are consumed
// within the call and released immediately; acks are released after
// their deferred processing fires, and requests are retained (in the
// active transaction or the waiter queue) until their transaction
// finishes.
func (d *DirCtrl) HandleMsg(now sim.Time, m *Msg) {
	switch m.Op {
	case coherence.GetS, coherence.GetM:
		d.handleRequest(now, m)
	case coherence.PutM, coherence.PutE:
		d.handlePut(now, m)
		m.Release()
	case coherence.Ack, coherence.AckData:
		d.schedule(d.occupy(now), evAck, nil, m)
	case coherence.CmpAck:
		d.handleCmpAck(m)
		m.Release()
	default:
		panic(fmt.Sprintf("core: directory received %v", m))
	}
}

// Msg aliases coherence.Msg for readability inside this package.
type Msg = coherence.Msg

// isGetM reports whether a request wants ownership.
func isGetM(m *Msg) bool { return m.Op == coherence.GetM }

func (d *DirCtrl) handleRequest(now sim.Time, m *Msg) {
	if t, ok := d.busy[m.Addr]; ok && t != nil {
		d.waiters[m.Addr] = append(d.waiters[m.Addr], m)
		return
	}
	t := d.newTxn(txnRequest, m.Addr)
	t.req = m
	d.busy[m.Addr] = t
	d.scheduleDispatch(t)
}

// newTxn returns a fresh transaction, recycling a finished one when the
// free list has any. Ids stay globally unique across recycling, so stale
// scheduled events referencing a recycled object fail their id check.
func (d *DirCtrl) newTxn(kind txnKind, addr mem.PAddr) *txn {
	d.txnSeq++
	t := d.txns.Get()
	*t = txn{}
	t.id, t.kind, t.addr = d.txnSeq, kind, addr
	return t
}

// scheduleDispatch runs the PF lookup and flow selection after the
// directory access latency, queueing behind other work at the controller.
func (d *DirCtrl) scheduleDispatch(t *txn) {
	d.schedule(d.occupy(d.eng.Now()), evDispatch, t, nil)
}

// dispatch selects and starts the coherence flow for a request txn.
func (d *DirCtrl) dispatch(now sim.Time, t *txn) {
	r := t.req.Src
	isLocal := r == d.cfg.Node
	if !t.counted {
		t.counted = true
		if isLocal {
			d.stats.LocalRequests++
		} else {
			d.stats.RemoteRequests++
		}
	}

	e := d.pf.Lookup(t.addr)
	if e == nil {
		d.missFlow(now, t, isLocal)
		return
	}
	d.hitFlow(now, t, e)
}

// missFlow handles a request whose line has no probe-filter entry. The
// allocation policy picks one of three flows: allocate-and-track (the
// conventional path, with a parallel local probe when untracked copies
// may exist at the home core), an untracked local grant (ALLARM's
// thread-local fast path), or an uncached grant (deferred allocation).
func (d *DirCtrl) missFlow(now sim.Time, t *txn, isLocal bool) {
	r := t.req.Src
	wantM := t.req.Op == coherence.GetM

	// Consult the policy once per transaction: retries and restarts
	// reuse the decision, so stateful policies see each miss once.
	if !t.decided {
		t.decided = true
		t.action = d.alloc.OnMiss(MissInfo{
			Addr:      t.addr,
			Requester: r,
			Home:      d.cfg.Node,
			Local:     isLocal,
			Write:     wantM,
		})
	}

	switch t.action {
	case GrantUntracked:
		if !isLocal {
			panic(fmt.Sprintf("core: policy %q granted an untracked copy to remote node %d (undiscoverable)",
				d.alloc.Name(), r))
		}
		// Thread-local fast path: serve from DRAM with no allocation and
		// no coherence traffic (§II-A).
		t.untracked = true
		t.needData = true
		t.grant = grantFor(wantM)
		d.stats.UntrackedGrants++
		d.issueDRAM(now, t)
		return

	case GrantUncached:
		if wantM {
			panic(fmt.Sprintf("core: policy %q granted an uncached fill for a store miss", d.alloc.Name()))
		}
		// Serve the read without installing state anywhere: no entry, no
		// cached copy. The home's own core may still hold the line
		// untracked, so remote requesters probe it like ALLARM does.
		t.untracked = true
		t.noFill = true
		d.stats.UncachedGrants++
		if !isLocal && d.alloc.ProbeLocalOnRemoteMiss(t.addr) {
			d.sendLocalProbe(t, r, cache.Shared, true)
			d.issueDRAM(now, t)
			return
		}
		t.needData = true
		t.grant = cache.Shared
		d.issueDRAM(now, t)
		return
	}

	// Track: allocate an entry; this may evict a victim that must be
	// back-invalidated from every cache (the paper's central overhead).
	victim, evicted, ok := d.pf.Alloc(t.addr, EntryEM, r, d.lineBusy)
	if !ok {
		d.stats.AllocRetries++
		d.schedule(d.eng.Now()+d.cfg.RetryDelay, evRetry, t, nil)
		return
	}
	if evicted {
		d.startEviction(now, victim)
	}
	t.finalValid = true
	t.finalState = EntryEM
	t.finalOwner = r

	if !isLocal && d.alloc.ProbeLocalOnRemoteMiss(t.addr) {
		// Remote miss under a policy with untracked local copies: query
		// the home's own core, in parallel with the DRAM access (§II-D).
		probeGrant := cache.Shared // a hit means the line is now shared
		if wantM {
			probeGrant = cache.Modified
		}
		d.sendLocalProbe(t, r, probeGrant, false)
		d.issueDRAM(now, t)
		return
	}

	// Conventional miss: the line is uncached anywhere (the PF is
	// inclusive), so a read is granted Exclusive and a write Modified.
	t.needData = true
	t.grant = grantFor(wantM)
	d.issueDRAM(now, t)
}

// sendLocalProbe issues the PrbLocal query of the home's own core for
// transaction t, forwarding any owner data to requester r with grant.
func (d *DirCtrl) sendLocalProbe(t *txn, r mem.NodeID, grant cache.State, noFill bool) {
	t.localProbe = true
	d.stats.LocalProbes++
	m := d.pool.Get()
	m.Op, m.Addr, m.Src, m.Dst = coherence.PrbLocal, t.addr, d.cfg.Node, d.cfg.Node
	m.Mode, m.ForwardTo, m.Grant, m.TxnID = t.req.Op, r, grant, t.id
	m.NoFill = noFill
	d.port.Send(m)
}

func grantFor(wantM bool) cache.State {
	if wantM {
		return cache.Modified
	}
	return cache.Exclusive
}

// hitFlow handles a request whose line has a probe-filter entry.
func (d *DirCtrl) hitFlow(now sim.Time, t *txn, e *Entry) {
	r := t.req.Src
	wantM := t.req.Op == coherence.GetM

	if e.State != EntryS && e.Owner == r && !(e.State == EntryO && wantM) {
		// The supposed owner is asking for the line, so its eviction
		// notification must still be in flight (our NoC preserves FIFO
		// per route, so this is defensive). Park until the put arrives —
		// or apply it right away if it landed while this transaction was
		// waiting for its directory slot.
		d.stats.StaleOwnerRequests++
		if t.entryTouched && t.putSrc == e.Owner {
			d.applyDeferredPut(t)
			d.restart(t)
			return
		}
		t.parked = true
		d.stats.ParkedTxns++
		return
	}

	switch e.State {
	case EntryEM:
		t.expectOwner, t.haveExpect = e.Owner, true
		t.directed = true
		t.pendingAcks = 1
		d.stats.DirectedProbes++
		op := coherence.PrbDown
		grant := cache.Shared
		if wantM {
			op = coherence.PrbInv
			grant = cache.Modified
			t.finalValid, t.finalState, t.finalOwner = true, EntryEM, r
		}
		// For GetS the final entry depends on the owner's state (M→O(o),
		// E→S), decided when the ack arrives.
		m := d.pool.Get()
		m.Op, m.Addr, m.Src, m.Dst = op, t.addr, d.cfg.Node, e.Owner
		m.Mode, m.ForwardTo, m.Grant, m.TxnID = t.req.Op, r, grant, t.id
		d.port.Send(m)

	case EntryO:
		if !wantM {
			t.expectOwner, t.haveExpect = e.Owner, true
			t.directed = true
			t.pendingAcks = 1
			d.stats.DirectedProbes++
			t.finalValid, t.finalState, t.finalOwner = true, EntryO, e.Owner
			m := d.pool.Get()
			m.Op, m.Addr, m.Src, m.Dst = coherence.PrbDown, t.addr, d.cfg.Node, e.Owner
			m.Mode, m.ForwardTo, m.Grant, m.TxnID = t.req.Op, r, cache.Shared, t.id
			d.port.Send(m)
			return
		}
		if e.Owner == r {
			// Ownership upgrade by the O-state owner itself: invalidate
			// the unknown sharers; the requester already holds the only
			// current data, so no DRAM access is needed and the grant
			// message merely confers ownership.
			t.finalValid, t.finalState, t.finalOwner = true, EntryEM, r
			t.needData = true
			t.grant = cache.Modified
			t.dramDone, t.dramDoneAt = true, now
			d.broadcastInv(t, r, cache.Modified)
			return
		}
		// GetM with unknown sharers: broadcast invalidations (Hammer).
		t.expectOwner, t.haveExpect = e.Owner, true
		t.finalValid, t.finalState, t.finalOwner = true, EntryEM, r
		d.broadcastInv(t, r, cache.Modified)

	case EntryS:
		if !wantM {
			t.needData = true
			t.grant = cache.Shared
			t.finalValid, t.finalState, t.finalOwner = true, EntryS, coherence.NoNode
			d.issueDRAM(now, t)
			return
		}
		// GetM: invalidate unknown sharers everywhere, fetch from DRAM
		// (no owner exists for an S entry, so DRAM is current).
		t.needData = true
		t.grant = cache.Modified
		t.finalValid, t.finalState, t.finalOwner = true, EntryEM, r
		d.broadcastInv(t, r, cache.Modified)
		d.issueDRAM(now, t)
	}
}

// broadcastInv sends PrbInv to every node except the requester.
func (d *DirCtrl) broadcastInv(t *txn, requester mem.NodeID, grant cache.State) {
	d.stats.Broadcasts++
	for n := 0; n < d.cfg.Nodes; n++ {
		dst := mem.NodeID(n)
		if dst == requester {
			continue
		}
		t.pendingAcks++
		m := d.pool.Get()
		m.Op, m.Addr, m.Src, m.Dst = coherence.PrbInv, t.addr, d.cfg.Node, dst
		m.Mode, m.ForwardTo, m.Grant, m.TxnID = coherence.GetM, requester, grant, t.id
		d.port.Send(m)
	}
}

// lineBusy reports whether a line has an in-flight transaction (probe-
// filter victim selection must skip such lines).
func (d *DirCtrl) lineBusy(addr mem.PAddr) bool {
	_, ok := d.busy[addr]
	return ok
}

// issueDRAM starts a DRAM line read for t; the completion event (an
// evDRAM dirEvent) records the data version present at completion time (a
// write landing during the access is visible, as in a real controller's
// write buffer check).
func (d *DirCtrl) issueDRAM(now sim.Time, t *txn) {
	d.schedule(d.dram.Read(now), evDRAM, t, nil)
}

// maybeSendData sends the home's DataMsg once every prerequisite holds:
// DRAM data present, invalidation acks collected, and any local probe
// resolved (the probe may supersede the DRAM data entirely).
func (d *DirCtrl) maybeSendData(t *txn) {
	if !t.needData || t.dataSent || t.parked {
		return
	}
	if !t.dramDone || t.pendingAcks > 0 {
		return
	}
	if t.localProbe && !t.localProbeDone {
		return
	}
	t.dataSent = true
	m := d.pool.Get()
	m.Op, m.Addr, m.Src, m.Dst = coherence.DataMsg, t.addr, d.cfg.Node, t.req.Src
	m.Grant, m.Untracked, m.NoFill = t.grant, t.untracked, t.noFill
	m.Version, m.TxnID = d.dramVer[t.addr], t.id
	d.port.Send(m)
}

// handleAck routes probe acknowledgements to their transaction.
func (d *DirCtrl) handleAck(now sim.Time, m *Msg) {
	t, ok := d.busy[m.Addr]
	if !ok || t.id != m.TxnID {
		// Stale ack from a restarted transaction: impossible by
		// construction (parking implies all acks arrived), kept as a
		// defensive drop.
		return
	}
	if t.kind == txnEviction {
		d.evictionAck(now, t, m)
		return
	}
	if t.localProbe && !t.localProbeDone {
		d.localProbeAck(now, t, m)
		return
	}
	d.requestAck(now, t, m)
}

func ownerState(s cache.State) bool {
	return s == cache.Modified || s == cache.Owned || s == cache.Exclusive
}

// requestAck processes an ack in a directed or broadcast request flow.
func (d *DirCtrl) requestAck(now sim.Time, t *txn, m *Msg) {
	if t.pendingAcks <= 0 {
		panic("core: unexpected ack")
	}
	t.pendingAcks--

	if m.Op == coherence.AckData && m.Dirty {
		// A probed owner returned dirty data to the home rather than
		// forwarding (no requester destination applies only to
		// evictions) — not expected in request flows.
		panic("core: AckData in request flow")
	}

	if m.Hit && ownerState(m.PrevState) {
		t.dataForwarded = true
		if !isGetM(t.req) {
			// GetS: the entry's final state depends on what the owner
			// held: M downgrades to O (owner keeps dirty data), E
			// becomes S (no owner).
			switch m.PrevState {
			case cache.Modified, cache.Owned:
				t.finalValid, t.finalState, t.finalOwner = true, EntryO, m.Src
			case cache.Exclusive:
				t.finalValid, t.finalState, t.finalOwner = true, EntryS, coherence.NoNode
			}
		}
	}

	if t.haveExpect && m.Src == t.expectOwner && !m.Hit {
		// The owner no longer holds the line: its PutM/PutE is in
		// flight. For directed flows, park until it arrives; for
		// broadcasts the put's DRAM write precedes this ack (FIFO per
		// route), so falling back to DRAM is already safe.
		if t.directed {
			if t.entryTouched && t.putSrc == t.expectOwner {
				// The writeback already arrived while this transaction
				// was active (its entry effect was deferred): apply it
				// and restart with a fresh lookup.
				d.applyDeferredPut(t)
				d.restart(t)
				return
			}
			t.parked = true
			d.stats.ParkedTxns++
			return
		}
		if !t.dataForwarded {
			// Broadcast flow that expected owner data: fetch from DRAM.
			t.needData = true
			if t.grant == cache.Invalid {
				t.grant = grantFor(isGetM(t.req))
			}
			if !t.dramDone {
				d.issueDRAM(now, t)
			}
		}
	}

	d.maybeSendData(t)
	d.tryComplete(now, t)
}

// localProbeAck resolves ALLARM's parallel local probe.
func (d *DirCtrl) localProbeAck(now sim.Time, t *txn, m *Msg) {
	t.localProbeDone = true
	t.localProbeAt = now
	t.localProbeHit = m.Hit

	if m.Hit {
		d.stats.LocalProbeHits++
		if ownerState(m.PrevState) {
			// The home's core held the line untracked and forwarded data
			// directly to the requester.
			t.dataForwarded = true
			if t.noFill {
				// Uncached service installed no entry; the home core's
				// copy stays untracked (downgraded by the probe).
			} else if isGetM(t.req) {
				t.finalValid, t.finalState, t.finalOwner = true, EntryEM, t.req.Src
			} else {
				switch m.PrevState {
				case cache.Modified, cache.Owned:
					t.finalValid, t.finalState, t.finalOwner = true, EntryO, d.cfg.Node
				default: // Exclusive (clean): no owner remains
					t.finalValid, t.finalState, t.finalOwner = true, EntryS, coherence.NoNode
				}
			}
		} else {
			// Clean shared copy at the home core: DRAM is current.
			t.needData = true
			if t.noFill {
				t.grant = cache.Shared
			} else if isGetM(t.req) {
				t.grant = cache.Modified
				t.finalValid, t.finalState, t.finalOwner = true, EntryEM, t.req.Src
			} else {
				t.grant = cache.Shared
				t.finalValid, t.finalState, t.finalOwner = true, EntryS, coherence.NoNode
			}
		}
	} else {
		// Probe missed: the DRAM access is the critical path, exactly the
		// case ALLARM hides (§II-D).
		t.needData = true
		if t.noFill {
			t.grant = cache.Shared
		} else {
			t.grant = grantFor(isGetM(t.req))
		}
	}

	d.maybeSendData(t)
	d.tryComplete(now, t)
}

// handleCmpAck closes a transaction once the requester has filled.
func (d *DirCtrl) handleCmpAck(m *Msg) {
	t, ok := d.busy[m.Addr]
	if !ok || t.id != m.TxnID {
		return
	}
	t.cmpReceived = true
	d.tryComplete(d.eng.Now(), t)
}

// tryComplete finishes a request transaction when its flow is fully
// resolved: acks collected, data delivered (by the home or a forwarding
// owner), local probe resolved, and the requester's completion ack
// received.
func (d *DirCtrl) tryComplete(now sim.Time, t *txn) {
	if t.kind != txnRequest || t.parked {
		return
	}
	if t.pendingAcks > 0 || !t.cmpReceived {
		return
	}
	if t.localProbe && !t.localProbeDone {
		return
	}
	if !t.dataForwarded && !t.dataSent {
		return
	}

	// Figure 3g accounting: the probe was off the critical path when it
	// missed and resolved no later than the DRAM data.
	if t.localProbe && !t.localProbeHit && t.dramDone && t.localProbeAt <= t.dramDoneAt {
		d.stats.LocalProbesHidden++
	}

	if t.finalValid {
		if t.entryTouched && t.finalState == EntryO && t.putSrc == t.finalOwner {
			// The owner wrote the line back while the transaction was
			// completing; DRAM is current and no owner remains.
			t.finalState, t.finalOwner = EntryS, coherence.NoNode
		}
		e := d.pf.Peek(t.addr)
		if e == nil {
			panic(fmt.Sprintf("core: entry for %#x vanished during transaction", uint64(t.addr)))
		}
		if e.State != t.finalState || e.Owner != t.finalOwner {
			d.pf.Update(t.addr, t.finalState, t.finalOwner)
		}
	}

	d.finish(now, t)
}

// finish releases the line, recycles the transaction and its request
// message, and dispatches the next queued request.
func (d *DirCtrl) finish(now sim.Time, t *txn) {
	addr := t.addr
	delete(d.busy, addr)
	if t.req != nil {
		t.req.Release()
		t.req = nil
	}
	d.txns.Put(t)
	q := d.waiters[addr]
	if len(q) == 0 {
		delete(d.waiters, addr)
		return
	}
	next := q[0]
	if len(q) == 1 {
		delete(d.waiters, addr)
	} else {
		d.waiters[addr] = q[1:]
	}
	nt := d.newTxn(txnRequest, addr)
	nt.req = next
	d.busy[addr] = nt
	d.scheduleDispatch(nt)
}

// restart re-dispatches a transaction from scratch (fresh PF lookup)
// after a raced writeback invalidated its flow. No acks or data are in
// flight at restart time by construction.
func (d *DirCtrl) restart(t *txn) {
	d.stats.Restarts++
	d.txnSeq++
	t.id = d.txnSeq
	t.pendingAcks = 0
	t.expectOwner, t.haveExpect = 0, false
	t.needData, t.grant = false, cache.Invalid
	t.dramDone, t.dataSent, t.dataForwarded = false, false, false
	t.cmpReceived = false
	t.parked, t.entryTouched = false, false
	t.localProbe, t.localProbeDone, t.localProbeHit = false, false, false
	t.untracked, t.noFill = false, false
	t.finalValid = false
	d.scheduleDispatch(t)
}

// handlePut applies an eviction notification. The DRAM write (for PutM)
// always applies immediately — a real controller's write buffer is
// visible to subsequent reads — while the entry effect is deferred to the
// active transaction when the line is busy.
func (d *DirCtrl) handlePut(now sim.Time, m *Msg) {
	if m.Op == coherence.PutM {
		d.dramWrite(now, m.Addr, m.Version)
	}
	t, busy := d.busy[m.Addr]
	if !busy {
		d.applyPutToEntry(m)
		return
	}
	switch {
	case t.kind == txnEviction:
		// Entry already gone; the data write above is all that matters.
	case t.parked:
		d.applyPutToEntry(m)
		d.restart(t)
	default:
		t.entryTouched = true
		t.putSrc = m.Src
	}
}

// applyDeferredPut applies the entry effect of a put whose processing was
// deferred because t was active: EM entries owned by the put's sender are
// freed; O entries demote to S (an O eviction is always a PutM, so the
// data is already in DRAM).
func (d *DirCtrl) applyDeferredPut(t *txn) {
	e := d.pf.Peek(t.addr)
	if e == nil {
		return
	}
	switch e.State {
	case EntryEM:
		if e.Owner == t.putSrc {
			d.pf.Remove(t.addr)
		}
	case EntryO:
		if e.Owner == t.putSrc {
			d.pf.Update(t.addr, EntryS, coherence.NoNode)
		}
	}
}

// applyPutToEntry updates the probe filter for a writeback/notification:
// EM entries owned by the sender are freed; O entries demote to S (the
// dirty data just landed in DRAM, sharers may remain). Mismatched owners
// mean the put is stale and the entry is left alone.
func (d *DirCtrl) applyPutToEntry(m *Msg) {
	e := d.pf.Peek(m.Addr)
	if e == nil {
		return // untracked (ALLARM) or already replaced
	}
	switch e.State {
	case EntryEM:
		if e.Owner == m.Src {
			d.pf.Remove(m.Addr)
		}
	case EntryO:
		if e.Owner == m.Src && m.Op == coherence.PutM {
			d.pf.Update(m.Addr, EntryS, coherence.NoNode)
		}
	case EntryS:
		// No owner: nothing to update.
	}
}

// dramWrite commits a writeback version, tracking the data-value
// invariant: versions must never regress.
func (d *DirCtrl) dramWrite(now sim.Time, addr mem.PAddr, version uint64) {
	d.dram.Write(now)
	if cur := d.dramVer[addr]; version < cur {
		d.stats.StaleVersionWrites++
		return
	}
	d.dramVer[addr] = version
}

// startEviction launches the back-invalidation of a replaced probe-filter
// entry: a directed probe for EM entries, a full broadcast for O/S
// entries (sharers unknown). Every message it causes is charged to
// EvictionMsgs (Figure 3d).
func (d *DirCtrl) startEviction(now sim.Time, victim Entry) {
	t := d.newTxn(txnEviction, victim.Addr)
	if _, clash := d.busy[victim.Addr]; clash {
		panic("core: eviction victim line already busy")
	}
	d.busy[victim.Addr] = t

	send := func(dst mem.NodeID) {
		t.pendingAcks++
		if dst != d.cfg.Node {
			d.stats.EvictionMsgs++ // the probe; the ack is counted on receipt
		}
		m := d.pool.Get()
		m.Op, m.Addr, m.Src, m.Dst = coherence.PrbInv, victim.Addr, d.cfg.Node, dst
		m.Mode, m.ForwardTo, m.TxnID = coherence.GetM, coherence.NoNode, t.id
		d.port.Send(m)
	}

	if victim.State == EntryEM {
		d.stats.DirectedProbes++
		send(victim.Owner)
	} else {
		d.stats.Broadcasts++
		for n := 0; n < d.cfg.Nodes; n++ {
			send(mem.NodeID(n))
		}
	}
}

// evictionAck collects back-invalidation acks; dirty data is written to
// DRAM.
func (d *DirCtrl) evictionAck(now sim.Time, t *txn, m *Msg) {
	if t.pendingAcks <= 0 {
		panic("core: unexpected eviction ack")
	}
	t.pendingAcks--
	if m.Src != d.cfg.Node {
		d.stats.EvictionMsgs++
	}
	d.stats.EvictionProbes++
	if m.Hit {
		d.stats.EvictionProbeHits++
	}
	if m.Op == coherence.AckData && m.Dirty {
		d.stats.EvictionWritebacks++
		d.dramWrite(now, t.addr, m.Version)
	}
	if t.pendingAcks == 0 {
		d.finish(now, t)
	}
}
