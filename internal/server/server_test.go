package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	allarm "allarm"
)

// newTestServer starts the daemon behind an httptest server.
func newTestServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts.URL
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func get(t *testing.T, url string, header ...string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(header); i += 2 {
		req.Header.Set(header[i], header[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// submit posts a sweep and returns its id.
func submit(t *testing.T, base string, req SweepRequest) SubmitResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/sweeps", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d: %s", resp.StatusCode, body)
	}
	var sr SubmitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// waitDone polls the status endpoint until the sweep is final.
func waitDone(t *testing.T, base, id string) SweepView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, body := get(t, base+"/v1/sweeps/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d: %s", resp.StatusCode, body)
		}
		var v SweepView
		if err := json.Unmarshal(body, &v); err != nil {
			t.Fatal(err)
		}
		if v.Status == StatusDone || v.Status == StatusCheckpointed {
			return v
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("sweep did not finish in time")
	return SweepView{}
}

func metricsOf(t *testing.T, base string) Metrics {
	t.Helper()
	_, body := get(t, base+"/metrics")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// tinySweepRequest is a fast two-job sweep (one benchmark, two
// policies) at reduced scale.
func tinySweepRequest() SweepRequest {
	return SweepRequest{
		Benchmarks: []string{"ocean-cont"},
		Policies:   []string{"baseline", "allarm"},
		Config:     &ConfigOverrides{Threads: 4, AccessesPerThread: 400},
	}
}

// tinySweepDirect is the library-side equivalent of tinySweepRequest —
// the sweep a CLI user would run locally.
func tinySweepDirect() *allarm.Sweep {
	cfg := allarm.ExperimentConfig()
	cfg.Threads = 4
	cfg.AccessesPerThread = 400
	return allarm.NewSweep(allarm.Job{Benchmark: "ocean-cont", Config: cfg}).
		CrossPolicies(allarm.Baseline, allarm.ALLARM)
}

// TestResultsByteIdenticalToRunSweep is the acceptance criterion:
// results fetched from the service, in every format, are byte-identical
// to running the same sweep locally and rendering it with the same
// emitter.
func TestResultsByteIdenticalToRunSweep(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 2})
	sr := submit(t, base, tinySweepRequest())
	v := waitDone(t, base, sr.ID)
	if v.Status != StatusDone || v.Done != 2 {
		t.Fatalf("sweep state: %+v", v)
	}
	for _, jv := range v.Jobs {
		if jv.Status != JobDone || jv.Error != "" {
			t.Fatalf("job state: %+v", jv)
		}
	}

	direct, err := allarm.RunSweep(context.Background(), tinySweepDirect())
	if err != nil {
		t.Fatal(err)
	}
	if err := allarm.FirstError(direct); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		format  string
		accept  string
		emitter allarm.Emitter
		ctype   string
	}{
		{"json", "", allarm.JSONEmitter{Indent: true}, "application/json"},
		{"csv", "", allarm.CSVEmitter{}, "text/csv; charset=utf-8"},
		{"ndjson", "", allarm.NDJSONEmitter{}, "application/x-ndjson"},
		{"table", "", &allarm.TableEmitter{}, "text/plain; charset=utf-8"},
		{"", "text/csv", allarm.CSVEmitter{}, "text/csv; charset=utf-8"},
		{"", "application/x-ndjson", allarm.NDJSONEmitter{}, "application/x-ndjson"},
	}
	for _, c := range cases {
		url := base + "/v1/sweeps/" + sr.ID + "/results"
		if c.format != "" {
			url += "?format=" + c.format
		}
		var hdr []string
		if c.accept != "" {
			hdr = []string{"Accept", c.accept}
		}
		resp, served := get(t, url, hdr...)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("results %q/%q: status %d", c.format, c.accept, resp.StatusCode)
		}
		if got := resp.Header.Get("Content-Type"); got != c.ctype {
			t.Errorf("results %q/%q: content type %q, want %q", c.format, c.accept, got, c.ctype)
		}
		var want bytes.Buffer
		if err := c.emitter.Emit(&want, direct); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(served, want.Bytes()) {
			t.Errorf("results %q/%q not byte-identical to local emit:\nserved:\n%s\nlocal:\n%s",
				c.format, c.accept, served, want.Bytes())
		}
	}

	m := metricsOf(t, base)
	if m.JobsRun != 2 || m.CacheMisses != 2 || m.CacheEntries != 2 {
		t.Errorf("metrics after first sweep: %+v", m)
	}
}

// TestConcurrentIdenticalSweepsRunOnce is the singleflight acceptance
// criterion: two identical concurrent submissions simulate once, and a
// later identical submission is a pure cache hit — all observable via
// /metrics.
func TestConcurrentIdenticalSweepsRunOnce(t *testing.T) {
	gate := make(chan struct{})
	var runs atomic.Int64
	s, base := newTestServer(t, Options{
		Workers: 4,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			runs.Add(1)
			<-gate
			return &allarm.Result{Benchmark: j.WorkloadName(), PolicyUsed: j.Config.Policy, RuntimeNs: 42, Events: 7}, nil
		},
	})
	req := SweepRequest{
		Benchmarks: []string{"barnes"},
		Policies:   []string{"baseline"},
		Config:     &ConfigOverrides{Threads: 4, AccessesPerThread: 100},
	}
	a := submit(t, base, req)
	b := submit(t, base, req)

	// Both sweeps must be blocked on the same single flight before the
	// gate opens: exactly one simulation started, the other joined it.
	deadline := time.Now().Add(5 * time.Second)
	for s.met.coalesced.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d simulations started before gate, want 1", got)
	}
	close(gate)

	waitDone(t, base, a.ID)
	waitDone(t, base, b.ID)
	if got := runs.Load(); got != 1 {
		t.Fatalf("%d simulations ran for two identical sweeps, want 1", got)
	}
	m := metricsOf(t, base)
	if m.JobsRun != 1 || m.CacheMisses != 1 || m.InflightCoalesced != 1 {
		t.Errorf("metrics after coalesced sweeps: %+v", m)
	}

	// A third identical sweep after completion never touches a worker.
	c := submit(t, base, req)
	waitDone(t, base, c.ID)
	if got := runs.Load(); got != 1 {
		t.Fatalf("cache-hit sweep re-ran the simulation (%d runs)", got)
	}
	m = metricsOf(t, base)
	if m.CacheHits < 1 {
		t.Errorf("cache hit not counted: %+v", m)
	}
	if m.SimEventsTotal != 7 {
		t.Errorf("sim events total %d, want 7", m.SimEventsTotal)
	}
}

// TestCacheLRUBound: with capacity 1, the second distinct job evicts
// the first, so re-running the first misses again.
func TestCacheLRUBound(t *testing.T) {
	var runs atomic.Int64
	_, base := newTestServer(t, Options{
		Workers:      1,
		CacheEntries: 1,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			runs.Add(1)
			return &allarm.Result{Benchmark: j.WorkloadName(), PolicyUsed: j.Config.Policy}, nil
		},
	})
	one := SweepRequest{Benchmarks: []string{"barnes"}, Config: &ConfigOverrides{Threads: 4, AccessesPerThread: 100}}
	two := SweepRequest{Benchmarks: []string{"x264"}, Config: &ConfigOverrides{Threads: 4, AccessesPerThread: 100}}
	waitDone(t, base, submit(t, base, one).ID)
	waitDone(t, base, submit(t, base, two).ID)
	waitDone(t, base, submit(t, base, one).ID)
	if got := runs.Load(); got != 3 {
		t.Fatalf("%d runs, want 3 (capacity-1 LRU must evict)", got)
	}
	m := metricsOf(t, base)
	if m.CacheEntries != 1 || m.CacheCapacity != 1 || m.CacheMisses != 3 {
		t.Errorf("metrics: %+v", m)
	}
}

func TestDiscoveryEndpoints(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})

	resp, body := get(t, base+"/v1/policies")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("policies: %d", resp.StatusCode)
	}
	var pols []allarm.PolicyInfo
	if err := json.Unmarshal(body, &pols); err != nil {
		t.Fatal(err)
	}
	names := make(map[string]allarm.PolicyInfo)
	for _, p := range pols {
		names[p.Name] = p
	}
	for _, want := range []string{"baseline", "allarm", "allarm-hyst"} {
		p, ok := names[want]
		if !ok {
			t.Errorf("policy %q missing from discovery", want)
			continue
		}
		if !p.Builtin || p.Description == "" {
			t.Errorf("policy %q: %+v, want builtin with description", want, p)
		}
	}

	resp, body = get(t, base+"/v1/benchmarks")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("benchmarks: %d", resp.StatusCode)
	}
	var benches []allarm.BenchmarkInfo
	if err := json.Unmarshal(body, &benches); err != nil {
		t.Fatal(err)
	}
	if len(benches) != len(allarm.Benchmarks()) {
		t.Fatalf("%d benchmarks, want %d", len(benches), len(allarm.Benchmarks()))
	}
	for _, b := range benches {
		if b.Name == "" || b.PrivateBytes <= 0 || b.SharedBytes <= 0 {
			t.Errorf("benchmark info incomplete: %+v", b)
		}
	}
}

func TestTraceUploadAndSweep(t *testing.T) {
	wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
		Name: "upload", Threads: 2, Key: "upload-v1",
		Stream: func(thread int, seed uint64) allarm.Stream {
			n := 0
			return allarm.StreamFunc(func() (allarm.Access, bool) {
				if n >= 64 {
					return allarm.Access{}, false
				}
				n++
				return allarm.Access{VAddr: uint64(0x1000*thread + 64*n), Write: n%3 == 0, Think: allarm.Nanosecond}, true
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	var trace bytes.Buffer
	if err := allarm.CaptureTrace(&trace, wl, 1); err != nil {
		t.Fatal(err)
	}
	traceBytes := trace.Bytes()

	_, base := newTestServer(t, Options{Workers: 2})
	resp, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(traceBytes))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: %d: %s", resp.StatusCode, body)
	}
	var tr TraceResponse
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Threads != 2 || tr.Workload != "trace:"+tr.ID {
		t.Fatalf("trace response: %+v", tr)
	}

	// Uploads are content-addressed: identical bytes, identical id.
	resp2, err := http.Post(base+"/v1/traces", "application/octet-stream", bytes.NewReader(traceBytes))
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	var tr2 TraceResponse
	if err := json.Unmarshal(body2, &tr2); err != nil {
		t.Fatal(err)
	}
	if tr2.ID != tr.ID {
		t.Fatalf("re-upload changed id: %s vs %s", tr2.ID, tr.ID)
	}

	sr := submit(t, base, SweepRequest{
		Workloads: []string{tr.Workload},
		Policies:  []string{"baseline", "allarm"},
	})
	v := waitDone(t, base, sr.ID)
	if v.Status != StatusDone {
		t.Fatalf("trace sweep: %+v", v)
	}
	_, served := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format=csv")

	// The served rows must equal a local replay of the same trace under
	// the same (hash-derived) name.
	local, err := allarm.ReadTraceNamed(bytes.NewReader(traceBytes), tr.ID)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := allarm.RunSweep(context.Background(),
		allarm.NewSweep(allarm.Job{Workload: local, Config: allarm.ExperimentConfig()}).
			CrossPolicies(allarm.Baseline, allarm.ALLARM))
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := (allarm.CSVEmitter{}).Emit(&want, direct); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(served, want.Bytes()) {
		t.Errorf("trace sweep results differ from local replay:\nserved:\n%s\nlocal:\n%s", served, want.Bytes())
	}
}

func TestSSEEvents(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 2})
	sr := submit(t, base, tinySweepRequest())
	// Subscribing late is fine: the stream replays history, then ends
	// once the sweep is final.
	waitDone(t, base, sr.ID)
	resp, err := http.Get(base + "/v1/sweeps/" + sr.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	stream, err := io.ReadAll(resp.Body) // returns once the stream closes
	if err != nil {
		t.Fatal(err)
	}
	text := string(stream)
	for _, want := range []string{
		"event: sweep", "event: job",
		`"status":"running"`, `"status":"done"`,
		fmt.Sprintf(`"total":%d`, 2),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("SSE stream missing %q:\n%s", want, text)
		}
	}
	// The stream must end with the terminal sweep event.
	if !strings.Contains(text[strings.LastIndex(text, "event: sweep"):], `"status":"done"`) {
		t.Errorf("SSE stream does not end with the final sweep event:\n%s", text)
	}
}

func TestResultsConflictWhileRunning(t *testing.T) {
	gate := make(chan struct{})
	_, base := newTestServer(t, Options{
		Workers: 1,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			<-gate
			return &allarm.Result{Benchmark: j.WorkloadName()}, nil
		},
	})
	sr := submit(t, base, SweepRequest{Benchmarks: []string{"barnes"}})
	resp, _ := get(t, base+"/v1/sweeps/"+sr.ID+"/results")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("results while running: %d, want 409", resp.StatusCode)
	}
	close(gate)
	waitDone(t, base, sr.ID)
	resp, _ = get(t, base+"/v1/sweeps/"+sr.ID+"/results")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results when done: %d", resp.StatusCode)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, base := newTestServer(t, Options{Workers: 1})
	cases := []SweepRequest{
		{},                                     // empty
		{Benchmarks: []string{"no-such"}},      // unknown benchmark
		{Workloads: []string{"trace:missing"}}, // unknown trace
		{Workloads: []string{"bogus"}},         // malformed spec
		{Benchmarks: []string{"barnes"}, Policies: []string{"no-such"}},
		{Benchmarks: []string{"barnes"}, PFKiB: []int{-3}},
	}
	for i, req := range cases {
		resp, body := postJSON(t, base+"/v1/sweeps", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("case %d: status %d (%s), want 400", i, resp.StatusCode, body)
		}
	}
	resp, _ := get(t, base+"/v1/sweeps/no-such-id")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown sweep: %d, want 404", resp.StatusCode)
	}
}

// TestResultsUnknownFormat: a bad ?format= is rejected like every other
// invalid request field, not silently served as JSON.
func TestResultsUnknownFormat(t *testing.T) {
	_, base := newTestServer(t, Options{
		Workers: 1,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			return &allarm.Result{Benchmark: j.WorkloadName()}, nil
		},
	})
	sr := submit(t, base, SweepRequest{Benchmarks: []string{"barnes"}})
	waitDone(t, base, sr.ID)
	resp, body := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format=cvs")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown format: %d (%s), want 400", resp.StatusCode, body)
	}
}

func TestDrainCheckpointsPartialResults(t *testing.T) {
	dir := t.TempDir()
	gate := make(chan struct{})
	s, base := newTestServer(t, Options{
		Workers:       1,
		CheckpointDir: dir,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			<-gate
			return &allarm.Result{Benchmark: j.WorkloadName(), PolicyUsed: j.Config.Policy, RuntimeNs: 1}, nil
		},
	})
	// Two jobs, one worker: job 0 blocks on the gate, job 1 never starts.
	sr := submit(t, base, tinySweepRequest())

	// Expired grace: Drain cancels immediately; the in-flight job then
	// completes (simulations aren't interruptible mid-run) and the rest
	// is checkpointed.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(gate)
	}()
	s.Drain(ctx)

	v := waitDone(t, base, sr.ID)
	if v.Status != StatusCheckpointed {
		t.Fatalf("status %q, want %q", v.Status, StatusCheckpointed)
	}

	// Partial results stay fetchable: the finished job has metrics, the
	// unreached one carries the cancellation error.
	resp, body := get(t, base+"/v1/sweeps/"+sr.ID+"/results?format=ndjson")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpointed results: %d", resp.StatusCode)
	}
	lines := strings.Split(strings.TrimRight(string(body), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d result lines, want 2:\n%s", len(lines), body)
	}
	if !strings.Contains(string(body), context.Canceled.Error()) {
		t.Errorf("no cancellation error in partial results:\n%s", body)
	}

	// And the same NDJSON landed in the checkpoint directory.
	data, err := os.ReadFile(filepath.Join(dir, sr.ID+".ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, body) {
		t.Errorf("checkpoint file differs from served results:\nfile:\n%s\nserved:\n%s", data, body)
	}

	// Draining refuses new work and reports itself on /healthz.
	resp, _ = postJSON(t, base+"/v1/sweeps", tinySweepRequest())
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: %d, want 503", resp.StatusCode)
	}
	_, hz := get(t, base+"/healthz")
	if !strings.Contains(string(hz), "draining") {
		t.Errorf("healthz while draining: %s", hz)
	}
	m := metricsOf(t, base)
	if m.SweepsCheckpointed != 1 || !m.Draining {
		t.Errorf("metrics after drain: %+v", m)
	}
}

// TestListSweeps: the listing returns every sweep in submission order.
func TestListSweeps(t *testing.T) {
	_, base := newTestServer(t, Options{
		Workers: 1,
		RunJob: func(_ context.Context, j allarm.Job) (*allarm.Result, error) {
			return &allarm.Result{Benchmark: j.WorkloadName()}, nil
		},
	})
	a := submit(t, base, SweepRequest{Benchmarks: []string{"barnes"}})
	b := submit(t, base, SweepRequest{Benchmarks: []string{"x264"}})
	waitDone(t, base, a.ID)
	waitDone(t, base, b.ID)
	_, body := get(t, base+"/v1/sweeps")
	var views []SweepView
	if err := json.Unmarshal(body, &views); err != nil {
		t.Fatal(err)
	}
	if len(views) != 2 || views[0].ID != a.ID || views[1].ID != b.ID {
		t.Fatalf("listing: %+v", views)
	}
}

// TestSimThreadsInjectedAtExec: Options.SimThreads reaches every
// executed job at run time without entering its cache identity — the
// submitted jobs' keys (and so cached results) are the same at any
// thread count.
func TestSimThreadsInjectedAtExec(t *testing.T) {
	var seen atomic.Int64
	_, base := newTestServer(t, Options{
		SimThreads: 4,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			seen.Store(int64(j.Config.SimThreads))
			return j.RunCtx(ctx)
		},
	})
	sr := submit(t, base, SweepRequest{
		Benchmarks: []string{"ocean-cont"},
		Config:     &ConfigOverrides{Threads: 4, AccessesPerThread: 400},
	})
	waitDone(t, base, sr.ID)
	if got := seen.Load(); got != 4 {
		t.Fatalf("executed job ran with SimThreads=%d, want 4", got)
	}

	serial := tinySweepRequest().Config
	cfgA := RequestConfig(serial)
	cfgB := cfgA
	cfgB.SimThreads = 4
	jobA := allarm.Job{Benchmark: "ocean-cont", Config: cfgA}
	jobB := allarm.Job{Benchmark: "ocean-cont", Config: cfgB}
	if jobA.Key() != jobB.Key() {
		t.Fatal("SimThreads changed the job key; cached results would split by thread count")
	}
}
