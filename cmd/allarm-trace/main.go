// Command allarm-trace captures benchmark access traces to disk and
// inspects or replays them.
//
// Usage:
//
//	allarm-trace -gen -bench barnes -o barnes.trace -accesses 10000
//	allarm-trace -info barnes.trace
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"allarm/internal/trace"
	"allarm/internal/workload"
)

func main() {
	var (
		gen      = flag.Bool("gen", false, "capture a benchmark trace")
		info     = flag.String("info", "", "print a trace file's summary")
		bench    = flag.String("bench", "barnes", "benchmark to capture")
		out      = flag.String("o", "out.trace", "output path for -gen")
		threads  = flag.Int("threads", 16, "thread count")
		accesses = flag.Int("accesses", 10000, "accesses per thread")
		seed     = flag.Uint64("seed", 1, "stream seed")
	)
	flag.Parse()

	switch {
	case *gen:
		wl, err := workload.Benchmark(*bench, *threads, *accesses)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w, err := trace.NewWriter(f, *threads)
		if err != nil {
			fatal(err)
		}
		if err := trace.Capture(w, wl, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d records (%d threads)\n", *out, w.Records(), *threads)

	case *info != "":
		f, err := os.Open(*info)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r, err := trace.NewReader(f)
		if err != nil {
			fatal(err)
		}
		var records, writes uint64
		for {
			rec, err := r.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				fatal(err)
			}
			records++
			if rec.Access.Write {
				writes++
			}
		}
		fmt.Printf("%s: %d threads, %d records, %.1f%% writes\n",
			*info, r.Threads(), records, 100*float64(writes)/float64(records))

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "allarm-trace:", err)
	os.Exit(1)
}
