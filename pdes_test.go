package allarm_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"testing"

	allarm "allarm"
)

// The PDES determinism matrix: every workload family, run under every
// sharding level and at two GOMAXPROCS settings, must produce a Result
// byte-identical to the serial engine's. This is the contract that lets
// SimThreads stay out of Job.Key (a cached serial result may serve a
// parallel request and vice versa) — so it is asserted on the marshaled
// bytes, not a tolerance.

var pdesThreadMatrix = []int{1, 2, 4, 8}

func pdesConfig(t *testing.T) allarm.Config {
	t.Helper()
	cfg := allarm.DefaultConfig()
	cfg.Threads = 8
	cfg.AccessesPerThread = 1500
	cfg.Seed = 11
	return cfg
}

func resultBytes(t *testing.T, r *allarm.Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// runMatrix executes run under every (SimThreads, GOMAXPROCS) cell and
// asserts all results are byte-identical to the serial baseline.
func runMatrix(t *testing.T, run func(t *testing.T, simThreads int) *allarm.Result) {
	t.Helper()
	var baseline []byte
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, st := range pdesThreadMatrix {
			r := run(t, st)
			got := resultBytes(t, r)
			if baseline == nil {
				baseline = got
				continue
			}
			if string(got) != string(baseline) {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("SimThreads=%d GOMAXPROCS=%d diverged from serial:\n got %s\nwant %s",
					st, procs, got, baseline)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

func TestPDESDeterminismPreset(t *testing.T) {
	for _, bench := range []string{"barnes", "ocean-cont"} {
		for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM, allarm.ALLARMHyst} {
			t.Run(fmt.Sprintf("%s/%v", bench, pol), func(t *testing.T) {
				runMatrix(t, func(t *testing.T, st int) *allarm.Result {
					cfg := pdesConfig(t)
					cfg.Policy = pol
					cfg.SimThreads = st
					r, err := allarm.RunBenchmark(cfg, bench)
					if err != nil {
						t.Fatalf("SimThreads=%d: %v", st, err)
					}
					return r
				})
			})
		}
	}
}

// TestPDESDeterminismExperimentScale runs the paper's scaled-cache
// experiment configuration long enough for cross-shard scheduling
// collisions to matter. The small-run matrix above once passed while
// ExperimentConfig diverged beyond ~2500 accesses per thread (lockstep
// 1 ns retry chains tie any heuristic per-shard key at every ancestor
// depth; only the barrier's exact serial replay orders them) — so the
// regression pin is at a scale where that class of bug is visible.
func TestPDESDeterminismExperimentScale(t *testing.T) {
	for _, bench := range []string{"ocean-cont", "barnes"} {
		t.Run(bench, func(t *testing.T) {
			var baseline []byte
			for _, st := range []int{1, 2, 8} {
				cfg := allarm.ExperimentConfig()
				cfg.AccessesPerThread = 6000
				cfg.Policy = allarm.ALLARM
				cfg.SimThreads = st
				r, err := allarm.RunBenchmark(cfg, bench)
				if err != nil {
					t.Fatalf("SimThreads=%d: %v", st, err)
				}
				got := resultBytes(t, r)
				if baseline == nil {
					baseline = got
					continue
				}
				if string(got) != string(baseline) {
					t.Fatalf("SimThreads=%d diverged from serial at experiment scale:\n got %s\nwant %s",
						st, got, baseline)
				}
			}
		})
	}
}

func TestPDESDeterminismTraceReplay(t *testing.T) {
	cfg := pdesConfig(t)
	cfg.AccessesPerThread = 800
	src, err := allarm.BenchmarkWorkload("cholesky", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatal(err)
	}
	var data bytes.Buffer
	if err := allarm.CaptureTrace(&data, src, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	runMatrix(t, func(t *testing.T, st int) *allarm.Result {
		wl, err := allarm.ReadTrace(bytes.NewReader(data.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		c := cfg
		c.SimThreads = st
		r, err := allarm.Run(c, wl)
		if err != nil {
			t.Fatalf("SimThreads=%d: %v", st, err)
		}
		return r
	})
}

func TestPDESDeterminismProgrammatic(t *testing.T) {
	// A programmatic workload with a declared footprint: 4 threads
	// ping-ponging writes over a small shared region plus a private
	// stride each — heavy cross-shard traffic at every window.
	const threads = 4
	mk := func() allarm.Workload {
		wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
			Name: "pdes-pingpong", Threads: threads, Key: "pdes-pingpong-v1",
			Stream: func(thread int, seed uint64) allarm.Stream {
				n := 0
				return allarm.StreamFunc(func() (allarm.Access, bool) {
					if n >= 600 {
						return allarm.Access{}, false
					}
					n++
					if n%3 == 0 {
						return allarm.Access{
							VAddr: 0x4000_0000 + uint64((n+thread)%32)*64,
							Write: thread%2 == 0,
							Think: allarm.Nanosecond,
						}, true
					}
					return allarm.Access{
						VAddr: 0x1000_0000 + uint64(thread)<<20 + uint64(n)*64,
						Write: n%5 == 0,
						Think: 2 * allarm.Nanosecond,
					}, true
				})
			},
			Pages: func(fn func(page uint64, thread int)) {
				fn(0x4000_0000, 0)
				for th := 0; th < threads; th++ {
					base := 0x1000_0000 + uint64(th)<<20
					for off := uint64(0); off < 600*64+4096; off += 4096 {
						fn(base+off, th)
					}
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return wl
	}
	runMatrix(t, func(t *testing.T, st int) *allarm.Result {
		cfg := pdesConfig(t)
		cfg.SimThreads = st
		r, err := allarm.Run(cfg, mk())
		if err != nil {
			t.Fatalf("SimThreads=%d: %v", st, err)
		}
		return r
	})
}

func TestPDESDeterminismMultiProcess(t *testing.T) {
	runMatrix(t, func(t *testing.T, st int) *allarm.Result {
		cfg := pdesConfig(t)
		cfg.Threads = 1
		cfg.AccessesPerThread = 1200
		cfg.Policy = allarm.ALLARM
		cfg.SimThreads = st
		r, err := allarm.RunMultiProcess(cfg, allarm.DefaultMultiProcess(), "ocean-cont")
		if err != nil {
			t.Fatalf("SimThreads=%d: %v", st, err)
		}
		return r
	})
}

// TestPDESSerialFallbacks pins the silent-fallback matrix: machines that
// cannot shard run serially (and still succeed).
func TestPDESSerialFallbacks(t *testing.T) {
	cfg := pdesConfig(t)
	cfg.AccessesPerThread = 200
	cfg.SimThreads = 4

	t.Run("next-touch", func(t *testing.T) {
		c := cfg
		c.MemPolicy = allarm.NextTouch
		if _, err := allarm.RunBenchmark(c, "barnes"); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("invariant-checker", func(t *testing.T) {
		c := cfg
		c.CheckInvariants = true
		if _, err := allarm.RunBenchmark(c, "barnes"); err != nil {
			t.Fatal(err)
		}
	})
	t.Run("undeclared-pages", func(t *testing.T) {
		// A programmatic workload without Pages cannot be sealed; it must
		// fall back to the serial engine rather than fail mid-run.
		wl, err := allarm.NewWorkload(allarm.WorkloadSpec{
			Name: "nopages", Threads: 2,
			Stream: func(thread int, seed uint64) allarm.Stream {
				n := 0
				return allarm.StreamFunc(func() (allarm.Access, bool) {
					if n >= 50 {
						return allarm.Access{}, false
					}
					n++
					return allarm.Access{VAddr: uint64(0x1000 * (n + thread))}, true
				})
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := allarm.Run(cfg, wl); err != nil {
			t.Fatal(err)
		}
	})
}

// TestPDESSnapshotCrossThreadResume: a checkpoint is a property of the
// job, not of the execution strategy. A snapshot taken under one
// SimThreads must resume under any other — parallel snapshots merge the
// shard heaps into the serial canonical form — and finish bit-identical
// to an uninterrupted serial run.
func TestPDESSnapshotCrossThreadResume(t *testing.T) {
	cfg := resumeTestConfig()
	cfg.Policy = allarm.ALLARM
	ref, err := allarm.Job{Benchmark: "barnes", Config: cfg}.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJSON := marshalResult(t, ref)

	for _, pair := range []struct{ snap, resume int }{{4, 1}, {1, 4}, {2, 8}} {
		t.Run(fmt.Sprintf("%d-to-%d", pair.snap, pair.resume), func(t *testing.T) {
			job := allarm.Job{Benchmark: "barnes", Config: cfg}
			job.Config.SimThreads = pair.snap
			h, err := allarm.StartJob(job)
			if err != nil {
				t.Fatalf("StartJob: %v", err)
			}
			blob := snapshotMidway(t, h, ref.Events/2)
			preEvents := h.Events()

			job.Config.SimThreads = pair.resume
			r, err := allarm.ResumeJob(job, bytes.NewReader(blob))
			if err != nil {
				t.Fatalf("ResumeJob with SimThreads=%d: %v", pair.resume, err)
			}
			if r.Events() != preEvents {
				t.Fatalf("resumed handle reports %d events, snapshot had %d", r.Events(), preEvents)
			}
			resumed := driveToEnd(t, r)
			if got := marshalResult(t, resumed); !bytes.Equal(refJSON, got) {
				t.Fatalf("snapshot@%d resumed@%d differs from serial run:\n got %s\nwant %s",
					pair.snap, pair.resume, got, refJSON)
			}
		})
	}
}

// TestPDESCancelMidWindow checks that cancelling a sharded run mid-flight
// yields a well-formed partial Result, like the serial engine's.
func TestPDESCancelMidWindow(t *testing.T) {
	cfg := pdesConfig(t)
	cfg.AccessesPerThread = 20_000
	cfg.SimThreads = 4

	// First measure the total event count, then cancel roughly mid-run
	// using a context that expires after a fixed number of Step windows.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	wl, err := allarm.BenchmarkWorkload("barnes", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatal(err)
	}
	h, err := allarm.StartJob(allarm.Job{Workload: wl, Config: cfg})
	if err != nil {
		t.Fatal(err)
	}
	done := false
	for i := 0; !done; i++ {
		if i == 3 {
			cancel()
		}
		done, err = h.Step(ctx, 50_000)
		if err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("run completed before cancellation; raise AccessesPerThread")
	}
	if !allarm.IsCancellation(err) {
		t.Fatalf("expected a cancellation error, got %v", err)
	}
	res := h.Partial()
	if res == nil {
		t.Fatal("cancelled run has no partial result")
	}
	if !res.Partial {
		t.Fatal("partial result not marked Partial")
	}
	if res.Accesses == 0 || res.Events == 0 {
		t.Fatalf("partial result is empty: %+v", res)
	}
	if res.RuntimeNs < 0 {
		t.Fatalf("partial result has negative runtime: %v", res.RuntimeNs)
	}
}
