// Command allarm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	allarm-bench -exp fig3a              # one experiment
//	allarm-bench -exp all                # everything (minutes)
//	allarm-bench -exp fig2 -accesses 120000 -seed 7
//	allarm-bench -exp all -parallel 4    # bound the worker pool
//	allarm-bench -exp fig3a -policy allarm-hyst   # another registered policy
//	allarm-bench -exp fig3a -json        # raw per-run records, not tables
//	allarm-bench -exp all -csv > runs.csv
//	allarm-bench -benchjson              # simulator perf snapshot (JSON)
//	allarm-bench -exp fig3a -cpuprofile cpu.pprof -memprofile mem.pprof
//	allarm-bench -exp fig3a -exectrace trace.out  # runtime execution trace
//
// -policy swaps the optimised policy the figures evaluate against the
// baseline (default "allarm", reproducing the paper exactly); any name
// registered with allarm.RegisterPolicy works.
//
// By default output is the series each figure plots (normalised to the
// baseline exactly as the paper normalises). With -json or -csv the
// requested experiments' sweeps are merged, deduplicated and run once,
// and the raw per-simulation records are emitted instead of the paper's
// tables ("table1" and "area" run no simulations and contribute
// nothing). Simulations fan out over -parallel workers; results are
// deterministic at any parallelism.
//
// -benchjson ignores -exp and instead measures the simulator itself on
// the fixed small/large × policy matrix (the same one the
// BenchmarkSim* benchmarks run), each cell under every engine-shard
// count in {1, 2, 4, 8} (-sim-threads is ignored; the matrix owns that
// axis), emitting one JSON snapshot on stdout. It runs one simulation
// at a time regardless of -parallel (clean allocation attribution) and
// rejects -fullscale/-accesses, which would change the measured
// workload. Snapshots are committed as BENCH_<PR>.json to track the
// performance trajectory across PRs; see README.md's Performance
// section.
//
// -cpuprofile and -memprofile write pprof profiles covering the run, so
// hot-path regressions are diagnosable without editing code; -exectrace
// writes a runtime execution trace (go tool trace) covering the same
// span, for scheduler-level views of worker-pool behavior.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strings"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
)

// logger carries diagnostics to stderr (results go to stdout); set once
// in run after flags are parsed.
var logger *slog.Logger

// mainContext is cancelled on Ctrl-C so an in-flight sweep stops
// promptly (finished runs are still emitted, with the rest marked
// cancelled).
func mainContext() context.Context {
	ctx, _ := signal.NotifyContext(context.Background(), os.Interrupt)
	return ctx
}

// main only translates run's status into an exit code: os.Exit skips
// deferred functions, and run's defers must execute (pprof.StopCPUProfile
// writes the CPU profile's trailer at exit) even when — especially when —
// a run fails or is interrupted.
func main() {
	os.Exit(run())
}

func run() int {
	var (
		exp        = flag.String("exp", "all", "experiment id or 'all' (one of: "+strings.Join(allarm.ExperimentIDs, ", ")+")")
		policy     = flag.String("policy", "allarm", "optimised policy the figures evaluate against the baseline (any registered name)")
		accesses   = flag.Int("accesses", 0, "accesses per thread (0 = default)")
		seed       = flag.Uint64("seed", 1, "simulation seed")
		fullScale  = flag.Bool("fullscale", false, "use unscaled Table I SRAM sizes")
		parallel   = flag.Int("parallel", 0, "simulation worker count (0 = all cores)")
		simThr     = flag.Int("sim-threads", 0, "parallel event shards per simulation (0/1 = serial engine; results are bit-identical at any setting)")
		jsonOut    = flag.Bool("json", false, "emit raw per-run records as JSON")
		csvOut     = flag.Bool("csv", false, "emit raw per-run records as CSV")
		progress   = flag.Bool("progress", false, "report per-run progress on stderr")
		benchJSON  = flag.Bool("benchjson", false, "measure the simulator on the fixed benchmark matrix and emit a BENCH_*.json snapshot")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		execTrace  = flag.String("exectrace", "", "write a runtime execution trace to this file")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat  = flag.String("log-format", "text", "log encoding: text or json")
		version    = flag.Bool("version", false, "print version and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println("allarm-bench", allarm.Version)
		return 0
	}
	var lerr error
	if logger, lerr = obs.NewLogger(os.Stderr, *logLevel, *logFormat); lerr != nil {
		fmt.Fprintln(os.Stderr, "allarm-bench:", lerr)
		return 1
	}

	cfg := allarm.ExperimentConfig()
	if *fullScale {
		cfg = allarm.DefaultConfig()
	}
	cfg.Seed = *seed
	if *accesses > 0 {
		cfg.AccessesPerThread = *accesses
	}
	if *simThr > 0 {
		cfg.SimThreads = *simThr
	}

	opt, err := allarm.ParsePolicy(*policy)
	if err != nil {
		logger.Error(err.Error())
		return 2
	}

	if *jsonOut && *csvOut {
		logger.Error("-json and -csv are mutually exclusive")
		return 2
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			logger.Error(err.Error())
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			logger.Error(err.Error())
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *execTrace != "" {
		f, err := os.Create(*execTrace)
		if err != nil {
			logger.Error(err.Error())
			return 1
		}
		if err := trace.Start(f); err != nil {
			logger.Error(err.Error())
			return 1
		}
		// Like StopCPUProfile, trace.Stop writes the trailer — it must run
		// on every exit path, which is why main defers to run's status.
		defer func() {
			trace.Stop()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				logger.Error(err.Error())
				return
			}
			defer f.Close()
			runtime.GC() // profile live objects, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				logger.Error(err.Error())
			}
		}()
	}

	ctx := mainContext()

	if *benchJSON {
		// The snapshot is only comparable across PRs when measured on the
		// fixed matrix at experiment scale; reject flags that would
		// silently change what BENCH_*.json claims to measure.
		if *fullScale || *accesses > 0 {
			logger.Error("-benchjson measures the fixed matrix; -fullscale and -accesses are incompatible")
			return 2
		}
		if err := emitBenchJSON(ctx, os.Stdout, *seed); err != nil {
			logger.Error(err.Error())
			return 1
		}
		return 0
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = allarm.ExperimentIDs
	}
	runner := &allarm.Runner{Parallelism: *parallel}
	if *progress {
		runner.Progress = func(done, total int, r allarm.SweepResult) {
			logger.Info(fmt.Sprintf("[%d/%d] %s/%s pf=%dkB",
				done, total, r.Job.Benchmark, r.Job.Config.Policy, r.Job.Config.PFBytes>>10))
		}
	}

	if *jsonOut || *csvOut {
		return emitRaw(ctx, cfg, ids, opt, runner, *jsonOut)
	}

	for _, id := range ids {
		start := time.Now()
		fmt.Printf("== %s ==\n", id)
		if err := allarm.RunExperimentVs(ctx, os.Stdout, cfg, id, opt, runner); err != nil {
			logger.Error(err.Error())
			return 1
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	return 0
}

// emitRaw merges the experiments' sweeps (dropping duplicate
// simulations), runs the union once, emits the per-run records, and
// returns the process exit status.
func emitRaw(ctx context.Context, cfg allarm.Config, ids []string, opt allarm.Policy, runner *allarm.Runner, asJSON bool) int {
	merged := allarm.NewSweep()
	for _, id := range ids {
		s, err := allarm.ExperimentSweepVs(cfg, id, opt)
		if err != nil {
			logger.Error(err.Error())
			return 1
		}
		merged.Add(s.Jobs...)
	}
	merged.Dedup()

	results, runErr := runner.Run(ctx, merged)
	var e allarm.Emitter = allarm.CSVEmitter{}
	if asJSON {
		e = allarm.JSONEmitter{Indent: true}
	}
	if err := e.Emit(os.Stdout, results); err != nil {
		logger.Error(err.Error())
		return 1
	}
	// Per-job failures and cancellation are recorded in the emitted rows;
	// reflect them in the exit status too.
	if runErr != nil || allarm.FirstError(results) != nil {
		return 1
	}
	return 0
}

// benchRun is one measured cell of allarm.SimBenchMatrix (the matrix
// shared with the BenchmarkSim* benchmarks). The "op" of the per-op
// metrics is one complete simulation.
type benchRun struct {
	Name         string  `json:"name"`
	Benchmark    string  `json:"benchmark"`
	Policy       string  `json:"policy"`
	SimThreads   int     `json:"sim_threads"`
	Accesses     int     `json:"accesses_per_thread"`
	WallNs       int64   `json:"wall_ns"`
	Events       uint64  `json:"events"`
	EventsPerSec float64 `json:"events_per_sec"`
	Allocs       uint64  `json:"allocs_per_op"`
	AllocBytes   uint64  `json:"alloc_bytes_per_op"`
	SimRuntimeNs float64 `json:"sim_runtime_ns"`
}

// benchSnapshot is the -benchjson output: one perf snapshot of the
// simulator, suitable for committing as (part of) a BENCH_*.json.
type benchSnapshot struct {
	GoVersion string     `json:"go_version"`
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	Seed      uint64     `json:"seed"`
	Runs      []benchRun `json:"runs"`
}

// benchThreadMatrix is the SimThreads axis -benchjson measures each
// cell under. The serial column keeps the historical cell names
// ("small/baseline"), so snapshots stay comparable with pre-PDES
// BENCH_*.json files; parallel columns append "/tN".
var benchThreadMatrix = []int{1, 2, 4, 8}

// emitBenchJSON measures every cell of the fixed matrix under every
// engine-shard count (one warmup run, one measured run per cell; one
// simulation at a time so allocation attribution is clean — SimThreads
// parallelism is inside the single simulation) and writes the snapshot
// as indented JSON. Cancellation is checked between cells, so an
// interrupt lets run() return — and its profile defers execute —
// instead of killing the process mid-measurement.
func emitBenchJSON(ctx context.Context, w io.Writer, seed uint64) error {
	snap := benchSnapshot{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Seed:      seed,
	}
	for _, cell := range allarm.SimBenchMatrix {
		for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM} {
			for _, st := range benchThreadMatrix {
				if err := ctx.Err(); err != nil {
					return err
				}
				cfg := allarm.ExperimentConfig()
				cfg.Seed = seed
				cfg.Policy = pol
				cfg.AccessesPerThread = cell.Accesses
				cfg.SimThreads = st
				if _, err := allarm.RunBenchmark(cfg, cell.Benchmark); err != nil {
					return err
				}
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				start := time.Now()
				res, err := allarm.RunBenchmark(cfg, cell.Benchmark)
				wall := time.Since(start)
				runtime.ReadMemStats(&after)
				if err != nil {
					return err
				}
				name := cell.Size + "/" + pol.String()
				if st > 1 {
					name = fmt.Sprintf("%s/t%d", name, st)
				}
				snap.Runs = append(snap.Runs, benchRun{
					Name:         name,
					Benchmark:    cell.Benchmark,
					Policy:       pol.String(),
					SimThreads:   st,
					Accesses:     cell.Accesses,
					WallNs:       wall.Nanoseconds(),
					Events:       res.Events,
					EventsPerSec: float64(res.Events) / wall.Seconds(),
					Allocs:       after.Mallocs - before.Mallocs,
					AllocBytes:   after.TotalAlloc - before.TotalAlloc,
					SimRuntimeNs: res.RuntimeNs,
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
