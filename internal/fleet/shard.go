package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
	"allarm/internal/server"
)

// shard is one allarm-serve backend: its HTTP client, its health state
// and its per-shard counters. All request plumbing — bearer
// credentials, health bookkeeping, response decoding — lives here so
// the router's scatter/gather logic reads as protocol, not transport.
// Retry policy lives on the Router (it owns the backoff schedule and
// its jitter source).
type shard struct {
	name   string // base URL, e.g. http://10.0.0.7:8347
	token  string // bearer forwarded on every shard request
	client *http.Client

	// Health state, written by the router's health loop and read by the
	// ring's alive predicate.
	mu             sync.Mutex
	healthy        bool
	fails          int       // consecutive failed probes
	unhealthySince time.Time // zero while healthy

	// Counters (metrics.go renders them).
	requests       atomic.Uint64
	retries        atomic.Uint64
	unhealthySpans atomic.Uint64 // completed unhealthy intervals
	unhealthyNs    atomic.Uint64 // total time spent excluded
	jobsAssigned   atomic.Uint64

	versionMu sync.Mutex
	version   string // last /v1/version answer (build-skew check)
}

// newShard builds a shard handle. transport may be nil (the default
// transport); tests and chaos harnesses inject a faultnet.RoundTripper
// here to put simulated network failures between router and fleet.
func newShard(name, token string, transport http.RoundTripper) *shard {
	return &shard{
		name:  strings.TrimRight(name, "/"),
		token: token,
		// No Client.Timeout: SSE streams are long-lived by design.
		// Bounded calls pass a context deadline instead.
		client:  &http.Client{Transport: transport},
		healthy: true, // optimistic until the first probe says otherwise
	}
}

// isHealthy is the ring's alive predicate.
func (sh *shard) isHealthy() bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.healthy
}

// probeResult records one health-poll outcome, flipping the shard's
// state after failAfter consecutive failures and re-admitting it on the
// first success. It returns the transition ("excluded", "readmitted" or
// "") for logging.
func (sh *shard) probeResult(ok bool, failAfter int, now time.Time) string {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ok {
		sh.fails = 0
		if !sh.healthy {
			sh.healthy = true
			sh.unhealthySpans.Add(1)
			sh.unhealthyNs.Add(uint64(now.Sub(sh.unhealthySince).Nanoseconds()))
			sh.unhealthySince = time.Time{}
			return "readmitted"
		}
		return ""
	}
	sh.fails++
	if sh.healthy && sh.fails >= failAfter {
		sh.healthy = false
		sh.unhealthySince = now
		return "excluded"
	}
	return ""
}

// unhealthyTotal returns completed-interval time plus the current open
// interval, so /metrics reflects an ongoing outage.
func (sh *shard) unhealthyTotal(now time.Time) (spans uint64, dur time.Duration) {
	spans = sh.unhealthySpans.Load()
	dur = time.Duration(sh.unhealthyNs.Load())
	sh.mu.Lock()
	if !sh.healthy && !sh.unhealthySince.IsZero() {
		dur += now.Sub(sh.unhealthySince)
	}
	sh.mu.Unlock()
	return spans, dur
}

// do performs one HTTP request against the shard with the bearer
// credential attached. Callers bound it with a context.
func (sh *shard) do(ctx context.Context, method, path string, body []byte) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, sh.name+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if sh.token != "" {
		req.Header.Set("Authorization", "Bearer "+sh.token)
	}
	// Forward the correlation id so the shard's request log and timeline
	// carry the router-minted id for the originating client call.
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	sh.requests.Add(1)
	return sh.client.Do(req)
}

// httpError is a non-2xx shard answer, carrying the status code so
// callers can distinguish client errors (no retry) from server ones,
// and the parsed Retry-After hint on throttled (429) answers so the
// retry schedule can honor the shard's own pacing.
type httpError struct {
	status     int
	body       string
	retryAfter time.Duration // 0 when the answer carried no usable hint
}

func (e *httpError) Error() string {
	return fmt.Sprintf("status %d: %s", e.status, strings.TrimSpace(e.body))
}

// newHTTPError captures a non-2xx response, including its Retry-After.
func newHTTPError(resp *http.Response, body []byte) *httpError {
	return &httpError{
		status:     resp.StatusCode,
		body:       string(body),
		retryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
}

// parseRetryAfter reads a Retry-After header value: delta-seconds or an
// HTTP-date. Unparseable or past values yield 0 (no hint).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(strings.TrimSpace(v)); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// doJSON performs a bounded request and decodes a 2xx JSON answer into
// out (out may be nil to discard).
func (sh *shard) doJSON(ctx context.Context, method, path string, body []byte, timeout time.Duration, out any) error {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := sh.do(cctx, method, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return newHTTPError(resp, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("decoding %s %s: %w", method, path, err)
		}
	}
	return nil
}

// isHTTPError unwraps err into an *httpError (errors.As without the
// import churn for a single type).
func isHTTPError(err error, target **httpError) bool {
	for err != nil {
		if he, ok := err.(*httpError); ok {
			*target = he
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// retryable reports whether an error is worth another attempt:
// transport errors and 5xx are, 429 is (the shard asked us to slow
// down, not to stop), any other 4xx is not (the request itself is
// wrong).
func retryable(err error) bool {
	var he *httpError
	if !isHTTPError(err, &he) {
		return true
	}
	if he.status == http.StatusTooManyRequests {
		return true
	}
	return he.status < 400 || he.status >= 500
}

// submitSweep posts a sub-sweep and returns the shard's sweep id.
func (sh *shard) submitSweep(ctx context.Context, req *server.SweepRequest, timeout time.Duration) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", err
	}
	var resp server.SubmitResponse
	if err := sh.doJSON(ctx, http.MethodPost, "/v1/sweeps", body, timeout, &resp); err != nil {
		return "", err
	}
	return resp.ID, nil
}

// fetchTimeline pulls a shard sweep's per-job timeline for the
// router's fleet-wide merge.
func (sh *shard) fetchTimeline(ctx context.Context, id string, timeout time.Duration) (obs.TimelineView, error) {
	var tv obs.TimelineView
	err := sh.doJSON(ctx, http.MethodGet, "/v1/sweeps/"+id+"/timeline", nil, timeout, &tv)
	return tv, err
}

// sweepStatus fetches a shard sweep's status view.
func (sh *shard) sweepStatus(ctx context.Context, id string, timeout time.Duration) (server.SweepView, error) {
	var v server.SweepView
	err := sh.doJSON(ctx, http.MethodGet, "/v1/sweeps/"+id, nil, timeout, &v)
	return v, err
}

// uploadTrace posts raw trace bytes (broadcast and 400-recovery paths).
func (sh *shard) uploadTrace(ctx context.Context, data []byte, timeout time.Duration) error {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodPost, sh.name+"/v1/traces", bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	if sh.token != "" {
		req.Header.Set("Authorization", "Bearer "+sh.token)
	}
	if id := obs.RequestID(cctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	sh.requests.Add(1)
	resp, err := sh.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return newHTTPError(resp, body)
	}
	return nil
}

// fetchRecords downloads a finished shard sweep's results as NDJSON and
// decodes them into Records — the gather half of the merge seam. NDJSON
// is the wire format because Go's JSON float round-trip is exact: the
// router re-encodes the decoded records bit-identically, which is what
// makes gathered output byte-equal to a single-node run.
func (sh *shard) fetchRecords(ctx context.Context, id string, timeout time.Duration) ([]allarm.Record, error) {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := sh.do(cctx, http.MethodGet, "/v1/sweeps/"+id+"/results?format=ndjson", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, newHTTPError(resp, body)
	}
	return allarm.ReadRecords(resp.Body)
}

// maxCheckpointBytes bounds a pulled machine-state checkpoint; it
// matches the shard-side POST bound.
const maxCheckpointBytes = 1 << 30

// fetchCheckpoint pulls a job's machine-state checkpoint from the shard
// (the first half of in-flight job migration). Absence — the shard
// never checkpointed the job, or already finished it — is ok == false,
// not an error: migration is an optimization, the new owner can always
// simulate from scratch.
func (sh *shard) fetchCheckpoint(ctx context.Context, name string, timeout time.Duration) ([]byte, bool) {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := sh.do(cctx, http.MethodGet, "/v1/checkpoints/"+name, nil)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxCheckpointBytes))
	if err != nil {
		return nil, false
	}
	return data, true
}

// pushCheckpoint hands a migrated checkpoint to the job's new owner,
// which will resume from it instead of simulating from event zero.
func (sh *shard) pushCheckpoint(ctx context.Context, name string, data []byte, timeout time.Duration) error {
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	resp, err := sh.do(cctx, http.MethodPost, "/v1/checkpoints/"+name, data)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return newHTTPError(resp, body)
	}
	return nil
}

// sseEvent is one parsed frame of a shard's /events stream.
type sseEvent struct {
	Type string
	Data []byte
}

// streamEvents subscribes to a shard sweep's SSE progress stream,
// invoking onEvent per frame until the stream ends or ctx is
// cancelled. The server replays full history to new subscribers, so a
// reconnect re-delivers earlier frames; consumers must be idempotent.
// The stream is advisory: the router runs it beside the status poll,
// which owns the completion decision — a silently hung stream can never
// stall a gather.
func (sh *shard) streamEvents(ctx context.Context, id string, onEvent func(sseEvent)) error {
	resp, err := sh.do(ctx, http.MethodGet, "/v1/sweeps/"+id+"/events", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return newHTTPError(resp, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var ev sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			ev.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			ev.Data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if ev.Type != "" && ev.Data != nil {
				onEvent(ev)
			}
			ev = sseEvent{}
		}
	}
	return sc.Err()
}
