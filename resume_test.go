package allarm_test

import (
	"bytes"
	"context"
	"testing"

	allarm "allarm"
)

// resumeTestConfig keeps resume tests fast but non-trivial.
func resumeTestConfig() allarm.Config {
	cfg := allarm.ExperimentConfig()
	cfg.Threads = 4
	cfg.AccessesPerThread = 4_000
	return cfg
}

// driveToEnd steps a handle to completion and returns its result.
func driveToEnd(t *testing.T, h *allarm.RunHandle) *allarm.Result {
	t.Helper()
	for {
		done, err := h.Step(context.Background(), 0)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			res, err := h.Result()
			if err != nil {
				t.Fatalf("Result: %v", err)
			}
			return res
		}
	}
}

// snapshotMidway steps in windows until roughly half the reference
// event count, then snapshots.
func snapshotMidway(t *testing.T, h *allarm.RunHandle, half uint64) []byte {
	t.Helper()
	// Snapshots are only legal inside the measured region, so keep
	// stepping while CanSnapshot is false (the half-way point may land
	// in warmup, which is not checkpointable by design).
	for h.Events() < half || !h.CanSnapshot() {
		done, err := h.Step(context.Background(), 4096)
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if done {
			t.Fatalf("run completed before the snapshot point")
		}
	}
	var buf bytes.Buffer
	if err := h.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return buf.Bytes()
}

// checkResumeBitIdentical is the facade-level acceptance check for one
// job: Job.Run, a stepwise run, and a snapshot-then-resume run must all
// produce the bit-identical Result, and the resumed run must not
// re-simulate the pre-checkpoint events.
func checkResumeBitIdentical(t *testing.T, job allarm.Job) {
	t.Helper()
	ref, err := job.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refJSON := marshalResult(t, ref)

	h, err := allarm.StartJob(job)
	if err != nil {
		t.Fatalf("StartJob: %v", err)
	}
	blob := snapshotMidway(t, h, ref.Events/2)
	preEvents := h.Events()
	stepped := driveToEnd(t, h)
	if got := marshalResult(t, stepped); !bytes.Equal(refJSON, got) {
		t.Fatalf("stepwise result differs from Job.Run:\n%s\n%s", refJSON, got)
	}

	r, err := allarm.ResumeJob(job, bytes.NewReader(blob))
	if err != nil {
		t.Fatalf("ResumeJob: %v", err)
	}
	if r.Events() != preEvents {
		t.Fatalf("resumed handle reports %d events, snapshot had %d", r.Events(), preEvents)
	}
	resumed := driveToEnd(t, r)
	if got := marshalResult(t, resumed); !bytes.Equal(refJSON, got) {
		t.Fatalf("resumed result differs from uninterrupted run:\n%s\n%s", refJSON, got)
	}
}

// TestResumeBenchmarkBitIdentical covers the preset-benchmark job path
// under both paper policies.
func TestResumeBenchmarkBitIdentical(t *testing.T) {
	for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM} {
		t.Run(string(pol), func(t *testing.T) {
			cfg := resumeTestConfig()
			cfg.Policy = pol
			checkResumeBitIdentical(t, allarm.Job{Benchmark: "ocean-cont", Config: cfg})
		})
	}
}

// TestResumeStatefulPolicy covers the registry path with per-directory
// mutable policy state (allarm-hyst): the hysteresis sets must ride
// along in the checkpoint or resumed decisions diverge.
func TestResumeStatefulPolicy(t *testing.T) {
	cfg := resumeTestConfig()
	cfg.Policy = allarm.ALLARMHyst
	checkResumeBitIdentical(t, allarm.Job{Benchmark: "barnes", Config: cfg})
}

// TestResumeTraceWorkload covers the first-class Workload path with a
// captured trace — the second acceptance workload class.
func TestResumeTraceWorkload(t *testing.T) {
	cfg := resumeTestConfig()
	cfg.Policy = allarm.ALLARM
	src, err := allarm.BenchmarkWorkload("cholesky", cfg.Threads, cfg.AccessesPerThread)
	if err != nil {
		t.Fatalf("BenchmarkWorkload: %v", err)
	}
	var traceBuf bytes.Buffer
	if err := allarm.CaptureTrace(&traceBuf, src, cfg.Seed); err != nil {
		t.Fatalf("CaptureTrace: %v", err)
	}
	// The resume contract requires rebuilding the same workload; a trace
	// read twice from the same bytes is exactly that.
	wl, err := allarm.ReadTraceNamed(bytes.NewReader(traceBuf.Bytes()), "resume-trace")
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	checkResumeBitIdentical(t, allarm.Job{Workload: wl, Config: cfg})
}

// TestResumeMultiProcess covers the Figure 4 multi-process job path.
func TestResumeMultiProcess(t *testing.T) {
	cfg := resumeTestConfig()
	cfg.Policy = allarm.ALLARM
	mp := allarm.DefaultMultiProcess()
	checkResumeBitIdentical(t, allarm.Job{Benchmark: "ocean-cont", Config: cfg, MultiProcess: &mp})
}

// TestResumeRejectsWrongJob verifies the fingerprint binding: a
// checkpoint from one job must not resume a different one.
func TestResumeRejectsWrongJob(t *testing.T) {
	cfg := resumeTestConfig()
	job := allarm.Job{Benchmark: "ocean-cont", Config: cfg}
	ref, err := job.Run()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	h, err := allarm.StartJob(job)
	if err != nil {
		t.Fatalf("StartJob: %v", err)
	}
	blob := snapshotMidway(t, h, ref.Events/2)

	other := job
	other.Config.Seed++
	if _, err := allarm.ResumeJob(other, bytes.NewReader(blob)); err == nil {
		t.Fatalf("checkpoint resumed under a different job")
	}

	// And corrupted checkpoints are refused, not half-applied.
	bad := append([]byte(nil), blob...)
	bad[len(bad)/2] ^= 0x10
	if _, err := allarm.ResumeJob(job, bytes.NewReader(bad)); err == nil {
		t.Fatalf("corrupted checkpoint resumed")
	}
}
