// multiprocess reproduces the spirit of Figure 4: two single-threaded
// copies of a SPLASH2 benchmark (no sharing between them — the data-
// center/MPI pattern), swept over shrinking probe filters. The baseline
// degrades sharply; ALLARM barely notices, because single-process data is
// entirely thread-local.
package main

import (
	"fmt"
	"log"

	allarm "allarm"
)

func main() {
	cfg := allarm.ExperimentConfig()
	cfg.AccessesPerThread = 40_000
	mp := allarm.DefaultMultiProcess()
	bench := "ocean-cont"

	cfg.Policy = allarm.Baseline
	ref, err := allarm.RunMultiProcess(cfg, mp, bench)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("two 1-thread copies of %s (footprint %dkB/process)\n",
		bench, mp.FootprintBytes>>10)
	fmt.Println("PF size   policy    speedup   evictions")
	for _, pol := range []allarm.Policy{allarm.Baseline, allarm.ALLARM} {
		for _, div := range []int{1, 2, 4, 8, 16} {
			c := cfg
			c.Policy = pol
			c.PFBytes = cfg.PFBytes / div
			res, err := allarm.RunMultiProcess(c, mp, bench)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%5dkB   %-8s  %6.3f   %9d\n",
				c.PFBytes>>10, pol, ref.RuntimeNs/res.RuntimeNs, res.PFEvictions)
		}
	}
}
