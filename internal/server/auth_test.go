package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestNewGuardValidation: configuration errors surface at startup.
func TestNewGuardValidation(t *testing.T) {
	cases := []struct {
		name    string
		clients []ClientConfig
	}{
		{"empty token", []ClientConfig{{Name: "a"}}},
		{"empty name", []ClientConfig{{Token: "t"}}},
		{"duplicate token", []ClientConfig{
			{Token: "t", Name: "a"}, {Token: "t", Name: "b"},
		}},
	}
	for _, tc := range cases {
		if _, err := NewGuard(tc.clients); err == nil {
			t.Errorf("%s: NewGuard accepted a bad config", tc.name)
		}
	}
	if _, err := NewGuard([]ClientConfig{{Token: "t", Name: "a"}}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestLoadGuard: the -auth file format.
func TestLoadGuard(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "tokens.json")
	if err := os.WriteFile(path, []byte(`[{"token":"t1","name":"ci","max_jobs":4}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	g, err := LoadGuard(path)
	if err != nil {
		t.Fatal(err)
	}
	if c := g.clients["t1"]; c == nil || c.name != "ci" || c.maxJobs != 4 {
		t.Fatalf("loaded client: %+v", g.clients["t1"])
	}

	for name, content := range map[string]string{
		"missing":   "",
		"bad json":  "{not json",
		"no client": "[]",
	} {
		p := filepath.Join(dir, "bad.json")
		if name == "missing" {
			p = filepath.Join(dir, "does-not-exist.json")
		} else if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadGuard(p); err == nil {
			t.Errorf("%s tokens file accepted", name)
		}
	}
}

// TestGuardTokenBucket exercises allow() with synthetic clocks — no
// sleeping, no flakes.
func TestGuardTokenBucket(t *testing.T) {
	g, err := NewGuard([]ClientConfig{
		{Token: "open", Name: "open"},
		{Token: "slow", Name: "slow", Rate: 2, Burst: 2},
		{Token: "budget", Name: "budget", Burst: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()

	// Unlimited client never blocks.
	open := g.clients["open"]
	for i := 0; i < 1000; i++ {
		if !open.allow(now) {
			t.Fatal("unlimited client throttled")
		}
	}

	// Rate-limited client: burst of 2, then refill at 2/s.
	slow := g.clients["slow"]
	if !slow.allow(now) || !slow.allow(now) {
		t.Fatal("burst tokens not granted")
	}
	if slow.allow(now) {
		t.Fatal("third immediate request allowed past burst")
	}
	if slow.allow(now.Add(100 * time.Millisecond)) {
		t.Fatal("allowed before a full token refilled")
	}
	// 100ms earlier drained the fraction; 600ms later the bucket holds
	// 2/s * 0.6s = 1.2 tokens.
	if !slow.allow(now.Add(700 * time.Millisecond)) {
		t.Fatal("token not refilled after 700ms at 2/s")
	}

	// Fixed budget (Rate 0, Burst > 0) never refills.
	budget := g.clients["budget"]
	for i := 0; i < 3; i++ {
		if !budget.allow(now) {
			t.Fatalf("budget request %d denied", i)
		}
	}
	if budget.allow(now.Add(time.Hour)) {
		t.Fatal("fixed budget refilled")
	}
}

// TestGuardWrap: the HTTP semantics of the front door.
func TestGuardWrap(t *testing.T) {
	g, err := NewGuard([]ClientConfig{{Token: "s3cret", Name: "ci", MaxJobs: 2}})
	if err != nil {
		t.Fatal(err)
	}
	var gotClient Client
	var gotOK bool
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotClient, gotOK = ClientFromRequest(r)
		w.WriteHeader(http.StatusNoContent)
	})
	ts := httptest.NewServer(g.Wrap(inner))
	defer ts.Close()

	call := func(path, auth string) *http.Response {
		req, _ := http.NewRequest("GET", ts.URL+path, nil)
		if auth != "" {
			req.Header.Set("Authorization", auth)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// No credential and a wrong credential are 401 with a challenge.
	for _, auth := range []string{"", "Bearer wrong", "Basic s3cret"} {
		resp := call("/v1/sweeps", auth)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("auth %q: status %d, want 401", auth, resp.StatusCode)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Fatalf("auth %q: missing WWW-Authenticate challenge", auth)
		}
	}

	// The scheme word is case-insensitive per RFC 7235; the handler sees
	// the authenticated principal either way.
	for _, auth := range []string{"Bearer s3cret", "bearer s3cret"} {
		gotOK = false
		if resp := call("/v1/sweeps", auth); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("auth %q: status %d, want 204", auth, resp.StatusCode)
		}
		if !gotOK || gotClient.Name != "ci" || gotClient.MaxJobs != 2 {
			t.Fatalf("auth %q: client %+v (ok=%v)", auth, gotClient, gotOK)
		}
	}

	// Fleet plumbing stays reachable without credentials.
	for _, path := range []string{"/healthz", "/metrics", "/v1/version"} {
		if resp := call(path, ""); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("open path %s: status %d", path, resp.StatusCode)
		}
	}

	// A nil Guard wraps to the handler unchanged.
	var nilGuard *Guard
	if nilGuard.Wrap(inner) == nil {
		t.Fatal("nil Guard.Wrap returned nil")
	}
	nts := httptest.NewServer(nilGuard.Wrap(inner))
	defer nts.Close()
	resp, err := http.Get(nts.URL + "/v1/sweeps")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("nil guard: status %d", resp.StatusCode)
	}
}

// TestGuardRateLimitHTTP: over-rate requests get 429 + Retry-After.
func TestGuardRateLimitHTTP(t *testing.T) {
	g, err := NewGuard([]ClientConfig{{Token: "t", Name: "burst", Burst: 2}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	})))
	defer ts.Close()

	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps", nil)
		req.Header.Set("Authorization", "Bearer t")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest("GET", ts.URL+"/v1/sweeps", nil)
	req.Header.Set("Authorization", "Bearer t")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over budget: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// TestCheckJobQuota: quota applies only when a guard authenticated the
// request and the client has a cap.
func TestCheckJobQuota(t *testing.T) {
	g, err := NewGuard([]ClientConfig{
		{Token: "capped", Name: "capped", MaxJobs: 5},
		{Token: "free", Name: "free"},
	})
	if err != nil {
		t.Fatal(err)
	}
	request := func(token string) *http.Request {
		var got *http.Request
		h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { got = r }))
		req := httptest.NewRequest("POST", "/v1/sweeps", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		h.ServeHTTP(httptest.NewRecorder(), req)
		return got
	}

	capped := request("capped")
	if err := CheckJobQuota(capped, 5); err != nil {
		t.Fatalf("at quota rejected: %v", err)
	}
	if err := CheckJobQuota(capped, 6); err == nil {
		t.Fatal("over quota allowed")
	}
	if err := CheckJobQuota(request("free"), 1_000_000); err != nil {
		t.Fatalf("uncapped client rejected: %v", err)
	}
	if err := CheckJobQuota(httptest.NewRequest("POST", "/v1/sweeps", nil), 1_000_000); err != nil {
		t.Fatalf("unguarded request rejected: %v", err)
	}
}

// TestCheckAdmin: the admin scope gates operational endpoints (fleet
// membership mutations) — granted per client in the tokens file,
// implicit when the daemon runs unguarded, and the "admin" flag
// round-trips through LoadGuard.
func TestCheckAdmin(t *testing.T) {
	g, err := NewGuard([]ClientConfig{
		{Token: "op", Name: "operator", Admin: true},
		{Token: "ro", Name: "reader"},
	})
	if err != nil {
		t.Fatal(err)
	}
	request := func(token string) *http.Request {
		var got *http.Request
		h := g.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { got = r }))
		req := httptest.NewRequest("POST", "/v1/shards", nil)
		req.Header.Set("Authorization", "Bearer "+token)
		h.ServeHTTP(httptest.NewRecorder(), req)
		return got
	}

	if err := CheckAdmin(request("op")); err != nil {
		t.Fatalf("admin client rejected: %v", err)
	}
	err = CheckAdmin(request("ro"))
	if err == nil {
		t.Fatal("non-admin client allowed")
	}
	if !strings.Contains(err.Error(), "reader") {
		t.Errorf("error does not name the client: %v", err)
	}
	// No guard in play: an open daemon has no principals to scope.
	if err := CheckAdmin(httptest.NewRequest("POST", "/v1/shards", nil)); err != nil {
		t.Fatalf("unguarded request rejected: %v", err)
	}

	// The tokens-file flag reaches the client record.
	dir := t.TempDir()
	path := filepath.Join(dir, "tokens.json")
	if err := os.WriteFile(path, []byte(`[{"token":"t","name":"ops","admin":true}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	lg, err := LoadGuard(path)
	if err != nil {
		t.Fatal(err)
	}
	if c := lg.clients["t"]; c == nil || !c.admin {
		t.Fatalf("admin flag lost through LoadGuard: %+v", lg.clients["t"])
	}
}
