package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	allarm "allarm"
)

// sseFrame is one parsed "event:/data:" frame.
type sseFrame struct {
	typ  string
	data []byte
}

// readStream subscribes to a sweep's event stream and blocks until the
// server ends it (the sweep reached a final state).
func readStream(base, id string) ([]sseFrame, error) {
	resp, err := http.Get(base + "/v1/sweeps/" + id + "/events")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("events: status %d", resp.StatusCode)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	var frames []sseFrame
	for _, block := range strings.Split(string(raw), "\n\n") {
		var f sseFrame
		for _, line := range strings.Split(block, "\n") {
			if v, ok := strings.CutPrefix(line, "event: "); ok {
				f.typ = v
			} else if v, ok := strings.CutPrefix(line, "data: "); ok {
				f.data = []byte(v)
			}
		}
		if f.typ != "" {
			frames = append(frames, f)
		}
	}
	return frames, nil
}

// checkReplay asserts one subscriber saw a complete, consistent
// history regardless of when it attached: every job reaches "done",
// the done counter never decreases, and the stream ends with the final
// sweep event.
func checkReplay(frames []sseFrame, total int) error {
	if len(frames) == 0 {
		return fmt.Errorf("empty stream")
	}
	terminal := make(map[int]bool)
	lastDone := 0
	var lastSweepStatus string
	for _, f := range frames {
		var ev struct {
			Index  int    `json:"index"`
			Status string `json:"status"`
			Done   int    `json:"done"`
			Total  int    `json:"total"`
		}
		if err := json.Unmarshal(f.data, &ev); err != nil {
			return fmt.Errorf("frame %q: %w", f.data, err)
		}
		if ev.Total != total {
			return fmt.Errorf("frame reports total %d, want %d", ev.Total, total)
		}
		if ev.Done < lastDone {
			return fmt.Errorf("done counter went backwards: %d after %d", ev.Done, lastDone)
		}
		lastDone = ev.Done
		switch f.typ {
		case "job":
			if ev.Status == JobDone {
				terminal[ev.Index] = true
			}
		case "sweep":
			lastSweepStatus = ev.Status
		default:
			return fmt.Errorf("unknown event type %q", f.typ)
		}
	}
	if len(terminal) != total {
		return fmt.Errorf("saw %d jobs reach done, want %d", len(terminal), total)
	}
	if lastSweepStatus != StatusDone {
		return fmt.Errorf("stream ended on sweep status %q", lastSweepStatus)
	}
	if lastDone != total {
		return fmt.Errorf("final done counter %d, want %d", lastDone, total)
	}
	return nil
}

// TestSSELateSubscribersReplay races many subscribers against a
// completing sweep: some attach before any job finishes, some between
// completions, some after the sweep is final. History replay means
// every one of them must observe the identical complete story. Run
// under -race this also exercises the publish/subscribe paths for data
// races.
func TestSSELateSubscribersReplay(t *testing.T) {
	tokens := make(chan struct{})
	_, base := newTestServer(t, Options{
		Workers: 2,
		RunJob: func(ctx context.Context, j allarm.Job) (*allarm.Result, error) {
			select {
			case <-tokens:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &allarm.Result{Benchmark: j.WorkloadName(), RuntimeNs: 1}, nil
		},
	})

	benches := []string{"barnes", "blackscholes", "cholesky", "dedup", "fluidanimate", "x264"}
	sr := submit(t, base, SweepRequest{
		Benchmarks: benches,
		Config:     &ConfigOverrides{Threads: 2, AccessesPerThread: 10},
	})
	total := len(benches)
	if sr.Jobs != total {
		t.Fatalf("expanded to %d jobs, want %d", sr.Jobs, total)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 3*total)
	spawn := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			frames, err := readStream(base, sr.ID)
			if err == nil {
				err = checkReplay(frames, total)
			}
			errs <- err
		}()
	}

	// Wave 1: subscribers attach while every job is still gated.
	for i := 0; i < total; i++ {
		spawn()
	}
	// Release jobs one at a time, attaching a fresh subscriber between
	// each completion — each sees a different live/replayed split.
	for i := 0; i < total; i++ {
		tokens <- struct{}{}
		spawn()
	}
	waitDone(t, base, sr.ID)
	// Wave 3: pure replay after the sweep is final.
	for i := 0; i < total; i++ {
		spawn()
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
