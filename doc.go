// Package allarm is a simulation library reproducing "ALLARM: Optimizing
// Sparse Directories for Thread-Local Data" (Roy & Jones, DATE 2014).
//
// ALLARM (ALLocAte on Remote Miss) is a probe-filter allocation policy
// for NUMA cache-coherent systems: directory entries are allocated only
// when the requester is in a different affinity domain from the home
// directory. Under first-touch NUMA page placement, thread-local data is
// homed locally, so it consumes no directory state and generates no
// coherence traffic. Remote misses additionally probe the home's own
// core — in parallel with the DRAM access — to find untracked copies.
//
// The package front-ends a complete machine model (16-node 4×4 mesh,
// private L1/L2 per node, Hammer-style coherence with per-node probe
// filters, one memory controller per node) plus synthetic SPLASH2/Parsec
// workload models, and exposes runners for every experiment in the
// paper's evaluation:
//
//	cfg := allarm.DefaultConfig()          // Table I parameters
//	base, opt, err := allarm.RunPair(cfg, "ocean-cont")
//	if err != nil { ... }
//	cmp := allarm.Compare(base, opt)
//	fmt.Printf("speedup %.2fx, evictions ×%.2f\n", cmp.Speedup, cmp.EvictionRatio)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package allarm
