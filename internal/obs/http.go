package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// RequestIDHeader carries the correlation id across daemon hops: the
// router mints one per inbound request (or adopts the caller's),
// echoes it on the response, and forwards it on every shard call, so
// one id stitches together the request logs and timeline events of
// every daemon a sweep touched.
const RequestIDHeader = "X-Allarm-Request-Id"

type requestIDKey struct{}

// ContextWithRequestID returns a context carrying the correlation id,
// picked up by instrumented outbound calls (fleet shard clients) and
// by RequestID.
func ContextWithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the correlation id carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID mints a fresh 16-hex-char correlation id.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// process-local counter rather than panicking in a request path.
		n := fallbackID.Add(1)
		return "local-" + hex.EncodeToString([]byte{
			byte(n >> 40), byte(n >> 32), byte(n >> 24),
			byte(n >> 16), byte(n >> 8), byte(n),
		})
	}
	return hex.EncodeToString(b[:])
}

var fallbackID atomic.Uint64

// MiddlewareOptions configures Instrument.
type MiddlewareOptions struct {
	// Logger receives one structured line per request (method, route,
	// status, duration, request id). nil disables request logging.
	Logger *slog.Logger
	// Registry receives per-route latency histograms
	// (<prefix>http_request_duration_seconds{route=...}). nil disables.
	Registry *Registry
	// Prefix prepends metric family names, e.g. "allarm_".
	Prefix string
	// Route maps a request to its low-cardinality route label, usually
	// the ServeMux pattern. nil falls back to the raw URL path.
	Route func(*http.Request) string
}

// Instrument wraps an HTTP handler with the observability trio:
// request-id minting/propagation (header in, context + response header
// out), structured request logging, and a per-route latency histogram.
// It wraps outside auth so rejected requests are logged and timed too.
func Instrument(next http.Handler, o MiddlewareOptions) http.Handler {
	var (
		mu     sync.Mutex
		routes = make(map[string]*Histogram)
	)
	routeHist := func(route string) *Histogram {
		mu.Lock()
		defer mu.Unlock()
		if h, ok := routes[route]; ok {
			return h
		}
		h := o.Registry.Histogram(
			o.Prefix+"http_request_duration_seconds",
			"HTTP handler latency by route.",
			1e-9, ExpBuckets(100_000, 100_000_000_000), // 100µs .. 100s
			Label{"route", route},
		)
		routes[route] = h
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
			r.Header.Set(RequestIDHeader, id)
		}
		w.Header().Set(RequestIDHeader, id)
		r = r.WithContext(ContextWithRequestID(r.Context(), id))

		route := r.URL.Path
		if o.Route != nil {
			if p := o.Route(r); p != "" {
				route = p
			}
		}

		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)

		if o.Registry != nil {
			routeHist(route).Observe(uint64(elapsed.Nanoseconds()))
		}
		if o.Logger != nil {
			// Health and metrics scrapes arrive every few seconds from
			// pollers; keep them out of the default log stream.
			level := slog.LevelInfo
			if r.URL.Path == "/healthz" || r.URL.Path == "/metrics" {
				level = slog.LevelDebug
			}
			o.Logger.LogAttrs(r.Context(), level, "request",
				slog.String("method", r.Method),
				slog.String("route", route),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.status),
				slog.Duration("duration", elapsed),
				slog.String("request_id", id),
				slog.String("remote", r.RemoteAddr),
			)
		}
	})
}

// statusWriter records the response status while passing Flush through
// so instrumented SSE streams (/v1/sweeps/{id}/events) keep working.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.wrote = true
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }
