package trace

import (
	"bytes"
	"io"
	"testing"

	"allarm/internal/sim"
	"allarm/internal/workload"
)

func testWorkload(t *testing.T) *workload.Synthetic {
	t.Helper()
	return workload.MustSynthetic(workload.Params{
		Name: "trace-test", Threads: 3, AccessesPerThread: 100,
		PrivateBytes: 16 << 10, PrivateFrac: 0.6,
		PrivateWriteFrac: 0.4, PrivateHot: 0.5, SeqRunFrac: 0.5,
		SharedBytes: 32 << 10, SharedWriteFrac: 0.3,
		Pattern: workload.Uniform, Init: workload.InterleavedInit,
		Think: 3 * sim.Nanosecond,
	})
}

func TestRoundTrip(t *testing.T) {
	wl := testWorkload(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, wl.Threads())
	if err != nil {
		t.Fatal(err)
	}
	if err := Capture(w, wl, 42); err != nil {
		t.Fatal(err)
	}
	if w.Records() != 300 {
		t.Fatalf("captured %d records", w.Records())
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Threads() != 3 {
		t.Fatalf("threads = %d", r.Threads())
	}
	rp, err := LoadReplay(r)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Records() != 300 {
		t.Fatalf("replay holds %d records", rp.Records())
	}

	// Replayed streams must equal the original generator's streams.
	for th := 0; th < 3; th++ {
		orig := wl.Stream(th, 42)
		got := rp.Stream(th)
		for i := 0; ; i++ {
			oa, ook := orig.Next()
			ga, gok := got.Next()
			if ook != gok {
				t.Fatalf("thread %d length mismatch at %d", th, i)
			}
			if !ook {
				break
			}
			if oa.VAddr != ga.VAddr || oa.Write != ga.Write {
				t.Fatalf("thread %d record %d: %+v vs %+v", th, i, oa, ga)
			}
			// Think time quantised to nanoseconds by the format.
			if ga.Think != (oa.Think/sim.Nanosecond)*sim.Nanosecond {
				t.Fatalf("think mangled: %v vs %v", ga.Think, oa.Think)
			}
		}
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("NOPE00000000"))); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestTruncatedHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader(Magic[:])); err == nil {
		t.Fatal("truncated header accepted")
	}
}

func TestTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Write(Record{Thread: 0})
	w.Flush()
	data := buf.Bytes()[:buf.Len()-3]
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("truncated record accepted")
	}
}

func TestWriterRejectsBadThread(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	if err := w.Write(Record{Thread: 5}); err == nil {
		t.Fatal("out-of-range thread accepted")
	}
	if _, err := NewWriter(io.Discard, 0); err == nil {
		t.Fatal("zero-thread writer accepted")
	}
	if _, err := NewWriter(io.Discard, 300); err == nil {
		t.Fatal("too-many-thread writer accepted")
	}
}

func TestRecordThreadValidationOnRead(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 3)
	w.Write(Record{Thread: 2})
	w.Flush()
	// Corrupt the record's thread byte (offset: 12-byte header + 1).
	data := buf.Bytes()
	data[12+1] = 200
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err == nil {
		t.Fatal("corrupt thread id accepted")
	}
}

func TestEmptyTraceEOF(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 1)
	w.Flush()
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}
