package allarm

import (
	"fmt"

	"allarm/internal/core"
	"allarm/internal/mem"
	"allarm/internal/noc"
	"allarm/internal/sim"
	"allarm/internal/system"
)

// MemPolicy selects the OS page-placement policy.
type MemPolicy int

const (
	// FirstTouch places a page at the first toucher's node (the default
	// of mainstream operating systems; ALLARM's assumption).
	FirstTouch MemPolicy = iota
	// NextTouch additionally migrates marked pages to their next
	// toucher.
	NextTouch
)

// Config describes one simulated machine and workload scale. The zero
// value is invalid; start from DefaultConfig (the paper's Table I).
type Config struct {
	// Threads is the software thread count (Table I: 16, one per node).
	Threads int
	// AccessesPerThread is each thread's region-of-interest length.
	AccessesPerThread int
	// Seed makes runs reproducible; the same seed with the same Config
	// yields a bit-identical simulation.
	Seed uint64

	// Policy selects the directory allocation policy (machine-wide) by
	// registry name: Baseline, ALLARM, ALLARMHyst or any name added with
	// RegisterPolicy. The zero value means Baseline.
	Policy Policy
	// ALLARMRanges optionally restricts ALLARM to physical address
	// ranges (the paper's boot-time range registers). Empty = all.
	ALLARMRanges []AddrRange
	// MemPolicy is the OS placement policy (paper: first-touch).
	MemPolicy MemPolicy

	// Machine geometry (Table I).
	Nodes        int
	MeshW, MeshH int

	// Cache organisation, bytes and ways (Table I: 32 KiB/4, 256 KiB/4).
	L1Bytes, L1Ways int
	L2Bytes, L2Ways int

	// PFBytes is the cached-data coverage of each node's probe filter
	// (Table I: 512 KiB = 2× one L2); PFWays its associativity.
	PFBytes, PFWays int

	// Latencies in nanoseconds (Table I: 1 ns caches and directory,
	// 60 ns DRAM, 10 ns links).
	CacheNs, DirNs, DRAMNs, LinkNs float64
	// DRAMIntervalNs is the minimum spacing between DRAM requests at one
	// controller (bandwidth); 0 = unlimited.
	DRAMIntervalNs float64

	// NoC parameters (Table I: 8 GB/s links, 4-byte flits, 8-byte
	// control and 72-byte data messages).
	LinkBytesPerNs             float64
	FlitBytes                  int
	CtrlMsgBytes, DataMsgBytes int

	// MemMiBPerNode is per-node DRAM capacity in MiB (Table I: 128).
	MemMiBPerNode int

	// CheckInvariants enables the coherence validator (tests).
	CheckInvariants bool
	// MaxEvents bounds a run as a deadlock guard (0 = library default).
	MaxEvents uint64

	// SimThreads is the number of event-engine shards (goroutines) the
	// simulation runs on. 0 or 1 selects the exact serial engine; higher
	// values partition the tiles into that many conservatively
	// synchronized event shards with bit-identical results (see the
	// Performance section of README.md). The machine silently falls back
	// to serial when sharding is unsupported (invariant checker on,
	// next-touch placement, zero NoC lookahead). SimThreads is an
	// execution knob, not part of the simulated machine: it never
	// changes results, and sweep job identities ignore it.
	SimThreads int
}

// AddrRange is a physical address range [Start, End) for ALLARM's range
// registers.
type AddrRange struct{ Start, End uint64 }

// DefaultConfig returns the paper's Table I system with a workload scale
// suitable for laptop-class runs (the paper itself scales inputs down;
// see the Experiments section of README.md).
func DefaultConfig() Config {
	return Config{
		Threads:           16,
		AccessesPerThread: 60_000,
		Seed:              1,
		Policy:            Baseline,
		MemPolicy:         FirstTouch,

		Nodes: 16, MeshW: 4, MeshH: 4,
		L1Bytes: 32 << 10, L1Ways: 4,
		L2Bytes: 256 << 10, L2Ways: 4,
		PFBytes: 512 << 10, PFWays: 4,

		CacheNs: 1, DirNs: 1, DRAMNs: 60, LinkNs: 10,
		DRAMIntervalNs: 4,

		LinkBytesPerNs: 8,
		FlitBytes:      4,
		CtrlMsgBytes:   8,
		DataMsgBytes:   72,

		MemMiBPerNode: 128,

		MaxEvents: 2_000_000_000,
	}
}

// Validate reports the first inconsistency in the configuration,
// including the benchmark scale fields (Threads, AccessesPerThread) the
// preset runners consume. Workload-driven runs (Run with an explicit
// Workload) take their scale from the workload and only need
// validateMachine.
func (c Config) Validate() error {
	if c.Threads <= 0 {
		return fmt.Errorf("allarm: threads must be positive")
	}
	if c.Threads > c.Nodes {
		// One in-order core per node, one outstanding access per core: a
		// second thread on a node would trip the cache controller's MSHR
		// guard mid-run. Reject it up front, like Run does for Workloads.
		return fmt.Errorf("allarm: %d threads exceed the machine's %d nodes", c.Threads, c.Nodes)
	}
	if c.AccessesPerThread <= 0 {
		return fmt.Errorf("allarm: accesses per thread must be positive")
	}
	return c.validateMachine()
}

// validateMachine checks the machine description (everything except the
// preset-workload scale fields).
func (c Config) validateMachine() error {
	if c.MemMiBPerNode <= 0 {
		return fmt.Errorf("allarm: per-node memory must be positive")
	}
	sys, err := c.systemConfig()
	if err != nil {
		return err
	}
	return sys.Validate()
}

// ExperimentScale is the SRAM scaling divisor of the reproduction
// harness: the paper scales caches down with its (already reduced)
// inputs (§III); our runs are shorter still, so the harness divides every
// SRAM capacity by this factor, preserving all ratios (the probe filter
// stays 2× one L2, the L1:L2 ratio stays 1:8).
const ExperimentScale = 4

// ExperimentConfig returns the configuration used by the experiment
// harness: Table I with all SRAM capacities divided by ExperimentScale.
// See the Experiments section of README.md for the methodology note.
func ExperimentConfig() Config {
	c := DefaultConfig()
	c.L1Bytes /= ExperimentScale
	c.L2Bytes /= ExperimentScale
	c.PFBytes /= ExperimentScale
	// The scaled machine keeps Table I latencies; the memory controller's
	// service interval matches one line at 8 GB/s, so back-invalidation
	// refill/writeback storms queue at hot home nodes as they do in the
	// evaluated system.
	c.DRAMIntervalNs = 8
	return c
}

func ns(v float64) sim.Time { return sim.Time(v * float64(sim.Nanosecond)) }

// systemConfig lowers the public Config to the internal machine config,
// resolving the allocation policy against the registry.
func (c Config) systemConfig() (system.Config, error) {
	var ranges *core.RangeSet
	if len(c.ALLARMRanges) > 0 {
		rs := make([]core.AddrRange, 0, len(c.ALLARMRanges))
		for _, r := range c.ALLARMRanges {
			rs = append(rs, core.AddrRange{Start: mem.PAddr(r.Start), End: mem.PAddr(r.End)})
		}
		set, err := core.NewRangeSet(rs...)
		if err != nil {
			return system.Config{}, err
		}
		ranges = set
	}
	alloc, err := c.allocFactory(ranges)
	if err != nil {
		return system.Config{}, err
	}
	return system.Config{
		Nodes: c.Nodes, MeshW: c.MeshW, MeshH: c.MeshH,
		L1Bytes: c.L1Bytes, L1Ways: c.L1Ways,
		L2Bytes: c.L2Bytes, L2Ways: c.L2Ways,
		PFCoverage: c.PFBytes, PFWays: c.PFWays,
		Alloc:        alloc,
		CacheLatency: ns(c.CacheNs), DirLatency: ns(c.DirNs),
		DRAMLatency: ns(c.DRAMNs), DRAMInterval: ns(c.DRAMIntervalNs),
		NoC: noc.Config{
			Width: c.MeshW, Height: c.MeshH,
			LinkLatency:   ns(c.LinkNs),
			LinkBandwidth: c.LinkBytesPerNs,
			FlitBytes:     c.FlitBytes,
			ControlBytes:  c.CtrlMsgBytes,
			DataBytes:     c.DataMsgBytes,
			LocalLatency:  ns(c.CacheNs),
		},
		MemBytesPerNode: uint64(c.MemMiBPerNode) << 20,
		CheckInvariants: c.CheckInvariants,
		MaxEvents:       c.MaxEvents,
		SimThreads:      c.effectiveSimThreads(),
	}, nil
}

// effectiveSimThreads lowers the sharding knob, forcing serial where
// the facade knows sharding is unsound: next-touch placement migrates
// pages mid-run, which races once translation happens on shard
// goroutines (the system layer handles the remaining fallbacks).
func (c Config) effectiveSimThreads() int {
	if c.MemPolicy == NextTouch {
		return 1
	}
	return c.SimThreads
}

// memPolicy lowers the OS placement policy.
func (c Config) memPolicy() mem.Policy {
	if c.MemPolicy == NextTouch {
		return mem.NextTouch
	}
	return mem.FirstTouch
}
