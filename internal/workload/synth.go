package workload

import (
	"allarm/internal/mem"
	"allarm/internal/rng"
	"allarm/internal/sim"
)

// SharePattern selects how threads reference the shared region.
type SharePattern uint8

const (
	// Uniform spreads shared accesses uniformly over the whole region
	// (poor reuse; most shared references miss).
	Uniform SharePattern = iota
	// HotOwner concentrates accesses on a Zipf-skewed hot set of the
	// shared region; combined with OwnerInit placement this reproduces
	// blackscholes' "one thread initialises, everyone reads" behaviour.
	HotOwner
	// Stencil partitions the region by thread; each thread mostly works
	// on its own partition and leaks NeighborFrac of its shared accesses
	// into the adjacent partitions' boundary rows (ocean's pattern).
	Stencil
	// Pipeline stages data between threads: each thread writes its own
	// partition and reads its upstream neighbour's (dedup/x264).
	Pipeline
	// Migratory passes blocks of lines from thread to thread with
	// read-modify-write bursts (cholesky's panel updates).
	Migratory
)

// String implements fmt.Stringer.
func (p SharePattern) String() string {
	switch p {
	case Uniform:
		return "uniform"
	case HotOwner:
		return "hot-owner"
	case Stencil:
		return "stencil"
	case Pipeline:
		return "pipeline"
	case Migratory:
		return "migratory"
	default:
		return "unknown"
	}
}

// InitPattern selects which thread first-touches shared pages (NUMA
// placement before the region of interest).
type InitPattern uint8

const (
	// OwnerInit: thread 0 touches every shared page (blackscholes).
	OwnerInit InitPattern = iota
	// PartitionedInit: each thread touches its own partition (ocean,
	// barnes after domain decomposition).
	PartitionedInit
	// InterleavedInit: pages round-robin across threads (scattered data
	// structures; ocean-non-contiguous approximates this).
	InterleavedInit
)

// Params configures a synthetic benchmark generator.
type Params struct {
	Name              string
	Threads           int
	AccessesPerThread int

	// PrivateBytes is each thread's private working set; relative to the
	// L2 capacity it controls the local (capacity) miss rate.
	PrivateBytes int
	// PrivateFrac is the fraction of references into the private region.
	PrivateFrac float64
	// PrivateWriteFrac is the store fraction of private references.
	PrivateWriteFrac float64
	// PrivateHot skews private references: fraction of private accesses
	// that go to a small hot subset (reuse), the rest streaming.
	PrivateHot float64

	// SharedBytes is the shared region size; SharedWriteFrac its store
	// ratio; SharedHot the Zipf exponent for HotOwner.
	SharedBytes     int
	SharedWriteFrac float64
	SharedHot       float64

	// GlobalBytes is a machine-wide read-mostly region (code, lookup
	// tables, octree internals, reference frames): GlobalFrac of all
	// references go here. Each thread repeatedly sweeps its own slice
	// (GlobalHot of global references; the affinity real schedulers
	// create), the rest sample uniformly. Because the whole region is
	// first-touched during initialisation by a few threads
	// (GlobalHomeNodes), its directory entries concentrate on a few hot
	// homes — the imbalance that drives baseline probe-filter pressure.
	GlobalBytes int
	GlobalFrac  float64
	GlobalHot   float64
	// GlobalHomeNodes concentrates the global region's pages on the
	// first k threads' nodes (0 = spread across all threads). Shared
	// structures in real programs (tree roots, task queues, hash
	// directories, reference frames) are first-touched by a few threads,
	// so a few homes carry most of the machine's tracking load.
	GlobalHomeNodes int

	Pattern SharePattern
	Init    InitPattern
	// NeighborFrac (Stencil): share of shared accesses to neighbours'
	// boundaries. UpstreamFrac (Pipeline): share of shared accesses that
	// read the upstream stage. BlockLines/BlockRun (Migratory): lines per
	// migratory block and accesses per ownership episode.
	NeighborFrac float64
	UpstreamFrac float64
	BlockLines   int
	BlockRun     int

	// SeqRunFrac is the probability of continuing a sequential run
	// (spatial locality) rather than jumping.
	SeqRunFrac float64

	// Think is the mean compute gap between accesses; ThinkJitter its
	// uniform spread.
	Think       sim.Time
	ThinkJitter sim.Time
}

// Synthetic is a Workload built from Params.
type Synthetic struct {
	p Params
}

// NewSynthetic validates p and returns the workload.
func NewSynthetic(p Params) (*Synthetic, error) {
	if err := validateParams(p); err != nil {
		return nil, err
	}
	if p.BlockLines <= 0 {
		p.BlockLines = 64
	}
	if p.BlockRun <= 0 {
		p.BlockRun = 32
	}
	return &Synthetic{p: p}, nil
}

// MustSynthetic is NewSynthetic for the trusted built-in presets.
func MustSynthetic(p Params) *Synthetic {
	w, err := NewSynthetic(p)
	if err != nil {
		panic(err)
	}
	return w
}

// Name implements Workload.
func (w *Synthetic) Name() string { return w.p.Name }

// Threads implements Workload.
func (w *Synthetic) Threads() int { return w.p.Threads }

// Params returns a copy of the generator parameters.
func (w *Synthetic) Params() Params { return w.p }

// ForEachPage implements Preplacer: private pages belong to their thread;
// global pages interleave across threads (balanced homes); shared pages
// follow the Init pattern.
func (w *Synthetic) ForEachPage(fn func(page mem.VAddr, thread int)) {
	for t := 0; t < w.p.Threads; t++ {
		base := PrivateBase(t)
		for off := 0; off < w.p.PrivateBytes; off += mem.PageBytes {
			fn(base+mem.VAddr(off), t)
		}
	}
	ghomes := w.p.GlobalHomeNodes
	if ghomes <= 0 || ghomes > w.p.Threads {
		ghomes = w.p.Threads
	}
	for i := 0; i < w.p.GlobalBytes/mem.PageBytes; i++ {
		fn(globalBase+mem.VAddr(i*mem.PageBytes), i%ghomes)
	}
	pages := w.p.SharedBytes / mem.PageBytes
	part := (pages + w.p.Threads - 1) / w.p.Threads
	for i := 0; i < pages; i++ {
		va := sharedBase + mem.VAddr(i*mem.PageBytes)
		switch w.p.Init {
		case OwnerInit:
			fn(va, 0)
		case PartitionedInit:
			fn(va, min(i/part, w.p.Threads-1))
		case InterleavedInit:
			fn(va, i%w.p.Threads)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// WarmupStream returns thread t's initialisation pass, run before the
// measured region of interest: it sweeps the thread's private region, its
// own shared partition, and a slice of the global region shared with a
// partner thread (so every global line acquires two readers and its
// probe-filter entry degrades to the lingering S state). This leaves the
// caches and probe filters in the steady state a long-running benchmark
// would have at the start of its measured phase.
func (w *Synthetic) WarmupStream(t int, seed uint64) Stream {
	p := w.p
	var sweeps []sweep

	// Private region, line-granular, with writes per the preset.
	sweeps = append(sweeps, sweep{
		base:  PrivateBase(t),
		lines: p.PrivateBytes / mem.LineBytes,
		write: p.PrivateWriteFrac,
	})

	// Own shared partition (patterns with per-thread partitions touch it
	// heavily; a single pass warms the caches and directory).
	sharedLines := p.SharedBytes / mem.LineBytes
	part := sharedLines / p.Threads
	if part > 0 {
		sweeps = append(sweeps, sweep{
			base:  sharedBase + mem.VAddr(t*part*mem.LineBytes),
			lines: part,
			write: p.SharedWriteFrac,
		})
	}

	// Own global slice: one pass warms the caches and leaves the slice's
	// probe-filter entries live at their (concentrated) homes — the
	// steady state a long-running benchmark reaches.
	if p.GlobalBytes > 0 {
		slice := p.GlobalBytes / mem.LineBytes / p.Threads
		if slice > 0 {
			sweeps = append(sweeps, sweep{
				base:  globalBase + mem.VAddr(t*slice*mem.LineBytes),
				lines: slice,
				write: 0,
			})
		}
	}
	return &warmupStream{sweeps: sweeps, src: rng.New(seed ^ 0xdead ^ uint64(t)<<32)}
}

type sweep struct {
	base  mem.VAddr
	lines int
	write float64
}

type warmupStream struct {
	sweeps []sweep
	src    *rng.Source
	si     int
	li     int
}

// Next implements Stream: one access per line, zero think time.
func (ws *warmupStream) Next() (Access, bool) {
	for ws.si < len(ws.sweeps) {
		sw := ws.sweeps[ws.si]
		if ws.li < sw.lines {
			a := Access{
				VAddr: sw.base + mem.VAddr(ws.li*mem.LineBytes),
				Write: ws.src.Bool(sw.write),
			}
			ws.li++
			return a, true
		}
		ws.si++
		ws.li = 0
	}
	return Access{}, false
}

// Stream implements Workload.
func (w *Synthetic) Stream(t int, seed uint64) Stream {
	p := w.p
	src := rng.New(seed ^ (uint64(t)+1)*0x9e3779b97f4a7c15 ^ hashName(p.Name))
	s := &synthStream{p: p, t: t, src: src}
	privLines := p.PrivateBytes / mem.LineBytes
	hotLines := privLines / 8
	if hotLines < 1 {
		hotLines = 1
	}
	s.privLines = privLines
	s.hotLines = hotLines
	if p.Pattern == HotOwner {
		n := p.SharedBytes / mem.LineBytes
		if n > 4096 {
			n = 4096 // Zipf table over the hot head; tail sampled uniform
		}
		s.zipf = rng.NewZipf(src, n, p.SharedHot)
	}
	return s
}

// hashName folds a benchmark name into the seed so different benchmarks
// with the same seed do not replay identical random streams.
func hashName(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// wordBytes is the access granularity: sequential runs step one word at a
// time, so a streaming pass touches each 64-byte line eight times before
// moving on — the spatial locality that gives real codes their cache hit
// rates.
const wordBytes = 8

// wordsPerLine is the number of access-granularity words per cache line.
const wordsPerLine = mem.LineBytes / wordBytes

type synthStream struct {
	p         Params
	t         int
	src       *rng.Source
	zipf      *rng.Zipf
	issued    int
	privLines int
	hotLines  int
	// sequential-run cursors, in words
	privCursor   int
	sharedCursor int
	globalCursor int
	migEpoch     int
}

// Next implements Stream.
func (s *synthStream) Next() (Access, bool) {
	if s.issued >= s.p.AccessesPerThread {
		return Access{}, false
	}
	s.issued++

	think := s.p.Think
	if s.p.ThinkJitter > 0 {
		think += sim.Time(s.src.Uint64n(uint64(s.p.ThinkJitter)))
	}

	r := s.src.Float64()
	switch {
	case r < s.p.GlobalFrac:
		return Access{VAddr: s.globalAddr(), Think: think}, true
	case r < s.p.GlobalFrac+s.p.PrivateFrac:
		return Access{
			VAddr: s.privateAddr(),
			Write: s.src.Bool(s.p.PrivateWriteFrac),
			Think: think,
		}, true
	}
	va, write := s.sharedAddr()
	return Access{VAddr: va, Write: write, Think: think}, true
}

// globalAddr picks a read-only word: with probability GlobalHot the
// thread continues the word-granular sweep of its own slice (fast
// revisit, so a back-invalidated slice line is guaranteed to re-miss on
// the next pass), otherwise it samples the whole region uniformly
// (creating the multi-reader S entries that linger in the probe filter).
func (s *synthStream) globalAddr() mem.VAddr {
	lines := s.p.GlobalBytes / mem.LineBytes
	slice := lines / s.p.Threads
	if slice < 1 {
		slice = 1
	}
	if s.src.Bool(s.p.GlobalHot) {
		s.globalCursor = (s.globalCursor + 1) % (slice * wordsPerLine)
		word := s.t*slice*wordsPerLine + s.globalCursor
		return globalBase + mem.VAddr(word*wordBytes)
	}
	line := s.src.Intn(lines)
	return globalBase + mem.VAddr(line*mem.LineBytes+s.src.Intn(wordsPerLine)*wordBytes)
}

// privateAddr picks a word in the thread's private arena: a hot subset
// with strong reuse plus a streaming remainder, with word-granular
// sequential runs for spatial locality.
func (s *synthStream) privateAddr() mem.VAddr {
	words := s.privLines * wordsPerLine
	switch {
	case s.src.Bool(s.p.SeqRunFrac):
		s.privCursor = (s.privCursor + 1) % words
	case s.src.Bool(s.p.PrivateHot):
		s.privCursor = s.src.Intn(s.hotLines) * wordsPerLine
	default:
		s.privCursor = s.src.Intn(s.privLines) * wordsPerLine
	}
	return PrivateBase(s.t) + mem.VAddr(s.privCursor*wordBytes)
}

// sharedAddr picks a word in the shared region according to the pattern.
func (s *synthStream) sharedAddr() (mem.VAddr, bool) {
	lines := s.p.SharedBytes / mem.LineBytes
	part := lines / s.p.Threads
	if part == 0 {
		part = 1
	}
	write := s.src.Bool(s.p.SharedWriteFrac)

	var word int
	switch s.p.Pattern {
	case Uniform:
		if s.src.Bool(s.p.SeqRunFrac) {
			s.sharedCursor = (s.sharedCursor + 1) % (lines * wordsPerLine)
		} else {
			s.sharedCursor = s.src.Intn(lines) * wordsPerLine
		}
		word = s.sharedCursor

	case HotOwner:
		var line int
		if s.zipf != nil && s.src.Bool(0.85) {
			line = s.zipf.Next()
		} else {
			line = s.src.Intn(lines)
		}
		word = line*wordsPerLine + s.src.Intn(wordsPerLine)

	case Stencil:
		if s.src.Bool(s.p.NeighborFrac) {
			// Boundary exchange: sweep the first quarter of an adjacent
			// thread's partition (the halo plane; proportionally wide in
			// a scaled-down grid).
			n := s.t + 1
			if s.src.Bool(0.5) {
				n = s.t - 1
			}
			n = ((n % s.p.Threads) + s.p.Threads) % s.p.Threads
			boundary := part / 4
			if boundary < 1 {
				boundary = 1
			}
			word = (n*part + s.src.Intn(boundary)) * wordsPerLine
		} else {
			if s.src.Bool(s.p.SeqRunFrac) {
				s.sharedCursor = (s.sharedCursor + 1) % (part * wordsPerLine)
			} else {
				s.sharedCursor = s.src.Intn(part) * wordsPerLine
			}
			word = s.t*part*wordsPerLine + s.sharedCursor
		}

	case Pipeline:
		// Stages communicate through a bounded queue region at the head
		// of each partition: the producer re-writes it, the consumer
		// re-reads it, so the traffic is coherence (invalidation) misses
		// rather than capacity misses — dedup/x264's behaviour.
		queue := part / 8
		if queue < 1 {
			queue = 1
		}
		switch {
		case s.src.Bool(s.p.UpstreamFrac):
			up := ((s.t-1)%s.p.Threads + s.p.Threads) % s.p.Threads
			word = (up*part+s.src.Intn(queue))*wordsPerLine + s.src.Intn(wordsPerLine)
			write = false
		case s.src.Bool(0.5):
			// Enqueue into our own queue region.
			word = (s.t*part+s.src.Intn(queue))*wordsPerLine + s.src.Intn(wordsPerLine)
			write = true
		default:
			// Scratch sweep across the rest of our partition.
			if s.src.Bool(s.p.SeqRunFrac) {
				s.sharedCursor = (s.sharedCursor + 1) % (part * wordsPerLine)
			} else {
				s.sharedCursor = s.src.Intn(part) * wordsPerLine
			}
			word = s.t*part*wordsPerLine + s.sharedCursor
		}

	case Migratory:
		// Blocks pass from thread to thread; within an ownership episode
		// the thread sweeps the block word-by-word (read-modify-write),
		// so misses are coherence misses at block handoff.
		blocks := lines / s.p.BlockLines
		if blocks == 0 {
			blocks = 1
		}
		if s.issued%s.p.BlockRun == 0 {
			s.migEpoch++
		}
		b := (s.t + s.migEpoch) % blocks
		blockWords := s.p.BlockLines * wordsPerLine
		s.sharedCursor = (s.sharedCursor + 1) % blockWords
		word = b*blockWords + s.sharedCursor
	}

	maxWord := lines*wordsPerLine - 1
	if word > maxWord {
		word = maxWord
	}
	return sharedBase + mem.VAddr(word*wordBytes), write
}
