package mem

import (
	"testing"
	"testing/quick"
)

func TestAddressArithmetic(t *testing.T) {
	a := PAddr(0x12345)
	if LineOf(a) != 0x12340 {
		t.Fatalf("LineOf = %#x", uint64(LineOf(a)))
	}
	if PageOf(a) != 0x12000 {
		t.Fatalf("PageOf = %#x", uint64(PageOf(a)))
	}
	v := VAddr(0x12345)
	if VPageOf(v) != 0x12000 || VLineOf(v) != 0x12340 {
		t.Fatalf("virtual arithmetic wrong")
	}
	if PageOffset(v) != 0x345 {
		t.Fatalf("PageOffset = %#x", PageOffset(v))
	}
}

func TestAddressArithmeticProperties(t *testing.T) {
	f := func(raw uint64) bool {
		a := PAddr(raw)
		return LineOf(a) <= a && a-LineOf(a) < LineBytes &&
			PageOf(a) <= a && a-PageOf(a) < PageBytes &&
			PageOf(LineOf(a)) == PageOf(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPhysMemHome(t *testing.T) {
	m := NewPhysMem(4, 1<<20)
	if m.Home(0) != 0 || m.Home(1<<20) != 1 || m.Home(4<<20-1) != 3 {
		t.Fatal("Home mapping wrong")
	}
	if m.TotalBytes() != 4<<20 {
		t.Fatalf("TotalBytes = %d", m.TotalBytes())
	}
}

func TestPhysMemHomePanicsBeyondEnd(t *testing.T) {
	m := NewPhysMem(2, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	m.Home(PAddr(2 << 20))
}

func TestAllocFrameAndExhaustion(t *testing.T) {
	m := NewPhysMem(2, 2*PageBytes)
	a, ok := m.AllocFrame(0)
	b, ok2 := m.AllocFrame(0)
	if !ok || !ok2 || a == b {
		t.Fatalf("alloc: %v %v %v %v", a, ok, b, ok2)
	}
	if m.Home(a) != 0 || m.Home(b) != 0 {
		t.Fatal("frames not homed at requested node")
	}
	if _, ok := m.AllocFrame(0); ok {
		t.Fatal("allocation beyond capacity succeeded")
	}
	if m.FramesInUse(0) != 2 {
		t.Fatalf("FramesInUse = %d", m.FramesInUse(0))
	}
}

func TestFreeFrameReuse(t *testing.T) {
	m := NewPhysMem(1, 2*PageBytes)
	a, _ := m.AllocFrame(0)
	m.AllocFrame(0)
	m.FreeFrame(a)
	c, ok := m.AllocFrame(0)
	if !ok || c != a {
		t.Fatalf("freed frame not reused: %v vs %v", c, a)
	}
}

func TestFirstTouchPlacesLocally(t *testing.T) {
	m := NewPhysMem(4, 1<<20)
	as := NewAddressSpace(m, FirstTouch)
	pa := as.Translate(0x1000, 2)
	if m.Home(pa) != 2 {
		t.Fatalf("first touch homed at %d, want 2", m.Home(pa))
	}
	// Same page from another node keeps its home.
	pa2 := as.Translate(0x1008, 3)
	if PageOf(pa2) != PageOf(pa) {
		t.Fatal("same virtual page translated to different frames")
	}
	if home, ok := as.HomeOf(0x1000); !ok || home != 2 {
		t.Fatalf("HomeOf = %d,%v", home, ok)
	}
	st := as.Stats()
	if st.PagesAllocated != 1 || st.LocalAllocations != 1 || st.RemoteFallbacks != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFirstTouchFallsBackWhenFull(t *testing.T) {
	m := NewPhysMem(2, PageBytes) // one frame per node
	as := NewAddressSpace(m, FirstTouch)
	as.Translate(0x0000, 0)
	pa := as.Translate(0x2000, 0) // node 0 full → falls back to node 1
	if m.Home(pa) != 1 {
		t.Fatalf("fallback home = %d", m.Home(pa))
	}
	if st := as.Stats(); st.RemoteFallbacks != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMemoryExhaustionPanics(t *testing.T) {
	m := NewPhysMem(1, PageBytes)
	as := NewAddressSpace(m, FirstTouch)
	as.Translate(0x0000, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on exhaustion")
		}
	}()
	as.Translate(0x2000, 0)
}

func TestNextTouchMigration(t *testing.T) {
	m := NewPhysMem(4, 1<<20)
	as := NewAddressSpace(m, NextTouch)
	as.Translate(0x1000, 0)
	as.MarkNextTouch(0x1000, PageBytes)
	pa := as.Translate(0x1004, 3)
	if m.Home(pa) != 3 {
		t.Fatalf("next-touch did not migrate: home %d", m.Home(pa))
	}
	if st := as.Stats(); st.Migrations != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Old frame must be reusable.
	if m.FramesInUse(0) != 0 {
		t.Fatal("old frame leaked")
	}
	// Further touches from other nodes no longer migrate.
	pa2 := as.Translate(0x1008, 1)
	if m.Home(pa2) != 3 {
		t.Fatal("page migrated twice without a new mark")
	}
}

func TestMarkNextTouchIgnoredUnderFirstTouch(t *testing.T) {
	m := NewPhysMem(2, 1<<20)
	as := NewAddressSpace(m, FirstTouch)
	as.Translate(0x1000, 0)
	as.MarkNextTouch(0x1000, PageBytes)
	pa := as.Translate(0x1004, 1)
	if m.Home(pa) != 0 {
		t.Fatal("first-touch policy migrated a page")
	}
}

func TestTranslatePreservesOffsets(t *testing.T) {
	m := NewPhysMem(2, 1<<20)
	as := NewAddressSpace(m, FirstTouch)
	f := func(off uint16) bool {
		va := VAddr(0x40000) + VAddr(off%PageBytes)
		pa := as.Translate(va, 1)
		return uint64(pa)%PageBytes == uint64(va)%PageBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if as.MappedPages() != 1 {
		t.Fatalf("MappedPages = %d", as.MappedPages())
	}
}

func TestPolicyString(t *testing.T) {
	if FirstTouch.String() != "first-touch" || NextTouch.String() != "next-touch" {
		t.Fatal("Policy.String wrong")
	}
}
