package workload

import (
	"testing"
	"testing/quick"

	"allarm/internal/mem"
	"allarm/internal/sim"
)

func testParams() Params {
	return Params{
		Name: "test", Threads: 4, AccessesPerThread: 2000,
		PrivateBytes: 64 << 10, PrivateFrac: 0.5,
		PrivateWriteFrac: 0.3, PrivateHot: 0.5, SeqRunFrac: 0.5,
		SharedBytes: 256 << 10, SharedWriteFrac: 0.3,
		GlobalBytes: 64 << 10, GlobalFrac: 0.2, GlobalHot: 0.8, GlobalHomeNodes: 2,
		Pattern: Stencil, Init: PartitionedInit, NeighborFrac: 0.2,
		Think: 2 * sim.Nanosecond,
	}
}

func TestStreamLengthAndBounds(t *testing.T) {
	w := MustSynthetic(testParams())
	s := w.Stream(1, 7)
	n := 0
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		n++
		switch {
		case a.VAddr >= PrivateBase(1) && a.VAddr < PrivateBase(2):
			// private arena ok
		case a.VAddr >= GlobalBase() && a.VAddr < GlobalBase()+mem.VAddr(w.p.GlobalBytes):
			// global arena ok
		case a.VAddr >= SharedBase() && a.VAddr < SharedBase()+mem.VAddr(w.p.SharedBytes):
			// shared arena ok
		default:
			t.Fatalf("access %#x outside any arena", uint64(a.VAddr))
		}
	}
	if n != 2000 {
		t.Fatalf("stream produced %d accesses", n)
	}
}

func TestStreamDeterminism(t *testing.T) {
	w := MustSynthetic(testParams())
	a, b := w.Stream(2, 42), w.Stream(2, 42)
	for i := 0; i < 2000; i++ {
		x, okx := a.Next()
		y, oky := b.Next()
		if okx != oky || x != y {
			t.Fatalf("streams diverge at %d: %+v vs %+v", i, x, y)
		}
	}
}

func TestStreamsDifferAcrossThreadsAndSeeds(t *testing.T) {
	w := MustSynthetic(testParams())
	same := 0
	a, b := w.Stream(0, 1), w.Stream(1, 1)
	for i := 0; i < 100; i++ {
		x, _ := a.Next()
		y, _ := b.Next()
		if x.VAddr == y.VAddr {
			same++
		}
	}
	if same > 50 {
		t.Fatalf("threads replay the same addresses (%d/100)", same)
	}
}

func TestForEachPagePlacement(t *testing.T) {
	p := testParams()
	w := MustSynthetic(p)
	privPages, globalPages, sharedPages := 0, 0, 0
	w.ForEachPage(func(page mem.VAddr, thread int) {
		if thread < 0 || thread >= p.Threads {
			t.Fatalf("page %#x assigned to thread %d", uint64(page), thread)
		}
		switch {
		case page >= SharedBase():
			sharedPages++
		case page >= GlobalBase():
			globalPages++
			// Global homes concentrate on the first k threads.
			if thread >= p.GlobalHomeNodes {
				t.Fatalf("global page homed at thread %d, want < %d", thread, p.GlobalHomeNodes)
			}
		default:
			privPages++
			want := int((page - privateBase) / privateStride)
			if thread != want {
				t.Fatalf("private page %#x at thread %d, want %d", uint64(page), thread, want)
			}
		}
	})
	if privPages != 4*64<<10/mem.PageBytes {
		t.Fatalf("private pages %d", privPages)
	}
	if globalPages != 64<<10/mem.PageBytes {
		t.Fatalf("global pages %d", globalPages)
	}
	if sharedPages != 256<<10/mem.PageBytes {
		t.Fatalf("shared pages %d", sharedPages)
	}
}

func TestOwnerInitPlacesAtThreadZero(t *testing.T) {
	p := testParams()
	p.Init = OwnerInit
	w := MustSynthetic(p)
	w.ForEachPage(func(page mem.VAddr, thread int) {
		if page >= SharedBase() && thread != 0 {
			t.Fatalf("owner-init shared page at thread %d", thread)
		}
	})
}

func TestWarmupCoversRegions(t *testing.T) {
	w := MustSynthetic(testParams())
	s := w.WarmupStream(0, 1)
	priv, global, shared := false, false, false
	for {
		a, ok := s.Next()
		if !ok {
			break
		}
		switch {
		case a.VAddr >= SharedBase():
			shared = true
		case a.VAddr >= GlobalBase():
			global = true
		default:
			priv = true
		}
		if a.Think != 0 {
			t.Fatal("warmup access has think time")
		}
	}
	if !priv || !global || !shared {
		t.Fatalf("warmup coverage: priv=%v global=%v shared=%v", priv, global, shared)
	}
}

func TestAllPresetsValid(t *testing.T) {
	for _, name := range BenchmarkNames {
		w, err := Benchmark(name, 16, 1000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		// Streams must be drainable and in-bounds.
		s := w.Stream(3, 5)
		for i := 0; i < 1000; i++ {
			if _, ok := s.Next(); !ok {
				t.Fatalf("%s: stream ended early at %d", name, i)
			}
		}
		if _, ok := s.Next(); ok {
			t.Fatalf("%s: stream overran its budget", name)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Benchmark("nope", 16, 100); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestValidationRejectsBadParams(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.Name = "" },
		func(p *Params) { p.Threads = 0 },
		func(p *Params) { p.AccessesPerThread = 0 },
		func(p *Params) { p.PrivateFrac = 1.5 },
		func(p *Params) { p.SharedWriteFrac = -0.1 },
		func(p *Params) { p.SharedBytes = 100 }, // not page-aligned
		func(p *Params) { p.GlobalFrac = 0.8 },  // 0.8+0.5 > 1
		func(p *Params) { p.GlobalBytes = 0; p.GlobalFrac = 0.1 },
		func(p *Params) { p.Threads = 21 },
	}
	for i, mutate := range bad {
		p := testParams()
		mutate(&p)
		if _, err := NewSynthetic(p); err == nil {
			t.Fatalf("case %d: invalid params accepted", i)
		}
	}
}

func TestAccessesAreWordAligned(t *testing.T) {
	for _, name := range BenchmarkNames {
		w := MustBenchmark(name, 16, 500)
		s := w.Stream(0, 9)
		for {
			a, ok := s.Next()
			if !ok {
				break
			}
			if uint64(a.VAddr)%wordBytes != 0 {
				t.Fatalf("%s: unaligned access %#x", name, uint64(a.VAddr))
			}
		}
	}
}

func TestPatternStrings(t *testing.T) {
	for p, want := range map[SharePattern]string{
		Uniform: "uniform", HotOwner: "hot-owner", Stencil: "stencil",
		Pipeline: "pipeline", Migratory: "migratory",
	} {
		if p.String() != want {
			t.Fatalf("pattern %d = %q", p, p.String())
		}
	}
}

func TestStreamBoundsProperty(t *testing.T) {
	w := MustSynthetic(testParams())
	f := func(seed uint64, thread uint8) bool {
		th := int(thread) % 4
		s := w.Stream(th, seed)
		for i := 0; i < 200; i++ {
			a, ok := s.Next()
			if !ok {
				return false
			}
			in := (a.VAddr >= PrivateBase(th) && a.VAddr < PrivateBase(th)+mem.VAddr(64<<10)) ||
				(a.VAddr >= GlobalBase() && a.VAddr < GlobalBase()+mem.VAddr(64<<10)) ||
				(a.VAddr >= SharedBase() && a.VAddr < SharedBase()+mem.VAddr(256<<10))
			if !in {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
