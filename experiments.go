package allarm

import (
	"fmt"
	"io"
	"sort"

	"allarm/internal/energy"
	"allarm/internal/stats"
)

// Experiment identifiers accepted by RunExperiment (one per table/figure
// of the paper).
var ExperimentIDs = []string{
	"table1",
	"fig2",
	"fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g", "fig3h",
	"fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f",
	"area",
}

// PairResults is the per-benchmark baseline/ALLARM pair of a sweep.
type PairResults struct {
	Benchmark string
	Base, Opt *Result
}

// RunAllPairs runs every benchmark under both policies at the given
// configuration.
func RunAllPairs(cfg Config) ([]PairResults, error) {
	var out []PairResults
	for _, b := range Benchmarks() {
		base, opt, err := RunPair(cfg, b)
		if err != nil {
			return nil, err
		}
		out = append(out, PairResults{Benchmark: b, Base: base, Opt: opt})
	}
	return out, nil
}

// RunExperiment regenerates one of the paper's tables or figures at the
// given configuration, writing the series the paper plots to w.
// Unknown ids return an error listing the valid ones.
func RunExperiment(w io.Writer, cfg Config, id string) error {
	switch id {
	case "table1":
		return expTable1(w, cfg)
	case "fig2":
		return expFig2(w, cfg)
	case "fig3a", "fig3b", "fig3c", "fig3d", "fig3e", "fig3f", "fig3g":
		return expFig3(w, cfg, id)
	case "fig3h":
		return expFig3h(w, cfg)
	case "fig4a", "fig4b", "fig4c", "fig4d", "fig4e", "fig4f":
		return expFig4(w, cfg, id)
	case "area":
		return expArea(w)
	default:
		ids := make([]string, len(ExperimentIDs))
		copy(ids, ExperimentIDs)
		sort.Strings(ids)
		return fmt.Errorf("allarm: unknown experiment %q (have %v)", id, ids)
	}
}

// expTable1 prints the simulated-system parameters (Table I), both the
// paper's values (DefaultConfig) and the harness scale actually used.
func expTable1(w io.Writer, cfg Config) error {
	t := stats.NewTable("Parameter", "Table I", "This run")
	d := DefaultConfig()
	row := func(name, paper, run string) { t.AddRow(name, paper, run) }
	row("Cores", fmt.Sprint(d.Nodes), fmt.Sprint(cfg.Nodes))
	row("Block size", "64 bytes", "64 bytes")
	row("L1 DCache", fmt.Sprintf("%dkB %d-way", d.L1Bytes>>10, d.L1Ways), fmt.Sprintf("%dkB %d-way", cfg.L1Bytes>>10, cfg.L1Ways))
	row("L2 Cache", fmt.Sprintf("%dkB %d-way (exclusive)", d.L2Bytes>>10, d.L2Ways), fmt.Sprintf("%dkB %d-way (exclusive)", cfg.L2Bytes>>10, cfg.L2Ways))
	row("Directory coverage", fmt.Sprintf("%dkB cached data", d.PFBytes>>10), fmt.Sprintf("%dkB cached data", cfg.PFBytes>>10))
	row("Cache/dir latency", fmt.Sprintf("%gns/%gns", d.CacheNs, d.DirNs), fmt.Sprintf("%gns/%gns", cfg.CacheNs, cfg.DirNs))
	row("Memory", fmt.Sprintf("%d x %dMB, %gns", d.Nodes, d.MemMiBPerNode, d.DRAMNs), fmt.Sprintf("%d x %dMB, %gns", cfg.Nodes, cfg.MemMiBPerNode, cfg.DRAMNs))
	row("Topology", fmt.Sprintf("%dx%d mesh", d.MeshW, d.MeshH), fmt.Sprintf("%dx%d mesh", cfg.MeshW, cfg.MeshH))
	row("Flit size", fmt.Sprintf("%d bytes", d.FlitBytes), fmt.Sprintf("%d bytes", cfg.FlitBytes))
	row("Control/Data msg", fmt.Sprintf("%d/%d bytes", d.CtrlMsgBytes, d.DataMsgBytes), fmt.Sprintf("%d/%d bytes", cfg.CtrlMsgBytes, cfg.DataMsgBytes))
	row("Link BW/latency", fmt.Sprintf("%g GB/s, %gns", d.LinkBytesPerNs, d.LinkNs), fmt.Sprintf("%g GB/s, %gns", cfg.LinkBytesPerNs, cfg.LinkNs))
	_, err := fmt.Fprint(w, t.String())
	return err
}

// expFig2 prints the local/remote directory-request split per benchmark.
func expFig2(w io.Writer, cfg Config) error {
	t := stats.NewTable("Benchmark", "Local", "Remote")
	for _, b := range Benchmarks() {
		cfg.Policy = Baseline
		res, err := Run(cfg, b)
		if err != nil {
			return err
		}
		lf := res.LocalFraction()
		t.AddRow(b, fmt.Sprintf("%.3f", lf), fmt.Sprintf("%.3f", 1-lf))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// expFig3 prints one of the Figure 3 per-benchmark bar charts.
func expFig3(w io.Writer, cfg Config, id string) error {
	pairs, err := RunAllPairs(cfg)
	if err != nil {
		return err
	}
	switch id {
	case "fig3a", "fig3b", "fig3c", "fig3e":
		name := map[string]string{
			"fig3a": "Speedup", "fig3b": "Norm. PF evictions",
			"fig3c": "Norm. NoC traffic", "fig3e": "Norm. L2 misses",
		}[id]
		t := stats.NewTable("Benchmark", name)
		var vals []float64
		for _, p := range pairs {
			c := Compare(p.Base, p.Opt)
			v := map[string]float64{
				"fig3a": c.Speedup, "fig3b": c.EvictionRatio,
				"fig3c": c.TrafficRatio, "fig3e": c.L2MissRatio,
			}[id]
			// A benchmark whose ALLARM run has zero evictions plots as 0.
			vals = append(vals, v)
			t.AddRow(p.Benchmark, fmt.Sprintf("%.3f", v))
		}
		t.AddRow("geomean", fmt.Sprintf("%.3f", geomeanNonZero(vals)))
		_, err := fmt.Fprint(w, t.String())
		return err
	case "fig3d":
		t := stats.NewTable("Benchmark", "Msgs/eviction (base)", "Msgs/eviction (allarm)")
		for _, p := range pairs {
			t.AddRow(p.Benchmark,
				fmt.Sprintf("%.1f", p.Base.MessagesPerEviction()),
				fmt.Sprintf("%.1f", p.Opt.MessagesPerEviction()))
		}
		_, err := fmt.Fprint(w, t.String())
		return err
	case "fig3f":
		t := stats.NewTable("Benchmark", "NoC energy", "PF energy")
		var noc, pf []float64
		for _, p := range pairs {
			c := Compare(p.Base, p.Opt)
			noc = append(noc, c.NoCEnergyRatio)
			pf = append(pf, c.PFEnergyRatio)
			t.AddRow(p.Benchmark, fmt.Sprintf("%.3f", c.NoCEnergyRatio), fmt.Sprintf("%.3f", c.PFEnergyRatio))
		}
		t.AddRow("geomean", fmt.Sprintf("%.3f", stats.Geomean(noc)), fmt.Sprintf("%.3f", stats.Geomean(pf)))
		_, err := fmt.Fprint(w, t.String())
		return err
	case "fig3g":
		t := stats.NewTable("Benchmark", "Fraction snoop off critical path")
		var vals []float64
		for _, p := range pairs {
			f := p.Opt.SnoopHiddenFraction()
			vals = append(vals, f)
			t.AddRow(p.Benchmark, fmt.Sprintf("%.3f", f))
		}
		t.AddRow("mean", fmt.Sprintf("%.3f", stats.Mean(vals)))
		_, err := fmt.Fprint(w, t.String())
		return err
	}
	return fmt.Errorf("allarm: bad fig3 id %q", id)
}

// geomeanNonZero takes the geometric mean of the positive entries
// (benchmarks where ALLARM eliminates evictions entirely plot as zero and
// cannot enter a geomean, as in the paper's figures).
func geomeanNonZero(xs []float64) float64 {
	var pos []float64
	for _, x := range xs {
		if x > 0 {
			pos = append(pos, x)
		}
	}
	return stats.Geomean(pos)
}

// fig3hSizes are the probe-filter coverages of Figure 3h, expressed as
// fractions of the configured size (the paper: 512/256/128 kB).
var fig3hSizes = []int{1, 2, 4}

// expFig3h prints speedup (vs the full-size baseline) per benchmark for
// shrinking probe filters under ALLARM.
func expFig3h(w io.Writer, cfg Config) error {
	header := []string{"Benchmark"}
	for _, div := range fig3hSizes {
		header = append(header, fmt.Sprintf("%dkB", cfg.PFBytes>>10/div))
	}
	t := stats.NewTable(header...)
	for _, b := range Benchmarks() {
		c := cfg
		c.Policy = Baseline
		ref, err := Run(c, b)
		if err != nil {
			return err
		}
		row := []string{b}
		for _, div := range fig3hSizes {
			c := cfg
			c.Policy = ALLARM
			c.PFBytes = cfg.PFBytes / div
			res, err := Run(c, b)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%.3f", ref.RuntimeNs/res.RuntimeNs))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// fig4Divisors shrink the probe filter for the multi-process experiment
// (the paper: 512, 256, 128, 64, 32 kB).
var fig4Divisors = []int{1, 2, 4, 8, 16}

// expFig4 prints one multi-process panel: speedup / normalised evictions
// / normalised traffic versus probe-filter size, for the baseline
// (fig4a-c) or ALLARM (fig4d-f), normalised to the full-size baseline.
func expFig4(w io.Writer, cfg Config, id string) error {
	policy := Baseline
	if id == "fig4d" || id == "fig4e" || id == "fig4f" {
		policy = ALLARM
	}
	metric := map[string]string{
		"fig4a": "speedup", "fig4b": "evictions", "fig4c": "traffic",
		"fig4d": "speedup", "fig4e": "evictions", "fig4f": "traffic",
	}[id]

	header := []string{"Benchmark"}
	for _, div := range fig4Divisors {
		header = append(header, fmt.Sprintf("%dkB", cfg.PFBytes>>10/div))
	}
	t := stats.NewTable(header...)
	mp := DefaultMultiProcess()
	for _, b := range MultiProcessBenchmarks() {
		// Reference: full-size probe filter, baseline policy.
		c := cfg
		c.Policy = Baseline
		ref, err := RunMultiProcess(c, mp, b)
		if err != nil {
			return err
		}
		row := []string{b}
		for _, div := range fig4Divisors {
			c := cfg
			c.Policy = policy
			c.PFBytes = cfg.PFBytes / div
			res, err := RunMultiProcess(c, mp, b)
			if err != nil {
				return err
			}
			var v float64
			switch metric {
			case "speedup":
				v = ref.RuntimeNs / res.RuntimeNs
			case "evictions":
				v = stats.SafeDiv(float64(res.PFEvictions), float64(ref.PFEvictions), 0)
			case "traffic":
				v = stats.SafeDiv(float64(res.NoCBytes), float64(ref.NoCBytes), 0)
			}
			row = append(row, fmt.Sprintf("%.3f", v))
		}
		t.AddRow(row...)
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}

// expArea prints the probe-filter area table (§III-B), paper versus the
// calibrated power-law model.
func expArea(w io.Writer) error {
	t := stats.NewTable("PF Configuration", "Paper (mm2)", "Model (mm2)")
	for _, kb := range []int{512, 256, 128, 64, 32} {
		bytes := kb << 10
		t.AddRow(fmt.Sprintf("%dkB", kb),
			fmt.Sprintf("%.2f", energy.PaperPFAreaMM2(bytes)),
			fmt.Sprintf("%.2f", energy.PFAreaMM2(bytes)))
	}
	_, err := fmt.Fprint(w, t.String())
	return err
}
