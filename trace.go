package allarm

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"allarm/internal/mem"
	"allarm/internal/trace"
	"allarm/internal/workload"
)

// CaptureTrace writes a complete replayable trace of wl to w: its page
// placements, its warmup pass and its measured access streams, captured
// at the given seed. A workload loaded back with ReadTrace and run under
// the same Config (and any policy) produces results bit-identical to
// running wl directly — placement, warmup, access order and
// picosecond-exact think times all survive the round trip.
func CaptureTrace(w io.Writer, wl Workload, seed uint64) error {
	if wl == nil {
		return fmt.Errorf("allarm: CaptureTrace needs a workload")
	}
	_, err := trace.Capture(w, captureAdapter{wl: wl, seed: seed}, seed)
	return err
}

// captureAdapter presents a public Workload to the internal trace
// capturer (which consumes the internal workload interfaces).
type captureAdapter struct {
	wl   Workload
	seed uint64
}

func (a captureAdapter) Name() string { return a.wl.Name() }
func (a captureAdapter) Threads() int { return a.wl.Threads() }

func (a captureAdapter) Stream(t int, seed uint64) workload.Stream {
	return intStream{s: a.wl.Stream(t, seed)}
}

// WarmupStream implements workload.WarmupStreamer.
func (a captureAdapter) WarmupStream(t int, seed uint64) workload.Stream {
	ws := a.wl.WarmupStream(t, seed)
	if ws == nil {
		return nil
	}
	return intStream{s: ws}
}

// ForEachPage implements workload.Preplacer.
func (a captureAdapter) ForEachPage(fn func(page mem.VAddr, thread int)) {
	a.wl.ForEachPage(func(page uint64, thread int) { fn(mem.VAddr(page), thread) })
}

// LoadTrace reads a trace file captured with CaptureTrace (or the
// allarm-trace tool) into a replayable Workload named after the file.
// Replays ignore the run seed: the captured streams are exact.
func LoadTrace(path string) (Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("allarm: %w", err)
	}
	defer f.Close()
	wl, err := ReadTrace(f)
	if err != nil {
		return nil, fmt.Errorf("allarm: trace %s: %w", path, err)
	}
	name := filepath.Base(path)
	wl.(*traceWorkload).name = name
	return wl, nil
}

// ReadTrace reads a trace stream into a replayable Workload (named
// "trace"; LoadTrace names it after its file).
func ReadTrace(r io.Reader) (Workload, error) {
	return ReadTraceNamed(r, "trace")
}

// ReadTraceNamed reads a trace stream into a replayable Workload with
// the given name. The name identifies the workload in results and — via
// Job.Key — in sweep deduplication and allarm-serve's result cache, so
// distinct trace contents sharing one deduplicated sweep (or one cache)
// need distinct names; allarm-serve names uploads by content hash for
// exactly this reason.
func ReadTraceNamed(r io.Reader, name string) (Workload, error) {
	tr, err := trace.NewReader(r)
	if err != nil {
		return nil, err
	}
	rp, err := trace.LoadReplay(tr)
	if err != nil {
		return nil, err
	}
	return &traceWorkload{name: name, rp: rp}, nil
}

// traceWorkload adapts an internal trace replay to the public Workload
// interface.
type traceWorkload struct {
	name string
	rp   *trace.Replay
}

// Name implements Workload.
func (t *traceWorkload) Name() string { return t.name }

// Threads implements Workload.
func (t *traceWorkload) Threads() int { return t.rp.Threads() }

// Stream implements Workload; the seed is ignored (replays are exact).
func (t *traceWorkload) Stream(thread int, seed uint64) Stream {
	return pubStream{s: t.rp.Stream(thread, seed)}
}

// WarmupStream implements Workload.
func (t *traceWorkload) WarmupStream(thread int, seed uint64) Stream {
	ws := t.rp.WarmupStream(thread, seed)
	if ws == nil {
		return nil
	}
	return pubStream{s: ws}
}

// ForEachPage implements Workload from the trace's placement section.
func (t *traceWorkload) ForEachPage(fn func(page uint64, thread int)) {
	t.rp.ForEachPage(func(page mem.VAddr, thread int) { fn(uint64(page), thread) })
}

// Key implements Keyer: a trace is fingerprinted by name, thread count
// and record counts. Rename distinct traces (or load them from distinct
// paths) before mixing them in one deduplicated sweep.
func (t *traceWorkload) Key() string {
	return fmt.Sprintf("trace:%s#%d/%d+%d", t.name, t.rp.Threads(), t.rp.Records(), t.rp.WarmupRecords())
}
