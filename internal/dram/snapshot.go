package dram

import (
	"allarm/internal/checkpoint"
	"allarm/internal/sim"
)

// EncodeState writes the controller's mutable state: the service queue's
// next-free time and the operation counters. Timing parameters come from
// construction.
func (c *Controller) EncodeState(e *checkpoint.Encoder) {
	e.Section("dram")
	e.I64(int64(c.nextFree))
	checkpoint.EncodeStruct(e, &c.stats)
}

// DecodeState overwrites the controller's mutable state.
func (c *Controller) DecodeState(d *checkpoint.Decoder) error {
	d.Expect("dram")
	c.nextFree = sim.Time(d.I64())
	checkpoint.DecodeStruct(d, &c.stats)
	return d.Err()
}
