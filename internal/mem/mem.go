// Package mem models the memory-system substrate ALLARM depends on:
// physical/virtual addresses, cache-line and page arithmetic, the NUMA
// physical memory map (one DRAM block per node), and the operating-system
// page allocation policies (first-touch and next-touch) whose behaviour
// ALLARM exploits.
//
// ALLARM's private-data detection is stateless: it assumes first-touch
// allocation homes thread-local pages at the toucher's node. This package
// is therefore part of the paper's trusted computing base and is modelled
// faithfully, including the best-effort fallback to remote nodes when a
// domain's memory is exhausted (§II-A of the paper).
package mem

import "fmt"

// VAddr is a virtual address within one process's address space.
type VAddr uint64

// PAddr is a physical address in the machine-wide NUMA memory map.
type PAddr uint64

// NodeID identifies a node (core + directory + memory controller); each
// node is one affinity domain, matching the paper's evaluated system.
type NodeID int32

// Geometry constants for the simulated machine (Table I of the paper).
const (
	// LineBytes is the coherence granule (cache block size).
	LineBytes = 64
	// PageBytes is the OS page size used for NUMA placement decisions.
	PageBytes = 4096
	// LinesPerPage is the number of coherence granules per page.
	LinesPerPage = PageBytes / LineBytes
)

// LineOf returns the line-aligned base of a physical address.
func LineOf(a PAddr) PAddr { return a &^ (LineBytes - 1) }

// PageOf returns the page-aligned base of a physical address.
func PageOf(a PAddr) PAddr { return a &^ (PageBytes - 1) }

// VPageOf returns the page-aligned base of a virtual address.
func VPageOf(a VAddr) VAddr { return a &^ (PageBytes - 1) }

// VLineOf returns the line-aligned base of a virtual address.
func VLineOf(a VAddr) VAddr { return a &^ (LineBytes - 1) }

// PageOffset returns the offset of a virtual address within its page.
func PageOffset(a VAddr) uint64 { return uint64(a) & (PageBytes - 1) }

// PhysMem is the machine's NUMA physical memory: nodes × bytesPerNode,
// laid out contiguously so that Home is a pure function of the address
// (node i owns [i*bytesPerNode, (i+1)*bytesPerNode)).
type PhysMem struct {
	nodes        int
	bytesPerNode uint64
	framesPer    uint64
	next         []uint64 // per-node bump pointer, in frames
	free         [][]PAddr
	allocated    []uint64 // per-node live frame count
}

// NewPhysMem builds a physical memory map with the given number of nodes,
// each owning bytesPerNode bytes of DRAM. bytesPerNode must be a positive
// multiple of the page size.
func NewPhysMem(nodes int, bytesPerNode uint64) *PhysMem {
	if nodes <= 0 {
		panic("mem: NewPhysMem needs at least one node")
	}
	if bytesPerNode == 0 || bytesPerNode%PageBytes != 0 {
		panic("mem: bytesPerNode must be a positive multiple of the page size")
	}
	return &PhysMem{
		nodes:        nodes,
		bytesPerNode: bytesPerNode,
		framesPer:    bytesPerNode / PageBytes,
		next:         make([]uint64, nodes),
		free:         make([][]PAddr, nodes),
		allocated:    make([]uint64, nodes),
	}
}

// Nodes returns the number of NUMA nodes.
func (m *PhysMem) Nodes() int { return m.nodes }

// BytesPerNode returns the DRAM capacity of each node.
func (m *PhysMem) BytesPerNode() uint64 { return m.bytesPerNode }

// TotalBytes returns the machine-wide DRAM capacity.
func (m *PhysMem) TotalBytes() uint64 { return uint64(m.nodes) * m.bytesPerNode }

// Home returns the node that owns (is the coherence home of) pa.
// Addresses beyond the end of memory panic: they indicate a model bug.
func (m *PhysMem) Home(pa PAddr) NodeID {
	n := uint64(pa) / m.bytesPerNode
	if n >= uint64(m.nodes) {
		panic(fmt.Sprintf("mem: physical address %#x beyond end of memory", uint64(pa)))
	}
	return NodeID(n)
}

// AllocFrame allocates one physical page frame from node n's DRAM.
// It returns ok == false when the node is out of memory.
func (m *PhysMem) AllocFrame(n NodeID) (PAddr, bool) {
	if int(n) < 0 || int(n) >= m.nodes {
		panic(fmt.Sprintf("mem: AllocFrame on invalid node %d", n))
	}
	if fl := m.free[n]; len(fl) > 0 {
		pa := fl[len(fl)-1]
		m.free[n] = fl[:len(fl)-1]
		m.allocated[n]++
		return pa, true
	}
	if m.next[n] >= m.framesPer {
		return 0, false
	}
	frame := m.next[n]
	m.next[n]++
	m.allocated[n]++
	base := uint64(n)*m.bytesPerNode + frame*PageBytes
	return PAddr(base), true
}

// FreeFrame returns a previously allocated frame to its home node's pool.
func (m *PhysMem) FreeFrame(pa PAddr) {
	n := m.Home(pa)
	if m.allocated[n] == 0 {
		panic("mem: FreeFrame with no outstanding allocations on node")
	}
	m.allocated[n]--
	m.free[n] = append(m.free[n], PageOf(pa))
}

// FramesInUse returns the number of live frames on node n.
func (m *PhysMem) FramesInUse(n NodeID) uint64 { return m.allocated[n] }

// Policy selects the OS NUMA page-placement policy for an address space.
type Policy int

const (
	// FirstTouch allocates a page at the node of the first access — the
	// default policy of mainstream operating systems and the one ALLARM's
	// private-data assumption is built on.
	FirstTouch Policy = iota
	// NextTouch behaves as FirstTouch, but pages marked with MarkNextTouch
	// are migrated to the node of the next access, fixing init-by-one-
	// thread/use-by-another patterns (§II of the paper).
	NextTouch
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case FirstTouch:
		return "first-touch"
	case NextTouch:
		return "next-touch"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

type pte struct {
	frame     PAddr
	home      NodeID
	nextTouch bool // migrate on next access
}

// ASStats counts address-space events of interest to the evaluation.
type ASStats struct {
	// PagesAllocated is the number of page frames ever allocated.
	PagesAllocated uint64
	// LocalAllocations counts pages placed at the requesting node.
	LocalAllocations uint64
	// RemoteFallbacks counts pages placed remotely because the requested
	// node was out of memory (first-touch is best-effort).
	RemoteFallbacks uint64
	// Migrations counts next-touch page migrations.
	Migrations uint64
}

// AddressSpace is one process's virtual address space, translating virtual
// pages to physical frames with a NUMA placement policy.
//
// AddressSpace is not safe for concurrent use; the simulator is single-
// threaded by design.
type AddressSpace struct {
	phys   *PhysMem
	policy Policy
	pages  map[VAddr]*pte
	stats  ASStats
	sealed bool
}

// NewAddressSpace creates an empty address space over phys with the given
// placement policy.
func NewAddressSpace(phys *PhysMem, policy Policy) *AddressSpace {
	return &AddressSpace{
		phys:   phys,
		policy: policy,
		pages:  make(map[VAddr]*pte),
	}
}

// Policy returns the address space's placement policy.
func (as *AddressSpace) Policy() Policy { return as.policy }

// Seal freezes the page table: any later first touch panics instead of
// allocating. Parallel (sharded) machines seal every space after page
// pre-placement — translation then only reads the map, which several
// shard goroutines may do concurrently, and a workload that touches an
// undeclared page fails loudly instead of racing on placement.
func (as *AddressSpace) Seal() { as.sealed = true }

// Stats returns a copy of the accumulated allocation statistics.
func (as *AddressSpace) Stats() ASStats { return as.stats }

// Translate maps va to a physical address, allocating the page at
// requester's node on first touch (falling back to the nearest node with
// free memory, in ascending hop order, when the local node is full).
//
// With the NextTouch policy, pages previously marked by MarkNextTouch are
// migrated to requester's node on their next access.
func (as *AddressSpace) Translate(va VAddr, requester NodeID) PAddr {
	vp := VPageOf(va)
	e, ok := as.pages[vp]
	if !ok {
		if as.sealed {
			panic(fmt.Sprintf("mem: first touch of page %#x in a sealed address space (parallel runs need every page declared via ForEachPage; use SimThreads=1)", uint64(vp)))
		}
		frame, home := as.allocate(requester)
		e = &pte{frame: frame, home: home}
		as.pages[vp] = e
	} else if e.nextTouch && as.policy == NextTouch && e.home != requester {
		// Migrate: allocate at the new node, free the old frame.
		frame, home := as.allocate(requester)
		as.phys.FreeFrame(e.frame)
		e.frame = frame
		e.home = home
		e.nextTouch = false
		as.stats.Migrations++
	} else if e.nextTouch {
		e.nextTouch = false
	}
	return e.frame + PAddr(PageOffset(va))
}

// allocate places a frame at want, or at the next node (mod N) with free
// memory. Total memory exhaustion panics — workloads are sized to fit.
func (as *AddressSpace) allocate(want NodeID) (PAddr, NodeID) {
	n := as.phys.Nodes()
	for i := 0; i < n; i++ {
		node := NodeID((int(want) + i) % n)
		if frame, ok := as.phys.AllocFrame(node); ok {
			as.stats.PagesAllocated++
			if node == want {
				as.stats.LocalAllocations++
			} else {
				as.stats.RemoteFallbacks++
			}
			return frame, node
		}
	}
	panic("mem: physical memory exhausted")
}

// MarkNextTouch marks every page overlapping [va, va+length) for next-
// touch migration. It has no effect on pages never touched (they will be
// first-touch allocated anyway) and is a no-op under the FirstTouch policy.
func (as *AddressSpace) MarkNextTouch(va VAddr, length uint64) {
	if as.policy != NextTouch {
		return
	}
	for vp := VPageOf(va); vp < va+VAddr(length); vp += PageBytes {
		if e, ok := as.pages[vp]; ok {
			e.nextTouch = true
		}
	}
}

// HomeOf reports the NUMA home node of va's page and whether the page has
// been allocated yet.
func (as *AddressSpace) HomeOf(va VAddr) (NodeID, bool) {
	e, ok := as.pages[VPageOf(va)]
	if !ok {
		return 0, false
	}
	return e.home, true
}

// MappedPages returns the number of pages currently mapped.
func (as *AddressSpace) MappedPages() int { return len(as.pages) }
