package fleet

import (
	"net/http"
	"time"

	"allarm/internal/obs"
)

// routerMetrics are the router's internal counters and latency
// histograms, registered in an obs.Registry so GET /metrics serves the
// unchanged JSON object and Prometheus text exposition from one
// source.
type routerMetrics struct {
	reg               *obs.Registry
	sweepsSubmitted   *obs.Counter
	sweepsCompleted   *obs.Counter
	sweepsDegraded    *obs.Counter
	sweepsRecovered   *obs.Counter
	jobsScattered     *obs.Counter
	jobsRequeued      *obs.Counter
	jobsMigrated      *obs.Counter
	shardFailures     *obs.Counter
	membershipChanges *obs.Counter
	tracesUploaded    *obs.Counter
	gathers           *obs.Counter
	gatherNs          *obs.Counter

	// gatherLatency is the distribution of dispatch-wave wall times
	// (scatter → every shard gathered), Prometheus-only.
	gatherLatency *obs.Histogram
}

// newRouterMetrics registers the router's metric families under the
// allarm_router_ prefix.
func newRouterMetrics() *routerMetrics {
	reg := obs.NewRegistry()
	return &routerMetrics{
		reg:               reg,
		sweepsSubmitted:   reg.Counter("allarm_router_sweeps_submitted_total", "Sweeps accepted by the router."),
		sweepsCompleted:   reg.Counter("allarm_router_sweeps_completed_total", "Sweeps fully gathered."),
		sweepsDegraded:    reg.Counter("allarm_router_sweeps_degraded_total", "Sweeps finished with at least one shard's jobs skipped."),
		sweepsRecovered:   reg.Counter("allarm_router_sweeps_recovered_total", "Sweeps restored from the journal at boot."),
		jobsScattered:     reg.Counter("allarm_router_jobs_scattered_total", "Jobs dispatched to shards."),
		jobsRequeued:      reg.Counter("allarm_router_jobs_requeued_total", "Skipped jobs re-dispatched onto a new ring owner."),
		jobsMigrated:      reg.Counter("allarm_router_jobs_migrated_total", "In-flight jobs whose checkpoint moved to a new owner."),
		shardFailures:     reg.Counter("allarm_router_shard_failures_total", "Shard sub-sweeps lost past the retry budget."),
		membershipChanges: reg.Counter("allarm_router_membership_changes_total", "Runtime shard-set mutations."),
		tracesUploaded:    reg.Counter("allarm_router_traces_uploaded_total", "Traces accepted and broadcast to shards."),
		gathers:           reg.Counter("allarm_router_gathers_total", "Completed dispatch waves."),
		gatherNs:          reg.Counter("allarm_router_gather_nanoseconds_total", "Wall nanoseconds summed over dispatch waves."),
		gatherLatency: reg.Histogram("allarm_router_gather_duration_seconds",
			"Wall time of one dispatch wave (scatter to fully gathered).",
			1e-9, obs.ExpBuckets(1_000_000, 4_000_000_000_000)), // 1ms .. ~67min
	}
}

// ShardMetrics is one shard's row in the router's GET /metrics answer.
type ShardMetrics struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// Requests counts every HTTP call the router made to this shard
	// (submits, polls, streams, probes, uploads).
	Requests uint64 `json:"requests"`
	// Retries counts backoff re-attempts against this shard.
	Retries uint64 `json:"retries"`
	// JobsAssigned counts jobs placement hashed onto this shard.
	JobsAssigned uint64 `json:"jobs_assigned"`
	// UnhealthyIntervals counts completed excluded periods;
	// UnhealthySeconds totals them, including an ongoing one.
	UnhealthyIntervals uint64  `json:"unhealthy_intervals"`
	UnhealthySeconds   float64 `json:"unhealthy_seconds"`
	// Version is the shard's reported build ("" until first probed).
	Version string `json:"version,omitempty"`
}

// Metrics is the router's GET /metrics answer. Existing field names
// are a compatibility contract (new fields may be appended); use
// ?format=prometheus for histograms and labelled series.
type Metrics struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	ShardsHealthy   int     `json:"shards_healthy"`
	ShardsTotal     int     `json:"shards_total"`
	SweepsSubmitted uint64  `json:"sweeps_submitted"`
	SweepsCompleted uint64  `json:"sweeps_completed"`
	// SweepsDegraded finished with at least one shard's jobs skipped.
	SweepsDegraded uint64 `json:"sweeps_degraded"`
	// SweepsRecovered were restored from the journal at boot.
	SweepsRecovered uint64 `json:"sweeps_recovered"`
	JobsScattered   uint64 `json:"jobs_scattered"`
	// JobsRequeued counts skipped jobs re-dispatched onto a new ring
	// owner after a membership change or health transition.
	JobsRequeued uint64 `json:"jobs_requeued"`
	// JobsMigrated counts in-flight jobs whose machine-state checkpoint
	// was moved to a new owner on a membership change — the new shard
	// resumed them instead of re-simulating from event zero.
	JobsMigrated uint64 `json:"jobs_migrated"`
	// ShardFailures counts shard sub-sweeps lost past the retry budget.
	ShardFailures uint64 `json:"shard_failures"`
	// MembershipChanges counts runtime shard-set mutations.
	MembershipChanges uint64 `json:"membership_changes"`
	TracesUploaded    uint64 `json:"traces_uploaded"`
	// Gathers counts completed dispatch waves (initial scatters, recovery
	// resumes and requeues); GatherSecondsTotal sums their wall time.
	Gathers            uint64         `json:"gathers"`
	GatherSecondsTotal float64        `json:"gather_seconds_total"`
	Shards             []ShardMetrics `json:"shards"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	// ?format=prometheus (or a text/plain Accept) selects exposition
	// text; the default stays the JSON object, field names unchanged.
	if obs.WantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		rt.met.reg.WritePrometheus(w)
		return
	}
	now := time.Now()
	mem := rt.mem.Load()
	m := Metrics{
		UptimeSeconds:      time.Since(rt.start).Seconds(),
		ShardsTotal:        len(mem.shards),
		SweepsSubmitted:    rt.met.sweepsSubmitted.Load(),
		SweepsCompleted:    rt.met.sweepsCompleted.Load(),
		SweepsDegraded:     rt.met.sweepsDegraded.Load(),
		SweepsRecovered:    rt.met.sweepsRecovered.Load(),
		JobsScattered:      rt.met.jobsScattered.Load(),
		JobsRequeued:       rt.met.jobsRequeued.Load(),
		JobsMigrated:       rt.met.jobsMigrated.Load(),
		ShardFailures:      rt.met.shardFailures.Load(),
		MembershipChanges:  rt.met.membershipChanges.Load(),
		TracesUploaded:     rt.met.tracesUploaded.Load(),
		Gathers:            rt.met.gathers.Load(),
		GatherSecondsTotal: float64(rt.met.gatherNs.Load()) / 1e9,
		Shards:             make([]ShardMetrics, len(mem.shards)),
	}
	for i, sh := range mem.shards {
		spans, dur := sh.unhealthyTotal(now)
		healthy := sh.isHealthy()
		if healthy {
			m.ShardsHealthy++
		}
		sh.versionMu.Lock()
		version := sh.version
		sh.versionMu.Unlock()
		m.Shards[i] = ShardMetrics{
			Name:               sh.name,
			Healthy:            healthy,
			Requests:           sh.requests.Load(),
			Retries:            sh.retries.Load(),
			JobsAssigned:       sh.jobsAssigned.Load(),
			UnhealthyIntervals: spans,
			UnhealthySeconds:   dur.Seconds(),
			Version:            version,
		}
	}
	writeJSON(w, m)
}
