package sim

import "fmt"

// Keyed tie-break mode: the engine side of conservative parallel
// simulation (PDES).
//
// A parallel machine partitions its tiles over several engines that
// drain events concurrently inside conservative time windows. Within a
// window each engine needs a tie-break for same-timestamp events that
// is provisional but locally correct: any two events scheduled by the
// same tile must keep the serial engine's relative order (same-tile
// order is the only intra-window order that can affect results — tiles
// interact exclusively through staged cross-tile messages, which the
// window barrier applies in exact serial order; see the system layer's
// replay merge). The keyed form delivers that with a key that encodes
// the scheduling instant and a per-engine rank:
//
//	bits 63..24  scheduling instant + 1 (40 bits of picoseconds)
//	bits 23..0   per-engine rank within the instant
//
// Same-tile events scheduled at different instants order by instant —
// the serial engine's FIFO counter would too, since the earlier call
// happened earlier — and same-instant calls order by the engine's call
// order, which restricted to one tile is again the serial order. At
// every window barrier the machine replays the window's scheduling
// structure (windowlog.go), computes each still-pending event's exact
// serial position, and rewrites these provisional keys to dense ranks
// (RewriteSeqs), so keys never need to be comparable across engines.
//
// The 40-bit instant field bounds keyed runs to about 1.1 s of
// simulated time (2^40 ps); beyond that the engine panics with advice
// to run serially. Serial engines never enter keyed mode and have no
// such bound.

const (
	keyedRankBits = 24

	maxKeyedRank = 1<<keyedRankBits - 1 // per-instant scheduling rank
	maxKeyedTime = 1<<40 - 1            // instant+1 must fit in 40 bits
)

// keyedBase positions an instant in the high bits of a key. The +1
// keeps every runtime key above the dense-rank range that barrier
// rewrites and restored checkpoint heaps use (see KeyedInsert): a rank
// assigned before a window always sorts ahead of a key assigned inside
// it, exactly as the earlier scheduling call's FIFO seq would have.
func keyedBase(at Time) uint64 {
	if uint64(at) >= maxKeyedTime {
		panic(fmt.Sprintf("sim: simulated time %v exceeds the keyed tie-break range (~1.1s); run with SimThreads=1", at))
	}
	return (uint64(at) + 1) << keyedRankBits
}

// SetKeyed switches the engine's tie-break to keyed mode. It must be
// called before any event is scheduled; a parallel machine sets it on
// every shard engine at construction.
func (e *Engine) SetKeyed() {
	if len(e.queue) != 0 {
		panic("sim: SetKeyed on an engine with pending events")
	}
	e.keyed = true
	e.keyInstant = -1
}

// Keyed reports whether the engine uses keyed tie-break order.
func (e *Engine) Keyed() bool { return e.keyed }

// keyedNext assigns the next local scheduling key: the current instant
// with a per-instant rank that resets whenever time advances.
func (e *Engine) keyedNext() uint64 {
	if e.now != e.keyInstant {
		e.keyInstant = e.now
		e.keyCount = 0
	}
	e.keyCount++
	if e.keyCount > maxKeyedRank {
		panic(fmt.Sprintf("sim: more than %d events scheduled at instant %v", maxKeyedRank, e.now))
	}
	return keyedBase(e.now) | e.keyCount
}

// KeyedInsert inserts h at time at with an explicit tie-break key —
// how window barriers insert merged cross-shard deliveries and how a
// restore distributes a checkpointed heap (dense ranks, which sort
// below every runtime key because keyedBase adds one to the instant).
// The engine must be in keyed mode and at must not precede Now.
func (e *Engine) KeyedInsert(at Time, key uint64, h Handler) {
	if !e.keyed {
		panic("sim: KeyedInsert on a non-keyed engine")
	}
	e.checkTime(at)
	if h == nil {
		panic("sim: nil handler")
	}
	e.push(item{at: at, seq: key, h: h})
}

// NextAt returns the timestamp of the earliest pending event, and
// false when the queue is empty. Window schedulers use it to skip idle
// stretches between conservative windows.
func (e *Engine) NextAt() (Time, bool) {
	if len(e.queue) == 0 {
		return 0, false
	}
	return e.queue[0].at, true
}
