// Package allarm is a simulation library reproducing "ALLARM: Optimizing
// Sparse Directories for Thread-Local Data" (Roy & Jones, DATE 2014).
//
// ALLARM (ALLocAte on Remote Miss) is a probe-filter allocation policy
// for NUMA cache-coherent systems: directory entries are allocated only
// when the requester is in a different affinity domain from the home
// directory. Under first-touch NUMA page placement, thread-local data is
// homed locally, so it consumes no directory state and generates no
// coherence traffic. Remote misses additionally probe the home's own
// core — in parallel with the DRAM access — to find untracked copies.
//
// The package front-ends a complete machine model (16-node 4×4 mesh,
// private L1/L2 per node, Hammer-style coherence with per-node probe
// filters, one memory controller per node) behind two first-class
// abstractions: the Workload being simulated and the directory
// allocation Policy the machine runs.
//
// # Workloads
//
// Run simulates one Workload on one machine. Workloads come in three
// kinds — the synthetic SPLASH2/Parsec presets, bit-exact trace replays,
// and user-programmatic generators — and any Workload implementation is
// accepted:
//
//	cfg := allarm.DefaultConfig()               // Table I parameters
//	wl, _ := allarm.BenchmarkWorkload("ocean-cont", cfg.Threads, cfg.AccessesPerThread)
//	res, err := allarm.Run(cfg, wl)
//
//	wl, _ = allarm.LoadTrace("barnes.trace")    // captured with CaptureTrace / allarm-trace
//	wl, _ = allarm.NewWorkload(allarm.WorkloadSpec{...}) // programmatic
//
// Every entry point has a context-aware variant (RunCtx,
// RunBenchmarkCtx, RunMultiProcessCtx, Job.RunCtx): the simulation
// polls the context once per sim.CancelCheckBudget events — amortised
// to nothing on the hot path — and a cancelled run returns a partial
// Result (Partial == true, metrics up to the abort instant) together
// with an error IsCancellation recognises. Partial results are never
// cached anywhere; re-running the job from a clean start reproduces
// the bit-identical complete result.
//
// RunBenchmark(cfg, name) is the preset shortcut, and RunPair runs the
// paper's baseline/ALLARM comparison:
//
//	base, opt, err := allarm.RunPair(cfg, "ocean-cont")
//	cmp := allarm.Compare(base, opt)
//	fmt.Printf("speedup %.2fx, evictions ×%.2f\n", cmp.Speedup, cmp.EvictionRatio)
//
// # Policies
//
// Config.Policy selects the directory allocation policy by registry
// name: Baseline ("baseline"), ALLARM ("allarm"), the bundled
// deferred-allocation variant ALLARMHyst ("allarm-hyst"), or any scheme
// added with RegisterPolicy. A registered DirectoryPolicy decides each
// probe-filter miss (Track, GrantUntracked, GrantUncached) per
// directory, and registered names work uniformly across single runs,
// sweeps, the experiment harness and the CLI tools' -policy flags.
//
// # Sweeps
//
// The paper's evaluation is a grid of independent simulations, and the
// Sweep API is how grids are expressed and executed. A Sweep is a
// declarative list of Jobs, usually derived from a seed job with the
// Cross* combinators; a Runner fans the jobs out over a worker pool with
// context cancellation and progress reporting, returning results in
// spec order regardless of completion order (simulations are
// deterministic, so results are identical at every parallelism):
//
//	sweep := allarm.NewSweep(allarm.Job{Config: cfg}).
//		CrossBenchmarks(allarm.Benchmarks()...).
//		CrossPolicies(allarm.Baseline, allarm.ALLARM, allarm.ALLARMHyst)
//	results, err := allarm.RunSweep(ctx, sweep)     // all cores
//	if err == nil { err = allarm.FirstError(results) }
//
// Jobs carry either a preset name (Job.Benchmark) or any first-class
// workload (Job.Workload; see CrossWorkloads), so one spec can mix
// presets, trace replays and custom generators.
//
// Results are structured data — each SweepResult pairs the Job with its
// *Result or error — rendered by pluggable emitters (TableEmitter,
// CSVEmitter, JSONEmitter) or consumed directly.
//
// Every table and figure of the paper is such a spec: ExperimentSweep
// returns the grid behind an experiment id, RunExperiment (the
// compatibility shim over it) runs the grid and prints the series the
// paper plots, and the Vs variants (ExperimentSweepVs, RunExperimentVs)
// regenerate any figure with a different optimised policy standing in
// for ALLARM. See README.md for a quickstart and cmd/allarm-bench for
// the figure-regeneration CLI.
//
// # Parallel simulation
//
// Config.SimThreads (CLI: -sim-threads) runs one simulation on several
// cores: the mesh's tiles are partitioned into contiguous blocks, one
// event heap per block, drained concurrently in conservative time
// windows bounded by the NoC's minimum cross-tile latency (the PDES
// lookahead). Cross-tile messages are staged during a window, and the
// window barrier replays each shard's log of dispatches and scheduling
// calls through one virtual heap with a true global FIFO counter,
// reconstructing the serial engine's event order exactly — results are
// bit-identical to SimThreads=1 for every workload, policy and
// GOMAXPROCS, which is why SimThreads is excluded from Job.Key (a
// cached result serves requests at any thread count) and why machine
// checkpoints are interchangeable across thread counts. Machines the
// scheme cannot shard (CheckInvariants, the next-touch memory policy,
// workloads that do not declare their pages) silently run serial;
// SimThreads <= 1 is the unchanged serial engine. See README.md's
// "Parallel simulation (PDES)" section for the model and when it
// helps.
//
// # Serving
//
// cmd/allarm-serve runs the sweep engine as a long-lived service
// (internal/server): sweeps are submitted over REST, fan out on a
// bounded worker pool, and results land in a content-addressed cache
// keyed by Job.Key — the stable fingerprint that also drives
// Sweep.Dedup — so each distinct simulation runs at most once and
// identical in-flight submissions are coalesced onto a single
// execution. Per-job progress streams as Server-Sent Events
// (Runner.Start and Runner.JobDone are the underlying hooks, and
// Runner.Exec is the seam the cache plugs into), results are rendered
// by the same emitters the CLI uses (byte-identical to a local
// RunSweep; NDJSONEmitter is the streaming-friendly variant), traces
// upload via POST /v1/traces (ReadTraceNamed), and DescribePolicies /
// DescribeBenchmarks back the discovery endpoints.
//
// The daemon is durable and interruptible. With a cache directory the
// result cache gains a disk tier content-addressed by the same
// Job.Key, submitted sweeps persist until deleted (DELETE
// /v1/sweeps/{id}) or expired (-retain), and a restarted daemon
// re-enqueues unfinished sweeps under their original ids, serving
// already-computed jobs from disk and re-simulating only the missing
// ones. Drain-time cancellation rides Runner.Exec's context into the
// event loop, so an executing simulation aborts within one
// sim.CancelCheckBudget of events; interrupted jobs are reported
// "aborted" (with partial metrics in the checkpoint NDJSON, flagged
// "aborted":true) and never-started ones "skipped". See the Serving
// and "Durability & cancellation" sections of README.md for a curl
// quickstart, the cache-dir layout and the drain semantics.
//
// # Fleet serving
//
// cmd/allarm-router (internal/fleet) scales the same API across many
// daemons. The router is stateless: expanded jobs are
// consistent-hashed onto shards by Job.Key — the fingerprint the
// shards cache under — so identical jobs land where their result is
// warm, a fleet-wide re-submission re-simulates nothing, and results
// gather back in spec order, byte-identical to a single node across
// every emitter. Shards are health-checked and routed around; a shard
// lost mid-sweep degrades its jobs to "skipped" instead of failing the
// gather. The persistent tier is the exported ResultStore interface
// (internal/server): a content-addressed directory, or any S3-style
// object endpoint via NewObjectStore — allarm-serve's -object-serve
// exports one node's directory as exactly such an endpoint
// (ObjectHandler). Both daemons guard their doors with per-client
// bearer tokens, token-bucket rate limits and per-sweep job quotas
// (-auth). See the "Fleet serving" section of README.md for a
// two-shard quickstart.
//
// # Fault tolerance
//
// With -state-dir the router stops being forgettable: every accepted
// sweep is journaled (request, expanded job list, per-shard
// assignment, per-job result checkpoints) with atomic tmp+rename
// writes, and a restarted router recovers in-flight sweeps under their
// original ids — re-asking the shards, whose content-addressed caches
// answer without re-simulating, so a SIGKILL mid-gather costs nothing
// but the restart. The shard set is mutable at runtime via
// GET/POST/DELETE /v1/shards (admin-scoped when -auth is set) or
// SIGHUP re-reading -shards-file; membership changes re-queue skipped
// jobs onto their new owners and are journaled so recovery boots with
// the current ring. Retries honor Retry-After on 429 and otherwise use
// seeded full-jitter exponential backoff, with a -shard-timeout
// deadline on every attempt. These claims are asserted under
// deterministic chaos: internal/faultnet turns declarative JSON fault
// plans (latency, drops, resets, 5xx/429 bursts, slow bodies) into a
// seeded http.RoundTripper the fleet tests inject in-process, and
// cmd/allarm-faultnet runs the same plans as an HTTP or TCP proxy
// between real processes. See the "Fault tolerance" section of
// README.md.
package allarm
