package allarm

// SimBenchCase is one workload cell of the fixed simulator-performance
// matrix (each cell is measured under both policies).
type SimBenchCase struct {
	// Size labels the cell ("small", "large").
	Size string
	// Benchmark is the workload name (see Benchmarks).
	Benchmark string
	// Accesses is the per-thread access budget.
	Accesses int
}

// SimBenchMatrix is the fixed matrix behind the BenchmarkSim* whole-
// simulation benchmarks and `allarm-bench -benchjson`. It is a single
// shared definition on purpose: the committed BENCH_*.json trajectory
// is only comparable across PRs if the measured workloads never drift,
// so changing a cell invalidates all earlier snapshots.
var SimBenchMatrix = []SimBenchCase{
	{Size: "small", Benchmark: "ocean-cont", Accesses: 20_000},
	{Size: "large", Benchmark: "blackscholes", Accesses: 60_000},
}
