package fleet

import (
	"net/http"
	"sync/atomic"
	"time"
)

// routerMetrics are the router's internal counters.
type routerMetrics struct {
	sweepsSubmitted atomic.Uint64
	sweepsCompleted atomic.Uint64
	sweepsDegraded  atomic.Uint64
	jobsScattered   atomic.Uint64
	shardFailures   atomic.Uint64
	tracesUploaded  atomic.Uint64
	gathers         atomic.Uint64
	gatherNs        atomic.Uint64
}

// ShardMetrics is one shard's row in the router's GET /metrics answer.
type ShardMetrics struct {
	Name    string `json:"name"`
	Healthy bool   `json:"healthy"`
	// Requests counts every HTTP call the router made to this shard
	// (submits, polls, streams, probes, uploads).
	Requests uint64 `json:"requests"`
	// Retries counts backoff re-attempts against this shard.
	Retries uint64 `json:"retries"`
	// JobsAssigned counts jobs placement hashed onto this shard.
	JobsAssigned uint64 `json:"jobs_assigned"`
	// UnhealthyIntervals counts completed excluded periods;
	// UnhealthySeconds totals them, including an ongoing one.
	UnhealthyIntervals uint64  `json:"unhealthy_intervals"`
	UnhealthySeconds   float64 `json:"unhealthy_seconds"`
	// Version is the shard's reported build ("" until first probed).
	Version string `json:"version,omitempty"`
}

// Metrics is the router's GET /metrics answer.
type Metrics struct {
	UptimeSeconds   float64 `json:"uptime_seconds"`
	ShardsHealthy   int     `json:"shards_healthy"`
	ShardsTotal     int     `json:"shards_total"`
	SweepsSubmitted uint64  `json:"sweeps_submitted"`
	SweepsCompleted uint64  `json:"sweeps_completed"`
	// SweepsDegraded finished with at least one shard's jobs skipped.
	SweepsDegraded uint64 `json:"sweeps_degraded"`
	JobsScattered  uint64 `json:"jobs_scattered"`
	// ShardFailures counts shard sub-sweeps lost past the retry budget.
	ShardFailures  uint64 `json:"shard_failures"`
	TracesUploaded uint64 `json:"traces_uploaded"`
	// Gathers counts finished scatter/gathers; GatherSecondsTotal sums
	// their wall time (submit to merged results).
	Gathers            uint64         `json:"gathers"`
	GatherSecondsTotal float64        `json:"gather_seconds_total"`
	Shards             []ShardMetrics `json:"shards"`
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := time.Now()
	m := Metrics{
		UptimeSeconds:      time.Since(rt.start).Seconds(),
		ShardsTotal:        len(rt.shards),
		SweepsSubmitted:    rt.met.sweepsSubmitted.Load(),
		SweepsCompleted:    rt.met.sweepsCompleted.Load(),
		SweepsDegraded:     rt.met.sweepsDegraded.Load(),
		JobsScattered:      rt.met.jobsScattered.Load(),
		ShardFailures:      rt.met.shardFailures.Load(),
		TracesUploaded:     rt.met.tracesUploaded.Load(),
		Gathers:            rt.met.gathers.Load(),
		GatherSecondsTotal: float64(rt.met.gatherNs.Load()) / 1e9,
		Shards:             make([]ShardMetrics, len(rt.shards)),
	}
	for i, sh := range rt.shards {
		spans, dur := sh.unhealthyTotal(now)
		healthy := sh.isHealthy()
		if healthy {
			m.ShardsHealthy++
		}
		sh.versionMu.Lock()
		version := sh.version
		sh.versionMu.Unlock()
		m.Shards[i] = ShardMetrics{
			Name:               sh.name,
			Healthy:            healthy,
			Requests:           sh.requests.Load(),
			Retries:            sh.retries.Load(),
			JobsAssigned:       sh.jobsAssigned.Load(),
			UnhealthyIntervals: spans,
			UnhealthySeconds:   dur.Seconds(),
			Version:            version,
		}
	}
	writeJSON(w, m)
}
