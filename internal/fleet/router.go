// Package fleet is the sharded serving layer behind cmd/allarm-router:
// a thin router that consistent-hashes each job of a sweep onto a fleet
// of allarm-serve backends, scatters per-shard sub-sweeps, and gathers
// the results back into global spec order.
//
// # Placement
//
// The sharding key is Job.Key — the same golden-tested fingerprint the
// shards' content-addressed result caches use. Hashing the cache key is
// the whole design: identical jobs always land on the same shard, so a
// re-submitted sweep is served entirely from the fleet's caches with
// zero re-simulations, and no shard ever holds a duplicate of another's
// work. The ring walks past unhealthy shards, so an outage moves only
// the victim's keys (and only while it is out).
//
// # Scatter/gather
//
// A sub-sweep is sent as an explicit JobSpec list in global spec order
// — the same SweepRequest the shard would accept from any client, so a
// shard needs no fleet awareness at all. Results come back as NDJSON
// Records and are re-rendered through the same emitters a single
// daemon uses (allarm.RecordEmitter), which makes gathered output
// byte-identical to a single-node run of the same request.
//
// # Degradation and requeue
//
// A shard that dies mid-sweep does not fail the gather: after the
// retry budget its jobs are reported as skipped rows (the error column
// names the shard) and the sweep finishes with status "degraded". The
// health loop excludes the shard from new placements after FailAfter
// consecutive probe failures and re-admits it on the first success.
// Skipped is not final, though: when the ring's answer for a skipped
// job changes — the owner was excluded by the health loop, or a
// membership change (SetShards / the /v1/shards API) re-homed its key —
// the job is claimed back, re-dispatched to the new owner, and the
// sweep re-opens until every row is a real result (or the requeue
// budget runs out).
//
// # Survivability
//
// With Options.StateDir set, the router journals every accepted sweep
// (request + assignment), checkpoints gathered records as shard groups
// complete, and persists uploaded traces and membership changes — all
// via the same atomic temp+rename discipline as the shards' own stores.
// A router killed mid-sweep (SIGKILL included) recovers its in-flight
// sweeps under their original ids at boot, re-polls the owning shards
// (whose content-addressed caches make the re-ask nearly free), and
// resumes gathering; the recovered output is byte-identical to what the
// uninterrupted gather would have produced.
//
// # Checkpoint migration
//
// When shards run with -checkpoint-interval, a membership change does
// better than skip-and-requeue for in-flight work: every non-terminal
// job owned by a departing shard has its machine-state checkpoint
// pulled from the old owner (GET /v1/checkpoints/{name}) and pushed to
// its key's new ring owner, which resumes the simulation mid-flight
// instead of restarting from event zero. A planned shard retirement
// therefore costs at most one checkpoint interval of re-simulation per
// in-flight job, and the gathered output stays byte-identical because
// resumed runs are bit-identical. The transfer is best-effort — no
// checkpoint yet, or an already-dead shard, falls back to plain
// re-dispatch — and late rows from the old owner are dropped by
// ownership checks so a migrated job is never double-reported.
package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	allarm "allarm"
	"allarm/internal/obs"
	"allarm/internal/server"
)

// Tuning defaults.
const (
	// defaultReplicas is the ring points per shard; enough that removing
	// one shard spreads its keys roughly evenly over the survivors.
	defaultReplicas = 64
	// defaultHealthInterval paces /healthz probes.
	defaultHealthInterval = 2 * time.Second
	// defaultFailAfter is the consecutive probe failures before a shard
	// is excluded from placement.
	defaultFailAfter = 2
	// defaultAttempts bounds tries per shard call (1 + retries).
	defaultAttempts = 3
	// defaultRetryBackoff seeds the exponential retry backoff.
	defaultRetryBackoff = 100 * time.Millisecond
	// defaultShardTimeout bounds non-streaming shard calls.
	defaultShardTimeout = 30 * time.Second
	// probeTimeout bounds one health probe.
	probeTimeout = 2 * time.Second
	// maxSubmitBytes / maxTraceBytes mirror the shard-side request
	// bounds: the router must not accept what a shard would refuse.
	maxSubmitBytes = 1 << 20
	maxTraceBytes  = 64 << 20
	// maxTraces bounds retained trace uploads. The router keeps raw
	// bytes (for re-upload to amnesiac shards), so the bound is tighter
	// than a shard's.
	maxTraces = 16
)

// Options configures a Router.
type Options struct {
	// Shards are the allarm-serve base URLs (e.g. http://10.0.0.7:8347)
	// the router boots with. At least one is required unless a journaled
	// membership (StateDir) supplies the set. The set can change at
	// runtime via SetShards/AddShard/RemoveShard (the /v1/shards API and
	// SIGHUP reload in cmd/allarm-router); placement depends only on the
	// current set, so every router with the same set computes the same
	// placement.
	Shards []string
	// ShardToken, when non-empty, is the bearer token presented to the
	// shards (their Guard credential). Independent of the router's own
	// Guard: clients authenticate to the router, the router to the fleet.
	ShardToken string
	// Replicas is the ring points per shard (<= 0: defaultReplicas).
	Replicas int
	// Guard, when non-nil, authenticates and rate-limits the router's
	// own clients and enforces their job quotas at submit time.
	// Membership mutations additionally require the admin scope.
	Guard *server.Guard
	// HealthInterval paces shard health probes (<= 0: 2s).
	HealthInterval time.Duration
	// FailAfter is the consecutive probe failures before a shard is
	// excluded from new placements (<= 0: 2). One success re-admits it.
	FailAfter int
	// Attempts bounds tries per shard call (<= 0: 3). 4xx answers other
	// than 429 are never retried.
	Attempts int
	// RetryBackoff seeds the exponential backoff between retries
	// (<= 0: 100ms). Actual waits are full-jittered; a 429's Retry-After
	// overrides the schedule.
	RetryBackoff time.Duration
	// ShardTimeout bounds every non-streaming shard call — submit, poll,
	// record fetch, trace upload (<= 0: RequestTimeout, then 30s). A hung
	// shard therefore costs at most Attempts × ShardTimeout per step.
	ShardTimeout time.Duration
	// RequestTimeout is the deprecated name for ShardTimeout, honored
	// when ShardTimeout is unset.
	RequestTimeout time.Duration
	// StateDir, when non-empty, enables the sweep journal: accepted
	// sweeps, gathered-record checkpoints, uploaded traces and membership
	// changes are persisted there and recovered at boot.
	StateDir string
	// Transport, when non-nil, is the RoundTripper for all shard traffic
	// (tests inject a faultnet.RoundTripper here).
	Transport http.RoundTripper
	// JitterSeed seeds the retry-jitter RNG (0: time-seeded). Fixed
	// seeds make chaos runs replayable.
	JitterSeed int64
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
	// Logger, when non-nil, is the structured logger: lifecycle events
	// go to it (at info) when Logf is nil, and the Handler emits one
	// request log line per request with method/route/status/duration and
	// the X-Allarm-Request-Id correlation id.
	Logger *slog.Logger
}

// Router scatters sweeps over a shard fleet and gathers their results.
// Create with New, serve Handler, stop with Close. All result state
// lives in the shards; the router's own durable state (when StateDir is
// set) is only the journal that lets a restart resume its gathers.
type Router struct {
	opts      Options
	transport http.RoundTripper
	mux       *http.ServeMux
	handler   http.Handler
	ctx       context.Context
	cancel    context.CancelFunc
	start     time.Time
	attempts  int
	backoff   time.Duration
	timeout   time.Duration
	journal   *journal // nil when StateDir is unset

	// mem is the current membership snapshot; memMu serializes mutations
	// (readers just Load).
	mem   atomic.Pointer[membership]
	memMu sync.Mutex

	// rng feeds retry jitter (behind rngMu: retries are concurrent).
	rngMu sync.Mutex
	rng   *rand.Rand

	met *routerMetrics

	mu     sync.Mutex
	sweeps map[string]*fleetSweep
	order  []string
	nextID uint64
	traces map[string]traceEntry
	trIDs  []string // upload order, oldest first (eviction)

	active sync.WaitGroup // gather goroutines + health loop
}

// traceEntry keeps an upload's raw bytes (for re-upload to a shard that
// lost it) alongside the parsed workload (for local sweep expansion).
type traceEntry struct {
	data []byte
	wl   allarm.Workload
}

// New returns a ready Router with its health loop running and — when
// StateDir holds journaled sweeps — its recovered gathers resuming.
func New(opts Options) (*Router, error) {
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		opts:      opts,
		transport: opts.Transport,
		ctx:       ctx,
		cancel:    cancel,
		start:     time.Now(),
		attempts:  opts.Attempts,
		backoff:   opts.RetryBackoff,
		timeout:   opts.ShardTimeout,
		met:       newRouterMetrics(),
		sweeps:    make(map[string]*fleetSweep),
		traces:    make(map[string]traceEntry),
	}
	rt.met.reg.Gauge("allarm_router_uptime_seconds", "Seconds since the router started.",
		func() float64 { return time.Since(rt.start).Seconds() })
	rt.met.reg.Gauge("allarm_router_shards_total", "Shards in the membership.",
		func() float64 { return float64(len(rt.mem.Load().shards)) })
	rt.met.reg.Gauge("allarm_router_shards_healthy", "Shards currently healthy.",
		func() float64 {
			n := 0
			for _, sh := range rt.mem.Load().shards {
				if sh.isHealthy() {
					n++
				}
			}
			return float64(n)
		})
	if rt.attempts <= 0 {
		rt.attempts = defaultAttempts
	}
	if rt.backoff <= 0 {
		rt.backoff = defaultRetryBackoff
	}
	if rt.timeout <= 0 {
		rt.timeout = opts.RequestTimeout
	}
	if rt.timeout <= 0 {
		rt.timeout = defaultShardTimeout
	}
	seed := opts.JitterSeed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	rt.rng = rand.New(rand.NewSource(seed))

	if opts.StateDir != "" {
		j, err := openJournal(opts.StateDir, rt.logf)
		if err != nil {
			cancel()
			return nil, fmt.Errorf("fleet: %w", err)
		}
		rt.journal = j
	}

	// The journaled membership — the set as of the last runtime mutation
	// — outranks the boot flags: a restart must see the ring its sweeps
	// were placed on, not a stale command line.
	shardURLs := opts.Shards
	if journaled, ok := rt.journal.loadMembership(); ok {
		shardURLs = journaled
		rt.logf("membership: restored %d shard(s) from journal (overrides -shards)", len(journaled))
	}
	mem, err := rt.buildMembership(shardURLs, nil)
	if err != nil {
		cancel()
		return nil, err
	}
	rt.mem.Store(mem)

	rt.loadTraces()

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/sweeps", rt.handleSubmit)
	rt.mux.HandleFunc("GET /v1/sweeps", rt.handleList)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}", rt.handleStatus)
	rt.mux.HandleFunc("DELETE /v1/sweeps/{id}", rt.handleDelete)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}/results", rt.handleResults)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}/events", rt.handleEvents)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}/timeline", rt.handleTimeline)
	rt.mux.HandleFunc("POST /v1/traces", rt.handleTraceUpload)
	rt.mux.HandleFunc("GET /v1/shards", rt.handleShardsList)
	rt.mux.HandleFunc("POST /v1/shards", rt.handleShardAdd)
	rt.mux.HandleFunc("DELETE /v1/shards", rt.handleShardRemove)
	rt.mux.HandleFunc("GET /v1/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, allarm.DescribePolicies())
	})
	rt.mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, allarm.DescribeBenchmarks())
	})
	rt.mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"version": allarm.Version})
	})
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	// pprof is admin-gated like the timeline and membership mutation:
	// with a Guard the bearer is already verified (Wrap 401s otherwise)
	// and non-admin clients get 403; without -auth it is open.
	rt.mux.HandleFunc("/debug/pprof/", rt.adminOnly(pprof.Index))
	rt.mux.HandleFunc("/debug/pprof/cmdline", rt.adminOnly(pprof.Cmdline))
	rt.mux.HandleFunc("/debug/pprof/profile", rt.adminOnly(pprof.Profile))
	rt.mux.HandleFunc("/debug/pprof/symbol", rt.adminOnly(pprof.Symbol))
	rt.mux.HandleFunc("/debug/pprof/trace", rt.adminOnly(pprof.Trace))
	// Request-id minting, request logging and per-route latency wrap
	// outside the Guard so rejected requests are observable too.
	rt.handler = obs.Instrument(opts.Guard.Wrap(rt.mux), obs.MiddlewareOptions{
		Logger:   opts.Logger,
		Registry: rt.met.reg,
		Prefix:   "allarm_router_",
		Route: func(r *http.Request) string {
			_, pattern := rt.mux.Handler(r)
			return pattern
		},
	})

	rt.recoverSweeps()

	rt.active.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Handler returns the router's HTTP handler (behind the Guard when one
// is configured).
func (rt *Router) Handler() http.Handler { return rt.handler }

// Close stops the health loop and cancels in-flight gathers, waiting
// for them to unwind. Shard-side sweeps keep running — the shards own
// the work — and the journal is deliberately left exactly as a crash
// would leave it: an interrupted gather stays "running" on disk so the
// next boot resumes it (Close and SIGKILL are the same event to the
// journal, which is what makes recovery trustworthy).
func (rt *Router) Close() {
	rt.cancel()
	rt.active.Wait()
}

func (rt *Router) logf(format string, args ...any) {
	switch {
	case rt.opts.Logf != nil:
		rt.opts.Logf(format, args...)
	case rt.opts.Logger != nil:
		rt.opts.Logger.Info(fmt.Sprintf(format, args...))
	}
}

// adminOnly wraps an operational handler (pprof) behind the admin
// scope, mirroring the membership-mutation endpoints.
func (rt *Router) adminOnly(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if err := server.CheckAdmin(r); err != nil {
			writeError(w, http.StatusForbidden, err)
			return
		}
		h(w, r)
	}
}

// journalSweep rewrites a sweep's journal entry from its current state.
func (rt *Router) journalSweep(st *fleetSweep) {
	if rt.journal == nil {
		return
	}
	v := st.view()
	rt.journal.writeSweep(journalSweep{
		ID:         st.id,
		Created:    st.created,
		Status:     v.Status,
		Request:    st.req,
		Assignment: st.assignment(),
	})
}

// checkpointSweep rewrites a sweep's gathered-record checkpoint.
func (rt *Router) checkpointSweep(st *fleetSweep) {
	if rt.journal == nil {
		return
	}
	rt.journal.writeCheckpoint(st.id, st.checkpointLines())
}

// loadTraces restores journaled trace uploads (boot).
func (rt *Router) loadTraces() {
	ids, data := rt.journal.loadTraces()
	for _, id := range ids {
		wl, err := allarm.ReadTraceNamed(bytes.NewReader(data[id]), id)
		if err != nil {
			rt.logf("recovery: trace %s: %v", id, err)
			rt.journal.removeTrace(id)
			continue
		}
		rt.traces[id] = traceEntry{data: data[id], wl: wl}
		rt.trIDs = append(rt.trIDs, id)
	}
	rt.evictTraces()
}

// evictTraces enforces maxTraces, oldest first. Callers hold rt.mu (or
// run before the router serves).
func (rt *Router) evictTraces() {
	for len(rt.trIDs) > maxTraces {
		delete(rt.traces, rt.trIDs[0])
		rt.journal.removeTrace(rt.trIDs[0])
		rt.trIDs = rt.trIDs[1:]
	}
}

// recoverSweeps replays the journal at boot: every persisted sweep
// comes back under its original id; incomplete ones resume gathering.
func (rt *Router) recoverSweeps() {
	entries := rt.journal.loadSweeps()
	for _, e := range entries {
		var n uint64
		if _, err := fmt.Sscanf(e.ID, "fs-%d", &n); err == nil && n > rt.nextID {
			rt.nextID = n
		}
	}
	for _, e := range entries {
		if err := rt.recoverSweep(e); err != nil {
			rt.logf("recovery: sweep %s: %v", e.ID, err)
		}
	}
}

// recoverSweep rebuilds one journaled sweep: re-expand the request
// (ExpandSweep is deterministic, so global indices and keys line up
// exactly), restore checkpointed records, and re-dispatch whatever is
// still owed to its journaled owner — or, when that shard left the
// fleet, to the key's current ring owner.
func (rt *Router) recoverSweep(e journalSweep) error {
	sweep, err := server.ExpandSweep(e.Request, rt.lookupTrace)
	if err != nil {
		return fmt.Errorf("re-expanding: %w", err)
	}
	shardOf := make([]string, sweep.Len())
	for name, idxs := range e.Assignment {
		for _, i := range idxs {
			if i < 0 || i >= sweep.Len() {
				return fmt.Errorf("assignment index %d out of range (%d jobs)", i, sweep.Len())
			}
			shardOf[i] = name
		}
	}
	views := make([]JobView, sweep.Len())
	for i, job := range sweep.Jobs {
		views[i] = JobView{
			Benchmark: job.WorkloadName(),
			Policy:    job.Config.Policy.String(),
			PFKiB:     job.Config.PFBytes >> 10,
			Shard:     shardOf[i],
			Status:    server.JobPending,
		}
	}
	st := newFleetSweep(e.ID, views, e.Created)
	st.req = e.Request
	st.expanded = sweep.Jobs
	st.specs = buildSpecs(sweep, e.Request)
	st.recovered = true
	// Recovery has no inbound request; a fresh correlation id still
	// stitches the resumed gather's logs and timeline together.
	st.reqID = obs.NewRequestID()
	st.timeline("accepted", -1, "", "recovered from journal")
	missing := st.restore(rt.journal.loadCheckpoint(e.ID))

	// Group the owed jobs by owner before the sweep is visible anywhere.
	mem := rt.mem.Load()
	groups := make(map[*shard][]int)
	for _, i := range missing {
		sh := mem.byName(shardOf[i])
		if sh == nil {
			if si := mem.ring.lookup(sweep.Jobs[i].Key(), mem.alive); si >= 0 {
				sh = mem.shards[si]
			}
		}
		if sh == nil {
			serr := fmt.Errorf("shard %s: no longer a fleet member and no replacement owner", shardOf[i])
			st.setRecord(i, allarm.RecordOf(allarm.SweepResult{Job: sweep.Jobs[i], Err: serr}))
			st.jobUpdate(i, server.JobSkipped, serr.Error())
			continue
		}
		st.jobs[i].Shard = sh.name
		groups[sh] = append(groups[sh], i)
	}

	rt.mu.Lock()
	rt.sweeps[e.ID] = st
	rt.order = append(rt.order, e.ID)
	rt.mu.Unlock()
	rt.met.sweepsRecovered.Add(1)
	rt.journalSweep(st)

	if len(missing) == 0 {
		rt.logf("recovery: sweep %s: complete in journal (%d jobs)", e.ID, st.total)
		return nil
	}
	rt.logf("recovery: sweep %s: resuming %d of %d job(s)", e.ID, len(missing), st.total)
	if len(groups) > 0 {
		rt.active.Add(1)
		go rt.dispatch(st, groups)
	} else if _, ok := st.takeFinishNotice(); ok {
		// Everything owed was just skip-marked (owners gone): terminal.
		rt.checkpointSweep(st)
		rt.journalSweep(st)
		rt.met.sweepsDegraded.Add(1)
	}
	return nil
}

// healthLoop probes every shard each interval, excluding and
// re-admitting them as their /healthz answers flip.
func (rt *Router) healthLoop() {
	defer rt.active.Done()
	interval := rt.opts.HealthInterval
	if interval <= 0 {
		interval = defaultHealthInterval
	}
	failAfter := rt.opts.FailAfter
	if failAfter <= 0 {
		failAfter = defaultFailAfter
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-t.C:
			rt.probeAll(failAfter)
		}
	}
}

// probeAll runs one health round across the fleet, concurrently. A
// round that flipped any shard's state re-evaluates skipped jobs: an
// exclusion gives their keys a new ring owner, a readmission may give
// back the original.
func (rt *Router) probeAll(failAfter int) {
	mem := rt.mem.Load()
	var wg sync.WaitGroup
	var flipped atomic.Bool
	for _, sh := range mem.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			ok := rt.probe(sh)
			switch sh.probeResult(ok, failAfter, time.Now()) {
			case "excluded":
				flipped.Store(true)
				rt.logf("shard %s: unhealthy, excluded from placement", sh.name)
			case "readmitted":
				flipped.Store(true)
				rt.logf("shard %s: healthy again, re-admitted", sh.name)
			}
		}(sh)
	}
	wg.Wait()
	if flipped.Load() {
		rt.requeueSkipped("health transition")
	}
}

// probe checks one shard's /healthz (any 200 counts — a draining shard
// still answers queries for its in-flight sweeps, but new placements
// should avoid it, so "draining" bodies are treated as unhealthy). On
// the first success it also records the shard's build version and logs
// a skew warning once: mixed builds serve correctly (Job.Key excludes
// the version) but should not linger.
func (rt *Router) probe(sh *shard) bool {
	var health struct {
		Status string `json:"status"`
	}
	if err := sh.doJSON(rt.ctx, http.MethodGet, "/healthz", nil, probeTimeout, &health); err != nil {
		return false
	}
	if health.Status == "draining" {
		return false
	}
	sh.versionMu.Lock()
	known := sh.version != ""
	sh.versionMu.Unlock()
	if !known {
		var v struct {
			Version string `json:"version"`
		}
		if err := sh.doJSON(rt.ctx, http.MethodGet, "/v1/version", nil, probeTimeout, &v); err == nil && v.Version != "" {
			sh.versionMu.Lock()
			sh.version = v.Version
			sh.versionMu.Unlock()
			if v.Version != allarm.Version {
				rt.logf("shard %s: version skew: shard %s, router %s", sh.name, v.Version, allarm.Version)
			}
		}
	}
	return true
}

// specOf reconstructs the request-level workload spec of an expanded
// job: the inverse of ExpandSweep's resolve step. Trace workloads are
// named by their content-hash id, so the spec round-trips exactly.
func specOf(job allarm.Job) string {
	if job.Workload != nil {
		return "trace:" + job.Workload.Name()
	}
	return "bench:" + job.Benchmark
}

// buildSpecs encodes every expanded job as the JobSpec a shard will
// re-expand to the identical Job.Key: each job's own policy and — only
// when it differs from the request config — probe-filter size.
func buildSpecs(sweep *allarm.Sweep, req *server.SweepRequest) []server.JobSpec {
	baseCfg := server.RequestConfig(req.Config)
	specs := make([]server.JobSpec, sweep.Len())
	for i, job := range sweep.Jobs {
		js := server.JobSpec{
			Workload: specOf(job),
			Policy:   job.Config.Policy.String(),
		}
		if job.Config.PFBytes != baseCfg.PFBytes {
			js.PFKiB = job.Config.PFBytes >> 10
		}
		specs[i] = js
	}
	return specs
}

// subRequestFor builds the sub-sweep for one shard's share of st.
func subRequestFor(st *fleetSweep, globals []int) *server.SweepRequest {
	specs := make([]server.JobSpec, len(globals))
	for li, g := range globals {
		specs[li] = st.specs[g]
	}
	return &server.SweepRequest{Jobs: specs, Config: st.req.Config}
}

// handleSubmit is the scatter: expand the request exactly as a shard
// would, place every job by its key, journal the accepted sweep, and
// send each shard its jobs as an explicit JobSpec list in global spec
// order.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.SweepRequest
	body := http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sweep, err := server.ExpandSweep(&req, rt.lookupTrace)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := server.CheckJobQuota(r, sweep.Len()); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	if rt.ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("router is shutting down"))
		return
	}

	// Place every job against one membership snapshot. Placement is by
	// Job.Key, so two identical jobs — within this sweep or across
	// sweeps — always meet the same cache.
	mem := rt.mem.Load()
	assign := make(map[*shard][]int)
	for g, job := range sweep.Jobs {
		si := mem.ring.lookup(job.Key(), mem.alive)
		if si < 0 {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy shards"))
			return
		}
		assign[mem.shards[si]] = append(assign[mem.shards[si]], g)
	}

	views := make([]JobView, sweep.Len())
	for sh, globals := range assign {
		for _, g := range globals {
			job := sweep.Jobs[g]
			views[g] = JobView{
				Benchmark: job.WorkloadName(),
				Policy:    job.Config.Policy.String(),
				PFKiB:     job.Config.PFBytes >> 10,
				Shard:     sh.name,
				Status:    server.JobPending,
			}
		}
	}

	rt.mu.Lock()
	rt.nextID++
	id := fmt.Sprintf("fs-%06d", rt.nextID)
	st := newFleetSweep(id, views, time.Now())
	st.req = &req
	st.expanded = sweep.Jobs
	st.specs = buildSpecs(sweep, &req)
	st.reqID = obs.RequestID(r.Context())
	rt.sweeps[id] = st
	rt.order = append(rt.order, id)
	rt.mu.Unlock()
	st.timeline("accepted", -1, "", "")
	st.timeline("expanded", -1, "", fmt.Sprintf("%d job(s) over %d shard(s)", sweep.Len(), len(assign)))

	// Journal before acknowledging: once the client holds a 202, a crash
	// must not lose the sweep.
	rt.journalSweep(st)

	rt.met.sweepsSubmitted.Add(1)
	rt.met.jobsScattered.Add(uint64(sweep.Len()))
	rt.logf("sweep %s: %d jobs scattered over %d shards", id, sweep.Len(), len(assign))
	rt.active.Add(1)
	go rt.dispatch(st, assign)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, server.SubmitResponse{
		ID: id, Jobs: sweep.Len(),
		Status:  "/v1/sweeps/" + id,
		Results: "/v1/sweeps/" + id + "/results",
		Events:  "/v1/sweeps/" + id + "/events",
	})
}

// dispatch drives one wave of shard groups — the initial scatter, a
// recovery resume, or a requeue — and performs the sweep's one-time
// finish effects if this wave completed it.
func (rt *Router) dispatch(st *fleetSweep, groups map[*shard][]int) {
	defer rt.active.Done()
	begin := time.Now()
	var wg sync.WaitGroup
	for sh, globals := range groups {
		wg.Add(1)
		go func(sh *shard, globals []int) {
			defer wg.Done()
			rt.gatherGroup(st, sh, globals)
		}(sh, globals)
	}
	wg.Wait()
	rt.met.gathers.Add(1)
	rt.met.gatherNs.Add(uint64(time.Since(begin).Nanoseconds()))
	rt.met.gatherLatency.ObserveSince(begin)
	if status, ok := st.takeFinishNotice(); ok {
		st.timeline("done", -1, "", status)
		rt.journalSweep(st)
		if status == StatusDegraded {
			rt.met.sweepsDegraded.Add(1)
			rt.logf("sweep %s: degraded (%s)", st.id, time.Since(begin).Round(time.Millisecond))
		} else {
			rt.met.sweepsCompleted.Add(1)
			rt.logf("sweep %s: done (%s)", st.id, time.Since(begin).Round(time.Millisecond))
		}
	}
}

// gatherGroup runs one shard's share of a sweep. Failure past the retry
// budget degrades the group's jobs to skipped rows — then immediately
// asks the ring whether anyone else can own them (the failing shard may
// already be excluded), which turns a mid-sweep shard death into a
// re-dispatch instead of a permanent hole.
func (rt *Router) gatherGroup(st *fleetSweep, sh *shard, globals []int) {
	recs, err := rt.runShardSweep(st, sh, subRequestFor(st, globals), globals)
	if err != nil {
		if rt.ctx.Err() != nil {
			// Shutdown, not shard failure: leave the jobs un-terminal so
			// the journal keeps owing them — recovery resumes exactly here.
			return
		}
		rt.met.shardFailures.Add(1)
		rt.logf("sweep %s: shard %s lost %d jobs: %v", st.id, sh.name, len(globals), err)
		for _, g := range globals {
			serr := fmt.Errorf("shard %s: %w", sh.name, err)
			// Ownership-checked: a job migrated away mid-gather belongs to
			// its new shard now and must not be skip-marked here.
			if st.setRecordFrom(sh.name, g, allarm.RecordOf(allarm.SweepResult{Job: st.expanded[g], Err: serr})) {
				st.jobUpdateFrom(sh.name, g, server.JobSkipped, serr.Error())
			}
		}
		rt.checkpointSweep(st)
		rt.requeueSweep(st, "shard "+sh.name+" failed")
		return
	}
	for li, g := range globals {
		// Ownership-checked: drop rows for jobs a membership change
		// migrated to a new shard while this gather was in flight.
		if !st.setRecordFrom(sh.name, g, recs[li]) {
			continue
		}
		// Reconcile statuses the SSE stream may not have delivered
		// (idempotent: terminal states never regress).
		st.jobUpdateFrom(sh.name, g, statusOfRecord(recs[li]), recs[li].Error)
	}
	st.timeline("gathered", -1, sh.name, fmt.Sprintf("%d record(s)", len(recs)))
	rt.checkpointSweep(st)
}

// runShardSweep runs one shard's share: submit (re-uploading traces the
// shard turns out not to know), then watch its SSE stream for per-job
// progress while the status poll — which owns the completion decision
// and the retry budget — runs beside it, then fetch the finished
// records. Every bounded call carries ShardTimeout, so a hung shard
// costs at most the retry budget, never a stalled sweep.
func (rt *Router) runShardSweep(st *fleetSweep, sh *shard, req *server.SweepRequest, globals []int) ([]allarm.Record, error) {
	sh.jobsAssigned.Add(uint64(len(globals)))
	// Shard calls run on the router's lifetime context (the inbound
	// request returned 202 long ago), but carry the sweep's correlation
	// id so every hop — submit, polls, record fetch — logs it.
	ctx := obs.ContextWithRequestID(rt.ctx, st.reqID)

	var id string
	submit := func() error {
		var err error
		id, err = sh.submitSweep(ctx, req, rt.timeout)
		var he *httpError
		if err != nil && isHTTPError(err, &he) && he.status == http.StatusBadRequest &&
			strings.Contains(he.body, "unknown trace") {
			// The shard lost (or never saw) an uploaded trace — a
			// restart without a cache dir, or it joined after the
			// upload broadcast. Re-upload from the router's copy and
			// go again.
			if uerr := rt.reuploadTraces(ctx, sh, req); uerr != nil {
				return fmt.Errorf("%w (re-upload failed: %v)", err, uerr)
			}
			id, err = sh.submitSweep(ctx, req, rt.timeout)
		}
		return err
	}
	if err := rt.retry(ctx, sh, submit); err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}
	st.addShardRun(sh.name, id, globals)
	st.timeline("assigned", -1, sh.name, fmt.Sprintf("%d job(s) as shard sweep %s", len(globals), id))

	// The SSE stream is advisory progress (remapped local → global
	// indices); the poll below decides completion. Running them
	// concurrently means a stream that hangs silently — open socket, no
	// frames — can never stall the gather.
	sctx, scancel := context.WithCancel(ctx)
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		err := sh.streamEvents(sctx, id, func(ev sseEvent) {
			if ev.Type != "job" {
				return
			}
			var je struct {
				Index  int    `json:"index"`
				Status string `json:"status"`
				Error  string `json:"error,omitempty"`
			}
			if json.Unmarshal(ev.Data, &je) != nil || je.Index < 0 || je.Index >= len(globals) {
				return
			}
			st.jobUpdateFrom(sh.name, globals[je.Index], je.Status, je.Error)
		})
		if err != nil && ctx.Err() == nil && sctx.Err() == nil {
			rt.logf("sweep %s: shard %s: event stream broke, polling: %v", st.id, sh.name, err)
		}
	}()
	err := rt.awaitTerminal(ctx, sh, id, streamDone)
	scancel()
	<-streamDone
	if err != nil {
		return nil, err
	}

	var recs []allarm.Record
	fetch := func() error {
		var err error
		recs, err = sh.fetchRecords(ctx, id, rt.timeout)
		return err
	}
	if err := rt.retry(ctx, sh, fetch); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	if len(recs) != len(globals) {
		return nil, fmt.Errorf("shard returned %d records for %d jobs", len(recs), len(globals))
	}
	return recs, nil
}

// retry runs fn until it succeeds, returns a non-retryable error, or
// the attempt budget is exhausted. Waits come from retryDelay: full
// jitter over the exponential schedule, or the shard's own Retry-After
// on a 429.
func (rt *Router) retry(ctx context.Context, sh *shard, fn func() error) error {
	var err error
	for attempt := 0; attempt < rt.attempts; attempt++ {
		if attempt > 0 {
			sh.retries.Add(1)
			select {
			case <-time.After(rt.retryDelay(err, attempt)):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err = fn()
		if err == nil {
			return nil
		}
		if !retryable(err) {
			return err
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
	}
	return err
}

// retryDelay picks the wait before retry attempt (1-based): a throttled
// shard's Retry-After verbatim, otherwise a full-jitter draw over the
// doubling schedule — uniform in (0, backoff << (attempt-1)]. Full
// jitter keeps a fleet of retriers, all knocked back by the same
// outage, from re-arriving in one synchronized burst.
func (rt *Router) retryDelay(lastErr error, attempt int) time.Duration {
	var he *httpError
	if isHTTPError(lastErr, &he) && he.status == http.StatusTooManyRequests && he.retryAfter > 0 {
		return he.retryAfter
	}
	if attempt < 1 {
		attempt = 1
	}
	if attempt > 16 {
		attempt = 16 // past here the ceiling is minutes; cap the shift
	}
	ceil := rt.backoff << (attempt - 1)
	rt.rngMu.Lock()
	d := time.Duration(rt.rng.Int63n(int64(ceil)))
	rt.rngMu.Unlock()
	return d + 1
}

// awaitTerminal polls a shard sweep's status until it is final,
// tolerating up to the retry budget of consecutive poll failures.
// streamDone short-circuits one wait when the SSE stream ends (the
// sweep is usually final at that instant).
func (rt *Router) awaitTerminal(ctx context.Context, sh *shard, id string, streamDone <-chan struct{}) error {
	fails := 0
	for {
		v, err := sh.sweepStatus(ctx, id, rt.timeout)
		switch {
		case err != nil:
			if !retryable(err) {
				return fmt.Errorf("status: %w", err)
			}
			fails++
			if fails >= rt.attempts {
				return fmt.Errorf("status: %w", err)
			}
			sh.retries.Add(1)
		case v.Status == server.StatusDone || v.Status == server.StatusCheckpointed:
			return nil
		default:
			fails = 0
		}
		delay := rt.backoff
		poke := streamDone
		if err != nil {
			// A failed poll paces by the retry schedule — and a 429's
			// Retry-After in particular must not be short-circuited by
			// the stream ending.
			delay = rt.retryDelay(err, fails)
			poke = nil
		}
		select {
		case <-time.After(delay):
		case <-poke:
			streamDone = nil // poll immediately once; then pace normally
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// reuploadTraces pushes the router's copies of every trace the
// sub-sweep references to one shard.
func (rt *Router) reuploadTraces(ctx context.Context, sh *shard, req *server.SweepRequest) error {
	for _, id := range traceIDsOf(req) {
		rt.mu.Lock()
		entry, ok := rt.traces[id]
		rt.mu.Unlock()
		if !ok {
			return fmt.Errorf("trace %s: not held by this router (re-upload it)", id)
		}
		if err := sh.uploadTrace(ctx, entry.data, rt.timeout); err != nil {
			return fmt.Errorf("trace %s: %w", id, err)
		}
	}
	return nil
}

// traceIDsOf lists the distinct trace ids a request references.
func traceIDsOf(req *server.SweepRequest) []string {
	seen := make(map[string]bool)
	var ids []string
	add := func(spec string) {
		if id, ok := strings.CutPrefix(spec, "trace:"); ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for _, spec := range req.Workloads {
		add(spec)
	}
	for _, js := range req.Jobs {
		add(js.Workload)
	}
	return ids
}

// lookupTrace resolves an uploaded trace for sweep expansion.
func (rt *Router) lookupTrace(id string) allarm.Workload {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.traces[id].wl
}

// handleTraceUpload parses the trace locally (the router must expand
// "trace:ID" specs itself to compute placement keys), keeps the raw
// bytes for shard re-upload — journaled, so recovery can still expand
// and re-upload after a restart — and broadcasts the upload to every
// shard so sub-sweep submits do not each pay a 400-retry round trip.
func (rt *Router) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading trace: %w", err))
		return
	}
	// Same content-addressed id scheme as the shards, so the id a
	// client gets from the router is valid against any shard too.
	sum := sha256.Sum256(data)
	id := "tr-" + hex.EncodeToString(sum[:])

	rt.mu.Lock()
	_, exists := rt.traces[id]
	rt.mu.Unlock()
	var wl allarm.Workload
	if exists {
		wl = rt.lookupTrace(id)
	} else {
		wl, err = allarm.ReadTraceNamed(bytes.NewReader(data), id)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing trace: %w", err))
			return
		}
		rt.mu.Lock()
		if cur, ok := rt.traces[id]; ok {
			wl = cur.wl
		} else {
			rt.traces[id] = traceEntry{data: data, wl: wl}
			rt.trIDs = append(rt.trIDs, id)
			rt.journal.saveTrace(id, data)
			rt.evictTraces()
		}
		rt.mu.Unlock()
		rt.met.tracesUploaded.Add(1)
	}

	// Best-effort broadcast; a shard that misses it (down right now, or
	// evicts the trace later) is healed by the submit-time re-upload.
	mem := rt.mem.Load()
	var wg sync.WaitGroup
	for _, sh := range mem.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			if err := sh.uploadTrace(rt.ctx, data, rt.timeout); err != nil {
				rt.logf("trace %s: broadcast to %s: %v", id, sh.name, err)
			}
		}(sh)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, server.TraceResponse{ID: id, Workload: "trace:" + id, Threads: wl.Threads()})
}

func (rt *Router) lookup(id string) *fleetSweep {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.sweeps[id]
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	states := make([]*fleetSweep, 0, len(rt.order))
	for _, id := range rt.order {
		states = append(states, rt.sweeps[id])
	}
	rt.mu.Unlock()
	views := make([]SweepView, len(states))
	for i, st := range states {
		views[i] = st.view()
	}
	writeJSON(w, views)
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := rt.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, st.view())
}

// handleTimeline serves the fleet-wide merged timeline: the router's
// own lifecycle events interleaved chronologically with every
// dispatched shard sub-sweep's timeline, shard-local job indices
// remapped to global spec positions and each event tagged with the
// shard it came from. A shard that is gone (or whose timeline needs a
// scope the shard token lacks) degrades to the router-side view for
// its events, never an error. Admin-scoped under -auth, like pprof.
func (rt *Router) handleTimeline(w http.ResponseWriter, r *http.Request) {
	if err := server.CheckAdmin(r); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	st := rt.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	events := st.tl.Snapshot()
	mem := rt.mem.Load()
	ctx := obs.ContextWithRequestID(r.Context(), obs.RequestID(r.Context()))
	for _, run := range st.shardRunsSnapshot() {
		sh := mem.byName(run.shard)
		if sh == nil {
			continue // shard left the fleet; its events are unreachable
		}
		tv, err := sh.fetchTimeline(ctx, run.id, rt.timeout)
		if err != nil {
			rt.logf("sweep %s: shard %s timeline: %v", st.id, run.shard, err)
			continue
		}
		for _, e := range tv.Events {
			if e.Job >= 0 {
				if e.Job >= len(run.globals) {
					continue
				}
				e.Job = run.globals[e.Job]
			}
			e.Shard = run.shard
			events = append(events, e)
		}
	}
	obs.SortEvents(events)
	writeJSON(w, obs.TimelineView{ID: st.id, Events: events})
}

// handleDelete forgets a finished gather — from memory and from the
// journal. The shards retain their own sweeps and caches.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	st := rt.sweeps[id]
	if st == nil {
		rt.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	if !st.terminalState() {
		rt.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is still gathering; only finished sweeps can be deleted", id))
		return
	}
	delete(rt.sweeps, id)
	for i, oid := range rt.order {
		if oid == id {
			rt.order = append(rt.order[:i], rt.order[i+1:]...)
			break
		}
	}
	rt.mu.Unlock()
	rt.journal.removeSweep(id)
	w.WriteHeader(http.StatusNoContent)
}

// handleResults renders the gathered records through the same emitters
// and format negotiation a shard uses: byte-identical output, one code
// path.
func (rt *Router) handleResults(w http.ResponseWriter, r *http.Request) {
	st := rt.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	recs, status, ok := st.snapshot()
	if !ok {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s; results are available once it is done", st.id, status))
		return
	}
	format, err := server.NegotiateFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	emitter, ctype := server.FormatEmitter(format)
	w.Header().Set("Content-Type", ctype)
	if err := emitter.EmitRecords(w, recs); err != nil {
		rt.logf("sweep %s: emit: %v", st.id, err)
	}
}

// handleEvents streams the gather's progress as SSE, replaying full
// history to late subscribers — the same contract as a shard's stream,
// with job events carrying the owning shard and global indices. The
// finished channel is re-fetched each round: a requeue wave replaces
// it, and a subscriber must keep streaming through the re-open.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	st := rt.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	poke := st.subscribe()
	defer st.unsubscribe(poke)
	sent := 0
	for {
		evs, final := st.eventsSince(sent)
		for _, e := range evs {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, e.Data)
		}
		if len(evs) > 0 {
			sent += len(evs)
			flusher.Flush()
		}
		if final {
			if evs, _ := st.eventsSince(sent); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-poke:
		case <-r.Context().Done():
			return
		case <-st.finishedCh():
		}
	}
}

// handleHealthz reports the router and a per-shard health summary. The
// router itself is "ok" while any shard is placeable; "degraded" means
// new sweeps would be refused.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	mem := rt.mem.Load()
	healthy := 0
	shards := make(map[string]string, len(mem.shards))
	for _, sh := range mem.shards {
		if sh.isHealthy() {
			healthy++
			shards[sh.name] = "healthy"
		} else {
			shards[sh.name] = "unhealthy"
		}
	}
	status := "ok"
	if healthy == 0 {
		status = "degraded"
	}
	writeJSON(w, map[string]any{"status": status, "shards": shards})
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
