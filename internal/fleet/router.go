// Package fleet is the sharded serving layer behind cmd/allarm-router:
// a thin, stateless-by-design router that consistent-hashes each job of
// a sweep onto a fleet of allarm-serve backends, scatters per-shard
// sub-sweeps, and gathers the results back into global spec order.
//
// # Placement
//
// The sharding key is Job.Key — the same golden-tested fingerprint the
// shards' content-addressed result caches use. Hashing the cache key is
// the whole design: identical jobs always land on the same shard, so a
// re-submitted sweep is served entirely from the fleet's caches with
// zero re-simulations, and no shard ever holds a duplicate of another's
// work. The ring walks past unhealthy shards, so an outage moves only
// the victim's keys (and only while it is out).
//
// # Scatter/gather
//
// A sub-sweep is sent as an explicit JobSpec list in global spec order
// — the same SweepRequest the shard would accept from any client, so a
// shard needs no fleet awareness at all. Results come back as NDJSON
// Records and are re-rendered through the same emitters a single
// daemon uses (allarm.RecordEmitter), which makes gathered output
// byte-identical to a single-node run of the same request.
//
// # Degradation
//
// A shard that dies mid-sweep does not fail the gather: after the
// retry budget its jobs are reported as skipped rows (the error column
// names the shard) and the sweep finishes with status "degraded". The
// health loop excludes the shard from new placements after FailAfter
// consecutive probe failures and re-admits it on the first success.
package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	allarm "allarm"
	"allarm/internal/server"
)

// Tuning defaults.
const (
	// defaultReplicas is the ring points per shard; enough that removing
	// one shard spreads its keys roughly evenly over the survivors.
	defaultReplicas = 64
	// defaultHealthInterval paces /healthz probes.
	defaultHealthInterval = 2 * time.Second
	// defaultFailAfter is the consecutive probe failures before a shard
	// is excluded from placement.
	defaultFailAfter = 2
	// defaultAttempts bounds tries per shard call (1 + retries).
	defaultAttempts = 3
	// defaultRetryBackoff seeds the exponential retry backoff.
	defaultRetryBackoff = 100 * time.Millisecond
	// defaultRequestTimeout bounds non-streaming shard calls.
	defaultRequestTimeout = 30 * time.Second
	// probeTimeout bounds one health probe.
	probeTimeout = 2 * time.Second
	// maxSubmitBytes / maxTraceBytes mirror the shard-side request
	// bounds: the router must not accept what a shard would refuse.
	maxSubmitBytes = 1 << 20
	maxTraceBytes  = 64 << 20
	// maxTraces bounds retained trace uploads. The router keeps raw
	// bytes (for re-upload to amnesiac shards), so the bound is tighter
	// than a shard's.
	maxTraces = 16
)

// Options configures a Router.
type Options struct {
	// Shards are the allarm-serve base URLs (e.g. http://10.0.0.7:8347).
	// At least one is required. The set is fixed for the router's
	// lifetime; placement depends only on it, so every router with the
	// same set computes the same placement.
	Shards []string
	// ShardToken, when non-empty, is the bearer token presented to the
	// shards (their Guard credential). Independent of the router's own
	// Guard: clients authenticate to the router, the router to the fleet.
	ShardToken string
	// Replicas is the ring points per shard (<= 0: defaultReplicas).
	Replicas int
	// Guard, when non-nil, authenticates and rate-limits the router's
	// own clients and enforces their job quotas at submit time.
	Guard *server.Guard
	// HealthInterval paces shard health probes (<= 0: 2s).
	HealthInterval time.Duration
	// FailAfter is the consecutive probe failures before a shard is
	// excluded from new placements (<= 0: 2). One success re-admits it.
	FailAfter int
	// Attempts bounds tries per shard call (<= 0: 3). 4xx answers are
	// never retried.
	Attempts int
	// RetryBackoff seeds the exponential backoff between retries
	// (<= 0: 100ms).
	RetryBackoff time.Duration
	// RequestTimeout bounds non-streaming shard calls (<= 0: 30s).
	RequestTimeout time.Duration
	// Logf, when non-nil, receives one line per lifecycle event.
	Logf func(format string, args ...any)
}

// Router scatters sweeps over a shard fleet and gathers their results.
// Create with New, serve Handler, stop with Close. It holds no result
// state of its own — all caching lives in the shards — so a restarted
// router recomputes the same placement and the fleet's caches make the
// recovery cheap.
type Router struct {
	opts     Options
	shards   []*shard
	ring     *ring
	mux      *http.ServeMux
	handler  http.Handler
	ctx      context.Context
	cancel   context.CancelFunc
	start    time.Time
	attempts int
	backoff  time.Duration
	timeout  time.Duration

	met routerMetrics

	mu     sync.Mutex
	sweeps map[string]*fleetSweep
	order  []string
	nextID uint64
	traces map[string]traceEntry
	trIDs  []string // upload order, oldest first (eviction)

	active sync.WaitGroup // gather goroutines + health loop
}

// traceEntry keeps an upload's raw bytes (for re-upload to a shard that
// lost it) alongside the parsed workload (for local sweep expansion).
type traceEntry struct {
	data []byte
	wl   allarm.Workload
}

// New returns a ready Router with its health loop running.
func New(opts Options) (*Router, error) {
	if len(opts.Shards) == 0 {
		return nil, fmt.Errorf("fleet: at least one shard is required")
	}
	seen := make(map[string]bool, len(opts.Shards))
	shards := make([]*shard, 0, len(opts.Shards))
	names := make([]string, 0, len(opts.Shards))
	for _, raw := range opts.Shards {
		sh := newShard(raw, opts.ShardToken)
		if sh.name == "" {
			return nil, fmt.Errorf("fleet: empty shard URL")
		}
		if seen[sh.name] {
			return nil, fmt.Errorf("fleet: duplicate shard %s", sh.name)
		}
		seen[sh.name] = true
		shards = append(shards, sh)
		names = append(names, sh.name)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt := &Router{
		opts:     opts,
		shards:   shards,
		ring:     newRing(names, opts.Replicas),
		ctx:      ctx,
		cancel:   cancel,
		start:    time.Now(),
		attempts: opts.Attempts,
		backoff:  opts.RetryBackoff,
		timeout:  opts.RequestTimeout,
		sweeps:   make(map[string]*fleetSweep),
		traces:   make(map[string]traceEntry),
	}
	if rt.attempts <= 0 {
		rt.attempts = defaultAttempts
	}
	if rt.backoff <= 0 {
		rt.backoff = defaultRetryBackoff
	}
	if rt.timeout <= 0 {
		rt.timeout = defaultRequestTimeout
	}

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("POST /v1/sweeps", rt.handleSubmit)
	rt.mux.HandleFunc("GET /v1/sweeps", rt.handleList)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}", rt.handleStatus)
	rt.mux.HandleFunc("DELETE /v1/sweeps/{id}", rt.handleDelete)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}/results", rt.handleResults)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}/events", rt.handleEvents)
	rt.mux.HandleFunc("POST /v1/traces", rt.handleTraceUpload)
	rt.mux.HandleFunc("GET /v1/policies", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, allarm.DescribePolicies())
	})
	rt.mux.HandleFunc("GET /v1/benchmarks", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, allarm.DescribeBenchmarks())
	})
	rt.mux.HandleFunc("GET /v1/version", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"version": allarm.Version})
	})
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.handler = opts.Guard.Wrap(rt.mux)

	rt.active.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Handler returns the router's HTTP handler (behind the Guard when one
// is configured).
func (rt *Router) Handler() http.Handler { return rt.handler }

// Close stops the health loop and cancels in-flight gathers, waiting
// for them to unwind. Shard-side sweeps keep running — the shards own
// the work; a restarted router re-submits and the shard caches answer.
func (rt *Router) Close() {
	rt.cancel()
	rt.active.Wait()
}

func (rt *Router) logf(format string, args ...any) {
	if rt.opts.Logf != nil {
		rt.opts.Logf(format, args...)
	}
}

// alive is the ring's placement predicate.
func (rt *Router) alive(i int) bool { return rt.shards[i].isHealthy() }

// healthLoop probes every shard each interval, excluding and
// re-admitting them as their /healthz answers flip.
func (rt *Router) healthLoop() {
	defer rt.active.Done()
	interval := rt.opts.HealthInterval
	if interval <= 0 {
		interval = defaultHealthInterval
	}
	failAfter := rt.opts.FailAfter
	if failAfter <= 0 {
		failAfter = defaultFailAfter
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-rt.ctx.Done():
			return
		case <-t.C:
			rt.probeAll(failAfter)
		}
	}
}

// probeAll runs one health round across the fleet, concurrently.
func (rt *Router) probeAll(failAfter int) {
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			ok := rt.probe(sh)
			switch sh.probeResult(ok, failAfter, time.Now()) {
			case "excluded":
				rt.logf("shard %s: unhealthy, excluded from placement", sh.name)
			case "readmitted":
				rt.logf("shard %s: healthy again, re-admitted", sh.name)
			}
		}(sh)
	}
	wg.Wait()
}

// probe checks one shard's /healthz (any 200 counts — a draining shard
// still answers queries for its in-flight sweeps, but new placements
// should avoid it, so "draining" bodies are treated as unhealthy). On
// the first success it also records the shard's build version and logs
// a skew warning once: mixed builds serve correctly (Job.Key excludes
// the version) but should not linger.
func (rt *Router) probe(sh *shard) bool {
	var health struct {
		Status string `json:"status"`
	}
	if err := sh.doJSON(rt.ctx, http.MethodGet, "/healthz", nil, probeTimeout, &health); err != nil {
		return false
	}
	if health.Status == "draining" {
		return false
	}
	sh.versionMu.Lock()
	known := sh.version != ""
	sh.versionMu.Unlock()
	if !known {
		var v struct {
			Version string `json:"version"`
		}
		if err := sh.doJSON(rt.ctx, http.MethodGet, "/v1/version", nil, probeTimeout, &v); err == nil && v.Version != "" {
			sh.versionMu.Lock()
			sh.version = v.Version
			sh.versionMu.Unlock()
			if v.Version != allarm.Version {
				rt.logf("shard %s: version skew: shard %s, router %s", sh.name, v.Version, allarm.Version)
			}
		}
	}
	return true
}

// specOf reconstructs the request-level workload spec of an expanded
// job: the inverse of ExpandSweep's resolve step. Trace workloads are
// named by their content-hash id, so the spec round-trips exactly.
func specOf(job allarm.Job) string {
	if job.Workload != nil {
		return "trace:" + job.Workload.Name()
	}
	return "bench:" + job.Benchmark
}

// handleSubmit is the scatter: expand the request exactly as a shard
// would, place every job by its key, and send each shard its jobs as an
// explicit JobSpec list in global spec order.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req server.SweepRequest
	body := http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	sweep, err := server.ExpandSweep(&req, rt.lookupTrace)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := server.CheckJobQuota(r, sweep.Len()); err != nil {
		writeError(w, http.StatusForbidden, err)
		return
	}
	if rt.ctx.Err() != nil {
		writeError(w, http.StatusServiceUnavailable, fmt.Errorf("router is shutting down"))
		return
	}

	// Place every job. Placement is by Job.Key, so two identical jobs —
	// within this sweep or across sweeps — always meet the same cache.
	baseCfg := server.RequestConfig(req.Config)
	assign := make(map[int][]int) // shard index -> global job indices
	for g, job := range sweep.Jobs {
		si := rt.ring.lookup(job.Key(), rt.alive)
		if si < 0 {
			writeError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy shards"))
			return
		}
		assign[si] = append(assign[si], g)
	}

	// Build the per-shard sub-sweeps: explicit JobSpec lists carrying
	// each job's own policy and probe-filter size, zero-valued where the
	// request config already supplies them — so the shard expands every
	// spec to a Job whose Key equals the one placement hashed.
	sub := make(map[int]*server.SweepRequest, len(assign))
	for si, globals := range assign {
		specs := make([]server.JobSpec, len(globals))
		for li, g := range globals {
			job := sweep.Jobs[g]
			js := server.JobSpec{
				Workload: specOf(job),
				Policy:   job.Config.Policy.String(),
			}
			if job.Config.PFBytes != baseCfg.PFBytes {
				js.PFKiB = job.Config.PFBytes >> 10
			}
			specs[li] = js
		}
		sub[si] = &server.SweepRequest{Jobs: specs, Config: req.Config}
	}

	views := make([]JobView, sweep.Len())
	for si, globals := range assign {
		for _, g := range globals {
			job := sweep.Jobs[g]
			views[g] = JobView{
				Benchmark: job.WorkloadName(),
				Policy:    job.Config.Policy.String(),
				PFKiB:     job.Config.PFBytes >> 10,
				Shard:     rt.shards[si].name,
				Status:    server.JobPending,
			}
		}
	}

	rt.mu.Lock()
	rt.nextID++
	id := fmt.Sprintf("fs-%06d", rt.nextID)
	st := newFleetSweep(id, views, time.Now())
	rt.sweeps[id] = st
	rt.order = append(rt.order, id)
	rt.mu.Unlock()

	rt.met.sweepsSubmitted.Add(1)
	rt.met.jobsScattered.Add(uint64(sweep.Len()))
	rt.logf("sweep %s: %d jobs scattered over %d shards", id, sweep.Len(), len(assign))
	rt.active.Add(1)
	go rt.runFleetSweep(st, sweep, sub, assign)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, server.SubmitResponse{
		ID: id, Jobs: sweep.Len(),
		Status:  "/v1/sweeps/" + id,
		Results: "/v1/sweeps/" + id + "/results",
		Events:  "/v1/sweeps/" + id + "/events",
	})
}

// runFleetSweep drives one gather: each assigned shard's sub-sweep runs
// in its own goroutine; a shard that fails past the retry budget has
// its jobs synthesised as skipped rows instead of failing the sweep.
func (rt *Router) runFleetSweep(st *fleetSweep, sweep *allarm.Sweep, sub map[int]*server.SweepRequest, assign map[int][]int) {
	defer rt.active.Done()
	begin := time.Now()
	var wg sync.WaitGroup
	var degraded atomic.Bool
	for si, req := range sub {
		wg.Add(1)
		go func(si int, req *server.SweepRequest, globals []int) {
			defer wg.Done()
			sh := rt.shards[si]
			recs, err := rt.runShardSweep(st, sh, req, globals)
			if err != nil {
				degraded.Store(true)
				rt.met.shardFailures.Add(1)
				rt.logf("sweep %s: shard %s lost %d jobs: %v", st.id, sh.name, len(globals), err)
				for _, g := range globals {
					serr := fmt.Errorf("shard %s: %w", sh.name, err)
					st.setRecord(g, allarm.RecordOf(allarm.SweepResult{Job: sweep.Jobs[g], Err: serr}))
					st.jobUpdate(g, server.JobSkipped, serr.Error())
				}
				return
			}
			for li, g := range globals {
				st.setRecord(g, recs[li])
				// Reconcile statuses the SSE stream may not have
				// delivered (idempotent: terminal states never regress).
				st.jobUpdate(g, statusOfRecord(recs[li]), recs[li].Error)
			}
		}(si, req, assign[si])
	}
	wg.Wait()
	st.finish(degraded.Load())
	rt.met.gathers.Add(1)
	rt.met.gatherNs.Add(uint64(time.Since(begin).Nanoseconds()))
	if degraded.Load() {
		rt.met.sweepsDegraded.Add(1)
		rt.logf("sweep %s: degraded (%s)", st.id, time.Since(begin).Round(time.Millisecond))
		return
	}
	rt.met.sweepsCompleted.Add(1)
	rt.logf("sweep %s: done (%s)", st.id, time.Since(begin).Round(time.Millisecond))
}

// runShardSweep runs one shard's share: submit (re-uploading traces the
// shard turns out not to know), watch its SSE stream for per-job
// progress, then fetch the finished records. Every step retries with
// backoff; an exhausted budget surfaces as the shard's failure.
func (rt *Router) runShardSweep(st *fleetSweep, sh *shard, req *server.SweepRequest, globals []int) ([]allarm.Record, error) {
	sh.jobsAssigned.Add(uint64(len(globals)))
	ctx := rt.ctx

	var id string
	submit := func() error {
		var err error
		id, err = sh.submitSweep(ctx, req, rt.timeout)
		var he *httpError
		if err != nil && isHTTPError(err, &he) && he.status == http.StatusBadRequest &&
			strings.Contains(he.body, "unknown trace") {
			// The shard lost (or never saw) an uploaded trace — a
			// restart without a cache dir, or it joined after the
			// upload broadcast. Re-upload from the router's copy and
			// go again.
			if uerr := rt.reuploadTraces(ctx, sh, req); uerr != nil {
				return fmt.Errorf("%w (re-upload failed: %v)", err, uerr)
			}
			id, err = sh.submitSweep(ctx, req, rt.timeout)
		}
		return err
	}
	if err := sh.retry(ctx, rt.attempts, rt.backoff, submit); err != nil {
		return nil, fmt.Errorf("submit: %w", err)
	}

	// Watch the shard's SSE stream, remapping local job indices into
	// global spec positions. The stream ends when the shard sweep is
	// final; a broken stream (shard died mid-sweep) falls through to the
	// status poll, which owns the retry budget.
	streamErr := sh.streamEvents(ctx, id, func(ev sseEvent) {
		if ev.Type != "job" {
			return
		}
		var je struct {
			Index  int    `json:"index"`
			Status string `json:"status"`
			Error  string `json:"error,omitempty"`
		}
		if json.Unmarshal(ev.Data, &je) != nil || je.Index < 0 || je.Index >= len(globals) {
			return
		}
		st.jobUpdate(globals[je.Index], je.Status, je.Error)
	})
	if streamErr != nil {
		rt.logf("sweep %s: shard %s: event stream broke, polling: %v", st.id, sh.name, streamErr)
	}
	if err := rt.awaitTerminal(ctx, sh, id); err != nil {
		return nil, err
	}

	var recs []allarm.Record
	fetch := func() error {
		var err error
		recs, err = sh.fetchRecords(ctx, id, rt.timeout)
		return err
	}
	if err := sh.retry(ctx, rt.attempts, rt.backoff, fetch); err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	if len(recs) != len(globals) {
		return nil, fmt.Errorf("shard returned %d records for %d jobs", len(recs), len(globals))
	}
	return recs, nil
}

// awaitTerminal polls a shard sweep's status until it is final,
// tolerating up to the retry budget of consecutive poll failures.
func (rt *Router) awaitTerminal(ctx context.Context, sh *shard, id string) error {
	fails := 0
	for {
		v, err := sh.sweepStatus(ctx, id, rt.timeout)
		switch {
		case err != nil:
			fails++
			if fails >= rt.attempts {
				return fmt.Errorf("status: %w", err)
			}
			sh.retries.Add(1)
		case v.Status == server.StatusDone || v.Status == server.StatusCheckpointed:
			return nil
		default:
			fails = 0
		}
		select {
		case <-time.After(rt.backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// reuploadTraces pushes the router's copies of every trace the
// sub-sweep references to one shard.
func (rt *Router) reuploadTraces(ctx context.Context, sh *shard, req *server.SweepRequest) error {
	for _, id := range traceIDsOf(req) {
		rt.mu.Lock()
		entry, ok := rt.traces[id]
		rt.mu.Unlock()
		if !ok {
			return fmt.Errorf("trace %s: not held by this router (re-upload it)", id)
		}
		if err := sh.uploadTrace(ctx, entry.data, rt.timeout); err != nil {
			return fmt.Errorf("trace %s: %w", id, err)
		}
	}
	return nil
}

// traceIDsOf lists the distinct trace ids a request references.
func traceIDsOf(req *server.SweepRequest) []string {
	seen := make(map[string]bool)
	var ids []string
	add := func(spec string) {
		if id, ok := strings.CutPrefix(spec, "trace:"); ok && !seen[id] {
			seen[id] = true
			ids = append(ids, id)
		}
	}
	for _, spec := range req.Workloads {
		add(spec)
	}
	for _, js := range req.Jobs {
		add(js.Workload)
	}
	return ids
}

// lookupTrace resolves an uploaded trace for sweep expansion.
func (rt *Router) lookupTrace(id string) allarm.Workload {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.traces[id].wl
}

// handleTraceUpload parses the trace locally (the router must expand
// "trace:ID" specs itself to compute placement keys), keeps the raw
// bytes for shard re-upload, and broadcasts the upload to every shard
// so sub-sweep submits do not each pay a 400-retry round trip.
func (rt *Router) handleTraceUpload(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTraceBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading trace: %w", err))
		return
	}
	// Same content-addressed id scheme as the shards, so the id a
	// client gets from the router is valid against any shard too.
	sum := sha256.Sum256(data)
	id := "tr-" + hex.EncodeToString(sum[:])

	rt.mu.Lock()
	_, exists := rt.traces[id]
	rt.mu.Unlock()
	var wl allarm.Workload
	if exists {
		wl = rt.lookupTrace(id)
	} else {
		wl, err = allarm.ReadTraceNamed(bytes.NewReader(data), id)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("parsing trace: %w", err))
			return
		}
		rt.mu.Lock()
		if cur, ok := rt.traces[id]; ok {
			wl = cur.wl
		} else {
			rt.traces[id] = traceEntry{data: data, wl: wl}
			rt.trIDs = append(rt.trIDs, id)
			for len(rt.trIDs) > maxTraces {
				delete(rt.traces, rt.trIDs[0])
				rt.trIDs = rt.trIDs[1:]
			}
		}
		rt.mu.Unlock()
		rt.met.tracesUploaded.Add(1)
	}

	// Best-effort broadcast; a shard that misses it (down right now, or
	// evicts the trace later) is healed by the submit-time re-upload.
	var wg sync.WaitGroup
	for _, sh := range rt.shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			if err := sh.uploadTrace(rt.ctx, data, rt.timeout); err != nil {
				rt.logf("trace %s: broadcast to %s: %v", id, sh.name, err)
			}
		}(sh)
	}
	wg.Wait()

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, server.TraceResponse{ID: id, Workload: "trace:" + id, Threads: wl.Threads()})
}

func (rt *Router) lookup(id string) *fleetSweep {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.sweeps[id]
}

func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	states := make([]*fleetSweep, 0, len(rt.order))
	for _, id := range rt.order {
		states = append(states, rt.sweeps[id])
	}
	rt.mu.Unlock()
	views := make([]SweepView, len(states))
	for i, st := range states {
		views[i] = st.view()
	}
	writeJSON(w, views)
}

func (rt *Router) handleStatus(w http.ResponseWriter, r *http.Request) {
	st := rt.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	writeJSON(w, st.view())
}

// handleDelete forgets a finished gather. Purely a router-memory
// operation: the shards retain their own sweeps and caches.
func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	st := rt.sweeps[id]
	if st == nil {
		rt.mu.Unlock()
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", id))
		return
	}
	if !st.terminalState() {
		rt.mu.Unlock()
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is still gathering; only finished sweeps can be deleted", id))
		return
	}
	delete(rt.sweeps, id)
	for i, oid := range rt.order {
		if oid == id {
			rt.order = append(rt.order[:i], rt.order[i+1:]...)
			break
		}
	}
	rt.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// handleResults renders the gathered records through the same emitters
// and format negotiation a shard uses: byte-identical output, one code
// path.
func (rt *Router) handleResults(w http.ResponseWriter, r *http.Request) {
	st := rt.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	recs, status, ok := st.snapshot()
	if !ok {
		writeError(w, http.StatusConflict, fmt.Errorf("sweep %s is %s; results are available once it is done", st.id, status))
		return
	}
	format, err := server.NegotiateFormat(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	emitter, ctype := server.FormatEmitter(format)
	w.Header().Set("Content-Type", ctype)
	if err := emitter.EmitRecords(w, recs); err != nil {
		rt.logf("sweep %s: emit: %v", st.id, err)
	}
}

// handleEvents streams the gather's progress as SSE, replaying full
// history to late subscribers — the same contract as a shard's stream,
// with job events carrying the owning shard and global indices.
func (rt *Router) handleEvents(w http.ResponseWriter, r *http.Request) {
	st := rt.lookup(r.PathValue("id"))
	if st == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown sweep %q", r.PathValue("id")))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	poke := st.subscribe()
	defer st.unsubscribe(poke)
	sent := 0
	for {
		evs, final := st.eventsSince(sent)
		for _, e := range evs {
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, e.Data)
		}
		if len(evs) > 0 {
			sent += len(evs)
			flusher.Flush()
		}
		if final {
			if evs, _ := st.eventsSince(sent); len(evs) == 0 {
				return
			}
			continue
		}
		select {
		case <-poke:
		case <-r.Context().Done():
			return
		case <-st.finished:
		}
	}
}

// handleHealthz reports the router and a per-shard health summary. The
// router itself is "ok" while any shard is placeable; "degraded" means
// new sweeps would be refused.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	shards := make(map[string]string, len(rt.shards))
	for _, sh := range rt.shards {
		if sh.isHealthy() {
			healthy++
			shards[sh.name] = "healthy"
		} else {
			shards[sh.name] = "unhealthy"
		}
	}
	status := "ok"
	if healthy == 0 {
		status = "degraded"
	}
	writeJSON(w, map[string]any{"status": status, "shards": shards})
}

func writeJSON(w http.ResponseWriter, v any) {
	if w.Header().Get("Content-Type") == "" {
		w.Header().Set("Content-Type", "application/json")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
