package noc

import (
	"fmt"

	"allarm/internal/checkpoint"
	"allarm/internal/sim"
)

// EncodeState writes the mesh's mutable state: per-link next-free times
// (link contention carries across a checkpoint) and traffic statistics.
// The route scratch buffer is transient and not part of machine state.
func (m *Mesh) EncodeState(e *checkpoint.Encoder) {
	e.Section("noc")
	e.Len(len(m.free))
	for _, t := range m.free {
		e.I64(int64(t))
	}
	checkpoint.EncodeStruct(e, &m.stats)
}

// DecodeState overwrites the mesh's mutable state. The mesh must have
// the geometry the checkpoint was taken with.
func (m *Mesh) DecodeState(d *checkpoint.Decoder) error {
	d.Expect("noc")
	n := d.Len(len(m.free))
	if err := d.Err(); err != nil {
		return err
	}
	if n != len(m.free) {
		return fmt.Errorf("noc: checkpoint has %d links, mesh has %d", n, len(m.free))
	}
	for i := range m.free {
		m.free[i] = sim.Time(d.I64())
	}
	checkpoint.DecodeStruct(d, &m.stats)
	return d.Err()
}
