package coherence

import (
	"fmt"

	"allarm/internal/cache"
	"allarm/internal/mem"
	"allarm/internal/sim"
)

// CtrlStats counts cache-controller events.
type CtrlStats struct {
	Requests     uint64 // GetS/GetM sent
	Fills        uint64
	ProbesServed uint64
	PutMs        uint64
	PutEs        uint64
	// UntrackedFills counts ALLARM fills granted without a probe-filter
	// entry (thread-local service path).
	UntrackedFills uint64
}

// CacheCtrl is one node's cache-side coherence controller, fronting the
// private L1/L2 hierarchy. It services core accesses (one outstanding
// demand miss, matching the in-order cores of the evaluated system) and
// answers coherence probes.
type CacheCtrl struct {
	node mem.NodeID
	hier *cache.Hierarchy
	eng  *sim.Engine
	port Port
	home func(mem.PAddr) mem.NodeID

	// serviceTime is the tag/data array occupancy per operation (Table I:
	// 1 ns cache access latency); probes and demand accesses contend for
	// it through nextFree.
	serviceTime sim.Time
	nextFree    sim.Time

	pending *mshr

	// OnStore and OnLoad, when non-nil, observe every committed store
	// (with the line's new version) and completed load (with the version
	// read). The system's invariant checker uses them; they are nil in
	// performance runs.
	OnStore func(addr mem.PAddr, version uint64)
	OnLoad  func(addr mem.PAddr, version uint64)

	stats CtrlStats
}

// mshr is the single outstanding demand miss.
type mshr struct {
	addr   mem.PAddr
	write  bool
	issued sim.Time
	done   func(now sim.Time)
}

// NewCacheCtrl builds a controller for node over hier, sending messages
// through port and resolving line homes with home.
func NewCacheCtrl(node mem.NodeID, hier *cache.Hierarchy, eng *sim.Engine, port Port, home func(mem.PAddr) mem.NodeID, serviceTime sim.Time) *CacheCtrl {
	return &CacheCtrl{
		node:        node,
		hier:        hier,
		eng:         eng,
		port:        port,
		home:        home,
		serviceTime: serviceTime,
	}
}

// Node returns the controller's node ID.
func (c *CacheCtrl) Node() mem.NodeID { return c.node }

// Hierarchy exposes the private caches (stats, invariant checks).
func (c *CacheCtrl) Hierarchy() *cache.Hierarchy { return c.hier }

// Stats returns a copy of the controller statistics.
func (c *CacheCtrl) Stats() CtrlStats { return c.stats }

// HasPending reports whether a demand miss is outstanding (test helper).
func (c *CacheCtrl) HasPending() bool { return c.pending != nil }

// ResetStats zeroes the controller and hierarchy counters, keeping cache
// contents (measurement begins after warmup).
func (c *CacheCtrl) ResetStats() {
	c.stats = CtrlStats{}
	c.hier.ResetStats()
}

// occupy reserves the tag/data arrays for one operation starting no
// earlier than now and returns the operation's completion time.
func (c *CacheCtrl) occupy(now sim.Time) sim.Time {
	start := now
	if c.nextFree > start {
		start = c.nextFree
	}
	c.nextFree = start + c.serviceTime
	return c.nextFree
}

// CoreAccess performs a demand load (write=false) or store (write=true)
// to addr. done runs when the access completes (hit latency for hits; the
// full coherence transaction for misses). At most one access may be
// outstanding.
func (c *CacheCtrl) CoreAccess(now sim.Time, addr mem.PAddr, write bool, done func(now sim.Time)) {
	if c.pending != nil {
		panic(fmt.Sprintf("coherence: node %d issued a second outstanding access", c.node))
	}
	addr = mem.LineOf(addr)
	t := c.occupy(now)
	res := c.hier.Access(addr, write)
	if res.Level == 2 {
		t = c.occupy(t) // second array access for the L2 swap
	}
	c.sendPuts(res.Victims)

	if res.Outcome == cache.Hit {
		l := c.hier.PeekLine(addr)
		if l == nil {
			panic("coherence: hit without a line")
		}
		if write {
			if !l.State.Writable() {
				panic("coherence: store hit without writable line")
			}
			l.Version++
			if c.OnStore != nil {
				c.OnStore(addr, l.Version)
			}
		} else if c.OnLoad != nil {
			c.OnLoad(addr, l.Version)
		}
		c.eng.At(t, done)
		return
	}

	op := GetS
	if write {
		op = GetM
	}
	c.pending = &mshr{addr: addr, write: write, issued: now, done: done}
	c.stats.Requests++
	c.port.Send(&Msg{
		Op: op, Addr: addr, Src: c.node, Dst: c.home(addr), ToDir: true,
	})
}

// HandleMsg processes a message delivered to this node's cache controller.
func (c *CacheCtrl) HandleMsg(now sim.Time, m *Msg) {
	switch m.Op {
	case DataMsg:
		c.handleFill(now, m)
	case PrbInv, PrbDown, PrbLocal:
		c.handleProbe(now, m)
	default:
		panic(fmt.Sprintf("coherence: cache controller received %v", m))
	}
}

func (c *CacheCtrl) handleFill(now sim.Time, m *Msg) {
	p := c.pending
	if p == nil || p.addr != m.Addr {
		panic(fmt.Sprintf("coherence: node %d fill %v without matching MSHR", c.node, m))
	}
	c.pending = nil
	c.stats.Fills++
	if m.Untracked {
		c.stats.UntrackedFills++
	}
	t := c.occupy(now)

	version := m.Version
	// An upgrade grant can race a stale-but-older DRAM copy: if we still
	// hold the line with newer data (we were the O-state owner asking for
	// ownership), our version wins.
	if l := c.hier.PeekLine(m.Addr); l != nil && l.Version > version {
		version = l.Version
	}
	grant := m.Grant
	if p.write {
		if !grant.Writable() {
			panic(fmt.Sprintf("coherence: store fill granted non-writable state %v", grant))
		}
		grant = cache.Modified
		version++ // the store commits into the filled line
	}
	victims := c.hier.Fill(m.Addr, grant, m.Untracked, version)
	c.sendPuts(victims)
	if p.write {
		if c.OnStore != nil {
			c.OnStore(m.Addr, version)
		}
	} else if c.OnLoad != nil {
		c.OnLoad(m.Addr, version)
	}

	// Close the transaction at the home (AMD Hammer's SrcDone): the home
	// keeps the line busy until this arrives, which guarantees any probe
	// we receive for a line with a pending MSHR belongs to an older
	// transaction and can be answered from current state.
	c.port.Send(&Msg{
		Op: CmpAck, Addr: m.Addr, Src: c.node, Dst: c.home(m.Addr), ToDir: true,
		TxnID: m.TxnID,
	})
	c.eng.At(t, p.done)
}

// handleProbe answers PrbInv / PrbDown / PrbLocal after queueing for the
// arrays. Owner states (M, O, E) forward data directly to m.ForwardTo
// when set; dirty data with no forward destination returns to the home
// for DRAM writeback (back-invalidation).
func (c *CacheCtrl) handleProbe(now sim.Time, m *Msg) {
	t := c.occupy(now)
	if m.Op == PrbLocal {
		// ALLARM's state query walks both private levels (L1 and L2 tag
		// arrays), stealing a second cycle of array bandwidth from the
		// local core — the "modest overhead" of §III-A1.
		t = c.occupy(t)
	}
	c.stats.ProbesServed++

	invalidate := m.Op == PrbInv || (m.Op == PrbLocal && m.Mode == GetM)

	var prev cache.State
	var version uint64
	if l := c.hier.PeekLine(m.Addr); l != nil {
		prev = l.State
		version = l.Version
	}

	owner := prev == cache.Modified || prev == cache.Owned || prev == cache.Exclusive
	dirty := prev.Dirty()

	if invalidate {
		c.hier.Invalidate(m.Addr)
	} else {
		c.hier.Downgrade(m.Addr)
	}

	ack := &Msg{
		Op: Ack, Addr: m.Addr, Src: c.node, Dst: m.Src, ToDir: true,
		Hit: prev.Valid(), PrevState: prev, Version: version, TxnID: m.TxnID,
	}
	if owner && m.ForwardTo != NoNode {
		// Cache-to-cache transfer straight to the requester.
		c.sendAt(t, &Msg{
			Op: DataMsg, Addr: m.Addr, Src: c.node, Dst: m.ForwardTo,
			Grant: m.Grant, Version: version, TxnID: m.TxnID,
		})
	} else if owner && dirty {
		// Back-invalidation (or downgrade) with no requester: dirty data
		// returns to the home for DRAM writeback.
		ack.Op = AckData
		ack.Dirty = true
	}
	c.sendAt(t, ack)
}

// sendAt injects m when the arrays release it (the controller's port is
// modelled as available at service completion).
func (c *CacheCtrl) sendAt(t sim.Time, m *Msg) {
	if t <= c.eng.Now() {
		c.port.Send(m)
		return
	}
	c.eng.At(t, func(sim.Time) { c.port.Send(m) })
}

// sendPuts issues eviction notifications for hierarchy victims: PutM for
// dirty lines (M/O), PutE for clean-exclusive lines. Victims of untracked
// ALLARM lines are homed at this node, so these messages never cross the
// NoC for thread-local data.
func (c *CacheCtrl) sendPuts(victims []cache.Victim) {
	for _, v := range victims {
		switch v.State {
		case cache.Modified, cache.Owned:
			c.stats.PutMs++
			c.port.Send(&Msg{
				Op: PutM, Addr: v.Addr, Src: c.node, Dst: c.home(v.Addr), ToDir: true,
				Dirty: true, Version: v.Version, PrevState: v.State,
			})
		case cache.Exclusive:
			c.stats.PutEs++
			c.port.Send(&Msg{
				Op: PutE, Addr: v.Addr, Src: c.node, Dst: c.home(v.Addr), ToDir: true,
				PrevState: v.State,
			})
		default:
			panic(fmt.Sprintf("coherence: victim in unexpected state %v", v.State))
		}
	}
}
