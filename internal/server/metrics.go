package server

import "allarm/internal/obs"

// metrics are the daemon's monotonic counters plus the latency/size
// histograms, all registered in an obs.Registry so GET /metrics can
// serve both the flat JSON object (unchanged shape) and Prometheus
// text exposition from the same source. Counters are bumped from
// worker goroutines and read from handlers; everything is atomic.
type metrics struct {
	reg                *obs.Registry
	sweepsSubmitted    *obs.Counter
	sweepsCompleted    *obs.Counter
	sweepsCheckpointed *obs.Counter
	sweepsRecovered    *obs.Counter
	sweepsDeleted      *obs.Counter
	sweepsExpired      *obs.Counter
	jobsRun            *obs.Counter
	jobsAborted        *obs.Counter
	jobErrors          *obs.Counter
	cacheHits          *obs.Counter
	cacheDiskHits      *obs.Counter
	cacheMisses        *obs.Counter
	coalesced          *obs.Counter
	tracesUploaded     *obs.Counter
	simEvents          *obs.Counter
	simWallNs          *obs.Counter
	checkpointsWritten *obs.Counter
	checkpointBytes    *obs.Counter
	jobsResumed        *obs.Counter
	jobsPreempted      *obs.Counter

	// Latency/size distributions (Prometheus-only; the JSON object stays
	// flat counters). Samples are nanoseconds or bytes; exposition
	// scales to seconds.
	jobDuration *obs.Histogram // wall time actually simulating a job
	queueWait   *obs.Histogram // pool-slot wait before a job starts
	ckptWrite   *obs.Histogram // one machine-state checkpoint write
	ckptSize    *obs.Histogram // bytes per machine-state checkpoint
}

// newMetrics registers every counter and histogram family under the
// allarm_ prefix. Gauges that need the Server (uptime, active sweeps,
// cache occupancy) are registered by New once the Server exists.
func newMetrics() *metrics {
	reg := obs.NewRegistry()
	m := &metrics{
		reg:                reg,
		sweepsSubmitted:    reg.Counter("allarm_sweeps_submitted_total", "Sweeps accepted by POST /v1/sweeps."),
		sweepsCompleted:    reg.Counter("allarm_sweeps_completed_total", "Sweeps that reached a terminal status."),
		sweepsCheckpointed: reg.Counter("allarm_sweeps_checkpointed_total", "Sweeps checkpointed with partial results at drain."),
		sweepsRecovered:    reg.Counter("allarm_sweeps_recovered_total", "Unfinished sweeps re-enqueued from disk at boot."),
		sweepsDeleted:      reg.Counter("allarm_sweeps_deleted_total", "Sweeps evicted by DELETE /v1/sweeps/{id}."),
		sweepsExpired:      reg.Counter("allarm_sweeps_expired_total", "Finished sweeps evicted by the -retain reaper."),
		jobsRun:            reg.Counter("allarm_jobs_run_total", "Jobs actually simulated (cache misses that ran)."),
		jobsAborted:        reg.Counter("allarm_jobs_aborted_total", "Jobs cancelled mid-simulation by drain."),
		jobErrors:          reg.Counter("allarm_job_errors_total", "Jobs that failed with an error."),
		cacheHits:          reg.Counter("allarm_cache_hits_total", "Results served from the in-memory cache."),
		cacheDiskHits:      reg.Counter("allarm_cache_disk_hits_total", "Results served from the persistent store."),
		cacheMisses:        reg.Counter("allarm_cache_misses_total", "Jobs absent from every cache tier."),
		coalesced:          reg.Counter("allarm_inflight_coalesced_total", "Duplicate concurrent jobs joined to one in-flight run."),
		tracesUploaded:     reg.Counter("allarm_traces_uploaded_total", "Traces accepted by POST /v1/traces."),
		simEvents:          reg.Counter("allarm_sim_events_total", "Simulation events executed across all jobs."),
		simWallNs:          reg.Counter("allarm_sim_busy_nanoseconds_total", "Wall-clock nanoseconds spent actually simulating."),
		checkpointsWritten: reg.Counter("allarm_checkpoints_written_total", "Machine-state job checkpoints persisted."),
		checkpointBytes:    reg.Counter("allarm_checkpoint_bytes_total", "Bytes of machine-state checkpoints persisted."),
		jobsResumed:        reg.Counter("allarm_jobs_resumed_total", "Jobs continued from a checkpoint instead of event zero."),
		jobsPreempted:      reg.Counter("allarm_jobs_preempted_total", "Jobs that yielded their pool slot at a checkpoint boundary."),

		jobDuration: reg.Histogram("allarm_job_duration_seconds",
			"Wall time simulating one job.",
			1e-9, obs.ExpBuckets(1_000_000, 4_000_000_000_000)), // 1ms .. ~67min
		queueWait: reg.Histogram("allarm_job_queue_wait_seconds",
			"Time a job waited for a worker-pool slot.",
			1e-9, obs.ExpBuckets(100_000, 1_000_000_000_000)), // 100µs .. ~17min
		ckptWrite: reg.Histogram("allarm_checkpoint_write_seconds",
			"Duration of one machine-state checkpoint write.",
			1e-9, obs.ExpBuckets(100_000, 100_000_000_000)), // 100µs .. 100s
		ckptSize: reg.Histogram("allarm_checkpoint_size_bytes",
			"Size of one machine-state checkpoint.",
			1, obs.ExpBuckets(1024, 1<<34)), // 1KiB .. 16GiB
	}
	return m
}

// Metrics is the GET /metrics payload. Hit/miss/coalesced make cache
// effectiveness — including the "identical concurrent submissions run
// once" guarantee — observable from the outside; the disk-tier and
// recovery counters do the same for restart durability, and
// JobsAborted exposes how often drain actually interrupted a
// simulation mid-run. The existing field names are a compatibility
// contract: new fields may be appended, but names never change — use
// ?format=prometheus for labelled series and histograms.
type Metrics struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Draining           bool    `json:"draining"`
	SweepsSubmitted    uint64  `json:"sweeps_submitted"`
	SweepsActive       uint64  `json:"sweeps_active"`
	SweepsCompleted    uint64  `json:"sweeps_completed"`
	SweepsCheckpointed uint64  `json:"sweeps_checkpointed"`
	SweepsRecovered    uint64  `json:"sweeps_recovered"`
	SweepsDeleted      uint64  `json:"sweeps_deleted"`
	SweepsExpired      uint64  `json:"sweeps_expired"`
	JobsRun            uint64  `json:"jobs_run"`
	JobsAborted        uint64  `json:"jobs_aborted"`
	JobErrors          uint64  `json:"job_errors"`
	CacheHits          uint64  `json:"cache_hits"`
	CacheDiskHits      uint64  `json:"cache_disk_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	InflightCoalesced  uint64  `json:"inflight_coalesced"`
	CacheEntries       int     `json:"cache_entries"`
	CacheCapacity      int     `json:"cache_capacity"`
	DiskEntries        int     `json:"disk_entries,omitempty"`
	TracesUploaded     uint64  `json:"traces_uploaded"`
	SimEventsTotal     uint64  `json:"sim_events_total"`
	// SimEventsPerSec is events over accumulated busy time (the wall
	// clock actually spent simulating), so it holds steady on an idle
	// daemon. SimBusySeconds exposes that denominator, and
	// SimEventsPerUptimeSec the naive uptime-based rate for comparison —
	// the latter decays toward zero whenever the daemon sits idle.
	SimEventsPerSec       float64 `json:"sim_events_per_sec"`
	SimBusySeconds        float64 `json:"sim_busy_seconds"`
	SimEventsPerUptimeSec float64 `json:"sim_events_per_uptime_sec"`
	// Machine-state checkpointing (Options.CheckpointInterval):
	// CheckpointsWritten/CheckpointBytes count periodic job snapshots,
	// JobsResumed counts executions continued from a checkpoint instead
	// of event zero, and JobsPreempted counts long jobs that yielded
	// their pool slot to waiting work at a checkpoint boundary.
	CheckpointsWritten uint64 `json:"checkpoints_written"`
	CheckpointBytes    uint64 `json:"checkpoint_bytes"`
	JobsResumed        uint64 `json:"jobs_resumed"`
	JobsPreempted      uint64 `json:"jobs_preempted"`
}
