package server

import "sync/atomic"

// metrics are the daemon's monotonic counters, exported as the flat
// expvar-style JSON object GET /metrics returns. Everything is atomic:
// counters are bumped from worker goroutines and read from handlers.
type metrics struct {
	sweepsSubmitted    atomic.Uint64
	sweepsCompleted    atomic.Uint64
	sweepsCheckpointed atomic.Uint64
	jobsRun            atomic.Uint64
	jobErrors          atomic.Uint64
	cacheHits          atomic.Uint64
	cacheMisses        atomic.Uint64
	coalesced          atomic.Uint64
	tracesUploaded     atomic.Uint64
	simEvents          atomic.Uint64
	simWallNs          atomic.Uint64
}

// Metrics is the GET /metrics payload. Hit/miss/coalesced make cache
// effectiveness — including the "identical concurrent submissions run
// once" guarantee — observable from the outside.
type Metrics struct {
	UptimeSeconds      float64 `json:"uptime_seconds"`
	Draining           bool    `json:"draining"`
	SweepsSubmitted    uint64  `json:"sweeps_submitted"`
	SweepsActive       uint64  `json:"sweeps_active"`
	SweepsCompleted    uint64  `json:"sweeps_completed"`
	SweepsCheckpointed uint64  `json:"sweeps_checkpointed"`
	JobsRun            uint64  `json:"jobs_run"`
	JobErrors          uint64  `json:"job_errors"`
	CacheHits          uint64  `json:"cache_hits"`
	CacheMisses        uint64  `json:"cache_misses"`
	InflightCoalesced  uint64  `json:"inflight_coalesced"`
	CacheEntries       int     `json:"cache_entries"`
	CacheCapacity      int     `json:"cache_capacity"`
	TracesUploaded     uint64  `json:"traces_uploaded"`
	SimEventsTotal     uint64  `json:"sim_events_total"`
	SimEventsPerSec    float64 `json:"sim_events_per_sec"`
}
