package allarm_test

// Whole-simulation benchmarks for the simulator itself (as opposed to
// bench_test.go, which benchmarks the paper's experiments). One benchmark
// per policy × workload size over the shared SimBenchMatrix; the unit of
// work (one "op") is a complete simulation, so ns/op and allocs/op are
// per whole run and the reported events/sec is the engine's throughput.
// These are the benchmarks the CI smoke job compiles and runs once, and
// the matrix `allarm-bench -benchjson` measures when regenerating
// BENCH_*.json.

import (
	"testing"

	allarm "allarm"
)

func benchSim(b *testing.B, benchmark string, accesses int, pol allarm.Policy) {
	cfg := allarm.ExperimentConfig()
	cfg.Policy = pol
	cfg.AccessesPerThread = accesses
	b.ReportAllocs()
	var events uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := allarm.RunBenchmark(cfg, benchmark)
		if err != nil {
			b.Fatal(err)
		}
		events += res.Events
	}
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(events)/sec, "events/sec")
	}
}

func BenchmarkSimSmallBaseline(b *testing.B) {
	c := allarm.SimBenchMatrix[0]
	benchSim(b, c.Benchmark, c.Accesses, allarm.Baseline)
}

func BenchmarkSimSmallALLARM(b *testing.B) {
	c := allarm.SimBenchMatrix[0]
	benchSim(b, c.Benchmark, c.Accesses, allarm.ALLARM)
}

func BenchmarkSimLargeBaseline(b *testing.B) {
	c := allarm.SimBenchMatrix[1]
	benchSim(b, c.Benchmark, c.Accesses, allarm.Baseline)
}

func BenchmarkSimLargeALLARM(b *testing.B) {
	c := allarm.SimBenchMatrix[1]
	benchSim(b, c.Benchmark, c.Accesses, allarm.ALLARM)
}
