// Package sim implements the discrete-event simulation engine underlying
// the ALLARM machine model.
//
// Time is measured in integer picoseconds (type Time) so that sub-
// nanosecond quantities (a 2 GHz core cycle is 500 ps) never lose
// precision. Events are ordered by time with a stable FIFO tie-break:
// two events scheduled for the same instant fire in the order they were
// scheduled, which makes whole-machine simulations bit-reproducible.
//
// # Event queue
//
// The queue is a hand-rolled monomorphic 4-ary heap over concrete item
// values. Compared to container/heap it avoids the interface{} boxing
// that used to cost one heap allocation per scheduled event, and the
// shallower tree halves the number of swap levels per operation (pops
// do three extra comparisons per level but one fewer level of cache
// misses, a win for the multi-million-event queues whole-machine runs
// build up). Vacated slots are zeroed on every pop and drain so the
// backing array never keeps a fired event's closure — and everything it
// captured — reachable.
//
// # Events and handlers
//
// Callbacks come in two forms. An Event is a closure, convenient for
// one-off occurrences. A Handler is a typed object with a Handle method,
// meant for recurring activities (message deliveries, controller
// pipelines, CPU issue loops): a model component allocates its handler
// once — or keeps a free list of them — and re-schedules it for every
// occurrence, so steady-state simulation schedules no memory at all.
// Both forms share one queue and one FIFO tie-break sequence, so mixing
// them cannot perturb event order.
//
// # Cancellation
//
// RunCtx and RunUntilCtx are the context-aware run loops: they poll
// ctx.Done once per CancelCheckBudget events (a single non-blocking
// channel read, no allocation, amortised to nothing on the hot path) so
// a multi-minute whole-machine run can be aborted from outside within
// one budget's worth of events. Cancellation is cooperative and leaves
// the engine consistent: Now, Fired and the queue reflect exactly the
// events that fired, so a caller can collect partial statistics or —
// because simulations are deterministic — simply re-run from scratch.
package sim

import (
	"context"
	"fmt"
)

// Time is a simulated timestamp in picoseconds since the start of the run.
type Time int64

// Convenient duration units, all expressed in Time (picoseconds).
const (
	Picosecond  Time = 1
	Nanosecond  Time = 1000
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
)

// Nanoseconds reports t as a float64 count of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// String renders the time in nanoseconds for logs and test failures.
func (t Time) String() string { return fmt.Sprintf("%gns", t.Nanoseconds()) }

// Event is a scheduled callback closure. It runs at the event's
// timestamp. For recurring activities prefer Handler, which can be
// allocated once and rescheduled for free.
type Event func(now Time)

// Handler is a typed event target: Handle runs at the scheduled time.
// Handlers exist so hot-path components can preallocate (and pool) their
// callback state instead of allocating a fresh closure per event.
type Handler interface {
	Handle(now Time)
}

// HandlerFunc adapts a closure to the Handler interface. It is a
// convenience for tests and one-off call sites; hot-path components use
// concrete handler records (which also keeps them checkpointable — a
// HandlerFunc in the queue cannot be serialized).
type HandlerFunc func(now Time)

// Handle implements Handler.
func (f HandlerFunc) Handle(now Time) { f(now) }

// item is one queued event: exactly one of fire/h is set.
type item struct {
	at   Time
	seq  uint64
	fire Event
	h    Handler
}

// before reports the queue ordering: earlier time first, FIFO on ties.
func (a *item) before(b *item) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine is a single-threaded discrete-event scheduler.
// The zero value is ready to use.
//
// A parallel machine runs several engines — one per tile shard — each
// still single-threaded within its goroutine, coordinated by
// conservative windows at the system layer. Such engines use keyed
// tie-break order (see SetKeyed in keyed.go) so their combined event
// order matches what one serial engine would produce.
type Engine struct {
	now     Time
	seq     uint64
	queue   []item // 4-ary min-heap ordered by (at, seq)
	stopped bool
	fired   uint64

	// Keyed tie-break state (see keyed.go); serial engines never touch
	// these beyond the single keyed branch in nextSeq.
	keyed      bool
	keyInstant Time
	keyCount   uint64

	// Window-log state (see windowlog.go): between BeginWindowLog and
	// EndWindowLog the engine records each dispatched event and, in call
	// order, every scheduling call it made, so a parallel machine's
	// barrier can replay the window's scheduling structure and
	// reconstruct the exact serial event order. Serial engines never
	// turn it on; the logOn branches predict perfectly.
	logOn   bool
	log     []LogEntry
	logKids []LogChild
}

// nextSeq assigns the next tie-break sequence: the plain FIFO counter,
// or — for shard engines of a parallel machine — the keyed form that
// encodes the scheduling instant (keyed.go). The branch predicts
// perfectly on the serial hot path.
func (e *Engine) nextSeq() uint64 {
	if e.keyed {
		return e.keyedNext()
	}
	e.seq++
	return e.seq
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the total number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events waiting in the queue.
func (e *Engine) Pending() int { return len(e.queue) }

// push inserts it, restoring the heap invariant by sifting up.
func (e *Engine) push(it item) {
	q := append(e.queue, it)
	e.queue = q
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if q[p].before(&q[i]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
}

// pop removes and returns the earliest event. The vacated tail slot is
// zeroed so the backing array releases its references.
func (e *Engine) pop() item {
	q := e.queue
	top := q[0]
	n := len(q) - 1
	it := q[n]
	q[n] = item{}
	q = q[:n]
	e.queue = q
	if n == 0 {
		return top
	}
	// Sift the former tail down from the root along min-child links,
	// moving children up into the hole rather than swapping.
	i := 0
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if q[j].before(&q[m]) {
				m = j
			}
		}
		if it.before(&q[m]) {
			break
		}
		q[i] = q[m]
		i = m
	}
	q[i] = it
	return top
}

// checkTime panics when at is in the past: scheduling before Now always
// indicates a model bug, and silently reordering time would corrupt
// results.
func (e *Engine) checkTime(at Time) {
	if at < e.now {
		panic(fmt.Sprintf("sim: event scheduled at %v before now %v", at, e.now))
	}
}

// At schedules fn to run at the absolute time at. Scheduling in the past
// panics (see checkTime).
func (e *Engine) At(at Time, fn Event) {
	e.checkTime(at)
	if fn == nil {
		panic("sim: nil event")
	}
	seq := e.nextSeq()
	if e.logOn {
		e.logKids = append(e.logKids, LogChild{At: at, Seq: seq, Ext: -1})
	}
	e.push(item{at: at, seq: seq, fire: fn})
}

// After schedules fn to run delay picoseconds from now. Negative delays
// panic (see At).
func (e *Engine) After(delay Time, fn Event) { e.At(e.now+delay, fn) }

// Schedule schedules h.Handle to run at the absolute time at. It is the
// Handler counterpart of At and shares its queue and tie-break order.
func (e *Engine) Schedule(at Time, h Handler) {
	e.checkTime(at)
	if h == nil {
		panic("sim: nil handler")
	}
	seq := e.nextSeq()
	if e.logOn {
		e.logKids = append(e.logKids, LogChild{At: at, Seq: seq, Ext: -1})
	}
	e.push(item{at: at, seq: seq, h: h})
}

// ScheduleAfter schedules h.Handle to run delay picoseconds from now.
func (e *Engine) ScheduleAfter(delay Time, h Handler) { e.Schedule(e.now+delay, h) }

// dispatch fires one popped event.
func (e *Engine) dispatch(it *item) {
	e.now = it.at
	if e.logOn {
		e.log = append(e.log, LogEntry{At: it.at, Seq: it.seq, Kids: int32(len(e.logKids))})
	}
	if it.fire != nil {
		it.fire(it.at)
	} else {
		it.h.Handle(it.at)
	}
	e.fired++
}

// Stop makes Run return after the currently firing event completes.
// Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events in timestamp order until the queue is empty, Stop is
// called, or limit events have fired (limit <= 0 means no limit). It
// returns the number of events fired by this call.
func (e *Engine) Run(limit uint64) uint64 {
	e.stopped = false
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		if limit > 0 && fired >= limit {
			break
		}
		it := e.pop()
		e.dispatch(&it)
		fired++
	}
	return fired
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline stay queued; Now advances to at most deadline.
func (e *Engine) RunUntil(deadline Time) uint64 {
	e.stopped = false
	var fired uint64
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			break
		}
		it := e.pop()
		e.dispatch(&it)
		fired++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return fired
}

// CancelCheckBudget is the number of events RunCtx and RunUntilCtx
// fire between polls of ctx.Done. It bounds both the cancellation
// latency (at most one budget of events after ctx is cancelled) and
// the cancellation overhead (one non-blocking channel read per budget,
// unmeasurable against the thousands of events it amortises over).
const CancelCheckBudget = 4096

// RunCtx executes events like Run but additionally stops when ctx is
// cancelled, checking ctx.Done every CancelCheckBudget events. It
// returns the number of events fired and, when the run was cut short by
// cancellation, ctx's error; the queue keeps its unfired events so the
// caller can inspect or collect partial state. A context that can never
// be cancelled (Done() == nil, e.g. context.Background()) adds no
// per-event work at all: RunCtx degenerates to Run.
func (e *Engine) RunCtx(ctx context.Context, limit uint64) (uint64, error) {
	done := ctx.Done()
	if done == nil {
		return e.Run(limit), nil
	}
	select {
	case <-done:
		return 0, ctx.Err()
	default:
	}
	e.stopped = false
	var fired uint64
	check := uint64(CancelCheckBudget)
	for len(e.queue) > 0 && !e.stopped {
		if limit > 0 && fired >= limit {
			break
		}
		if fired >= check {
			check = fired + CancelCheckBudget
			select {
			case <-done:
				return fired, ctx.Err()
			default:
			}
		}
		it := e.pop()
		e.dispatch(&it)
		fired++
	}
	return fired, nil
}

// RunUntilCtx executes events with timestamps <= deadline, stopping
// early when ctx is cancelled (polled every CancelCheckBudget events,
// like RunCtx). On cancellation Now stays at the last fired event — it
// does not jump to the deadline — so partial statistics remain
// time-consistent.
func (e *Engine) RunUntilCtx(ctx context.Context, deadline Time) (uint64, error) {
	done := ctx.Done()
	if done == nil {
		return e.RunUntil(deadline), nil
	}
	select {
	case <-done:
		return 0, ctx.Err()
	default:
	}
	e.stopped = false
	var fired uint64
	check := uint64(CancelCheckBudget)
	for len(e.queue) > 0 && !e.stopped {
		if e.queue[0].at > deadline {
			break
		}
		if fired >= check {
			check = fired + CancelCheckBudget
			select {
			case <-done:
				return fired, ctx.Err()
			default:
			}
		}
		it := e.pop()
		e.dispatch(&it)
		fired++
	}
	if e.now < deadline && !e.stopped {
		e.now = deadline
	}
	return fired, nil
}

// Drain discards all pending events without firing them. Now is
// unchanged. Discarded slots are zeroed so their callbacks become
// collectable.
func (e *Engine) Drain() {
	for i := range e.queue {
		e.queue[i] = item{}
	}
	e.queue = e.queue[:0]
}

// Ticker invokes a fixed callback every period until Cancel is called.
// It exists for periodic model activities such as thread-migration
// experiments. The Ticker is its own Handler: one allocation covers
// every tick.
type Ticker struct {
	e         *Engine
	period    Time
	fn        Event
	cancelled bool
}

// Cancel stops future ticks. Safe to call multiple times, including from
// inside the tick callback itself.
func (t *Ticker) Cancel() { t.cancelled = true }

// Handle fires one tick and reschedules the next unless cancelled.
func (t *Ticker) Handle(now Time) {
	if t.cancelled {
		return
	}
	t.fn(now)
	if !t.cancelled {
		t.e.Schedule(now+t.period, t)
	}
}

// Tick schedules fn every period starting at now+period. fn receives the
// tick time. period must be positive.
func (e *Engine) Tick(period Time, fn Event) *Ticker {
	if period <= 0 {
		panic("sim: Tick with non-positive period")
	}
	t := &Ticker{e: e, period: period, fn: fn}
	e.Schedule(e.now+period, t)
	return t
}

// FreeList is a LIFO free list of pointer-to-T records, the common
// currency of this simulator's zero-allocation scheduling: components
// Get a record, fill it, schedule it, and Put it back from its Handle
// method. Get returns a zeroed fresh record when the list is empty, so
// callers must (re)set every field they need either way.
//
// Like everything scheduled on an Engine, a FreeList is confined to its
// machine's single goroutine and is not safe for concurrent use.
type FreeList[T any] struct {
	free []*T
}

// Get pops the most recently returned record, or allocates a zero one.
func (f *FreeList[T]) Get() *T {
	if n := len(f.free); n > 0 {
		x := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		return x
	}
	return new(T)
}

// Put returns a record for reuse. The caller clears any reference
// fields it no longer owns first (Put does not zero the record).
func (f *FreeList[T]) Put(x *T) { f.free = append(f.free, x) }
