// Command allarm-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	allarm-bench -exp fig3a              # one experiment
//	allarm-bench -exp all                # everything (minutes)
//	allarm-bench -exp fig2 -accesses 120000 -seed 7
//
// Output is the series each figure plots (normalised to the baseline
// exactly as the paper normalises); EXPERIMENTS.md records the paper-vs-
// measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	allarm "allarm"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id or 'all' (one of: "+strings.Join(allarm.ExperimentIDs, ", ")+")")
		accesses  = flag.Int("accesses", 0, "accesses per thread (0 = default)")
		seed      = flag.Uint64("seed", 1, "simulation seed")
		fullScale = flag.Bool("fullscale", false, "use unscaled Table I SRAM sizes")
	)
	flag.Parse()

	cfg := allarm.ExperimentConfig()
	if *fullScale {
		cfg = allarm.DefaultConfig()
	}
	cfg.Seed = *seed
	if *accesses > 0 {
		cfg.AccessesPerThread = *accesses
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = allarm.ExperimentIDs
	}
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("== %s ==\n", id)
		if err := allarm.RunExperiment(os.Stdout, cfg, id); err != nil {
			fmt.Fprintln(os.Stderr, "allarm-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("(%s in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
}
