// Package checkpoint implements the versioned binary snapshot format
// behind machine-state checkpoints (gem5-style checkpoint & resume).
//
// A checkpoint is a single self-delimiting blob:
//
//	magic   "ALCK" (4 bytes)
//	version uint16 little-endian (Format)
//	meta    length-prefixed string (caller identity, e.g. a job
//	        fingerprint; verified by the consumer, not this package)
//	length  uint64 little-endian payload byte count
//	payload the encoded sections
//	crc     uint32 little-endian CRC-32 (Castagnoli) over everything
//	        from the magic through the payload
//
// The payload is a flat sequence of primitive values written by an
// Encoder and read back — in exactly the same order — by a Decoder.
// Section markers (length-prefixed names) are interleaved so a reader
// that drifts out of sync fails fast with a named location instead of
// decoding garbage. The CRC is verified before any payload byte is
// interpreted, so truncated, corrupted or short-written files are
// rejected up front; a version mismatch is detected from the fixed
// header alone. Consumers treat any error as "no checkpoint" and fall
// back to a full re-simulation — the simulator can always regenerate.
//
// Everything is fixed-width little-endian: the format's compatibility
// surface is golden-tested (format_test.go) and must not drift with
// platform or Go release.
package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"reflect"
)

// Format is the current checkpoint format version. Bump it whenever the
// encoded layout changes incompatibly; decoders reject other versions.
const Format = 1

// magic identifies a checkpoint blob.
var magic = [4]byte{'A', 'L', 'C', 'K'}

// maxCheckpointBytes bounds how much a decoder will buffer: machine
// snapshots are megabytes; anything claiming more is corrupt.
const maxCheckpointBytes = 1 << 30

// castagnoli is the CRC-32C table (one-time init).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Encoder writes one checkpoint. Values are buffered and flushed —
// with header and CRC — by Close; a failed underlying write surfaces
// there.
type Encoder struct {
	meta string
	buf  []byte
}

// NewEncoder starts a checkpoint with the given meta string (the
// caller's identity/fingerprint; see Decoder.Meta).
func NewEncoder(meta string) *Encoder {
	return &Encoder{meta: meta, buf: make([]byte, 0, 4096)}
}

// Section writes a named marker delimiting the next group of values.
func (e *Encoder) Section(name string) { e.String(name) }

// U8 writes one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// Bool writes a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// U32 writes a fixed-width uint32.
func (e *Encoder) U32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// U64 writes a fixed-width uint64.
func (e *Encoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// I64 writes a fixed-width int64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 writes a float64 by bit pattern.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bytes writes a length-prefixed byte slice.
func (e *Encoder) Bytes(v []byte) {
	e.U64(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// String writes a length-prefixed string.
func (e *Encoder) String(v string) {
	e.U64(uint64(len(v)))
	e.buf = append(e.buf, v...)
}

// Len writes a collection length (helper that keeps call sites honest
// about what the value is).
func (e *Encoder) Len(n int) { e.U64(uint64(n)) }

// Close frames the buffered payload (magic, version, meta, length,
// payload, CRC) and writes it to w.
func (e *Encoder) Close(w io.Writer) error {
	head := make([]byte, 0, len(magic)+2+8+len(e.meta)+8)
	head = append(head, magic[:]...)
	head = binary.LittleEndian.AppendUint16(head, Format)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(e.meta)))
	head = append(head, e.meta...)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(e.buf)))

	crc := crc32.Update(0, castagnoli, head)
	crc = crc32.Update(crc, castagnoli, e.buf)

	if _, err := w.Write(head); err != nil {
		return err
	}
	if _, err := w.Write(e.buf); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc)
	_, err := w.Write(tail[:])
	return err
}

// Decoder reads one checkpoint. NewDecoder buffers and CRC-verifies
// the whole blob before returning, so every subsequent read works on
// proven-intact bytes; decode errors after that indicate a format bug
// or a version drift the header did not capture, never silent file
// damage. Errors are sticky: after the first failure every read
// returns zero values and Err reports the cause.
type Decoder struct {
	meta string
	buf  []byte
	off  int
	err  error
}

// NewDecoder reads, frames and CRC-verifies a checkpoint from r.
func NewDecoder(r io.Reader) (*Decoder, error) {
	var head [6]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: reading header: %w", err)
	}
	if [4]byte(head[:4]) != magic {
		return nil, fmt.Errorf("checkpoint: bad magic %q", head[:4])
	}
	if v := binary.LittleEndian.Uint16(head[4:6]); v != Format {
		return nil, fmt.Errorf("checkpoint: format version %d (want %d)", v, Format)
	}
	crc := crc32.Update(0, castagnoli, head[:])

	readLen := func() (uint64, []byte, error) {
		var lb [8]byte
		if _, err := io.ReadFull(r, lb[:]); err != nil {
			return 0, nil, err
		}
		return binary.LittleEndian.Uint64(lb[:]), lb[:], nil
	}
	metaLen, lb, err := readLen()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading meta length: %w", err)
	}
	crc = crc32.Update(crc, castagnoli, lb)
	if metaLen > maxCheckpointBytes {
		return nil, fmt.Errorf("checkpoint: meta length %d out of range", metaLen)
	}
	meta := make([]byte, metaLen)
	if _, err := io.ReadFull(r, meta); err != nil {
		return nil, fmt.Errorf("checkpoint: reading meta: %w", err)
	}
	crc = crc32.Update(crc, castagnoli, meta)

	payloadLen, lb, err := readLen()
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading payload length: %w", err)
	}
	crc = crc32.Update(crc, castagnoli, lb)
	if payloadLen > maxCheckpointBytes {
		return nil, fmt.Errorf("checkpoint: payload length %d out of range", payloadLen)
	}
	payload := make([]byte, payloadLen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated payload: %w", err)
	}
	crc = crc32.Update(crc, castagnoli, payload)

	var tail [4]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated CRC: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != crc {
		return nil, fmt.Errorf("checkpoint: CRC mismatch (file %08x, computed %08x)", got, crc)
	}
	return &Decoder{meta: string(meta), buf: payload}, nil
}

// Meta returns the checkpoint's meta string (the writer's fingerprint).
func (d *Decoder) Meta() string { return d.meta }

// Err returns the first decode error, or nil.
func (d *Decoder) Err() error { return d.err }

// Remaining reports unread payload bytes (a post-decode sanity check:
// a clean restore consumes the payload exactly).
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("checkpoint: "+format, args...)
	}
}

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("payload exhausted at offset %d (want %d more bytes)", d.off, n)
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Expect reads a section marker and fails unless it matches name.
func (d *Decoder) Expect(name string) {
	got := d.String()
	if d.err == nil && got != name {
		d.fail("section %q where %q expected", got, name)
	}
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// Bool reads a bool.
func (d *Decoder) Bool() bool { return d.U8() != 0 }

// U32 reads a fixed-width uint32.
func (d *Decoder) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a fixed-width uint64.
func (d *Decoder) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a fixed-width int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bytes reads a length-prefixed byte slice.
func (d *Decoder) Bytes() []byte {
	n := d.U64()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("byte slice length %d exceeds remaining payload", n)
		return nil
	}
	out := make([]byte, n)
	copy(out, d.take(int(n)))
	return out
}

// String reads a length-prefixed string.
func (d *Decoder) String() string {
	n := d.U64()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d exceeds remaining payload", n)
		return ""
	}
	return string(d.take(int(n)))
}

// Len reads a collection length and bounds-checks it against limit
// (and the remaining payload) so a corrupt count cannot drive a huge
// allocation.
func (d *Decoder) Len(limit int) int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > uint64(limit) {
		d.fail("collection length %d exceeds limit %d", n, limit)
		return 0
	}
	return int(n)
}

// EncodeStruct writes every exported field of the struct pointed to by
// ptr, in declaration order. Supported field types: booleans, all
// fixed-size integers (and named types over them, e.g. sim.Time,
// mem.PAddr), int/uint, and float64. It panics on unexported fields or
// unsupported kinds — stats structs with hidden state must be encoded
// by hand in their own package, never silently truncated.
func EncodeStruct(e *Encoder, ptr any) {
	v := reflect.ValueOf(ptr).Elem()
	t := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			panic(fmt.Sprintf("checkpoint: EncodeStruct(%s): unexported field %s", t, f.Name))
		}
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			e.Bool(fv.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			e.I64(fv.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			e.U64(fv.Uint())
		case reflect.Float64:
			e.F64(fv.Float())
		case reflect.Struct:
			EncodeStruct(e, fv.Addr().Interface())
		default:
			panic(fmt.Sprintf("checkpoint: EncodeStruct(%s): unsupported field %s (%s)", t, f.Name, fv.Kind()))
		}
	}
}

// DecodeStruct is EncodeStruct's mirror: it fills the struct pointed to
// by ptr from the decoder, field by field in declaration order.
func DecodeStruct(d *Decoder, ptr any) {
	v := reflect.ValueOf(ptr).Elem()
	t := v.Type()
	for i := 0; i < v.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			panic(fmt.Sprintf("checkpoint: DecodeStruct(%s): unexported field %s", t, f.Name))
		}
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Bool:
			fv.SetBool(d.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			fv.SetInt(d.I64())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			fv.SetUint(d.U64())
		case reflect.Float64:
			fv.SetFloat(d.F64())
		case reflect.Struct:
			DecodeStruct(d, fv.Addr().Interface())
		default:
			panic(fmt.Sprintf("checkpoint: DecodeStruct(%s): unsupported field %s (%s)", t, f.Name, fv.Kind()))
		}
	}
}
